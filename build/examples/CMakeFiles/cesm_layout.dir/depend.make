# Empty dependencies file for cesm_layout.
# This may be replaced when dependencies are built.
