file(REMOVE_RECURSE
  "CMakeFiles/cesm_layout.dir/cesm_layout.cpp.o"
  "CMakeFiles/cesm_layout.dir/cesm_layout.cpp.o.d"
  "cesm_layout"
  "cesm_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cesm_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
