# Empty dependencies file for fmo_water_cluster.
# This may be replaced when dependencies are built.
