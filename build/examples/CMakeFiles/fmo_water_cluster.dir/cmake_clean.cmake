file(REMOVE_RECURSE
  "CMakeFiles/fmo_water_cluster.dir/fmo_water_cluster.cpp.o"
  "CMakeFiles/fmo_water_cluster.dir/fmo_water_cluster.cpp.o.d"
  "fmo_water_cluster"
  "fmo_water_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmo_water_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
