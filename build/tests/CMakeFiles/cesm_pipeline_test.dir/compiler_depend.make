# Empty compiler generated dependencies file for cesm_pipeline_test.
# This may be replaced when dependencies are built.
