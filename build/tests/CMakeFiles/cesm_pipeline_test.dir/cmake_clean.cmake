file(REMOVE_RECURSE
  "CMakeFiles/cesm_pipeline_test.dir/cesm_pipeline_test.cpp.o"
  "CMakeFiles/cesm_pipeline_test.dir/cesm_pipeline_test.cpp.o.d"
  "cesm_pipeline_test"
  "cesm_pipeline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cesm_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
