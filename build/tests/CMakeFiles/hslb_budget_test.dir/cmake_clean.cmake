file(REMOVE_RECURSE
  "CMakeFiles/hslb_budget_test.dir/hslb_budget_test.cpp.o"
  "CMakeFiles/hslb_budget_test.dir/hslb_budget_test.cpp.o.d"
  "hslb_budget_test"
  "hslb_budget_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hslb_budget_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
