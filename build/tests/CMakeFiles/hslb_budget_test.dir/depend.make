# Empty dependencies file for hslb_budget_test.
# This may be replaced when dependencies are built.
