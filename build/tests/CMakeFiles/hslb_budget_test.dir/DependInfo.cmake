
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/hslb_budget_test.cpp" "tests/CMakeFiles/hslb_budget_test.dir/hslb_budget_test.cpp.o" "gcc" "tests/CMakeFiles/hslb_budget_test.dir/hslb_budget_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hslb/CMakeFiles/hslb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/minlp/CMakeFiles/hslb_minlp.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hslb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/hslb_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/hslb_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/nlsq/CMakeFiles/hslb_nlsq.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/hslb_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hslb_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
