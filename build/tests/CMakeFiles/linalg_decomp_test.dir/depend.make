# Empty dependencies file for linalg_decomp_test.
# This may be replaced when dependencies are built.
