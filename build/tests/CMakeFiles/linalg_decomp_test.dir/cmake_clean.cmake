file(REMOVE_RECURSE
  "CMakeFiles/linalg_decomp_test.dir/linalg_decomp_test.cpp.o"
  "CMakeFiles/linalg_decomp_test.dir/linalg_decomp_test.cpp.o.d"
  "linalg_decomp_test"
  "linalg_decomp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linalg_decomp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
