# Empty compiler generated dependencies file for fmo_scheduler_test.
# This may be replaced when dependencies are built.
