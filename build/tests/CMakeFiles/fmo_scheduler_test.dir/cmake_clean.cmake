file(REMOVE_RECURSE
  "CMakeFiles/fmo_scheduler_test.dir/fmo_scheduler_test.cpp.o"
  "CMakeFiles/fmo_scheduler_test.dir/fmo_scheduler_test.cpp.o.d"
  "fmo_scheduler_test"
  "fmo_scheduler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmo_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
