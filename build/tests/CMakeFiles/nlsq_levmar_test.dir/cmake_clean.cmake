file(REMOVE_RECURSE
  "CMakeFiles/nlsq_levmar_test.dir/nlsq_levmar_test.cpp.o"
  "CMakeFiles/nlsq_levmar_test.dir/nlsq_levmar_test.cpp.o.d"
  "nlsq_levmar_test"
  "nlsq_levmar_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nlsq_levmar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
