# Empty dependencies file for nlsq_levmar_test.
# This may be replaced when dependencies are built.
