file(REMOVE_RECURSE
  "CMakeFiles/cesm_data_test.dir/cesm_data_test.cpp.o"
  "CMakeFiles/cesm_data_test.dir/cesm_data_test.cpp.o.d"
  "cesm_data_test"
  "cesm_data_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cesm_data_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
