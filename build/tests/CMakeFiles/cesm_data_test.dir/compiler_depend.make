# Empty compiler generated dependencies file for cesm_data_test.
# This may be replaced when dependencies are built.
