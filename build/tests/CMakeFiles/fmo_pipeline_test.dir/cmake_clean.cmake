file(REMOVE_RECURSE
  "CMakeFiles/fmo_pipeline_test.dir/fmo_pipeline_test.cpp.o"
  "CMakeFiles/fmo_pipeline_test.dir/fmo_pipeline_test.cpp.o.d"
  "fmo_pipeline_test"
  "fmo_pipeline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmo_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
