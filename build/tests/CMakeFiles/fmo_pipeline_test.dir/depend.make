# Empty dependencies file for fmo_pipeline_test.
# This may be replaced when dependencies are built.
