# Empty compiler generated dependencies file for minlp_bnb_test.
# This may be replaced when dependencies are built.
