file(REMOVE_RECURSE
  "CMakeFiles/minlp_bnb_test.dir/minlp_bnb_test.cpp.o"
  "CMakeFiles/minlp_bnb_test.dir/minlp_bnb_test.cpp.o.d"
  "minlp_bnb_test"
  "minlp_bnb_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minlp_bnb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
