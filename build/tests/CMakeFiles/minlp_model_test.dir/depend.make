# Empty dependencies file for minlp_model_test.
# This may be replaced when dependencies are built.
