file(REMOVE_RECURSE
  "CMakeFiles/minlp_model_test.dir/minlp_model_test.cpp.o"
  "CMakeFiles/minlp_model_test.dir/minlp_model_test.cpp.o.d"
  "minlp_model_test"
  "minlp_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minlp_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
