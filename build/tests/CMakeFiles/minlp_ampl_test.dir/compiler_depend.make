# Empty compiler generated dependencies file for minlp_ampl_test.
# This may be replaced when dependencies are built.
