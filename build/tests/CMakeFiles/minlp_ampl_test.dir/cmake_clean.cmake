file(REMOVE_RECURSE
  "CMakeFiles/minlp_ampl_test.dir/minlp_ampl_test.cpp.o"
  "CMakeFiles/minlp_ampl_test.dir/minlp_ampl_test.cpp.o.d"
  "minlp_ampl_test"
  "minlp_ampl_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minlp_ampl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
