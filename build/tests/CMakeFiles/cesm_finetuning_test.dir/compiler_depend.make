# Empty compiler generated dependencies file for cesm_finetuning_test.
# This may be replaced when dependencies are built.
