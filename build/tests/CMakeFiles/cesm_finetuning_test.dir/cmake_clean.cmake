file(REMOVE_RECURSE
  "CMakeFiles/cesm_finetuning_test.dir/cesm_finetuning_test.cpp.o"
  "CMakeFiles/cesm_finetuning_test.dir/cesm_finetuning_test.cpp.o.d"
  "cesm_finetuning_test"
  "cesm_finetuning_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cesm_finetuning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
