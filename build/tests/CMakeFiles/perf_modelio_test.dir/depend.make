# Empty dependencies file for perf_modelio_test.
# This may be replaced when dependencies are built.
