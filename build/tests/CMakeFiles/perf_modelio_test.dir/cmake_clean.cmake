file(REMOVE_RECURSE
  "CMakeFiles/perf_modelio_test.dir/perf_modelio_test.cpp.o"
  "CMakeFiles/perf_modelio_test.dir/perf_modelio_test.cpp.o.d"
  "perf_modelio_test"
  "perf_modelio_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_modelio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
