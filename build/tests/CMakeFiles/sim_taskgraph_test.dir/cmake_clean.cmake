file(REMOVE_RECURSE
  "CMakeFiles/sim_taskgraph_test.dir/sim_taskgraph_test.cpp.o"
  "CMakeFiles/sim_taskgraph_test.dir/sim_taskgraph_test.cpp.o.d"
  "sim_taskgraph_test"
  "sim_taskgraph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_taskgraph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
