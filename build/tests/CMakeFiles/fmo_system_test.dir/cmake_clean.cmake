file(REMOVE_RECURSE
  "CMakeFiles/fmo_system_test.dir/fmo_system_test.cpp.o"
  "CMakeFiles/fmo_system_test.dir/fmo_system_test.cpp.o.d"
  "fmo_system_test"
  "fmo_system_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmo_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
