# Empty compiler generated dependencies file for fmo_system_test.
# This may be replaced when dependencies are built.
