file(REMOVE_RECURSE
  "CMakeFiles/fmo_energy_test.dir/fmo_energy_test.cpp.o"
  "CMakeFiles/fmo_energy_test.dir/fmo_energy_test.cpp.o.d"
  "fmo_energy_test"
  "fmo_energy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmo_energy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
