# Empty dependencies file for fmo_energy_test.
# This may be replaced when dependencies are built.
