# Empty dependencies file for cesm_advisor_test.
# This may be replaced when dependencies are built.
