file(REMOVE_RECURSE
  "CMakeFiles/cesm_advisor_test.dir/cesm_advisor_test.cpp.o"
  "CMakeFiles/cesm_advisor_test.dir/cesm_advisor_test.cpp.o.d"
  "cesm_advisor_test"
  "cesm_advisor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cesm_advisor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
