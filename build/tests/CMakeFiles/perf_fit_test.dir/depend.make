# Empty dependencies file for perf_fit_test.
# This may be replaced when dependencies are built.
