file(REMOVE_RECURSE
  "CMakeFiles/perf_fit_test.dir/perf_fit_test.cpp.o"
  "CMakeFiles/perf_fit_test.dir/perf_fit_test.cpp.o.d"
  "perf_fit_test"
  "perf_fit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_fit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
