# Empty dependencies file for cesm_layout_test.
# This may be replaced when dependencies are built.
