file(REMOVE_RECURSE
  "CMakeFiles/cesm_layout_test.dir/cesm_layout_test.cpp.o"
  "CMakeFiles/cesm_layout_test.dir/cesm_layout_test.cpp.o.d"
  "cesm_layout_test"
  "cesm_layout_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cesm_layout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
