# Empty dependencies file for hslb_gather_test.
# This may be replaced when dependencies are built.
