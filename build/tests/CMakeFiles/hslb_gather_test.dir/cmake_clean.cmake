file(REMOVE_RECURSE
  "CMakeFiles/hslb_gather_test.dir/hslb_gather_test.cpp.o"
  "CMakeFiles/hslb_gather_test.dir/hslb_gather_test.cpp.o.d"
  "hslb_gather_test"
  "hslb_gather_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hslb_gather_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
