file(REMOVE_RECURSE
  "CMakeFiles/fmo_imbalance.dir/bench/fmo_imbalance.cpp.o"
  "CMakeFiles/fmo_imbalance.dir/bench/fmo_imbalance.cpp.o.d"
  "bench/fmo_imbalance"
  "bench/fmo_imbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmo_imbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
