# Empty dependencies file for fmo_imbalance.
# This may be replaced when dependencies are built.
