file(REMOVE_RECURSE
  "CMakeFiles/cesm_fig3_highres.dir/bench/cesm_fig3_highres.cpp.o"
  "CMakeFiles/cesm_fig3_highres.dir/bench/cesm_fig3_highres.cpp.o.d"
  "bench/cesm_fig3_highres"
  "bench/cesm_fig3_highres.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cesm_fig3_highres.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
