# Empty compiler generated dependencies file for cesm_fig3_highres.
# This may be replaced when dependencies are built.
