# Empty compiler generated dependencies file for lp_simplex_bench.
# This may be replaced when dependencies are built.
