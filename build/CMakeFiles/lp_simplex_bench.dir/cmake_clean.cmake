file(REMOVE_RECURSE
  "CMakeFiles/lp_simplex_bench.dir/bench/lp_simplex_bench.cpp.o"
  "CMakeFiles/lp_simplex_bench.dir/bench/lp_simplex_bench.cpp.o.d"
  "bench/lp_simplex_bench"
  "bench/lp_simplex_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lp_simplex_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
