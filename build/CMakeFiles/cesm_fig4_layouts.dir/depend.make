# Empty dependencies file for cesm_fig4_layouts.
# This may be replaced when dependencies are built.
