file(REMOVE_RECURSE
  "CMakeFiles/cesm_fig4_layouts.dir/bench/cesm_fig4_layouts.cpp.o"
  "CMakeFiles/cesm_fig4_layouts.dir/bench/cesm_fig4_layouts.cpp.o.d"
  "bench/cesm_fig4_layouts"
  "bench/cesm_fig4_layouts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cesm_fig4_layouts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
