file(REMOVE_RECURSE
  "CMakeFiles/cesm_finetuning.dir/bench/cesm_finetuning.cpp.o"
  "CMakeFiles/cesm_finetuning.dir/bench/cesm_finetuning.cpp.o.d"
  "bench/cesm_finetuning"
  "bench/cesm_finetuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cesm_finetuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
