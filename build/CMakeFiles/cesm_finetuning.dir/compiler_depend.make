# Empty compiler generated dependencies file for cesm_finetuning.
# This may be replaced when dependencies are built.
