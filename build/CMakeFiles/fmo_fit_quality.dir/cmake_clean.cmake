file(REMOVE_RECURSE
  "CMakeFiles/fmo_fit_quality.dir/bench/fmo_fit_quality.cpp.o"
  "CMakeFiles/fmo_fit_quality.dir/bench/fmo_fit_quality.cpp.o.d"
  "bench/fmo_fit_quality"
  "bench/fmo_fit_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmo_fit_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
