# Empty dependencies file for fmo_fit_quality.
# This may be replaced when dependencies are built.
