# Empty compiler generated dependencies file for cesm_tsync_ablation.
# This may be replaced when dependencies are built.
