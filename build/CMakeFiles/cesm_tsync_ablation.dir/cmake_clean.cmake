file(REMOVE_RECURSE
  "CMakeFiles/cesm_tsync_ablation.dir/bench/cesm_tsync_ablation.cpp.o"
  "CMakeFiles/cesm_tsync_ablation.dir/bench/cesm_tsync_ablation.cpp.o.d"
  "bench/cesm_tsync_ablation"
  "bench/cesm_tsync_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cesm_tsync_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
