file(REMOVE_RECURSE
  "CMakeFiles/fmo_solver_crosscheck.dir/bench/fmo_solver_crosscheck.cpp.o"
  "CMakeFiles/fmo_solver_crosscheck.dir/bench/fmo_solver_crosscheck.cpp.o.d"
  "bench/fmo_solver_crosscheck"
  "bench/fmo_solver_crosscheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmo_solver_crosscheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
