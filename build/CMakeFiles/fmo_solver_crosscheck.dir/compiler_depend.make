# Empty compiler generated dependencies file for fmo_solver_crosscheck.
# This may be replaced when dependencies are built.
