# Empty compiler generated dependencies file for fmo_scaling.
# This may be replaced when dependencies are built.
