file(REMOVE_RECURSE
  "CMakeFiles/fmo_scaling.dir/bench/fmo_scaling.cpp.o"
  "CMakeFiles/fmo_scaling.dir/bench/fmo_scaling.cpp.o.d"
  "bench/fmo_scaling"
  "bench/fmo_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmo_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
