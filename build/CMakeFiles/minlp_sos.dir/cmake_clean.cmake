file(REMOVE_RECURSE
  "CMakeFiles/minlp_sos.dir/bench/minlp_sos.cpp.o"
  "CMakeFiles/minlp_sos.dir/bench/minlp_sos.cpp.o.d"
  "bench/minlp_sos"
  "bench/minlp_sos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minlp_sos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
