# Empty compiler generated dependencies file for minlp_sos.
# This may be replaced when dependencies are built.
