file(REMOVE_RECURSE
  "CMakeFiles/fmo_weakscaling.dir/bench/fmo_weakscaling.cpp.o"
  "CMakeFiles/fmo_weakscaling.dir/bench/fmo_weakscaling.cpp.o.d"
  "bench/fmo_weakscaling"
  "bench/fmo_weakscaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmo_weakscaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
