# Empty compiler generated dependencies file for fmo_weakscaling.
# This may be replaced when dependencies are built.
