# Empty compiler generated dependencies file for cesm_advisor.
# This may be replaced when dependencies are built.
