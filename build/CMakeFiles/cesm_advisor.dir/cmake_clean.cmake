file(REMOVE_RECURSE
  "CMakeFiles/cesm_advisor.dir/bench/cesm_advisor.cpp.o"
  "CMakeFiles/cesm_advisor.dir/bench/cesm_advisor.cpp.o.d"
  "bench/cesm_advisor"
  "bench/cesm_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cesm_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
