file(REMOVE_RECURSE
  "CMakeFiles/fmo_objectives.dir/bench/fmo_objectives.cpp.o"
  "CMakeFiles/fmo_objectives.dir/bench/fmo_objectives.cpp.o.d"
  "bench/fmo_objectives"
  "bench/fmo_objectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmo_objectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
