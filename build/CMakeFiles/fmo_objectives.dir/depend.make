# Empty dependencies file for fmo_objectives.
# This may be replaced when dependencies are built.
