file(REMOVE_RECURSE
  "CMakeFiles/cesm_table3.dir/bench/cesm_table3.cpp.o"
  "CMakeFiles/cesm_table3.dir/bench/cesm_table3.cpp.o.d"
  "bench/cesm_table3"
  "bench/cesm_table3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cesm_table3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
