# Empty compiler generated dependencies file for cesm_table3.
# This may be replaced when dependencies are built.
