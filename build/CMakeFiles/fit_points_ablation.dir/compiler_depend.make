# Empty compiler generated dependencies file for fit_points_ablation.
# This may be replaced when dependencies are built.
