file(REMOVE_RECURSE
  "CMakeFiles/fit_points_ablation.dir/bench/fit_points_ablation.cpp.o"
  "CMakeFiles/fit_points_ablation.dir/bench/fit_points_ablation.cpp.o.d"
  "bench/fit_points_ablation"
  "bench/fit_points_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fit_points_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
