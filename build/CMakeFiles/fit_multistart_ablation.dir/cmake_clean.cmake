file(REMOVE_RECURSE
  "CMakeFiles/fit_multistart_ablation.dir/bench/fit_multistart_ablation.cpp.o"
  "CMakeFiles/fit_multistart_ablation.dir/bench/fit_multistart_ablation.cpp.o.d"
  "bench/fit_multistart_ablation"
  "bench/fit_multistart_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fit_multistart_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
