# Empty compiler generated dependencies file for fit_multistart_ablation.
# This may be replaced when dependencies are built.
