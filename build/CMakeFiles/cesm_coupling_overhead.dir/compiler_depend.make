# Empty compiler generated dependencies file for cesm_coupling_overhead.
# This may be replaced when dependencies are built.
