file(REMOVE_RECURSE
  "CMakeFiles/cesm_coupling_overhead.dir/bench/cesm_coupling_overhead.cpp.o"
  "CMakeFiles/cesm_coupling_overhead.dir/bench/cesm_coupling_overhead.cpp.o.d"
  "bench/cesm_coupling_overhead"
  "bench/cesm_coupling_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cesm_coupling_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
