file(REMOVE_RECURSE
  "CMakeFiles/cesm_fig2_scaling.dir/bench/cesm_fig2_scaling.cpp.o"
  "CMakeFiles/cesm_fig2_scaling.dir/bench/cesm_fig2_scaling.cpp.o.d"
  "bench/cesm_fig2_scaling"
  "bench/cesm_fig2_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cesm_fig2_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
