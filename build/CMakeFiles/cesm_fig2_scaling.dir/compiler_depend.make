# Empty compiler generated dependencies file for cesm_fig2_scaling.
# This may be replaced when dependencies are built.
