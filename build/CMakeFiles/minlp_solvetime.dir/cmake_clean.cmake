file(REMOVE_RECURSE
  "CMakeFiles/minlp_solvetime.dir/bench/minlp_solvetime.cpp.o"
  "CMakeFiles/minlp_solvetime.dir/bench/minlp_solvetime.cpp.o.d"
  "bench/minlp_solvetime"
  "bench/minlp_solvetime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minlp_solvetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
