# Empty dependencies file for minlp_solvetime.
# This may be replaced when dependencies are built.
