file(REMOVE_RECURSE
  "CMakeFiles/minlp_branchrule.dir/bench/minlp_branchrule.cpp.o"
  "CMakeFiles/minlp_branchrule.dir/bench/minlp_branchrule.cpp.o.d"
  "bench/minlp_branchrule"
  "bench/minlp_branchrule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minlp_branchrule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
