# Empty compiler generated dependencies file for minlp_branchrule.
# This may be replaced when dependencies are built.
