# Empty compiler generated dependencies file for nlsq_fit_bench.
# This may be replaced when dependencies are built.
