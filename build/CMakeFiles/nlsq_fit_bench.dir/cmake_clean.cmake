file(REMOVE_RECURSE
  "CMakeFiles/nlsq_fit_bench.dir/bench/nlsq_fit_bench.cpp.o"
  "CMakeFiles/nlsq_fit_bench.dir/bench/nlsq_fit_bench.cpp.o.d"
  "bench/nlsq_fit_bench"
  "bench/nlsq_fit_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nlsq_fit_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
