file(REMOVE_RECURSE
  "CMakeFiles/fmo_predicted_vs_actual.dir/bench/fmo_predicted_vs_actual.cpp.o"
  "CMakeFiles/fmo_predicted_vs_actual.dir/bench/fmo_predicted_vs_actual.cpp.o.d"
  "bench/fmo_predicted_vs_actual"
  "bench/fmo_predicted_vs_actual.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmo_predicted_vs_actual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
