# Empty dependencies file for fmo_predicted_vs_actual.
# This may be replaced when dependencies are built.
