file(REMOVE_RECURSE
  "CMakeFiles/hslb_nlsq.dir/levmar.cpp.o"
  "CMakeFiles/hslb_nlsq.dir/levmar.cpp.o.d"
  "CMakeFiles/hslb_nlsq.dir/multistart.cpp.o"
  "CMakeFiles/hslb_nlsq.dir/multistart.cpp.o.d"
  "libhslb_nlsq.a"
  "libhslb_nlsq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hslb_nlsq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
