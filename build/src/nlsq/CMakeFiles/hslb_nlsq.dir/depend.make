# Empty dependencies file for hslb_nlsq.
# This may be replaced when dependencies are built.
