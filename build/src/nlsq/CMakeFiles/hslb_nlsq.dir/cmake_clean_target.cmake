file(REMOVE_RECURSE
  "libhslb_nlsq.a"
)
