file(REMOVE_RECURSE
  "CMakeFiles/hslb_common.dir/cli.cpp.o"
  "CMakeFiles/hslb_common.dir/cli.cpp.o.d"
  "CMakeFiles/hslb_common.dir/csv.cpp.o"
  "CMakeFiles/hslb_common.dir/csv.cpp.o.d"
  "CMakeFiles/hslb_common.dir/log.cpp.o"
  "CMakeFiles/hslb_common.dir/log.cpp.o.d"
  "CMakeFiles/hslb_common.dir/rng.cpp.o"
  "CMakeFiles/hslb_common.dir/rng.cpp.o.d"
  "CMakeFiles/hslb_common.dir/stats.cpp.o"
  "CMakeFiles/hslb_common.dir/stats.cpp.o.d"
  "CMakeFiles/hslb_common.dir/strings.cpp.o"
  "CMakeFiles/hslb_common.dir/strings.cpp.o.d"
  "CMakeFiles/hslb_common.dir/table.cpp.o"
  "CMakeFiles/hslb_common.dir/table.cpp.o.d"
  "libhslb_common.a"
  "libhslb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hslb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
