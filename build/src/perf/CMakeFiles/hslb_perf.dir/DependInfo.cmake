
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perf/benchdata.cpp" "src/perf/CMakeFiles/hslb_perf.dir/benchdata.cpp.o" "gcc" "src/perf/CMakeFiles/hslb_perf.dir/benchdata.cpp.o.d"
  "/root/repo/src/perf/fit.cpp" "src/perf/CMakeFiles/hslb_perf.dir/fit.cpp.o" "gcc" "src/perf/CMakeFiles/hslb_perf.dir/fit.cpp.o.d"
  "/root/repo/src/perf/model.cpp" "src/perf/CMakeFiles/hslb_perf.dir/model.cpp.o" "gcc" "src/perf/CMakeFiles/hslb_perf.dir/model.cpp.o.d"
  "/root/repo/src/perf/modelio.cpp" "src/perf/CMakeFiles/hslb_perf.dir/modelio.cpp.o" "gcc" "src/perf/CMakeFiles/hslb_perf.dir/modelio.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hslb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/hslb_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/nlsq/CMakeFiles/hslb_nlsq.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
