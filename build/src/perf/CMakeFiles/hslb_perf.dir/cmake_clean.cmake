file(REMOVE_RECURSE
  "CMakeFiles/hslb_perf.dir/benchdata.cpp.o"
  "CMakeFiles/hslb_perf.dir/benchdata.cpp.o.d"
  "CMakeFiles/hslb_perf.dir/fit.cpp.o"
  "CMakeFiles/hslb_perf.dir/fit.cpp.o.d"
  "CMakeFiles/hslb_perf.dir/model.cpp.o"
  "CMakeFiles/hslb_perf.dir/model.cpp.o.d"
  "CMakeFiles/hslb_perf.dir/modelio.cpp.o"
  "CMakeFiles/hslb_perf.dir/modelio.cpp.o.d"
  "libhslb_perf.a"
  "libhslb_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hslb_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
