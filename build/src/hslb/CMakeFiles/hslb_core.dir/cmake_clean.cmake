file(REMOVE_RECURSE
  "CMakeFiles/hslb_core.dir/allocation.cpp.o"
  "CMakeFiles/hslb_core.dir/allocation.cpp.o.d"
  "CMakeFiles/hslb_core.dir/budget.cpp.o"
  "CMakeFiles/hslb_core.dir/budget.cpp.o.d"
  "CMakeFiles/hslb_core.dir/gather.cpp.o"
  "CMakeFiles/hslb_core.dir/gather.cpp.o.d"
  "CMakeFiles/hslb_core.dir/objective.cpp.o"
  "CMakeFiles/hslb_core.dir/objective.cpp.o.d"
  "libhslb_core.a"
  "libhslb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hslb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
