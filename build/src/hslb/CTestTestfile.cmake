# CMake generated Testfile for 
# Source directory: /root/repo/src/hslb
# Build directory: /root/repo/build/src/hslb
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
