# Empty dependencies file for hslb_tool.
# This may be replaced when dependencies are built.
