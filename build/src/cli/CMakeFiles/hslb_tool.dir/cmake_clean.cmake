file(REMOVE_RECURSE
  "CMakeFiles/hslb_tool.dir/commands.cpp.o"
  "CMakeFiles/hslb_tool.dir/commands.cpp.o.d"
  "CMakeFiles/hslb_tool.dir/main.cpp.o"
  "CMakeFiles/hslb_tool.dir/main.cpp.o.d"
  "hslb"
  "hslb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hslb_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
