file(REMOVE_RECURSE
  "CMakeFiles/hslb_linalg.dir/decomp.cpp.o"
  "CMakeFiles/hslb_linalg.dir/decomp.cpp.o.d"
  "CMakeFiles/hslb_linalg.dir/matrix.cpp.o"
  "CMakeFiles/hslb_linalg.dir/matrix.cpp.o.d"
  "libhslb_linalg.a"
  "libhslb_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hslb_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
