file(REMOVE_RECURSE
  "libhslb_sim.a"
)
