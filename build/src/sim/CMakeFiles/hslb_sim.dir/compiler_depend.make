# Empty compiler generated dependencies file for hslb_sim.
# This may be replaced when dependencies are built.
