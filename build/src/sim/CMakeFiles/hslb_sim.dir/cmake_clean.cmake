file(REMOVE_RECURSE
  "CMakeFiles/hslb_sim.dir/engine.cpp.o"
  "CMakeFiles/hslb_sim.dir/engine.cpp.o.d"
  "CMakeFiles/hslb_sim.dir/machine.cpp.o"
  "CMakeFiles/hslb_sim.dir/machine.cpp.o.d"
  "CMakeFiles/hslb_sim.dir/noise.cpp.o"
  "CMakeFiles/hslb_sim.dir/noise.cpp.o.d"
  "CMakeFiles/hslb_sim.dir/taskgraph.cpp.o"
  "CMakeFiles/hslb_sim.dir/taskgraph.cpp.o.d"
  "libhslb_sim.a"
  "libhslb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hslb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
