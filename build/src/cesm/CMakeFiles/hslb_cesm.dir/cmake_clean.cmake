file(REMOVE_RECURSE
  "CMakeFiles/hslb_cesm.dir/advisor.cpp.o"
  "CMakeFiles/hslb_cesm.dir/advisor.cpp.o.d"
  "CMakeFiles/hslb_cesm.dir/component.cpp.o"
  "CMakeFiles/hslb_cesm.dir/component.cpp.o.d"
  "CMakeFiles/hslb_cesm.dir/data.cpp.o"
  "CMakeFiles/hslb_cesm.dir/data.cpp.o.d"
  "CMakeFiles/hslb_cesm.dir/finetuning.cpp.o"
  "CMakeFiles/hslb_cesm.dir/finetuning.cpp.o.d"
  "CMakeFiles/hslb_cesm.dir/layouts.cpp.o"
  "CMakeFiles/hslb_cesm.dir/layouts.cpp.o.d"
  "CMakeFiles/hslb_cesm.dir/pipeline.cpp.o"
  "CMakeFiles/hslb_cesm.dir/pipeline.cpp.o.d"
  "CMakeFiles/hslb_cesm.dir/simulator.cpp.o"
  "CMakeFiles/hslb_cesm.dir/simulator.cpp.o.d"
  "libhslb_cesm.a"
  "libhslb_cesm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hslb_cesm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
