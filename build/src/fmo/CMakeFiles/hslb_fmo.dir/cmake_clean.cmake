file(REMOVE_RECURSE
  "CMakeFiles/hslb_fmo.dir/cost.cpp.o"
  "CMakeFiles/hslb_fmo.dir/cost.cpp.o.d"
  "CMakeFiles/hslb_fmo.dir/driver.cpp.o"
  "CMakeFiles/hslb_fmo.dir/driver.cpp.o.d"
  "CMakeFiles/hslb_fmo.dir/energy.cpp.o"
  "CMakeFiles/hslb_fmo.dir/energy.cpp.o.d"
  "CMakeFiles/hslb_fmo.dir/fragment.cpp.o"
  "CMakeFiles/hslb_fmo.dir/fragment.cpp.o.d"
  "CMakeFiles/hslb_fmo.dir/gddi.cpp.o"
  "CMakeFiles/hslb_fmo.dir/gddi.cpp.o.d"
  "CMakeFiles/hslb_fmo.dir/molecule.cpp.o"
  "CMakeFiles/hslb_fmo.dir/molecule.cpp.o.d"
  "CMakeFiles/hslb_fmo.dir/schedulers.cpp.o"
  "CMakeFiles/hslb_fmo.dir/schedulers.cpp.o.d"
  "libhslb_fmo.a"
  "libhslb_fmo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hslb_fmo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
