# Empty compiler generated dependencies file for hslb_fmo.
# This may be replaced when dependencies are built.
