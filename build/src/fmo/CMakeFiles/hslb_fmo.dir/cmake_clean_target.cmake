file(REMOVE_RECURSE
  "libhslb_fmo.a"
)
