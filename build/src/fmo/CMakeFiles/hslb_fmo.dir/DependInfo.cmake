
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fmo/cost.cpp" "src/fmo/CMakeFiles/hslb_fmo.dir/cost.cpp.o" "gcc" "src/fmo/CMakeFiles/hslb_fmo.dir/cost.cpp.o.d"
  "/root/repo/src/fmo/driver.cpp" "src/fmo/CMakeFiles/hslb_fmo.dir/driver.cpp.o" "gcc" "src/fmo/CMakeFiles/hslb_fmo.dir/driver.cpp.o.d"
  "/root/repo/src/fmo/energy.cpp" "src/fmo/CMakeFiles/hslb_fmo.dir/energy.cpp.o" "gcc" "src/fmo/CMakeFiles/hslb_fmo.dir/energy.cpp.o.d"
  "/root/repo/src/fmo/fragment.cpp" "src/fmo/CMakeFiles/hslb_fmo.dir/fragment.cpp.o" "gcc" "src/fmo/CMakeFiles/hslb_fmo.dir/fragment.cpp.o.d"
  "/root/repo/src/fmo/gddi.cpp" "src/fmo/CMakeFiles/hslb_fmo.dir/gddi.cpp.o" "gcc" "src/fmo/CMakeFiles/hslb_fmo.dir/gddi.cpp.o.d"
  "/root/repo/src/fmo/molecule.cpp" "src/fmo/CMakeFiles/hslb_fmo.dir/molecule.cpp.o" "gcc" "src/fmo/CMakeFiles/hslb_fmo.dir/molecule.cpp.o.d"
  "/root/repo/src/fmo/schedulers.cpp" "src/fmo/CMakeFiles/hslb_fmo.dir/schedulers.cpp.o" "gcc" "src/fmo/CMakeFiles/hslb_fmo.dir/schedulers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hslb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/hslb_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/hslb/CMakeFiles/hslb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hslb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/minlp/CMakeFiles/hslb_minlp.dir/DependInfo.cmake"
  "/root/repo/build/src/nlsq/CMakeFiles/hslb_nlsq.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/hslb_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/hslb_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
