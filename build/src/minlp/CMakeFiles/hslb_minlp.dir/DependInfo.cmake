
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minlp/ampl.cpp" "src/minlp/CMakeFiles/hslb_minlp.dir/ampl.cpp.o" "gcc" "src/minlp/CMakeFiles/hslb_minlp.dir/ampl.cpp.o.d"
  "/root/repo/src/minlp/bnb.cpp" "src/minlp/CMakeFiles/hslb_minlp.dir/bnb.cpp.o" "gcc" "src/minlp/CMakeFiles/hslb_minlp.dir/bnb.cpp.o.d"
  "/root/repo/src/minlp/cuts.cpp" "src/minlp/CMakeFiles/hslb_minlp.dir/cuts.cpp.o" "gcc" "src/minlp/CMakeFiles/hslb_minlp.dir/cuts.cpp.o.d"
  "/root/repo/src/minlp/kelley.cpp" "src/minlp/CMakeFiles/hslb_minlp.dir/kelley.cpp.o" "gcc" "src/minlp/CMakeFiles/hslb_minlp.dir/kelley.cpp.o.d"
  "/root/repo/src/minlp/model.cpp" "src/minlp/CMakeFiles/hslb_minlp.dir/model.cpp.o" "gcc" "src/minlp/CMakeFiles/hslb_minlp.dir/model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hslb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/hslb_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/hslb_lp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
