file(REMOVE_RECURSE
  "CMakeFiles/hslb_minlp.dir/ampl.cpp.o"
  "CMakeFiles/hslb_minlp.dir/ampl.cpp.o.d"
  "CMakeFiles/hslb_minlp.dir/bnb.cpp.o"
  "CMakeFiles/hslb_minlp.dir/bnb.cpp.o.d"
  "CMakeFiles/hslb_minlp.dir/cuts.cpp.o"
  "CMakeFiles/hslb_minlp.dir/cuts.cpp.o.d"
  "CMakeFiles/hslb_minlp.dir/kelley.cpp.o"
  "CMakeFiles/hslb_minlp.dir/kelley.cpp.o.d"
  "CMakeFiles/hslb_minlp.dir/model.cpp.o"
  "CMakeFiles/hslb_minlp.dir/model.cpp.o.d"
  "libhslb_minlp.a"
  "libhslb_minlp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hslb_minlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
