// Protocol and cache contract tests of the allocation service: request
// canonicalization (the cache-key normalization), instance signatures,
// wire-format round-trips, and the LRU semantics the batched service's
// determinism contract leans on (find() does not touch recency; nearest()
// breaks ties toward the most recently used entry).
#include "service/cache.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "service/protocol.hpp"

namespace hslb::service {
namespace {

SolveTaskSpec task(std::string name, double a, double b = 0.1, double c = 1.0,
                   double d = 0.01) {
  SolveTaskSpec t;
  t.name = std::move(name);
  t.a = a;
  t.b = b;
  t.c = c;
  t.d = d;
  return t;
}

Request solve_request(long long budget, std::vector<SolveTaskSpec> tasks) {
  Request r;
  r.kind = RequestKind::Solve;
  r.budget = budget;
  r.tasks = std::move(tasks);
  return r;
}

Request fmo_request(long long budget, long long fragments,
                    std::string family = "water") {
  Request r;
  r.kind = RequestKind::Fmo;
  r.budget = budget;
  r.fragments = fragments;
  r.family = std::move(family);
  return r;
}

CacheEntry make_entry(const Request& raw) {
  CacheEntry e;
  e.request = canonicalize(raw);
  e.signature = signature(e.request);
  e.response.signature = e.signature;
  return e;
}

TEST(Canonicalize, SortsTasksAndResolvesDefaults) {
  const Request c =
      canonicalize(solve_request(32, {task("ocn", 2.0), task("atm", 1.0)}));
  ASSERT_EQ(c.tasks.size(), 2u);
  EXPECT_EQ(c.tasks[0].name, "atm");
  EXPECT_EQ(c.tasks[1].name, "ocn");
  // max_nodes 0 resolves to the budget; fmo-side fields are neutralized so
  // they cannot leak into a solve instance's identity.
  EXPECT_EQ(c.tasks[0].max_nodes, 32);
  EXPECT_TRUE(c.family.empty());
  EXPECT_EQ(c.fragments, 0);
}

TEST(Canonicalize, SignatureIsTaskOrderInvariant) {
  const auto a =
      signature(canonicalize(solve_request(32, {task("x", 1.0), task("y", 2.0)})));
  const auto b =
      signature(canonicalize(solve_request(32, {task("y", 2.0), task("x", 1.0)})));
  EXPECT_EQ(a, b);
}

TEST(Canonicalize, QuantizationAbsorbsSubToleranceNoise) {
  // 6 significant digits: 1e-10 relative noise canonicalizes identically,
  // a 1% change does not.
  const auto base = signature(canonicalize(solve_request(32, {task("x", 1.0)})));
  const auto noisy =
      signature(canonicalize(solve_request(32, {task("x", 1.0 + 1e-10)})));
  const auto moved =
      signature(canonicalize(solve_request(32, {task("x", 1.01)})));
  EXPECT_EQ(base, noisy);
  EXPECT_NE(base, moved);
}

TEST(Canonicalize, FamilyIsCaseInsensitive) {
  EXPECT_EQ(signature(canonicalize(fmo_request(48, 6, "Water"))),
            signature(canonicalize(fmo_request(48, 6, "water"))));
}

TEST(Canonicalize, RejectsMalformedRequests) {
  EXPECT_THROW(canonicalize(solve_request(32, {})), std::invalid_argument);
  EXPECT_THROW(canonicalize(solve_request(32, {task("x", 1.0), task("x", 2.0)})),
               std::invalid_argument);
  EXPECT_THROW(canonicalize(solve_request(32, {task("a:b", 1.0)})),
               std::invalid_argument);
  Request bad_bounds = solve_request(32, {task("x", 1.0)});
  bad_bounds.tasks[0].min_nodes = 8;
  bad_bounds.tasks[0].max_nodes = 4;
  EXPECT_THROW(canonicalize(bad_bounds), std::invalid_argument);
  Request starved = solve_request(4, {task("x", 1.0), task("y", 1.0)});
  starved.tasks[0].min_nodes = 3;
  starved.tasks[1].min_nodes = 3;
  EXPECT_THROW(canonicalize(starved), std::invalid_argument);
  EXPECT_THROW(canonicalize(fmo_request(48, 6, "granite")),
               std::invalid_argument);
  EXPECT_THROW(canonicalize(fmo_request(4, 6)), std::invalid_argument);
}

TEST(Protocol, FormatParseCanonicalizeIsIdentity) {
  const Request solve = canonicalize(
      solve_request(64, {task("atm", 400.0, 3.0, 1.0, 2.0), task("ocn", 250.0)}));
  const Request back = canonicalize(parse_request(format_request(solve)));
  EXPECT_EQ(signature(solve), signature(back));

  Request fmo = fmo_request(48, 6, "peptide");
  fmo.link_gb = 0.85;
  fmo.mem_gb = 2.0;
  fmo.page_s_per_gb = 1.5;
  const Request cfmo = canonicalize(fmo);
  EXPECT_EQ(signature(cfmo),
            signature(canonicalize(parse_request(format_request(cfmo)))));
}

TEST(Protocol, ParseRejectsUnknownKeysAndKinds) {
  EXPECT_THROW(parse_request("solve tasks=x:1:0:1:0:1:0 frobnicate=1"),
               std::invalid_argument);
  EXPECT_THROW(parse_request("allocate budget=8"), std::invalid_argument);
}

TEST(Protocol, LoadScriptSkipsBlanksAndComments) {
  std::istringstream in(
      "# request script\n"
      "\n"
      "solve budget=8 tasks=x:1:0:1:0:1:0\n"
      "  fmo fragments=6 budget=48\n");
  const auto script = load_script(in);
  ASSERT_EQ(script.size(), 2u);
  EXPECT_EQ(script[0].kind, RequestKind::Solve);
  EXPECT_EQ(script[1].kind, RequestKind::Fmo);
}

TEST(SolutionCache, FindDoesNotTouchRecency) {
  SolutionCache cache(2);
  const auto a = make_entry(solve_request(32, {task("x", 1.0)}));
  const auto b = make_entry(solve_request(32, {task("x", 2.0)}));
  const auto c = make_entry(solve_request(32, {task("x", 3.0)}));
  cache.insert(a);
  cache.insert(b);
  // find() is classification, not commitment: it must not promote `a`, so
  // the next insert still evicts `a` as least recently used.
  ASSERT_NE(cache.find(a.signature), nullptr);
  cache.insert(c);
  EXPECT_EQ(cache.find(a.signature), nullptr);
  EXPECT_NE(cache.find(b.signature), nullptr);
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(SolutionCache, TouchPromotesAgainstEviction) {
  SolutionCache cache(2);
  const auto a = make_entry(solve_request(32, {task("x", 1.0)}));
  const auto b = make_entry(solve_request(32, {task("x", 2.0)}));
  const auto c = make_entry(solve_request(32, {task("x", 3.0)}));
  cache.insert(a);
  cache.insert(b);
  cache.touch(a.signature);
  cache.insert(c);
  EXPECT_NE(cache.find(a.signature), nullptr);
  EXPECT_EQ(cache.find(b.signature), nullptr);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(SolutionCache, InsertReplacesExistingEntryWithoutEviction) {
  SolutionCache cache(2);
  auto a = make_entry(solve_request(32, {task("x", 1.0)}));
  cache.insert(a);
  a.response.objective_value = 7.0;
  cache.insert(a);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_DOUBLE_EQ(cache.find(a.signature)->response.objective_value, 7.0);
}

TEST(SolutionCache, NearestPicksSmallestDistance) {
  SolutionCache cache(4);
  cache.insert(make_entry(solve_request(32, {task("x", 1.0)})));
  const auto close = make_entry(solve_request(32, {task("x", 2.1)}));
  cache.insert(close);
  double dist = -1.0;
  const Request probe = canonicalize(solve_request(32, {task("x", 2.0)}));
  const CacheEntry* best = cache.nearest(probe, &dist);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->signature, close.signature);
  EXPECT_GT(dist, 0.0);
  EXPECT_DOUBLE_EQ(dist, signature_distance(probe, close.request));
}

TEST(SolutionCache, NearestBreaksTiesTowardRecency) {
  // Donors at a=1 and a=4 are exactly equidistant from a=2 (relative gap
  // 0.5 both ways); the more recently used one must win deterministically.
  SolutionCache cache(4);
  const auto lo = make_entry(solve_request(32, {task("x", 1.0)}));
  const auto hi = make_entry(solve_request(32, {task("x", 4.0)}));
  cache.insert(lo);
  cache.insert(hi);
  const Request probe = canonicalize(solve_request(32, {task("x", 2.0)}));
  ASSERT_NE(cache.nearest(probe), nullptr);
  EXPECT_EQ(cache.nearest(probe)->signature, hi.signature);
  cache.touch(lo.signature);
  EXPECT_EQ(cache.nearest(probe)->signature, lo.signature);
}

TEST(SolutionCache, NearestIgnoresIncomparableInstances) {
  SolutionCache cache(4);
  Request other_objective = solve_request(32, {task("x", 1.0)});
  other_objective.objective = Objective::MinSum;
  cache.insert(make_entry(other_objective));
  cache.insert(make_entry(fmo_request(48, 6)));
  const Request probe = canonicalize(solve_request(32, {task("x", 1.0)}));
  EXPECT_EQ(cache.nearest(probe), nullptr);
}

}  // namespace
}  // namespace hslb::service
