#include "hslb/gather.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/contracts.hpp"
#include "hslb/allocation.hpp"

namespace hslb {
namespace {

TEST(GeometricNodeCounts, IncludesEndpoints) {
  const auto counts = geometric_node_counts(2, 2048, 5);
  EXPECT_EQ(counts.front(), 2);
  EXPECT_EQ(counts.back(), 2048);
  EXPECT_GE(counts.size(), 2u);
  EXPECT_LE(counts.size(), 5u);
}

TEST(GeometricNodeCounts, SortedAndUnique) {
  const auto counts = geometric_node_counts(1, 100000, 8);
  for (std::size_t i = 1; i < counts.size(); ++i)
    EXPECT_LT(counts[i - 1], counts[i]);
}

TEST(GeometricNodeCounts, GeometricSpacing) {
  const auto counts = geometric_node_counts(1, 4096, 5);
  // For a power-of-two span the intermediate points are powers too.
  EXPECT_EQ(counts, (std::vector<long long>{1, 8, 64, 512, 4096}));
}

TEST(GeometricNodeCounts, DegenerateRange) {
  const auto counts = geometric_node_counts(7, 7, 4);
  EXPECT_EQ(counts, (std::vector<long long>{7}));
}

TEST(GeometricNodeCounts, ValidatesInput) {
  EXPECT_THROW(geometric_node_counts(0, 10, 4), ContractViolation);
  EXPECT_THROW(geometric_node_counts(10, 5, 4), ContractViolation);
  EXPECT_THROW(geometric_node_counts(1, 10, 1), ContractViolation);
}

TEST(Gather, ProbesEveryTaskAtEveryCount) {
  std::set<std::pair<std::string, long long>> probed;
  const auto table = gather(
      {"atm", "ocn"}, {4, 16, 64},
      [&](const std::string& task, long long n, std::uint64_t) {
        probed.insert({task, n});
        return 1.0 + static_cast<double>(n);
      });
  EXPECT_EQ(probed.size(), 6u);
  ASSERT_EQ(table.tasks.size(), 2u);
  EXPECT_EQ(table.find("atm").samples.size(), 3u);
  EXPECT_DOUBLE_EQ(table.find("ocn").samples[1].seconds, 17.0);
}

TEST(Gather, RepetitionsProduceMultipleSamples) {
  GatherOptions opt;
  opt.repetitions = 3;
  std::size_t calls = 0;
  const auto table = gather(
      {"x"}, {8},
      [&](const std::string&, long long, std::uint64_t rep) {
        ++calls;
        return 1.0 + static_cast<double>(rep);
      },
      opt);
  EXPECT_EQ(calls, 3u);
  EXPECT_EQ(table.find("x").samples.size(), 3u);
}

TEST(Gather, PerTaskPlans) {
  const auto table = gather(
      {{"ocn", {2, 4}}, {"atm", {1, 10, 100}}},
      [](const std::string&, long long n, std::uint64_t) {
        return static_cast<double>(n);
      });
  EXPECT_EQ(table.find("ocn").samples.size(), 2u);
  EXPECT_EQ(table.find("atm").samples.size(), 3u);
}

TEST(Gather, RejectsNonPositiveTimings) {
  EXPECT_THROW(
      gather({"x"}, {4},
             [](const std::string&, long long, std::uint64_t) { return 0.0; }),
      ContractViolation);
}

TEST(Allocation, LookupAndTotals) {
  Allocation a;
  a.tasks = {{"atm", 104, 306.9}, {"ocn", 24, 362.7}};
  a.predicted_total = 416.0;
  EXPECT_EQ(a.find("atm").nodes, 104);
  EXPECT_TRUE(a.contains("ocn"));
  EXPECT_FALSE(a.contains("ice"));
  EXPECT_THROW(a.find("ice"), ContractViolation);
  EXPECT_EQ(a.total_nodes(), 128);
  const auto s = a.str();
  EXPECT_NE(s.find("atm"), std::string::npos);
  EXPECT_NE(s.find("416.000"), std::string::npos);
}

}  // namespace
}  // namespace hslb
