#include "linalg/decomp.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace hslb::linalg {
namespace {

Matrix random_matrix(Rng& rng, std::size_t rows, std::size_t cols) {
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rng.uniform(-2.0, 2.0);
  return m;
}

Matrix random_spd(Rng& rng, std::size_t n) {
  const auto a = random_matrix(rng, n, n);
  auto spd = a.gram();
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += 0.5;  // ensure PD
  return spd;
}

TEST(Cholesky, SolvesKnownSystem) {
  const auto a = Matrix::from_rows({{4.0, 2.0}, {2.0, 3.0}});
  const auto chol = Cholesky::factor(a);
  ASSERT_TRUE(chol.has_value());
  const auto x = chol->solve(std::vector<double>{8.0, 7.0});
  // A x = b with x = (1.25, 1.5): 4*1.25+2*1.5 = 8, 2*1.25+3*1.5 = 7
  EXPECT_NEAR(x[0], 1.25, 1e-12);
  EXPECT_NEAR(x[1], 1.5, 1e-12);
}

TEST(Cholesky, RejectsIndefinite) {
  const auto a = Matrix::from_rows({{1.0, 2.0}, {2.0, 1.0}});  // eig -1, 3
  EXPECT_FALSE(Cholesky::factor(a).has_value());
}

TEST(Cholesky, PropertyRandomSpdResidual) {
  Rng rng(101);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 8));
    const auto a = random_spd(rng, n);
    const auto chol = Cholesky::factor(a);
    ASSERT_TRUE(chol.has_value());
    Vector b(n);
    for (auto& v : b) v = rng.uniform(-5.0, 5.0);
    const auto x = chol->solve(b);
    const auto ax = a.mul(x);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-8);
  }
}

TEST(QR, ExactSolveSquare) {
  const auto a = Matrix::from_rows({{2.0, 1.0}, {1.0, 3.0}});
  QR qr(a);
  const auto x = qr.solve(std::vector<double>{5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(QR, LeastSquaresOverdetermined) {
  // Fit y = p0 + p1*t through (0,1),(1,3),(2,5): exact line 1 + 2t.
  const auto a = Matrix::from_rows({{1.0, 0.0}, {1.0, 1.0}, {1.0, 2.0}});
  const auto x = lstsq(a, std::vector<double>{1.0, 3.0, 5.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(QR, LeastSquaresResidualOrthogonal) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t rows = static_cast<std::size_t>(rng.uniform_int(3, 10));
    const std::size_t cols = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(rows)));
    const auto a = random_matrix(rng, rows, cols);
    QR qr(a);
    if (qr.min_abs_diag_r() < 1e-6) continue;  // skip near-singular draws
    Vector b(rows);
    for (auto& v : b) v = rng.uniform(-3.0, 3.0);
    const auto x = qr.solve(b);
    // Normal equations: A^T (A x - b) = 0.
    auto r = a.mul(x);
    for (std::size_t i = 0; i < rows; ++i) r[i] -= b[i];
    const auto atr = a.mul_transpose(r);
    for (double v : atr) EXPECT_NEAR(v, 0.0, 1e-8);
  }
}

TEST(QR, RankDeficientThrows) {
  const auto a = Matrix::from_rows({{1.0, 2.0}, {2.0, 4.0}, {3.0, 6.0}});
  QR qr(a);
  EXPECT_THROW(qr.solve(std::vector<double>{1.0, 2.0, 3.0}), ContractViolation);
}

TEST(LU, SolvesKnownSystem) {
  const auto a = Matrix::from_rows({{0.0, 2.0}, {1.0, 1.0}});  // needs pivoting
  const auto lu = LU::factor(a);
  ASSERT_TRUE(lu.has_value());
  const auto x = lu->solve(std::vector<double>{4.0, 3.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(LU, DetectsSingular) {
  const auto a = Matrix::from_rows({{1.0, 2.0}, {2.0, 4.0}});
  EXPECT_FALSE(LU::factor(a).has_value());
}

TEST(LU, PropertyRandomSolveAndTranspose) {
  Rng rng(55);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 10));
    auto a = random_matrix(rng, n, n);
    for (std::size_t i = 0; i < n; ++i) a(i, i) += 3.0;  // well-conditioned
    const auto lu = LU::factor(a);
    ASSERT_TRUE(lu.has_value());
    Vector b(n);
    for (auto& v : b) v = rng.uniform(-5.0, 5.0);

    const auto x = lu->solve(b);
    const auto ax = a.mul(x);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-8);

    const auto xt = lu->solve_transpose(b);
    const auto atxt = a.mul_transpose(xt);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(atxt[i], b[i], 1e-8);
  }
}

}  // namespace
}  // namespace hslb::linalg
