#include "linalg/decomp.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace hslb::linalg {
namespace {

Matrix random_matrix(Rng& rng, std::size_t rows, std::size_t cols) {
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rng.uniform(-2.0, 2.0);
  return m;
}

Matrix random_spd(Rng& rng, std::size_t n) {
  const auto a = random_matrix(rng, n, n);
  auto spd = a.gram();
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += 0.5;  // ensure PD
  return spd;
}

TEST(Cholesky, SolvesKnownSystem) {
  const auto a = Matrix::from_rows({{4.0, 2.0}, {2.0, 3.0}});
  const auto chol = Cholesky::factor(a);
  ASSERT_TRUE(chol.has_value());
  const auto x = chol->solve(std::vector<double>{8.0, 7.0});
  // A x = b with x = (1.25, 1.5): 4*1.25+2*1.5 = 8, 2*1.25+3*1.5 = 7
  EXPECT_NEAR(x[0], 1.25, 1e-12);
  EXPECT_NEAR(x[1], 1.5, 1e-12);
}

TEST(Cholesky, RejectsIndefinite) {
  const auto a = Matrix::from_rows({{1.0, 2.0}, {2.0, 1.0}});  // eig -1, 3
  EXPECT_FALSE(Cholesky::factor(a).has_value());
}

TEST(Cholesky, PropertyRandomSpdResidual) {
  Rng rng(101);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 8));
    const auto a = random_spd(rng, n);
    const auto chol = Cholesky::factor(a);
    ASSERT_TRUE(chol.has_value());
    Vector b(n);
    for (auto& v : b) v = rng.uniform(-5.0, 5.0);
    const auto x = chol->solve(b);
    const auto ax = a.mul(x);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-8);
  }
}

TEST(QR, ExactSolveSquare) {
  const auto a = Matrix::from_rows({{2.0, 1.0}, {1.0, 3.0}});
  QR qr(a);
  const auto x = qr.solve(std::vector<double>{5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(QR, LeastSquaresOverdetermined) {
  // Fit y = p0 + p1*t through (0,1),(1,3),(2,5): exact line 1 + 2t.
  const auto a = Matrix::from_rows({{1.0, 0.0}, {1.0, 1.0}, {1.0, 2.0}});
  const auto x = lstsq(a, std::vector<double>{1.0, 3.0, 5.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(QR, LeastSquaresResidualOrthogonal) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t rows = static_cast<std::size_t>(rng.uniform_int(3, 10));
    const std::size_t cols = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(rows)));
    const auto a = random_matrix(rng, rows, cols);
    QR qr(a);
    if (qr.min_abs_diag_r() < 1e-6) continue;  // skip near-singular draws
    Vector b(rows);
    for (auto& v : b) v = rng.uniform(-3.0, 3.0);
    const auto x = qr.solve(b);
    // Normal equations: A^T (A x - b) = 0.
    auto r = a.mul(x);
    for (std::size_t i = 0; i < rows; ++i) r[i] -= b[i];
    const auto atr = a.mul_transpose(r);
    for (double v : atr) EXPECT_NEAR(v, 0.0, 1e-8);
  }
}

TEST(QR, RankDeficientThrows) {
  const auto a = Matrix::from_rows({{1.0, 2.0}, {2.0, 4.0}, {3.0, 6.0}});
  QR qr(a);
  EXPECT_THROW(qr.solve(std::vector<double>{1.0, 2.0, 3.0}), ContractViolation);
}

TEST(LU, SolvesKnownSystem) {
  const auto a = Matrix::from_rows({{0.0, 2.0}, {1.0, 1.0}});  // needs pivoting
  const auto lu = LU::factor(a);
  ASSERT_TRUE(lu.has_value());
  const auto x = lu->solve(std::vector<double>{4.0, 3.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(LU, DetectsSingular) {
  const auto a = Matrix::from_rows({{1.0, 2.0}, {2.0, 4.0}});
  EXPECT_FALSE(LU::factor(a).has_value());
}

TEST(LU, PropertyRandomSolveAndTranspose) {
  Rng rng(55);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 10));
    auto a = random_matrix(rng, n, n);
    for (std::size_t i = 0; i < n; ++i) a(i, i) += 3.0;  // well-conditioned
    const auto lu = LU::factor(a);
    ASSERT_TRUE(lu.has_value());
    Vector b(n);
    for (auto& v : b) v = rng.uniform(-5.0, 5.0);

    const auto x = lu->solve(b);
    const auto ax = a.mul(x);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-8);

    const auto xt = lu->solve_transpose(b);
    const auto atxt = a.mul_transpose(xt);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(atxt[i], b[i], 1e-8);
  }
}

std::vector<std::vector<SparseEntry>> to_columns(const Matrix& a) {
  std::vector<std::vector<SparseEntry>> cols(a.cols());
  for (std::size_t j = 0; j < a.cols(); ++j)
    for (std::size_t i = 0; i < a.rows(); ++i)
      if (a(i, j) != 0.0) cols[j].push_back({i, a(i, j)});
  return cols;
}

/// Random sparse square matrix with a boosted diagonal so every draw is
/// comfortably nonsingular (the FT tests replace columns repeatedly; we
/// want instability to be the exception we trigger deliberately).
Matrix random_sparse_square(Rng& rng, std::size_t n) {
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) = rng.uniform(2.0, 4.0) * (rng.uniform(0.0, 1.0) < 0.5 ? -1 : 1);
    for (std::size_t j = 0; j < n; ++j)
      if (j != i && rng.uniform(0.0, 1.0) < 0.3) a(i, j) = rng.uniform(-1, 1);
  }
  return a;
}

TEST(UpdatableLU, MatchesBaseFactorBeforeUpdates) {
  Rng rng(202);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 12));
    const auto a = random_sparse_square(rng, n);
    const auto base = SparseLU::factor(n, to_columns(a));
    ASSERT_TRUE(base.has_value());
    const UpdatableLU lu(*base);
    EXPECT_EQ(lu.nnz(), base->nnz());
    EXPECT_EQ(lu.updates(), 0u);
    Vector b(n);
    for (auto& v : b) v = rng.uniform(-5.0, 5.0);
    const auto x = lu.solve(b);
    const auto xb = base->solve(b);
    const auto xt = lu.solve_transpose(b);
    const auto xtb = base->solve_transpose(b);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(x[i], xb[i], 1e-12);
      EXPECT_NEAR(xt[i], xtb[i], 1e-12);
    }
  }
}

TEST(UpdatableLU, PropertyColumnReplacementTracksRefactoredMatrix) {
  // Replace several columns via solve_entering + update and check both
  // solves against a dense LU of the explicitly modified matrix.
  Rng rng(303);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(2, 12));
    auto a = random_sparse_square(rng, n);
    const auto base = SparseLU::factor(n, to_columns(a));
    ASSERT_TRUE(base.has_value());
    UpdatableLU lu(*base);

    const int rounds = static_cast<int>(rng.uniform_int(1, 6));
    for (int round = 0; round < rounds; ++round) {
      const auto p = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      Vector aq(n, 0.0);
      aq[p] = rng.uniform(2.0, 4.0);  // keep the replacement well-posed
      for (std::size_t i = 0; i < n; ++i)
        if (i != p && rng.uniform(0.0, 1.0) < 0.4) aq[i] = rng.uniform(-1, 1);

      const auto dir = lu.solve_entering(aq);
      ASSERT_GT(std::abs(dir[p]), 1e-8);  // replacement keeps B nonsingular
      ASSERT_EQ(lu.update(p), UpdatableLU::UpdateResult::Ok);
      for (std::size_t i = 0; i < n; ++i) a(i, p) = aq[i];

      const auto dense = LU::factor(a);
      ASSERT_TRUE(dense.has_value());
      Vector b(n);
      for (auto& v : b) v = rng.uniform(-5.0, 5.0);
      const auto x = lu.solve(b);
      const auto xd = dense->solve(b);
      const auto xt = lu.solve_transpose(b);
      const auto xtd = dense->solve_transpose(b);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(x[i], xd[i], 1e-7);
        EXPECT_NEAR(xt[i], xtd[i], 1e-7);
      }
    }
    EXPECT_EQ(lu.updates(), static_cast<std::size_t>(rounds));
    EXPECT_GE(lu.nnz(), lu.base_fill());
  }
}

TEST(UpdatableLU, RejectsSingularReplacement) {
  // Replacing column 1 with a copy of column 0 makes the basis singular;
  // the update must report Unstable instead of committing garbage.
  const auto a = Matrix::from_rows(
      {{3.0, 1.0, 0.0}, {1.0, 4.0, 1.0}, {0.0, 1.0, 3.0}});
  const auto base = SparseLU::factor(3, to_columns(a));
  ASSERT_TRUE(base.has_value());
  UpdatableLU lu(*base);
  const Vector col0{3.0, 1.0, 0.0};
  lu.solve_entering(col0);
  EXPECT_EQ(lu.update(1), UpdatableLU::UpdateResult::Unstable);
}

TEST(UpdatableLU, UpdateWithoutEnteringSolveThrows) {
  const auto a = Matrix::from_rows({{2.0, 0.0}, {0.0, 2.0}});
  const auto base = SparseLU::factor(2, to_columns(a));
  ASSERT_TRUE(base.has_value());
  UpdatableLU lu(*base);
  EXPECT_THROW(lu.update(0), ContractViolation);
}

}  // namespace
}  // namespace hslb::linalg
