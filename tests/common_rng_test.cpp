#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/contracts.hpp"
#include "common/stats.hpp"

namespace hslb {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.5, 10.25);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 10.25);
  }
}

TEST(Rng, UniformMeanApproachesHalf) {
  Rng rng(5);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = rng.uniform();
  EXPECT_NEAR(stats::mean(xs), 0.5, 0.01);
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng rng(6);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(2, 9);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 9);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(8);
  EXPECT_THROW(rng.uniform_int(5, 4), ContractViolation);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(9);
  std::vector<double> xs(40000);
  for (auto& x : xs) x = rng.normal();
  EXPECT_NEAR(stats::mean(xs), 0.0, 0.02);
  EXPECT_NEAR(stats::stddev(xs), 1.0, 0.02);
}

TEST(Rng, NormalShiftScale) {
  Rng rng(10);
  std::vector<double> xs(40000);
  for (auto& x : xs) x = rng.normal(5.0, 2.0);
  EXPECT_NEAR(stats::mean(xs), 5.0, 0.05);
  EXPECT_NEAR(stats::stddev(xs), 2.0, 0.05);
}

TEST(Rng, LognormalUnitMeanHasUnitMean) {
  Rng rng(11);
  std::vector<double> xs(60000);
  for (auto& x : xs) x = rng.lognormal_unit_mean(0.1);
  EXPECT_NEAR(stats::mean(xs), 1.0, 0.005);
  EXPECT_NEAR(stats::stddev(xs), 0.1, 0.01);
  for (double x : xs) EXPECT_GT(x, 0.0);
}

TEST(Rng, LognormalZeroCvIsIdentity) {
  Rng rng(12);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.lognormal_unit_mean(0.0), 1.0);
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(13);
  for (std::size_t n : {0u, 1u, 2u, 17u, 100u}) {
    const auto p = rng.permutation(n);
    ASSERT_EQ(p.size(), n);
    std::set<std::size_t> s(p.begin(), p.end());
    EXPECT_EQ(s.size(), n);
    if (n > 0) {
      EXPECT_EQ(*s.begin(), 0u);
      EXPECT_EQ(*s.rbegin(), n - 1);
    }
  }
}

TEST(Rng, SpawnStreamsAreIndependent) {
  Rng parent(14);
  Rng child1 = parent.spawn();
  Rng child2 = parent.spawn();
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (child1.next() == child2.next()) ++same;
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace hslb
