#include <gtest/gtest.h>

#include <cmath>

#include "fmo/driver.hpp"
#include "fmo/molecule.hpp"

namespace hslb::fmo {
namespace {

System small_system(std::uint64_t seed = 50) {
  return water_cluster({.fragments = 10, .merge_fraction = 0.4,
                        .scf_cutoff_angstrom = 4.5, .seed = seed});
}

// ADPT-1: an adaptive run whose monitor never trips is the static pipeline
// — same schedule, same trace bytes, same accounting, same report fields.
TEST(FmoAdaptive, OneEpochParityWithStatic) {
  const auto sys = small_system();
  CostModel cost;
  PipelineOptions stat;
  PipelineOptions adap = stat;
  adap.rebalance.adaptive = true;
  adap.rebalance.imbalance_threshold = 1e9;  // never trigger
  adap.rebalance.drift_threshold = 1e9;

  const auto a = run_pipeline(sys, cost, 80, stat);
  const auto b = run_pipeline(sys, cost, 80, adap);

  // Execution: bit-identical trace and accounting.
  EXPECT_EQ(a.hslb.trace.to_csv(), b.hslb.trace.to_csv());
  EXPECT_EQ(a.hslb.total_seconds, b.hslb.total_seconds);
  EXPECT_EQ(a.hslb.scc_seconds, b.hslb.scc_seconds);
  EXPECT_EQ(a.hslb.dimer_seconds, b.hslb.dimer_seconds);
  EXPECT_EQ(a.hslb.busy_node_seconds, b.hslb.busy_node_seconds);
  EXPECT_EQ(a.hslb.group_busy, b.hslb.group_busy);
  EXPECT_EQ(a.hslb.group_nodes, b.hslb.group_nodes);
  EXPECT_EQ(a.hslb.energy.total(), b.hslb.energy.total());
  EXPECT_EQ(a.hslb.comm_seconds, b.hslb.comm_seconds);
  EXPECT_EQ(a.hslb.page_seconds, b.hslb.page_seconds);
  EXPECT_EQ(a.hslb.monomer_task_seconds, b.hslb.monomer_task_seconds);
  EXPECT_TRUE(a.hslb.completed && b.hslb.completed);

  // The DLB baseline is untouched by the adaptive flag.
  EXPECT_EQ(a.dlb.trace.to_csv(), b.dlb.trace.to_csv());

  // Report: every deterministic field matches; the closed-loop columns
  // report exactly one epoch, zero rebalances, zero migration.
  EXPECT_EQ(a.report.predicted_total, b.report.predicted_total);
  EXPECT_EQ(a.report.actual_total, b.report.actual_total);
  EXPECT_EQ(a.report.exec_makespan, b.report.exec_makespan);
  EXPECT_EQ(a.report.exec_busy_node_seconds, b.report.exec_busy_node_seconds);
  EXPECT_EQ(a.report.exec_imbalance, b.report.exec_imbalance);
  EXPECT_EQ(a.report.exec_percent_imbalance, b.report.exec_percent_imbalance);
  EXPECT_EQ(a.report.epochs, 1u);
  EXPECT_EQ(b.report.epochs, 1u);
  EXPECT_EQ(b.report.rebalances, 0u);
  EXPECT_EQ(b.report.migration_seconds, 0.0);
  EXPECT_TRUE(b.resolve_stats.empty());
}

// ADPT-2: parity holds on every worker-thread count (gather/fit threading
// must not leak into the closed-loop decisions).
TEST(FmoAdaptive, ParityAcrossThreadCounts) {
  const auto sys = small_system(51);
  CostModel cost;
  PipelineOptions adap;
  adap.rebalance.adaptive = true;
  adap.rebalance.imbalance_threshold = 1e9;
  adap.rebalance.drift_threshold = 1e9;
  adap.threads = 1;
  const auto t1 = run_pipeline(sys, cost, 64, adap);
  adap.threads = 4;
  const auto t4 = run_pipeline(sys, cost, 64, adap);
  EXPECT_EQ(t1.hslb.trace.to_csv(), t4.hslb.trace.to_csv());
  EXPECT_EQ(t1.hslb.total_seconds, t4.hslb.total_seconds);
  EXPECT_EQ(t1.report.rebalances, t4.report.rebalances);
}

// ADPT-3: a permanent node failure the static schedule cannot survive is
// completed by the closed loop — re-solve over the surviving segment,
// migration charged on a communication-modelling machine.
TEST(FmoAdaptive, CompletesPermanentFailureStaticCannot) {
  const auto sys = small_system(52);
  CostModel cost;
  PipelineOptions opt;
  opt.run.fail_node = 0;
  opt.run.fail_time = 1.0;  // permanent (default downtime = infinity)
  // A machine that models communication, so migration has a real price.
  opt.run.machine = sim::Machine{"intrepid", 64, 4};
  opt.run.machine.link_gb_per_s = 0.425;  // BG/P injection bandwidth

  const auto stat = run_pipeline(sys, cost, 64, opt);
  EXPECT_FALSE(stat.hslb.completed);

  PipelineOptions adap = opt;
  adap.rebalance.adaptive = true;
  const auto res = run_pipeline(sys, cost, 64, adap);
  EXPECT_TRUE(res.hslb.completed);
  EXPECT_GE(res.report.rebalances, 1u);
  EXPECT_GT(res.report.migration_seconds, 0.0);
  EXPECT_GT(res.hslb.restarts, 0u);
  // Re-solve diagnostics surfaced for every controller re-solve.
  EXPECT_EQ(res.resolve_stats.size(), res.report.rebalances);
  // The chemistry is unchanged: energy matches the static reference.
  EXPECT_NEAR(res.hslb.energy.total(), stat.hslb.energy.total(), 1e-9);
}

// ADPT-4: rebalance decisions are identical across thread counts even when
// the loop does trigger.
TEST(FmoAdaptive, FailureDecisionsDeterministicAcrossThreads) {
  const auto sys = small_system(53);
  CostModel cost;
  PipelineOptions adap;
  adap.rebalance.adaptive = true;
  adap.run.fail_node = 0;
  adap.run.fail_time = 1.0;
  adap.threads = 1;
  const auto t1 = run_pipeline(sys, cost, 64, adap);
  adap.threads = 4;
  const auto t4 = run_pipeline(sys, cost, 64, adap);
  EXPECT_EQ(t1.hslb.trace.to_csv(), t4.hslb.trace.to_csv());
  EXPECT_EQ(t1.report.rebalances, t4.report.rebalances);
  EXPECT_EQ(t1.report.migration_seconds, t4.report.migration_seconds);
  EXPECT_EQ(t1.hslb.completed, t4.hslb.completed);
}

// ADPT-5: mid-run cost drift trips the drift monitor and the refitted
// re-solve reacts; the run still completes and reports its rebalances.
TEST(FmoAdaptive, DriftTriggersRebalance) {
  const auto sys = small_system(54);
  CostModel cost;
  PipelineOptions opt;
  // Slow the first three fragments 4x from iteration 3 onwards.
  opt.run.task_scale.assign(sys.fragments.size(), 1.0);
  opt.run.task_scale[0] = opt.run.task_scale[1] = opt.run.task_scale[2] = 4.0;
  opt.run.drift_onset = 3;

  PipelineOptions adap = opt;
  adap.rebalance.adaptive = true;
  adap.rebalance.imbalance_threshold = 0.15;
  adap.rebalance.drift_threshold = 0.10;

  const auto stat = run_pipeline(sys, cost, 64, opt);
  const auto res = run_pipeline(sys, cost, 64, adap);
  EXPECT_TRUE(res.hslb.completed);
  EXPECT_GE(res.report.rebalances, 1u);
  // Reacting to the drift must not be worse than riding it out statically
  // (beyond the migration stalls it chose to pay).
  EXPECT_LE(res.hslb.total_seconds,
            stat.hslb.total_seconds + res.report.migration_seconds + 1e-9);
}

}  // namespace
}  // namespace hslb::fmo
