// The substrate-agnostic pipeline engine: orchestration parity with the
// hand-wired Gather -> Fit -> Solve -> Execute sequence, determinism across
// thread counts, and report instrumentation.
#include "hslb/pipeline.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>

#include "common/contracts.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "hslb/budget.hpp"
#include "sim/noise.hpp"

namespace hslb {
namespace {

// A minimal two-task substrate over known ground-truth models with
// order-independent probe noise — small enough that the expected result of
// every stage can be recomputed by hand in the tests.
class ToyApp : public Application {
 public:
  static constexpr long long kNodes = 64;
  static constexpr std::uint64_t kSeed = 7;

  std::string name() const override { return "toy"; }

  GatherPlan gather_plan() override {
    return {{"heavy", geometric_node_counts(1, kNodes, 5)},
            {"light", geometric_node_counts(1, kNodes, 4)}};
  }

  double probe(const std::string& task, long long n,
               std::uint64_t rep) override {
    ++probe_calls;
    const std::size_t t = task == "heavy" ? 0 : 1;
    sim::NoiseModel noise(
        0.02, derive_seed(derive_seed(kSeed, t),
                          static_cast<std::uint64_t>(n) * 4096 + rep));
    return noise.perturb(truth(t).eval(static_cast<double>(n)));
  }

  SolveOutcome solve(const std::vector<std::pair<std::string, perf::FitResult>>&
                         fits) override {
    std::vector<BudgetTask> tasks;
    for (const auto& [name, fit] : fits)
      tasks.push_back({name, fit.model, 1, kNodes});
    SolveOutcome out;
    out.allocation = solve_min_max(tasks, kNodes);
    out.solver.status = "exact greedy";
    return out;
  }

  double execute(const SolveOutcome& solution) override {
    executed_allocation = solution.allocation;
    double worst = 0.0;
    for (std::size_t t = 0; t < 2; ++t) {
      const auto& a =
          solution.allocation.find(t == 0 ? "heavy" : "light");
      worst = std::max(worst, truth(t).eval(static_cast<double>(a.nodes)));
    }
    return worst;
  }

  static perf::Model truth(std::size_t t) {
    return t == 0 ? perf::Model{2400.0, 0.0, 1.0, 6.0}
                  : perf::Model{300.0, 0.0, 1.0, 1.5};
  }

  std::atomic<std::size_t> probe_calls{0};
  Allocation executed_allocation;
};

TEST(PipelineEngine, RunsAllFourStages) {
  ToyApp app;
  PipelineOptions opt;
  opt.gather_repetitions = 2;
  const auto run = Pipeline(opt).run(app);

  // Gather: plan order preserved, every (count, rep) probed.
  ASSERT_EQ(run.bench.tasks.size(), 2u);
  EXPECT_EQ(run.bench.tasks[0].task, "heavy");
  EXPECT_EQ(run.bench.tasks[1].task, "light");
  const std::size_t expected_probes =
      2 * (geometric_node_counts(1, ToyApp::kNodes, 5).size() +
           geometric_node_counts(1, ToyApp::kNodes, 4).size());
  EXPECT_EQ(app.probe_calls.load(), expected_probes);
  EXPECT_EQ(run.report.probes, expected_probes);

  // Fit: one result per task, in plan order, high quality.
  ASSERT_EQ(run.fits.size(), 2u);
  EXPECT_EQ(run.fits[0].first, "heavy");
  EXPECT_GT(run.fits[0].second.r2, 0.99);

  // Solve: the allocation reached Execute unchanged.
  EXPECT_EQ(app.executed_allocation.find("heavy").nodes,
            run.solution.allocation.find("heavy").nodes);
  EXPECT_LE(run.solution.allocation.total_nodes(), ToyApp::kNodes);

  // Execute: actual recorded.
  EXPECT_GT(run.actual_total, 0.0);
  EXPECT_EQ(run.report.actual_total, run.actual_total);
}

TEST(PipelineEngine, ParityWithHandWiredOrchestration) {
  // The engine must produce exactly what the four steps produce when wired
  // by hand from the same primitives — the refactor's no-semantic-change
  // guarantee.
  ToyApp engine_app;
  const auto run = Pipeline().run(engine_app);

  ToyApp manual;
  GatherOptions gopt;
  const auto bench = gather(
      manual.gather_plan(),
      [&](const std::string& task, long long n, std::uint64_t rep) {
        return manual.probe(task, n, rep);
      },
      gopt);
  const auto fits = perf::fit_all(bench, manual.fit_options());
  const auto solution = manual.solve(fits);
  const double actual = manual.execute(solution);

  ASSERT_EQ(run.bench.tasks.size(), bench.tasks.size());
  for (std::size_t t = 0; t < bench.tasks.size(); ++t) {
    ASSERT_EQ(run.bench.tasks[t].samples.size(),
              bench.tasks[t].samples.size());
    for (std::size_t i = 0; i < bench.tasks[t].samples.size(); ++i) {
      EXPECT_DOUBLE_EQ(run.bench.tasks[t].samples[i].seconds,
                       bench.tasks[t].samples[i].seconds);
    }
  }
  for (std::size_t i = 0; i < fits.size(); ++i) {
    EXPECT_DOUBLE_EQ(run.fits[i].second.model.a, fits[i].second.model.a);
    EXPECT_DOUBLE_EQ(run.fits[i].second.r2, fits[i].second.r2);
  }
  for (const auto& t : solution.allocation.tasks)
    EXPECT_EQ(run.solution.allocation.find(t.task).nodes, t.nodes);
  EXPECT_DOUBLE_EQ(run.solution.allocation.predicted_total,
                   solution.allocation.predicted_total);
  EXPECT_DOUBLE_EQ(run.actual_total, actual);
}

TEST(PipelineEngine, IdenticalAcrossThreadCounts) {
  PipelineRun runs[3];
  const std::size_t threads[3] = {1, 2, 4};
  for (int i = 0; i < 3; ++i) {
    ToyApp app;
    PipelineOptions opt;
    opt.threads = threads[i];
    runs[i] = Pipeline(opt).run(app);
  }
  for (int i = 1; i < 3; ++i) {
    for (std::size_t t = 0; t < runs[0].bench.tasks.size(); ++t) {
      for (std::size_t s = 0; s < runs[0].bench.tasks[t].samples.size(); ++s) {
        EXPECT_DOUBLE_EQ(runs[i].bench.tasks[t].samples[s].seconds,
                         runs[0].bench.tasks[t].samples[s].seconds);
      }
    }
    for (const auto& t : runs[0].solution.allocation.tasks)
      EXPECT_EQ(runs[i].solution.allocation.find(t.task).nodes, t.nodes);
    EXPECT_DOUBLE_EQ(runs[i].solution.predicted_total,
                     runs[0].solution.predicted_total);
    EXPECT_DOUBLE_EQ(runs[i].actual_total, runs[0].actual_total);
  }
}

TEST(PipelineEngine, ReportCarriesInstrumentation) {
  ToyApp app;
  PipelineOptions opt;
  opt.threads = 2;
  const auto run = Pipeline(opt).run(app);
  const auto& r = run.report;

  EXPECT_EQ(r.application, "toy");
  EXPECT_EQ(r.threads, 2u);
  EXPECT_GE(r.gather_seconds, 0.0);
  EXPECT_GE(r.fit_seconds, 0.0);
  EXPECT_GE(r.solve_seconds, 0.0);
  EXPECT_GE(r.execute_seconds, 0.0);
  EXPECT_NEAR(r.total_seconds(), r.gather_seconds + r.fit_seconds +
                                     r.solve_seconds + r.execute_seconds,
              1e-12);
  ASSERT_EQ(r.fits.size(), 2u);
  EXPECT_GT(r.min_r2(), 0.99);
  EXPECT_GE(r.mean_r2(), r.min_r2());
  EXPECT_EQ(r.solver.status, "exact greedy");
  EXPECT_GT(r.predicted_total, 0.0);
  EXPECT_GT(r.actual_total, 0.0);
  EXPECT_NEAR(r.prediction_error(),
              (r.actual_total - r.predicted_total) / r.predicted_total, 1e-12);

  // Printable and CSV-dumpable.
  const auto text = r.str();
  EXPECT_NE(text.find("toy"), std::string::npos);
  EXPECT_NE(text.find("gather"), std::string::npos);
  const auto row = r.csv_row();
  const auto header = PipelineReport::csv_header();
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(header.begin(), header.end(), ',')),
            static_cast<std::size_t>(std::count(row.begin(), row.end(), ',')));
  // The solver-reduction counters are part of the CSV contract.
  for (const char* col :
       {"solver_presolve_rows", "solver_presolve_cols",
        "solver_bounds_tightened", "solver_nodes_propagated_infeasible",
        "solver_cuts_retired", "solver_cuts_reactivated"}) {
    EXPECT_NE(header.find(col), std::string::npos) << col;
  }
}

TEST(PipelineEngine, DefaultPredictedTotalFallsBackToAllocation) {
  // Apps that leave SolveOutcome::predicted_total at 0 report the
  // allocation's predicted total.
  ToyApp app;
  const auto run = Pipeline().run(app);
  EXPECT_DOUBLE_EQ(run.solution.predicted_total,
                   run.solution.allocation.predicted_total);
  EXPECT_DOUBLE_EQ(run.report.predicted_total,
                   run.solution.allocation.predicted_total);
}

TEST(PipelineEngine, SharedPoolMatchesOwnedPool) {
  // The shared-pool overload is the same engine: identical results, and the
  // report names the pool's size rather than options_.threads.
  ToyApp owned_app;
  PipelineOptions opt;
  opt.threads = 3;
  const auto owned = Pipeline(opt).run(owned_app);

  ToyApp shared_app;
  ThreadPool pool(3);
  const auto shared = Pipeline(opt).run(shared_app, pool);

  EXPECT_EQ(shared.report.threads, 3u);
  ASSERT_EQ(shared.bench.tasks.size(), owned.bench.tasks.size());
  for (std::size_t t = 0; t < owned.bench.tasks.size(); ++t) {
    for (std::size_t s = 0; s < owned.bench.tasks[t].samples.size(); ++s) {
      EXPECT_DOUBLE_EQ(shared.bench.tasks[t].samples[s].seconds,
                       owned.bench.tasks[t].samples[s].seconds);
    }
  }
  for (const auto& t : owned.solution.allocation.tasks)
    EXPECT_EQ(shared.solution.allocation.find(t.task).nodes, t.nodes);
  EXPECT_DOUBLE_EQ(shared.actual_total, owned.actual_total);
}

TEST(PipelineEngine, InterleavedRunsOnSharedPoolMatchSequential) {
  // The concurrent-reuse guarantee the allocation service depends on: two
  // pipelines racing on one pool must each produce exactly the run they
  // produce alone.
  PipelineOptions opt;
  opt.threads = 4;
  opt.gather_repetitions = 2;
  const Pipeline pipeline(opt);

  ToyApp seq_a, seq_b;
  const auto expect_a = pipeline.run(seq_a);
  const auto expect_b = pipeline.run(seq_b);

  ThreadPool pool(4);
  ToyApp par_a, par_b;
  PipelineRun got_a, got_b;
  std::thread ta([&] { got_a = pipeline.run(par_a, pool); });
  std::thread tb([&] { got_b = pipeline.run(par_b, pool); });
  ta.join();
  tb.join();

  auto expect_same = [](const PipelineRun& got, const PipelineRun& want) {
    ASSERT_EQ(got.bench.tasks.size(), want.bench.tasks.size());
    for (std::size_t t = 0; t < want.bench.tasks.size(); ++t) {
      ASSERT_EQ(got.bench.tasks[t].samples.size(),
                want.bench.tasks[t].samples.size());
      for (std::size_t s = 0; s < want.bench.tasks[t].samples.size(); ++s) {
        EXPECT_DOUBLE_EQ(got.bench.tasks[t].samples[s].seconds,
                         want.bench.tasks[t].samples[s].seconds);
      }
    }
    ASSERT_EQ(got.fits.size(), want.fits.size());
    for (std::size_t i = 0; i < want.fits.size(); ++i) {
      EXPECT_DOUBLE_EQ(got.fits[i].second.model.a, want.fits[i].second.model.a);
      EXPECT_DOUBLE_EQ(got.fits[i].second.r2, want.fits[i].second.r2);
    }
    for (const auto& t : want.solution.allocation.tasks)
      EXPECT_EQ(got.solution.allocation.find(t.task).nodes, t.nodes);
    EXPECT_DOUBLE_EQ(got.solution.predicted_total, want.solution.predicted_total);
    EXPECT_DOUBLE_EQ(got.actual_total, want.actual_total);
  };
  expect_same(got_a, expect_a);
  expect_same(got_b, expect_b);
}

TEST(PipelineEngine, PropagatesProbeFailure) {
  class FailingApp : public ToyApp {
   public:
    double probe(const std::string& task, long long n,
                 std::uint64_t rep) override {
      if (n > 8) throw std::runtime_error("probe crashed");
      return ToyApp::probe(task, n, rep);
    }
  } app;
  PipelineOptions opt;
  opt.threads = 4;
  EXPECT_THROW(Pipeline(opt).run(app), std::runtime_error);
}

}  // namespace
}  // namespace hslb
