#include <gtest/gtest.h>

#include <set>

#include "common/contracts.hpp"
#include "fmo/cost.hpp"
#include "fmo/gddi.hpp"
#include "fmo/molecule.hpp"

namespace hslb::fmo {
namespace {

TEST(WaterCluster, FragmentCountAndSizes) {
  const auto sys = water_cluster({.fragments = 100, .merge_fraction = 0.5,
                                  .scf_cutoff_angstrom = 4.5, .seed = 3});
  EXPECT_EQ(sys.num_fragments(), 100u);
  for (const auto& f : sys.fragments) {
    EXPECT_GE(f.basis_functions, 25);
    EXPECT_LE(f.basis_functions, 75);
    EXPECT_EQ(f.basis_functions % 25, 0);
    EXPECT_EQ(f.atoms, 3 * f.basis_functions / 25);
  }
  EXPECT_GT(sys.size_diversity(), 1.0);  // merged fragments exist
}

TEST(WaterCluster, UniformWhenNoMerging) {
  const auto sys = water_cluster({.fragments = 50, .merge_fraction = 0.0,
                                  .scf_cutoff_angstrom = 4.5, .seed = 4});
  EXPECT_DOUBLE_EQ(sys.size_diversity(), 1.0);
}

TEST(WaterCluster, DimerListsPartitionPairs) {
  const auto sys = water_cluster({.fragments = 64, .merge_fraction = 0.3,
                                  .scf_cutoff_angstrom = 4.5, .seed = 5});
  const std::size_t pairs = 64 * 63 / 2;
  EXPECT_EQ(sys.scf_dimers.size() + sys.es_dimers, pairs);
  EXPECT_GT(sys.scf_dimers.size(), 0u);  // lattice neighbours are close
  EXPECT_GT(sys.es_dimers, 0u);          // far corners are separated
  std::set<std::pair<std::size_t, std::size_t>> seen;
  for (const auto& d : sys.scf_dimers) {
    EXPECT_LT(d.i, d.j);
    EXPECT_LE(d.separation, 4.5);
    EXPECT_TRUE(seen.insert({d.i, d.j}).second) << "duplicate dimer";
  }
}

TEST(WaterCluster, DeterministicPerSeed) {
  const auto a = water_cluster({.fragments = 32, .merge_fraction = 0.3,
                                .scf_cutoff_angstrom = 4.5, .seed = 9});
  const auto b = water_cluster({.fragments = 32, .merge_fraction = 0.3,
                                .scf_cutoff_angstrom = 4.5, .seed = 9});
  ASSERT_EQ(a.num_fragments(), b.num_fragments());
  for (std::size_t i = 0; i < a.num_fragments(); ++i)
    EXPECT_EQ(a.fragments[i].basis_functions, b.fragments[i].basis_functions);
  EXPECT_EQ(a.scf_dimers.size(), b.scf_dimers.size());
}

TEST(Polypeptide, ChainHasSequentialDimers) {
  const auto sys = polypeptide({.residues = 40, .scf_cutoff_angstrom = 6.0,
                                .seed = 6});
  EXPECT_EQ(sys.num_fragments(), 40u);
  // Every consecutive residue pair is within the cutoff.
  std::set<std::pair<std::size_t, std::size_t>> pairs;
  for (const auto& d : sys.scf_dimers) pairs.insert({d.i, d.j});
  for (std::size_t r = 0; r + 1 < 40; ++r)
    EXPECT_TRUE(pairs.count({r, r + 1})) << "missing backbone dimer " << r;
  EXPECT_GT(sys.size_diversity(), 1.5);  // residues vary widely
}

TEST(CostModel, MonomerScalesWithCube) {
  CostModel cost;
  Fragment small{0, "s", 3, 25, {}};
  Fragment large{1, "l", 9, 75, {}};
  const double t_small = cost.monomer(small).eval(1.0);
  const double t_large = cost.monomer(large).eval(1.0);
  EXPECT_NEAR(t_large / t_small, 27.0, 0.5);  // (75/25)^3
}

TEST(CostModel, ModelsAreConvexAndDecreasingInitially) {
  CostModel cost;
  Fragment f{0, "f", 6, 50, {}};
  const auto m = cost.monomer(f);
  EXPECT_TRUE(m.is_convex());
  EXPECT_LT(m.eval(8.0), m.eval(1.0));
}

TEST(CostModel, DimerCheaperThanCombinedMonomerWork) {
  CostModel cost;
  Fragment a{0, "a", 3, 25, {}};
  Fragment b{1, "b", 3, 25, {}};
  Fragment combined{2, "c", 6, 50, {}};
  EXPECT_LT(cost.dimer(a, b).eval(1.0), cost.monomer(combined).eval(1.0));
}

TEST(CostModel, EsDimersScaleWithPartition) {
  CostModel cost;
  const auto sys = water_cluster({.fragments = 27, .merge_fraction = 0.0,
                                  .scf_cutoff_angstrom = 4.5, .seed = 8});
  const double t1 = cost.es_dimer_time(sys, 1);
  const double t4 = cost.es_dimer_time(sys, 4);
  EXPECT_NEAR(t1 / t4, 4.0, 1e-9);
}

TEST(CostModel, ValidatesOptions) {
  CostModelOptions bad;
  bad.comm_exponent = 0.5;  // would make the ground truth non-convex
  EXPECT_THROW(CostModel{bad}, ContractViolation);
}

TEST(GroupLayout, UniformSplit) {
  const auto g = GroupLayout::uniform(10, 3);
  EXPECT_EQ(g.sizes, (std::vector<long long>{4, 3, 3}));
  EXPECT_EQ(g.total_nodes(), 10);
  EXPECT_EQ(g.num_groups(), 3u);
}

TEST(GroupLayout, MoreGroupsThanNodesRejected) {
  EXPECT_THROW(GroupLayout::uniform(2, 3), ContractViolation);
}

}  // namespace
}  // namespace hslb::fmo
