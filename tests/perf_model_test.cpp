#include "perf/model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/contracts.hpp"

namespace hslb::perf {
namespace {

TEST(PerfModel, EvalMatchesFormula) {
  const Model m{100.0, 0.01, 1.5, 2.0};
  const double n = 16.0;
  EXPECT_DOUBLE_EQ(m.eval(n), 100.0 / 16.0 + 0.01 * std::pow(16.0, 1.5) + 2.0);
  EXPECT_DOUBLE_EQ(m.sca(n) + m.nln(n) + m.ser(), m.eval(n));
}

TEST(PerfModel, RejectsNonPositiveN) {
  const Model m{1.0, 0.0, 1.0, 0.0};
  EXPECT_THROW(m.eval(0.0), ContractViolation);
  EXPECT_THROW(m.eval(-1.0), ContractViolation);
}

TEST(PerfModel, DerivativeMatchesFiniteDifference) {
  const Model m{500.0, 0.002, 1.3, 1.0};
  for (double n : {2.0, 8.0, 100.0, 1000.0}) {
    const double h = 1e-5 * n;
    const double fd = (m.eval(n + h) - m.eval(n - h)) / (2.0 * h);
    EXPECT_NEAR(m.deriv_n(n), fd, 1e-5 * (1.0 + std::fabs(fd)));
  }
}

TEST(PerfModel, ParamGradientMatchesFiniteDifference) {
  const Model m{500.0, 0.002, 1.3, 1.0};
  const double n = 37.0;
  const auto g = m.grad_params(n);
  const double eps = 1e-6;
  {
    Model mp = m;
    mp.a += eps;
    EXPECT_NEAR(g[0], (mp.eval(n) - m.eval(n)) / eps, 1e-4);
  }
  {
    Model mp = m;
    mp.b += eps;
    EXPECT_NEAR(g[1], (mp.eval(n) - m.eval(n)) / eps, 1e-2);
  }
  {
    Model mp = m;
    mp.c += eps;
    EXPECT_NEAR(g[2], (mp.eval(n) - m.eval(n)) / eps,
                1e-4 * (1.0 + std::fabs(g[2])));
  }
  {
    Model mp = m;
    mp.d += eps;
    EXPECT_NEAR(g[3], (mp.eval(n) - m.eval(n)) / eps, 1e-6);
  }
}

TEST(PerfModel, ConvexityClassification) {
  EXPECT_TRUE((Model{1.0, 0.5, 1.2, 0.1}).is_convex());
  EXPECT_TRUE((Model{1.0, 0.0, 0.5, 0.1}).is_convex());   // b = 0: exponent moot
  EXPECT_FALSE((Model{1.0, 0.5, 0.5, 0.1}).is_convex());  // concave bump
  EXPECT_FALSE((Model{-1.0, 0.0, 1.0, 0.1}).is_convex());
}

TEST(PerfModel, ConvexSecondDifferenceNonNegative) {
  // Property: for convex parameters, discrete second differences >= 0.
  const Model m{2000.0, 0.004, 1.4, 3.0};
  ASSERT_TRUE(m.is_convex());
  for (double n = 2.0; n < 512.0; n *= 1.7) {
    const double h = 0.3 * n;
    const double second = m.eval(n - h) - 2.0 * m.eval(n) + m.eval(n + h);
    EXPECT_GE(second, -1e-9);
  }
}

TEST(PerfModel, PureAmdahlIsDecreasing) {
  const Model m{100.0, 0.0, 1.0, 5.0};
  EXPECT_TRUE(m.is_decreasing_on(1.0, 1e6));
  EXPECT_DOUBLE_EQ(m.argmin(1.0, 1024.0), 1024.0);
}

TEST(PerfModel, ArgminInteriorStationaryPoint) {
  const Model m{1000.0, 0.1, 1.0, 0.0};
  // d/dn = -1000/n^2 + 0.1 = 0 => n = 100.
  EXPECT_NEAR(m.argmin(1.0, 1e6), 100.0, 1e-6);
  const auto [n_int, t_int] = m.argmin_int(1, 1000000);
  EXPECT_EQ(n_int, 100);
  EXPECT_NEAR(t_int, m.eval(100.0), 1e-12);
}

TEST(PerfModel, ArgminClampsToRange) {
  const Model m{1000.0, 0.1, 1.0, 0.0};  // stationary at 100
  EXPECT_DOUBLE_EQ(m.argmin(200.0, 400.0), 200.0);
  EXPECT_DOUBLE_EQ(m.argmin(10.0, 50.0), 50.0);
}

TEST(PerfModel, ArgminIntChecksNeighbors) {
  const Model m{1000.0, 0.1, 1.0, 0.0};
  const auto [n, t] = m.argmin_int(1, 99);  // stationary point outside
  EXPECT_EQ(n, 99);
  EXPECT_DOUBLE_EQ(t, m.eval(99.0));
}

TEST(PerfModel, StrContainsParameters) {
  const Model m{1.5, 0.25, 1.1, 0.75};
  const auto s = m.str();
  EXPECT_NE(s.find("1.5"), std::string::npos);
  EXPECT_NE(s.find("0.75"), std::string::npos);
}

}  // namespace
}  // namespace hslb::perf
