// Incremental refit (fold_observations / prediction_drift / refit_cost):
// the Fit half of the closed-loop controller. Gather samples anchor the
// model; windowed, weighted epoch observations drag it toward the in-situ
// truth; the drift statistic decides when the controller must act.
#include "perf/fit.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

namespace hslb::perf {
namespace {

// Exact power-law world a/n + d: T(n) = 120/n + 2.
SampleSet exact_samples(double a = 120.0, double d = 2.0) {
  SampleSet s;
  for (double n : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0})
    s.push_back({n, a / n + d});
  return s;
}

TEST(PerfRefit, FoldKeepsGatherAndFiltersByTaskAndWindow) {
  const SampleSet gathered = exact_samples();
  const std::vector<Observed> obs = {
      {"frag", 4.0, 40.0, 5},    // in window
      {"frag", 8.0, 25.0, 3},    // too old for window 2 at epoch 5
      {"other", 4.0, 99.0, 5},   // different task
  };
  const SampleSet folded =
      fold_observations(gathered, obs, "frag", /*epoch=*/5, /*window=*/2,
                        /*weight=*/3.0);
  // 6 gather samples + the one eligible observation replicated 3 times.
  ASSERT_EQ(folded.size(), gathered.size() + 3);
  for (std::size_t i = 0; i < gathered.size(); ++i) {
    EXPECT_EQ(folded[i].nodes, gathered[i].nodes);
    EXPECT_EQ(folded[i].seconds, gathered[i].seconds);
  }
  for (std::size_t i = gathered.size(); i < folded.size(); ++i) {
    EXPECT_EQ(folded[i].nodes, 4.0);
    EXPECT_EQ(folded[i].seconds, 40.0);
  }
}

TEST(PerfRefit, FoldWithNoEligibleObservationsIsGatherVerbatim) {
  const SampleSet gathered = exact_samples();
  const SampleSet folded =
      fold_observations(gathered, {}, "frag", 0, 4, 4.0);
  ASSERT_EQ(folded.size(), gathered.size());
}

TEST(PerfRefit, PredictionDriftIsMeanRelativeError) {
  const FitResult fitted = fit(exact_samples());
  ASSERT_TRUE(fitted.converged);
  // Observations matching the model: drift ~ 0.
  std::vector<Observed> good = {{"frag", 4.0, 120.0 / 4.0 + 2.0, 0},
                                {"frag", 8.0, 120.0 / 8.0 + 2.0, 0}};
  EXPECT_NEAR(prediction_drift(fitted.cost, good, "frag"), 0.0, 1e-6);

  // Everything 50% slower than predicted: drift = 0.5.
  std::vector<Observed> slow = good;
  for (auto& o : slow) o.seconds *= 1.5;
  EXPECT_NEAR(prediction_drift(fitted.cost, slow, "frag"), 0.5, 1e-6);

  // No matching task: defined as 0 (nothing to act on).
  EXPECT_EQ(prediction_drift(fitted.cost, slow, "other"), 0.0);
}

// The controller's sequence: fit the gather sweep, observe a 2x-slower
// truth for a few epochs, fold and refit warm — the refitted model must
// track the observations, and the warm path must match a cold fit of the
// same folded data.
TEST(PerfRefit, WarmRefitTracksDriftedObservations) {
  const SampleSet gathered = exact_samples();
  const CostModelSpec spec = {power_law_term()};
  FitOptions opt;
  const FitResult first = fit_cost(gathered, spec, opt);
  ASSERT_TRUE(first.converged);
  EXPECT_GT(first.r2, 0.999);

  // The world drifted: the task now runs 2x slower at every width.
  std::vector<Observed> obs;
  for (double n : {4.0, 8.0, 16.0})
    obs.push_back({"frag", n, 2.0 * (120.0 / n + 2.0), 1});
  const double drift = prediction_drift(first.cost, obs, "frag");
  EXPECT_NEAR(drift, 1.0, 1e-3);  // 100% slower than predicted

  const SampleSet folded =
      fold_observations(gathered, obs, "frag", 1, 4, 8.0);
  const FitResult warm = refit_cost(folded, spec, first, opt);
  // The folded data is deliberately self-contradictory (gather and
  // observations disagree at the same widths), so the descent may stop on
  // tolerance without formally converging — the fit is still usable.
  // The heavily weighted observations pull the refit toward the 2x truth:
  // the refitted prediction at the observed widths sits well above the
  // stale one and the residual drift shrinks.
  const double residual = prediction_drift(warm.cost, obs, "frag");
  EXPECT_LT(residual, 0.5 * drift);
  EXPECT_GT(warm.cost.eval(8.0), first.cost.eval(8.0));
}

TEST(PerfRefit, WarmRefitOnUnchangedDataReproducesFit) {
  const SampleSet gathered = exact_samples();
  const CostModelSpec spec = {power_law_term()};
  const FitResult cold = fit_cost(gathered, spec);
  const FitResult warm = refit_cost(gathered, spec, cold);
  ASSERT_TRUE(warm.converged);
  // Same data, warm start at the optimum: the solution must not move.
  EXPECT_NEAR(warm.model.a, cold.model.a, 1e-6 * cold.model.a);
  EXPECT_NEAR(warm.model.d, cold.model.d, 1e-6 * std::max(1.0, cold.model.d));
  EXPECT_LE(warm.sse, cold.sse + 1e-9);
}

}  // namespace
}  // namespace hslb::perf
