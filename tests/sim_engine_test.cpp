#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/contracts.hpp"

namespace hslb::sim {
namespace {

TEST(Engine, RunsEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule(3.0, [&] { order.push_back(3); });
  e.schedule(1.0, [&] { order.push_back(1); });
  e.schedule(2.0, [&] { order.push_back(2); });
  EXPECT_DOUBLE_EQ(e.run(), 3.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, SimultaneousEventsFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) e.schedule(1.0, [&order, i] { order.push_back(i); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, CallbacksMayScheduleMore) {
  Engine e;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 4) e.schedule_in(1.5, chain);
  };
  e.schedule(0.0, chain);
  EXPECT_DOUBLE_EQ(e.run(), 4.5);
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(e.events_processed(), 4u);
}

TEST(Engine, NowAdvancesDuringRun) {
  Engine e;
  double seen = -1.0;
  e.schedule(2.5, [&] { seen = e.now(); });
  e.run();
  EXPECT_DOUBLE_EQ(seen, 2.5);
}

TEST(Engine, RejectsPastEvents) {
  Engine e;
  e.schedule(5.0, [] {});
  e.run();
  EXPECT_THROW(e.schedule(1.0, [] {}), ContractViolation);
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine e;
  int fired = 0;
  e.schedule(1.0, [&] { ++fired; });
  e.schedule(10.0, [&] { ++fired; });
  EXPECT_DOUBLE_EQ(e.run_until(5.0), 5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(e.empty());
  e.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, EmptyRunIsNoop) {
  Engine e;
  EXPECT_DOUBLE_EQ(e.run(), 0.0);
  EXPECT_EQ(e.events_processed(), 0u);
}

}  // namespace
}  // namespace hslb::sim
