#include "common/strings.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"

namespace hslb::strings {
namespace {

TEST(Strings, SplitBasic) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split(",x,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[2], "");
}

TEST(Strings, TrimBothEnds) {
  EXPECT_EQ(trim("  hello\t\n"), "hello");
  EXPECT_EQ(trim("nowhitespace"), "nowhitespace");
  EXPECT_EQ(trim(" \t "), "");
}

TEST(Strings, JoinRoundTripsSplit) {
  const std::vector<std::string> parts{"a", "b", "c"};
  EXPECT_EQ(join(parts, ","), "a,b,c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, ToDoubleParses) {
  EXPECT_DOUBLE_EQ(to_double("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(to_double("  -1e3 "), -1000.0);
}

TEST(Strings, ToDoubleRejectsJunk) {
  EXPECT_THROW(to_double("abc"), ContractViolation);
  EXPECT_THROW(to_double("1.5x"), ContractViolation);
  EXPECT_THROW(to_double(""), ContractViolation);
}

TEST(Strings, ToIntParses) {
  EXPECT_EQ(to_int("42"), 42);
  EXPECT_EQ(to_int(" -7 "), -7);
}

TEST(Strings, ToIntRejectsFloats) {
  EXPECT_THROW(to_int("1.5"), ContractViolation);
}

TEST(Strings, Format) {
  EXPECT_EQ(format("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(format("%.2f", 1.239), "1.24");
}

}  // namespace
}  // namespace hslb::strings
