// The substrate registry seam: catalogue semantics, and — the load-bearing
// guarantee of the refactor — registry-built applications reproduce the
// classic run_pipeline drivers byte-identically (reports, traces, B&B node
// counts), including on a shared caller-owned ThreadPool with interleaved
// and concurrent runs.
#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>

#include "cesm/pipeline.hpp"
#include "common/parallel.hpp"
#include "fmo/driver.hpp"
#include "fmo/scenario.hpp"
#include "hslb/pipeline.hpp"
#include "hslb/registry.hpp"
#include "substrates/registry_builtins.hpp"

namespace hslb {
namespace {

class RegistryTest : public ::testing::Test {
 protected:
  void SetUp() override { substrates::register_builtin_substrates(); }
};

TEST_F(RegistryTest, RegistrationIsIdempotent) {
  substrates::register_builtin_substrates();
  substrates::register_builtin_substrates();
  const auto all = SubstrateRegistry::instance().list();
  ASSERT_EQ(all.size(), 4u);
  // list() sorts by name.
  EXPECT_EQ(all[0].name, "amrex");
  EXPECT_EQ(all[1].name, "cesm");
  EXPECT_EQ(all[2].name, "fmm");
  EXPECT_EQ(all[3].name, "fmo");
  for (const auto& info : all) {
    EXPECT_FALSE(info.description.empty());
    EXPECT_FALSE(info.variants.empty());
    EXPECT_TRUE(SubstrateRegistry::instance().contains(info.name));
    EXPECT_NE(SubstrateRegistry::instance().find(info.name), nullptr);
  }
}

TEST_F(RegistryTest, UnknownSubstrateThrowsListingNames) {
  ScenarioSpec spec;
  spec.substrate = "gromacs";
  try {
    SubstrateRegistry::instance().make(spec);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("fmo"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("amrex"), std::string::npos);
  }
  EXPECT_FALSE(SubstrateRegistry::instance().contains("gromacs"));
  EXPECT_EQ(SubstrateRegistry::instance().find("gromacs"), nullptr);
}

TEST_F(RegistryTest, UnknownVariantThrows) {
  ScenarioSpec spec;
  spec.substrate = "fmo";
  spec.variant = "protein-ligand";
  EXPECT_THROW(SubstrateRegistry::instance().make(spec),
               std::invalid_argument);
}

/// The exec Metrics struct and its legacy scalar copies must be the same
/// values — the parity contract that lets old consumers read either.
void expect_metrics_copies_equal(const PipelineReport& r) {
  EXPECT_EQ(r.exec.makespan, r.exec_makespan);
  EXPECT_EQ(r.exec.busy_unit_seconds, r.exec_busy_node_seconds);
  EXPECT_EQ(r.exec.efficiency, r.exec_efficiency);
  EXPECT_EQ(r.exec.imbalance, r.exec_imbalance);
  EXPECT_EQ(r.exec.percent_imbalance, r.exec_percent_imbalance);
}

/// Byte-identical report/trace comparison between a registry-built run and
/// a classic driver run.
void expect_reports_identical(const PipelineReport& a,
                              const PipelineReport& b) {
  EXPECT_EQ(a.application, b.application);
  EXPECT_EQ(a.predicted_total, b.predicted_total);
  EXPECT_EQ(a.actual_total, b.actual_total);
  EXPECT_EQ(a.probes, b.probes);
  EXPECT_EQ(a.exec_makespan, b.exec_makespan);
  EXPECT_EQ(a.exec_busy_node_seconds, b.exec_busy_node_seconds);
  EXPECT_EQ(a.exec_efficiency, b.exec_efficiency);
  EXPECT_EQ(a.exec_imbalance, b.exec_imbalance);
  EXPECT_EQ(a.exec_percent_imbalance, b.exec_percent_imbalance);
  EXPECT_EQ(a.exec_events, b.exec_events);
  EXPECT_EQ(a.solver.nodes, b.solver.nodes);
  EXPECT_EQ(a.solver.cuts, b.solver.cuts);
  EXPECT_EQ(a.solver.lp_solves, b.solver.lp_solves);
  ASSERT_EQ(a.fits.size(), b.fits.size());
  for (std::size_t i = 0; i < a.fits.size(); ++i) {
    EXPECT_EQ(a.fits[i].task, b.fits[i].task);
    EXPECT_EQ(a.fits[i].r2, b.fits[i].r2);
  }
  expect_metrics_copies_equal(a);
  expect_metrics_copies_equal(b);
}

fmo::PipelineOptions small_fmo_options() {
  fmo::PipelineOptions opt;
  opt.threads = 1;
  return opt;
}

PipelineOptions single_thread() {
  PipelineOptions opt;
  opt.threads = 1;
  return opt;
}

TEST_F(RegistryTest, FmoRegistryAppMatchesRunPipeline) {
  const auto sys = fmo::make_system("water", 8);
  const auto opt = small_fmo_options();
  const auto classic = fmo::run_pipeline(sys, fmo::CostModel{}, 48, opt);

  ScenarioSpec spec;
  spec.substrate = "fmo";
  spec.variant = "water";
  spec.tasks = 8;
  spec.nodes = 48;
  const auto app = SubstrateRegistry::instance().make(spec);
  const auto run = Pipeline(single_thread()).run(*app);

  expect_reports_identical(run.report, classic.report);
  EXPECT_EQ(run.trace.to_csv(), classic.hslb.trace.to_csv());
  ASSERT_EQ(run.solution.allocation.tasks.size(),
            classic.allocation.tasks.size());
  for (std::size_t i = 0; i < classic.allocation.tasks.size(); ++i)
    EXPECT_EQ(run.solution.allocation.tasks[i].nodes,
              classic.allocation.tasks[i].nodes);

  // The registry app also reports the HSLB-vs-DLB baseline.
  auto* baseline = dynamic_cast<BaselineReporter*>(app.get());
  ASSERT_NE(baseline, nullptr);
  EXPECT_EQ(baseline->hslb_total_seconds(), classic.hslb.total_seconds);
  EXPECT_EQ(baseline->dlb_total_seconds(), classic.dlb.total_seconds);
}

TEST_F(RegistryTest, FmoMinlpPathMatchesIncludingBnbNodeCounts) {
  const auto sys = fmo::make_system("water", 6);
  auto opt = small_fmo_options();
  opt.solve_with_minlp = true;
  const auto classic = fmo::run_pipeline(sys, fmo::CostModel{}, 24, opt);

  ScenarioSpec spec;
  spec.substrate = "fmo";
  spec.variant = "water";
  spec.tasks = 6;
  spec.nodes = 24;
  spec.minlp = true;
  const auto app = SubstrateRegistry::instance().make(spec);
  const auto run = Pipeline(single_thread()).run(*app);

  EXPECT_GT(run.report.solver.nodes, 0u);
  expect_reports_identical(run.report, classic.report);
}

TEST_F(RegistryTest, CesmRegistryAppMatchesRunPipeline) {
  cesm::PipelineOptions opt;
  opt.sim.seed = 7;  // the registry maps ScenarioSpec::run_seed (default 7)
  const auto classic = cesm::run_pipeline(cesm::Resolution::Deg1, 128, opt);

  ScenarioSpec spec;
  spec.substrate = "cesm";
  spec.variant = "layout1";
  spec.nodes = 128;
  const auto app = SubstrateRegistry::instance().make(spec);
  const auto run = Pipeline(single_thread()).run(*app);

  expect_reports_identical(run.report, classic.report);
  EXPECT_EQ(run.trace.to_csv(), classic.coupled.trace.to_csv());
  EXPECT_EQ(run.report.actual_total, classic.actual_total);
}

TEST_F(RegistryTest, SharedThreadPoolInterleavedParity) {
  ScenarioSpec fmm_spec;
  fmm_spec.substrate = "fmm";
  fmm_spec.tasks = 6;
  fmm_spec.nodes = 24;
  ScenarioSpec amrex_spec;
  amrex_spec.substrate = "amrex";
  amrex_spec.tasks = 6;
  amrex_spec.nodes = 24;

  // Solo reference runs, each on its own engine-owned pool.
  const auto& reg = SubstrateRegistry::instance();
  const Pipeline engine{single_thread()};
  auto fmm_solo = engine.run(*reg.make(fmm_spec));
  auto amrex_solo = engine.run(*reg.make(amrex_spec));

  // Interleaved runs on one shared caller-owned pool: A, B, A again.
  ThreadPool pool(4);
  auto fmm_app = reg.make(fmm_spec);
  auto amrex_app = reg.make(amrex_spec);
  auto fmm_shared = engine.run(*fmm_app, pool);
  auto amrex_shared = engine.run(*amrex_app, pool);
  auto fmm_again = engine.run(*fmm_app, pool);

  EXPECT_EQ(fmm_shared.trace.to_csv(), fmm_solo.trace.to_csv());
  EXPECT_EQ(fmm_again.trace.to_csv(), fmm_solo.trace.to_csv());
  EXPECT_EQ(amrex_shared.trace.to_csv(), amrex_solo.trace.to_csv());
  EXPECT_EQ(fmm_shared.report.actual_total, fmm_solo.report.actual_total);
  EXPECT_EQ(amrex_shared.report.actual_total, amrex_solo.report.actual_total);
  // The pool's size is reported, not the engine option.
  EXPECT_EQ(fmm_shared.report.threads, 4u);

  // Concurrent runs on the same pool from two threads: still identical.
  PipelineRun c1, c2;
  auto app1 = reg.make(fmm_spec);
  auto app2 = reg.make(amrex_spec);
  std::thread t1([&] { c1 = engine.run(*app1, pool); });
  std::thread t2([&] { c2 = engine.run(*app2, pool); });
  t1.join();
  t2.join();
  EXPECT_EQ(c1.trace.to_csv(), fmm_solo.trace.to_csv());
  EXPECT_EQ(c2.trace.to_csv(), amrex_solo.trace.to_csv());
}

}  // namespace
}  // namespace hslb
