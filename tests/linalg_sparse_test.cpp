#include "linalg/sparse.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "linalg/decomp.hpp"

namespace hslb::linalg {
namespace {

TEST(SparseMatrix, FromTripletsSumsDuplicatesAndDropsZeros) {
  const auto m = SparseMatrix::from_triplets(
      3, 3,
      {{0, 0, 1.0}, {2, 0, 4.0}, {1, 1, 2.0}, {1, 1, -2.0}, {0, 2, 3.0},
       {0, 2, 0.5}});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.nnz(), 3u);  // (1,1) cancelled; (0,2) summed to 3.5
  ASSERT_EQ(m.col(0).size(), 2u);
  EXPECT_EQ(m.col(0)[0].index, 0u);
  EXPECT_DOUBLE_EQ(m.col(0)[0].value, 1.0);
  EXPECT_EQ(m.col(0)[1].index, 2u);
  EXPECT_DOUBLE_EQ(m.col(0)[1].value, 4.0);
  EXPECT_TRUE(m.col(1).empty());
  ASSERT_EQ(m.col(2).size(), 1u);
  EXPECT_DOUBLE_EQ(m.col(2)[0].value, 3.5);
}

TEST(SparseMatrix, FromColumnsRejectsUnorderedRows) {
  EXPECT_THROW(SparseMatrix::from_columns(3, {{{2, 1.0}, {1, 2.0}}}),
               ContractViolation);
  EXPECT_THROW(SparseMatrix::from_columns(3, {{{1, 1.0}, {1, 2.0}}}),
               ContractViolation);
}

TEST(SparseMatrix, TransposedRoundTrip) {
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t rows = static_cast<std::size_t>(rng.uniform_int(1, 12));
    const std::size_t cols = static_cast<std::size_t>(rng.uniform_int(1, 12));
    std::vector<Triplet> trips;
    Matrix dense(rows, cols);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        if (rng.uniform(0.0, 1.0) < 0.3) {
          const double v = rng.uniform(-2.0, 2.0);
          trips.push_back({r, c, v});
          dense(r, c) = v;
        }
      }
    }
    const auto m = SparseMatrix::from_triplets(rows, cols, trips);
    const auto t = m.transposed();
    EXPECT_EQ(t.rows(), cols);
    EXPECT_EQ(t.cols(), rows);
    EXPECT_EQ(t.nnz(), m.nnz());
    for (std::size_t r = 0; r < rows; ++r) {
      for (const auto& [c, v] : t.col(r)) {
        EXPECT_DOUBLE_EQ(v, dense(r, c));
      }
    }
    // Transposing twice restores the original entry for entry.
    const auto tt = t.transposed();
    for (std::size_t c = 0; c < cols; ++c) {
      ASSERT_EQ(tt.col(c).size(), m.col(c).size());
      for (std::size_t k = 0; k < m.col(c).size(); ++k) {
        EXPECT_EQ(tt.col(c)[k].index, m.col(c)[k].index);
        EXPECT_DOUBLE_EQ(tt.col(c)[k].value, m.col(c)[k].value);
      }
    }
  }
}

TEST(SparseMatrix, MulMatchesDense) {
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t rows = static_cast<std::size_t>(rng.uniform_int(1, 10));
    const std::size_t cols = static_cast<std::size_t>(rng.uniform_int(1, 10));
    std::vector<Triplet> trips;
    Matrix dense(rows, cols);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        if (rng.uniform(0.0, 1.0) < 0.4) {
          const double v = rng.uniform(-3.0, 3.0);
          trips.push_back({r, c, v});
          dense(r, c) = v;
        }
      }
    }
    const auto m = SparseMatrix::from_triplets(rows, cols, trips);
    Vector x(cols), y(rows);
    for (auto& v : x) v = rng.uniform(-2.0, 2.0);
    for (auto& v : y) v = rng.uniform(-2.0, 2.0);
    const auto ax = m.mul(x);
    const auto dax = dense.mul(x);
    for (std::size_t i = 0; i < rows; ++i) EXPECT_NEAR(ax[i], dax[i], 1e-12);
    const auto aty = m.mul_transpose(y);
    const auto daty = dense.mul_transpose(y);
    for (std::size_t i = 0; i < cols; ++i) EXPECT_NEAR(aty[i], daty[i], 1e-12);
  }
}

TEST(Scatter, PatternTracksTouchedAndClearIsSparse) {
  Scatter s(8);
  s.add(3, 1.5);
  s.add(6, 2.0);
  s.add(3, -1.5);
  ASSERT_EQ(s.pattern().size(), 2u);
  EXPECT_EQ(s.pattern()[0], 3u);
  EXPECT_EQ(s.pattern()[1], 6u);
  EXPECT_DOUBLE_EQ(s[3], 0.0);  // cancelled but still in the pattern
  EXPECT_DOUBLE_EQ(s[6], 2.0);
  s.clear();
  EXPECT_TRUE(s.pattern().empty());
  EXPECT_DOUBLE_EQ(s[3], 0.0);
  EXPECT_DOUBLE_EQ(s[6], 0.0);
}

std::vector<std::vector<SparseEntry>> to_columns(const Matrix& a) {
  std::vector<std::vector<SparseEntry>> cols(a.cols());
  for (std::size_t j = 0; j < a.cols(); ++j) {
    for (std::size_t i = 0; i < a.rows(); ++i) {
      if (a(i, j) != 0.0) cols[j].push_back({i, a(i, j)});
    }
  }
  return cols;
}

TEST(SparseLU, SolvesKnownSystemNeedingPivoting) {
  const auto a = Matrix::from_rows({{0.0, 2.0}, {1.0, 1.0}});
  const auto lu = SparseLU::factor(2, to_columns(a));
  ASSERT_TRUE(lu.has_value());
  const auto x = lu->solve({4.0, 3.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
  const auto xt = lu->solve_transpose({4.0, 3.0});
  // A^T x = b: x = (3, 1/2): row checks 0*3+1*0.5... solve numerically below.
  const auto atx = a.mul_transpose(xt);
  EXPECT_NEAR(atx[0], 4.0, 1e-12);
  EXPECT_NEAR(atx[1], 3.0, 1e-12);
}

TEST(SparseLU, DetectsSingular) {
  const auto a = Matrix::from_rows({{1.0, 2.0}, {2.0, 4.0}});
  EXPECT_FALSE(SparseLU::factor(2, to_columns(a)).has_value());
  // A structurally empty column is singular too.
  EXPECT_FALSE(SparseLU::factor(2, {{{0, 1.0}, {1, 1.0}}, {}}).has_value());
}

TEST(SparseLU, PropertyRandomSparseSolveMatchesDenseLU) {
  Rng rng(55);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 24));
    Matrix a(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (rng.uniform(0.0, 1.0) < 0.25) a(i, j) = rng.uniform(-2.0, 2.0);
      }
      a(i, i) += 3.0;  // keep it nonsingular and well-conditioned
    }
    const auto slu = SparseLU::factor(n, to_columns(a));
    ASSERT_TRUE(slu.has_value());
    Vector b(n);
    for (auto& v : b) v = rng.uniform(-5.0, 5.0);

    const auto x = slu->solve(b);
    const auto ax = a.mul(x);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-8);

    const auto xt = slu->solve_transpose(b);
    const auto atxt = a.mul_transpose(xt);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(atxt[i], b[i], 1e-8);
  }
}

TEST(SparseLU, HypersparseUnitRhsSolves) {
  // A basis-like matrix: identity plus a few couplings. Solving against
  // unit vectors must reproduce columns/rows of the inverse.
  Rng rng(9);
  const std::size_t n = 30;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) a(i, i) = 1.0 + rng.uniform(0.0, 1.0);
  for (int k = 0; k < 15; ++k) {
    const auto i = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
    const auto j = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
    if (i != j) a(i, j) = rng.uniform(-0.5, 0.5);
  }
  const auto slu = SparseLU::factor(n, to_columns(a));
  ASSERT_TRUE(slu.has_value());
  for (std::size_t k = 0; k < n; ++k) {
    Vector e(n, 0.0);
    e[k] = 1.0;
    const auto x = slu->solve(e);
    const auto ax = a.mul(x);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(ax[i], i == k ? 1.0 : 0.0, 1e-9);
    }
    const auto xt = slu->solve_transpose(e);
    const auto atxt = a.mul_transpose(xt);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(atxt[i], i == k ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(SparseLU, FillStaysNearBasisNnzOnSingletonHeavyBasis) {
  // Slack-heavy simplex basis shape: mostly singleton columns, a few dense-ish
  // structural columns. Markowitz should keep fill close to the input nnz.
  const std::size_t n = 50;
  std::vector<std::vector<SparseEntry>> cols(n);
  std::size_t input_nnz = 0;
  Rng rng(123);
  for (std::size_t j = 0; j < n; ++j) {
    if (j % 10 == 0) {
      for (std::size_t i = 0; i < n; i += 7) {
        cols[j].push_back({i, rng.uniform(0.5, 2.0)});
      }
    } else {
      cols[j].push_back({j, -1.0});
    }
    input_nnz += cols[j].size();
  }
  // Make it nonsingular: ensure each structural column hits its own row hard.
  for (std::size_t j = 0; j < n; j += 10) {
    bool has_diag = false;
    for (auto& e : cols[j]) {
      if (e.index == j) {
        e.value += 4.0;
        has_diag = true;
      }
    }
    if (!has_diag) cols[j].push_back({j, 4.0});
    std::sort(cols[j].begin(), cols[j].end(),
              [](const SparseEntry& a, const SparseEntry& b) {
                return a.index < b.index;
              });
  }
  input_nnz = 0;
  for (const auto& c : cols) input_nnz += c.size();
  const auto slu = SparseLU::factor(n, cols);
  ASSERT_TRUE(slu.has_value());
  EXPECT_LE(slu->nnz(), 2 * input_nnz + n);
}

}  // namespace
}  // namespace hslb::linalg
