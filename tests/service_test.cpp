// End-to-end tests of the AllocationService: the exact-repeat byte-identity
// contract, LRU re-solves, the 10-seed warm-vs-cold objective-equality
// sweep (warm seeding must accelerate, never change, the answer), the
// audit-fallback path, the thread-count determinism contract, and the
// percent-imbalance (lambda) reporting.
#include "service/service.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "minlp/cuts.hpp"
#include "service/protocol.hpp"

namespace hslb::service {
namespace {

SolveTaskSpec task(std::string name, double a, double b = 0.1, double c = 1.0,
                   double d = 0.01) {
  SolveTaskSpec t;
  t.name = std::move(name);
  t.a = a;
  t.b = b;
  t.c = c;
  t.d = d;
  return t;
}

/// A three-task instance shaped like fitted HSLB component models; `scale`
/// moves the whole family through parameter space.
std::vector<SolveTaskSpec> family_tasks(double scale) {
  return {task("atm", 400.0 * scale, 3.0, 1.0, 2.0),
          task("ocn", 250.0 * scale, 2.0, 1.0, 1.0),
          task("ice", 120.0 * scale, 1.0, 1.0, 0.5)};
}

Request solve_request(long long budget, std::vector<SolveTaskSpec> tasks,
                      Objective objective = Objective::MinMax) {
  Request r;
  r.kind = RequestKind::Solve;
  r.objective = objective;
  r.budget = budget;
  r.tasks = std::move(tasks);
  return r;
}

Request fmo_request(long long budget, long long fragments,
                    std::uint64_t bench_seed = 42) {
  Request r;
  r.kind = RequestKind::Fmo;
  r.budget = budget;
  r.fragments = fragments;
  r.bench_seed = bench_seed;
  r.fit_points = 4;
  return r;
}

TEST(AllocationService, ExactRepeatHitIsByteIdentical) {
  ServiceOptions opt;
  opt.batch = 1;  // force the repeat into a later batch: a true cache hit
  AllocationService srv(opt);
  const Request r = solve_request(64, family_tasks(1.0));
  const auto out = srv.run_script({r, r});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_FALSE(out[0].cache_hit);
  EXPECT_TRUE(out[1].cache_hit);
  EXPECT_EQ(out[0].to_line(), out[1].to_line());
  EXPECT_EQ(srv.report().hits, 1u);
  EXPECT_EQ(srv.report().misses, 1u);
  EXPECT_EQ(srv.cache().size(), 1u);
}

TEST(AllocationService, InBatchDuplicateAliasesTheSameSolve) {
  ServiceOptions opt;
  opt.batch = 8;  // both land in one batch: the duplicate aliases, not solves
  AllocationService srv(opt);
  const Request r = solve_request(64, family_tasks(1.0));
  const auto out = srv.run_script({r, r});
  EXPECT_FALSE(out[0].cache_hit);
  EXPECT_TRUE(out[1].cache_hit);
  EXPECT_EQ(out[0].to_line(), out[1].to_line());
  EXPECT_EQ(srv.report().misses, 1u);
  EXPECT_EQ(srv.report().hits, 1u);
}

TEST(AllocationService, LruEvictionForcesResolve) {
  ServiceOptions opt;
  opt.batch = 1;
  opt.cache_capacity = 1;
  // Cold solves only: the re-solve after eviction must then be line-for-line
  // identical to the first solve (a warm start would legitimately differ in
  // its warm flag and cut count while agreeing on the allocation).
  opt.warm_start = false;
  AllocationService srv(opt);
  const Request r1 = solve_request(64, family_tasks(1.0));
  const Request r2 = solve_request(64, family_tasks(2.0));
  const auto out = srv.run_script({r1, r2, r1});
  // r2 evicted r1, so the third request solves again instead of hitting.
  EXPECT_FALSE(out[2].cache_hit);
  EXPECT_EQ(srv.report().misses, 3u);
  EXPECT_EQ(srv.report().hits, 0u);
  EXPECT_EQ(srv.report().evictions, 2u);
  EXPECT_EQ(out[0].to_line(), out[2].to_line());
}

TEST(AllocationService, WarmSeedingNeverChangesTheObjectiveTenSeeds) {
  std::size_t warm_total = 0;
  for (int seed = 0; seed < 10; ++seed) {
    const double scale = 1.0 + 0.05 * seed;
    const Request base = solve_request(64, family_tasks(scale));
    const Request perturbed = solve_request(64, family_tasks(scale * 1.02));

    ServiceOptions warm_opt;
    warm_opt.batch = 1;
    AllocationService warm(warm_opt);
    const auto warm_out = warm.run_script({base, perturbed});

    ServiceOptions cold_opt;
    cold_opt.batch = 1;
    cold_opt.warm_start = false;
    AllocationService cold(cold_opt);
    const auto cold_out = cold.run_script({base, perturbed});

    for (std::size_t i = 0; i < 2; ++i) {
      EXPECT_NEAR(warm_out[i].objective_value, cold_out[i].objective_value,
                  1e-9 * std::abs(cold_out[i].objective_value))
          << "seed " << seed << " request " << i;
    }
    // The perturbed request's donor is the base instance.
    EXPECT_EQ(warm_out[1].donor_signature, signature(canonicalize(base)))
        << "seed " << seed;
    warm_total += warm.report().warm_solves;
    EXPECT_EQ(cold.report().warm_solves, 0u);
  }
  // The donor incumbent must actually be accepted on most of the sweep
  // (same budget, clamped into identical boxes: always feasible).
  EXPECT_GT(warm_total, 5u);
}

TEST(AllocationService, AuditFailureFallsBackToColdSolve) {
  const Request target = solve_request(64, family_tasks(1.0));
  // Same task models at a different budget: comparable (finite distance),
  // different signature, and — crucially — identical flattened fit
  // parameters, so the doctored cut pool below is accepted verbatim.
  const Request donor_req = solve_request(60, family_tasks(1.0));

  AllocationService ref;
  ref.handle(donor_req);
  const CacheEntry* real = ref.cache().find(signature(canonicalize(donor_req)));
  ASSERT_NE(real, nullptr);

  CacheEntry doctored = *real;
  // No incumbent or point seeds — the poisoned cut must be the only thing
  // the warm solve inherits, so it cannot rescue itself.
  doctored.seed.nodes_by_task.clear();
  doctored.seed.x.clear();
  minlp::Cut poison;
  poison.coeffs = {{0, 1.0}};
  poison.rhs = -1e9;  // x0 <= -1e9: infeasible for every allocation
  poison.source_constraint = 0;
  doctored.seed.cuts = {poison};

  AllocationService srv;
  srv.insert_cache_entry(std::move(doctored));
  const Response resp = srv.handle(target);

  EXPECT_TRUE(resp.audit_fallback);
  EXPECT_FALSE(resp.warm_seeded);
  EXPECT_EQ(srv.report().audit_fallbacks, 1u);

  // The fallback re-solve is seed-free, so it matches a clean cold solve
  // exactly (the audit_fallback flag is the only allowed difference).
  ServiceOptions cold_opt;
  cold_opt.warm_start = false;
  AllocationService clean(cold_opt);
  const Response cold = clean.handle(target);
  EXPECT_EQ(resp.status, cold.status);
  EXPECT_EQ(resp.bnb_nodes, cold.bnb_nodes);
  EXPECT_DOUBLE_EQ(resp.objective_value, cold.objective_value);
  EXPECT_EQ(resp.allocation.str(), cold.allocation.str());
  EXPECT_FALSE(cold.audit_fallback);
}

TEST(AllocationService, ThreadCountNeverChangesPayloadsOrHitSequence) {
  // A script with repeats, perturbed neighbors, an objective change, and a
  // budget change — enough structure to exercise hits, aliases, and donor
  // selection. The determinism contract: payload lines and the hit/miss
  // sequence depend only on the script and the batch width.
  std::vector<Request> script;
  script.push_back(solve_request(64, family_tasks(1.0)));
  script.push_back(solve_request(64, family_tasks(1.02)));
  script.push_back(solve_request(64, family_tasks(1.0)));  // exact repeat
  script.push_back(solve_request(48, family_tasks(1.0)));  // budget change
  script.push_back(solve_request(64, family_tasks(1.05)));
  script.push_back(solve_request(64, family_tasks(1.02)));  // repeat
  script.push_back(solve_request(64, family_tasks(0.9), Objective::MinSum));
  script.push_back(solve_request(64, family_tasks(1.1)));
  script.push_back(solve_request(64, family_tasks(1.1)));  // in-batch dup
  script.push_back(solve_request(64, family_tasks(0.95)));

  std::vector<std::string> reference_lines;
  std::vector<bool> reference_hits;
  for (const std::size_t threads : {1u, 2u, 4u}) {
    ServiceOptions opt;
    opt.threads = threads;
    opt.batch = 4;
    AllocationService srv(opt);
    const auto out = srv.run_script(script);
    std::vector<std::string> lines;
    std::vector<bool> hits;
    for (const auto& r : out) {
      lines.push_back(r.to_line());
      hits.push_back(r.cache_hit);
    }
    if (threads == 1) {
      reference_lines = lines;
      reference_hits = hits;
      continue;
    }
    EXPECT_EQ(lines, reference_lines) << "threads=" << threads;
    EXPECT_EQ(hits, reference_hits) << "threads=" << threads;
  }
}

TEST(AllocationService, MaxMinRequestsUseExactGreedyAndNeverWarm) {
  ServiceOptions opt;
  opt.batch = 1;
  AllocationService srv(opt);
  const Request base =
      solve_request(64, family_tasks(1.0), Objective::MaxMin);
  const Request perturbed =
      solve_request(64, family_tasks(1.02), Objective::MaxMin);
  const auto out = srv.run_script({base, perturbed});
  for (const auto& r : out) {
    EXPECT_NE(r.status.find("exact greedy"), std::string::npos);
    EXPECT_FALSE(r.warm_seeded);
    EXPECT_EQ(r.bnb_nodes, 0u);
  }
  EXPECT_EQ(srv.report().warm_solves, 0u);
}

TEST(AllocationService, PercentImbalanceMatchesDefinition) {
  AllocationService srv;
  const Request r = solve_request(64, family_tasks(1.0));
  const Response resp = srv.handle(r);
  // lambda = (max node busy-time / mean over ALL budget nodes - 1) x 100,
  // recomputed from the returned allocation.
  double busy = 0.0, worst = 0.0;
  for (const auto& t : resp.allocation.tasks) {
    busy += t.predicted_seconds * static_cast<double>(t.nodes);
    worst = std::max(worst, t.predicted_seconds);
  }
  const double mean = busy / 64.0;
  EXPECT_NEAR(resp.percent_imbalance, (worst / mean - 1.0) * 100.0, 1e-9);
  EXPECT_GE(resp.percent_imbalance, 0.0);
}

TEST(AllocationService, FmoRequestsRunTheFullPipelineAndWarmStart) {
  ServiceOptions opt;
  opt.batch = 1;
  AllocationService srv(opt);
  const Request f1 = fmo_request(48, 6, 42);
  const Request f2 = fmo_request(48, 6, 43);  // perturbed: new noise stream
  const auto out = srv.run_script({f1, f1, f2});

  // Full pipeline ran: every fragment allocated, execution simulated.
  ASSERT_EQ(out[0].allocation.tasks.size(), 6u);
  EXPECT_GT(out[0].actual_total, 0.0);
  EXPECT_TRUE(std::isfinite(out[0].percent_imbalance));
  EXPECT_FALSE(out[0].status.empty());

  // Exact repeat: byte-identical payload from the cache.
  EXPECT_TRUE(out[1].cache_hit);
  EXPECT_EQ(out[0].to_line(), out[1].to_line());

  // The perturbed instance seeds from its neighbor and still agrees with a
  // cold solve on the final objective.
  EXPECT_FALSE(out[2].cache_hit);
  EXPECT_EQ(out[2].donor_signature, signature(canonicalize(f1)));
  EXPECT_TRUE(out[2].warm_seeded);

  ServiceOptions cold_opt;
  cold_opt.warm_start = false;
  AllocationService cold(cold_opt);
  const Response cold_f2 = cold.handle(f2);
  EXPECT_NEAR(out[2].objective_value, cold_f2.objective_value,
              1e-9 * std::abs(cold_f2.objective_value));
}

}  // namespace
}  // namespace hslb::service
