// FNV-1a contract tests: the constants and mixing conventions are shared
// by the cut pool's duplicate buckets and the allocation service's
// instance signatures, so they are pinned here against known vectors and
// ambiguity classes.
#include "common/hash.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace hslb::hash {
namespace {

TEST(Fnv1a, EmptyIsOffsetBasis) {
  EXPECT_EQ(Fnv1a().value(), kFnvOffset);
  EXPECT_EQ(fnv1a_bytes(""), kFnvOffset);
}

TEST(Fnv1a, KnownVectors) {
  // Published FNV-1a 64-bit test vectors.
  EXPECT_EQ(fnv1a_bytes("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a_bytes("foobar"), 0x85944171f73967e8ull);
}

TEST(Fnv1a, MixUint64MatchesByteLoop) {
  // The cut pool historically mixed integers as 8 little-endian bytes;
  // Fnv1a::mix(uint64) must reproduce that bit for bit.
  const std::uint64_t v = 0x0123456789abcdefull;
  std::uint64_t h = kFnvOffset;
  for (int b = 0; b < 8; ++b) {
    h ^= (v >> (8 * b)) & 0xffull;
    h *= kFnvPrime;
  }
  EXPECT_EQ(Fnv1a().mix(v).value(), h);
}

TEST(Fnv1a, OrderSensitive) {
  const auto ab = Fnv1a().mix(std::uint64_t{1}).mix(std::uint64_t{2}).value();
  const auto ba = Fnv1a().mix(std::uint64_t{2}).mix(std::uint64_t{1}).value();
  EXPECT_NE(ab, ba);
}

TEST(Fnv1a, StringsAreLengthPrefixed) {
  // {"ab","c"} vs {"a","bc"}: same concatenation, different identity.
  const auto x =
      Fnv1a().mix(std::string_view{"ab"}).mix(std::string_view{"c"}).value();
  const auto y =
      Fnv1a().mix(std::string_view{"a"}).mix(std::string_view{"bc"}).value();
  EXPECT_NE(x, y);
}

TEST(Fnv1a, NegativeZeroHashesAsPositiveZero) {
  EXPECT_EQ(Fnv1a().mix(0.0).value(), Fnv1a().mix(-0.0).value());
  EXPECT_NE(Fnv1a().mix(0.0).value(), Fnv1a().mix(1.0).value());
}

TEST(Fnv1a, DoublesUseBitPattern) {
  // Distinct but close doubles must hash differently (quantization is the
  // caller's job, not the hash's).
  EXPECT_NE(Fnv1a().mix(1.0).value(),
            Fnv1a().mix(1.0 + 1e-15).value());
}

TEST(Fnv1a, IncrementalEqualsOneShot) {
  Fnv1a a;
  a.mix(std::string_view{"task"});
  a.mix(std::uint64_t{42});
  a.mix(2.5);
  Fnv1a b;
  b.mix(std::string_view{"task"}).mix(std::uint64_t{42}).mix(2.5);
  EXPECT_EQ(a.value(), b.value());
}

}  // namespace
}  // namespace hslb::hash
