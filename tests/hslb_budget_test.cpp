#include "hslb/budget.hpp"

#include <gtest/gtest.h>

#include <functional>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "minlp/bnb.hpp"

namespace hslb {
namespace {

BudgetTask task(const std::string& name, double a, double d, long long max_nodes) {
  return BudgetTask{name, perf::Model{a, 0.0, 1.0, d}, 1, max_nodes};
}

TEST(MinMax, TwoIdenticalTasksSplitEvenly) {
  const std::vector<BudgetTask> tasks{task("a", 100, 0, 64), task("b", 100, 0, 64)};
  const auto alloc = solve_min_max(tasks, 64);
  EXPECT_EQ(alloc.tasks[0].nodes, 32);
  EXPECT_EQ(alloc.tasks[1].nodes, 32);
  EXPECT_NEAR(alloc.predicted_total, 100.0 / 32.0, 1e-12);
}

TEST(MinMax, ProportionalToWork) {
  // Work 300 vs 100 with pure a/n scaling: optimal split ~3:1.
  const std::vector<BudgetTask> tasks{task("big", 300, 0, 128),
                                      task("small", 100, 0, 128)};
  const auto alloc = solve_min_max(tasks, 100);
  EXPECT_NEAR(static_cast<double>(alloc.tasks[0].nodes), 75.0, 1.0);
  EXPECT_NEAR(static_cast<double>(alloc.tasks[1].nodes), 25.0, 1.0);
}

TEST(MinMax, SerialFloorStopsAllocation) {
  // One task is all serial: feeding it nodes is pointless, so the greedy
  // stops once it dominates, leaving budget unused.
  const std::vector<BudgetTask> tasks{task("serial", 0.0, 50.0, 1000),
                                      task("scalable", 100.0, 0.0, 1000)};
  const auto alloc = solve_min_max(tasks, 1000);
  EXPECT_NEAR(alloc.predicted_total, 50.0, 1e-9);
  // scalable got enough to drop below 50 s, then the greedy stopped.
  EXPECT_LE(alloc.find("scalable").predicted_seconds, 50.0 + 1e-9);
  EXPECT_LT(alloc.total_nodes(), 1000);
}

TEST(MinMax, RespectsMaxNodes) {
  std::vector<BudgetTask> tasks{task("a", 1000, 0, 8), task("b", 10, 0, 64)};
  const auto alloc = solve_min_max(tasks, 64);
  EXPECT_LE(alloc.find("a").nodes, 8);
}

TEST(MinMax, RequiresFeasibleMinimums) {
  std::vector<BudgetTask> tasks{task("a", 1, 0, 4), task("b", 1, 0, 4)};
  EXPECT_THROW(solve_min_max(tasks, 1), ContractViolation);
}

TEST(MinSum, PrefersHighestMarginalGain) {
  // min-sum pours nodes where the absolute gain is largest: the big task.
  const std::vector<BudgetTask> tasks{task("big", 1000, 0, 100),
                                      task("small", 10, 0, 100)};
  const auto alloc = solve_min_sum(tasks, 20);
  EXPECT_GT(alloc.find("big").nodes, alloc.find("small").nodes);
}

TEST(MinSum, StopsWhenNoGain) {
  const std::vector<BudgetTask> tasks{task("serial", 0, 5, 100)};
  const auto alloc = solve_min_sum(tasks, 100);
  EXPECT_EQ(alloc.tasks[0].nodes, 1);  // extra nodes gain nothing
}

TEST(MaxMin, UsesExchangeToEqualize) {
  const std::vector<BudgetTask> tasks{task("a", 100, 0, 64), task("b", 100, 0, 64)};
  const auto alloc = solve_max_min(tasks, 64);
  // Any split gives min(T_a, T_b) maximized at the even split.
  EXPECT_EQ(alloc.tasks[0].nodes + alloc.tasks[1].nodes, 64);
  EXPECT_NEAR(alloc.predicted_total, 100.0 / 32.0, 0.2);
}

TEST(Objectives, EvaluateObjectiveSemantics) {
  const std::vector<BudgetTask> tasks{task("a", 100, 0, 64), task("b", 50, 0, 64)};
  const std::vector<long long> nodes{10, 10};  // T = 10, 5
  EXPECT_DOUBLE_EQ(evaluate_objective(tasks, nodes, Objective::MinMax), 10.0);
  EXPECT_DOUBLE_EQ(evaluate_objective(tasks, nodes, Objective::MaxMin), 5.0);
  EXPECT_DOUBLE_EQ(evaluate_objective(tasks, nodes, Objective::MinSum), 15.0);
}

TEST(Objectives, MinMaxBeatsMinSumOnMakespan) {
  // §III-D: the min-sum objective is "obviously out of consideration";
  // check it indeed yields a worse makespan on a diverse system.
  const std::vector<BudgetTask> tasks{task("big", 500, 1.0, 256),
                                      task("mid", 100, 0.5, 256),
                                      task("small", 10, 0.1, 256)};
  const auto mm = solve_min_max(tasks, 64);
  const auto ms = solve_min_sum(tasks, 64);
  std::vector<long long> ms_nodes;
  for (const auto& t : ms.tasks) ms_nodes.push_back(t.nodes);
  const double ms_makespan =
      evaluate_objective(tasks, ms_nodes, Objective::MinMax);
  EXPECT_LE(mm.predicted_total, ms_makespan + 1e-9);
}

TEST(SolveBudget, DispatchesOnObjective) {
  const std::vector<BudgetTask> tasks{task("a", 100, 0, 64), task("b", 50, 0, 64)};
  EXPECT_EQ(solve_budget(tasks, 32, Objective::MinMax).predicted_total,
            solve_min_max(tasks, 32).predicted_total);
  EXPECT_EQ(solve_budget(tasks, 32, Objective::MinSum).predicted_total,
            solve_min_sum(tasks, 32).predicted_total);
  EXPECT_EQ(solve_budget(tasks, 32, Objective::MaxMin).predicted_total,
            solve_max_min(tasks, 32).predicted_total);
}

// ---------------------------------------------------------------------------
// Property tests.
// ---------------------------------------------------------------------------

std::vector<BudgetTask> random_tasks(Rng& rng, long long max_nodes) {
  const int f = static_cast<int>(rng.uniform_int(2, 5));
  std::vector<BudgetTask> tasks;
  for (int i = 0; i < f; ++i) {
    perf::Model m;
    m.a = rng.uniform(10.0, 2000.0);
    m.b = rng.uniform() < 0.5 ? 0.0 : rng.uniform(1e-6, 1e-3);
    m.c = rng.uniform(1.0, 1.6);
    m.d = rng.uniform(0.0, 5.0);
    tasks.push_back(BudgetTask{"t" + std::to_string(i), m, 1, max_nodes});
  }
  return tasks;
}

class MinMaxExhaustive : public ::testing::TestWithParam<int> {};

TEST_P(MinMaxExhaustive, GreedyMatchesBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2711 + 5);
  const long long budget = rng.uniform_int(4, 18);
  auto tasks = random_tasks(rng, budget);
  if (static_cast<long long>(tasks.size()) > budget) return;

  // Brute force over all allocations summing to <= budget.
  double best = 1e300;
  std::vector<long long> nodes(tasks.size(), 1);
  std::function<void(std::size_t, long long)> rec = [&](std::size_t i,
                                                        long long left) {
    if (i == tasks.size()) {
      best = std::min(best, evaluate_objective(tasks, nodes, Objective::MinMax));
      return;
    }
    const long long remaining_min =
        static_cast<long long>(tasks.size() - i - 1);
    for (long long n = 1; n <= left - remaining_min; ++n) {
      nodes[i] = n;
      rec(i + 1, left - n);
    }
  };
  rec(0, budget);

  const auto greedy = solve_min_max(tasks, budget);
  EXPECT_NEAR(greedy.predicted_total, best, 1e-9 * (1.0 + best));
}

INSTANTIATE_TEST_SUITE_P(Sweep, MinMaxExhaustive, ::testing::Range(0, 40));

class MaxMinExhaustive : public ::testing::TestWithParam<int> {};

TEST_P(MaxMinExhaustive, ExchangeHeuristicNearBruteForce) {
  // max-min is a documented heuristic (local search); require it to land
  // within a few percent of the exhaustive optimum on small instances.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 33391 + 2);
  const long long budget = rng.uniform_int(4, 14);
  auto tasks = random_tasks(rng, budget);
  if (static_cast<long long>(tasks.size()) > budget) return;

  // Brute force over allocations spending the budget exactly (the max-min
  // convention; see solve_max_min's doc comment).
  double best = -1e300;
  std::vector<long long> nodes(tasks.size(), 1);
  std::function<void(std::size_t, long long)> rec = [&](std::size_t i,
                                                        long long left) {
    if (i + 1 == tasks.size()) {
      nodes[i] = left;
      best = std::max(best, evaluate_objective(tasks, nodes, Objective::MaxMin));
      return;
    }
    const long long remaining_min =
        static_cast<long long>(tasks.size() - i - 1);
    for (long long n = 1; n <= left - remaining_min; ++n) {
      nodes[i] = n;
      rec(i + 1, left - n);
    }
  };
  rec(0, budget);

  const auto heuristic = solve_max_min(tasks, budget);
  EXPECT_GE(heuristic.predicted_total, 0.90 * best);
  EXPECT_LE(heuristic.predicted_total, best + 1e-9);  // never exceeds optimum
}

INSTANTIATE_TEST_SUITE_P(Sweep, MaxMinExhaustive, ::testing::Range(0, 30));

class BudgetVsBnb : public ::testing::TestWithParam<int> {};

TEST_P(BudgetVsBnb, GreedyMatchesBranchAndBound) {
  // FMO-6: the specialized polynomial solver agrees with the general
  // MINLP branch-and-bound on the same model.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 15013 + 1);
  const long long budget = rng.uniform_int(6, 40);
  auto tasks = random_tasks(rng, budget);
  if (static_cast<long long>(tasks.size()) > budget) return;

  for (Objective obj : {Objective::MinMax, Objective::MinSum}) {
    const auto greedy = solve_budget(tasks, budget, obj);
    const auto model = build_budget_minlp(tasks, budget, obj);
    const auto bnb = minlp::solve(model);
    ASSERT_EQ(bnb.status, minlp::BnbStatus::Optimal);
    EXPECT_NEAR(bnb.objective, greedy.predicted_total,
                1e-5 * (1.0 + greedy.predicted_total))
        << to_string(obj);
    const auto alloc = allocation_from_minlp(tasks, bnb.x, obj);
    EXPECT_LE(alloc.total_nodes(), budget);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BudgetVsBnb, ::testing::Range(0, 25));

TEST(BudgetMinlp, RejectsMaxMin) {
  const std::vector<BudgetTask> tasks{task("a", 10, 0, 8), task("b", 10, 0, 8)};
  EXPECT_THROW(build_budget_minlp(tasks, 8, Objective::MaxMin),
               ContractViolation);
}

}  // namespace
}  // namespace hslb
