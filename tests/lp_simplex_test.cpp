#include "lp/simplex.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <limits>
#include <optional>
#include <vector>

#include "common/rng.hpp"

namespace hslb::lp {
namespace {

// ---------------------------------------------------------------------------
// Hand-constructed instances with known optima.
// ---------------------------------------------------------------------------

TEST(Simplex, BoxOnlyMinimization) {
  Model m;
  m.add_variable(1.0, 5.0, 2.0);    // min at lb
  m.add_variable(-3.0, 4.0, -1.0);  // min at ub
  const auto sol = solve(m);
  ASSERT_EQ(sol.status, Status::Optimal);
  EXPECT_NEAR(sol.x[0], 1.0, 1e-9);
  EXPECT_NEAR(sol.x[1], 4.0, 1e-9);
  EXPECT_NEAR(sol.objective, 2.0 - 4.0, 1e-9);
}

TEST(Simplex, ClassicTwoVariable) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0
  // (Dantzig's classic; optimum x=2, y=6, obj 36)
  Model m;
  const auto x = m.add_variable(0.0, kInf, -3.0);
  const auto y = m.add_variable(0.0, kInf, -5.0);
  m.add_constraint({{x, 1.0}}, -kInf, 4.0);
  m.add_constraint({{y, 2.0}}, -kInf, 12.0);
  m.add_constraint({{x, 3.0}, {y, 2.0}}, -kInf, 18.0);
  const auto sol = solve(m);
  ASSERT_EQ(sol.status, Status::Optimal);
  EXPECT_NEAR(sol.objective, -36.0, 1e-8);
  EXPECT_NEAR(sol.x[x], 2.0, 1e-8);
  EXPECT_NEAR(sol.x[y], 6.0, 1e-8);
}

TEST(Simplex, EqualityConstraint) {
  // min x + 2y s.t. x + y = 10, 0 <= x <= 6, 0 <= y <= 8  => x=6, y=4.
  Model m;
  const auto x = m.add_variable(0.0, 6.0, 1.0);
  const auto y = m.add_variable(0.0, 8.0, 2.0);
  m.add_equality({{x, 1.0}, {y, 1.0}}, 10.0);
  const auto sol = solve(m);
  ASSERT_EQ(sol.status, Status::Optimal);
  EXPECT_NEAR(sol.x[x], 6.0, 1e-9);
  EXPECT_NEAR(sol.x[y], 4.0, 1e-9);
  EXPECT_NEAR(sol.objective, 14.0, 1e-9);
}

TEST(Simplex, RangeConstraintBothSidesActive) {
  // min x s.t. 2 <= x + y <= 3, y <= 1, x,y >= 0 => x = 1 (y = 1).
  Model m;
  const auto x = m.add_variable(0.0, kInf, 1.0);
  const auto y = m.add_variable(0.0, 1.0, 0.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, 2.0, 3.0);
  const auto sol = solve(m);
  ASSERT_EQ(sol.status, Status::Optimal);
  EXPECT_NEAR(sol.objective, 1.0, 1e-9);
}

TEST(Simplex, DetectsInfeasible) {
  Model m;
  const auto x = m.add_variable(0.0, 1.0, 1.0);
  m.add_constraint({{x, 1.0}}, 2.0, 3.0);  // x in [0,1] cannot reach 2
  EXPECT_EQ(solve(m).status, Status::Infeasible);
}

TEST(Simplex, DetectsInfeasibleConflictingRows) {
  Model m;
  const auto x = m.add_variable(-kInf, kInf, 0.0);
  const auto y = m.add_variable(-kInf, kInf, 0.0);
  m.add_equality({{x, 1.0}, {y, 1.0}}, 1.0);
  m.add_equality({{x, 1.0}, {y, 1.0}}, 2.0);
  EXPECT_EQ(solve(m).status, Status::Infeasible);
}

TEST(Simplex, DetectsUnbounded) {
  Model m;
  const auto x = m.add_variable(0.0, kInf, -1.0);  // min -x, x unbounded above
  const auto y = m.add_variable(0.0, 1.0, 0.0);
  m.add_constraint({{x, 1.0}, {y, -1.0}}, 0.0, kInf);  // x >= y, harmless
  EXPECT_EQ(solve(m).status, Status::Unbounded);
}

TEST(Simplex, FreeVariableSolves) {
  // min |free| style: min x s.t. x >= -7 via row (x free as a column).
  Model m;
  const auto x = m.add_variable(-kInf, kInf, 1.0);
  m.add_constraint({{x, 1.0}}, -7.0, kInf);
  const auto sol = solve(m);
  ASSERT_EQ(sol.status, Status::Optimal);
  EXPECT_NEAR(sol.x[x], -7.0, 1e-9);
}

TEST(Simplex, FixedVariable) {
  Model m;
  const auto x = m.add_variable(3.0, 3.0, 5.0);
  const auto y = m.add_variable(0.0, 10.0, 1.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, 5.0, kInf);
  const auto sol = solve(m);
  ASSERT_EQ(sol.status, Status::Optimal);
  EXPECT_NEAR(sol.x[x], 3.0, 1e-9);
  EXPECT_NEAR(sol.x[y], 2.0, 1e-9);
}

TEST(Simplex, DegenerateVertexTerminates) {
  // Multiple constraints meeting at the optimum (degenerate).
  Model m;
  const auto x = m.add_variable(0.0, kInf, -1.0);
  const auto y = m.add_variable(0.0, kInf, -1.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, -kInf, 2.0);
  m.add_constraint({{x, 1.0}}, -kInf, 1.0);
  m.add_constraint({{y, 1.0}}, -kInf, 1.0);
  m.add_constraint({{x, 2.0}, {y, 2.0}}, -kInf, 4.0);  // redundant at optimum
  const auto sol = solve(m);
  ASSERT_EQ(sol.status, Status::Optimal);
  EXPECT_NEAR(sol.objective, -2.0, 1e-9);
}

TEST(Simplex, EmptyModelNoRows) {
  Model m;
  m.add_variable(2.0, 4.0, 1.0);
  const auto sol = solve(m);
  ASSERT_EQ(sol.status, Status::Optimal);
  EXPECT_NEAR(sol.objective, 2.0, 1e-12);
}

TEST(Simplex, DualsSatisfyStrongDuality) {
  // For the classic instance, primal obj == dual obj (b^T y with care for
  // ranges: here all rows are <= with finite uppers).
  Model m;
  const auto x = m.add_variable(0.0, kInf, -3.0);
  const auto y = m.add_variable(0.0, kInf, -5.0);
  m.add_constraint({{x, 1.0}}, -kInf, 4.0);
  m.add_constraint({{y, 2.0}}, -kInf, 12.0);
  m.add_constraint({{x, 3.0}, {y, 2.0}}, -kInf, 18.0);
  const auto sol = solve(m);
  ASSERT_EQ(sol.status, Status::Optimal);
  ASSERT_EQ(sol.duals.size(), 3u);
  const double dual_obj =
      4.0 * sol.duals[0] + 12.0 * sol.duals[1] + 18.0 * sol.duals[2];
  EXPECT_NEAR(dual_obj, sol.objective, 1e-7);
}

TEST(Simplex, ComplementarySlacknessOnRandomLps) {
  // For optimal LPs: a row with nonzero dual must be tight at a bound.
  Rng rng(31337);
  int checked = 0;
  for (int trial = 0; trial < 50; ++trial) {
    Model m;
    const int n = static_cast<int>(rng.uniform_int(2, 6));
    for (int j = 0; j < n; ++j)
      m.add_variable(0.0, rng.uniform(0.5, 3.0), rng.uniform(-1.0, 1.0));
    const int rows = static_cast<int>(rng.uniform_int(1, 4));
    for (int r = 0; r < rows; ++r) {
      std::vector<Coeff> coeffs;
      for (int j = 0; j < n; ++j)
        coeffs.push_back({static_cast<std::size_t>(j), rng.uniform(-1.0, 1.0)});
      m.add_constraint(std::move(coeffs), -kInf, rng.uniform(0.0, 2.0));
    }
    const auto sol = solve(m);
    if (sol.status != Status::Optimal) continue;
    for (std::size_t r = 0; r < m.num_rows(); ++r) {
      if (std::fabs(sol.duals[r]) < 1e-7) continue;
      const double act = m.row_activity(r, sol.x);
      EXPECT_NEAR(act, m.row_upper(r), 1e-6)
          << "dual " << sol.duals[r] << " on slack row " << r;
      ++checked;
    }
  }
  EXPECT_GT(checked, 5);  // the property must actually have been exercised
}

// ---------------------------------------------------------------------------
// Property test: random 2-variable LPs vs. brute-force vertex enumeration.
// ---------------------------------------------------------------------------

struct Random2dLp {
  Model model;
  // raw data for the enumerator
  std::vector<std::array<double, 2>> rows;  // coefficients
  std::vector<double> ub;                   // a.x <= ub
  std::array<double, 2> lo{}, hi{}, cost{};
};

Random2dLp make_random_lp(Rng& rng) {
  Random2dLp lp;
  lp.lo = {rng.uniform(-2.0, 0.0), rng.uniform(-2.0, 0.0)};
  lp.hi = {lp.lo[0] + rng.uniform(0.5, 4.0), lp.lo[1] + rng.uniform(0.5, 4.0)};
  lp.cost = {rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0)};
  const auto x = lp.model.add_variable(lp.lo[0], lp.hi[0], lp.cost[0]);
  const auto y = lp.model.add_variable(lp.lo[1], lp.hi[1], lp.cost[1]);
  const int nrows = static_cast<int>(rng.uniform_int(1, 4));
  for (int r = 0; r < nrows; ++r) {
    std::array<double, 2> a{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
    const double ub = rng.uniform(-0.5, 2.0);
    lp.rows.push_back(a);
    lp.ub.push_back(ub);
    lp.model.add_constraint({{x, a[0]}, {y, a[1]}}, -kInf, ub);
  }
  return lp;
}

/// Brute force: enumerate all intersections of active-constraint pairs
/// (rows and box edges), keep feasible ones, take the best objective.
std::optional<double> brute_force_2d(const Random2dLp& lp) {
  std::vector<std::array<double, 3>> lines;  // a0 x + a1 y = b
  for (std::size_t r = 0; r < lp.rows.size(); ++r)
    lines.push_back({lp.rows[r][0], lp.rows[r][1], lp.ub[r]});
  lines.push_back({1.0, 0.0, lp.lo[0]});
  lines.push_back({1.0, 0.0, lp.hi[0]});
  lines.push_back({0.0, 1.0, lp.lo[1]});
  lines.push_back({0.0, 1.0, lp.hi[1]});

  auto feasible = [&](double px, double py) {
    const double tol = 1e-7;
    if (px < lp.lo[0] - tol || px > lp.hi[0] + tol) return false;
    if (py < lp.lo[1] - tol || py > lp.hi[1] + tol) return false;
    for (std::size_t r = 0; r < lp.rows.size(); ++r)
      if (lp.rows[r][0] * px + lp.rows[r][1] * py > lp.ub[r] + tol) return false;
    return true;
  };

  std::optional<double> best;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    for (std::size_t j = i + 1; j < lines.size(); ++j) {
      const double det = lines[i][0] * lines[j][1] - lines[i][1] * lines[j][0];
      if (std::fabs(det) < 1e-10) continue;
      const double px = (lines[i][2] * lines[j][1] - lines[i][1] * lines[j][2]) / det;
      const double py = (lines[i][0] * lines[j][2] - lines[i][2] * lines[j][0]) / det;
      if (!feasible(px, py)) continue;
      const double obj = lp.cost[0] * px + lp.cost[1] * py;
      if (!best || obj < *best) best = obj;
    }
  }
  return best;
}

class SimplexRandom2d : public ::testing::TestWithParam<int> {};

TEST_P(SimplexRandom2d, MatchesBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  const auto lp = make_random_lp(rng);
  const auto expected = brute_force_2d(lp);
  const auto sol = solve(lp.model);
  if (!expected) {
    EXPECT_EQ(sol.status, Status::Infeasible);
  } else {
    ASSERT_EQ(sol.status, Status::Optimal)
        << "brute force found optimum " << *expected;
    EXPECT_NEAR(sol.objective, *expected, 1e-6);
    EXPECT_TRUE(lp.model.is_feasible(sol.x, 1e-6));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SimplexRandom2d, ::testing::Range(0, 200));

// ---------------------------------------------------------------------------
// Larger random LPs: verify feasibility + optimality conditions only.
// ---------------------------------------------------------------------------

class SimplexRandomWide : public ::testing::TestWithParam<int> {};

TEST_P(SimplexRandomWide, SolutionFeasibleWhenOptimal) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
  Model m;
  const int n = static_cast<int>(rng.uniform_int(3, 12));
  const int rows = static_cast<int>(rng.uniform_int(1, 8));
  for (int j = 0; j < n; ++j) {
    const double lo = rng.uniform(-1.0, 0.5);
    m.add_variable(lo, lo + rng.uniform(0.1, 3.0), rng.uniform(-1.0, 1.0));
  }
  for (int r = 0; r < rows; ++r) {
    std::vector<Coeff> coeffs;
    for (int j = 0; j < n; ++j) {
      if (rng.uniform() < 0.6) coeffs.push_back({static_cast<std::size_t>(j),
                                                 rng.uniform(-1.0, 1.0)});
    }
    if (coeffs.empty()) coeffs.push_back({0, 1.0});
    const double width = rng.uniform(0.0, 2.0);
    const double mid = rng.uniform(-1.0, 1.0);
    m.add_constraint(std::move(coeffs), mid - width, mid + width);
  }
  const auto sol = solve(m);
  // Bounded box => never unbounded.
  EXPECT_NE(sol.status, Status::Unbounded);
  if (sol.status == Status::Optimal) {
    EXPECT_TRUE(m.is_feasible(sol.x, 1e-6));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SimplexRandomWide, ::testing::Range(0, 100));

// ---------------------------------------------------------------------------
// Warm-start property: a warm re-solve may take a different pivot path but
// must reach the same status and objective as a cold solve of the same model.
// The perturbations mirror what the branch-and-bound does to a parent LP:
// tightened variable bounds (branching) and appended rows (OA cuts).
// ---------------------------------------------------------------------------

Model random_bounded_lp(Rng& rng) {
  Model m;
  const int n = static_cast<int>(rng.uniform_int(4, 10));
  const int rows = static_cast<int>(rng.uniform_int(2, 6));
  for (int j = 0; j < n; ++j)
    m.add_variable(0.0, rng.uniform(2.0, 8.0), rng.uniform(-1.0, 1.0));
  for (int r = 0; r < rows; ++r) {
    std::vector<Coeff> coeffs;
    for (int j = 0; j < n; ++j)
      if (rng.uniform() < 0.7)
        coeffs.push_back({static_cast<std::size_t>(j), rng.uniform(-1.0, 1.0)});
    if (coeffs.empty()) coeffs.push_back({0, 1.0});
    m.add_constraint(std::move(coeffs), -kInf, rng.uniform(0.5, 4.0));
  }
  return m;
}

void expect_warm_matches_cold(const Model& child, const Basis& parent_basis,
                              int trial, int* warm_used, int* solved) {
  const Solution cold = solve(child);
  Options warm_opt;
  warm_opt.warm_start = &parent_basis;
  const Solution warm = solve(child, warm_opt);
  ASSERT_EQ(warm.status, cold.status) << "trial " << trial;
  if (warm.warm_started) ++*warm_used;
  if (cold.status != Status::Optimal) return;
  ++*solved;
  const double scale = 1.0 + std::fabs(cold.objective);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-6 * scale)
      << "trial " << trial;
  EXPECT_TRUE(child.is_feasible(warm.x, 1e-6)) << "trial " << trial;
}

class SimplexWarmBranch : public ::testing::TestWithParam<int> {};

TEST_P(SimplexWarmBranch, MatchesColdAfterBoundTightenings) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 6151 + 3);
  const Model parent = random_bounded_lp(rng);
  const Solution psol = solve(parent);
  if (psol.status != Status::Optimal) return;

  int warm_used = 0, solved = 0;
  for (int variant = 0; variant < 4; ++variant) {
    Model child = parent;
    // Tighten 1-3 variables around the parent optimum, branch-style. Some
    // variants go (detectably) infeasible — those exercise the status
    // agreement, not the warm pivot path.
    const int k = static_cast<int>(rng.uniform_int(1, 3));
    for (int j = 0; j < k; ++j) {
      const auto v = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<long long>(parent.num_cols()) - 1));
      if (rng.uniform() < 0.5)
        child.set_col_upper(v, std::floor(psol.x[v]));
      else
        child.set_col_lower(v, std::ceil(psol.x[v] + 0.5));
    }
    expect_warm_matches_cold(child, psol.basis, GetParam(), &warm_used,
                             &solved);
  }
  if (solved > 0) {
    EXPECT_GT(warm_used, 0);  // the warm path must actually be exercised
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SimplexWarmBranch, ::testing::Range(0, 50));

class SimplexWarmCuts : public ::testing::TestWithParam<int> {};

TEST_P(SimplexWarmCuts, MatchesColdAfterAppendedRows) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7673 + 11);
  const Model parent = random_bounded_lp(rng);
  const Solution psol = solve(parent);
  if (psol.status != Status::Optimal) return;

  Model child = parent;
  // Append 1-3 rows, one of which cuts off the parent optimum (the OA-cut
  // pattern: the appended row's slack starts basic and dual-infeasible).
  const int k = static_cast<int>(rng.uniform_int(1, 3));
  for (int r = 0; r < k; ++r) {
    std::vector<Coeff> coeffs;
    double activity = 0.0;
    for (std::size_t j = 0; j < parent.num_cols(); ++j) {
      if (rng.uniform() < 0.6) {
        const double a = rng.uniform(-1.0, 1.0);
        coeffs.push_back({j, a});
        activity += a * psol.x[j];
      }
    }
    if (coeffs.empty()) coeffs.push_back({0, 1.0});
    const double rhs =
        r == 0 ? activity - rng.uniform(0.05, 0.5)  // violated at optimum
               : activity + rng.uniform(0.0, 1.0);
    child.add_constraint(std::move(coeffs), -kInf, rhs);
  }
  int warm_used = 0;
  { int solved = 0; expect_warm_matches_cold(child, psol.basis, GetParam(), &warm_used, &solved); }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SimplexWarmCuts, ::testing::Range(0, 50));

TEST(Simplex, WarmResolveOfUnchangedModelTakesNoPivots) {
  Rng rng(99);
  const Model m = random_bounded_lp(rng);
  const Solution cold = solve(m);
  ASSERT_EQ(cold.status, Status::Optimal);
  Options opt;
  opt.warm_start = &cold.basis;
  const Solution warm = solve(m, opt);
  ASSERT_EQ(warm.status, Status::Optimal);
  EXPECT_TRUE(warm.warm_started);
  EXPECT_EQ(warm.iterations, 0u);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-12);
}

// ---------------------------------------------------------------------------
// Sparse/dense parity: force_dense swaps the factorization and eta storage
// for dense-equivalent kernels but leaves pricing untouched, so both modes
// must walk the same pivot path and land on the identical vertex.
// ---------------------------------------------------------------------------

class SimplexSparseDenseParity : public ::testing::TestWithParam<int> {};

TEST_P(SimplexSparseDenseParity, IdenticalObjectiveBasisAndDuals) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 9551 + 17);
  const Model m = random_bounded_lp(rng);
  Options dense_opt;
  dense_opt.force_dense = true;
  const Solution sparse = solve(m);
  const Solution dense = solve(m, dense_opt);
  ASSERT_EQ(sparse.status, dense.status);
  if (sparse.status != Status::Optimal) return;

  const double scale = 1.0 + std::fabs(dense.objective);
  EXPECT_NEAR(sparse.objective, dense.objective, 1e-9 * scale);
  EXPECT_EQ(sparse.iterations, dense.iterations);
  ASSERT_EQ(sparse.basis.cols.size(), dense.basis.cols.size());
  ASSERT_EQ(sparse.basis.rows.size(), dense.basis.rows.size());
  for (std::size_t j = 0; j < sparse.basis.cols.size(); ++j)
    EXPECT_EQ(sparse.basis.cols[j], dense.basis.cols[j]) << "col " << j;
  for (std::size_t r = 0; r < sparse.basis.rows.size(); ++r)
    EXPECT_EQ(sparse.basis.rows[r], dense.basis.rows[r]) << "row " << r;
  ASSERT_EQ(sparse.duals.size(), dense.duals.size());
  for (std::size_t r = 0; r < sparse.duals.size(); ++r)
    EXPECT_NEAR(sparse.duals[r], dense.duals[r], 1e-7 * scale) << "row " << r;
  for (std::size_t j = 0; j < sparse.x.size(); ++j)
    EXPECT_NEAR(sparse.x[j], dense.x[j], 1e-7 * scale) << "col " << j;

  // The counters must reflect the mode: dense etas store every off-pivot
  // entry, sparse ones only nonzeros — never more than the dense count.
  if (dense.stats.pivots > 0) {
    EXPECT_EQ(dense.stats.eta_nnz, dense.stats.eta_dense_nnz);
  }
  EXPECT_LE(sparse.stats.eta_nnz, sparse.stats.eta_dense_nnz);
  // Same invariant for the kernel-work counters: dense mode bills itself
  // the dense cost exactly; sparse kernels never do more work than that.
  EXPECT_EQ(dense.stats.kernel_flops, dense.stats.kernel_dense_flops);
  EXPECT_LE(sparse.stats.kernel_flops, sparse.stats.kernel_dense_flops);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SimplexSparseDenseParity,
                         ::testing::Range(0, 60));

// ---------------------------------------------------------------------------
// Basis-update parity: the Forrest-Tomlin scheme (default) and the
// product-form eta baseline maintain the same basis inverse, so under
// identical pricing they must walk the same pivot path to the same vertex.
// ---------------------------------------------------------------------------

class SimplexBasisUpdateParity : public ::testing::TestWithParam<int> {};

TEST_P(SimplexBasisUpdateParity, FtAndEtaWalkTheSamePath) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 9551 + 17);
  const Model m = random_bounded_lp(rng);
  Options eta_opt;
  eta_opt.basis_update = BasisUpdate::ProductFormEta;
  const Solution ft = solve(m);
  const Solution eta = solve(m, eta_opt);
  ASSERT_EQ(ft.status, eta.status);
  if (ft.status != Status::Optimal) return;

  const double scale = 1.0 + std::fabs(eta.objective);
  EXPECT_NEAR(ft.objective, eta.objective, 1e-9 * scale);
  EXPECT_EQ(ft.iterations, eta.iterations);
  ASSERT_EQ(ft.basis.cols.size(), eta.basis.cols.size());
  for (std::size_t j = 0; j < ft.basis.cols.size(); ++j)
    EXPECT_EQ(ft.basis.cols[j], eta.basis.cols[j]) << "col " << j;
  for (std::size_t r = 0; r < ft.basis.rows.size(); ++r)
    EXPECT_EQ(ft.basis.rows[r], eta.basis.rows[r]) << "row " << r;
  for (std::size_t j = 0; j < ft.x.size(); ++j)
    EXPECT_NEAR(ft.x[j], eta.x[j], 1e-7 * scale) << "col " << j;

  // Each scheme's counters stay in its own lane.
  EXPECT_EQ(ft.stats.eta_nnz, 0u);
  EXPECT_EQ(eta.stats.ft_updates, 0u);
  if (ft.stats.pivots > ft.stats.refactor_drift_hits)
    EXPECT_GT(ft.stats.ft_updates, 0u);
  // FT solves never bill more kernel work than the dense equivalent.
  EXPECT_LE(ft.stats.kernel_flops, ft.stats.kernel_dense_flops);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SimplexBasisUpdateParity,
                         ::testing::Range(0, 60));

TEST(Simplex, ForrestTomlinReportsUpdateFillAndTriggers) {
  Rng rng(4242);
  const Model m = random_bounded_lp(rng);
  Options opt;
  opt.refactor_interval = 1;  // force the backstop to fire on every update
  const Solution sol = solve(m, opt);
  ASSERT_EQ(sol.status, Status::Optimal);
  ASSERT_GT(sol.stats.pivots, 1u);
  EXPECT_GT(sol.stats.ft_updates, 0u);
  EXPECT_GT(sol.stats.refactor_interval_hits, 0u);
  // Every refactorization beyond the initial factor has a recorded reason.
  EXPECT_GE(sol.stats.refactorizations,
            sol.stats.refactor_interval_hits + sol.stats.refactor_fill_hits);
}

// ---------------------------------------------------------------------------
// Dual-simplex property: a warm re-solve of a bound-change-only child (the
// branch-and-bound's hot path) repairs primal feasibility entirely inside
// the dual phase — primal phase 1 must never run.
// ---------------------------------------------------------------------------

class SimplexDualOnlyWarm : public ::testing::TestWithParam<int> {};

TEST_P(SimplexDualOnlyWarm, BoundChangeChildrenSkipPrimalPhase1) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 6151 + 3);
  const Model parent = random_bounded_lp(rng);
  const Solution psol = solve(parent);
  if (psol.status != Status::Optimal) return;

  for (int variant = 0; variant < 4; ++variant) {
    Model child = parent;
    const int k = static_cast<int>(rng.uniform_int(1, 3));
    for (int j = 0; j < k; ++j) {
      const auto v = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<long long>(parent.num_cols()) - 1));
      if (rng.uniform() < 0.5)
        child.set_col_upper(v, std::floor(psol.x[v]));
      else
        child.set_col_lower(v, std::ceil(psol.x[v] + 0.5));
    }
    Options warm_opt;
    warm_opt.warm_start = &psol.basis;
    const Solution warm = solve(child, warm_opt);
    if (!warm.warm_started || warm.status != Status::Optimal) continue;
    // The dual repair + primal cleanup never needed artificial variables.
    EXPECT_EQ(warm.stats.phase1_pivots, 0u) << "variant " << variant;
    EXPECT_EQ(warm.stats.dual_phase1_avoided, 1u) << "variant " << variant;
    // And every pivot is attributed to exactly one of the two phases seen.
    EXPECT_GE(warm.stats.pivots, warm.stats.dual_pivots);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SimplexDualOnlyWarm, ::testing::Range(0, 50));

TEST(Simplex, SparseStatsReportEtaCompression) {
  Rng rng(4242);
  const Model m = random_bounded_lp(rng);
  const Solution sol = solve(m);
  ASSERT_EQ(sol.status, Status::Optimal);
  ASSERT_GT(sol.stats.pivots, 0u);
  EXPECT_GT(sol.stats.refactorizations, 0u);
  EXPECT_GT(sol.stats.basis_nnz, 0u);
  EXPECT_GE(sol.stats.eta_compression(), 1.0);
  EXPECT_GE(sol.stats.flop_reduction(), 1.0);
  EXPECT_GT(sol.stats.kernel_flops, 0u);
}

TEST(Simplex, CrossedBoundsAreInfeasible) {
  // Branching can empty a variable's box; the solver must report it rather
  // than "solve" the impossible model (warm or cold).
  Model m;
  const auto x = m.add_variable(0.0, 5.0, 1.0);
  m.add_constraint({{x, 1.0}}, -kInf, 4.0);
  const Solution parent = solve(m);
  ASSERT_EQ(parent.status, Status::Optimal);
  Model child = m;
  child.set_col_lower(x, 3.0);
  child.set_col_upper(x, 2.0);
  EXPECT_EQ(solve(child).status, Status::Infeasible);
  Options warm_opt;
  warm_opt.warm_start = &parent.basis;
  EXPECT_EQ(solve(child, warm_opt).status, Status::Infeasible);
}

}  // namespace
}  // namespace hslb::lp
