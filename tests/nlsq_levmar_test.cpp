#include "nlsq/levmar.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "nlsq/multistart.hpp"

namespace hslb::nlsq {
namespace {

/// Quadratic bowl: r_i = x_i - t_i, minimized exactly at x = t.
Problem bowl(const linalg::Vector& target) {
  Problem p;
  p.num_params = target.size();
  p.num_residuals = target.size();
  p.residuals = [target](std::span<const double> x) {
    linalg::Vector r(target.size());
    for (std::size_t i = 0; i < r.size(); ++i) r[i] = x[i] - target[i];
    return r;
  };
  return p;
}

TEST(LevMar, FindsQuadraticMinimum) {
  const auto p = bowl({1.0, -2.0, 3.0});
  const auto res = minimize(p, std::vector<double>{0.0, 0.0, 0.0});
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.params[0], 1.0, 1e-8);
  EXPECT_NEAR(res.params[1], -2.0, 1e-8);
  EXPECT_NEAR(res.params[2], 3.0, 1e-8);
  EXPECT_NEAR(res.cost, 0.0, 1e-14);
}

TEST(LevMar, RespectsBoxConstraints) {
  auto p = bowl({5.0});
  p.lower = {0.0};
  p.upper = {2.0};  // unconstrained optimum 5 is outside
  const auto res = minimize(p, std::vector<double>{1.0});
  EXPECT_NEAR(res.params[0], 2.0, 1e-9);
  EXPECT_NEAR(res.cost, 9.0, 1e-8);
}

TEST(LevMar, StartOutsideBoxIsProjected) {
  auto p = bowl({0.5});
  p.lower = {0.0};
  p.upper = {1.0};
  const auto res = minimize(p, std::vector<double>{42.0});
  EXPECT_NEAR(res.params[0], 0.5, 1e-8);
}

TEST(LevMar, RosenbrockConverges) {
  // Rosenbrock as least squares: r1 = 10(y - x^2), r2 = 1 - x.
  Problem p;
  p.num_params = 2;
  p.num_residuals = 2;
  p.residuals = [](std::span<const double> v) {
    return linalg::Vector{10.0 * (v[1] - v[0] * v[0]), 1.0 - v[0]};
  };
  LevMarOptions opt;
  opt.max_iterations = 500;
  const auto res = minimize(p, std::vector<double>{-1.2, 1.0}, opt);
  EXPECT_NEAR(res.params[0], 1.0, 1e-6);
  EXPECT_NEAR(res.params[1], 1.0, 1e-6);
}

TEST(LevMar, ExponentialCurveFit) {
  // y = p0 * exp(p1 * t), synthetic exact data.
  const std::vector<double> ts{0.0, 0.5, 1.0, 1.5, 2.0};
  const double p0 = 2.0, p1 = -0.7;
  std::vector<double> ys;
  for (double t : ts) ys.push_back(p0 * std::exp(p1 * t));
  Problem p;
  p.num_params = 2;
  p.num_residuals = ts.size();
  p.residuals = [&](std::span<const double> v) {
    linalg::Vector r(ts.size());
    for (std::size_t i = 0; i < ts.size(); ++i)
      r[i] = ys[i] - v[0] * std::exp(v[1] * ts[i]);
    return r;
  };
  const auto res = minimize(p, std::vector<double>{1.0, 0.0});
  EXPECT_NEAR(res.params[0], p0, 1e-6);
  EXPECT_NEAR(res.params[1], p1, 1e-6);
}

TEST(LevMar, NumericJacobianMatchesAnalytic) {
  Problem p;
  p.num_params = 2;
  p.num_residuals = 3;
  const std::vector<double> ts{1.0, 2.0, 3.0};
  p.residuals = [&](std::span<const double> v) {
    linalg::Vector r(3);
    for (std::size_t i = 0; i < 3; ++i) r[i] = v[0] * ts[i] * ts[i] + v[1] / ts[i];
    return r;
  };
  const std::vector<double> at{0.7, -1.3};
  const auto jac = numeric_jacobian(p, at);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(jac(i, 0), ts[i] * ts[i], 1e-5);
    EXPECT_NEAR(jac(i, 1), 1.0 / ts[i], 1e-5);
  }
}

TEST(LevMar, CostNeverIncreases) {
  // Track costs across iterations via a wrapper counting evaluations.
  Problem p;
  p.num_params = 2;
  p.num_residuals = 4;
  p.residuals = [](std::span<const double> v) {
    return linalg::Vector{v[0] - 1.0, v[1] + 2.0, v[0] * v[1] - 3.0,
                          std::sin(v[0])};
  };
  const std::vector<double> start{5.0, 5.0};
  const double initial_cost = p.cost(start);
  const auto res = minimize(p, start);
  EXPECT_LE(res.cost, initial_cost);
}

TEST(Multistart, EscapesLocalMinimum) {
  // f(x) = (x^2 - 4)^2 has minima at +-2; from a box biased positive and
  // several starts we must find cost ~0.
  Problem p;
  p.num_params = 1;
  p.num_residuals = 1;
  p.residuals = [](std::span<const double> v) {
    return linalg::Vector{v[0] * v[0] - 4.0};
  };
  const linalg::Vector lo{0.1}, hi{10.0};
  const auto res = minimize_multistart(p, lo, hi);
  EXPECT_NEAR(res.best.cost, 0.0, 1e-10);
  EXPECT_EQ(res.starts_tried, 16u);
  EXPECT_EQ(res.local_costs.size(), 16u);
}

TEST(Multistart, DeterministicForSeed) {
  Problem p;
  p.num_params = 1;
  p.num_residuals = 1;
  p.residuals = [](std::span<const double> v) {
    return linalg::Vector{std::cos(v[0]) + 0.1 * v[0]};
  };
  const linalg::Vector lo{0.5}, hi{20.0};
  MultistartOptions opt;
  opt.seed = 99;
  const auto r1 = minimize_multistart(p, lo, hi, opt);
  const auto r2 = minimize_multistart(p, lo, hi, opt);
  EXPECT_EQ(r1.best.params[0], r2.best.params[0]);
  EXPECT_EQ(r1.local_costs, r2.local_costs);
}

TEST(Multistart, RejectsInfiniteStartBox) {
  Problem p;
  p.num_params = 1;
  p.num_residuals = 1;
  p.residuals = [](std::span<const double> v) { return linalg::Vector{v[0]}; };
  const linalg::Vector lo{0.0};
  const linalg::Vector hi{std::numeric_limits<double>::infinity()};
  EXPECT_THROW(minimize_multistart(p, lo, hi), ContractViolation);
}

}  // namespace
}  // namespace hslb::nlsq
