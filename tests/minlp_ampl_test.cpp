#include "minlp/ampl.hpp"

#include <gtest/gtest.h>

namespace hslb::minlp {
namespace {

Model small_model() {
  Model m;
  const auto n = m.add_integer(1.0, 64.0, "n_ocn");
  const auto t = m.add_continuous(0.0, 500.0, "T");
  const auto z = m.add_binary("z_pick");
  m.set_objective(t, 1.0);
  m.add_linear({{n, 1.0}, {z, 4.0}}, -lp::kInf, 64.0, "budget");
  m.add_linear({{z, 1.0}}, 1.0, 1.0, "pick");
  NonlinearConstraint c;
  c.name = "T_ocn";
  c.formula = "100/n_ocn - T <= 0";
  c.vars = {n, t};
  c.value = [n, t](std::span<const double> x) { return 100.0 / x[n] - x[t]; };
  c.gradient = [n, t](std::span<const double> x) {
    return std::vector<GradEntry>{{n, -100.0 / (x[n] * x[n])}, {t, -1.0}};
  };
  m.add_nonlinear(std::move(c));
  return m;
}

TEST(Ampl, DeclaresAllVariables) {
  const auto text = to_ampl(small_model());
  EXPECT_NE(text.find("var n_ocn integer >= 1 <= 64;"), std::string::npos);
  EXPECT_NE(text.find("var T >= 0 <= 500;"), std::string::npos);
  EXPECT_NE(text.find("var z_pick binary;"), std::string::npos);
}

TEST(Ampl, EmitsObjectiveAndConstraints) {
  const auto text = to_ampl(small_model());
  EXPECT_NE(text.find("minimize wall_clock: T;"), std::string::npos);
  EXPECT_NE(text.find("subject to budget: n_ocn + 4*z_pick <= 64;"),
            std::string::npos);
  EXPECT_NE(text.find("subject to pick: z_pick = 1;"), std::string::npos);
  EXPECT_NE(text.find("subject to T_ocn: 100/n_ocn - T <= 0;"),
            std::string::npos);
}

TEST(Ampl, HeaderAndObjectiveName) {
  AmplOptions opt;
  opt.header = "line one\nline two";
  opt.objective_name = "makespan";
  const auto text = to_ampl(small_model(), opt);
  EXPECT_NE(text.find("# line one"), std::string::npos);
  EXPECT_NE(text.find("# line two"), std::string::npos);
  EXPECT_NE(text.find("minimize makespan:"), std::string::npos);
}

TEST(Ampl, MissingFormulaBecomesComment) {
  Model m;
  const auto x = m.add_continuous(0.0, 1.0, "x");
  m.set_objective(x, 1.0);
  NonlinearConstraint c;
  c.name = "opaque";
  c.vars = {x};
  c.value = [x](std::span<const double> v) { return v[x] - 1.0; };
  c.gradient = [x](std::span<const double>) {
    return std::vector<GradEntry>{{x, 1.0}};
  };
  m.add_nonlinear(std::move(c));
  const auto text = to_ampl(m);
  EXPECT_NE(text.find("# nonlinear constraint 'opaque'"), std::string::npos);
}

TEST(Ampl, EmitsSosSuffixes) {
  Model m;
  const auto a = m.add_binary("z_a");
  const auto b = m.add_binary("z_b");
  m.set_objective(a, 1.0);
  m.add_sos1(Sos1{"ocn_set", {a, b}, {2.0, 4.0}});
  const auto text = to_ampl(m);
  EXPECT_NE(text.find("suffix sosno integer;"), std::string::npos);
  EXPECT_NE(text.find("let z_a.sosno := 1; let z_a.ref := 2;"),
            std::string::npos);
  EXPECT_NE(text.find("let z_b.sosno := 1; let z_b.ref := 4;"),
            std::string::npos);
}

TEST(Ampl, RangeRow) {
  Model m;
  const auto x = m.add_continuous(0.0, 10.0, "x");
  m.set_objective(x, 1.0);
  m.add_linear({{x, 2.0}}, 1.0, 5.0, "range_row");
  const auto text = to_ampl(m);
  EXPECT_NE(text.find("subject to range_row: 1 <= 2*x <= 5;"),
            std::string::npos);
}

TEST(Ampl, NegativeCoefficientFormatting) {
  Model m;
  const auto x = m.add_continuous(0.0, 10.0, "x");
  const auto y = m.add_continuous(0.0, 10.0, "y");
  m.set_objective(x, 1.0);
  m.add_linear({{x, 1.0}, {y, -2.5}}, 0.0, lp::kInf, "r");
  const auto text = to_ampl(m);
  EXPECT_NE(text.find("subject to r: x - 2.5*y >= 0;"), std::string::npos);
}

}  // namespace
}  // namespace hslb::minlp
