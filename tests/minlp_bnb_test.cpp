#include "minlp/bnb.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <optional>
#include <vector>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "minlp/kelley.hpp"

namespace hslb::minlp {
namespace {

/// Convex separable quadratic (x - t)^2 <= s epigraph helper used to build
/// random convex MINLPs with known structure.
NonlinearConstraint quad_above(std::size_t x, std::size_t t, double center,
                               double weight) {
  // weight*(x-center)^2 - t <= 0
  NonlinearConstraint c;
  c.vars = {x, t};
  c.value = [x, t, center, weight](std::span<const double> v) {
    const double d = v[x] - center;
    return weight * d * d - v[t];
  };
  c.gradient = [x, t, center, weight](std::span<const double> v) {
    return std::vector<GradEntry>{{x, 2.0 * weight * (v[x] - center)},
                                  {t, -1.0}};
  };
  return c;
}

TEST(Kelley, SolvesConvexQp) {
  // min t s.t. (x-1.5)^2 <= t, 0 <= x <= 4, 0 <= t <= 100.
  Model m;
  const auto x = m.add_continuous(0.0, 4.0, "x");
  const auto t = m.add_continuous(0.0, 100.0, "t");
  m.set_objective(t, 1.0);
  m.add_nonlinear(quad_above(x, t, 1.5, 1.0));
  CutPool pool;
  const auto res = solve_relaxation(m, pool);
  ASSERT_EQ(res.status, KelleyResult::Status::Optimal);
  EXPECT_NEAR(res.objective, 0.0, 1e-5);
  EXPECT_NEAR(res.x[x], 1.5, 1e-2);
}

TEST(Kelley, BoundOverridesPinVariables) {
  // min t s.t. (x-1.5)^2 <= t; overriding x's box to [3,3] must move the
  // optimum to (3-1.5)^2 = 2.25 without touching the model.
  Model m;
  const auto x = m.add_continuous(0.0, 4.0, "x");
  const auto t = m.add_continuous(0.0, 100.0, "t");
  m.set_objective(t, 1.0);
  m.add_nonlinear(quad_above(x, t, 1.5, 1.0));
  CutPool pool;
  BoundOverrides pin(m.num_vars());
  pin.lower[x] = 3.0;
  pin.upper[x] = 3.0;
  const auto res = solve_relaxation(m, pool, pin);
  ASSERT_EQ(res.status, KelleyResult::Status::Optimal);
  EXPECT_NEAR(res.x[x], 3.0, 1e-9);
  EXPECT_NEAR(res.objective, 2.25, 1e-4);
  // The model's own bounds are unchanged.
  EXPECT_DOUBLE_EQ(m.lower(x), 0.0);
}

TEST(Kelley, CrossedOverrideBoundsAreInfeasible) {
  Model m;
  const auto x = m.add_continuous(0.0, 4.0, "x");
  m.set_objective(x, 1.0);
  CutPool pool;
  BoundOverrides crossed(m.num_vars());
  crossed.lower[x] = 3.0;
  crossed.upper[x] = 2.0;  // empty box (as produced by deep branching)
  const auto res = solve_relaxation(m, pool, crossed);
  EXPECT_EQ(res.status, KelleyResult::Status::Infeasible);
}

TEST(Kelley, DetectsInfeasible) {
  Model m;
  const auto x = m.add_continuous(0.0, 1.0, "x");
  m.set_objective(x, 1.0);
  m.add_linear({{x, 1.0}}, 2.0, 3.0);  // impossible
  CutPool pool;
  EXPECT_EQ(solve_relaxation(m, pool).status, KelleyResult::Status::Infeasible);
}

TEST(Bnb, PureIntegerLinear) {
  // min -x - y s.t. x + y <= 3.5, x,y in {0..3}: optimum -3 at e.g. (3, 0)
  // ... wait, x+y <= 3.5 allows (3,0),(2,1)... all sum to 3 -> obj -3.
  Model m;
  const auto x = m.add_integer(0.0, 3.0, "x");
  const auto y = m.add_integer(0.0, 3.0, "y");
  m.set_objective(x, -1.0);
  m.set_objective(y, -1.0);
  m.add_linear({{x, 1.0}, {y, 1.0}}, -kInf, 3.5);
  const auto res = solve(m);
  ASSERT_EQ(res.status, BnbStatus::Optimal);
  EXPECT_NEAR(res.objective, -3.0, 1e-6);
  EXPECT_TRUE(m.is_feasible(res.x));
}

TEST(Bnb, IntegerPointOfConvexParabola) {
  // min t s.t. (x-2.4)^2 <= t, x integer in [0,10] -> x=2, t=0.16.
  Model m;
  const auto x = m.add_integer(0.0, 10.0, "x");
  const auto t = m.add_continuous(0.0, 1000.0, "t");
  m.set_objective(t, 1.0);
  m.add_nonlinear(quad_above(x, t, 2.4, 1.0));
  const auto res = solve(m);
  ASSERT_EQ(res.status, BnbStatus::Optimal);
  EXPECT_NEAR(res.x[x], 2.0, 1e-6);
  EXPECT_NEAR(res.objective, 0.16, 1e-4);
}

TEST(Bnb, InfeasibleIntegerModel) {
  Model m;
  const auto x = m.add_integer(0.0, 10.0, "x");
  m.set_objective(x, 1.0);
  m.add_linear({{x, 2.0}}, 5.0, 5.0);  // x = 2.5 impossible for integer x
  const auto res = solve(m);
  EXPECT_EQ(res.status, BnbStatus::Infeasible);
  EXPECT_FALSE(res.has_solution);
}

TEST(Bnb, RequiresFiniteBounds) {
  Model m;
  m.add_continuous(0.0, kInf, "x");
  EXPECT_THROW(solve(m), ContractViolation);
}

TEST(Bnb, Sos1SelectsBestAllocation) {
  // Mimics the paper's ocean-allocation structure: z_k pick one node count
  // from O = {2, 4, 8, 16, 32}; minimize T >= f(n) with f convex decreasing;
  // plus budget n <= 20. Best feasible pick: n = 16.
  Model m;
  const std::vector<double> counts{2.0, 4.0, 8.0, 16.0, 32.0};
  std::vector<std::size_t> zs;
  for (std::size_t k = 0; k < counts.size(); ++k)
    zs.push_back(m.add_binary("z" + std::to_string(k)));
  const auto n = m.add_continuous(2.0, 32.0, "n");
  const auto t = m.add_continuous(0.0, 1000.0, "t");
  m.set_objective(t, 1.0);
  // sum z = 1; sum z_k O_k = n; n <= 20
  {
    std::vector<lp::Coeff> ones, weighted;
    for (std::size_t k = 0; k < zs.size(); ++k) {
      ones.push_back({zs[k], 1.0});
      weighted.push_back({zs[k], counts[k]});
    }
    m.add_linear(ones, 1.0, 1.0);
    weighted.push_back({n, -1.0});
    m.add_linear(weighted, 0.0, 0.0);
  }
  m.add_linear({{n, 1.0}}, -kInf, 20.0);
  // T >= 100/n  <=>  100/n - T <= 0 (convex in n > 0).
  NonlinearConstraint c;
  c.vars = {n, t};
  c.value = [n, t](std::span<const double> v) { return 100.0 / v[n] - v[t]; };
  c.gradient = [n, t](std::span<const double> v) {
    return std::vector<GradEntry>{{n, -100.0 / (v[n] * v[n])}, {t, -1.0}};
  };
  m.add_nonlinear(std::move(c));
  Sos1 sos{"ocn", zs, counts};
  m.add_sos1(std::move(sos));

  for (bool use_sos : {true, false}) {
    BnbOptions opt;
    opt.use_sos_branching = use_sos;
    const auto res = solve(m, opt);
    ASSERT_EQ(res.status, BnbStatus::Optimal) << "use_sos=" << use_sos;
    EXPECT_NEAR(res.x[n], 16.0, 1e-5);
    EXPECT_NEAR(res.objective, 100.0 / 16.0, 1e-4);
    EXPECT_TRUE(m.is_feasible(res.x, 1e-5, 1e-5));
  }
}

// ---------------------------------------------------------------------------
// Property test: random convex MINLPs vs. exhaustive enumeration.
// ---------------------------------------------------------------------------

struct RandomMinlp {
  Model model;
  std::vector<std::size_t> int_vars;
  std::vector<long long> lo, hi;
  // ground truth evaluator: given integer assignment, returns optimal
  // continuous completion objective or nullopt if infeasible.
  std::function<std::optional<double>(const std::vector<long long>&)> value;
};

/// Builds: min sum_i t_i  s.t.  w_i (x_i - c_i)^2 <= t_i,  sum x_i <= budget,
/// x_i integer in [0, hi_i]. The continuous completion is trivial:
/// t_i = w_i (x_i - c_i)^2.
RandomMinlp make_random_minlp(Rng& rng) {
  RandomMinlp out;
  const int k = static_cast<int>(rng.uniform_int(1, 3));
  std::vector<double> centers, weights;
  double budget = 0.0;
  for (int i = 0; i < k; ++i) {
    const long long hi = rng.uniform_int(2, 6);
    const double center = rng.uniform(0.0, static_cast<double>(hi));
    const double weight = rng.uniform(0.5, 3.0);
    const auto x = out.model.add_integer(0.0, static_cast<double>(hi));
    const auto t = out.model.add_continuous(0.0, 1000.0);
    out.model.set_objective(t, 1.0);
    out.model.add_nonlinear(quad_above(x, t, center, weight));
    out.int_vars.push_back(x);
    out.lo.push_back(0);
    out.hi.push_back(hi);
    centers.push_back(center);
    weights.push_back(weight);
    budget += static_cast<double>(hi);
  }
  budget = std::floor(budget * rng.uniform(0.4, 1.0));
  std::vector<lp::Coeff> coeffs;
  for (auto v : out.int_vars) coeffs.push_back({v, 1.0});
  out.model.add_linear(coeffs, -kInf, budget);

  out.value = [centers, weights, budget](const std::vector<long long>& xs)
      -> std::optional<double> {
    double sum = 0.0, obj = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      sum += static_cast<double>(xs[i]);
      const double d = static_cast<double>(xs[i]) - centers[i];
      obj += weights[i] * d * d;
    }
    if (sum > budget + 1e-9) return std::nullopt;
    return obj;
  };
  return out;
}

std::optional<double> enumerate_best(const RandomMinlp& p) {
  std::optional<double> best;
  std::vector<long long> assign(p.int_vars.size(), 0);
  std::function<void(std::size_t)> rec = [&](std::size_t i) {
    if (i == assign.size()) {
      const auto v = p.value(assign);
      if (v && (!best || *v < *best)) best = *v;
      return;
    }
    for (long long x = p.lo[i]; x <= p.hi[i]; ++x) {
      assign[i] = x;
      rec(i + 1);
    }
  };
  rec(0);
  return best;
}

class BnbRandomConvex : public ::testing::TestWithParam<int> {};

TEST_P(BnbRandomConvex, MatchesExhaustiveEnumeration) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 6151 + 3);
  const auto p = make_random_minlp(rng);
  const auto expected = enumerate_best(p);
  const auto res = solve(p.model);
  ASSERT_TRUE(expected.has_value());  // x = 0 is always feasible (budget >= 0)
  ASSERT_EQ(res.status, BnbStatus::Optimal);
  EXPECT_NEAR(res.objective, *expected, 1e-4);
  EXPECT_TRUE(p.model.is_feasible(res.x, 1e-5, 1e-5));
}

INSTANTIATE_TEST_SUITE_P(Sweep, BnbRandomConvex, ::testing::Range(0, 60));

class BnbPseudoCost : public ::testing::TestWithParam<int> {};

TEST_P(BnbPseudoCost, MatchesExhaustiveEnumeration) {
  // The pseudocost branch rule must reach the same proven optimum as the
  // default most-fractional rule.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7177 + 11);
  const auto p = make_random_minlp(rng);
  const auto expected = enumerate_best(p);
  BnbOptions opt;
  opt.branch_rule = BranchRule::PseudoCost;
  const auto res = solve(p.model, opt);
  ASSERT_TRUE(expected.has_value());
  ASSERT_EQ(res.status, BnbStatus::Optimal);
  EXPECT_NEAR(res.objective, *expected, 1e-4);
  EXPECT_TRUE(p.model.is_feasible(res.x, 1e-5, 1e-5));
}

INSTANTIATE_TEST_SUITE_P(Sweep, BnbPseudoCost, ::testing::Range(0, 30));

TEST(Bnb, ReportsStatistics) {
  Model m;
  const auto x = m.add_integer(0.0, 10.0, "x");
  const auto t = m.add_continuous(0.0, 1000.0, "t");
  m.set_objective(t, 1.0);
  m.add_nonlinear(quad_above(x, t, 5.7, 2.0));
  const auto res = solve(m);
  ASSERT_EQ(res.status, BnbStatus::Optimal);
  EXPECT_GE(res.nodes, 1u);
  EXPECT_GE(res.lp_solves, 1u);
  EXPECT_GT(res.cuts, 0u);
  EXPECT_EQ(res.gap, 0.0);
  EXPECT_GT(res.seconds, 0.0);
}

// ---------------------------------------------------------------------------
// Determinism contract: the search — incumbent, bound, tree size, solve
// counts — is bit-identical for every solver_threads value, because nodes
// are expanded in synchronized best-bound waves merged in wave order.
// ---------------------------------------------------------------------------

class BnbThreadDeterminism : public ::testing::TestWithParam<int> {};

TEST_P(BnbThreadDeterminism, BitIdenticalAcrossThreadCounts) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 9973 + 5);
  const auto p = make_random_minlp(rng);
  BnbOptions opt;
  opt.solver_threads = 1;
  const auto serial = solve(p.model, opt);
  for (std::size_t threads : {2u, 8u}) {
    opt.solver_threads = threads;
    const auto par = solve(p.model, opt);
    ASSERT_EQ(par.status, serial.status) << "threads=" << threads;
    // Bit-identical, not merely close: the wave schedule must make the
    // parallel search indistinguishable from the serial one.
    EXPECT_EQ(par.objective, serial.objective) << "threads=" << threads;
    EXPECT_EQ(par.x, serial.x) << "threads=" << threads;
    EXPECT_EQ(par.best_bound, serial.best_bound) << "threads=" << threads;
    EXPECT_EQ(par.nodes, serial.nodes) << "threads=" << threads;
    EXPECT_EQ(par.waves, serial.waves) << "threads=" << threads;
    EXPECT_EQ(par.lp_solves, serial.lp_solves) << "threads=" << threads;
    EXPECT_EQ(par.nlp_solves, serial.nlp_solves) << "threads=" << threads;
    EXPECT_EQ(par.cuts, serial.cuts) << "threads=" << threads;
    // The sparse-kernel counters are sums over a bit-identical set of LP
    // solves, so they too must not depend on the thread count.
    EXPECT_EQ(par.lp_pivots, serial.lp_pivots) << "threads=" << threads;
    EXPECT_EQ(par.lp_stats.eta_nnz, serial.lp_stats.eta_nnz)
        << "threads=" << threads;
    EXPECT_EQ(par.lp_stats.eta_dense_nnz, serial.lp_stats.eta_dense_nnz)
        << "threads=" << threads;
    EXPECT_EQ(par.lp_stats.kernel_flops, serial.lp_stats.kernel_flops)
        << "threads=" << threads;
    EXPECT_EQ(par.lp_stats.kernel_dense_flops,
              serial.lp_stats.kernel_dense_flops)
        << "threads=" << threads;
    EXPECT_EQ(par.lp_stats.refactorizations, serial.lp_stats.refactorizations)
        << "threads=" << threads;
    // Forrest-Tomlin update and dual-simplex counters ride the same
    // deterministic pivot paths.
    EXPECT_EQ(par.lp_stats.ft_updates, serial.lp_stats.ft_updates)
        << "threads=" << threads;
    EXPECT_EQ(par.lp_stats.ft_fill_nnz, serial.lp_stats.ft_fill_nnz)
        << "threads=" << threads;
    EXPECT_EQ(par.lp_stats.refactor_interval_hits,
              serial.lp_stats.refactor_interval_hits)
        << "threads=" << threads;
    EXPECT_EQ(par.lp_stats.refactor_fill_hits,
              serial.lp_stats.refactor_fill_hits)
        << "threads=" << threads;
    EXPECT_EQ(par.lp_stats.refactor_drift_hits,
              serial.lp_stats.refactor_drift_hits)
        << "threads=" << threads;
    EXPECT_EQ(par.lp_stats.dual_pivots, serial.lp_stats.dual_pivots)
        << "threads=" << threads;
    EXPECT_EQ(par.lp_stats.phase1_pivots, serial.lp_stats.phase1_pivots)
        << "threads=" << threads;
    EXPECT_EQ(par.lp_stats.dual_phase1_avoided,
              serial.lp_stats.dual_phase1_avoided)
        << "threads=" << threads;
    // Presolve, propagation, and cut lifecycle all run on the same
    // deterministic wave schedule, so their counters cannot drift either.
    EXPECT_EQ(par.lp_stats.presolve_rows_removed,
              serial.lp_stats.presolve_rows_removed)
        << "threads=" << threads;
    EXPECT_EQ(par.lp_stats.presolve_cols_removed,
              serial.lp_stats.presolve_cols_removed)
        << "threads=" << threads;
    EXPECT_EQ(par.bounds_tightened, serial.bounds_tightened)
        << "threads=" << threads;
    EXPECT_EQ(par.nodes_propagated_infeasible,
              serial.nodes_propagated_infeasible)
        << "threads=" << threads;
    EXPECT_EQ(par.cuts_retired, serial.cuts_retired) << "threads=" << threads;
    EXPECT_EQ(par.cuts_reactivated, serial.cuts_reactivated)
        << "threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BnbThreadDeterminism, ::testing::Range(0, 20));

class BnbSparseDenseKernels : public ::testing::TestWithParam<int> {};

TEST_P(BnbSparseDenseKernels, SameOptimumOnDenseKernels) {
  // force_dense swaps every LP kernel under the search for its
  // dense-equivalent; the proven optimum must not move.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 8887 + 23);
  const auto p = make_random_minlp(rng);
  BnbOptions sparse_opt;
  BnbOptions dense_opt;
  dense_opt.kelley.lp.force_dense = true;
  const auto sparse = solve(p.model, sparse_opt);
  const auto dense = solve(p.model, dense_opt);
  ASSERT_EQ(sparse.status, dense.status);
  if (sparse.status != BnbStatus::Optimal) return;
  EXPECT_NEAR(sparse.objective, dense.objective,
              1e-6 * (1.0 + std::fabs(dense.objective)));
  // Dense etas must report the dense-equivalent cost; the sparse run can
  // only be cheaper per pivot.
  if (dense.lp_stats.pivots > 0) {
    EXPECT_EQ(dense.lp_stats.eta_nnz, dense.lp_stats.eta_dense_nnz);
  }
  EXPECT_LE(sparse.lp_stats.eta_nnz, sparse.lp_stats.eta_dense_nnz);
  EXPECT_EQ(dense.lp_stats.kernel_flops, dense.lp_stats.kernel_dense_flops);
  EXPECT_LE(sparse.lp_stats.kernel_flops, sparse.lp_stats.kernel_dense_flops);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BnbSparseDenseKernels, ::testing::Range(0, 10));

class BnbBasisUpdateParity : public ::testing::TestWithParam<int> {};

TEST_P(BnbBasisUpdateParity, SameOptimumOnEtaBaseline) {
  // The Forrest-Tomlin and product-form-eta schemes maintain the same basis
  // inverse; swapping one for the other under the whole search must not
  // move the proven optimum.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 6121 + 29);
  const auto p = make_random_minlp(rng);
  BnbOptions ft_opt;  // ForrestTomlin is the default
  BnbOptions eta_opt;
  eta_opt.kelley.lp.basis_update = lp::BasisUpdate::ProductFormEta;
  const auto ft = solve(p.model, ft_opt);
  const auto eta = solve(p.model, eta_opt);
  ASSERT_EQ(ft.status, eta.status);
  if (ft.status != BnbStatus::Optimal) return;
  EXPECT_NEAR(ft.objective, eta.objective,
              1e-6 * (1.0 + std::fabs(eta.objective)));
  // Each scheme's counters stay in its own lane: FT runs record no eta
  // file, the baseline records no FT updates.
  EXPECT_EQ(ft.lp_stats.eta_nnz, 0u);
  EXPECT_EQ(eta.lp_stats.ft_updates, 0u);
  if (ft.lp_stats.pivots > 0) EXPECT_GT(ft.lp_stats.ft_updates, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BnbBasisUpdateParity, ::testing::Range(0, 10));

class BnbWarmVsCold : public ::testing::TestWithParam<int> {};

TEST_P(BnbWarmVsCold, WarmStartsNeverChangeTheAnswer) {
  // Warm bases change the pivot path, never the proven optimum.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 3571 + 17);
  const auto p = make_random_minlp(rng);
  const auto expected = enumerate_best(p);
  ASSERT_TRUE(expected.has_value());
  for (bool warm : {false, true}) {
    BnbOptions opt;
    opt.warm_start = warm;
    const auto res = solve(p.model, opt);
    ASSERT_EQ(res.status, BnbStatus::Optimal) << "warm=" << warm;
    EXPECT_NEAR(res.objective, *expected, 1e-4) << "warm=" << warm;
    EXPECT_TRUE(p.model.is_feasible(res.x, 1e-5, 1e-5)) << "warm=" << warm;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BnbWarmVsCold, ::testing::Range(0, 20));

// ---------------------------------------------------------------------------
// Presolve + domain propagation + cut lifecycle (ISSUE 4).
// ---------------------------------------------------------------------------

class BnbPresolveParity : public ::testing::TestWithParam<int> {};

TEST_P(BnbPresolveParity, SameOptimumWithAndWithoutPresolve) {
  // Presolve and cut retirement change the LP path, never the proven
  // optimum: on/off must both land on the enumerated optimum.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 4241 + 29);
  const auto p = make_random_minlp(rng);
  const auto expected = enumerate_best(p);
  ASSERT_TRUE(expected.has_value());
  BnbOptions on;  // presolve + cut_age_limit defaults
  BnbOptions off;
  off.presolve = false;
  off.cut_age_limit = 0;  // keep every cut forever
  const auto r_on = solve(p.model, on);
  const auto r_off = solve(p.model, off);
  ASSERT_EQ(r_on.status, BnbStatus::Optimal);
  ASSERT_EQ(r_off.status, BnbStatus::Optimal);
  EXPECT_NEAR(r_on.objective, *expected, 1e-4);
  EXPECT_NEAR(r_off.objective, *expected, 1e-4);
  EXPECT_TRUE(p.model.is_feasible(r_on.x, 1e-5, 1e-5));
  EXPECT_TRUE(p.model.is_feasible(r_off.x, 1e-5, 1e-5));
}

INSTANTIATE_TEST_SUITE_P(Sweep, BnbPresolveParity, ::testing::Range(0, 10));

class BnbAggressiveRetirement : public ::testing::TestWithParam<int> {};

TEST_P(BnbAggressiveRetirement, RetirementNeverLosesValidity) {
  // age limit 1 retires a cut after a single slack observation — maximal
  // churn through retire/reactivate, yet the optimum must not move.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 5087 + 41);
  const auto p = make_random_minlp(rng);
  const auto expected = enumerate_best(p);
  ASSERT_TRUE(expected.has_value());
  BnbOptions opt;
  opt.cut_age_limit = 1;
  const auto res = solve(p.model, opt);
  ASSERT_EQ(res.status, BnbStatus::Optimal);
  EXPECT_NEAR(res.objective, *expected, 1e-4);
  EXPECT_TRUE(p.model.is_feasible(res.x, 1e-5, 1e-5));
}

INSTANTIATE_TEST_SUITE_P(Sweep, BnbAggressiveRetirement,
                         ::testing::Range(0, 10));

TEST(Propagation, TightensThroughLinearRows) {
  // x + y <= 3 with x,y integer in [0,10]: both uppers drop to 3.
  Model m;
  const auto x = m.add_integer(0.0, 10.0, "x");
  const auto y = m.add_integer(0.0, 10.0, "y");
  m.add_linear({{x, 1.0}, {y, 1.0}}, -kInf, 3.0);
  BoundOverrides b(m.num_vars());
  std::size_t tightened = 0;
  ASSERT_TRUE(propagate_bounds(m, b, 1e-6, 4, &tightened));
  EXPECT_DOUBLE_EQ(b.ub(m, x), 3.0);
  EXPECT_DOUBLE_EQ(b.ub(m, y), 3.0);
  EXPECT_GE(tightened, 2u);
}

TEST(Propagation, RoundsIntegerBounds) {
  // 2x <= 5 -> x <= 2.5 -> x <= 2 for integer x.
  Model m;
  const auto x = m.add_integer(0.0, 10.0, "x");
  m.add_linear({{x, 2.0}}, -kInf, 5.0);
  BoundOverrides b(m.num_vars());
  ASSERT_TRUE(propagate_bounds(m, b, 1e-6));
  EXPECT_DOUBLE_EQ(b.ub(m, x), 2.0);
  // Lower side: 3x >= 7 -> x >= 7/3 -> x >= 3.
  Model m2;
  const auto z = m2.add_integer(0.0, 10.0, "z");
  m2.add_linear({{z, 3.0}}, 7.0, kInf);
  BoundOverrides b2(m2.num_vars());
  ASSERT_TRUE(propagate_bounds(m2, b2, 1e-6));
  EXPECT_DOUBLE_EQ(b2.lb(m2, z), 3.0);
}

TEST(Propagation, DetectsRowInfeasibility) {
  // Node branching pinned x <= 4, but a row demands x >= 5.
  Model m;
  const auto x = m.add_integer(0.0, 10.0, "x");
  m.add_linear({{x, 1.0}}, 5.0, kInf);
  BoundOverrides b(m.num_vars());
  b.upper[x] = 4.0;
  EXPECT_FALSE(propagate_bounds(m, b, 1e-6));
}

TEST(Propagation, ChainsAcrossRows) {
  // x <= 2 forces y >= 4 via x + y >= 6; y >= 4 then forces w <= 1 via
  // y + 2w <= 6 — one call must reach the fixpoint across both rows.
  Model m;
  const auto x = m.add_integer(0.0, 10.0, "x");
  const auto y = m.add_integer(0.0, 10.0, "y");
  const auto w = m.add_integer(0.0, 10.0, "w");
  m.add_linear({{x, 1.0}, {y, 1.0}}, 6.0, kInf);
  m.add_linear({{y, 1.0}, {w, 2.0}}, -kInf, 6.0);
  BoundOverrides b(m.num_vars());
  b.upper[x] = 2.0;
  ASSERT_TRUE(propagate_bounds(m, b, 1e-6));
  EXPECT_DOUBLE_EQ(b.lb(m, y), 4.0);
  EXPECT_DOUBLE_EQ(b.ub(m, w), 1.0);
}

TEST(Propagation, Sos1FixesSiblingsOfForcedMember) {
  Model m;
  std::vector<std::size_t> zs;
  for (int k = 0; k < 3; ++k)
    zs.push_back(m.add_binary("z" + std::to_string(k)));
  m.add_sos1(Sos1{"s", zs, {1.0, 2.0, 3.0}});
  BoundOverrides b(m.num_vars());
  b.lower[zs[1]] = 1.0;  // branching forced z1 on
  ASSERT_TRUE(propagate_bounds(m, b, 1e-6));
  EXPECT_DOUBLE_EQ(b.ub(m, zs[0]), 0.0);
  EXPECT_DOUBLE_EQ(b.ub(m, zs[2]), 0.0);
  EXPECT_DOUBLE_EQ(b.ub(m, zs[1]), 1.0);
}

TEST(Propagation, Sos1TwoForcedMembersIsInfeasible) {
  Model m;
  std::vector<std::size_t> zs;
  for (int k = 0; k < 3; ++k)
    zs.push_back(m.add_binary("z" + std::to_string(k)));
  m.add_sos1(Sos1{"s", zs, {1.0, 2.0, 3.0}});
  BoundOverrides b(m.num_vars());
  b.lower[zs[0]] = 1.0;
  b.lower[zs[2]] = 1.0;
  EXPECT_FALSE(propagate_bounds(m, b, 1e-6));
}

TEST(CutLifecycle, InsertDeduplicatesBySignature) {
  CutPool pool;
  Cut c{{{0, 1.0}, {2, -2.0}}, 1.5, 0};
  const auto id = pool.insert(c);
  EXPECT_EQ(id, 0u);
  EXPECT_EQ(pool.insert(c), id);  // exact duplicate
  Cut nudged = c;
  nudged.coeffs[0].second += 1e-12;  // within relative 1e-9
  EXPECT_EQ(pool.find_duplicate(nudged), id);
  Cut other_source = c;
  other_source.source_constraint = 1;
  EXPECT_EQ(pool.find_duplicate(other_source), CutPool::npos);
  Cut other_pattern = c;
  other_pattern.coeffs[1].first = 3;
  EXPECT_EQ(pool.find_duplicate(other_pattern), CutPool::npos);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(CutLifecycle, SlackObservationsRetireAndViolationReactivates) {
  CutPool pool;
  const auto id = pool.insert(Cut{{{0, 1.0}}, 0.5, 0});
  ASSERT_TRUE(pool.is_active(id));
  // age limit 2: slack -> age 1, 2, then 3 > 2 retires.
  EXPECT_FALSE(pool.observe(id, /*tight=*/false, 2));
  EXPECT_FALSE(pool.observe(id, false, 2));
  EXPECT_TRUE(pool.observe(id, false, 2));
  EXPECT_FALSE(pool.is_active(id));
  EXPECT_EQ(pool.num_active(), 0u);
  EXPECT_EQ(pool.retired_total(), 1u);
  EXPECT_TRUE(pool.active_ids().empty());
  // Observations of retired cuts are dropped; reactivation flips once.
  EXPECT_FALSE(pool.observe(id, true, 2));
  EXPECT_TRUE(pool.reactivate(id));
  EXPECT_FALSE(pool.reactivate(id));
  EXPECT_TRUE(pool.is_active(id));
  EXPECT_EQ(pool.reactivated_total(), 1u);
  // A tight observation resets the age: two slacks no longer retire.
  EXPECT_FALSE(pool.observe(id, false, 2));
  EXPECT_FALSE(pool.observe(id, true, 2));
  EXPECT_FALSE(pool.observe(id, false, 2));
  EXPECT_FALSE(pool.observe(id, false, 2));
  EXPECT_TRUE(pool.is_active(id));
}

TEST(CutLifecycle, AgeLimitZeroNeverRetires) {
  CutPool pool;
  const auto id = pool.insert(Cut{{{0, 1.0}}, 0.5, 0});
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(pool.observe(id, false, 0));
  EXPECT_TRUE(pool.is_active(id));
  EXPECT_EQ(pool.retired_total(), 0u);
}

TEST(CutLifecycle, LegacyAddReactivatesRetiredDuplicate) {
  CutPool pool;
  Cut c{{{0, 1.0}}, 0.5, 0};
  ASSERT_TRUE(pool.add(c));
  EXPECT_FALSE(pool.observe(0, false, 1));
  EXPECT_TRUE(pool.observe(0, false, 1));  // second slack retires
  ASSERT_FALSE(pool.is_active(0));
  // Re-adding the retired cut (a node saw it violated) reactivates it.
  EXPECT_FALSE(pool.add(c));  // not new...
  EXPECT_TRUE(pool.is_active(0));  // ...but active again
}

TEST(CutLifecycle, LedgerOverlaysSharedPoolWithoutMutatingIt) {
  CutPool pool;
  const auto keep = pool.insert(Cut{{{0, 1.0}}, 0.5, 0});
  const auto retired = pool.insert(Cut{{{1, 1.0}}, 0.25, 1});
  pool.observe(retired, false, 1);
  pool.observe(retired, false, 1);
  ASSERT_FALSE(pool.is_active(retired));

  const auto active = pool.active_ids();
  ASSERT_EQ(active, std::vector<std::size_t>{keep});
  CutLedger ledger(pool, active);
  EXPECT_EQ(ledger.num_cuts(), 1u);

  // A duplicate of an active shared cut adds nothing.
  EXPECT_FALSE(ledger.add(Cut{{{0, 1.0}}, 0.5, 0}));
  // A duplicate of the *retired* shared cut grows the layout and records a
  // reactivation request — the shared pool itself stays untouched.
  EXPECT_TRUE(ledger.add(Cut{{{1, 1.0}}, 0.25, 1}));
  EXPECT_EQ(ledger.num_cuts(), 2u);
  ASSERT_EQ(ledger.reactivated().size(), 1u);
  EXPECT_EQ(ledger.reactivated()[0], retired);
  EXPECT_FALSE(pool.is_active(retired));
  // A fresh cut is appended; its layout slot refers into appended().
  EXPECT_TRUE(ledger.add(Cut{{{2, 1.0}}, 1.0, 0}));
  EXPECT_EQ(ledger.num_cuts(), 3u);
  ASSERT_EQ(ledger.appended().size(), 1u);
  EXPECT_TRUE(ledger.layout().back().is_appended);
  EXPECT_DOUBLE_EQ(ledger.cut(2).rhs, 1.0);
  // The same fresh cut again is a duplicate of the appended one.
  EXPECT_FALSE(ledger.add(Cut{{{2, 1.0}}, 1.0, 0}));
}

TEST(CutLifecycle, LedgerReactivatesRetiredCutsViolatedAtPoint) {
  CutPool pool;
  const auto id = pool.insert(Cut{{{0, 1.0}}, 0.5, 0});  // x0 <= 0.5
  pool.observe(id, false, 1);
  pool.observe(id, false, 1);
  ASSERT_FALSE(pool.is_active(id));

  CutLedger ledger(pool, pool.active_ids());
  EXPECT_EQ(ledger.num_cuts(), 0u);
  const std::vector<double> satisfied{0.25};
  EXPECT_EQ(ledger.reactivate_violated(satisfied, 1e-9), 0u);
  const std::vector<double> violated{1.0};
  EXPECT_EQ(ledger.reactivate_violated(violated, 1e-9), 1u);
  EXPECT_EQ(ledger.num_cuts(), 1u);
  ASSERT_EQ(ledger.reactivated().size(), 1u);
  EXPECT_EQ(ledger.reactivated()[0], id);
  // Already in the layout: a second scan must not duplicate it.
  EXPECT_EQ(ledger.reactivate_violated(violated, 1e-9), 0u);
}

TEST(Bnb, CountersFlowThroughResult) {
  // A model with a redundant row (presolve fodder), a binding budget
  // (propagation fodder), and curvature (cut fodder).
  Rng rng(99);
  const auto p = make_random_minlp(rng);
  BnbOptions opt;
  opt.cut_age_limit = 1;  // maximal retirement churn
  const auto res = solve(p.model, opt);
  ASSERT_EQ(res.status, BnbStatus::Optimal);
  // Retired plus reactivated are internally consistent: a cut cannot be
  // reactivated more often than it was retired.
  EXPECT_LE(res.cuts_reactivated, res.cuts_retired);
}

TEST(Bnb, NodeLimitReturnsIncumbentWithGap) {
  // Make a slightly larger instance and force a 1-node limit.
  Rng rng(777);
  const auto p = make_random_minlp(rng);
  BnbOptions opt;
  opt.max_nodes = 1;
  const auto res = solve(p.model, opt);
  EXPECT_TRUE(res.status == BnbStatus::NodeLimit ||
              res.status == BnbStatus::Optimal);
}

}  // namespace
}  // namespace hslb::minlp
