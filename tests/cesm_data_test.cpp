#include "cesm/data.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "cesm/layouts.hpp"

namespace hslb::cesm {
namespace {

TEST(PublishedData, SixTableBlocks) {
  const auto& cases = published_cases();
  ASSERT_EQ(cases.size(), 6u);
  EXPECT_EQ(cases[0].total_nodes, 128);
  EXPECT_EQ(cases[1].total_nodes, 2048);
  EXPECT_EQ(cases[2].total_nodes, 8192);
  EXPECT_EQ(cases[3].total_nodes, 32768);
  EXPECT_FALSE(cases[4].ocean_constrained);
  EXPECT_FALSE(cases[5].ocean_constrained);
}

TEST(PublishedData, TotalsMatchLayout1Formula) {
  // Consistency of the transcribed Table III: the published totals must
  // equal max(max(ice,lnd)+atm, ocn) of the published component times.
  for (const auto& c : published_cases()) {
    if (c.has_manual) {
      EXPECT_NEAR(layout_total(Layout::Hybrid, c.manual_seconds),
                  c.manual_total, 0.01)
          << to_string(c.resolution) << " N=" << c.total_nodes;
    }
    EXPECT_NEAR(layout_total(Layout::Hybrid, c.hslb_actual_seconds),
                c.hslb_actual_total, 0.01)
        << to_string(c.resolution) << " N=" << c.total_nodes;
  }
}

TEST(PublishedData, ManualAllocationsRespectBudget) {
  for (const auto& c : published_cases()) {
    if (!c.has_manual) continue;
    // Layout 1: atm + ocn <= N and ice + lnd <= atm.
    const auto lnd = c.manual_nodes[index(Component::Lnd)];
    const auto ice = c.manual_nodes[index(Component::Ice)];
    const auto atm = c.manual_nodes[index(Component::Atm)];
    const auto ocn = c.manual_nodes[index(Component::Ocn)];
    EXPECT_LE(atm + ocn, c.total_nodes);
    EXPECT_LE(ice + lnd, atm);
  }
}

TEST(PublishedData, HslbAllocationsRespectBudget) {
  for (const auto& c : published_cases()) {
    const auto atm = c.hslb_actual_nodes[index(Component::Atm)];
    const auto ocn = c.hslb_actual_nodes[index(Component::Ocn)];
    const auto ice = c.hslb_actual_nodes[index(Component::Ice)];
    const auto lnd = c.hslb_actual_nodes[index(Component::Lnd)];
    EXPECT_LE(atm + ocn, c.total_nodes);
    EXPECT_LE(ice + lnd, atm);
  }
}

TEST(PublishedData, ConstrainedOceanPicksAllowedCounts) {
  for (const auto& c : published_cases()) {
    if (!c.ocean_constrained) continue;
    const auto& allowed = ocean_allowed_nodes(c.resolution);
    const auto ocn = c.hslb_nodes[index(Component::Ocn)];
    EXPECT_NE(std::find(allowed.begin(), allowed.end(), ocn), allowed.end())
        << "ocn=" << ocn << " not in allowed set";
  }
}

TEST(PublishedData, ObservationsCoverEveryComponent) {
  for (Resolution r : {Resolution::Deg1, Resolution::EighthDeg}) {
    for (Component c : kComponents) {
      const auto& obs = published_observations(r, c);
      EXPECT_GE(obs.size(), 4u) << to_string(r) << "/" << to_string(c);
      for (const auto& o : obs) {
        EXPECT_GE(o.nodes, 1);
        EXPECT_GT(o.seconds, 0.0);
      }
    }
  }
}

TEST(AllowedSets, OceanDeg1Structure) {
  const auto& o = ocean_allowed_nodes(Resolution::Deg1);
  EXPECT_EQ(o.front(), 2);
  EXPECT_EQ(o.back(), 768);
  EXPECT_EQ(o[o.size() - 2], 480);
  for (std::size_t i = 0; i + 1 < o.size() - 1; ++i)
    EXPECT_EQ(o[i + 1] - o[i], 2);  // even numbers up to 480
}

TEST(AllowedSets, OceanEighthMatchesPaper) {
  const auto& o = ocean_allowed_nodes(Resolution::EighthDeg);
  EXPECT_EQ(o, (std::vector<long long>{480, 512, 2356, 3136, 4564, 6124, 19460}));
}

TEST(AllowedSets, AtmDeg1Structure) {
  const auto& a = atm_allowed_nodes_deg1();
  EXPECT_EQ(a.size(), 1639u);  // 1..1638 plus 1664
  EXPECT_EQ(a.front(), 1);
  EXPECT_EQ(a[1637], 1638);
  EXPECT_EQ(a.back(), 1664);
}

TEST(GroundTruth, ConvexAndWellFitted) {
  for (Resolution r : {Resolution::Deg1, Resolution::EighthDeg}) {
    for (Component c : kComponents) {
      EXPECT_TRUE(ground_truth(r, c).is_convex());
      // The paper reports R^2 "very close to 1"; ice is noisier (§IV-A).
      const double floor = c == Component::Ice ? 0.95 : 0.98;
      EXPECT_GT(ground_truth_r2(r, c), floor)
          << to_string(r) << "/" << to_string(c);
    }
  }
}

TEST(GroundTruth, InterpolatesPublishedPoints) {
  // The simulator must reproduce the published optimization landscape:
  // at published allocations the true curve is within ~20% of the published
  // time (ice excepted: the paper itself flags its noise).
  for (Resolution r : {Resolution::Deg1, Resolution::EighthDeg}) {
    for (Component c : {Component::Lnd, Component::Atm, Component::Ocn}) {
      for (const auto& o : published_observations(r, c)) {
        const double pred =
            ground_truth(r, c).eval(static_cast<double>(o.nodes));
        EXPECT_NEAR(pred, o.seconds, 0.2 * o.seconds + 1.0)
            << to_string(r) << "/" << to_string(c) << " at n=" << o.nodes;
      }
    }
  }
}

TEST(GroundTruth, MonotoneOverPublishedRange) {
  // All CESM components scale: more nodes never slower in the calibrated
  // range ("we did not observe increasing wall-clock times", §III-C).
  for (Resolution r : {Resolution::Deg1, Resolution::EighthDeg}) {
    for (Component c : kComponents) {
      const auto& m = ground_truth(r, c);
      const auto& obs = published_observations(r, c);
      long long lo = obs.front().nodes, hi = obs.front().nodes;
      for (const auto& o : obs) {
        lo = std::min(lo, o.nodes);
        hi = std::max(hi, o.nodes);
      }
      double prev = m.eval(static_cast<double>(lo));
      for (double n = static_cast<double>(lo) * 1.3; n < static_cast<double>(hi);
           n *= 1.3) {
        const double t = m.eval(n);
        EXPECT_LE(t, prev * 1.001);
        prev = t;
      }
    }
  }
}

}  // namespace
}  // namespace hslb::cesm
