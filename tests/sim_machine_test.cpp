#include "sim/machine.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"

namespace hslb::sim {
namespace {

TEST(Machine, IntrepidMatchesPaperScale) {
  const Machine m = Machine::intrepid();
  EXPECT_EQ(m.name, "intrepid");
  EXPECT_EQ(m.nodes, 40960u);
  EXPECT_EQ(m.cores_per_node, 4u);
  EXPECT_EQ(m.total_cores(), 163840u);
}

TEST(Machine, PartitionKeepsCoresPerNode) {
  const Machine p = Machine::intrepid_partition(32768);
  EXPECT_EQ(p.nodes, 32768u);
  EXPECT_EQ(p.cores_per_node, 4u);
  EXPECT_EQ(p.total_cores(), 131072u);
}

TEST(Machine, PartitionBoundsEnforced) {
  EXPECT_THROW(Machine::intrepid_partition(0), ContractViolation);
  EXPECT_THROW(Machine::intrepid_partition(40961), ContractViolation);
  EXPECT_NO_THROW(Machine::intrepid_partition(1));
  EXPECT_NO_THROW(Machine::intrepid_partition(40960));
}

TEST(Machine, WorkstationDefaults) {
  const Machine w = Machine::workstation();
  EXPECT_EQ(w.name, "workstation");
  EXPECT_EQ(w.nodes, 16u);
  EXPECT_EQ(w.cores_per_node, 1u);
  EXPECT_THROW(Machine::workstation(0), ContractViolation);
}

TEST(Machine, DefaultIsEmpty) {
  const Machine m;
  EXPECT_EQ(m.nodes, 0u);
  EXPECT_EQ(m.total_cores(), 0u);
}

}  // namespace
}  // namespace hslb::sim
