#include "sim/machine.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/contracts.hpp"

namespace hslb::sim {
namespace {

TEST(Machine, IntrepidMatchesPaperScale) {
  const Machine m = Machine::intrepid();
  EXPECT_EQ(m.name, "intrepid");
  EXPECT_EQ(m.nodes, 40960u);
  EXPECT_EQ(m.cores_per_node, 4u);
  EXPECT_EQ(m.total_cores(), 163840u);
}

TEST(Machine, PartitionKeepsCoresPerNode) {
  const Machine p = Machine::intrepid_partition(32768);
  EXPECT_EQ(p.nodes, 32768u);
  EXPECT_EQ(p.cores_per_node, 4u);
  EXPECT_EQ(p.total_cores(), 131072u);
}

TEST(Machine, PartitionBoundsEnforced) {
  EXPECT_THROW(Machine::intrepid_partition(0), ContractViolation);
  EXPECT_THROW(Machine::intrepid_partition(40961), ContractViolation);
  EXPECT_NO_THROW(Machine::intrepid_partition(1));
  EXPECT_NO_THROW(Machine::intrepid_partition(40960));
}

TEST(Machine, WorkstationDefaults) {
  const Machine w = Machine::workstation();
  EXPECT_EQ(w.name, "workstation");
  EXPECT_EQ(w.nodes, 16u);
  EXPECT_EQ(w.cores_per_node, 1u);
  EXPECT_THROW(Machine::workstation(0), ContractViolation);
}

TEST(Machine, DefaultIsEmpty) {
  const Machine m;
  EXPECT_EQ(m.nodes, 0u);
  EXPECT_EQ(m.total_cores(), 0u);
}

TEST(Machine, DefaultsAreUnmodeled) {
  const Machine m = Machine::workstation();
  EXPECT_FALSE(m.models_communication());
  EXPECT_FALSE(m.models_memory());
  // Unmodeled charges are exactly zero — the compute-only regime.
  EXPECT_EQ(m.comm_seconds(123.0, 7.0), 0.0);
  EXPECT_EQ(m.page_seconds(123.0, 7.0), 0.0);
  EXPECT_TRUE(m.memory_feasible(1e9, 1.0));
}

TEST(Machine, CommSecondsSerializesPerDestination) {
  Machine m = Machine::workstation();
  m.link_gb_per_s = 2.0;
  EXPECT_TRUE(m.models_communication());
  // 0.5 GB replicated to each of 4 spanning ranks at 2 GB/s = 1 s.
  EXPECT_DOUBLE_EQ(m.comm_seconds(0.5, 4.0), 1.0);
  // Linear in both volume and span.
  EXPECT_DOUBLE_EQ(m.comm_seconds(1.0, 4.0), 2.0);
  EXPECT_DOUBLE_EQ(m.comm_seconds(0.5, 8.0), 2.0);
  // Zero traffic charges exactly 0.0 regardless of span.
  EXPECT_EQ(m.comm_seconds(0.0, 64.0), 0.0);
}

TEST(Machine, ZeroBandwidthDegenerate) {
  Machine m = Machine::workstation();
  m.link_gb_per_s = 0.0;
  EXPECT_TRUE(m.models_communication());
  // No traffic is still free; any traffic is infeasible (infinite time).
  EXPECT_EQ(m.comm_seconds(0.0, 4.0), 0.0);
  EXPECT_TRUE(std::isinf(m.comm_seconds(1e-9, 1.0)));
}

TEST(Machine, MemoryFeasibilityAndPaging) {
  Machine m = Machine::workstation();
  m.memory_gb_per_node = 2.0;
  EXPECT_TRUE(m.models_memory());
  // 8 GB over 4 nodes exactly fits 2 GB/node; no paging charge.
  EXPECT_TRUE(m.memory_feasible(8.0, 4.0));
  EXPECT_EQ(m.page_seconds(8.0, 4.0), 0.0);
  // Overcommit with page_s_per_gb == 0 is a hard rejection.
  EXPECT_FALSE(m.memory_feasible(8.0, 3.0));
  // A paging machine accepts and charges for the spilled GB instead:
  // 8/2 - 2 = 2 GB spilled per node over 2 nodes at 0.5 s/GB = 2 s.
  m.page_s_per_gb = 0.5;
  EXPECT_TRUE(m.memory_feasible(8.0, 2.0));
  EXPECT_DOUBLE_EQ(m.page_seconds(8.0, 2.0), 2.0);
}

}  // namespace
}  // namespace hslb::sim
