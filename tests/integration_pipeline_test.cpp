// Cross-module integration: the full HSLB workflow persisted through CSV
// files between steps (the authors' timing-files -> AMPL-scripts workflow,
// and exactly what the hslb CLI does), plus round-trip fuzzing of the CSV
// layer those hand-offs depend on.
#include <gtest/gtest.h>

#include <cmath>

#include "common/csv.hpp"
#include "common/rng.hpp"
#include "hslb/budget.hpp"
#include "hslb/gather.hpp"
#include "minlp/ampl.hpp"
#include "minlp/bnb.hpp"
#include "perf/fit.hpp"
#include "perf/modelio.hpp"
#include "sim/noise.hpp"

namespace hslb {
namespace {

TEST(Integration, GatherFitSolveThroughCsvFiles) {
  const std::string dir = ::testing::TempDir();
  const std::string bench_path = dir + "/hslb_it_bench.csv";
  const std::string models_path = dir + "/hslb_it_models.csv";

  // Step 1: Gather against a synthetic application, persist to CSV.
  const perf::Model heavy{2400.0, 0.0, 1.0, 6.0};
  const perf::Model light{300.0, 0.0, 1.0, 1.5};
  sim::NoiseModel noise(0.02, 77);
  const auto table = gather(
      {"heavy", "light"}, geometric_node_counts(1, 128, 5),
      [&](const std::string& task, long long n, std::uint64_t) {
        const auto& m = task == "heavy" ? heavy : light;
        return noise.perturb(m.eval(static_cast<double>(n)));
      });
  table.save(bench_path);

  // Step 2: a fresh process would load the CSV and fit.
  const auto loaded = perf::BenchTable::load(bench_path);
  ASSERT_EQ(loaded.tasks.size(), 2u);
  const auto fits = perf::fit_all(loaded);
  std::vector<perf::NamedModel> named;
  for (const auto& [task, fit] : fits) {
    EXPECT_GT(fit.r2, 0.999) << task;
    named.push_back({task, fit.model, 1, 128});
  }
  perf::save_models(models_path, named);

  // Step 3: another process loads the models and solves.
  const auto models = perf::load_models(models_path);
  std::vector<BudgetTask> tasks;
  for (const auto& m : models)
    tasks.push_back({m.task, m.model, m.min_nodes, m.max_nodes});
  const auto alloc = solve_min_max(tasks, 128);

  // The heavy task gets roughly its work share (2400 : 300 => ~8 : 1).
  const double ratio =
      static_cast<double>(alloc.find("heavy").nodes) /
      static_cast<double>(alloc.find("light").nodes);
  EXPECT_GT(ratio, 4.0);
  EXPECT_LT(ratio, 16.0);
  EXPECT_LE(alloc.total_nodes(), 128);

  // Step 3b: the same models through the general MINLP agree with the
  // greedy, and the instance exports as AMPL without losing constraints.
  const auto minlp_model = build_budget_minlp(tasks, 128, Objective::MinMax);
  const auto bnb = minlp::solve(minlp_model);
  ASSERT_EQ(bnb.status, minlp::BnbStatus::Optimal);
  EXPECT_NEAR(bnb.objective, alloc.predicted_total,
              1e-5 * (1.0 + bnb.objective));
  const auto ampl = minlp::to_ampl(minlp_model);
  EXPECT_NE(ampl.find("subject to budget:"), std::string::npos);
  EXPECT_NE(ampl.find("T_heavy"), std::string::npos);

  // Step 4: Execute — noise-free oracle check of the allocation quality:
  // within 5% of the continuous lower bound a/(n_h+n_l) split.
  const double makespan =
      std::max(heavy.eval(static_cast<double>(alloc.find("heavy").nodes)),
               light.eval(static_cast<double>(alloc.find("light").nodes)));
  EXPECT_LT(makespan, 1.25 * (2400.0 + 300.0) / 128.0 + 6.0 + 1.5);
}

class CsvFuzz : public ::testing::TestWithParam<int> {};

TEST_P(CsvFuzz, RandomDocumentsRoundTrip) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 48271 + 9);
  csv::Document doc;
  const int cols = static_cast<int>(rng.uniform_int(1, 6));
  const auto random_cell = [&rng] {
    std::string s;
    const int len = static_cast<int>(rng.uniform_int(0, 12));
    const std::string alphabet = "ab,\"\n\r xyz0189.-";
    for (int i = 0; i < len; ++i)
      s += alphabet[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<long long>(alphabet.size()) - 1))];
    return s;
  };
  for (int c = 0; c < cols; ++c)
    doc.header.push_back("h" + std::to_string(c) + random_cell());
  const int rows = static_cast<int>(rng.uniform_int(0, 8));
  for (int r = 0; r < rows; ++r) {
    std::vector<std::string> row;
    for (int c = 0; c < cols; ++c) row.push_back(random_cell());
    doc.rows.push_back(std::move(row));
  }
  // Quoted writer output must parse back to the identical document.
  const auto round = csv::parse(csv::write(doc));
  EXPECT_EQ(round.header, doc.header);
  EXPECT_EQ(round.rows, doc.rows);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CsvFuzz, ::testing::Range(0, 100));

}  // namespace
}  // namespace hslb
