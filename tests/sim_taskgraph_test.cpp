#include "sim/taskgraph.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace hslb::sim {
namespace {

TEST(NodeSet, OverlapDetection) {
  EXPECT_TRUE((NodeSet{0, 4}).overlaps(NodeSet{3, 2}));
  EXPECT_FALSE((NodeSet{0, 4}).overlaps(NodeSet{4, 2}));
  EXPECT_TRUE((NodeSet{2, 1}).overlaps(NodeSet{0, 8}));
  EXPECT_FALSE((NodeSet{0, 0}).overlaps(NodeSet{0, 8}));
}

TEST(TaskGraph, IndependentTasksRunConcurrently) {
  TaskGraph g(8);
  g.add_task("a", 5.0, {0, 4});
  g.add_task("b", 3.0, {4, 4});
  const auto s = g.run();
  EXPECT_DOUBLE_EQ(s.tasks[0].start, 0.0);
  EXPECT_DOUBLE_EQ(s.tasks[1].start, 0.0);
  EXPECT_DOUBLE_EQ(s.makespan, 5.0);
}

TEST(TaskGraph, SharedNodesSerialize) {
  TaskGraph g(4);
  g.add_task("a", 2.0, {0, 4});
  g.add_task("b", 3.0, {0, 2});  // shares nodes 0-1 with a
  const auto s = g.run();
  EXPECT_DOUBLE_EQ(s.tasks[1].start, 2.0);
  EXPECT_DOUBLE_EQ(s.makespan, 5.0);
}

TEST(TaskGraph, DependenciesHonored) {
  TaskGraph g(8);
  const auto a = g.add_task("a", 2.0, {0, 4});
  g.add_task("b", 1.0, {4, 4}, {a});  // different nodes but depends on a
  const auto s = g.run();
  EXPECT_DOUBLE_EQ(s.tasks[1].start, 2.0);
  EXPECT_DOUBLE_EQ(s.makespan, 3.0);
}

TEST(TaskGraph, Layout1Semantics) {
  // CESM layout (1): ice || lnd on atm's nodes, then atm; ocn concurrent.
  // nodes: atm block = [0, 8), ocn block = [8, 12).
  TaskGraph g(12);
  const auto ice = g.add_task("ice", 10.0, {0, 5});
  const auto lnd = g.add_task("lnd", 6.0, {5, 3});
  g.add_task("atm", 30.0, {0, 8}, {ice, lnd});
  g.add_task("ocn", 36.0, {8, 4});
  const auto s = g.run();
  // T = max(max(ice,lnd) + atm, ocn) = max(40, 36) = 40.
  EXPECT_DOUBLE_EQ(s.makespan, 40.0);
  EXPECT_DOUBLE_EQ(s.tasks[2].start, 10.0);
  EXPECT_DOUBLE_EQ(s.tasks[3].start, 0.0);
}

TEST(TaskGraph, MakespanIsMaxEnd) {
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    TaskGraph g(16);
    const int n = static_cast<int>(rng.uniform_int(1, 12));
    for (int t = 0; t < n; ++t) {
      const auto first = static_cast<std::size_t>(rng.uniform_int(0, 12));
      const auto count = static_cast<std::size_t>(rng.uniform_int(1, 4));
      std::vector<std::size_t> deps;
      if (t > 0 && rng.uniform() < 0.5)
        deps.push_back(static_cast<std::size_t>(rng.uniform_int(0, t - 1)));
      g.add_task("t" + std::to_string(t), rng.uniform(0.1, 5.0),
                 {first, count}, deps);
    }
    const auto s = g.run();
    double max_end = 0.0;
    for (const auto& st : s.tasks) {
      max_end = std::max(max_end, st.end);
      EXPECT_GE(st.start, 0.0);
    }
    EXPECT_DOUBLE_EQ(s.makespan, max_end);
    // No two tasks sharing nodes may overlap in time.
    for (std::size_t i = 0; i < g.num_tasks(); ++i) {
      for (std::size_t j = i + 1; j < g.num_tasks(); ++j) {
        if (!g.task(i).nodes.overlaps(g.task(j).nodes)) continue;
        const bool disjoint = s.tasks[i].end <= s.tasks[j].start + 1e-12 ||
                              s.tasks[j].end <= s.tasks[i].start + 1e-12;
        EXPECT_TRUE(disjoint) << "tasks " << i << "," << j << " overlap";
      }
    }
    // Dependencies: start >= dep end.
    for (std::size_t i = 0; i < g.num_tasks(); ++i)
      for (std::size_t d : g.task(i).deps)
        EXPECT_GE(s.tasks[i].start, s.tasks[d].end - 1e-12);
  }
}

TEST(TaskGraph, EfficiencyAndImbalance) {
  TaskGraph g(2);
  g.add_task("a", 4.0, {0, 1});
  g.add_task("b", 2.0, {1, 1});
  const auto s = g.run();
  EXPECT_DOUBLE_EQ(s.makespan, 4.0);
  EXPECT_DOUBLE_EQ(s.efficiency(), 6.0 / 8.0);
  EXPECT_DOUBLE_EQ(s.imbalance(), 4.0 / 3.0 - 1.0);
}

TEST(TaskGraph, RejectsOutOfRangeNodes) {
  TaskGraph g(4);
  EXPECT_THROW(g.add_task("x", 1.0, {2, 4}), ContractViolation);
  EXPECT_THROW(g.add_task("x", 1.0, {0, 0}), ContractViolation);
}

TEST(TaskGraph, RejectsForwardDeps) {
  TaskGraph g(4);
  EXPECT_THROW(g.add_task("x", 1.0, {0, 1}, {5}), ContractViolation);
}

TEST(TaskGraph, GanttRendersEveryTask) {
  TaskGraph g(4);
  g.add_task("alpha", 1.0, {0, 2});
  g.add_task("beta", 2.0, {2, 2});
  const auto s = g.run();
  const auto chart = g.gantt(s);
  EXPECT_NE(chart.find("alpha"), std::string::npos);
  EXPECT_NE(chart.find("beta"), std::string::npos);
  EXPECT_NE(chart.find('#'), std::string::npos);
}

TEST(TaskGraph, GanttHandlesZeroDurationTasks) {
  TaskGraph g(4);
  g.add_task("work", 2.0, {0, 2});
  g.add_task("marker", 0.0, {2, 2});       // instantaneous event
  g.add_task("tail", 0.0, {0, 4}, {0, 1});  // zero-duration at the makespan
  const auto s = g.run();
  EXPECT_DOUBLE_EQ(s.tasks[1].end, s.tasks[1].start);
  EXPECT_DOUBLE_EQ(s.tasks[2].start, s.makespan);
  const auto chart = g.gantt(s);
  EXPECT_NE(chart.find("marker"), std::string::npos);
  EXPECT_NE(chart.find("tail"), std::string::npos);
}

TEST(TaskGraph, GanttHandlesEmptySchedule) {
  TaskGraph g(4);
  const auto s = g.run();
  EXPECT_DOUBLE_EQ(s.makespan, 0.0);
  EXPECT_NO_THROW(g.gantt(s));
}

TEST(TaskGraph, GanttHandlesAllZeroDurations) {
  TaskGraph g(2);
  g.add_task("a", 0.0, {0, 1});
  g.add_task("b", 0.0, {1, 1});
  const auto s = g.run();
  EXPECT_DOUBLE_EQ(s.makespan, 0.0);
  const auto chart = g.gantt(s);
  EXPECT_NE(chart.find('a'), std::string::npos);
}

}  // namespace
}  // namespace hslb::sim
