#include "sim/noise.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/contracts.hpp"
#include "common/stats.hpp"
#include "sim/machine.hpp"

namespace hslb::sim {
namespace {

TEST(NoiseModel, ZeroCvIsExact) {
  NoiseModel n(0.0);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(n.perturb(3.5), 3.5);
}

TEST(NoiseModel, PositiveAndUnbiased) {
  NoiseModel n(0.05, 99);
  std::vector<double> xs;
  for (int i = 0; i < 30000; ++i) {
    const double v = n.perturb(10.0);
    EXPECT_GT(v, 0.0);
    xs.push_back(v);
  }
  EXPECT_NEAR(stats::mean(xs), 10.0, 0.05);
  EXPECT_NEAR(stats::stddev(xs) / 10.0, 0.05, 0.005);
}

TEST(NoiseModel, DeterministicPerSeed) {
  NoiseModel a(0.1, 7), b(0.1, 7);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.perturb(1.0), b.perturb(1.0));
}

TEST(NoiseModel, RejectsNonPositiveDuration) {
  NoiseModel n(0.1);
  EXPECT_THROW(n.perturb(0.0), ContractViolation);
  EXPECT_THROW(n.perturb(-1.0), ContractViolation);
}

TEST(Machine, IntrepidDimensions) {
  const auto m = Machine::intrepid();
  EXPECT_EQ(m.nodes, 40960u);
  EXPECT_EQ(m.cores_per_node, 4u);
  EXPECT_EQ(m.total_cores(), 163840u);
}

TEST(Machine, PartitionBounds) {
  const auto m = Machine::intrepid_partition(32768);
  EXPECT_EQ(m.nodes, 32768u);
  EXPECT_EQ(m.total_cores(), 131072u);  // the paper's 131,072 cores
  EXPECT_THROW(Machine::intrepid_partition(0), ContractViolation);
  EXPECT_THROW(Machine::intrepid_partition(50000), ContractViolation);
}

TEST(Machine, Workstation) {
  EXPECT_EQ(Machine::workstation().nodes, 16u);
  EXPECT_EQ(Machine::workstation(4).total_cores(), 4u);
}

}  // namespace
}  // namespace hslb::sim
