// Epoch controls of Runtime::run (EpochOptions / EpochState): the
// resumable substrate under the closed-loop rebalance controller. The
// anchor property is that epochs are a pure refactoring of the one-shot
// run — defaults are bit-identical, and a horizon-split run stitched back
// together reproduces the one-shot schedule exactly.
#include "sim/runtime.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "sim/trace.hpp"

namespace hslb::sim {
namespace {

Runtime diamond_runtime() {
  // a on [0,2), b on [2,2), c on [0,4) after both, d on [1,2) after c.
  Runtime rt(Machine::workstation(4));
  const auto a = rt.add_task("a", 2.0, {0, 2});
  const auto b = rt.add_task("b", 3.0, {2, 2});
  const auto c = rt.add_task("c", 1.0, {0, 4}, {a, b});
  rt.add_task("d", 2.0, {1, 2}, {c});
  return rt;
}

TEST(SimEpoch, DefaultOptionsMatchOneShot) {
  const Runtime rt = diamond_runtime();
  const RunResult one = rt.run();
  EpochState state;
  const RunResult ep = rt.run({}, EpochOptions{}, &state);

  EXPECT_EQ(one.trace.to_csv(), ep.trace.to_csv());
  EXPECT_EQ(one.makespan, ep.makespan);
  EXPECT_EQ(ep.deferred, 0u);
  EXPECT_FALSE(ep.failure_paused);
  ASSERT_EQ(state.ran.size(), rt.num_tasks());
  for (std::uint8_t r : state.ran) EXPECT_EQ(r, 1);
  // Every observation is a successful task's compute seconds.
  EXPECT_EQ(state.observed.size(), rt.num_tasks());
}

TEST(SimEpoch, HorizonDefersLateTasks) {
  const Runtime rt = diamond_runtime();
  EpochOptions epoch;
  epoch.horizon = 3.0;  // c starts at 3.0 -> c and d defer
  EpochState state;
  const RunResult r = rt.run({}, epoch, &state);

  EXPECT_EQ(r.deferred, 2u);
  // Deferral is not failure: nothing failed, so completed stays true and
  // the controller distinguishes "more epochs to run" via `deferred`.
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(state.ran[0], 1);
  EXPECT_EQ(state.ran[1], 1);
  EXPECT_EQ(state.ran[2], 0);
  EXPECT_EQ(state.ran[3], 0);
  EXPECT_TRUE(std::isinf(r.tasks[2].start));
  EXPECT_TRUE(std::isinf(r.tasks[3].start));
}

// The closed loop's correctness anchor: run to a horizon, carry the node
// clocks into a fresh epoch, and the union of the two schedules is the
// one-shot schedule, task for task and bit for bit.
TEST(SimEpoch, HorizonSplitReproducesOneShot) {
  const Runtime rt = diamond_runtime();
  const RunResult one = rt.run();

  EpochOptions first;
  first.horizon = 3.0;
  EpochState state;
  const RunResult r1 = rt.run({}, first, &state);

  // Second epoch: rebuild the remaining graph with completed deps dropped,
  // resuming from the carried node clocks.
  Runtime rest(Machine::workstation(4));
  const auto c = rest.add_task("c", 1.0, {0, 4});
  rest.add_task("d", 2.0, {1, 2}, {c});
  EpochOptions second;
  second.initial_node_free = state.node_free;
  const RunResult r2 = rest.run({}, second, nullptr);

  EXPECT_EQ(r2.tasks[0].start, one.tasks[2].start);
  EXPECT_EQ(r2.tasks[0].end, one.tasks[2].end);
  EXPECT_EQ(r2.tasks[1].start, one.tasks[3].start);
  EXPECT_EQ(r2.tasks[1].end, one.tasks[3].end);
  EXPECT_EQ(r2.makespan, one.makespan);

  // Stitched trace = epoch-1 completions + epoch-2 events.
  Trace merged = r1.trace;
  merged.append(r2.trace);
  EXPECT_EQ(merged.events.size(), one.trace.events.size());
  EXPECT_EQ(merged.makespan(), one.trace.makespan());
  EXPECT_EQ(merged.busy_node_seconds(), one.trace.busy_node_seconds());
}

TEST(SimEpoch, InitialNodeFreeShiftsSchedule) {
  const Runtime rt = diamond_runtime();
  const RunResult one = rt.run();
  EpochOptions epoch;
  epoch.initial_node_free.assign(4, 5.0);
  const RunResult r = rt.run({}, epoch, nullptr);
  for (std::size_t t = 0; t < rt.num_tasks(); ++t) {
    EXPECT_DOUBLE_EQ(r.tasks[t].start, one.tasks[t].start + 5.0);
    EXPECT_DOUBLE_EQ(r.tasks[t].end, one.tasks[t].end + 5.0);
  }
}

// stop_on_failure pauses the run at the first permanently infeasible task
// (deferring it and its successors) instead of cascading the failure.
TEST(SimEpoch, StopOnFailurePausesInsteadOfCascading) {
  const Runtime rt = diamond_runtime();
  Perturbation p;
  p.fail_node = 0;
  p.fail_time = 1.0;  // permanent: a (and later c) can never run

  const RunResult cascade = rt.run(p);
  EXPECT_FALSE(cascade.completed);
  EXPECT_FALSE(cascade.failure_paused);

  EpochOptions epoch;
  epoch.stop_on_failure = true;
  EpochState state;
  const RunResult r = rt.run(p, epoch, &state);
  EXPECT_FALSE(r.completed);
  EXPECT_TRUE(r.failure_paused);
  EXPECT_EQ(r.paused_task, 0u);  // a's node set lost node 0 forever
  EXPECT_GT(r.deferred, 0u);
  EXPECT_EQ(state.ran[0], 0);
  // b lives on nodes {2,3} and is unaffected by the pause ordering only if
  // it was dispatched before the pause; either way it never ran on node 0.
  EXPECT_TRUE(std::isinf(r.tasks[0].start));
}

// Satellite: a finite-downtime failure recovers, and the recovered node is
// reused — the aborted attempt, the idle gap, and the retry are all visible
// in the trace with exact times.
TEST(SimEpoch, FiniteDowntimeRecoveryReusesNode) {
  Runtime rt(Machine::workstation(1));
  rt.add_task("a", 2.0, {0, 1});
  Perturbation p;
  p.fail_node = 0;
  p.fail_time = 1.0;
  p.fail_downtime = 2.0;  // down on [1, 3), back at 3
  const RunResult r = rt.run(p);

  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.restarts, 1u);
  EXPECT_DOUBLE_EQ(r.makespan, 5.0);  // retry [3, 5)
  ASSERT_EQ(r.trace.events.size(), 2u);
  EXPECT_TRUE(r.trace.events[0].aborted);
  EXPECT_DOUBLE_EQ(r.trace.events[0].start, 0.0);
  EXPECT_DOUBLE_EQ(r.trace.events[0].end, 1.0);    // work lost at the fail
  EXPECT_FALSE(r.trace.events[1].aborted);
  EXPECT_DOUBLE_EQ(r.trace.events[1].start, 3.0);  // idle gap [1, 3) exact
  EXPECT_DOUBLE_EQ(r.trace.events[1].end, 5.0);
}

TEST(SimEpoch, MigrationSecondsPriceOnlyModelledLinks) {
  Machine m{"m", 4, 1};
  m.link_gb_per_s = 2.0;
  EXPECT_DOUBLE_EQ(m.migration_seconds(4.0), 2.0);
  EXPECT_DOUBLE_EQ(m.migration_seconds(0.0), 0.0);

  const Machine free_link{"free", 4, 1};  // infinite link: compute-only
  EXPECT_DOUBLE_EQ(free_link.migration_seconds(4.0), 0.0);
}

// Percent imbalance λ (arXiv:2104.01688): mean over *all* allocated nodes,
// so idle nodes count as imbalance; imbalance() averages busy nodes only.
TEST(SimEpoch, PercentImbalanceCountsIdleNodes) {
  Trace t;
  t.nodes = 4;
  t.events.push_back({"a", "p", 0, 1, 0.0, 3.0, false});
  t.events.push_back({"b", "p", 1, 1, 0.0, 1.0, false});
  // busy = {3, 1, 0, 0}: max 3, mean over all nodes 1, over busy nodes 2.
  EXPECT_DOUBLE_EQ(t.percent_imbalance(), 200.0);
  EXPECT_DOUBLE_EQ(t.imbalance(), 0.5);
  EXPECT_DOUBLE_EQ(Trace{}.percent_imbalance(), 0.0);
}

}  // namespace
}  // namespace hslb::sim
