#include "common/parallel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace hslb {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.size(), threads);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), ThreadPool::hardware_threads());
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, EmptyRangeIsANoop) {
  ThreadPool pool(4);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, MapPreservesIndexOrder) {
  ThreadPool pool(4);
  const auto out =
      pool.parallel_map(257, [](std::size_t i) { return 3 * i + 1; });
  ASSERT_EQ(out.size(), 257u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], 3 * i + 1);
}

TEST(ThreadPool, ResultsIdenticalAcrossThreadCounts) {
  // The determinism contract the pipeline relies on: per-index seeding makes
  // the output independent of the thread count and execution order.
  auto draw = [](std::size_t i) {
    Rng rng(derive_seed(99, i));
    return rng.uniform();
  };
  ThreadPool serial(1), wide(8);
  const auto a = serial.parallel_map(100, draw);
  const auto b = wide.parallel_map(100, draw);
  EXPECT_EQ(a, b);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(10, [&](std::size_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 45u);
  }
}

TEST(ThreadPool, PropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   if (i == 57) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool survives a throwing job.
  std::atomic<int> count{0};
  pool.parallel_for(10, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 10);
}

TEST(ParallelForHelper, MatchesSerialLoop) {
  std::vector<int> serial(64), parallel(64);
  for (std::size_t i = 0; i < serial.size(); ++i)
    serial[i] = static_cast<int>(i * i);
  parallel_for(4, parallel.size(),
               [&](std::size_t i) { parallel[i] = static_cast<int>(i * i); });
  EXPECT_EQ(serial, parallel);
}

TEST(DeriveSeed, StreamsAreDistinct) {
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < 100; ++s) seeds.push_back(derive_seed(42, s));
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
  // Same inputs, same seed; different base, different seed.
  EXPECT_EQ(derive_seed(42, 7), derive_seed(42, 7));
  EXPECT_NE(derive_seed(42, 7), derive_seed(43, 7));
}

}  // namespace
}  // namespace hslb
