#include "common/parallel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <thread>

#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace hslb {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.size(), threads);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), ThreadPool::hardware_threads());
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, EmptyRangeIsANoop) {
  ThreadPool pool(4);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, MapPreservesIndexOrder) {
  ThreadPool pool(4);
  const auto out =
      pool.parallel_map(257, [](std::size_t i) { return 3 * i + 1; });
  ASSERT_EQ(out.size(), 257u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], 3 * i + 1);
}

TEST(ThreadPool, ResultsIdenticalAcrossThreadCounts) {
  // The determinism contract the pipeline relies on: per-index seeding makes
  // the output independent of the thread count and execution order.
  auto draw = [](std::size_t i) {
    Rng rng(derive_seed(99, i));
    return rng.uniform();
  };
  ThreadPool serial(1), wide(8);
  const auto a = serial.parallel_map(100, draw);
  const auto b = wide.parallel_map(100, draw);
  EXPECT_EQ(a, b);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(10, [&](std::size_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 45u);
  }
}

TEST(ThreadPool, PropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   if (i == 57) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool survives a throwing job.
  std::atomic<int> count{0};
  pool.parallel_for(10, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, ConcurrentCallersSerializeWithoutInterference) {
  // Two external threads hammer one pool at once; every job must cover its
  // own index range exactly once (the allocation service batches pipeline
  // runs onto a shared pool this way).
  ThreadPool pool(4);
  constexpr int kRounds = 25;
  std::vector<std::atomic<int>> hits_a(97), hits_b(131);
  auto caller = [&](std::vector<std::atomic<int>>& hits) {
    for (int round = 0; round < kRounds; ++round) {
      pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
    }
  };
  std::thread ta(caller, std::ref(hits_a));
  std::thread tb(caller, std::ref(hits_b));
  ta.join();
  tb.join();
  for (const auto& h : hits_a) EXPECT_EQ(h.load(), kRounds);
  for (const auto& h : hits_b) EXPECT_EQ(h.load(), kRounds);
}

TEST(ThreadPool, ConcurrentCallersPropagateTheirOwnExceptions) {
  ThreadPool pool(4);
  std::atomic<int> ok_sum{0};
  auto thrower = [&] {
    EXPECT_THROW(
        pool.parallel_for(64,
                          [](std::size_t i) {
                            if (i == 13) throw std::runtime_error("boom");
                          }),
        std::runtime_error);
  };
  auto worker = [&] {
    for (int round = 0; round < 10; ++round)
      pool.parallel_for(32, [&](std::size_t) { ++ok_sum; });
  };
  std::thread ta(thrower), tb(worker);
  ta.join();
  tb.join();
  // The healthy caller's jobs were untouched by the neighbor's failure.
  EXPECT_EQ(ok_sum.load(), 320);
}

TEST(ThreadPool, ReentrantCallIsRejected) {
  // A body calling parallel_for on the pool running it would deadlock
  // behind its own job, so the pool rejects it loudly instead.
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(
                   4, [&](std::size_t) { pool.parallel_for(2, [](std::size_t) {}); }),
               ContractViolation);
  // ...including on the serial fast path, where it would silently recurse.
  ThreadPool serial(1);
  EXPECT_THROW(
      serial.parallel_for(
          1, [&](std::size_t) { serial.parallel_for(1, [](std::size_t) {}); }),
      ContractViolation);
  // Nesting across *different* pools stays legal.
  ThreadPool inner(2);
  std::atomic<int> count{0};
  pool.parallel_for(
      2, [&](std::size_t) { inner.parallel_for(3, [&](std::size_t) { ++count; }); });
  EXPECT_EQ(count.load(), 6);
}

TEST(ParallelForHelper, MatchesSerialLoop) {
  std::vector<int> serial(64), parallel(64);
  for (std::size_t i = 0; i < serial.size(); ++i)
    serial[i] = static_cast<int>(i * i);
  parallel_for(4, parallel.size(),
               [&](std::size_t i) { parallel[i] = static_cast<int>(i * i); });
  EXPECT_EQ(serial, parallel);
}

TEST(DeriveSeed, StreamsAreDistinct) {
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < 100; ++s) seeds.push_back(derive_seed(42, s));
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
  // Same inputs, same seed; different base, different seed.
  EXPECT_EQ(derive_seed(42, 7), derive_seed(42, 7));
  EXPECT_NE(derive_seed(42, 7), derive_seed(43, 7));
}

}  // namespace
}  // namespace hslb
