#include "minlp/model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/contracts.hpp"
#include "minlp/cuts.hpp"

namespace hslb::minlp {
namespace {

/// x0^2 - x1 <= 0 as a NonlinearConstraint over variables {0, 1}.
NonlinearConstraint parabola_con() {
  NonlinearConstraint c;
  c.name = "parabola";
  c.vars = {0, 1};
  c.value = [](std::span<const double> x) { return x[0] * x[0] - x[1]; };
  c.gradient = [](std::span<const double> x) {
    return std::vector<GradEntry>{{0, 2.0 * x[0]}, {1, -1.0}};
  };
  return c;
}

TEST(MinlpModel, VariableKinds) {
  Model m;
  const auto x = m.add_continuous(0.0, 1.0);
  const auto i = m.add_integer(0.0, 5.0);
  const auto b = m.add_binary();
  EXPECT_FALSE(m.is_integer(x));
  EXPECT_TRUE(m.is_integer(i));
  EXPECT_TRUE(m.is_integer(b));
  EXPECT_DOUBLE_EQ(m.upper(b), 1.0);
  EXPECT_EQ(m.num_vars(), 3u);
}

TEST(MinlpModel, IntegerBoundsSnapped) {
  Model m;
  const auto i = m.add_integer(0.3, 4.7);
  EXPECT_DOUBLE_EQ(m.lower(i), 1.0);
  EXPECT_DOUBLE_EQ(m.upper(i), 4.0);
}

TEST(MinlpModel, ObjectiveValue) {
  Model m;
  const auto x = m.add_continuous(0.0, 10.0);
  const auto y = m.add_continuous(0.0, 10.0);
  m.set_objective(x, 2.0);
  m.set_objective(y, -1.0);
  EXPECT_DOUBLE_EQ(m.objective_value(std::vector<double>{3.0, 4.0}), 2.0);
}

TEST(MinlpModel, NonlinearViolation) {
  Model m;
  m.add_continuous(-5.0, 5.0);
  m.add_continuous(-5.0, 5.0);
  m.add_nonlinear(parabola_con());
  EXPECT_DOUBLE_EQ(m.max_nonlinear_violation(std::vector<double>{2.0, 1.0}), 3.0);
  EXPECT_DOUBLE_EQ(m.max_nonlinear_violation(std::vector<double>{1.0, 2.0}), 0.0);
}

TEST(MinlpModel, FeasibilityChecksEverything) {
  Model m;
  const auto x = m.add_integer(0.0, 5.0);
  const auto y = m.add_continuous(0.0, 25.0);
  m.add_nonlinear(parabola_con());
  m.add_linear({{x, 1.0}, {y, 1.0}}, 0.0, 20.0);
  EXPECT_TRUE(m.is_feasible(std::vector<double>{2.0, 4.0}));
  EXPECT_FALSE(m.is_feasible(std::vector<double>{2.5, 7.0}));   // fractional
  EXPECT_FALSE(m.is_feasible(std::vector<double>{3.0, 4.0}));   // nonlinear
  EXPECT_FALSE(m.is_feasible(std::vector<double>{2.0, 19.0}));  // linear row
}

TEST(MinlpModel, Sos1Validation) {
  Model m;
  const auto a = m.add_binary();
  const auto b = m.add_binary();
  EXPECT_THROW(m.add_sos1(Sos1{"s", {a, b}, {2.0, 1.0}}), ContractViolation);
  m.add_sos1(Sos1{"s", {a, b}, {1.0, 2.0}});
  EXPECT_FALSE(m.is_feasible(std::vector<double>{1.0, 1.0}));
  EXPECT_TRUE(m.is_feasible(std::vector<double>{0.0, 1.0}));
}

TEST(MinlpModel, NonlinearRequiresCallbacks) {
  Model m;
  m.add_continuous(0.0, 1.0);
  NonlinearConstraint c;
  c.vars = {0};
  c.value = [](std::span<const double>) { return 0.0; };
  EXPECT_THROW(m.add_nonlinear(std::move(c)), ContractViolation);
}

TEST(OaCut, CutsOffViolatedPoint) {
  Model m;
  m.add_continuous(-5.0, 5.0);
  m.add_continuous(-5.0, 5.0);
  m.add_nonlinear(parabola_con());
  const std::vector<double> x{2.0, 1.0};  // f = 3 > 0
  const auto cut = make_oa_cut(m, 0, x);
  EXPECT_GT(cut.violation(x), 1e-9);  // the point itself is cut off
  // A feasible point remains feasible for the cut (global validity).
  const std::vector<double> ok{1.0, 3.0};
  EXPECT_LE(cut.violation(ok), 1e-9);
}

TEST(OaCut, TangentAtFeasiblePointSupports) {
  Model m;
  m.add_continuous(-5.0, 5.0);
  m.add_continuous(-5.0, 5.0);
  m.add_nonlinear(parabola_con());
  const std::vector<double> x{1.0, 1.0};  // on the boundary f = 0
  const auto cut = make_oa_cut(m, 0, x);
  EXPECT_NEAR(cut.violation(x), 0.0, 1e-12);
  // Convexity: every feasible point satisfies the tangent cut.
  for (double t = -2.0; t <= 2.0; t += 0.25) {
    const std::vector<double> p{t, t * t + 0.5};
    EXPECT_LE(cut.violation(p), 1e-9) << "at t=" << t;
  }
}

TEST(CutPool, SuppressesDuplicates) {
  Model m;
  m.add_continuous(-5.0, 5.0);
  m.add_continuous(-5.0, 5.0);
  m.add_nonlinear(parabola_con());
  CutPool pool;
  const std::vector<double> x{2.0, 1.0};
  EXPECT_TRUE(pool.add(make_oa_cut(m, 0, x)));
  EXPECT_FALSE(pool.add(make_oa_cut(m, 0, x)));
  EXPECT_EQ(pool.size(), 1u);
  const std::vector<double> x2{2.5, 1.0};
  EXPECT_TRUE(pool.add(make_oa_cut(m, 0, x2)));
  EXPECT_EQ(pool.size(), 2u);
}

TEST(CutPool, AddViolatedOnlyAddsViolated) {
  Model m;
  m.add_continuous(-5.0, 5.0);
  m.add_continuous(-5.0, 5.0);
  m.add_nonlinear(parabola_con());
  CutPool pool;
  EXPECT_EQ(pool.add_violated(m, std::vector<double>{1.0, 2.0}, 1e-9), 0u);
  EXPECT_EQ(pool.add_violated(m, std::vector<double>{2.0, 1.0}, 1e-9), 1u);
}

}  // namespace
}  // namespace hslb::minlp
