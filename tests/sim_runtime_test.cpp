#include "sim/runtime.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/contracts.hpp"
#include "sim/taskgraph.hpp"
#include "sim/trace.hpp"

namespace hslb::sim {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

Runtime diamond_runtime() {
  // a on [0,2), b on [2,2), c on [0,4) after both, d on [1,2) after c.
  Runtime rt(Machine::workstation(4));
  const auto a = rt.add_task("a", 2.0, {0, 2});
  const auto b = rt.add_task("b", 3.0, {2, 2});
  const auto c = rt.add_task("c", 1.0, {0, 4}, {a, b});
  rt.add_task("d", 2.0, {1, 2}, {c});
  return rt;
}

TEST(Runtime, UnperturbedMatchesTaskGraph) {
  TaskGraph g(4);
  const auto a = g.add_task("a", 2.0, {0, 2});
  const auto b = g.add_task("b", 3.0, {2, 2});
  const auto c = g.add_task("c", 1.0, {0, 4}, {a, b});
  g.add_task("d", 2.0, {1, 2}, {c});
  const Schedule s = g.run();

  const RunResult r = diamond_runtime().run();
  ASSERT_EQ(r.tasks.size(), s.tasks.size());
  for (std::size_t t = 0; t < r.tasks.size(); ++t) {
    EXPECT_DOUBLE_EQ(r.tasks[t].start, s.tasks[t].start);
    EXPECT_DOUBLE_EQ(r.tasks[t].end, s.tasks[t].end);
  }
  EXPECT_DOUBLE_EQ(r.makespan, s.makespan);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.restarts, 0u);
  EXPECT_EQ(r.trace.events.size(), 4u);
  EXPECT_DOUBLE_EQ(r.trace.makespan(), r.makespan);
}

/// Schedule invariants that must hold under any perturbation: tasks on
/// overlapping node sets never overlap in time, and no task starts before
/// its dependencies end.
void expect_valid_schedule(const Runtime& rt, const RunResult& r) {
  for (std::size_t t = 0; t < rt.num_tasks(); ++t) {
    if (std::isinf(r.tasks[t].start)) continue;
    for (std::size_t d : rt.task(t).deps) {
      ASSERT_FALSE(std::isinf(r.tasks[d].end));
      EXPECT_GE(r.tasks[t].start, r.tasks[d].end);
    }
    for (std::size_t u = 0; u < t; ++u) {
      if (std::isinf(r.tasks[u].start)) continue;
      if (!rt.task(t).nodes.overlaps(rt.task(u).nodes)) continue;
      const bool disjoint = r.tasks[t].start >= r.tasks[u].end ||
                            r.tasks[u].start >= r.tasks[t].end;
      EXPECT_TRUE(disjoint) << "tasks " << t << " and " << u
                            << " overlap on shared nodes";
    }
  }
}

TEST(Runtime, PerturbedScheduleKeepsInvariants) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    Perturbation p;
    p.noise_cv = 0.5;
    p.seed = seed;
    p.node_slowdown = Perturbation::stragglers(4, 0.3, seed);
    const Runtime rt = diamond_runtime();
    const RunResult r = rt.run(p);
    EXPECT_TRUE(r.completed);
    expect_valid_schedule(rt, r);
  }
}

TEST(Runtime, NoiseIsKeyedNotOrdered) {
  Perturbation p;
  p.noise_cv = 0.3;
  p.seed = 42;
  // Same (phase, task, attempt) => same factor regardless of call order.
  const double f1 = p.noise("scc0", "w1", 0);
  p.noise("dimer", "w1.w2", 0);
  p.noise("scc0", "w2", 3);
  const double f2 = p.noise("scc0", "w1", 0);
  EXPECT_DOUBLE_EQ(f1, f2);
  // Distinct keys draw distinct factors.
  EXPECT_NE(p.noise("scc0", "w1", 0), p.noise("scc0", "w1", 1));
  EXPECT_NE(p.noise("scc0", "w1", 0), p.noise("scc1", "w1", 0));
  // cv = 0 disables noise entirely.
  Perturbation off;
  EXPECT_DOUBLE_EQ(off.noise("p", "t", 0), 1.0);
}

TEST(Runtime, StragglerFactorsAtLeastOneAndDeterministic) {
  const auto f1 = Perturbation::stragglers(64, 0.2, 9);
  const auto f2 = Perturbation::stragglers(64, 0.2, 9);
  ASSERT_EQ(f1.size(), 64u);
  EXPECT_EQ(f1, f2);
  double mx = 1.0;
  for (double f : f1) {
    EXPECT_GE(f, 1.0);
    mx = std::max(mx, f);
  }
  EXPECT_GT(mx, 1.0);  // cv = 0.2 over 64 nodes surely produces a straggler
  // No stragglers at cv = 0.
  for (double f : Perturbation::stragglers(8, 0.0, 9)) EXPECT_DOUBLE_EQ(f, 1.0);
}

TEST(Runtime, StragglersOnlySlowDown) {
  const Runtime rt = diamond_runtime();
  const double base = rt.run().makespan;
  Perturbation p;
  p.node_slowdown = {2.0, 1.0, 1.0, 1.0};
  const RunResult r = rt.run(p);
  EXPECT_GE(r.makespan, base);
  // Task "a" spans node 0 and runs at the slowest node's speed.
  EXPECT_DOUBLE_EQ(r.tasks[0].end - r.tasks[0].start, 4.0);
  // Task "b" avoids node 0 entirely.
  EXPECT_DOUBLE_EQ(r.tasks[1].end - r.tasks[1].start, 3.0);
}

TEST(Runtime, FixedTasksExemptFromNoiseAndStragglers) {
  Runtime rt(Machine::workstation(2));
  rt.add_task("sync", 0.5, {0, 2}, {}, "phase", /*fixed=*/true);
  Perturbation p;
  p.noise_cv = 0.9;
  p.seed = 3;
  p.node_slowdown = {5.0, 5.0};
  const RunResult r = rt.run(p);
  EXPECT_DOUBLE_EQ(r.tasks[0].end, 0.5);
}

TEST(Runtime, TransientFailureRestartsAndCompletes) {
  Runtime rt(Machine::workstation(2));
  rt.add_task("t", 4.0, {0, 1});
  Perturbation p;
  p.fail_node = 0;
  p.fail_time = 1.0;
  p.fail_downtime = 2.0;  // node back at t = 3
  const RunResult r = rt.run(p);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.restarts, 1u);
  EXPECT_DOUBLE_EQ(r.tasks[0].start, 3.0);
  EXPECT_DOUBLE_EQ(r.tasks[0].end, 7.0);
  // The aborted attempt stays in the trace but not in the busy accounting.
  ASSERT_EQ(r.trace.events.size(), 2u);
  EXPECT_TRUE(r.trace.events[0].aborted);
  EXPECT_DOUBLE_EQ(r.trace.events[0].end, 1.0);
  EXPECT_DOUBLE_EQ(r.trace.busy_node_seconds(), 4.0);
}

TEST(Runtime, PermanentFailureWedgesStaticScheduleAndDependents) {
  Runtime rt(Machine::workstation(2));
  const auto a = rt.add_task("a", 2.0, {0, 1});
  const auto b = rt.add_task("b", 1.0, {1, 1});
  rt.add_task("c", 1.0, {0, 2}, {a, b});
  Perturbation p;
  p.fail_node = 0;
  p.fail_time = 1.0;  // permanent: default downtime is infinite
  const RunResult r = rt.run(p);
  EXPECT_FALSE(r.completed);
  EXPECT_TRUE(std::isinf(r.tasks[0].start));  // pinned to the dead node
  EXPECT_DOUBLE_EQ(r.tasks[1].end, 1.0);      // untouched node still runs
  EXPECT_TRUE(std::isinf(r.tasks[2].start));  // dependent can never start
}

TEST(Runtime, QueueDrainsLargestFirstByEarliestFreeGroup) {
  const Machine m = Machine::workstation(4);
  const std::vector<NodeSet> groups{{0, 2}, {2, 2}};
  std::vector<Runtime::QueueTask> queue;
  for (double d : {5.0, 3.0, 2.0, 1.0}) {
    queue.push_back({"t" + std::to_string(queue.size()),
                     [d](long long) { return d; }, "q"});
  }
  const QueueRunResult r = Runtime::run_queue(m, groups, queue);
  EXPECT_TRUE(r.completed);
  // Both groups free at 0: tie goes to group 0, so t0 -> g0, t1 -> g1;
  // g1 frees at 3 < 5, pulls t2 (ends 5); tie at 5 goes to group 0 -> t3.
  EXPECT_EQ(r.task_group, (std::vector<std::size_t>{0, 1, 1, 0}));
  EXPECT_DOUBLE_EQ(r.makespan, 6.0);
  EXPECT_DOUBLE_EQ(r.group_busy[0], 6.0);
  EXPECT_DOUBLE_EQ(r.group_busy[1], 5.0);
}

TEST(Runtime, QueuePhasesShiftWithStartTime) {
  const Machine m = Machine::workstation(4);
  const std::vector<NodeSet> groups{{0, 2}, {2, 2}};
  std::vector<Runtime::QueueTask> queue;
  for (double d : {5.0, 3.0, 2.0, 1.0}) {
    queue.push_back({"t" + std::to_string(queue.size()),
                     [d](long long) { return d; }, "q"});
  }
  const QueueRunResult a = Runtime::run_queue(m, groups, queue);
  const QueueRunResult b = Runtime::run_queue(m, groups, queue, {}, 10.0);
  EXPECT_DOUBLE_EQ(b.makespan - 10.0, a.makespan);
  for (std::size_t t = 0; t < queue.size(); ++t) {
    EXPECT_DOUBLE_EQ(b.tasks[t].start - 10.0, a.tasks[t].start);
    EXPECT_EQ(b.task_group[t], a.task_group[t]);
  }
}

TEST(Runtime, QueueRedispatchesAroundDeadGroup) {
  const Machine m = Machine::workstation(4);
  const std::vector<NodeSet> groups{{0, 2}, {2, 2}};
  std::vector<Runtime::QueueTask> queue;
  for (int t = 0; t < 4; ++t) {
    queue.push_back({"t" + std::to_string(t),
                     [](long long) { return 2.0; }, "q"});
  }
  Perturbation p;
  p.fail_node = 0;
  p.fail_time = 1.0;  // permanent: group 0 aborts t0 and retires
  const QueueRunResult r = Runtime::run_queue(m, groups, queue, p);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.restarts, 1u);
  for (std::size_t t = 0; t < queue.size(); ++t)
    EXPECT_EQ(r.task_group[t], 1u);  // everything lands on the live group
  EXPECT_DOUBLE_EQ(r.makespan, 8.0);
  // Aborted attempts don't count as useful busy time.
  EXPECT_DOUBLE_EQ(r.group_busy[0], 0.0);
  EXPECT_DOUBLE_EQ(r.group_busy[1], 8.0);
}

TEST(Runtime, QueueIncompleteWhenAllGroupsRetire) {
  const Machine m = Machine::workstation(2);
  const std::vector<NodeSet> groups{{0, 1}, {1, 1}};
  std::vector<Runtime::QueueTask> queue{
      {"t0", [](long long) { return 2.0; }, "q"}};
  Perturbation p;
  p.fail_node = 0;
  p.fail_time = 0.5;
  // Only group 0 contains the failed node, so the run still completes...
  EXPECT_TRUE(Runtime::run_queue(m, groups, queue, p).completed);
  // ...but with a single group covering the failed node it cannot.
  const std::vector<NodeSet> one{{0, 2}};
  const QueueRunResult r = Runtime::run_queue(m, one, queue, p);
  EXPECT_FALSE(r.completed);
  EXPECT_TRUE(std::isinf(r.tasks[0].start));
}

TEST(Runtime, TraceCsvRoundTripIsExact) {
  Perturbation p;
  p.noise_cv = 0.2;
  p.seed = 11;
  p.fail_node = 1;
  p.fail_time = 1.5;
  p.fail_downtime = 1.0;
  const Runtime rt = diamond_runtime();
  const RunResult r = rt.run(p);
  const Trace parsed = Trace::from_csv(r.trace.to_csv());
  EXPECT_EQ(parsed.machine, r.trace.machine);
  EXPECT_EQ(parsed.nodes, r.trace.nodes);
  EXPECT_EQ(parsed.cores_per_node, r.trace.cores_per_node);
  ASSERT_EQ(parsed.events.size(), r.trace.events.size());
  for (std::size_t e = 0; e < parsed.events.size(); ++e) {
    EXPECT_EQ(parsed.events[e].task, r.trace.events[e].task);
    EXPECT_EQ(parsed.events[e].aborted, r.trace.events[e].aborted);
    EXPECT_DOUBLE_EQ(parsed.events[e].start, r.trace.events[e].start);
    EXPECT_DOUBLE_EQ(parsed.events[e].end, r.trace.events[e].end);
  }
  EXPECT_DOUBLE_EQ(parsed.makespan(), r.trace.makespan());
  EXPECT_DOUBLE_EQ(parsed.busy_node_seconds(), r.trace.busy_node_seconds());
}

TEST(Runtime, AddTaskValidatesPlacementAndDeps) {
  Runtime rt(Machine::workstation(4));
  EXPECT_THROW(rt.add_task("t", 1.0, {0, 0}), ContractViolation);
  EXPECT_THROW(rt.add_task("t", 1.0, {3, 2}), ContractViolation);
  EXPECT_THROW(rt.add_task("t", -1.0, {0, 1}), ContractViolation);
  EXPECT_THROW(rt.add_task("t", 1.0, {0, 1}, {0}), ContractViolation);
  EXPECT_THROW(Runtime(Machine{}), ContractViolation);
  EXPECT_THROW(rt.add_task("t", 1.0, {0, 1}, {}, "", false, {-1.0, 0.0}),
               ContractViolation);
  EXPECT_THROW(rt.add_task("t", 1.0, {0, 1}, {}, "", false, {0.0, -1.0}),
               ContractViolation);
}

TEST(Runtime, KeyedNoiseMatchesStringNoise) {
  Perturbation p;
  p.noise_cv = 0.3;
  p.seed = 17;
  for (std::uint64_t attempt : {0u, 1u, 5u}) {
    EXPECT_DOUBLE_EQ(p.noise("scc3", "w7(x2)", attempt),
                     p.noise_keyed(p.noise_key("scc3", "w7(x2)"), attempt));
  }
}

TEST(Runtime, CommChargeExtendsTaskExactly) {
  Machine m = Machine::workstation(4);
  m.link_gb_per_s = 2.0;
  Runtime rt(m);
  // 0.5 GB to each of 2 spanning nodes at 2 GB/s = 0.5 s on top of 1 s.
  rt.add_task("halo", 1.0, {0, 2}, {}, "", false, {0.5, 0.0});
  rt.add_task("local", 1.0, {2, 2});  // no demand: exactly 1 s
  const RunResult r = rt.run();
  EXPECT_DOUBLE_EQ(r.tasks[0].end, 1.5);
  EXPECT_DOUBLE_EQ(r.tasks[1].end, 1.0);
  EXPECT_DOUBLE_EQ(r.comm_seconds, 0.5);
  EXPECT_EQ(r.page_seconds, 0.0);
  EXPECT_EQ(r.rejected, 0u);
}

TEST(Runtime, PagingChargeExtendsTaskExactly) {
  Machine m = Machine::workstation(4);
  m.memory_gb_per_node = 1.0;
  m.page_s_per_gb = 0.25;
  Runtime rt(m);
  // 4 GB over 2 nodes spills 1 GB/node; 2 GB at 0.25 s/GB = 0.5 s extra.
  rt.add_task("big", 1.0, {0, 2}, {}, "", false, {0.0, 4.0});
  const RunResult r = rt.run();
  EXPECT_DOUBLE_EQ(r.tasks[0].end, 1.5);
  EXPECT_DOUBLE_EQ(r.page_seconds, 0.5);
  EXPECT_TRUE(r.completed);
}

TEST(Runtime, MemoryOvercommitRejectsStaticPlacement) {
  Machine m = Machine::workstation(4);
  m.memory_gb_per_node = 1.0;  // page_s_per_gb = 0: overcommit is fatal
  Runtime rt(m);
  const auto big = rt.add_task("big", 1.0, {0, 2}, {}, "", false, {0.0, 4.0});
  rt.add_task("child", 1.0, {0, 2}, {big});
  rt.add_task("fits", 1.0, {2, 2}, {}, "", false, {0.0, 2.0});
  const RunResult r = rt.run();
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.rejected, 1u);
  // The infeasible task and its dependant never ran; the fitting one did.
  EXPECT_TRUE(std::isinf(r.tasks[0].start));
  EXPECT_TRUE(std::isinf(r.tasks[1].start));
  EXPECT_DOUBLE_EQ(r.tasks[2].end, 1.0);
}

TEST(Runtime, ZeroBandwidthRejectsCommunicatingTask) {
  Machine m = Machine::workstation(2);
  m.link_gb_per_s = 0.0;
  Runtime rt(m);
  rt.add_task("halo", 1.0, {0, 2}, {}, "", false, {0.5, 0.0});
  const RunResult r = rt.run();
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.rejected, 1u);
}

TEST(Runtime, QueueSkipsGroupsThatCannotFitTask) {
  Machine m = Machine::workstation(4);
  m.memory_gb_per_node = 1.0;
  // Group 0 has 1 node (1 GB), group 1 has 3 nodes (3 GB).
  const std::vector<NodeSet> groups = {{0, 1}, {1, 3}};
  std::vector<Runtime::QueueTask> queue;
  // Big task (2 GB) only fits group 1, though group 0 is free first (tie
  // broken by id): the unfit group is skipped, not retired.
  queue.push_back({"big", [](long long) { return 1.0; }, "", 0.0, 2.0});
  queue.push_back({"small", [](long long) { return 1.0; }, "", 0.0, 0.5});
  const auto r = Runtime::run_queue(m, groups, queue);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.rejected, 0u);
  EXPECT_EQ(r.task_group[0], 1u);
  EXPECT_EQ(r.task_group[1], 0u);  // skipped group still takes later work
}

TEST(Runtime, QueueRejectsTaskNoGroupCanRun) {
  Machine m = Machine::workstation(4);
  m.memory_gb_per_node = 1.0;
  const std::vector<NodeSet> groups = {{0, 2}, {2, 2}};
  std::vector<Runtime::QueueTask> queue;
  queue.push_back({"huge", [](long long) { return 1.0; }, "", 0.0, 100.0});
  queue.push_back({"ok", [](long long) { return 1.0; }, "", 0.0, 1.0});
  const auto r = Runtime::run_queue(m, groups, queue);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.rejected, 1u);
  EXPECT_TRUE(std::isinf(r.tasks[0].start));
  // The queue keeps draining past the rejected entry.
  EXPECT_FALSE(std::isinf(r.tasks[1].start));
}

}  // namespace
}  // namespace hslb::sim
