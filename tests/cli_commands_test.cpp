// Contradictory-flag rejection: the tool must fail loudly, before any
// pipeline work, when perturbation or machine flags make no sense together.
#include "cli/commands.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "common/cli.hpp"

namespace hslb::cli {
namespace {

// Mirrors the fmo registration in main.cpp.
Args fmo_args(std::vector<const char*> extra) {
  std::vector<const char*> argv = {"fmo", "--fragments", "4", "--nodes", "32"};
  argv.insert(argv.end(), extra.begin(), extra.end());
  return Args(static_cast<int>(argv.size()), argv.data(),
              {"peptide", "comm-bound", "minlp", "no-presolve",
               "compute-only-model", "adaptive"},
              {"fragments", "nodes", "objective", "threads", "solver-threads",
               "cut-age-limit", "refactor-interval", "refactor-fill-ratio",
               "trace", "straggler-cv", "fail-node", "fail-time",
               "fail-downtime", "link-gb", "mem-gb", "page-s-per-gb",
               "rebalance-threshold", "refit-window", "max-epochs"});
}

TEST(CliCommands, FailNodeWithoutFailTimeRejected) {
  EXPECT_THROW(cmd_fmo(fmo_args({"--fail-node", "3"})), std::invalid_argument);
}

TEST(CliCommands, FailTimeWithoutFailNodeRejected) {
  EXPECT_THROW(cmd_fmo(fmo_args({"--fail-time", "2.5"})),
               std::invalid_argument);
}

TEST(CliCommands, FailDowntimeWithoutFailNodeRejected) {
  EXPECT_THROW(cmd_fmo(fmo_args({"--fail-downtime", "1.0"})),
               std::invalid_argument);
}

TEST(CliCommands, NegativeStragglerCvRejected) {
  EXPECT_THROW(cmd_fmo(fmo_args({"--straggler-cv", "-0.1"})),
               std::invalid_argument);
}

TEST(CliCommands, PagingWithoutMemoryCapacityRejected) {
  EXPECT_THROW(cmd_fmo(fmo_args({"--page-s-per-gb", "0.5"})),
               std::invalid_argument);
}

TEST(CliCommands, CommBoundAndPeptideRejected) {
  EXPECT_THROW(cmd_fmo(fmo_args({"--comm-bound", "--peptide"})),
               std::invalid_argument);
}

TEST(CliCommands, RefactorIntervalBelowOneRejected) {
  EXPECT_THROW(cmd_fmo(fmo_args({"--refactor-interval", "0"})),
               std::invalid_argument);
}

TEST(CliCommands, RefactorFillRatioBelowOneRejected) {
  EXPECT_THROW(cmd_fmo(fmo_args({"--refactor-fill-ratio", "0.5"})),
               std::invalid_argument);
}

TEST(CliCommands, RefactorKnobsAccepted) {
  EXPECT_EQ(cmd_fmo(fmo_args({"--refactor-interval", "16",
                              "--refactor-fill-ratio", "1.5"})),
            0);
}

TEST(CliCommands, ConsistentFailFlagsAccepted) {
  // A complete fail-stop spec passes validation and runs the pipeline.
  EXPECT_EQ(cmd_fmo(fmo_args({"--fail-node", "3", "--fail-time", "2.5",
                              "--fail-downtime", "1.0"})),
            0);
}

TEST(CliCommands, RebalanceThresholdWithoutAdaptiveRejected) {
  EXPECT_THROW(cmd_fmo(fmo_args({"--rebalance-threshold", "0.2"})),
               std::invalid_argument);
}

TEST(CliCommands, RefitWindowWithoutAdaptiveRejected) {
  EXPECT_THROW(cmd_fmo(fmo_args({"--refit-window", "2"})),
               std::invalid_argument);
}

TEST(CliCommands, MaxEpochsWithoutAdaptiveRejected) {
  EXPECT_THROW(cmd_fmo(fmo_args({"--max-epochs", "5"})),
               std::invalid_argument);
}

TEST(CliCommands, AdaptiveFlagsAccepted) {
  // The full closed-loop spec passes validation and runs the pipeline.
  EXPECT_EQ(cmd_fmo(fmo_args({"--adaptive", "--rebalance-threshold", "0.2",
                              "--refit-window", "2", "--max-epochs", "8"})),
            0);
}

}  // namespace
}  // namespace hslb::cli
