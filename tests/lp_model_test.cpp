#include "lp/model.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"

namespace hslb::lp {
namespace {

TEST(LpModel, AddVariableReturnsIndices) {
  Model m;
  EXPECT_EQ(m.add_variable(0.0, 1.0, 2.0), 0u);
  EXPECT_EQ(m.add_variable(-kInf, kInf, 0.0), 1u);
  EXPECT_EQ(m.num_cols(), 2u);
}

TEST(LpModel, InvertedBoundsRejected) {
  Model m;
  EXPECT_THROW(m.add_variable(1.0, 0.0, 0.0), ContractViolation);
}

TEST(LpModel, ConstraintMergesDuplicates) {
  Model m;
  const auto x = m.add_variable(0.0, 10.0, 1.0);
  const auto r = m.add_constraint({{x, 1.0}, {x, 2.0}}, 0.0, 5.0);
  ASSERT_EQ(m.row(r).size(), 1u);
  EXPECT_DOUBLE_EQ(m.row(r)[0].second, 3.0);
}

TEST(LpModel, ConstraintDropsExplicitAndCancelledZeros) {
  Model m;
  const auto x = m.add_variable(0.0, 10.0, 1.0);
  const auto y = m.add_variable(0.0, 10.0, 1.0);
  // An explicit zero coefficient and a pair that cancels to zero must both
  // vanish from the stored row (and from the column view / nnz count).
  const auto r = m.add_constraint({{x, 0.0}, {y, 2.0}, {x, 1.0}, {x, -1.0}},
                                  0.0, 5.0);
  ASSERT_EQ(m.row(r).size(), 1u);
  EXPECT_EQ(m.row(r)[0].first, y);
  EXPECT_DOUBLE_EQ(m.row(r)[0].second, 2.0);
  EXPECT_TRUE(m.col(x).empty());
  EXPECT_EQ(m.nnz(), 1u);
}

TEST(LpModel, ColumnViewTracksAppendedRows) {
  Model m;
  const auto x = m.add_variable(0.0, 1.0, 1.0);
  const auto y = m.add_variable(0.0, 1.0, 1.0);
  const auto r0 = m.add_constraint({{x, 1.0}, {y, 2.0}}, 0.0, 3.0);
  const auto r1 = m.add_constraint({{y, -1.0}}, -kInf, 0.0);
  const auto r2 = m.add_constraint({{x, 4.0}}, 0.0, kInf);
  // Each column lists its rows in append order with the merged values —
  // the invariant the simplex CSC build relies on after OA-row appends.
  ASSERT_EQ(m.col(x).size(), 2u);
  EXPECT_EQ(m.col(x)[0].index, r0);
  EXPECT_DOUBLE_EQ(m.col(x)[0].value, 1.0);
  EXPECT_EQ(m.col(x)[1].index, r2);
  EXPECT_DOUBLE_EQ(m.col(x)[1].value, 4.0);
  ASSERT_EQ(m.col(y).size(), 2u);
  EXPECT_EQ(m.col(y)[0].index, r0);
  EXPECT_EQ(m.col(y)[1].index, r1);
  EXPECT_DOUBLE_EQ(m.col(y)[1].value, -1.0);
  EXPECT_EQ(m.nnz(), 4u);
}

TEST(LpModel, ConstraintRejectsUnknownColumn) {
  Model m;
  EXPECT_THROW(m.add_constraint({{5, 1.0}}, 0.0, 1.0), ContractViolation);
}

TEST(LpModel, RowActivity) {
  Model m;
  const auto x = m.add_variable(0.0, 10.0, 0.0);
  const auto y = m.add_variable(0.0, 10.0, 0.0);
  const auto r = m.add_constraint({{x, 2.0}, {y, -1.0}}, -kInf, 4.0);
  const std::vector<double> point{3.0, 1.0};
  EXPECT_DOUBLE_EQ(m.row_activity(r, point), 5.0);
}

TEST(LpModel, FeasibilityCheck) {
  Model m;
  const auto x = m.add_variable(0.0, 2.0, 0.0);
  m.add_constraint({{x, 1.0}}, 0.5, 1.5);
  EXPECT_TRUE(m.is_feasible(std::vector<double>{1.0}));
  EXPECT_FALSE(m.is_feasible(std::vector<double>{1.9}));   // row violated
  EXPECT_FALSE(m.is_feasible(std::vector<double>{-0.5}));  // bound violated
}

TEST(LpModel, BoundMutation) {
  Model m;
  const auto x = m.add_variable(0.0, 5.0, 1.0);
  m.set_col_lower(x, 2.0);
  m.set_col_upper(x, 3.0);
  EXPECT_DOUBLE_EQ(m.col_lower(x), 2.0);
  EXPECT_DOUBLE_EQ(m.col_upper(x), 3.0);
}

TEST(LpModel, EqualityHelper) {
  Model m;
  const auto x = m.add_variable(0.0, 5.0, 1.0);
  const auto r = m.add_equality({{x, 1.0}}, 2.5);
  EXPECT_DOUBLE_EQ(m.row_lower(r), 2.5);
  EXPECT_DOUBLE_EQ(m.row_upper(r), 2.5);
}

TEST(LpModel, NamesDefaulted) {
  Model m;
  const auto x = m.add_variable(0.0, 1.0, 0.0);
  EXPECT_EQ(m.col_name(x), "x0");
  const auto r = m.add_constraint({{x, 1.0}}, 0.0, 1.0);
  EXPECT_EQ(m.row_name(r), "r0");
}

}  // namespace
}  // namespace hslb::lp
