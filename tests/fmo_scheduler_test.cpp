#include "fmo/schedulers.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/contracts.hpp"
#include "fmo/driver.hpp"
#include "fmo/molecule.hpp"

namespace hslb::fmo {
namespace {

System small_system(std::size_t fragments = 16) {
  return water_cluster({.fragments = fragments, .merge_fraction = 0.4,
                        .scf_cutoff_angstrom = 4.5, .seed = 21});
}

Allocation even_allocation(const System& sys, long long per_fragment) {
  Allocation a;
  for (const auto& f : sys.fragments) {
    a.tasks.push_back({f.name, per_fragment, 0.0});
  }
  return a;
}

TEST(Dlb, PhaseStructureAccounting) {
  const auto sys = small_system();
  CostModel cost;
  RunOptions opt;
  opt.scc_iterations = 5;
  opt.noise_cv = 0.0;
  const auto res = run_dlb(sys, cost, GroupLayout::uniform(32, 8), opt);
  EXPECT_EQ(res.scc_iterations, 5);
  EXPECT_GT(res.scc_seconds, 0.0);
  EXPECT_GT(res.dimer_seconds, 0.0);
  EXPECT_NEAR(res.total_seconds, res.scc_seconds + res.dimer_seconds, 1e-12);
  EXPECT_EQ(res.group_busy.size(), 8u);
  EXPECT_EQ(res.group_nodes.size(), 8u);
}

TEST(Dlb, SyncOverheadAddsPerIteration) {
  const auto sys = small_system();
  CostModel cost;
  RunOptions a, b;
  a.scc_iterations = b.scc_iterations = 4;
  a.noise_cv = b.noise_cv = 0.0;
  a.sync_overhead = 0.0;
  b.sync_overhead = 1.0;
  const auto layout = GroupLayout::uniform(32, 8);
  const auto ra = run_dlb(sys, cost, layout, a);
  const auto rb = run_dlb(sys, cost, layout, b);
  EXPECT_NEAR(rb.scc_seconds - ra.scc_seconds, 4.0, 1e-9);
}

TEST(Dlb, DeterministicPerSeed) {
  const auto sys = small_system();
  CostModel cost;
  RunOptions opt;
  const auto layout = GroupLayout::uniform(32, 4);
  const auto a = run_dlb(sys, cost, layout, opt);
  const auto b = run_dlb(sys, cost, layout, opt);
  EXPECT_EQ(a.total_seconds, b.total_seconds);
}

TEST(Dlb, MoreNodesNotSlowerNoiseFree) {
  const auto sys = small_system();
  CostModel cost;
  RunOptions opt;
  opt.noise_cv = 0.0;
  const auto small = run_dlb(sys, cost, GroupLayout::uniform(16, 8), opt);
  const auto large = run_dlb(sys, cost, GroupLayout::uniform(64, 8), opt);
  EXPECT_LE(large.total_seconds, small.total_seconds * 1.001);
}

TEST(Hslb, WaveTimeIsSlowerstFragment) {
  const auto sys = small_system(4);
  CostModel cost;
  RunOptions opt;
  opt.scc_iterations = 1;
  opt.noise_cv = 0.0;
  opt.sync_overhead = 0.0;
  const auto alloc = even_allocation(sys, 2);
  const auto res = run_hslb(sys, cost, alloc, 8, opt);
  double slowest = 0.0;
  for (const auto& f : sys.fragments)
    slowest = std::max(slowest, cost.monomer(f).eval(2.0));
  EXPECT_NEAR(res.scc_seconds, slowest, 1e-9);
}

TEST(Hslb, GroupBusyTracksAllFragments) {
  const auto sys = small_system(8);
  CostModel cost;
  RunOptions opt;
  opt.noise_cv = 0.0;
  const auto res = run_hslb(sys, cost, even_allocation(sys, 3), 24, opt);
  EXPECT_EQ(res.group_busy.size(), 8u);
  for (double b : res.group_busy) EXPECT_GT(b, 0.0);
  for (long long n : res.group_nodes) EXPECT_EQ(n, 3);
}

TEST(Hslb, EfficiencyInUnitRange) {
  const auto sys = small_system();
  CostModel cost;
  RunOptions opt;
  const auto res = run_hslb(sys, cost, even_allocation(sys, 2), 32, opt);
  const double eff = res.efficiency(32);
  EXPECT_GT(eff, 0.0);
  EXPECT_LE(eff, 1.0 + 1e-9);
}

TEST(Hslb, RequiresAllFragmentsAllocated) {
  const auto sys = small_system(4);
  CostModel cost;
  Allocation partial;
  partial.tasks.push_back({sys.fragments[0].name, 2, 0.0});
  EXPECT_THROW(run_hslb(sys, cost, partial, 8, RunOptions{}), ContractViolation);
}

/// Noise factor per fragment recovered from the first-iteration monomer
/// events: duration / model(node count). Keyed draws make this depend only
/// on (seed, phase, task, attempt), never on who ran where or when.
std::map<std::string, double> scc0_noise_factors(const System& sys,
                                                 const CostModel& cost,
                                                 const ExecutionResult& res) {
  std::map<std::string, perf::Model> models;
  for (const auto& f : sys.fragments) models[f.name] = cost.monomer(f);
  std::map<std::string, double> out;
  for (const auto& e : res.trace.events) {
    if (e.phase != "scc0" || e.aborted) continue;
    const auto it = models.find(e.task);
    if (it == models.end()) continue;  // synchronization overhead
    out[e.task] = e.seconds() / it->second.eval(static_cast<double>(e.count));
  }
  return out;
}

TEST(Schedulers, NoiseKeyedByTaskNotScheduleOrder) {
  const auto sys = small_system(12);
  CostModel cost;
  RunOptions opt;
  opt.scc_iterations = 1;
  opt.noise_cv = 0.3;
  // Three runs with completely different schedules: two DLB group shapes
  // (different pull order and node counts) and the HSLB wave. Every run
  // must draw the identical noise factor for each fragment.
  const auto a =
      scc0_noise_factors(sys, cost, run_dlb(sys, cost, GroupLayout::uniform(32, 8), opt));
  const auto b =
      scc0_noise_factors(sys, cost, run_dlb(sys, cost, GroupLayout::uniform(48, 4), opt));
  const auto h = scc0_noise_factors(
      sys, cost, run_hslb(sys, cost, even_allocation(sys, 2), 24, opt));
  ASSERT_EQ(a.size(), sys.num_fragments());
  ASSERT_EQ(b.size(), sys.num_fragments());
  ASSERT_EQ(h.size(), sys.num_fragments());
  for (const auto& [name, factor] : a) {
    EXPECT_GT(factor, 0.0);
    EXPECT_NEAR(b.at(name), factor, 1e-9);
    EXPECT_NEAR(h.at(name), factor, 1e-9);
  }
}

TEST(Schedulers, TraceMatchesTotalsNoiseFree) {
  const auto sys = small_system(8);
  CostModel cost;
  RunOptions opt;
  opt.noise_cv = 0.0;
  const auto hslb = run_hslb(sys, cost, even_allocation(sys, 3), 24, opt);
  EXPECT_NEAR(hslb.trace.makespan(), hslb.total_seconds, 1e-9);
  EXPECT_EQ(hslb.trace.machine, "intrepid");
  EXPECT_EQ(hslb.trace.nodes, 24u);
  EXPECT_FALSE(hslb.trace.events.empty());
  const auto dlb = run_dlb(sys, cost, GroupLayout::uniform(24, 4), opt);
  EXPECT_NEAR(dlb.trace.makespan(), dlb.total_seconds, 1e-9);
  EXPECT_EQ(dlb.trace.nodes, 24u);
  EXPECT_TRUE(hslb.completed);
  EXPECT_TRUE(dlb.completed);
  EXPECT_EQ(hslb.restarts, 0u);
  EXPECT_EQ(dlb.restarts, 0u);
}

TEST(Schedulers, ExplicitMachineIsHonored) {
  const auto sys = small_system(8);
  CostModel cost;
  RunOptions opt;
  opt.noise_cv = 0.0;
  opt.machine = sim::Machine{"big", 64, 1};
  const auto res = run_dlb(sys, cost, GroupLayout::uniform(32, 4), opt);
  EXPECT_EQ(res.trace.machine, "big");
  EXPECT_EQ(res.trace.nodes, 64u);
  opt.machine = sim::Machine{"tiny", 16, 1};  // smaller than the layout
  EXPECT_THROW(run_dlb(sys, cost, GroupLayout::uniform(32, 4), opt),
               ContractViolation);
}

TEST(Schedulers, StragglersOnlySlowDown) {
  const auto sys = small_system(8);
  CostModel cost;
  RunOptions opt;
  opt.noise_cv = 0.0;
  const auto hslb0 = run_hslb(sys, cost, even_allocation(sys, 3), 24, opt);
  const auto dlb0 = run_dlb(sys, cost, GroupLayout::uniform(24, 4), opt);
  opt.straggler_cv = 0.3;
  const auto hslb = run_hslb(sys, cost, even_allocation(sys, 3), 24, opt);
  const auto dlb = run_dlb(sys, cost, GroupLayout::uniform(24, 4), opt);
  EXPECT_GE(hslb.total_seconds, hslb0.total_seconds - 1e-9);
  EXPECT_GE(dlb.total_seconds, dlb0.total_seconds - 1e-9);
  EXPECT_TRUE(hslb.completed);
  EXPECT_TRUE(dlb.completed);
  // The energy must not depend on execution-time perturbations.
  EXPECT_NEAR(hslb.energy.total(), hslb0.energy.total(), 1e-9);
}

TEST(Schedulers, TransientFailureRestartsBothSchedulers) {
  const auto sys = small_system(8);
  CostModel cost;
  RunOptions opt;
  opt.noise_cv = 0.0;
  opt.fail_node = 0;
  opt.fail_time = 1e-4;  // interrupts whatever starts at t = 0 on node 0
  opt.fail_downtime = 5.0;
  const auto hslb = run_hslb(sys, cost, even_allocation(sys, 3), 24, opt);
  const auto dlb = run_dlb(sys, cost, GroupLayout::uniform(24, 4), opt);
  EXPECT_TRUE(hslb.completed);
  EXPECT_TRUE(dlb.completed);
  EXPECT_GE(hslb.restarts, 1u);
  EXPECT_GE(dlb.restarts, 1u);
}

TEST(Schedulers, PermanentFailureWedgesStaticButNotDynamic) {
  const auto sys = small_system(8);
  CostModel cost;
  RunOptions opt;
  opt.noise_cv = 0.0;
  opt.fail_node = 0;
  opt.fail_time = 1e-4;  // default downtime: infinite (permanent)
  const auto hslb = run_hslb(sys, cost, even_allocation(sys, 3), 24, opt);
  const auto dlb = run_dlb(sys, cost, GroupLayout::uniform(24, 4), opt);
  EXPECT_FALSE(hslb.completed);
  EXPECT_TRUE(dlb.completed);
}

TEST(HslbVsDlb, HslbWinsOnDiverseFragments) {
  // The headline qualitative claim (FMO-1): with few large tasks of
  // diverse size and nodes >> fragments, HSLB beats equal-group DLB.
  const auto sys = water_cluster({.fragments = 24, .merge_fraction = 0.5,
                                  .scf_cutoff_angstrom = 4.5, .seed = 30});
  CostModel cost;
  const long long nodes = 24 * 16;  // 16x more nodes than fragments
  PipelineOptions opt;
  opt.run.noise_cv = 0.01;
  const auto res = run_pipeline(sys, cost, nodes, opt);
  EXPECT_LT(res.hslb.scc_seconds, res.dlb.scc_seconds);
  EXPECT_LT(res.hslb.total_seconds, res.dlb.total_seconds * 1.05);
}

TEST(HslbVsDlb, UniformFragmentsRoughlyTie) {
  // With identical fragments, equal groups are already optimal; HSLB should
  // not be meaningfully worse.
  const auto sys = water_cluster({.fragments = 16, .merge_fraction = 0.0,
                                  .scf_cutoff_angstrom = 4.5, .seed = 31});
  CostModel cost;
  PipelineOptions opt;
  opt.run.noise_cv = 0.005;
  const auto res = run_pipeline(sys, cost, 16 * 8, opt);
  EXPECT_LT(res.hslb.scc_seconds, res.dlb.scc_seconds * 1.1);
}

}  // namespace
}  // namespace hslb::fmo
