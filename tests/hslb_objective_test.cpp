// Dedicated coverage for the decision-making objectives of §III-D:
// objective naming/dispatch and the FMO-3 ordering invariant (min-max
// achieves the best makespan, max-min close behind, min-sum much worse)
// on a small fixed instance.
#include "hslb/objective.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "hslb/budget.hpp"

namespace hslb {
namespace {

// Four diverse tasks (a = scalable seconds spread over ~an order of
// magnitude), a 64-node budget: the shape §I calls "a few large tasks of
// diverse size".
std::vector<BudgetTask> fixed_instance() {
  return {
      {"t0", perf::Model{2400.0, 0.0, 1.0, 4.0}, 1, 64},
      {"t1", perf::Model{1200.0, 0.0, 1.0, 2.0}, 1, 64},
      {"t2", perf::Model{600.0, 0.0, 1.0, 1.0}, 1, 64},
      {"t3", perf::Model{150.0, 0.0, 1.0, 0.5}, 1, 64},
  };
}

double makespan(const std::vector<BudgetTask>& tasks, const Allocation& alloc) {
  double worst = 0.0;
  for (const auto& t : tasks) {
    const auto n = static_cast<double>(alloc.find(t.name).nodes);
    worst = std::max(worst, t.model.eval(n));
  }
  return worst;
}

TEST(Objective, ToStringNamesAllThree) {
  EXPECT_EQ(to_string(Objective::MinMax), "min-max");
  EXPECT_EQ(to_string(Objective::MaxMin), "max-min");
  EXPECT_EQ(to_string(Objective::MinSum), "min-sum");
}

TEST(Objective, SolveBudgetDispatchesOnObjective) {
  const auto tasks = fixed_instance();
  const auto min_max = solve_budget(tasks, 64, Objective::MinMax);
  const auto max_min = solve_budget(tasks, 64, Objective::MaxMin);
  const auto min_sum = solve_budget(tasks, 64, Objective::MinSum);

  // Dispatch matches the dedicated solvers.
  for (const auto& t : tasks) {
    EXPECT_EQ(min_max.find(t.name).nodes,
              solve_min_max(tasks, 64).find(t.name).nodes);
    EXPECT_EQ(max_min.find(t.name).nodes,
              solve_max_min(tasks, 64).find(t.name).nodes);
    EXPECT_EQ(min_sum.find(t.name).nodes,
              solve_min_sum(tasks, 64).find(t.name).nodes);
  }

  // Every objective respects the budget and the per-task floor.
  for (const auto* alloc : {&min_max, &max_min, &min_sum}) {
    EXPECT_LE(alloc->total_nodes(), 64);
    for (const auto& t : alloc->tasks) EXPECT_GE(t.nodes, 1);
  }
}

TEST(Objective, Fmo3OrderingInvariantOnFixedInstance) {
  // FMO-3 (§III-D): judged by the concurrent-wave makespan the FMO layout
  // actually runs, min-max <= max-min << min-sum. Diverse instances are
  // ordered the same way but min-sum's starvation is mild (a few tasks of
  // comparable size: ~1.3x); both get asserted.
  const auto diverse = fixed_instance();
  const double d_mm =
      makespan(diverse, solve_budget(diverse, 64, Objective::MinMax));
  const double d_xm =
      makespan(diverse, solve_budget(diverse, 64, Objective::MaxMin));
  const double d_ms =
      makespan(diverse, solve_budget(diverse, 64, Objective::MinSum));
  EXPECT_LE(d_mm, d_xm * (1.0 + 1e-12));  // min-max is makespan-optimal
  EXPECT_LE(d_mm, d_ms * (1.0 + 1e-12));
  EXPECT_LT(d_mm, 0.95 * d_ms);

  // One dominant fragment plus a tail of small ones (the FMO shape that
  // motivated min-max): min-sum allocates ~sqrt(a) and starves the big
  // task, leaving the makespan > 2x the min-max optimum.
  std::vector<BudgetTask> skewed{{"big", perf::Model{2400.0, 0.0, 1.0, 1.0},
                                  1, 64}};
  for (int i = 0; i < 11; ++i)
    skewed.push_back({"small" + std::to_string(i),
                      perf::Model{80.0, 0.0, 1.0, 1.0}, 1, 64});
  const double s_mm =
      makespan(skewed, solve_budget(skewed, 64, Objective::MinMax));
  const double s_xm =
      makespan(skewed, solve_budget(skewed, 64, Objective::MaxMin));
  const double s_ms =
      makespan(skewed, solve_budget(skewed, 64, Objective::MinSum));
  EXPECT_LE(s_mm, s_xm * (1.0 + 1e-12));
  EXPECT_LT(s_mm, 0.5 * s_ms);  // "much worse"
}

TEST(Objective, EvaluateObjectiveMatchesDefinition) {
  const auto tasks = fixed_instance();
  const std::vector<long long> nodes{32, 16, 12, 4};
  double worst = 0.0, best = 1e300, sum = 0.0;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const double t = tasks[i].model.eval(static_cast<double>(nodes[i]));
    worst = std::max(worst, t);
    best = std::min(best, t);
    sum += t;
  }
  EXPECT_DOUBLE_EQ(evaluate_objective(tasks, nodes, Objective::MinMax), worst);
  EXPECT_DOUBLE_EQ(evaluate_objective(tasks, nodes, Objective::MaxMin), best);
  EXPECT_DOUBLE_EQ(evaluate_objective(tasks, nodes, Objective::MinSum), sum);
}

}  // namespace
}  // namespace hslb
