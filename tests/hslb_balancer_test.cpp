// The pluggable Balancer seam: fixed catalogue, determinism, placement
// quality ordering on heavy-tailed loads, and the diffusion balancer's
// convergence/conservation properties on ring and torus graphs
// (arXiv:1308.0148: local moves of indivisible loads between neighbours).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "common/rng.hpp"
#include "hslb/balancer.hpp"

namespace hslb {
namespace {

/// Heavy-tailed item loads: a few dominant items over a noisy background.
std::vector<double> heavy_tailed(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> loads(n);
  for (auto& l : loads) {
    l = 0.1 + rng.uniform();
    if (rng.uniform() < 0.15) l *= 20.0;
  }
  return loads;
}

double total(const std::vector<double>& xs) {
  return std::accumulate(xs.begin(), xs.end(), 0.0);
}

/// owner[] is a valid assignment and group_load matches it exactly.
void check_consistent(const BalanceResult& r, const std::vector<double>& loads,
                      const NodeGraph& graph) {
  ASSERT_EQ(r.owner.size(), loads.size());
  std::vector<double> recomputed(static_cast<std::size_t>(graph.groups), 0.0);
  for (std::size_t i = 0; i < loads.size(); ++i) {
    ASSERT_GE(r.owner[i], 0);
    ASSERT_LT(r.owner[i], graph.groups);
    recomputed[static_cast<std::size_t>(r.owner[i])] += loads[i];
  }
  ASSERT_EQ(r.group_load.size(), recomputed.size());
  for (std::size_t g = 0; g < recomputed.size(); ++g)
    EXPECT_NEAR(r.group_load[g], recomputed[g], 1e-9);
  EXPECT_NEAR(total(r.group_load), total(loads), 1e-9);
}

TEST(Balancer, CatalogueIsFixed) {
  const auto all = make_balancers();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0]->name(), "hslb-static");
  EXPECT_EQ(all[1]->name(), "dlb");
  EXPECT_EQ(all[2]->name(), "greedy");
  EXPECT_EQ(all[3]->name(), "diffusion");
  for (const auto& b : all) EXPECT_FALSE(b->description().empty());
}

TEST(Balancer, MakeByNameAndUnknownThrows) {
  EXPECT_EQ(make_balancer("diffusion")->name(), "diffusion");
  try {
    make_balancer("simulated-annealing");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    // The error lists the known names.
    EXPECT_NE(std::string(e.what()).find("diffusion"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("hslb-static"), std::string::npos);
  }
}

TEST(Balancer, AllBalancersProduceConsistentPlacements) {
  const auto loads = heavy_tailed(40, 11);
  const auto graph = NodeGraph::complete(6);
  for (const auto& b : make_balancers()) {
    const auto r = b->balance(loads, graph);
    check_consistent(r, loads, graph);
    EXPECT_GT(r.makespan(), 0.0) << b->name();
    // Shared metrics derive from the same group loads.
    EXPECT_DOUBLE_EQ(r.metrics().makespan, r.makespan()) << b->name();
  }
}

TEST(Balancer, Deterministic) {
  const auto loads = heavy_tailed(64, 7);
  const auto graph = NodeGraph::complete(8);
  for (const auto& b : make_balancers()) {
    const auto r1 = b->balance(loads, graph);
    const auto r2 = b->balance(loads, graph);
    EXPECT_EQ(r1.owner, r2.owner) << b->name();
  }
}

TEST(Balancer, QualityOrderingOnHeavyTails) {
  // hslb-static (LPT + refinement) <= dlb (LPT) <= greedy (arrival order)
  // on makespan: each is a strict superset of the other's effort.
  const auto graph = NodeGraph::complete(8);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto loads = heavy_tailed(60, seed);
    const double hslb = make_balancer("hslb-static")->balance(loads, graph).makespan();
    const double dlb = make_balancer("dlb")->balance(loads, graph).makespan();
    const double greedy = make_balancer("greedy")->balance(loads, graph).makespan();
    EXPECT_LE(hslb, dlb + 1e-9) << "seed " << seed;
    EXPECT_LE(dlb, greedy + 1e-9) << "seed " << seed;
  }
}

TEST(Balancer, DiffusionImprovesContiguousInitOnRing) {
  const auto loads = heavy_tailed(48, 3);
  const auto graph = NodeGraph::ring(6);
  const auto r = make_balancer("diffusion")->balance(loads, graph);
  check_consistent(r, loads, graph);
  EXPECT_GT(r.moves, 0);
  EXPECT_GT(r.rounds, 0);

  // The initial contiguous placement (item i -> group i*G/n) must not be
  // better: diffusion only accepts strictly improving moves.
  std::vector<double> contiguous(6, 0.0);
  for (std::size_t i = 0; i < loads.size(); ++i)
    contiguous[i * 6 / loads.size()] += loads[i];
  const double init_makespan =
      *std::max_element(contiguous.begin(), contiguous.end());
  EXPECT_LE(r.makespan(), init_makespan + 1e-9);
}

TEST(Balancer, DiffusionTerminatesOnTorus) {
  const auto loads = heavy_tailed(100, 9);
  const auto graph = NodeGraph::torus2d(3, 4);
  const auto r = make_balancer("diffusion")->balance(loads, graph);
  check_consistent(r, loads, graph);
  // The sum-of-squares potential strictly decreases per accepted move, so
  // the sweep loop converges well below the round cap.
  EXPECT_LT(r.rounds, 200);
}

TEST(NodeGraph, Factories) {
  const auto complete = NodeGraph::complete(4);
  ASSERT_EQ(complete.neighbors.size(), 4u);
  EXPECT_EQ(complete.neighbors[0].size(), 3u);

  const auto ring = NodeGraph::ring(5);
  ASSERT_EQ(ring.neighbors.size(), 5u);
  EXPECT_EQ(ring.neighbors[0].size(), 2u);
  EXPECT_EQ(ring.neighbors[4].size(), 2u);

  const auto torus = NodeGraph::torus2d(2, 3);
  ASSERT_EQ(torus.groups, 6);
  for (const auto& ns : torus.neighbors) {
    for (long long n : ns) {
      EXPECT_GE(n, 0);
      EXPECT_LT(n, 6);
    }
    // No self-links after wraparound dedup.
    for (std::size_t a = 0; a < ns.size(); ++a)
      for (std::size_t b = a + 1; b < ns.size(); ++b)
        EXPECT_NE(ns[a], ns[b]);
  }
}

}  // namespace
}  // namespace hslb
