// End-to-end pipeline coverage for the FMM tree substrate: registry-built
// runs through all four HSLB steps, thread-count invariance, the PR 8
// epoch path (untriggered adaptive bit-identity, straggler and fail-stop
// recovery), and the HSLB-vs-DLB baseline bound.
#include <gtest/gtest.h>

#include <stdexcept>

#include "fmm/workload.hpp"
#include "hslb/pipeline.hpp"
#include "hslb/registry.hpp"
#include "substrates/registry_builtins.hpp"

namespace hslb {
namespace {

ScenarioSpec base_spec(const std::string& variant = "adaptive") {
  substrates::register_builtin_substrates();
  ScenarioSpec spec;
  spec.substrate = "fmm";
  spec.variant = variant;
  spec.tasks = 6;
  spec.nodes = 30;
  return spec;
}

PipelineRun run_spec(const ScenarioSpec& spec, std::size_t threads = 1) {
  const auto app = SubstrateRegistry::instance().make(spec);
  PipelineOptions opt;
  opt.threads = threads;
  opt.rebalance = spec.rebalance;
  return Pipeline(opt).run(*app);
}

TEST(FmmPipeline, FullPipelineEndToEnd) {
  const auto spec = base_spec();
  const auto run = run_spec(spec);

  EXPECT_EQ(run.report.application, "wave/fmm-adaptive");
  EXPECT_TRUE(run.report.exec_completed);
  EXPECT_GT(run.report.actual_total, 0.0);
  EXPECT_GT(run.report.predicted_total, 0.0);
  ASSERT_EQ(run.report.fits.size(), 6u);
  for (const auto& f : run.report.fits) EXPECT_GT(f.r2, 0.9);
  EXPECT_FALSE(run.trace.events.empty());

  // Every task got at least one node and the allocation fits the budget.
  long long used = 0;
  ASSERT_EQ(run.solution.allocation.tasks.size(), 6u);
  for (const auto& t : run.solution.allocation.tasks) {
    EXPECT_GE(t.nodes, 1);
    used += t.nodes;
  }
  EXPECT_LE(used, spec.nodes);

  // The shared optimal-LB metrics are populated and mirrored into the
  // legacy scalar fields.
  EXPECT_GT(run.report.exec.makespan, 0.0);
  EXPECT_EQ(run.report.exec.makespan, run.report.exec_makespan);
  EXPECT_EQ(run.report.exec.percent_imbalance,
            run.report.exec_percent_imbalance);
  EXPECT_GT(run.report.exec.efficiency, 0.0);
  EXPECT_LE(run.report.exec.efficiency, 1.0);
}

TEST(FmmPipeline, UniformVariantRunsToo) {
  const auto run = run_spec(base_spec("uniform"));
  EXPECT_TRUE(run.report.exec_completed);
  EXPECT_EQ(run.report.application, "wave/fmm-uniform");
}

TEST(FmmPipeline, ThreadCountInvariance) {
  const auto spec = base_spec();
  const auto solo = run_spec(spec, 1);
  const auto pooled = run_spec(spec, 4);
  EXPECT_EQ(solo.trace.to_csv(), pooled.trace.to_csv());
  EXPECT_EQ(solo.report.actual_total, pooled.report.actual_total);
  EXPECT_EQ(solo.report.predicted_total, pooled.report.predicted_total);
  ASSERT_EQ(solo.solution.allocation.tasks.size(),
            pooled.solution.allocation.tasks.size());
  for (std::size_t i = 0; i < solo.solution.allocation.tasks.size(); ++i)
    EXPECT_EQ(solo.solution.allocation.tasks[i].nodes,
              pooled.solution.allocation.tasks[i].nodes);
}

TEST(FmmPipeline, UntriggeredAdaptiveIsBitIdenticalToStatic) {
  const auto spec = base_spec();
  const auto fixed = run_spec(spec);

  auto adaptive_spec = spec;
  adaptive_spec.rebalance.adaptive = true;
  // Thresholds no clean run reaches: the monitor arms but never trips.
  adaptive_spec.rebalance.imbalance_threshold = 1e9;
  adaptive_spec.rebalance.drift_threshold = 1e9;
  const auto adaptive = run_spec(adaptive_spec);

  EXPECT_EQ(adaptive.report.rebalances, 0u);
  EXPECT_EQ(adaptive.trace.to_csv(), fixed.trace.to_csv());
  EXPECT_EQ(adaptive.report.actual_total, fixed.report.actual_total);
  EXPECT_EQ(adaptive.report.exec_makespan, fixed.report.exec_makespan);
}

TEST(FmmPipeline, AdaptiveRunRidesOutStragglers) {
  auto spec = base_spec();
  spec.straggler_cv = 0.4;
  spec.rebalance.adaptive = true;
  const auto run = run_spec(spec);
  EXPECT_TRUE(run.report.exec_completed);
  EXPECT_GT(run.report.actual_total, 0.0);
  EXPECT_GE(run.report.epochs, 1u);
}

TEST(FmmPipeline, AdaptiveRunRecoversFromFailStop) {
  auto spec = base_spec();
  spec.rebalance.adaptive = true;
  spec.fail_node = 0;
  spec.fail_time = 0.5;
  const auto run = run_spec(spec);

  // The fail-stop aborts at least one wave attempt; the controller
  // reallocates over the surviving segment and the run completes.
  EXPECT_TRUE(run.report.exec_completed);
  EXPECT_GE(run.report.exec_restarts, 1u);
  EXPECT_GE(run.report.rebalances, 1u);
  EXPECT_GE(run.report.epochs, 2u);
}

TEST(FmmPipeline, StaticRunCannotSurviveFailStop) {
  auto spec = base_spec();
  spec.fail_node = 0;
  spec.fail_time = 0.5;
  const auto run = run_spec(spec);
  EXPECT_FALSE(run.report.exec_completed);
}

TEST(FmmPipeline, HslbDoesNotLoseBadlyToDlb) {
  const auto spec = base_spec();
  const auto app = SubstrateRegistry::instance().make(spec);
  PipelineOptions opt;
  opt.threads = 1;
  Pipeline(opt).run(*app);
  auto* baseline = dynamic_cast<BaselineReporter*>(app.get());
  ASSERT_NE(baseline, nullptr);
  EXPECT_GT(baseline->hslb_total_seconds(), 0.0);
  // Same bound the CI scenario fuzzer gates on.
  EXPECT_LE(baseline->hslb_total_seconds(),
            baseline->dlb_total_seconds() * 1.3);
}

TEST(FmmWorkload, VariantsAndValidation) {
  fmm::TreeOptions opt;
  opt.tasks = 5;
  opt.variant = "uniform";
  const auto uniform = fmm::tree_workload(opt);
  ASSERT_EQ(uniform.tasks.size(), 5u);
  EXPECT_EQ(uniform.name, "fmm-uniform");

  opt.variant = "adaptive";
  const auto adaptive = fmm::tree_workload(opt);
  ASSERT_EQ(adaptive.tasks.size(), 5u);

  // Adaptive depths are seed-deterministic.
  const auto again = fmm::tree_workload(opt);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(adaptive.tasks[i].name, again.tasks[i].name);
    EXPECT_EQ(adaptive.tasks[i].memory_gb, again.tasks[i].memory_gb);
  }

  opt.variant = "fractal";
  EXPECT_THROW(fmm::tree_workload(opt), std::invalid_argument);
}

}  // namespace
}  // namespace hslb
