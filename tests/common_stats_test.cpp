#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/contracts.hpp"

namespace hslb::stats {
namespace {

TEST(Stats, MeanOfConstants) {
  std::vector<double> xs{3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(mean(xs), 3.0);
}

TEST(Stats, MeanRejectsEmpty) {
  std::vector<double> xs;
  EXPECT_THROW(mean(xs), ContractViolation);
}

TEST(Stats, VarianceKnownValue) {
  std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);
}

TEST(Stats, VarianceNeedsTwo) {
  std::vector<double> xs{1.0};
  EXPECT_THROW(variance(xs), ContractViolation);
}

TEST(Stats, SumKahanHandlesMixedScales) {
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) {
    xs.push_back(1e10);
    xs.push_back(1e-3);
  }
  // naive summation would lose the small terms entirely
  EXPECT_NEAR(sum(xs) - 1e13, 1.0, 1e-6);
}

TEST(Stats, MedianOddEven) {
  std::vector<double> odd{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(median(odd), 3.0);
  std::vector<double> even{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Stats, PercentileEndpoints) {
  std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 25.0);
}

TEST(Stats, PercentileDoesNotModifyInput) {
  std::vector<double> xs{3.0, 1.0, 2.0};
  (void)percentile(xs, 50.0);
  EXPECT_EQ(xs[0], 3.0);
  EXPECT_EQ(xs[1], 1.0);
}

TEST(Stats, RSquaredPerfectFit) {
  std::vector<double> y{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(r_squared(y, y), 1.0);
}

TEST(Stats, RSquaredMeanPredictorIsZero) {
  std::vector<double> y{1.0, 2.0, 3.0};
  std::vector<double> p{2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(r_squared(y, p), 0.0);
}

TEST(Stats, RSquaredConstantObservations) {
  std::vector<double> y{2.0, 2.0};
  std::vector<double> exact{2.0, 2.0};
  std::vector<double> off{2.0, 3.0};
  EXPECT_DOUBLE_EQ(r_squared(y, exact), 1.0);
  EXPECT_DOUBLE_EQ(r_squared(y, off), 0.0);
}

TEST(Stats, SseAndRmse) {
  std::vector<double> y{1.0, 2.0};
  std::vector<double> p{2.0, 4.0};
  EXPECT_DOUBLE_EQ(sse(y, p), 5.0);
  EXPECT_NEAR(rmse(y, p), std::sqrt(2.5), 1e-12);
}

TEST(Stats, ImbalancePerfectBalance) {
  std::vector<double> xs{4.0, 4.0, 4.0};
  EXPECT_DOUBLE_EQ(imbalance(xs), 0.0);
}

TEST(Stats, ImbalanceKnownValue) {
  std::vector<double> xs{1.0, 3.0};  // mean 2, max 3
  EXPECT_DOUBLE_EQ(imbalance(xs), 0.5);
}

TEST(Stats, EfficiencyFullyBusy) {
  std::vector<double> xs{10.0, 10.0};
  EXPECT_DOUBLE_EQ(efficiency(xs, 10.0), 1.0);
}

TEST(Stats, EfficiencyHalfIdle) {
  std::vector<double> xs{10.0, 0.0};
  EXPECT_DOUBLE_EQ(efficiency(xs, 10.0), 0.5);
}

TEST(Stats, MinMax) {
  std::vector<double> xs{3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(min(xs), -1.0);
  EXPECT_DOUBLE_EQ(max(xs), 7.0);
}

}  // namespace
}  // namespace hslb::stats
