#include "common/cli.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"

namespace hslb::cli {
namespace {

Args make(std::vector<const char*> argv, std::set<std::string> flags,
          std::set<std::string> keys) {
  argv.insert(argv.begin(), "prog");
  return Args(static_cast<int>(argv.size()), argv.data(), std::move(flags),
              std::move(keys));
}

TEST(Cli, FlagsAndKeys) {
  const auto args = make({"--verbose", "--nodes", "128"}, {"verbose"}, {"nodes"});
  EXPECT_TRUE(args.flag("verbose"));
  EXPECT_EQ(args.get("nodes", 0LL), 128);
}

TEST(Cli, EqualsSyntax) {
  const auto args = make({"--nodes=2048"}, {}, {"nodes"});
  EXPECT_EQ(args.get("nodes", 0LL), 2048);
}

TEST(Cli, DefaultsWhenAbsent) {
  const auto args = make({}, {"verbose"}, {"nodes", "ratio", "name"});
  EXPECT_FALSE(args.flag("verbose"));
  EXPECT_EQ(args.get("nodes", 7LL), 7);
  EXPECT_DOUBLE_EQ(args.get("ratio", 0.5), 0.5);
  EXPECT_EQ(args.get("name", "x"), "x");
  EXPECT_FALSE(args.value("nodes").has_value());
}

TEST(Cli, PositionalArguments) {
  const auto args = make({"first", "--k", "v", "second"}, {}, {"k"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "first");
  EXPECT_EQ(args.positional()[1], "second");
}

TEST(Cli, UnknownKeyRejected) {
  EXPECT_THROW(make({"--oops", "1"}, {}, {"nodes"}), ContractViolation);
  EXPECT_THROW(make({"--oops=1"}, {}, {"nodes"}), ContractViolation);
}

TEST(Cli, MissingValueRejected) {
  EXPECT_THROW(make({"--nodes"}, {}, {"nodes"}), ContractViolation);
}

TEST(Cli, QueryingUnknownNameIsAnError) {
  const auto args = make({}, {"v"}, {"k"});
  EXPECT_THROW(args.flag("nope"), ContractViolation);
  EXPECT_THROW(args.value("nope"), ContractViolation);
}

TEST(Cli, DoubleParsing) {
  const auto args = make({"--tsync", "2.5"}, {}, {"tsync"});
  EXPECT_DOUBLE_EQ(args.get("tsync", 0.0), 2.5);
}

}  // namespace
}  // namespace hslb::cli
