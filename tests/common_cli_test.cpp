#include "common/cli.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "common/contracts.hpp"

namespace hslb::cli {
namespace {

Args make(std::vector<const char*> argv, std::set<std::string> flags,
          std::set<std::string> keys) {
  argv.insert(argv.begin(), "prog");
  return Args(static_cast<int>(argv.size()), argv.data(), std::move(flags),
              std::move(keys));
}

TEST(Cli, FlagsAndKeys) {
  const auto args = make({"--verbose", "--nodes", "128"}, {"verbose"}, {"nodes"});
  EXPECT_TRUE(args.flag("verbose"));
  EXPECT_EQ(args.get("nodes", 0LL), 128);
}

TEST(Cli, EqualsSyntax) {
  const auto args = make({"--nodes=2048"}, {}, {"nodes"});
  EXPECT_EQ(args.get("nodes", 0LL), 2048);
}

TEST(Cli, DefaultsWhenAbsent) {
  const auto args = make({}, {"verbose"}, {"nodes", "ratio", "name"});
  EXPECT_FALSE(args.flag("verbose"));
  EXPECT_EQ(args.get("nodes", 7LL), 7);
  EXPECT_DOUBLE_EQ(args.get("ratio", 0.5), 0.5);
  EXPECT_EQ(args.get("name", "x"), "x");
  EXPECT_FALSE(args.value("nodes").has_value());
}

TEST(Cli, PositionalArguments) {
  const auto args = make({"first", "--k", "v", "second"}, {}, {"k"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "first");
  EXPECT_EQ(args.positional()[1], "second");
}

TEST(Cli, UnknownKeyRejected) {
  EXPECT_THROW(make({"--oops", "1"}, {}, {"nodes"}), ContractViolation);
  EXPECT_THROW(make({"--oops=1"}, {}, {"nodes"}), ContractViolation);
}

TEST(Cli, MissingValueRejected) {
  EXPECT_THROW(make({"--nodes"}, {}, {"nodes"}), ContractViolation);
}

TEST(Cli, QueryingUnknownNameIsAnError) {
  const auto args = make({}, {"v"}, {"k"});
  EXPECT_THROW(args.flag("nope"), ContractViolation);
  EXPECT_THROW(args.value("nope"), ContractViolation);
}

TEST(Cli, DoubleParsing) {
  const auto args = make({"--tsync", "2.5"}, {}, {"tsync"});
  EXPECT_DOUBLE_EQ(args.get("tsync", 0.0), 2.5);
}

TEST(Cli, ValidatedIntAcceptsInRangeValues) {
  const auto args = make({"--threads", "4", "--solver-threads", "0"}, {},
                         {"threads", "solver-threads"});
  EXPECT_EQ(args.get_int("threads", 1, 0), 4);
  // 0 is a *valid* thread count (hardware concurrency), not an error.
  EXPECT_EQ(args.get_int("solver-threads", 1, 0), 0);
}

TEST(Cli, ValidatedIntRejectsNegativeAndOutOfRange) {
  const auto neg = make({"--threads", "-2"}, {}, {"threads"});
  EXPECT_THROW(neg.get_int("threads", 0, 0), std::invalid_argument);
  const auto big = make({"--layout", "7"}, {}, {"layout"});
  EXPECT_THROW(big.get_int("layout", 1, 1, 3), std::invalid_argument);
}

TEST(Cli, ValidatedIntRejectsGarbage) {
  for (const char* bad : {"abc", "1.5", "12x", "", "  ", "0x10"}) {
    const auto args = make({"--threads", bad}, {}, {"threads"});
    EXPECT_THROW(args.get_int("threads", 0, 0), std::invalid_argument)
        << "accepted garbage: '" << bad << "'";
  }
}

TEST(Cli, ValidatedIntErrorNamesTheFlag) {
  const auto args = make({"--solver-threads", "junk"}, {}, {"solver-threads"});
  try {
    args.get_int("solver-threads", 1, 0);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("--solver-threads"), std::string::npos) << msg;
    EXPECT_NE(msg.find("junk"), std::string::npos) << msg;
  }
}

TEST(Cli, ValidatedIntFallbackBypassesValidation) {
  // The fallback is the programmer's default, not user input: it is
  // returned untouched even when outside the accepted range.
  const auto args = make({}, {}, {"nodes"});
  EXPECT_EQ(args.get_int("nodes", 0, 1), 0);
}

TEST(Cli, SolverPresolveAndCutAgeFlags) {
  // The knob set the fmo/cesm subcommands expose for the solver's presolve
  // and cut lifecycle (see cli/commands.cpp apply_bnb_args).
  const auto on = make({"--no-presolve", "--cut-age-limit", "5"},
                       {"no-presolve"}, {"cut-age-limit"});
  EXPECT_TRUE(on.flag("no-presolve"));
  EXPECT_EQ(on.get_int("cut-age-limit", 12, 0), 5);

  const auto off = make({}, {"no-presolve"}, {"cut-age-limit"});
  EXPECT_FALSE(off.flag("no-presolve"));
  EXPECT_EQ(off.get_int("cut-age-limit", 12, 0), 12);

  // 0 disables retirement and must be accepted; negatives must not.
  const auto zero = make({"--cut-age-limit=0"}, {}, {"cut-age-limit"});
  EXPECT_EQ(zero.get_int("cut-age-limit", 12, 0), 0);
  const auto neg = make({"--cut-age-limit", "-3"}, {}, {"cut-age-limit"});
  EXPECT_THROW(neg.get_int("cut-age-limit", 12, 0), std::invalid_argument);
}

TEST(Cli, ValidatedDoubleChecksRangeAndGarbage) {
  const auto ok = make({"--efficiency", "0.75"}, {}, {"efficiency"});
  EXPECT_DOUBLE_EQ(ok.get_double("efficiency", 0.5, 0.0, 1.0), 0.75);
  const auto high = make({"--efficiency", "1.5"}, {}, {"efficiency"});
  EXPECT_THROW(high.get_double("efficiency", 0.5, 0.0, 1.0),
               std::invalid_argument);
  const auto garbage = make({"--efficiency", "fast"}, {}, {"efficiency"});
  EXPECT_THROW(garbage.get_double("efficiency", 0.5, 0.0, 1.0),
               std::invalid_argument);
  const auto nan = make({"--efficiency", "nan"}, {}, {"efficiency"});
  EXPECT_THROW(nan.get_double("efficiency", 0.5, 0.0, 1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace hslb::cli
