#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"

namespace hslb::linalg {
namespace {

TEST(Matrix, ConstructAndIndex) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 0) = 7.0;
  EXPECT_DOUBLE_EQ(m(0, 0), 7.0);
}

TEST(Matrix, OutOfRangeThrows) {
  Matrix m(2, 2);
  EXPECT_THROW(m(2, 0), ContractViolation);
  EXPECT_THROW(m(0, 2), ContractViolation);
}

TEST(Matrix, FromRowsValidatesShape) {
  EXPECT_THROW(Matrix::from_rows({{1.0, 2.0}, {3.0}}), ContractViolation);
  const auto m = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, IdentityActsAsIdentity) {
  const auto id = Matrix::identity(3);
  const std::vector<double> x{1.0, -2.0, 3.0};
  const auto y = id.mul(x);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(y[i], x[i]);
}

TEST(Matrix, TransposeInvolution) {
  const auto m = Matrix::from_rows({{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}});
  const auto t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  const auto tt = t.transposed();
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(tt(r, c), m(r, c));
}

TEST(Matrix, MatVec) {
  const auto m = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  const auto y = m.mul(std::vector<double>{1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Matrix, MulTransposeMatchesExplicitTranspose) {
  const auto m = Matrix::from_rows({{1.0, 2.0, 0.5}, {3.0, 4.0, -1.0}});
  const std::vector<double> y{2.0, -1.0};
  const auto a = m.mul_transpose(y);
  const auto b = m.transposed().mul(y);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-14);
}

TEST(Matrix, MatMatKnownProduct) {
  const auto a = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  const auto b = Matrix::from_rows({{0.0, 1.0}, {1.0, 0.0}});
  const auto c = a.mul(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 3.0);
}

TEST(Matrix, GramMatchesExplicit) {
  const auto a = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}});
  const auto g = a.gram();
  const auto expected = a.transposed().mul(a);
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 2; ++c)
      EXPECT_NEAR(g(r, c), expected(r, c), 1e-12);
}

TEST(Matrix, DimensionMismatchThrows) {
  const auto a = Matrix::from_rows({{1.0, 2.0}});
  EXPECT_THROW(a.mul(std::vector<double>{1.0}), ContractViolation);
  const auto b = Matrix::from_rows({{1.0, 2.0}});
  EXPECT_THROW(a.mul(b), ContractViolation);
}

TEST(VectorOps, DotAndNorms) {
  const std::vector<double> a{3.0, 4.0};
  const std::vector<double> b{1.0, 2.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 11.0);
  EXPECT_DOUBLE_EQ(norm2(a), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf(a), 4.0);
}

TEST(VectorOps, Axpy) {
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{10.0, 20.0};
  const auto r = axpy(a, 0.5, b);
  EXPECT_DOUBLE_EQ(r[0], 6.0);
  EXPECT_DOUBLE_EQ(r[1], 12.0);
}

TEST(VectorOps, Scale) {
  const auto r = scale(std::vector<double>{1.0, -2.0}, -3.0);
  EXPECT_DOUBLE_EQ(r[0], -3.0);
  EXPECT_DOUBLE_EQ(r[1], 6.0);
}

TEST(Matrix, FrobeniusNorm) {
  const auto m = Matrix::from_rows({{3.0, 0.0}, {0.0, 4.0}});
  EXPECT_DOUBLE_EQ(m.frobenius_norm(), 5.0);
}

}  // namespace
}  // namespace hslb::linalg
