#include "perf/fit.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "perf/benchdata.hpp"

namespace hslb::perf {
namespace {

SampleSet sample_model(const Model& truth, const std::vector<double>& nodes,
                       double noise_cv = 0.0, std::uint64_t seed = 1) {
  Rng rng(seed);
  SampleSet out;
  for (double n : nodes)
    out.push_back({n, truth.eval(n) * rng.lognormal_unit_mean(noise_cv)});
  return out;
}

TEST(Fit, RecoversAmdahlModelExactly) {
  const Model truth{1200.0, 0.0, 1.0, 4.0};
  const auto samples = sample_model(truth, {1, 2, 4, 8, 16, 32, 64, 128});
  const auto res = fit(samples);
  EXPECT_GT(res.r2, 0.99999);
  // Predictions must match even if (b,c) trade off against (a,d) slightly.
  for (double n : {1.0, 3.0, 24.0, 96.0, 200.0}) {
    EXPECT_NEAR(res.model.eval(n), truth.eval(n),
                0.02 * truth.eval(n) + 1e-6)
        << "at n=" << n;
  }
}

TEST(Fit, RecoversFullModelParameters) {
  const Model truth{5000.0, 0.05, 1.3, 10.0};
  const auto samples =
      sample_model(truth, {1, 2, 4, 8, 16, 32, 64, 128, 256, 512});
  const auto res = fit(samples);
  EXPECT_GT(res.r2, 0.9999);
  for (double n : {1.0, 10.0, 100.0, 400.0}) {
    EXPECT_NEAR(res.model.eval(n), truth.eval(n), 0.05 * truth.eval(n));
  }
}

TEST(Fit, FittedModelIsConvexByDefault) {
  const Model truth{900.0, 0.01, 1.8, 2.0};
  const auto samples = sample_model(truth, {1, 4, 16, 64, 256}, 0.05, 7);
  const auto res = fit(samples);
  EXPECT_TRUE(res.model.is_convex());
  EXPECT_GE(res.model.a, 0.0);
  EXPECT_GE(res.model.b, 0.0);
  EXPECT_GE(res.model.c, 1.0);
  EXPECT_GE(res.model.d, 0.0);
}

TEST(Fit, NoisyDataStillGoodR2) {
  // The paper: "R^2 was very close to 1 for each component" with ~5 runs.
  const Model truth{3000.0, 0.0, 1.0, 20.0};
  const auto samples =
      sample_model(truth, {8, 16, 32, 64, 128}, 0.03, 99);
  const auto res = fit(samples);
  EXPECT_GT(res.r2, 0.99);
}

TEST(Fit, FourPointsSufficeForCesmLikeCurves) {
  // §III-C: "for CESM, four points were enough".
  const Model truth{8000.0, 0.0, 1.0, 15.0};
  const auto samples = sample_model(truth, {16, 64, 256, 1024}, 0.02, 3);
  const auto res = fit(samples);
  EXPECT_GT(res.r2, 0.995);
  EXPECT_NEAR(res.model.eval(512.0), truth.eval(512.0),
              0.1 * truth.eval(512.0));
}

TEST(Fit, RejectsDegenerateInput) {
  EXPECT_THROW(fit(SampleSet{}), ContractViolation);
  EXPECT_THROW(fit(SampleSet{{4.0, 1.0}}), ContractViolation);
  // Two samples at the same node count: cannot constrain scaling.
  EXPECT_THROW(fit(SampleSet{{4.0, 1.0}, {4.0, 1.1}}), ContractViolation);
  // Non-positive times are invalid measurements.
  EXPECT_THROW(fit(SampleSet{{1.0, 0.0}, {2.0, 1.0}}), ContractViolation);
}

TEST(Fit, DeterministicForSeed) {
  const Model truth{700.0, 0.0, 1.0, 3.0};
  const auto samples = sample_model(truth, {1, 4, 16, 64}, 0.05, 11);
  const auto r1 = fit(samples);
  const auto r2 = fit(samples);
  EXPECT_EQ(r1.model.a, r2.model.a);
  EXPECT_EQ(r1.model.d, r2.model.d);
  EXPECT_EQ(r1.sse, r2.sse);
}

TEST(Fit, MultistartReportsDiagnostics) {
  const Model truth{700.0, 0.0, 1.0, 3.0};
  const auto samples = sample_model(truth, {1, 4, 16, 64});
  FitOptions opt;
  opt.num_starts = 8;
  const auto res = fit(samples, opt);
  EXPECT_EQ(res.starts_tried, 8u);
  EXPECT_GE(res.starts_converged, 1u);
  EXPECT_TRUE(res.converged);
}

TEST(Fit, UnconstrainedExponentOptionAllowsConcave) {
  // With min_c < 1, fits may use sub-linear exponents (the paper discusses
  // c constrained positive, not necessarily >= 1).
  const Model truth{100.0, 2.0, 0.5, 0.0};  // concave communication growth
  SampleSet samples;
  for (double n : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0})
    samples.push_back({n, truth.eval(n)});
  FitOptions opt;
  opt.min_c = 0.1;
  const auto res = fit(samples, opt);
  EXPECT_GT(res.r2, 0.9999);
  EXPECT_LT(res.model.c, 1.0);
}

TEST(FitAll, FitsEveryTask) {
  BenchTable table;
  table.tasks.push_back({"atm", sample_model({2000, 0, 1, 10}, {8, 32, 128, 512})});
  table.tasks.push_back({"ocn", sample_model({4000, 0, 1, 30}, {8, 32, 128, 512})});
  const auto fits = fit_all(table);
  ASSERT_EQ(fits.size(), 2u);
  EXPECT_EQ(fits[0].first, "atm");
  EXPECT_GT(fits[0].second.r2, 0.999);
  EXPECT_GT(fits[1].second.r2, 0.999);
}

TEST(BenchTable, CsvRoundTrip) {
  BenchTable table;
  table.tasks.push_back({"ice", {{16.0, 100.5}, {64.0, 30.25}}});
  table.tasks.push_back({"lnd", {{16.0, 50.0}}});
  const auto loaded = BenchTable::from_csv(table.to_csv());
  ASSERT_EQ(loaded.tasks.size(), 2u);
  EXPECT_EQ(loaded.tasks[0].task, "ice");
  ASSERT_EQ(loaded.tasks[0].samples.size(), 2u);
  EXPECT_DOUBLE_EQ(loaded.tasks[0].samples[1].seconds, 30.25);
  EXPECT_TRUE(loaded.contains("lnd"));
  EXPECT_FALSE(loaded.contains("atm"));
  EXPECT_THROW(loaded.find("atm"), ContractViolation);
}

}  // namespace
}  // namespace hslb::perf
