#include "cesm/finetuning.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"

namespace hslb::cesm {
namespace {

std::array<perf::Model, 4> truth() {
  std::array<perf::Model, 4> m;
  for (Component c : kComponents)
    m[index(c)] = ground_truth(Resolution::Deg1, c);
  return m;
}

TEST(FineTuning, SyntheticMinorsAreSmallFractions) {
  const auto models = truth();
  const auto minor = synthetic_minor_components(models, 0.06, 0.12);
  const double atm_t = models[index(Component::Atm)].eval(100.0);
  const double lnd_t = models[index(Component::Lnd)].eval(100.0);
  EXPECT_NEAR(minor.cpl.eval(100.0), 0.06 * atm_t, 1e-9);
  EXPECT_NEAR(minor.rof.eval(100.0), 0.12 * lnd_t, 1e-9);
  EXPECT_TRUE(minor.cpl.is_convex());
  EXPECT_TRUE(minor.rof.is_convex());
}

TEST(FineTuning, FractionsValidated) {
  EXPECT_THROW(synthetic_minor_components(truth(), 0.0, 0.1),
               ContractViolation);
  EXPECT_THROW(synthetic_minor_components(truth(), 0.1, 1.5),
               ContractViolation);
}

TEST(FineTuning, OnlyHybridLayoutSupported) {
  auto p = make_problem(Resolution::Deg1, Layout::FullySequential, 128, truth());
  EXPECT_THROW(build_finetuned_minlp(p, synthetic_minor_components(truth())),
               ContractViolation);
}

TEST(FineTuning, TotalIncludesMinorContributions) {
  const auto models = truth();
  const auto p = make_problem(Resolution::Deg1, Layout::Hybrid, 128, models);
  const auto minor = synthetic_minor_components(models);
  const std::array<long long, 4> nodes{24, 80, 104, 24};
  const double plain = layout_total(
      Layout::Hybrid,
      {models[0].eval(24.0), models[1].eval(80.0), models[2].eval(104.0),
       models[3].eval(24.0)});
  const double tuned = finetuned_total(p, minor, nodes);
  EXPECT_GT(tuned, plain);  // the extra work cannot make the run faster
}

TEST(FineTuning, SolveMatchesSemanticFormula) {
  const auto models = truth();
  const auto p = make_problem(Resolution::Deg1, Layout::Hybrid, 256, models);
  const auto minor = synthetic_minor_components(models);
  const auto sol = solve_finetuned(p, minor);
  ASSERT_EQ(sol.stats.status, minlp::BnbStatus::Optimal);
  EXPECT_NEAR(sol.predicted_total, finetuned_total(p, minor, sol.nodes),
              1e-3 * sol.predicted_total);
}

TEST(FineTuning, OptimumAtLeastPlainOptimum) {
  // Adding work can only increase the optimal total.
  const auto models = truth();
  const auto p = make_problem(Resolution::Deg1, Layout::Hybrid, 512, models);
  const auto plain = solve_layout(p);
  const auto tuned = solve_finetuned(p, synthetic_minor_components(models));
  EXPECT_GE(tuned.predicted_total, plain.predicted_total - 1e-6);
}

TEST(FineTuning, ReoptimizationHelpsOrTies) {
  // The 6-component optimum evaluated under 6-component semantics is no
  // worse than the 4-component optimum's allocation under the same
  // semantics.
  const auto models = truth();
  const auto p = make_problem(Resolution::Deg1, Layout::Hybrid, 512, models);
  const auto minor = synthetic_minor_components(models);
  const auto plain = solve_layout(p);
  const auto tuned = solve_finetuned(p, minor);
  EXPECT_LE(finetuned_total(p, minor, tuned.nodes),
            finetuned_total(p, minor, plain.nodes) * 1.001);
}

}  // namespace
}  // namespace hslb::cesm
