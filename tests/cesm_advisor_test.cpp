#include "cesm/advisor.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"

namespace hslb::cesm {
namespace {

std::array<perf::Model, 4> truth(Resolution r) {
  std::array<perf::Model, 4> m;
  for (Component c : kComponents) m[index(c)] = ground_truth(r, c);
  return m;
}

TEST(Advisor, SweepCoversRequestedRange) {
  AdvisorOptions opt;
  opt.min_nodes = 128;
  opt.max_nodes = 2048;
  opt.sweep_points = 5;
  const auto advice = advise_node_count(Resolution::Deg1, Layout::Hybrid,
                                        truth(Resolution::Deg1), true, opt);
  ASSERT_GE(advice.sweep.size(), 2u);
  EXPECT_EQ(advice.sweep.front().nodes, 128);
  EXPECT_EQ(advice.sweep.back().nodes, 2048);
  EXPECT_DOUBLE_EQ(advice.sweep.front().efficiency, 1.0);
}

TEST(Advisor, PredictedTimesDecreaseWithNodes) {
  AdvisorOptions opt;
  opt.min_nodes = 128;
  opt.max_nodes = 2048;
  opt.sweep_points = 5;
  const auto advice = advise_node_count(Resolution::Deg1, Layout::Hybrid,
                                        truth(Resolution::Deg1), true, opt);
  for (std::size_t i = 1; i < advice.sweep.size(); ++i) {
    EXPECT_LE(advice.sweep[i].predicted_seconds,
              advice.sweep[i - 1].predicted_seconds * 1.0001);
  }
  EXPECT_EQ(advice.fastest_nodes, advice.sweep.back().nodes);
}

TEST(Advisor, EfficiencyFloorBindsRecommendation) {
  AdvisorOptions strict;
  strict.min_nodes = 128;
  strict.max_nodes = 8192;
  strict.sweep_points = 7;
  strict.efficiency_floor = 0.95;
  AdvisorOptions loose = strict;
  loose.efficiency_floor = 0.3;
  const auto models = truth(Resolution::Deg1);
  const auto a = advise_node_count(Resolution::Deg1, Layout::Hybrid, models,
                                   true, strict);
  const auto b = advise_node_count(Resolution::Deg1, Layout::Hybrid, models,
                                   true, loose);
  EXPECT_LE(a.cost_efficient_nodes, b.cost_efficient_nodes);
  // Every point at or below the strict recommendation satisfies the floor.
  for (const auto& pt : a.sweep) {
    if (pt.nodes == a.cost_efficient_nodes) {
      EXPECT_GE(pt.efficiency, strict.efficiency_floor);
    }
  }
}

TEST(Advisor, ValidatesOptions) {
  AdvisorOptions opt;
  opt.min_nodes = 4;  // too small
  EXPECT_THROW(advise_node_count(Resolution::Deg1, Layout::Hybrid,
                                 truth(Resolution::Deg1), true, opt),
               ContractViolation);
}

TEST(ComponentSwap, FasterOceanImprovesOceanBoundConfig) {
  // At 1/8 degree, the constrained-ocean configuration is ocean-bound;
  // replacing the ocean with a 2x faster model must improve the optimum.
  const auto models = truth(Resolution::EighthDeg);
  const auto base = make_problem(Resolution::EighthDeg, Layout::Hybrid, 8192,
                                 models);
  const auto before = solve_layout(base);

  perf::Model faster = models[index(Component::Ocn)];
  faster.a *= 0.5;
  faster.d *= 0.5;
  const auto after = predict_component_swap(base, Component::Ocn, faster);
  EXPECT_LT(after.predicted_total, before.predicted_total);
}

TEST(ComponentSwap, RejectsNonConvexReplacement) {
  const auto models = truth(Resolution::Deg1);
  const auto base = make_problem(Resolution::Deg1, Layout::Hybrid, 128, models);
  perf::Model bad;
  bad.a = 10.0;
  bad.b = 1.0;
  bad.c = 0.5;  // concave term
  EXPECT_THROW(predict_component_swap(base, Component::Atm, bad),
               ContractViolation);
}

}  // namespace
}  // namespace hslb::cesm
