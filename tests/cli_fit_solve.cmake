# CTest script: end-to-end `hslb fit` -> `hslb solve` through CSV files.
# Invoked as: cmake -DTOOL=<path-to-hslb> -DWORK=<scratch-dir> -P cli_fit_solve.cmake
if(NOT DEFINED TOOL OR NOT DEFINED WORK)
  message(FATAL_ERROR "TOOL and WORK must be defined")
endif()

file(MAKE_DIRECTORY ${WORK})
set(BENCH ${WORK}/bench.csv)
set(MODELS ${WORK}/models.csv)

file(WRITE ${BENCH}
"task,nodes,seconds
solver,1,1203.2
solver,4,302.5
solver,16,78.1
solver,64,22.3
analysis,1,151.0
analysis,4,38.9
analysis,16,10.5
analysis,64,3.4
")

execute_process(COMMAND ${TOOL} fit --bench ${BENCH} --out ${MODELS}
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "fit failed (${rc}): ${out}${err}")
endif()
if(NOT out MATCHES "solver")
  message(FATAL_ERROR "fit output missing task row: ${out}")
endif()
if(NOT EXISTS ${MODELS})
  message(FATAL_ERROR "fit did not write ${MODELS}")
endif()

execute_process(COMMAND ${TOOL} solve --models ${MODELS} --nodes 64
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "solve failed (${rc}): ${out}${err}")
endif()
if(NOT out MATCHES "min-max objective over 2 tasks")
  message(FATAL_ERROR "solve output unexpected: ${out}")
endif()

# The heavy solver must receive the lion's share of the 64 nodes.
string(REGEX MATCH "solver +([0-9]+) nodes" m "${out}")
if(NOT CMAKE_MATCH_1 GREATER 40)
  message(FATAL_ERROR "solver allocation looks wrong: ${out}")
endif()

message(STATUS "cli fit->solve round trip ok")
