#include "cesm/pipeline.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace hslb::cesm {
namespace {

TEST(GatherPlan, CoversAllComponentsWithEnoughPoints) {
  const auto plan = gather_plan(Resolution::Deg1, 2048, true, 5);
  ASSERT_EQ(plan.size(), 4u);
  for (const auto& [name, counts] : plan) {
    EXPECT_GE(counts.size(), 4u) << name;  // §III-C: at least ~4 points
    for (long long n : counts) {
      EXPECT_GE(n, 1);
      EXPECT_LE(n, 2048);
    }
  }
}

TEST(GatherPlan, OceanProbesOnlyAllowedCounts) {
  const auto plan = gather_plan(Resolution::EighthDeg, 32768, true, 5);
  const auto& allowed = ocean_allowed_nodes(Resolution::EighthDeg);
  for (const auto& [name, counts] : plan) {
    if (name != "ocn") continue;
    for (long long n : counts) {
      EXPECT_NE(std::find(allowed.begin(), allowed.end(), n), allowed.end())
          << "probing disallowed ocean count " << n;
    }
  }
}

TEST(GatherPlan, AtmDeg1StaysWithinSet) {
  const auto plan = gather_plan(Resolution::Deg1, 4096, true, 5);
  for (const auto& [name, counts] : plan) {
    if (name != "atm") continue;
    EXPECT_LE(counts.back(), 1664);
  }
}

TEST(CesmPipeline, EndToEndDeg1Small) {
  PipelineOptions opt;
  const auto res = run_pipeline(Resolution::Deg1, 128, opt);
  // Fits good; ice allowed to be noisier.
  for (Component c : kComponents) {
    const double floor = c == Component::Ice ? 0.90 : 0.97;
    EXPECT_GT(res.fits[index(c)].r2, floor) << to_string(c);
  }
  // Solution feasible for layout 1.
  const auto atm = res.solution.nodes[index(Component::Atm)];
  const auto ocn = res.solution.nodes[index(Component::Ocn)];
  EXPECT_LE(atm + ocn, 128);
  EXPECT_LE(res.solution.nodes[index(Component::Ice)] +
                res.solution.nodes[index(Component::Lnd)],
            atm);
  // Predicted and actual totals in the published ballpark (Table III:
  // manual 416.0, HSLB predicted 410.6, actual 425.2).
  EXPECT_GT(res.solution.predicted_total, 300.0);
  EXPECT_LT(res.solution.predicted_total, 550.0);
  EXPECT_GT(res.actual_total, 300.0);
  EXPECT_LT(res.actual_total, 550.0);
  // Prediction within ~15% of execution.
  EXPECT_NEAR(res.actual_total, res.solution.predicted_total,
              0.15 * res.solution.predicted_total);
}

TEST(CesmPipeline, BeatsOrMatchesManualBaseline) {
  // The paper's headline: HSLB totals are comparable to (or better than)
  // expert manual allocations. Evaluate both on the noise-free oracle.
  for (std::size_t case_idx : {0u, 1u}) {  // the two 1-degree blocks
    const auto& pub = published_cases()[case_idx];
    PipelineOptions opt;
    const auto res = run_pipeline(pub.resolution, pub.total_nodes, opt);
    Simulator oracle(pub.resolution);
    std::array<double, 4> manual_true{}, hslb_true{};
    for (Component c : kComponents) {
      manual_true[index(c)] =
          oracle.true_seconds(c, pub.manual_nodes[index(c)]);
      hslb_true[index(c)] =
          oracle.true_seconds(c, res.solution.nodes[index(c)]);
    }
    const double manual_total = layout_total(Layout::Hybrid, manual_true);
    const double hslb_total = layout_total(Layout::Hybrid, hslb_true);
    EXPECT_LE(hslb_total, manual_total * 1.05)
        << "N=" << pub.total_nodes;
  }
}

TEST(CesmPipeline, UnconstrainedOceanImprovesAt32k) {
  // §IV-B: removing the ocean node constraint at 32,768 nodes improved the
  // predicted time by ~40% and the actual time by ~25%.
  PipelineOptions con, unc;
  con.ocean_constrained = true;
  unc.ocean_constrained = false;
  const auto res_con = run_pipeline(Resolution::EighthDeg, 32768, con);
  const auto res_unc = run_pipeline(Resolution::EighthDeg, 32768, unc);
  EXPECT_LT(res_unc.solution.predicted_total,
            0.85 * res_con.solution.predicted_total);
  EXPECT_LT(res_unc.actual_total, 0.90 * res_con.actual_total);
}

TEST(CesmPipeline, DeterministicPerSeed) {
  PipelineOptions opt;
  const auto a = run_pipeline(Resolution::Deg1, 256, opt);
  const auto b = run_pipeline(Resolution::Deg1, 256, opt);
  for (Component c : kComponents)
    EXPECT_EQ(a.solution.nodes[index(c)], b.solution.nodes[index(c)]);
  EXPECT_EQ(a.actual_total, b.actual_total);
}

TEST(CesmPipeline, IdenticalAcrossThreadCounts) {
  // Parallel benchmarking must reproduce the serial run bit-for-bit.
  PipelineOptions serial, wide;
  serial.threads = 1;
  wide.threads = 4;
  const auto a = run_pipeline(Resolution::Deg1, 256, serial);
  const auto b = run_pipeline(Resolution::Deg1, 256, wide);
  for (Component c : kComponents) {
    EXPECT_EQ(a.solution.nodes[index(c)], b.solution.nodes[index(c)]);
    EXPECT_DOUBLE_EQ(a.fits[index(c)].model.a, b.fits[index(c)].model.a);
    EXPECT_DOUBLE_EQ(a.fits[index(c)].r2, b.fits[index(c)].r2);
  }
  EXPECT_DOUBLE_EQ(a.solution.predicted_total, b.solution.predicted_total);
  EXPECT_DOUBLE_EQ(a.actual_total, b.actual_total);
}

TEST(CesmPipeline, ReportMatchesResult) {
  PipelineOptions opt;
  opt.threads = 2;
  const auto res = run_pipeline(Resolution::Deg1, 128, opt);
  EXPECT_EQ(res.report.application.rfind("cesm", 0), 0u);
  EXPECT_EQ(res.report.threads, 2u);
  ASSERT_EQ(res.report.fits.size(), 4u);
  EXPECT_DOUBLE_EQ(res.report.min_r2(), res.min_r2());
  EXPECT_DOUBLE_EQ(res.report.predicted_total, res.solution.predicted_total);
  EXPECT_DOUBLE_EQ(res.report.actual_total, res.actual_total);
  EXPECT_EQ(res.report.solver.status, "optimal");
  EXPECT_GT(res.report.solver.nodes, 0u);
  EXPECT_NE(res.report.str().find("solve"), std::string::npos);
}

TEST(CesmPipeline, MinR2Diagnostic) {
  PipelineOptions opt;
  const auto res = run_pipeline(Resolution::Deg1, 128, opt);
  double expect_min = 1.0;
  for (const auto& f : res.fits) expect_min = std::min(expect_min, f.r2);
  EXPECT_DOUBLE_EQ(res.min_r2(), expect_min);
}

TEST(Simulator, IceIsNoisierThanLand) {
  Simulator sim(Resolution::Deg1);
  double ice_spread = 0.0, lnd_spread = 0.0;
  const double ice_true = sim.true_seconds(Component::Ice, 100);
  const double lnd_true = sim.true_seconds(Component::Lnd, 100);
  for (int i = 0; i < 200; ++i) {
    ice_spread += std::fabs(sim.benchmark(Component::Ice, 100) - ice_true);
    lnd_spread += std::fabs(sim.benchmark(Component::Lnd, 100) - lnd_true);
  }
  EXPECT_GT(ice_spread / ice_true, lnd_spread / lnd_true);
}

TEST(Simulator, CoupledRunZeroNoiseMatchesFormula) {
  SimulatorOptions opt;
  opt.noise_cv = 0.0;
  opt.ice_noise_cv = 0.0;
  Simulator sim(Resolution::Deg1, opt);
  const std::array<long long, 4> nodes{15, 89, 104, 24};
  for (Layout layout : {Layout::Hybrid, Layout::SequentialAtmGroup,
                        Layout::FullySequential}) {
    const auto run = sim.run_coupled(layout, nodes, 24);
    std::array<double, 4> truth{};
    for (Component c : kComponents)
      truth[index(c)] = sim.true_seconds(c, nodes[index(c)]);
    EXPECT_NEAR(run.total_seconds, layout_total(layout, truth),
                1e-9 * run.total_seconds)
        << to_string(layout);
    EXPECT_NEAR(run.coupling_loss_seconds, 0.0, 1e-9 * run.total_seconds);
    EXPECT_EQ(run.events, 96u);  // 4 components x 24 coupling periods
    EXPECT_EQ(run.intervals, 24);
  }
}

TEST(Simulator, CoupledRunNoiseCostsBarrierTime) {
  SimulatorOptions opt;
  opt.noise_cv = 0.08;
  opt.ice_noise_cv = 0.15;
  Simulator sim(Resolution::Deg1, opt);
  const std::array<long long, 4> nodes{15, 89, 104, 24};
  const auto run = sim.run_coupled(Layout::Hybrid, nodes, 24);
  // Per-interval barriers can only add time over the barrier-free formula.
  EXPECT_GE(run.coupling_loss_seconds, -1e-9 * run.total_seconds);
  EXPECT_GT(run.coupling_loss_seconds, 0.0);
  // Component sums are consistent with the slices.
  double sum = 0.0;
  for (double s : run.component_seconds) sum += s;
  EXPECT_GT(sum, 0.0);
}

TEST(Simulator, CoupledRunValidatesIntervals) {
  Simulator sim(Resolution::Deg1);
  EXPECT_THROW(sim.run_coupled(Layout::Hybrid, {1, 1, 2, 2}, 0),
               ContractViolation);
}

TEST(Simulator, RunTotalMatchesLayoutFormula) {
  SimulatorOptions opt;
  opt.noise_cv = 0.0;
  opt.ice_noise_cv = 0.0;
  Simulator sim(Resolution::Deg1, opt);
  const std::array<long long, 4> nodes{24, 80, 104, 24};
  const auto comps = sim.run_components(nodes);
  std::array<double, 4> expected{};
  for (Component c : kComponents)
    expected[index(c)] = sim.true_seconds(c, nodes[index(c)]);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(comps[i], expected[i]);
  EXPECT_DOUBLE_EQ(sim.run_total(Layout::Hybrid, nodes),
                   layout_total(Layout::Hybrid, expected));
}

}  // namespace
}  // namespace hslb::cesm
