# CTest script: end-to-end `hslb client` -> `hslb serve` through a request
# script, replayed under two thread counts; the response payload files must
# be byte-identical (the service determinism contract).
# Invoked as: cmake -DTOOL=<path-to-hslb> -DWORK=<scratch-dir> -P cli_serve_roundtrip.cmake
if(NOT DEFINED TOOL OR NOT DEFINED WORK)
  message(FATAL_ERROR "TOOL and WORK must be defined")
endif()

file(MAKE_DIRECTORY ${WORK})
set(SCRIPT ${WORK}/requests.txt)
file(REMOVE ${SCRIPT})

# Build the script incrementally, the way a user would: one client call per
# request. Two distinct instances, a perturbed neighbor, and an exact repeat.
set(TASKS_A "atm:400:3:1:2:1:0\;ocn:250:2:1:1:1:0")
set(TASKS_B "atm:408:3:1:2:1:0\;ocn:255:2:1:1:1:0")
foreach(tasks ${TASKS_A} ${TASKS_B} ${TASKS_A})
  execute_process(COMMAND ${TOOL} client --kind solve --nodes 64
                          --tasks ${tasks} --out ${SCRIPT}
                  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "client failed (${rc}): ${out}${err}")
  endif()
endforeach()

execute_process(COMMAND ${TOOL} serve --script ${SCRIPT} --threads 1 --batch 1
                        --responses ${WORK}/responses_t1.txt
                RESULT_VARIABLE rc OUTPUT_VARIABLE out1 ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "serve --threads 1 failed (${rc}): ${out1}${err}")
endif()
if(NOT out1 MATCHES "service report")
  message(FATAL_ERROR "serve output missing report: ${out1}")
endif()
# The exact repeat must hit the cache.
if(NOT out1 MATCHES "HIT")
  message(FATAL_ERROR "expected a cache HIT in: ${out1}")
endif()

execute_process(COMMAND ${TOOL} serve --script ${SCRIPT} --threads 4 --batch 1
                        --responses ${WORK}/responses_t4.txt
                RESULT_VARIABLE rc OUTPUT_VARIABLE out4 ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "serve --threads 4 failed (${rc}): ${out4}${err}")
endif()

file(READ ${WORK}/responses_t1.txt t1)
file(READ ${WORK}/responses_t4.txt t4)
if(NOT t1 STREQUAL t4)
  message(FATAL_ERROR "response payloads differ across thread counts:\n"
                      "--- threads 1 ---\n${t1}\n--- threads 4 ---\n${t4}")
endif()

message(STATUS "cli client->serve round trip ok")
