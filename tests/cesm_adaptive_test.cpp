#include <gtest/gtest.h>

#include <cmath>

#include "cesm/pipeline.hpp"

namespace hslb::cesm {
namespace {

// ADPT-C1: an adaptive CESM run whose monitor never trips reproduces the
// static pipeline bit-identically — same coupled trace, same accounting,
// same report columns.
TEST(CesmAdaptive, OneEpochParityWithStatic) {
  PipelineOptions stat;
  PipelineOptions adap = stat;
  adap.rebalance.adaptive = true;
  adap.rebalance.imbalance_threshold = 1e9;  // never trigger
  adap.rebalance.drift_threshold = 1e9;

  const auto a = run_pipeline(Resolution::Deg1, 128, stat);
  const auto b = run_pipeline(Resolution::Deg1, 128, adap);

  EXPECT_EQ(a.coupled.trace.to_csv(), b.coupled.trace.to_csv());
  EXPECT_EQ(a.coupled.total_seconds, b.coupled.total_seconds);
  EXPECT_EQ(a.coupled.coupling_loss_seconds, b.coupled.coupling_loss_seconds);
  EXPECT_EQ(a.coupled.events, b.coupled.events);
  EXPECT_EQ(a.actual_total, b.actual_total);
  for (Component c : kComponents)
    EXPECT_EQ(a.actual_seconds[index(c)], b.actual_seconds[index(c)]);
  EXPECT_EQ(a.solution.nodes, b.solution.nodes);

  EXPECT_EQ(a.report.predicted_total, b.report.predicted_total);
  EXPECT_EQ(a.report.actual_total, b.report.actual_total);
  EXPECT_EQ(a.report.exec_makespan, b.report.exec_makespan);
  EXPECT_EQ(a.report.exec_percent_imbalance, b.report.exec_percent_imbalance);
  EXPECT_EQ(a.report.epochs, 1u);
  EXPECT_EQ(b.report.epochs, 1u);
  EXPECT_EQ(b.report.rebalances, 0u);
  EXPECT_EQ(b.report.migration_seconds, 0.0);
}

// ADPT-C2: parity across every layout (each has a different interval
// graph, so each exercises the chunked builder differently).
TEST(CesmAdaptive, ParityOnEveryLayout) {
  for (Layout layout :
       {Layout::Hybrid, Layout::SequentialAtmGroup, Layout::FullySequential}) {
    PipelineOptions stat;
    stat.layout = layout;
    PipelineOptions adap = stat;
    adap.rebalance.adaptive = true;
    adap.rebalance.imbalance_threshold = 1e9;
    adap.rebalance.drift_threshold = 1e9;
    adap.intervals_per_epoch = 5;  // intervals (24) not divisible by chunk

    const auto a = run_pipeline(Resolution::Deg1, 128, stat);
    const auto b = run_pipeline(Resolution::Deg1, 128, adap);
    EXPECT_EQ(a.coupled.trace.to_csv(), b.coupled.trace.to_csv())
        << "layout " << static_cast<int>(layout);
    EXPECT_EQ(a.actual_total, b.actual_total);
  }
}

// ADPT-C3: a permanent node failure wedges the static coupled run; the
// closed loop re-solves the layout over the surviving segment and
// completes, paying a real migration stall.
TEST(CesmAdaptive, CompletesPermanentFailureStaticCannot) {
  PipelineOptions probe;
  const auto healthy = run_pipeline(Resolution::Deg1, 128, probe);
  ASSERT_TRUE(healthy.coupled.completed);

  PipelineOptions opt;
  opt.fail_node = 0;
  opt.fail_time = 0.3 * healthy.actual_total;
  const auto stat = run_pipeline(Resolution::Deg1, 128, opt);
  EXPECT_FALSE(stat.coupled.completed);

  PipelineOptions adap = opt;
  adap.rebalance.adaptive = true;
  adap.link_gb_per_s = 1.0;
  adap.migrate_gb_per_node = 0.5;
  const auto res = run_pipeline(Resolution::Deg1, 128, adap);
  EXPECT_TRUE(res.coupled.completed);
  EXPECT_GE(res.report.rebalances, 1u);
  EXPECT_GT(res.report.migration_seconds, 0.0);
  EXPECT_GT(res.coupled.restarts, 0u);
}

// ADPT-C4: rebalance decisions are identical across worker-thread counts.
TEST(CesmAdaptive, DecisionsDeterministicAcrossThreads) {
  PipelineOptions probe;
  const auto healthy = run_pipeline(Resolution::Deg1, 128, probe);

  PipelineOptions adap;
  adap.rebalance.adaptive = true;
  adap.fail_node = 0;
  adap.fail_time = 0.3 * healthy.actual_total;
  adap.link_gb_per_s = 1.0;
  adap.migrate_gb_per_node = 0.5;
  adap.threads = 1;
  const auto t1 = run_pipeline(Resolution::Deg1, 128, adap);
  adap.threads = 4;
  const auto t4 = run_pipeline(Resolution::Deg1, 128, adap);
  EXPECT_EQ(t1.coupled.trace.to_csv(), t4.coupled.trace.to_csv());
  EXPECT_EQ(t1.report.rebalances, t4.report.rebalances);
  EXPECT_EQ(t1.report.migration_seconds, t4.report.migration_seconds);
  EXPECT_EQ(t1.coupled.completed, t4.coupled.completed);
}

}  // namespace
}  // namespace hslb::cesm
