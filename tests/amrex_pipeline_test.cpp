// End-to-end pipeline coverage for the AMReX mesh+particle substrate:
// registry-built runs, thread invariance, the machine-extended path (comm
// and memory cost terms on a bandwidth/memory-limited machine), and the
// adaptive epoch path.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "amrex/workload.hpp"
#include "hslb/pipeline.hpp"
#include "hslb/registry.hpp"
#include "substrates/registry_builtins.hpp"

namespace hslb {
namespace {

ScenarioSpec base_spec(const std::string& variant = "clustered") {
  substrates::register_builtin_substrates();
  ScenarioSpec spec;
  spec.substrate = "amrex";
  spec.variant = variant;
  spec.tasks = 6;
  spec.nodes = 30;
  return spec;
}

PipelineRun run_spec(const ScenarioSpec& spec, std::size_t threads = 1) {
  const auto app = SubstrateRegistry::instance().make(spec);
  PipelineOptions opt;
  opt.threads = threads;
  opt.rebalance = spec.rebalance;
  return Pipeline(opt).run(*app);
}

TEST(AmrexPipeline, FullPipelineEndToEnd) {
  const auto run = run_spec(base_spec());
  EXPECT_EQ(run.report.application, "wave/amrex-clustered");
  EXPECT_TRUE(run.report.exec_completed);
  EXPECT_GT(run.report.actual_total, 0.0);
  ASSERT_EQ(run.report.fits.size(), 6u);
  for (const auto& f : run.report.fits) EXPECT_GT(f.r2, 0.9);
  EXPECT_FALSE(run.trace.events.empty());
  EXPECT_EQ(run.report.exec.makespan, run.report.exec_makespan);
  EXPECT_GT(run.report.exec.efficiency, 0.0);
}

TEST(AmrexPipeline, ClusteredBlocksAreImbalanced) {
  // The clustered particle draw concentrates load in a few blocks — that
  // is the scenario HSLB exists for, so the min-max allocation must give
  // the heavy blocks more nodes than the light ones.
  const auto run = run_spec(base_spec());
  long long min_nodes = run.solution.allocation.tasks.front().nodes;
  long long max_nodes = min_nodes;
  for (const auto& t : run.solution.allocation.tasks) {
    min_nodes = std::min(min_nodes, t.nodes);
    max_nodes = std::max(max_nodes, t.nodes);
  }
  EXPECT_GT(max_nodes, min_nodes);
}

TEST(AmrexPipeline, ThreadCountInvariance) {
  const auto spec = base_spec();
  const auto solo = run_spec(spec, 1);
  const auto pooled = run_spec(spec, 4);
  EXPECT_EQ(solo.trace.to_csv(), pooled.trace.to_csv());
  EXPECT_EQ(solo.report.actual_total, pooled.report.actual_total);
}

TEST(AmrexPipeline, MemoryLimitedMachineShapesTheAllocation) {
  auto spec = base_spec();
  spec.link_gb_per_s = 10.0;
  spec.memory_gb_per_node = 0.01;  // per-block working sets reach ~0.04 GB
  spec.page_s_per_gb = 1.0;
  const auto run = run_spec(spec);
  EXPECT_TRUE(run.report.exec_completed);

  // Execution time is term-attributed on the extended machine. The wave
  // model carries no halo traffic, so the comm term is reported but zero;
  // the memory term is what binds here.
  EXPECT_GT(run.report.term_actual("powerlaw"), 0.0);
  bool has_comm = false, has_memory = false;
  for (const auto& t : run.report.terms) {
    has_comm = has_comm || t.term == "comm";
    has_memory = has_memory || t.term == "memory";
  }
  EXPECT_TRUE(has_comm);
  EXPECT_TRUE(has_memory);

  // The memory knapsack forces every block onto enough nodes that its
  // working set fits without paging.
  amrex::MeshOptions mesh;
  mesh.blocks = 6;
  mesh.variant = "clustered";
  const auto wl = amrex::mesh_workload(mesh);
  ASSERT_EQ(run.solution.allocation.tasks.size(), wl.tasks.size());
  for (std::size_t i = 0; i < wl.tasks.size(); ++i) {
    const double demand_per_node =
        wl.tasks[i].memory_gb /
        static_cast<double>(run.solution.allocation.tasks[i].nodes);
    EXPECT_LE(demand_per_node, spec.memory_gb_per_node + 1e-12)
        << wl.tasks[i].name;
  }
}

TEST(AmrexPipeline, UntriggeredAdaptiveIsBitIdenticalToStatic) {
  const auto spec = base_spec();
  const auto fixed = run_spec(spec);

  auto adaptive_spec = spec;
  adaptive_spec.rebalance.adaptive = true;
  adaptive_spec.rebalance.imbalance_threshold = 1e9;
  adaptive_spec.rebalance.drift_threshold = 1e9;
  const auto adaptive = run_spec(adaptive_spec);

  EXPECT_EQ(adaptive.report.rebalances, 0u);
  EXPECT_EQ(adaptive.trace.to_csv(), fixed.trace.to_csv());
  EXPECT_EQ(adaptive.report.actual_total, fixed.report.actual_total);
}

TEST(AmrexPipeline, AdaptiveRunRecoversFromFailStop) {
  auto spec = base_spec();
  spec.rebalance.adaptive = true;
  spec.fail_node = 0;
  spec.fail_time = 0.5;
  const auto run = run_spec(spec);
  EXPECT_TRUE(run.report.exec_completed);
  EXPECT_GE(run.report.exec_restarts, 1u);
  EXPECT_GE(run.report.rebalances, 1u);
}

TEST(AmrexPipeline, MinlpSolvePathWorks) {
  auto spec = base_spec();
  spec.minlp = true;
  const auto run = run_spec(spec);
  EXPECT_TRUE(run.report.exec_completed);
  EXPECT_GT(run.report.solver.nodes, 0u);

  // Greedy and MINLP agree on the min-max optimum's predicted value.
  const auto greedy = run_spec(base_spec());
  EXPECT_NEAR(run.report.predicted_total, greedy.report.predicted_total,
              1e-6 * greedy.report.predicted_total);
}

TEST(AmrexWorkload, VariantsAndValidation) {
  amrex::MeshOptions opt;
  opt.blocks = 5;
  opt.variant = "uniform";
  const auto uniform = amrex::mesh_workload(opt);
  ASSERT_EQ(uniform.tasks.size(), 5u);
  EXPECT_EQ(uniform.name, "amrex-uniform");

  opt.variant = "clustered";
  const auto clustered = amrex::mesh_workload(opt);
  ASSERT_EQ(clustered.tasks.size(), 5u);
  const auto again = amrex::mesh_workload(opt);
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_EQ(clustered.tasks[i].memory_gb, again.tasks[i].memory_gb);

  opt.variant = "refined";
  EXPECT_THROW(amrex::mesh_workload(opt), std::invalid_argument);
}

}  // namespace
}  // namespace hslb
