#include "perf/terms.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "perf/fit.hpp"
#include "perf/model.hpp"

namespace hslb::perf {
namespace {

TEST(Terms, RegistryKnowsBuiltins) {
  auto& reg = TermRegistry::instance();
  for (const char* name : {"powerlaw", "compute", "serial", "comm", "memory"})
    EXPECT_TRUE(reg.contains(name)) << name;
  EXPECT_FALSE(reg.contains("no-such-term"));
  EXPECT_THROW(reg.make("no-such-term"), std::exception);
  // Factories produce terms carrying the registered name.
  const double args[] = {0.5, 2.0};
  EXPECT_EQ(reg.make("comm", args)->name(), "comm");
  EXPECT_EQ(reg.make("powerlaw")->num_params(), 4u);
}

TEST(Terms, PowerLawTermDelegatesToModelExactly) {
  const Model m{4852.7, 1e-6, 2.5, 22.5};
  const double params[] = {m.a, m.b, m.c, m.d};
  const auto term = power_law_term();
  ASSERT_EQ(term->num_params(), 4u);
  for (double n : {1.0, 3.0, 17.0, 256.0}) {
    EXPECT_EQ(term->eval(params, n), m.eval(n));
    EXPECT_EQ(term->deriv_n(params, n), m.deriv_n(n));
  }
  EXPECT_TRUE(term->is_convex(params));
}

TEST(Terms, SinglePowerLawCostModelIsBitIdentical) {
  const Model m{5000.0, 2e-4, 1.3, 12.0};
  const CostModel cm(m);  // implicit conversion path used by BudgetTask
  for (double n : {1.0, 2.0, 7.0, 96.0}) {
    EXPECT_EQ(cm.eval(n), m.eval(n));
    EXPECT_EQ(cm.deriv_n(n), m.deriv_n(n));
  }
  const auto [cn, ct] = cm.argmin_int(1, 96);
  const auto [mn, mt] = m.argmin_int(1, 96);
  EXPECT_EQ(cn, mn);
  EXPECT_EQ(ct, mt);
  ASSERT_TRUE(cm.power_law().has_value());
  EXPECT_EQ(cm.power_law()->a, m.a);
  EXPECT_EQ(cm.min_feasible_nodes(), 1);
  EXPECT_FALSE(cm.empty());
}

TEST(Terms, PinnedCommTermMath) {
  // 0.25 GB per neighbour pair, 4 pairs, 2 GB/s link: 0.5*n seconds.
  const auto term = make_comm_term(0.25 * 4, 0.5);
  EXPECT_EQ(term->num_params(), 0u);
  EXPECT_DOUBLE_EQ(term->eval({}, 3.0), 1.5);
  EXPECT_DOUBLE_EQ(term->deriv_n({}, 3.0), 0.5);
  double slope = 0.0, intercept = 1.0;
  ASSERT_TRUE(term->linear_in_n({}, slope, intercept));
  EXPECT_DOUBLE_EQ(slope, 0.5);
  EXPECT_EQ(intercept, 0.0);
  EXPECT_TRUE(term->is_convex({}));
}

TEST(Terms, PinnedMemoryTermMath) {
  // 8 GB working set, 2 GB/node capacity, 0.5 s per spilled GB.
  const auto term = make_memory_term(8.0, 2.0, 0.5);
  EXPECT_EQ(term->num_params(), 0u);
  // 2 nodes hold 4 GB: 4 GB spilled at 0.5 s/GB = 2 s.
  EXPECT_DOUBLE_EQ(term->eval({}, 2.0), 2.0);
  // 4+ nodes fit the set exactly: no penalty.
  EXPECT_EQ(term->eval({}, 4.0), 0.0);
  EXPECT_EQ(term->eval({}, 16.0), 0.0);
  EXPECT_DOUBLE_EQ(term->deriv_n({}, 2.0), -1.0);
  EXPECT_EQ(term->deriv_n({}, 8.0), 0.0);
  double cap = 0.0, demand = 0.0;
  ASSERT_TRUE(term->knapsack_row(cap, demand));
  EXPECT_DOUBLE_EQ(cap, 2.0);
  EXPECT_DOUBLE_EQ(demand, 8.0);
}

TEST(Terms, MemoryKnapsackRaisesMinFeasibleNodes) {
  CostModel cm(Model{100.0, 0.0, 1.0, 1.0});
  cm.add(make_memory_term(8.0, 3.0, 0.0));
  // ceil(8/3) = 3 nodes needed just to hold the working set.
  EXPECT_EQ(cm.min_feasible_nodes(), 3);
  // argmin honours the floor.
  EXPECT_GE(cm.argmin_int(cm.min_feasible_nodes(), 96).first, 3);
}

TEST(Terms, CompositeModelSumsTerms) {
  CostModel cm(Model{100.0, 0.0, 1.0, 2.0});
  cm.add(make_comm_term(1.0, 0.25));  // 0.25*n
  const double n = 8.0;
  EXPECT_DOUBLE_EQ(cm.eval(n), 100.0 / n + 2.0 + 0.25 * n);
  EXPECT_EQ(cm.num_terms(), 2u);
  EXPECT_DOUBLE_EQ(cm.term_seconds(0, n), 100.0 / n + 2.0);
  EXPECT_DOUBLE_EQ(cm.term_seconds(1, n), 0.25 * n);
  // The comm term moves the sweet spot below the compute-only argmin.
  const auto [best, t] = cm.argmin_int(1, 96);
  EXPECT_EQ(best, 20);  // d/dn = -100/n^2 + 0.25 = 0 at n = 20
  EXPECT_DOUBLE_EQ(t, cm.eval(20.0));
  double slope = 0.0, intercept = 0.0;
  ASSERT_TRUE(cm.linear_part(slope, intercept));
  EXPECT_DOUBLE_EQ(slope, 0.25);
  EXPECT_TRUE(cm.has_nonlinear());
}

TEST(Terms, GenericFitRecoversCommSlope) {
  // Ground truth: T(n) = 400/n + 5 + 0.2*n, sampled noise-free.
  SampleSet samples;
  for (double n : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0}) {
    samples.push_back({n, 400.0 / n + 5.0 + 0.2 * n});
  }
  CostModelSpec spec{compute_term(), serial_term(), make_comm_term(1.0)};
  FitOptions opt;
  opt.min_c = 0.5;
  const auto fit = fit_cost(samples, spec, opt);
  EXPECT_TRUE(fit.converged);
  EXPECT_GT(fit.r2, 0.9999);
  // Slope of the fitted comm term (volume 1 GB => beta is the slope).
  double slope = 0.0, intercept = 0.0;
  ASSERT_TRUE(fit.cost.linear_part(slope, intercept));
  EXPECT_NEAR(slope, 0.2, 1e-3);
  EXPECT_NEAR(fit.cost.eval(10.0), 400.0 / 10.0 + 5.0 + 2.0, 1e-2);
}

TEST(Terms, PinnedOnlySpecNeedsNoFit) {
  SampleSet samples;
  for (double n : {1.0, 2.0, 4.0}) samples.push_back({n, 0.5 * n});
  const auto fit = fit_cost(samples, {make_comm_term(1.0, 0.5)}, {});
  EXPECT_TRUE(fit.converged);
  EXPECT_DOUBLE_EQ(fit.cost.eval(4.0), 2.0);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

}  // namespace
}  // namespace hslb::perf
