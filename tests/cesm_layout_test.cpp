#include "cesm/layouts.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace hslb::cesm {
namespace {

std::array<perf::Model, 4> simple_models() {
  // lnd, ice, atm, ocn — pure Amdahl curves with different scales.
  return {perf::Model{1500.0, 0.0, 1.0, 2.0}, perf::Model{8400.0, 0.0, 1.0, 12.0},
          perf::Model{27500.0, 0.0, 1.0, 44.0}, perf::Model{7650.0, 0.0, 1.0, 46.0}};
}

TEST(LayoutTotal, FormulasMatchTableI) {
  const std::array<double, 4> s{10.0, 20.0, 100.0, 90.0};  // lnd ice atm ocn
  EXPECT_DOUBLE_EQ(layout_total(Layout::Hybrid, s), 120.0);
  EXPECT_DOUBLE_EQ(layout_total(Layout::SequentialAtmGroup, s), 130.0);
  EXPECT_DOUBLE_EQ(layout_total(Layout::FullySequential, s), 220.0);
}

TEST(LayoutTotal, OceanBoundCase) {
  const std::array<double, 4> s{10.0, 20.0, 100.0, 500.0};
  EXPECT_DOUBLE_EQ(layout_total(Layout::Hybrid, s), 500.0);
  EXPECT_DOUBLE_EQ(layout_total(Layout::SequentialAtmGroup, s), 500.0);
}

TEST(MakeProblem, Deg1UsesPublishedSets) {
  const auto p = make_problem(Resolution::Deg1, Layout::Hybrid, 2048,
                              simple_models());
  EXPECT_FALSE(p.choices[index(Component::Ocn)].allowed.empty());
  EXPECT_FALSE(p.choices[index(Component::Atm)].allowed.empty());
  EXPECT_TRUE(p.choices[index(Component::Lnd)].allowed.empty());
  // Sets are filtered to the partition size.
  for (long long v : p.choices[index(Component::Atm)].allowed)
    EXPECT_LE(v, 2048);
}

TEST(MakeProblem, UnconstrainedOceanIsRange) {
  const auto p = make_problem(Resolution::EighthDeg, Layout::Hybrid, 8192,
                              simple_models(), /*ocean_constrained=*/false);
  EXPECT_TRUE(p.choices[index(Component::Ocn)].allowed.empty());
  EXPECT_EQ(p.choices[index(Component::Ocn)].lo, 2);
}

TEST(SolveLayout, RespectsAllConstraintsHybrid) {
  auto p = make_problem(Resolution::Deg1, Layout::Hybrid, 128, simple_models());
  const auto sol = solve_layout(p);
  ASSERT_EQ(sol.stats.status, minlp::BnbStatus::Optimal);
  const auto lnd = sol.nodes[index(Component::Lnd)];
  const auto ice = sol.nodes[index(Component::Ice)];
  const auto atm = sol.nodes[index(Component::Atm)];
  const auto ocn = sol.nodes[index(Component::Ocn)];
  EXPECT_LE(atm + ocn, 128);
  EXPECT_LE(ice + lnd, atm);
  const auto& allowed = ocean_allowed_nodes(Resolution::Deg1);
  EXPECT_NE(std::find(allowed.begin(), allowed.end(), ocn), allowed.end());
  // Objective equals the layout formula applied to the predictions.
  EXPECT_NEAR(sol.predicted_total,
              layout_total(Layout::Hybrid, sol.predicted_seconds),
              1e-4 * sol.predicted_total);
}

TEST(SolveLayout, SequentialLayoutBudget) {
  auto p = make_problem(Resolution::Deg1, Layout::SequentialAtmGroup, 128,
                        simple_models());
  const auto sol = solve_layout(p);
  ASSERT_EQ(sol.stats.status, minlp::BnbStatus::Optimal);
  for (Component c : {Component::Lnd, Component::Ice, Component::Atm}) {
    EXPECT_LE(sol.nodes[index(c)] + sol.nodes[index(Component::Ocn)], 128);
  }
  EXPECT_NEAR(sol.predicted_total,
              layout_total(Layout::SequentialAtmGroup, sol.predicted_seconds),
              1e-4 * sol.predicted_total);
}

TEST(SolveLayout, FullySequentialUsesWholeMachinePerComponent) {
  auto p = make_problem(Resolution::Deg1, Layout::FullySequential, 128,
                        simple_models());
  const auto sol = solve_layout(p);
  ASSERT_EQ(sol.stats.status, minlp::BnbStatus::Optimal);
  // With sequential execution each component can (and here should) use many
  // nodes; total is the sum formula.
  EXPECT_NEAR(sol.predicted_total,
              layout_total(Layout::FullySequential, sol.predicted_seconds),
              1e-4 * sol.predicted_total);
}

TEST(SolveLayout, LayoutOrderingMatchesFigure4) {
  // Figure 4: layouts 1 and 2 perform similarly, layout 3 is worst.
  const auto models = simple_models();
  std::array<double, 3> totals{};
  for (int l = 1; l <= 3; ++l) {
    auto p = make_problem(Resolution::Deg1, static_cast<Layout>(l), 512, models);
    totals[static_cast<std::size_t>(l - 1)] = solve_layout(p).predicted_total;
  }
  EXPECT_LE(totals[0], totals[1] * 1.001);  // hybrid <= seq-group
  EXPECT_LT(totals[1], totals[2]);          // seq-group < fully sequential
}

TEST(SolveLayout, MoreNodesNeverWorse) {
  const auto models = simple_models();
  double prev = 1e300;
  for (long long n : {128, 256, 512, 1024, 2048}) {
    auto p = make_problem(Resolution::Deg1, Layout::Hybrid, n, models);
    const auto sol = solve_layout(p);
    EXPECT_LE(sol.predicted_total, prev * 1.0001) << "N=" << n;
    prev = sol.predicted_total;
  }
}

TEST(SolveLayout, TsyncTightensLndIceGap) {
  auto p = make_problem(Resolution::Deg1, Layout::Hybrid, 512, simple_models());
  // Solve free, then with a tight tolerance on the surrogate gap.
  const auto free_sol = solve_layout(p);
  p.tsync = 1.0;
  const auto sync_sol = solve_layout(p);
  ASSERT_EQ(sync_sol.stats.status, minlp::BnbStatus::Optimal);
  // §III-A: extra constraints can only make the optimum worse or equal.
  EXPECT_GE(sync_sol.predicted_total, free_sol.predicted_total - 1e-6);
}

TEST(SolveLayout, OceanSetBindsSolution) {
  // With a severely restricted ocean set, the solution must pick from it
  // even when a neighbouring count would be better.
  auto p = make_problem(Resolution::EighthDeg, Layout::Hybrid, 8192,
                        std::array<perf::Model, 4>{
                            perf::Model{59000.0, 0.0, 1.0, 22.0},
                            perf::Model{1.7e6, 0.0, 1.0, 156.0},
                            perf::Model{1.34e7, 0.0, 1.0, 271.0},
                            perf::Model{8.1e6, 0.0, 1.0, 395.0}});
  const auto sol = solve_layout(p);
  const auto ocn = sol.nodes[index(Component::Ocn)];
  const auto& allowed = ocean_allowed_nodes(Resolution::EighthDeg);
  EXPECT_NE(std::find(allowed.begin(), allowed.end(), ocn), allowed.end());
  // 19460 exceeds what atm+ocn budget allows here, so it must be <= 6124.
  EXPECT_LE(ocn, 6124);
}

TEST(BuildLayoutMinlp, ConvexModelsRequired) {
  auto models = simple_models();
  models[0].b = 1.0;
  models[0].c = 0.5;  // non-convex
  LayoutProblem p;
  p.layout = Layout::Hybrid;
  p.total_nodes = 128;
  p.models = models;
  for (auto& ch : p.choices) {
    ch.lo = 1;
    ch.hi = 128;
  }
  EXPECT_THROW(build_layout_minlp(p), ContractViolation);
}

TEST(BuildLayoutMinlp, ExposesNodeVariables) {
  auto p = make_problem(Resolution::Deg1, Layout::Hybrid, 128, simple_models());
  std::array<std::size_t, 4> vars{};
  const auto m = build_layout_minlp(p, &vars);
  // Node variables must carry the component names.
  EXPECT_EQ(m.var_name(vars[index(Component::Lnd)]), "n_lnd");
  EXPECT_EQ(m.var_name(vars[index(Component::Ocn)]), "n_ocn");
}

class LayoutRandomModels : public ::testing::TestWithParam<int> {};

TEST_P(LayoutRandomModels, SolutionsAlwaysFeasible) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 9341 + 3);
  std::array<perf::Model, 4> models;
  for (auto& m : models) {
    m.a = rng.uniform(100.0, 50000.0);
    m.b = 0.0;
    m.c = 1.0;
    m.d = rng.uniform(0.1, 50.0);
  }
  const long long n = 1LL << rng.uniform_int(7, 12);
  const auto layout = static_cast<Layout>(rng.uniform_int(1, 3));
  auto p = make_problem(Resolution::Deg1, layout, n, models);
  const auto sol = solve_layout(p);
  ASSERT_EQ(sol.stats.status, minlp::BnbStatus::Optimal);
  EXPECT_NEAR(sol.predicted_total, layout_total(layout, sol.predicted_seconds),
              1e-3 * sol.predicted_total);
  for (Component c : kComponents) {
    EXPECT_GE(sol.nodes[index(c)], 1);
    EXPECT_LE(sol.nodes[index(c)], n);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, LayoutRandomModels, ::testing::Range(0, 15));

}  // namespace
}  // namespace hslb::cesm
