// hslb::Controller decision logic against a scripted fake application:
// trigger thresholds, hysteresis, the migration-aware accept test, the
// failure bypass, and the refit-on-drift path — all without a simulator,
// so each rule is pinned in isolation.
#include "hslb/controller.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "perf/fit.hpp"

namespace hslb {
namespace {

perf::SampleSet exact_samples(double a = 120.0, double d = 2.0) {
  perf::SampleSet s;
  for (double n : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0})
    s.push_back({n, a / n + d});
  return s;
}

/// An epoch-capable application driven by a per-epoch script. resolve()
/// proposes a fresh allocation (distinct node count each call) with
/// configurable predicted gain; migration has a configurable stall.
class FakeApp : public Application {
 public:
  struct EpochScript {
    double imbalance = 0.0;
    bool failure = false;
    double epochs_remaining = 1.0;
    std::vector<perf::Observed> observations;
  };

  std::vector<EpochScript> script;
  double incumbent_predicted = 2.0;  ///< incumbent per-epoch prediction
  double proposal_predicted = 1.0;   ///< proposal per-epoch prediction
  double migration_stall = 0.0;

  std::size_t begins = 0, resolves = 0, applies = 0, finishes = 0;
  /// Refitted prediction for the probed width at the last resolve call.
  double last_resolve_pred8 = 0.0;

  std::string name() const override { return "fake"; }
  GatherPlan gather_plan() override { return {}; }
  double probe(const std::string&, long long, std::uint64_t) override {
    return 0.0;
  }
  SolveOutcome solve(
      const std::vector<std::pair<std::string, perf::FitResult>>&) override {
    return {};
  }
  double execute(const SolveOutcome&) override { return 0.0; }

  bool supports_epochs() const override { return true; }
  void begin_epochs(const SolveOutcome&) override { ++begins; }
  EpochOutcome execute_epoch(std::size_t epoch) override {
    EpochOutcome eo;
    if (epoch >= script.size()) {
      eo.done = true;
      return eo;
    }
    const EpochScript& s = script[epoch];
    eo.imbalance = s.imbalance;
    eo.failure_detected = s.failure;
    eo.epochs_remaining = s.epochs_remaining;
    eo.observations = s.observations;
    eo.epoch_seconds = 1.0;
    return eo;
  }
  ResolveOutcome resolve(
      const std::vector<std::pair<std::string, perf::FitResult>>& fits,
      const SolveOutcome&) override {
    ++resolves;
    if (!fits.empty()) last_resolve_pred8 = fits[0].second.cost.eval(8.0);
    ResolveOutcome r;
    // A distinct allocation each call, so repeated proposals are never
    // rejected as "same allocation".
    r.solution.allocation.tasks = {
        {"t", static_cast<long long>(100 + resolves), proposal_predicted}};
    r.solution.predicted_total = proposal_predicted;
    r.incumbent_predicted = incumbent_predicted;
    return r;
  }
  double migration_cost(const SolveOutcome&,
                        const SolveOutcome&) const override {
    return migration_stall;
  }
  double apply_allocation(const SolveOutcome&) override {
    ++applies;
    return migration_stall;
  }
  double finish_epochs() override {
    ++finishes;
    return 42.0;
  }
};

/// Gather table + fitted models for the single task "t".
struct World {
  perf::BenchTable bench;
  std::vector<std::pair<std::string, perf::FitResult>> fits;
  SolveOutcome solution;
};

World make_world() {
  World w;
  w.bench.tasks.push_back({"t", exact_samples()});
  w.fits.emplace_back("t", perf::fit(exact_samples()));
  w.solution.allocation.tasks = {{"t", 4, 32.0}};
  w.solution.predicted_total = 32.0;
  return w;
}

TEST(Controller, QuietRunNeverResolves) {
  FakeApp app;
  app.script.resize(3);  // three quiet epochs
  const World w = make_world();
  const Controller ctl({.adaptive = true}, {});
  const AdaptiveResult r = ctl.run(app, w.bench, w.fits, w.solution);

  EXPECT_EQ(r.triggers, 0u);
  EXPECT_EQ(r.rebalances, 0u);
  EXPECT_EQ(r.refits, 0u);
  EXPECT_EQ(app.resolves, 0u);
  EXPECT_EQ(app.applies, 0u);
  EXPECT_EQ(app.begins, 1u);
  EXPECT_EQ(app.finishes, 1u);
  EXPECT_EQ(r.migration_seconds, 0.0);
  EXPECT_EQ(r.actual_total, 42.0);
  // The initial allocation stays in force.
  EXPECT_EQ(r.solution.allocation.tasks[0].nodes, 4);
}

TEST(Controller, ImbalanceAboveThresholdRebalances) {
  FakeApp app;
  app.script.resize(2);
  app.script[0].imbalance = 0.5;  // > default 0.25
  app.script[0].epochs_remaining = 5.0;
  const World w = make_world();
  const Controller ctl({.adaptive = true}, {});
  const AdaptiveResult r = ctl.run(app, w.bench, w.fits, w.solution);

  EXPECT_EQ(r.triggers, 1u);
  EXPECT_EQ(r.rebalances, 1u);
  EXPECT_EQ(app.resolves, 1u);
  EXPECT_EQ(app.applies, 1u);
  EXPECT_EQ(r.solution.allocation.tasks[0].nodes, 101);
}

TEST(Controller, ImbalanceBelowThresholdIsIgnored) {
  FakeApp app;
  app.script.resize(2);
  app.script[0].imbalance = 0.2;  // < default 0.25
  const World w = make_world();
  const Controller ctl({.adaptive = true}, {});
  const AdaptiveResult r = ctl.run(app, w.bench, w.fits, w.solution);
  EXPECT_EQ(r.triggers, 0u);
  EXPECT_EQ(app.resolves, 0u);
  (void)r;
}

TEST(Controller, MigrationAwareAcceptRejectsUnprofitableMove) {
  FakeApp app;
  app.script.resize(2);
  app.script[0].imbalance = 0.5;
  app.script[0].epochs_remaining = 2.0;
  app.incumbent_predicted = 1.0;
  app.proposal_predicted = 0.9;  // gain 0.1/epoch, 0.2 over the run
  app.migration_stall = 0.5;     // costs more than it saves
  const World w = make_world();
  const Controller ctl({.adaptive = true}, {});
  const AdaptiveResult r = ctl.run(app, w.bench, w.fits, w.solution);

  EXPECT_EQ(r.triggers, 1u);
  EXPECT_EQ(app.resolves, 1u);
  EXPECT_EQ(r.rebalances, 0u);  // proposal rejected
  EXPECT_EQ(app.applies, 0u);
  EXPECT_EQ(r.migration_seconds, 0.0);
}

TEST(Controller, MigrationAwareOffAcceptsAnyImprovement) {
  FakeApp app;
  app.script.resize(2);
  app.script[0].imbalance = 0.5;
  app.script[0].epochs_remaining = 2.0;
  app.incumbent_predicted = 1.0;
  app.proposal_predicted = 0.9;
  app.migration_stall = 0.5;
  const World w = make_world();
  RebalancePolicy policy{.adaptive = true};
  policy.migration_aware = false;
  const Controller ctl(policy, {});
  const AdaptiveResult r = ctl.run(app, w.bench, w.fits, w.solution);
  EXPECT_EQ(r.rebalances, 1u);
  EXPECT_EQ(r.migration_seconds, 0.5);  // the stall is still charged
}

TEST(Controller, FailureBypassesAcceptTest) {
  FakeApp app;
  app.script.resize(2);
  app.script[0].failure = true;
  // The proposal is *worse* and migration is expensive; a failure accepts
  // anyway — any feasible allocation beats a wedged run.
  app.incumbent_predicted = 1.0;
  app.proposal_predicted = 5.0;
  app.migration_stall = 10.0;
  const World w = make_world();
  const Controller ctl({.adaptive = true}, {});
  const AdaptiveResult r = ctl.run(app, w.bench, w.fits, w.solution);

  EXPECT_EQ(r.rebalances, 1u);
  EXPECT_EQ(app.applies, 1u);
  EXPECT_EQ(r.migration_seconds, 10.0);
}

TEST(Controller, HysteresisGatesBothFirstAndRepeatTriggers) {
  FakeApp app;
  app.script.resize(6);
  for (auto& e : app.script) {
    e.imbalance = 0.5;
    e.epochs_remaining = 5.0;
  }
  const World w = make_world();
  RebalancePolicy policy{.adaptive = true};
  policy.min_epoch_gap = 3;
  const Controller ctl(policy, {});
  const AdaptiveResult r = ctl.run(app, w.bench, w.fits, w.solution);

  // Epochs 0-5 all violate the threshold; the gap admits only epochs 2
  // (first allowed: epoch + 1 >= 3) and 5 (3 epochs after the accept).
  EXPECT_EQ(r.triggers, 2u);
  EXPECT_EQ(r.rebalances, 2u);
}

TEST(Controller, MaxEpochsStopsMonitoringNotExecution) {
  FakeApp app;
  app.script.resize(5);
  for (auto& e : app.script) {
    e.imbalance = 0.5;
    e.epochs_remaining = 5.0;
  }
  const World w = make_world();
  RebalancePolicy policy{.adaptive = true};
  policy.max_epochs = 2;
  const Controller ctl(policy, {});
  const AdaptiveResult r = ctl.run(app, w.bench, w.fits, w.solution);

  // Only epochs 0 and 1 are monitored; execution still runs to done.
  EXPECT_EQ(r.triggers, 2u);
  EXPECT_EQ(app.finishes, 1u);
  EXPECT_EQ(r.actual_total, 42.0);
}

TEST(Controller, DriftTriggersRefitAndResolvesUnderNewModels) {
  FakeApp app;
  app.script.resize(3);
  // Quiet imbalance, but the task runs 2x slower than the fitted model at
  // every observed width.
  for (double n : {4.0, 8.0}) {
    app.script[0].observations.push_back(
        {"t", n, 2.0 * (120.0 / n + 2.0), 0});
  }
  const World w = make_world();
  const double stale_pred8 = w.fits[0].second.cost.eval(8.0);
  const Controller ctl({.adaptive = true}, {});
  const AdaptiveResult r = ctl.run(app, w.bench, w.fits, w.solution);

  EXPECT_GE(r.triggers, 1u);       // drift 1.0 > default 0.10
  EXPECT_GE(r.refits, 1u);
  EXPECT_GE(r.max_drift, 0.9);
  // The resolve saw refitted models that track the slower truth.
  EXPECT_GT(app.last_resolve_pred8, stale_pred8);
  // And the result carries the refitted models out.
  EXPECT_GT(r.fits[0].second.cost.eval(8.0), stale_pred8);
}

TEST(Controller, DecisionsArePureFunctionsOfTheScript) {
  const World w = make_world();
  auto run_once = [&] {
    FakeApp app;
    app.script.resize(4);
    app.script[1].imbalance = 0.5;
    app.script[2].failure = true;
    const Controller ctl({.adaptive = true}, {});
    return ctl.run(app, w.bench, w.fits, w.solution);
  };
  const AdaptiveResult a = run_once();
  const AdaptiveResult b = run_once();
  EXPECT_EQ(a.triggers, b.triggers);
  EXPECT_EQ(a.rebalances, b.rebalances);
  EXPECT_EQ(a.refits, b.refits);
  EXPECT_EQ(a.migration_seconds, b.migration_seconds);
  EXPECT_EQ(a.solution.allocation.tasks[0].nodes,
            b.solution.allocation.tasks[0].nodes);
}

}  // namespace
}  // namespace hslb
