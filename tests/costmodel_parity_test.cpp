// Parity sweep guarding the cost-term refactor: with only the power-law
// term registered (the default everywhere), fits, greedy objectives,
// branch-and-bound node/cut counts, and the full FMO pipeline must equal
// the pre-refactor behaviour bit for bit. The expected values below were
// captured from the seed implementation (hard-coded perf::Model paths)
// and are compared with exact double equality — any drift in the float
// operation sequence fails this test.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "fmo/cost.hpp"
#include "fmo/driver.hpp"
#include "fmo/molecule.hpp"
#include "hslb/budget.hpp"
#include "minlp/bnb.hpp"
#include "perf/fit.hpp"
#include "sim/noise.hpp"

namespace hslb {
namespace {

perf::SampleSet golden_samples(std::uint64_t seed) {
  const perf::Model truth{5000.0, 2e-4, 1.3, 12.0};
  perf::SampleSet samples;
  for (long long n : {1, 4, 16, 64, 256}) {
    const std::uint64_t key = derive_seed(seed, static_cast<std::uint64_t>(n));
    sim::NoiseModel noise(0.03, key);
    samples.push_back({static_cast<double>(n),
                       noise.perturb(truth.eval(static_cast<double>(n)))});
  }
  return samples;
}

perf::FitResult golden_fit(std::uint64_t seed) {
  perf::FitOptions opt;
  opt.seed = seed;
  return perf::fit(golden_samples(seed), opt);
}

TEST(CostModelParity, FitsAreBitIdenticalToSeed) {
  {
    const auto fit = golden_fit(11);
    EXPECT_EQ(fit.model.a, 4852.7227452465531);
    EXPECT_EQ(fit.model.b, 0.0);
    EXPECT_EQ(fit.model.c, 3.0);
    EXPECT_EQ(fit.model.d, 22.561277017195632);
    EXPECT_EQ(fit.sse, 765.95854065305002);
    EXPECT_EQ(fit.r2, 0.99995431161993931);
  }
  {
    const auto fit = golden_fit(12);
    EXPECT_EQ(fit.model.a, 5039.0752858264186);
    EXPECT_EQ(fit.model.b, 6.3192857126433021e-08);
    EXPECT_EQ(fit.model.c, 3.0);
    EXPECT_EQ(fit.model.d, 13.491366531443596);
    EXPECT_EQ(fit.sse, 903.17159304635004);
    EXPECT_EQ(fit.r2, 0.99995002477933748);
  }
  {
    const auto fit = golden_fit(13);
    EXPECT_EQ(fit.model.a, 5106.4623118795407);
    EXPECT_EQ(fit.model.b, 9.4506179119124146e-07);
    EXPECT_EQ(fit.model.c, 2.8394031140555058);
    EXPECT_EQ(fit.model.d, 6.301584311943226);
    EXPECT_EQ(fit.sse, 354.90569726654275);
    EXPECT_EQ(fit.r2, 0.99998086100133543);
  }
}

TEST(CostModelParity, FitCostEqualsClassicFit) {
  // The generic entry point with an explicit single-powerlaw spec must take
  // the exact same path as perf::fit.
  perf::FitOptions opt;
  opt.seed = 11;
  const auto samples = golden_samples(11);
  const auto classic = perf::fit(samples, opt);
  const auto generic =
      perf::fit_cost(samples, {perf::power_law_term()}, opt);
  EXPECT_EQ(generic.model.a, classic.model.a);
  EXPECT_EQ(generic.model.b, classic.model.b);
  EXPECT_EQ(generic.model.c, classic.model.c);
  EXPECT_EQ(generic.model.d, classic.model.d);
  EXPECT_EQ(generic.sse, classic.sse);
  for (double n : {1.0, 4.0, 96.0})
    EXPECT_EQ(generic.cost.eval(n), classic.model.eval(n));
}

class SolveParity : public ::testing::Test {
 protected:
  SolveParity()
      : sys_(fmo::water_cluster({.fragments = 12,
                                 .merge_fraction = 0.4,
                                 .scf_cutoff_angstrom = 4.5,
                                 .seed = 3})) {
    for (const auto& f : sys_.fragments)
      tasks_.push_back(BudgetTask{f.name, cost_.monomer(f), 1, kNodes});
  }

  static constexpr long long kNodes = 96;
  fmo::System sys_;
  fmo::CostModel cost_;
  std::vector<BudgetTask> tasks_;
};

TEST_F(SolveParity, GreedyObjectivesMatchSeed) {
  {
    const auto alloc = solve_budget(tasks_, kNodes, Objective::MinMax);
    EXPECT_EQ(alloc.predicted_total, 0.42045591705358792);
    const long long expect[] = {6, 22, 1, 6, 1, 6, 7, 22, 22, 1, 1, 1};
    ASSERT_EQ(alloc.tasks.size(), 12u);
    for (std::size_t f = 0; f < 12; ++f)
      EXPECT_EQ(alloc.tasks[f].nodes, expect[f]) << "fragment " << f;
  }
  {
    const auto alloc = solve_budget(tasks_, kNodes, Objective::MinSum);
    EXPECT_EQ(alloc.predicted_total, 3.4169373140021913);
    const long long expect[] = {8, 16, 3, 8, 3, 8, 9, 16, 16, 3, 3, 3};
    for (std::size_t f = 0; f < 12; ++f)
      EXPECT_EQ(alloc.tasks[f].nodes, expect[f]) << "fragment " << f;
  }
  {
    const auto alloc = solve_budget(tasks_, kNodes, Objective::MaxMin);
    EXPECT_EQ(alloc.predicted_total, 0.30906374999999997);
    const long long expect[] = {6, 22, 1, 6, 1, 6, 7, 22, 22, 1, 1, 1};
    for (std::size_t f = 0; f < 12; ++f)
      EXPECT_EQ(alloc.tasks[f].nodes, expect[f]) << "fragment " << f;
  }
}

TEST_F(SolveParity, BranchAndBoundMatchesSeedForEveryThreadCount) {
  for (std::size_t threads : {1u, 2u, 4u}) {
    const auto model = build_budget_minlp(tasks_, kNodes, Objective::MinMax);
    minlp::BnbOptions opt;
    opt.solver_threads = threads;
    const auto res = minlp::solve(model, opt);
    EXPECT_EQ(res.nodes, 19u) << threads << " threads";
    EXPECT_EQ(res.cuts, 84u) << threads << " threads";
    EXPECT_EQ(res.objective, 0.42045591705358787) << threads << " threads";
    const double expect[] = {7, 22, 1, 6, 1, 6, 6, 22, 22, 1, 1, 1};
    for (std::size_t f = 0; f < 12; ++f)
      EXPECT_EQ(res.x[f], expect[f]) << threads << " threads, fragment " << f;
  }
}

TEST_F(SolveParity, PipelineMatchesSeedEndToEnd) {
  fmo::PipelineOptions popt;
  popt.threads = 1;
  const auto res = fmo::run_pipeline(sys_, cost_, kNodes, popt);
  EXPECT_EQ(res.predicted_scc_seconds, 4.967302023377937);
  EXPECT_EQ(res.hslb.scc_seconds, 5.0223713458636121);
  const long long expect[] = {6, 20, 1, 6, 1, 6, 6, 27, 20, 1, 1, 1};
  ASSERT_EQ(res.allocation.tasks.size(), 12u);
  for (std::size_t f = 0; f < 12; ++f)
    EXPECT_EQ(res.allocation.tasks[f].nodes, expect[f]) << "fragment " << f;
  EXPECT_EQ(res.fits[0].second.model.a, 2.3673441649649964);
  EXPECT_EQ(res.fits[0].second.model.b, 0.0);
  EXPECT_EQ(res.fits[0].second.model.c, 1.0);
  EXPECT_EQ(res.fits[0].second.model.d, 0.012342379451217734);
  // The compute-only pipeline reports a single powerlaw term row.
  ASSERT_EQ(res.report.terms.size(), 1u);
  EXPECT_EQ(res.report.terms[0].term, "powerlaw");
  EXPECT_GT(res.report.terms[0].actual_seconds, 0.0);
}

}  // namespace
}  // namespace hslb
