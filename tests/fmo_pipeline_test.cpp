#include "fmo/driver.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/contracts.hpp"
#include "fmo/molecule.hpp"
#include "minlp/bnb.hpp"

namespace hslb::fmo {
namespace {

TEST(FmoPipeline, AllStepsProduceOutput) {
  const auto sys = water_cluster({.fragments = 12, .merge_fraction = 0.4,
                                  .scf_cutoff_angstrom = 4.5, .seed = 40});
  CostModel cost;
  const auto res = run_pipeline(sys, cost, 96);

  // Gather: every fragment probed.
  EXPECT_EQ(res.bench.tasks.size(), 12u);
  // Fit: good quality on a smooth simulated substrate.
  EXPECT_EQ(res.fits.size(), 12u);
  EXPECT_GT(res.min_r2, 0.95);
  EXPECT_GT(res.mean_r2, 0.99);
  // Solve: every fragment got >= 1 node within budget.
  EXPECT_EQ(res.allocation.tasks.size(), 12u);
  EXPECT_LE(res.allocation.total_nodes(), 96);
  for (const auto& t : res.allocation.tasks) EXPECT_GE(t.nodes, 1);
  // Execute: both runs happened.
  EXPECT_GT(res.hslb.total_seconds, 0.0);
  EXPECT_GT(res.dlb.total_seconds, 0.0);
  EXPECT_GT(res.predicted_scc_seconds, 0.0);
}

TEST(FmoPipeline, PredictionCloseToActual) {
  // FMO-5: static predictions land within a few percent of the executed
  // SCC loop on the (smooth) simulated substrate.
  const auto sys = water_cluster({.fragments = 16, .merge_fraction = 0.4,
                                  .scf_cutoff_angstrom = 4.5, .seed = 41});
  CostModel cost;
  PipelineOptions opt;
  opt.run.noise_cv = 0.01;
  opt.bench_noise_cv = 0.01;
  const auto res = run_pipeline(sys, cost, 128, opt);
  const double rel = std::fabs(res.predicted_scc_seconds - res.hslb.scc_seconds) /
                     res.hslb.scc_seconds;
  EXPECT_LT(rel, 0.10);
}

TEST(FmoPipeline, LargerFragmentsGetMoreNodes) {
  const auto sys = water_cluster({.fragments = 20, .merge_fraction = 0.5,
                                  .scf_cutoff_angstrom = 4.5, .seed = 42});
  CostModel cost;
  const auto res = run_pipeline(sys, cost, 200);
  // Compare average allocation of the largest vs smallest size class.
  double large_nodes = 0.0, small_nodes = 0.0;
  int large_count = 0, small_count = 0;
  for (std::size_t f = 0; f < sys.fragments.size(); ++f) {
    const auto n = res.allocation.find(sys.fragments[f].name).nodes;
    if (sys.fragments[f].basis_functions >= 75) {
      large_nodes += static_cast<double>(n);
      ++large_count;
    } else if (sys.fragments[f].basis_functions == 25) {
      small_nodes += static_cast<double>(n);
      ++small_count;
    }
  }
  if (large_count > 0 && small_count > 0) {
    EXPECT_GT(large_nodes / large_count, small_nodes / small_count);
  }
}

TEST(FmoPipeline, DeterministicPerSeed) {
  const auto sys = water_cluster({.fragments = 8, .merge_fraction = 0.4,
                                  .scf_cutoff_angstrom = 4.5, .seed = 43});
  CostModel cost;
  const auto a = run_pipeline(sys, cost, 64);
  const auto b = run_pipeline(sys, cost, 64);
  EXPECT_EQ(a.hslb.total_seconds, b.hslb.total_seconds);
  EXPECT_EQ(a.dlb.total_seconds, b.dlb.total_seconds);
  for (std::size_t i = 0; i < a.allocation.tasks.size(); ++i)
    EXPECT_EQ(a.allocation.tasks[i].nodes, b.allocation.tasks[i].nodes);
}

TEST(FmoPipeline, RequiresEnoughNodes) {
  const auto sys = water_cluster({.fragments = 16, .merge_fraction = 0.0,
                                  .scf_cutoff_angstrom = 4.5, .seed = 44});
  CostModel cost;
  EXPECT_THROW(run_pipeline(sys, cost, 8), ContractViolation);
}

TEST(FmoPipeline, GreedyMatchesBnbOnFittedModels) {
  // FMO-6 on the real pipeline artifacts (not just synthetic models).
  const auto sys = water_cluster({.fragments = 6, .merge_fraction = 0.5,
                                  .scf_cutoff_angstrom = 4.5, .seed = 45});
  CostModel cost;
  const auto res = run_pipeline(sys, cost, 24);
  const auto tasks = make_budget_tasks(sys, res.fits, probe_ceiling(sys, 24));
  const auto model = build_budget_minlp(tasks, 24, Objective::MinMax);
  const auto bnb = minlp::solve(model);
  ASSERT_EQ(bnb.status, minlp::BnbStatus::Optimal);
  EXPECT_NEAR(bnb.objective, res.allocation.predicted_total,
              1e-4 * (1.0 + bnb.objective));
}

TEST(FmoPipeline, DimerProbingImprovesOnFallback) {
  // With probing disabled the dimer phase falls back to size-proxy ECT on
  // the monomer groups; probing enables the dimer-wave re-partition, which
  // must not be slower (and is typically much faster at scale).
  const auto sys = water_cluster({.fragments = 24, .merge_fraction = 0.4,
                                  .scf_cutoff_angstrom = 4.5, .seed = 47});
  CostModel cost;
  PipelineOptions with, without;
  without.dimer_probe_count = 0;
  const auto a = run_pipeline(sys, cost, 24 * 32, with);
  const auto b = run_pipeline(sys, cost, 24 * 32, without);
  EXPECT_TRUE(b.dimer_predictions.models.empty());
  EXPECT_EQ(a.dimer_predictions.models.size(), sys.scf_dimers.size());
  EXPECT_GT(a.dimer_min_r2, 0.95);
  EXPECT_LE(a.hslb.dimer_seconds, b.hslb.dimer_seconds * 1.1);
}

TEST(FmoPipeline, IdenticalAcrossThreadCounts) {
  // The parallel gather/fit/dimer paths must not change any result: probe
  // noise is derived from the probe coordinates, never from shared state.
  const auto sys = water_cluster({.fragments = 12, .merge_fraction = 0.4,
                                  .scf_cutoff_angstrom = 4.5, .seed = 48});
  CostModel cost;
  PipelineOptions serial, wide;
  serial.threads = 1;
  wide.threads = 4;
  const auto a = run_pipeline(sys, cost, 96, serial);
  const auto b = run_pipeline(sys, cost, 96, wide);
  ASSERT_EQ(a.allocation.tasks.size(), b.allocation.tasks.size());
  for (std::size_t i = 0; i < a.allocation.tasks.size(); ++i) {
    EXPECT_EQ(a.allocation.tasks[i].nodes, b.allocation.tasks[i].nodes);
    EXPECT_DOUBLE_EQ(a.allocation.tasks[i].predicted_seconds,
                     b.allocation.tasks[i].predicted_seconds);
  }
  EXPECT_DOUBLE_EQ(a.allocation.predicted_total, b.allocation.predicted_total);
  EXPECT_DOUBLE_EQ(a.predicted_scc_seconds, b.predicted_scc_seconds);
  EXPECT_DOUBLE_EQ(a.hslb.total_seconds, b.hslb.total_seconds);
  EXPECT_DOUBLE_EQ(a.dlb.total_seconds, b.dlb.total_seconds);
}

TEST(FmoPipeline, ReportMatchesResult) {
  // The engine report is a faithful view of the run's artifacts.
  const auto sys = water_cluster({.fragments = 8, .merge_fraction = 0.4,
                                  .scf_cutoff_angstrom = 4.5, .seed = 49});
  CostModel cost;
  const auto res = run_pipeline(sys, cost, 64);
  EXPECT_EQ(res.report.application.rfind("fmo", 0), 0u);
  EXPECT_EQ(res.report.fits.size(), res.fits.size());
  EXPECT_DOUBLE_EQ(res.report.min_r2(), res.min_r2);
  EXPECT_DOUBLE_EQ(res.report.mean_r2(), res.mean_r2);
  EXPECT_DOUBLE_EQ(res.report.predicted_total, res.predicted_scc_seconds);
  EXPECT_DOUBLE_EQ(res.report.actual_total, res.hslb.scc_seconds);
  std::size_t probes = 0;
  for (const auto& t : res.bench.tasks) probes += t.samples.size();
  EXPECT_EQ(res.report.probes, probes);
  EXPECT_NE(res.report.str().find("fmo"), std::string::npos);
}

TEST(ProbeCeiling, ScalesWithBudget) {
  const auto sys = water_cluster({.fragments = 16, .merge_fraction = 0.0,
                                  .scf_cutoff_angstrom = 4.5, .seed = 46});
  EXPECT_GE(probe_ceiling(sys, 16), 1);
  EXPECT_GT(probe_ceiling(sys, 1600), probe_ceiling(sys, 64));
  EXPECT_LE(probe_ceiling(sys, 1600), 1600 - 15);
}

}  // namespace
}  // namespace hslb::fmo
