#include "common/csv.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"

namespace hslb::csv {
namespace {

TEST(Csv, RoundTripSimple) {
  Document doc;
  doc.header = {"a", "b"};
  doc.rows = {{"1", "2"}, {"3", "4"}};
  const auto parsed = parse(write(doc));
  EXPECT_EQ(parsed.header, doc.header);
  EXPECT_EQ(parsed.rows, doc.rows);
}

TEST(Csv, QuotedCommaAndNewline) {
  Document doc;
  doc.header = {"name", "value"};
  doc.rows = {{"a,b", "line1\nline2"}, {"quote\"inside", "plain"}};
  const auto parsed = parse(write(doc));
  EXPECT_EQ(parsed.rows, doc.rows);
}

TEST(Csv, ParsesCrlf) {
  const auto doc = parse("x,y\r\n1,2\r\n");
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0][0], "1");
  EXPECT_EQ(doc.rows[0][1], "2");
}

TEST(Csv, MissingTrailingNewlineOk) {
  const auto doc = parse("x,y\n1,2");
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0][1], "2");
}

TEST(Csv, EmptyTrailingFieldPreserved) {
  const auto doc = parse("x,y\n1,\n");
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0][1], "");
}

TEST(Csv, RaggedRowRejected) {
  EXPECT_THROW(parse("x,y\n1\n"), ContractViolation);
}

TEST(Csv, UnterminatedQuoteRejected) {
  EXPECT_THROW(parse("x\n\"abc\n"), ContractViolation);
}

TEST(Csv, ColumnLookup) {
  const auto doc = parse("task,nodes,seconds\natm,10,1.5\n");
  EXPECT_EQ(doc.column("nodes"), 1u);
  EXPECT_THROW(doc.column("missing"), ContractViolation);
}

TEST(Csv, HeaderOnlyDocument) {
  const auto doc = parse("a,b\n");
  EXPECT_TRUE(doc.rows.empty());
  EXPECT_EQ(doc.header.size(), 2u);
}

TEST(Csv, FileRoundTrip) {
  Document doc;
  doc.header = {"k", "v"};
  doc.rows = {{"alpha", "1"}};
  const std::string path = ::testing::TempDir() + "/hslb_csv_test.csv";
  write_file(path, doc);
  const auto loaded = read_file(path);
  EXPECT_EQ(loaded.rows, doc.rows);
}

TEST(Csv, ReadMissingFileThrows) {
  EXPECT_THROW(read_file("/nonexistent/definitely_missing.csv"),
               ContractViolation);
}

}  // namespace
}  // namespace hslb::csv
