#include "perf/modelio.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"

namespace hslb::perf {
namespace {

TEST(ModelIo, RoundTripPreservesValues) {
  std::vector<NamedModel> models{
      {"atm", Model{27459.7, 1.93438e-4, 1.2285, 43.7318}, 1, 1664},
      {"ocn", Model{7649.0, 0.0, 1.0, 45.6145}, 2, 768},
  };
  const auto loaded = models_from_csv(models_to_csv(models));
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].task, "atm");
  EXPECT_DOUBLE_EQ(loaded[0].model.a, models[0].model.a);
  EXPECT_DOUBLE_EQ(loaded[0].model.b, models[0].model.b);
  EXPECT_DOUBLE_EQ(loaded[0].model.c, models[0].model.c);
  EXPECT_DOUBLE_EQ(loaded[0].model.d, models[0].model.d);
  EXPECT_EQ(loaded[0].max_nodes, 1664);
  EXPECT_EQ(loaded[1].min_nodes, 2);
}

TEST(ModelIo, RangeColumnsOptional) {
  const auto loaded =
      models_from_csv("task,a,b,c,d\nx,10.5,0,1,2.5\n");
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_DOUBLE_EQ(loaded[0].model.a, 10.5);
  EXPECT_EQ(loaded[0].min_nodes, 1);
  EXPECT_EQ(loaded[0].max_nodes, 0);
}

TEST(ModelIo, NegativeParametersRejected) {
  EXPECT_THROW(models_from_csv("task,a,b,c,d\nx,-1,0,1,0\n"),
               ContractViolation);
}

TEST(ModelIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/hslb_models_test.csv";
  std::vector<NamedModel> models{{"ice", Model{8406.7, 0.0, 1.0, 12.47}, 1, 0}};
  save_models(path, models);
  const auto loaded = load_models(path);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_DOUBLE_EQ(loaded[0].model.d, 12.47);
}

TEST(ModelIo, MissingColumnRejected) {
  EXPECT_THROW(models_from_csv("task,a,b,c\nx,1,0,1\n"), ContractViolation);
}

}  // namespace
}  // namespace hslb::perf
