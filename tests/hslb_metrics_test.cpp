// Pins the optimal-LB metric definitions (arXiv:2104.01688) against
// hand-computed values: imbalance = max/mean - 1 over *busy* units,
// percent imbalance lambda = (max/mean - 1) x 100 over *all* units, sigma
// = (stddev/mean) x 100 over all units — and checks Metrics::from_trace
// agrees with the trace's own accessors exactly.
#include <gtest/gtest.h>

#include <cmath>

#include "hslb/metrics.hpp"
#include "sim/trace.hpp"

namespace hslb {
namespace {

TEST(Metrics, HandComputedLoads) {
  // Four units busy 4, 2, 2, 0 seconds; makespan 4.
  const Metrics m = Metrics::from_loads({4.0, 2.0, 2.0, 0.0}, 4.0);
  EXPECT_DOUBLE_EQ(m.makespan, 4.0);
  EXPECT_DOUBLE_EQ(m.busy_unit_seconds, 8.0);
  // efficiency = 8 / (4 s x 4 units) = 0.5.
  EXPECT_DOUBLE_EQ(m.efficiency, 0.5);
  // Busy-only imbalance: mean over {4,2,2} = 8/3, max 4 -> 4/(8/3) - 1.
  EXPECT_DOUBLE_EQ(m.imbalance, 4.0 / (8.0 / 3.0) - 1.0);
  // Lambda counts the idle unit: mean over all four = 2, so (4/2 - 1)x100.
  EXPECT_DOUBLE_EQ(m.percent_imbalance, 100.0);
  // sigma = stddev/mean x 100 over {4,2,2,0}: mean 2, sample variance
  // (4+0+0+4)/3 = 8/3.
  EXPECT_DOUBLE_EQ(m.sigma_percent, std::sqrt(8.0 / 3.0) / 2.0 * 100.0);
}

TEST(Metrics, PerfectlyBalancedLoadsHaveZeroImbalance) {
  const Metrics m = Metrics::from_loads({3.0, 3.0, 3.0}, 3.0);
  EXPECT_DOUBLE_EQ(m.efficiency, 1.0);
  EXPECT_DOUBLE_EQ(m.imbalance, 0.0);
  EXPECT_DOUBLE_EQ(m.percent_imbalance, 0.0);
  EXPECT_DOUBLE_EQ(m.sigma_percent, 0.0);
}

TEST(Metrics, EmptyLoads) {
  const Metrics m = Metrics::from_loads({}, 0.0);
  EXPECT_DOUBLE_EQ(m.makespan, 0.0);
  EXPECT_DOUBLE_EQ(m.busy_unit_seconds, 0.0);
  EXPECT_DOUBLE_EQ(m.efficiency, 1.0);
  EXPECT_DOUBLE_EQ(m.imbalance, 0.0);
  EXPECT_DOUBLE_EQ(m.percent_imbalance, 0.0);
}

sim::Trace hand_trace() {
  // Three nodes: node 0 busy [0,4), node 1 busy [0,2), node 2 idle.
  sim::Trace t;
  t.machine = "hand";
  t.nodes = 3;
  t.events.push_back({"a", "p", 0, 1, 0.0, 4.0, false});
  t.events.push_back({"b", "p", 1, 1, 0.0, 2.0, false});
  return t;
}

TEST(Metrics, HandComputedTrace) {
  const auto t = hand_trace();
  const Metrics m = Metrics::from_trace(t);
  EXPECT_DOUBLE_EQ(m.makespan, 4.0);
  EXPECT_DOUBLE_EQ(m.busy_unit_seconds, 6.0);
  EXPECT_DOUBLE_EQ(m.efficiency, 6.0 / 12.0);
  // Busy nodes {4, 2}: mean 3, max 4.
  EXPECT_DOUBLE_EQ(m.imbalance, 4.0 / 3.0 - 1.0);
  // All nodes {4, 2, 0}: mean 2 -> lambda = 100%.
  EXPECT_DOUBLE_EQ(m.percent_imbalance, 100.0);
}

TEST(Metrics, FromTraceMatchesTraceAccessorsExactly) {
  const auto t = hand_trace();
  const Metrics m = Metrics::from_trace(t);
  // Bit-identical to the trace's own derivations — the parity the report
  // refactor relies on.
  EXPECT_EQ(m.makespan, t.makespan());
  EXPECT_EQ(m.busy_unit_seconds, t.busy_node_seconds());
  EXPECT_EQ(m.efficiency, t.efficiency());
  EXPECT_EQ(m.imbalance, t.imbalance());
  EXPECT_EQ(m.percent_imbalance, t.percent_imbalance());
}

TEST(Metrics, AbortedEventsDoNotCountAsBusyTime) {
  auto t = hand_trace();
  t.events.push_back({"c", "p", 2, 1, 0.0, 5.0, true});
  const Metrics m = Metrics::from_trace(t);
  // Makespan extends to the aborted attempt's end, busy time does not.
  EXPECT_DOUBLE_EQ(m.makespan, 5.0);
  EXPECT_DOUBLE_EQ(m.busy_unit_seconds, 6.0);
  EXPECT_EQ(m.percent_imbalance, t.percent_imbalance());
}

TEST(Metrics, StrMentionsTheHeadlineNumbers) {
  const auto s = Metrics::from_loads({4.0, 2.0, 2.0, 0.0}, 4.0).str();
  EXPECT_NE(s.find("makespan"), std::string::npos);
  EXPECT_NE(s.find("lambda"), std::string::npos);
}

}  // namespace
}  // namespace hslb
