#include "lp/presolve.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "lp/simplex.hpp"

namespace hslb::lp {
namespace {

Options presolve_on() {
  Options o;
  o.presolve = true;
  return o;
}

TEST(Presolve, FixedColumnIsSubstitutedOut) {
  Model m;
  const auto x = m.add_variable(3.0, 3.0, 1.0, "x");   // fixed
  const auto y = m.add_variable(0.0, 10.0, 1.0, "y");
  m.add_constraint({{x, 1.0}, {y, 1.0}}, 5.0, kInf, "r");

  const Presolve pre = Presolve::run(m);
  ASSERT_EQ(pre.status(), Presolve::Status::Reduced);
  EXPECT_GE(pre.cols_removed(), 1u);

  const Solution sol = solve(m, presolve_on());
  ASSERT_EQ(sol.status, Status::Optimal);
  EXPECT_NEAR(sol.x[x], 3.0, 1e-9);
  EXPECT_NEAR(sol.x[y], 2.0, 1e-7);  // row forces y >= 5 - 3
  EXPECT_NEAR(sol.objective, 5.0, 1e-7);
  EXPECT_GE(sol.stats.presolve_cols_removed, 1u);
}

TEST(Presolve, SingletonRowBecomesABound) {
  Model m;
  const auto x = m.add_variable(0.0, 100.0, -1.0, "x");
  m.add_constraint({{x, 2.0}}, -kInf, 12.0, "cap");  // x <= 6

  const Presolve pre = Presolve::run(m);
  EXPECT_GE(pre.rows_removed(), 1u);
  EXPECT_GE(pre.bounds_tightened(), 1u);

  const Solution sol = solve(m, presolve_on());
  ASSERT_EQ(sol.status, Status::Optimal);
  EXPECT_NEAR(sol.x[x], 6.0, 1e-7);
  // Dual recovery: the removed singleton row is the binding constraint, so
  // it must carry the column's reduced cost (rc = -1, a = 2 -> y = -0.5),
  // keeping c - A^T y stationary in the original space.
  ASSERT_EQ(sol.duals.size(), 1u);
  EXPECT_NEAR(sol.duals[0], -0.5, 1e-9);
}

TEST(Presolve, RedundantAndEmptyRowsAreDropped) {
  Model m;
  const auto x = m.add_variable(0.0, 1.0, 1.0, "x");
  m.add_constraint({{x, 1.0}}, -kInf, 50.0, "slack_cap");  // never binds
  m.add_constraint({{x, 1.0}}, -5.0, kInf, "slack_floor"); // never binds

  const Presolve pre = Presolve::run(m);
  ASSERT_EQ(pre.status(), Presolve::Status::Reduced);
  EXPECT_EQ(pre.rows_removed(), 2u);
  EXPECT_EQ(pre.reduced().num_rows(), 0u);

  const Solution sol = solve(m, presolve_on());
  ASSERT_EQ(sol.status, Status::Optimal);
  EXPECT_NEAR(sol.objective, 0.0, 1e-9);
}

TEST(Presolve, InfeasibleEmptyRowDetected) {
  Model m;
  const auto x = m.add_variable(2.0, 2.0, 0.0, "x");
  m.add_constraint({{x, 1.0}}, 5.0, kInf, "impossible");  // 2 >= 5

  const Presolve pre = Presolve::run(m);
  EXPECT_EQ(pre.status(), Presolve::Status::Infeasible);
  EXPECT_EQ(solve(m, presolve_on()).status, Status::Infeasible);
  EXPECT_EQ(solve(m).status, Status::Infeasible);  // agrees with no-presolve
}

TEST(Presolve, DominatedColumnPinnedAtBound) {
  Model m;
  // y only appears with positive coefficients in <=-rows and has c > 0:
  // every pull is downward, so presolve pins it at its lower bound.
  const auto x = m.add_variable(0.0, 4.0, -1.0, "x");
  const auto y = m.add_variable(1.0, 9.0, 2.0, "y");
  m.add_constraint({{x, 1.0}, {y, 1.0}}, -kInf, 8.0, "r");

  const Presolve pre = Presolve::run(m);
  EXPECT_GE(pre.cols_removed(), 1u);

  const Solution sol = solve(m, presolve_on());
  ASSERT_EQ(sol.status, Status::Optimal);
  EXPECT_NEAR(sol.x[y], 1.0, 1e-9);
  EXPECT_NEAR(sol.x[x], 4.0, 1e-7);
  EXPECT_NEAR(sol.objective, -2.0, 1e-7);
}

TEST(Presolve, ImpliedFreeColumnSingletonSubstituted) {
  Model m;
  // s appears only in the equality row and its huge box never binds, so the
  // pair (s, row) is substituted out; postsolve recomputes s from the row.
  const auto x = m.add_variable(0.0, 3.0, -1.0, "x");
  const auto s = m.add_variable(-100.0, 100.0, 0.5, "s");
  m.add_equality({{x, 1.0}, {s, 1.0}}, 5.0, "link");

  const Presolve pre = Presolve::run(m);
  EXPECT_GE(pre.cols_removed(), 1u);
  EXPECT_GE(pre.rows_removed(), 1u);

  const Solution sol = solve(m, presolve_on());
  ASSERT_EQ(sol.status, Status::Optimal);
  // min -x + 0.5 s with s = 5 - x  ->  min -1.5 x + 2.5  ->  x = 3, s = 2.
  EXPECT_NEAR(sol.x[x], 3.0, 1e-7);
  EXPECT_NEAR(sol.x[s], 2.0, 1e-7);
  EXPECT_NEAR(sol.objective, -2.0, 1e-7);
  EXPECT_NEAR(sol.x[x] + sol.x[s], 5.0, 1e-9);  // row holds exactly
}

TEST(Presolve, ActivityBoundTighteningCounts) {
  Model m;
  // x + y >= 9 with y <= 5 implies x >= 4 (x's own bound is 0).
  const auto x = m.add_variable(0.0, 10.0, 1.0, "x");
  const auto y = m.add_variable(0.0, 5.0, 1.0, "y");
  m.add_constraint({{x, 1.0}, {y, 1.0}}, 9.0, kInf, "cover");

  const Presolve pre = Presolve::run(m);
  ASSERT_EQ(pre.status(), Presolve::Status::Reduced);
  EXPECT_GE(pre.bounds_tightened(), 1u);

  const Solution on = solve(m, presolve_on());
  const Solution off = solve(m);
  ASSERT_EQ(on.status, Status::Optimal);
  EXPECT_NEAR(on.objective, off.objective, 1e-7);
}

Model random_bounded_lp(Rng& rng) {
  Model m;
  const int n = static_cast<int>(rng.uniform_int(4, 10));
  const int rows = static_cast<int>(rng.uniform_int(2, 6));
  for (int j = 0; j < n; ++j)
    m.add_variable(0.0, rng.uniform(2.0, 8.0), rng.uniform(-1.0, 1.0));
  for (int r = 0; r < rows; ++r) {
    std::vector<Coeff> coeffs;
    for (int j = 0; j < n; ++j)
      if (rng.uniform() < 0.7)
        coeffs.push_back({static_cast<std::size_t>(j), rng.uniform(-1.0, 1.0)});
    if (coeffs.empty()) coeffs.push_back({0, 1.0});
    m.add_constraint(std::move(coeffs), -kInf, rng.uniform(0.5, 4.0));
  }
  return m;
}

/// Branch-style mutation: fix a few variables, tighten a few boxes — the
/// shapes branch-and-bound hands to its cold re-solves.
Model branched_variant(const Model& base, Rng& rng) {
  Model m = base;
  const auto n = static_cast<long long>(base.num_cols());
  const int k = static_cast<int>(rng.uniform_int(1, 3));
  for (int i = 0; i < k; ++i) {
    const auto v = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
    const double mid =
        0.5 * (base.col_lower(v) + std::min(base.col_upper(v), 8.0));
    if (rng.uniform() < 0.5) {
      m.set_col_lower(v, std::floor(mid));
      m.set_col_upper(v, std::floor(mid));  // fixed column
    } else {
      m.set_col_upper(v, std::floor(mid) + 1.0);
    }
  }
  return m;
}

class PresolveParity : public ::testing::TestWithParam<int> {};

/// Presolve-on/off parity over the 60-seed random sweep: identical status,
/// identical objective, original-space feasibility, and a postsolved basis
/// that warm-starts the *original* model cleanly (the round-trip the B&B
/// tree relies on).
TEST_P(PresolveParity, MatchesPlainSolveAndRoundTripsBasis) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7717 + 11);
  const Model base = random_bounded_lp(rng);
  for (int variant = 0; variant < 3; ++variant) {
    const Model m = variant == 0 ? base : branched_variant(base, rng);
    const Solution off = solve(m);
    const Solution on = solve(m, presolve_on());
    ASSERT_EQ(on.status, off.status) << "seed " << GetParam();
    if (off.status != Status::Optimal) continue;

    const double scale = 1.0 + std::fabs(off.objective);
    EXPECT_NEAR(on.objective, off.objective, 1e-6 * scale)
        << "seed " << GetParam() << " variant " << variant;
    EXPECT_TRUE(m.is_feasible(on.x, 1e-6)) << "seed " << GetParam();

    // Basis round-trip: the postsolved basis must be a structurally valid
    // warm start for the original model — init_warm accepts it, the
    // factorization succeeds, and the re-solve lands on the same optimum.
    ASSERT_EQ(on.basis.cols.size(), m.num_cols());
    ASSERT_EQ(on.basis.rows.size(), m.num_rows());
    Options warm;
    warm.warm_start = &on.basis;
    const Solution re = solve(m, warm);
    ASSERT_EQ(re.status, Status::Optimal) << "seed " << GetParam();
    EXPECT_NEAR(re.objective, off.objective, 1e-6 * scale)
        << "seed " << GetParam();
    EXPECT_TRUE(re.warm_started) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PresolveParity, ::testing::Range(0, 60));

/// Stationarity of the recovered duals on models made of singleton rows —
/// the one removal kind whose dual is reconstructed (reduced cost moved
/// onto the binding row). Checks c - A^T y is a valid reduced-cost vector.
TEST(Presolve, SingletonRowDualsAreStationary) {
  Model m;
  const auto x = m.add_variable(0.0, 100.0, 3.0, "x");
  const auto y = m.add_variable(0.0, 100.0, -5.0, "y");
  m.add_constraint({{x, 1.0}}, -kInf, 4.0, "x_cap");
  m.add_constraint({{y, 2.0}}, -kInf, 12.0, "y_cap");
  m.add_constraint({{x, 3.0}, {y, 2.0}}, -kInf, 18.0, "mix");

  const Solution sol = solve(m, presolve_on());
  ASSERT_EQ(sol.status, Status::Optimal);
  const Solution plain = solve(m);
  EXPECT_NEAR(sol.objective, plain.objective, 1e-7);

  for (std::size_t j = 0; j < m.num_cols(); ++j) {
    double rc = m.objective(j);
    for (const ColEntry& e : m.col(j)) rc -= e.value * sol.duals[e.index];
    const bool at_lb = std::fabs(sol.x[j] - m.col_lower(j)) < 1e-7;
    const bool at_ub = std::fabs(sol.x[j] - m.col_upper(j)) < 1e-7;
    if (!at_lb && !at_ub) {
      EXPECT_NEAR(rc, 0.0, 1e-7) << "col " << j;  // basic: zero reduced cost
    } else if (at_lb && !at_ub) {
      EXPECT_GE(rc, -1e-7) << "col " << j;
    } else if (at_ub && !at_lb) {
      EXPECT_LE(rc, 1e-7) << "col " << j;
    }
  }
}

}  // namespace
}  // namespace hslb::lp
