#include "common/table.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"

namespace hslb {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t({"component", "nodes", "time"});
  t.add_row({"atm", "104", "306.952"});
  t.add_row({"ocn", "24", "362.669"});
  const std::string s = t.str();
  EXPECT_NE(s.find("component"), std::string::npos);
  EXPECT_NE(s.find("306.952"), std::string::npos);
  EXPECT_NE(s.find("ocn"), std::string::npos);
}

TEST(Table, TitleAppearsFirst) {
  Table t({"a"});
  t.set_title("Table III");
  t.add_row({"x"});
  const std::string s = t.str();
  EXPECT_EQ(s.rfind("Table III", 0), 0u);
}

TEST(Table, ColumnsAlign) {
  Table t({"x", "longheader"});
  t.add_row({"longvalue", "y"});
  const std::string s = t.str();
  // Every rendered line has equal length.
  std::size_t expected = std::string::npos;
  std::size_t pos = 0;
  while (pos < s.size()) {
    auto nl = s.find('\n', pos);
    if (nl == std::string::npos) break;
    const std::size_t len = nl - pos;
    if (expected == std::string::npos) expected = len;
    EXPECT_EQ(len, expected);
    pos = nl + 1;
  }
}

TEST(Table, ArityMismatchRejected) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(Table, EmptyHeaderRejected) {
  EXPECT_THROW(Table({}), ContractViolation);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(static_cast<long long>(42)), "42");
  EXPECT_EQ(Table::num(1.0, 0), "1");
}

TEST(Table, RuleRendersAsSeparator) {
  Table t({"a"});
  t.add_row({"1"});
  t.add_rule();
  t.add_row({"2"});
  const std::string s = t.str();
  // 5 horizontal rules: top, under header, mid rule, bottom, plus the rule we
  // added => count '+' corners at line starts.
  int plus_lines = 0;
  std::size_t pos = 0;
  while (pos < s.size()) {
    if (s[pos] == '+') ++plus_lines;
    const auto nl = s.find('\n', pos);
    if (nl == std::string::npos) break;
    pos = nl + 1;
  }
  EXPECT_EQ(plus_lines, 4);
}

TEST(Table, RowsCount) {
  Table t({"a"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  t.add_rule();
  EXPECT_EQ(t.rows(), 2u);
}

}  // namespace
}  // namespace hslb
