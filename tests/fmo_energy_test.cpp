#include "fmo/energy.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/contracts.hpp"
#include "fmo/driver.hpp"
#include "fmo/molecule.hpp"
#include "fmo/schedulers.hpp"

namespace hslb::fmo {
namespace {

TEST(Energy, MonomerScalesWithSize) {
  Fragment one{0, "w", 3, 25, {}};
  Fragment three{1, "w3", 9, 75, {}};
  EXPECT_NEAR(monomer_energy(one), -76.0, 0.1);
  EXPECT_NEAR(monomer_energy(three), -228.0, 0.1);
}

TEST(Energy, MonomerDeterministicPerFragment) {
  Fragment a{5, "a", 3, 25, {}};
  Fragment b{5, "b", 3, 25, {}};  // same id => same energy
  EXPECT_DOUBLE_EQ(monomer_energy(a), monomer_energy(b));
  Fragment c{6, "c", 3, 25, {}};
  EXPECT_NE(monomer_energy(a), monomer_energy(c));
}

TEST(Energy, DimerCorrectionsAttractiveAndDecaying) {
  Fragment a{0, "a", 3, 25, {}};
  Fragment b{1, "b", 3, 25, {}};
  const double near = scf_dimer_correction(a, b, 2.8);
  const double far = scf_dimer_correction(a, b, 4.4);
  EXPECT_LT(near, 0.0);
  EXPECT_LT(far, 0.0);
  EXPECT_LT(near, far);  // closer pair binds more strongly
  EXPECT_LT(std::fabs(es_dimer_correction(a, b, 8.0)),
            std::fabs(scf_dimer_correction(a, b, 4.4)));
}

TEST(Energy, Fmo2BreakdownSums) {
  const auto sys = water_cluster({.fragments = 27, .merge_fraction = 0.3,
                                  .scf_cutoff_angstrom = 4.5, .seed = 12});
  const auto e = fmo2_energy(sys);
  EXPECT_LT(e.monomer, 0.0);
  EXPECT_LT(e.scf_dimer, 0.0);
  EXPECT_LT(e.es_dimer, 0.0);
  EXPECT_DOUBLE_EQ(e.total(), e.monomer + e.scf_dimer + e.es_dimer);
  // Monomer part dominates (chemistry sanity: corrections are small).
  EXPECT_LT(std::fabs(e.scf_dimer + e.es_dimer), 0.05 * std::fabs(e.monomer));
}

TEST(Energy, ScheduleIndependence) {
  // The headline invariant: DLB and HSLB executions report the same FMO2
  // energy as the pure reference, regardless of noise or allocation.
  const auto sys = water_cluster({.fragments = 20, .merge_fraction = 0.5,
                                  .scf_cutoff_angstrom = 4.5, .seed = 13});
  CostModel cost;
  const auto reference = fmo2_energy(sys);

  RunOptions run;
  run.noise_cv = 0.05;  // noisy timings must not affect the energy
  const auto dlb = run_dlb(sys, cost, GroupLayout::uniform(80, 10), run);

  PipelineOptions opt;
  const auto pipeline = run_pipeline(sys, cost, 160, opt);

  const double scale = std::fabs(reference.total());
  EXPECT_NEAR(dlb.energy.total(), reference.total(), 1e-9 * scale);
  EXPECT_NEAR(pipeline.hslb.energy.total(), reference.total(), 1e-9 * scale);
  EXPECT_NEAR(dlb.energy.total(), pipeline.hslb.energy.total(), 1e-9 * scale);
  // Component-wise too.
  EXPECT_NEAR(dlb.energy.scf_dimer, reference.scf_dimer, 1e-9);
  EXPECT_NEAR(pipeline.hslb.energy.monomer, reference.monomer, 1e-9);
}

TEST(Energy, PolypeptideEnergyFinite) {
  const auto sys = polypeptide({.residues = 24, .scf_cutoff_angstrom = 6.0,
                                .seed = 14});
  const auto e = fmo2_energy(sys);
  EXPECT_TRUE(std::isfinite(e.total()));
  EXPECT_LT(e.total(), 0.0);
}

TEST(Energy, RejectsDegenerateInput) {
  Fragment bad{0, "x", 0, 0, {}};
  EXPECT_THROW(monomer_energy(bad), ContractViolation);
  Fragment ok{0, "x", 3, 25, {}};
  EXPECT_THROW(scf_dimer_correction(ok, ok, 0.0), ContractViolation);
}

}  // namespace
}  // namespace hslb::fmo
