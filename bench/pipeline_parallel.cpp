// Parallel pipeline scaling: wall-clock of the Gather and Fit stages on a
// 256-fragment FMO system at 1/2/4(/hw) worker threads, plus the
// determinism check that makes the parallelism safe to use — the solved
// allocation must be identical for every thread count.
//
// The Fit stage is the hot spot HSLB pays per task (multistart
// Levenberg-Marquardt per fragment, embarrassingly parallel); on a machine
// with >= 4 real cores the 4-thread fit is expected to land at >= 2x over
// serial. The speedup column reports whatever the current host delivers
// (this is a measurement, not an assertion: CI boxes may be oversubscribed
// or single-core).
#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common/parallel.hpp"
#include "common/table.hpp"
#include "fmo/driver.hpp"

int main() {
  using namespace hslb;
  using namespace hslb::fmo;
  using clock = std::chrono::steady_clock;

  std::printf("=== hslb::Pipeline parallel scaling (256-fragment FMO) ===\n\n");

  const auto sys = water_cluster({.fragments = 256, .merge_fraction = 0.35,
                                  .scf_cutoff_angstrom = 4.5, .seed = 2012});
  CostModel cost;
  const long long nodes = 2048;
  std::printf("system: %zu fragments, %lld nodes, hardware threads: %zu\n\n",
              sys.num_fragments(), nodes, ThreadPool::hardware_threads());

  std::vector<std::size_t> thread_counts{1, 2, 4};
  if (const auto hw = ThreadPool::hardware_threads();
      std::find(thread_counts.begin(), thread_counts.end(), hw) ==
      thread_counts.end())
    thread_counts.push_back(hw);

  Table t({"threads", "gather s", "fit s", "fit speedup", "solve s",
           "execute s", "total s", "allocation"});
  t.set_title("per-stage wall time vs worker threads (same seed throughout)");

  fmo::PipelineResult baseline;
  double serial_fit = 0.0;
  bool all_identical = true;
  for (std::size_t threads : thread_counts) {
    fmo::PipelineOptions opt;
    opt.threads = threads;
    const auto res = run_pipeline(sys, cost, nodes, opt);
    if (threads == 1) {
      baseline = res;
      serial_fit = res.report.fit_seconds;
    }
    bool identical = true;
    for (const auto& a : baseline.allocation.tasks)
      identical &= res.allocation.find(a.task).nodes == a.nodes;
    identical &= res.allocation.predicted_total ==
                 baseline.allocation.predicted_total;
    all_identical &= identical;
    t.add_row({Table::num(static_cast<long long>(threads)),
               Table::num(res.report.gather_seconds, 3),
               Table::num(res.report.fit_seconds, 3),
               Table::num(serial_fit / std::max(res.report.fit_seconds, 1e-12),
                          2) +
                   "x",
               Table::num(res.report.solve_seconds, 3),
               Table::num(res.report.execute_seconds, 3),
               Table::num(res.report.total_seconds(), 3),
               identical ? "identical" : "DIVERGED"});
  }
  std::printf("%s\n", t.str().c_str());

  // The fit stage in isolation (best of 3 repetitions per thread count),
  // on the gathered table from the serial run.
  Table f({"threads", "fit_all best-of-3 s", "speedup"});
  f.set_title("perf::fit_all on the 256-fragment bench table");
  double serial_best = 0.0;
  for (std::size_t threads : thread_counts) {
    perf::FitOptions fopt;
    fopt.threads = threads;
    double best = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      const auto t0 = clock::now();
      const auto fits = perf::fit_all(baseline.bench, fopt);
      const std::chrono::duration<double> dt = clock::now() - t0;
      best = std::min(best, dt.count());
      if (fits.size() != sys.num_fragments()) return 1;
    }
    if (threads == 1) serial_best = best;
    f.add_row({Table::num(static_cast<long long>(threads)),
               Table::num(best, 3),
               Table::num(serial_best / std::max(best, 1e-12), 2) + "x"});
  }
  std::printf("%s\n", f.str().c_str());

  std::printf("allocations across thread counts: %s\n",
              all_identical ? "identical (determinism contract holds)"
                            : "DIVERGED (bug!)");
  return all_identical ? 0 : 1;
}
