// Microbenchmarks of the bounded-variable simplex solver (the CLP stand-in
// under the branch-and-bound): dense random LPs and the sparse
// selector-heavy master problems the CESM models produce.
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench/bench_json_main.hpp"
#include "common/rng.hpp"
#include "lp/simplex.hpp"

namespace {

using namespace hslb;
using namespace hslb::lp;

Model random_dense(std::size_t vars, std::size_t rows, std::uint64_t seed) {
  Rng rng(seed);
  Model m;
  for (std::size_t j = 0; j < vars; ++j)
    m.add_variable(0.0, rng.uniform(1.0, 10.0), rng.uniform(-1.0, 1.0));
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<Coeff> coeffs;
    for (std::size_t j = 0; j < vars; ++j)
      coeffs.push_back({j, rng.uniform(-1.0, 1.0)});
    m.add_constraint(std::move(coeffs), -kInf,
                     rng.uniform(0.5, static_cast<double>(vars) / 4.0));
  }
  return m;
}

/// SOS-selector structure: k binaries, pick-one row, two link rows — the
/// shape of the CESM ocean/atmosphere sets.
Model selector_lp(std::size_t k, std::uint64_t seed) {
  Rng rng(seed);
  Model m;
  std::vector<Coeff> ones, nodes, times;
  for (std::size_t i = 0; i < k; ++i) {
    const auto z = m.add_variable(0.0, 1.0, 0.0);
    ones.push_back({z, 1.0});
    nodes.push_back({z, static_cast<double>(i + 1)});
    times.push_back({z, 5000.0 / static_cast<double>(i + 1)});
  }
  const auto n = m.add_variable(1.0, static_cast<double>(k), 0.0);
  const auto t = m.add_variable(0.0, 10000.0, 1.0);
  m.add_constraint(ones, 1.0, 1.0);
  nodes.push_back({n, -1.0});
  m.add_constraint(nodes, 0.0, 0.0);
  times.push_back({t, -1.0});
  m.add_constraint(times, 0.0, 0.0);
  m.add_constraint({{n, 1.0}}, -kInf, static_cast<double>(k) * 0.6);
  return m;
}

void BM_DenseRandomLp(benchmark::State& state) {
  const auto vars = static_cast<std::size_t>(state.range(0));
  const auto m = random_dense(vars, vars / 2, 42);
  for (auto _ : state) {
    const auto sol = solve(m);
    benchmark::DoNotOptimize(sol.objective);
  }
}
BENCHMARK(BM_DenseRandomLp)->Arg(16)->Arg(64)->Arg(128);

/// Second arg selects the kernel mode: 0 = sparse (default), 1 = the
/// dense-equivalent baseline behind Options::force_dense. The
/// eta_compression counter on the sparse runs is the flops-per-pivot
/// reduction the sparse eta/FTRAN kernels deliver over that baseline.
void BM_SelectorLp(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  Options opt;
  opt.force_dense = state.range(1) != 0;
  const auto m = selector_lp(k, 7);
  std::size_t iters = 0;
  SolveStats stats;
  for (auto _ : state) {
    const auto sol = solve(m, opt);
    iters = sol.iterations;
    stats = sol.stats;
    benchmark::DoNotOptimize(sol.objective);
  }
  state.counters["simplex_iters"] = static_cast<double>(iters);
  state.counters["eta_compression"] = stats.eta_compression();
}
BENCHMARK(BM_SelectorLp)
    ->Args({241, 0})
    ->Args({241, 1})
    ->Args({1639, 0})
    ->Args({1639, 1})
    ->Unit(benchmark::kMillisecond);

/// Branch-style re-solve: tighten the node-count variable's upper bound at
/// the parent optimum and re-solve, either cold or warm from the parent
/// basis — the exact pattern of a branch-and-bound child node.
void BM_SelectorLpResolve(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const bool warm = state.range(1) != 0;
  const auto m = selector_lp(k, 7);
  const auto parent = solve(m);
  Model child = m;
  child.set_col_upper(k, std::floor(parent.x[k] - 0.5));  // branch down
  Options opt;
  if (warm) opt.warm_start = &parent.basis;
  std::size_t pivots = 0;
  for (auto _ : state) {
    const auto sol = solve(child, opt);
    pivots = sol.iterations;
    benchmark::DoNotOptimize(sol.objective);
  }
  state.counters["pivots"] = static_cast<double>(pivots);
}
BENCHMARK(BM_SelectorLpResolve)
    ->Args({1639, 0})
    ->Args({1639, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return hslb::bench::run_benchmarks_with_json(argc, argv, "BENCH_solver.json");
}
