// Closed-loop adaptive rebalancing vs the static schedule and the DLB
// dynamic baseline, on the shared robustness scenario
// (fmo/scenario.hpp).
//
// Four experiments, three of them gated so CI smoke enforces the closed
// loop's value proposition:
//
//   * a straggler sweep — the full pipeline (Gather -> Fit -> Solve ->
//     Execute) run statically and adaptively at each severity, next to the
//     DLB baseline. GATES at cv=0.4: the adaptive run must degrade less
//     than 2.96x over its own noise-free baseline (the static schedule's
//     historical degradation at that severity), and must finish within 15%
//     of — or ahead of — the dynamic baseline;
//   * a permanent fail-stop — GATE: the static schedule wedges while the
//     closed loop re-solves over the survivors and completes, paying a
//     real migration stall on a communication-modelling machine;
//   * a mid-run cost drift — the drift monitor trips, the refitted
//     re-solve reacts, and every controller re-solve surfaces its solver
//     diagnostics;
//   * a warm-vs-cold re-solve A/B on the scenario's budget MINLP — GATE:
//     seeding the re-solve with the previous incumbent and cut pool
//     (BnbOptions::seed_incumbent / seed_points / seed_cuts, the exact
//     path hslb::Controller uses) must search fewer B&B nodes than the
//     cold solve of the same model, at the same objective.
//
// Headline numbers merge into BENCH_solver.json under "adaptive/...".
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_json.hpp"
#include "fmo/scenario.hpp"
#include "common/table.hpp"
#include "fmo/driver.hpp"
#include "hslb/budget.hpp"
#include "minlp/bnb.hpp"

namespace {

using namespace hslb;
namespace scenario = hslb::fmo::scenario;
using scenario::cv_label;
using scenario::kDlbGroups;
using scenario::kNodes;

constexpr const char* kJsonPath = "BENCH_solver.json";

bool close(double a, double b) {
  return std::fabs(a - b) <= 1e-6 * std::max({1.0, std::fabs(a), std::fabs(b)});
}

fmo::PipelineOptions base_options() {
  fmo::PipelineOptions opt;
  opt.run = scenario::noise_free_run();
  opt.dlb_groups = kDlbGroups;
  opt.threads = 1;
  return opt;
}

fmo::PipelineOptions adaptive(const fmo::PipelineOptions& base) {
  fmo::PipelineOptions opt = base;
  opt.rebalance.adaptive = true;
  return opt;
}

}  // namespace

int main() {
  const auto sys = scenario::water24();
  const fmo::CostModel cost;
  int failures = 0;

  // --- Straggler sweep: static / adaptive / DLB degradation. -------------
  const std::vector<double> severities = scenario::straggler_severities();
  Table t({"straggler cv", "static s", "adaptive s", "DLB s", "static degr",
           "adaptive degr", "adaptive/DLB", "rebal"});
  double stat0 = 0.0, adap0 = 0.0, dlb0 = 0.0;
  double adap_degr_worst = 0.0, adap_over_dlb_worst = 0.0;
  for (double cv : severities) {
    fmo::PipelineOptions opt = base_options();
    opt.run.straggler_cv = cv;
    const auto stat = run_pipeline(sys, cost, kNodes, opt);
    // Straggler-tuned policy: per-node slowdowns are persistent, so a long
    // observation window with heavy weighting lets the refits converge on
    // the inflated per-fragment truth instead of chasing epoch noise.
    fmo::PipelineOptions aopt = adaptive(opt);
    aopt.rebalance.refit_window = 8;
    aopt.rebalance.observation_weight = 16.0;
    const auto adap = run_pipeline(sys, cost, kNodes, aopt);
    if (cv == 0.0) {
      stat0 = stat.hslb.total_seconds;
      adap0 = adap.hslb.total_seconds;
      dlb0 = stat.dlb.total_seconds;
    }
    const double stat_degr = stat.hslb.total_seconds / stat0;
    const double adap_degr = adap.hslb.total_seconds / adap0;
    const double dlb_degr = stat.dlb.total_seconds / dlb0;
    const double adap_over_dlb =
        adap.hslb.total_seconds / stat.dlb.total_seconds;
    if (cv == severities.back()) {
      adap_degr_worst = adap_degr;
      adap_over_dlb_worst = adap_over_dlb;
    }
    t.add_row({cv_label(cv), Table::num(stat.hslb.total_seconds, 3),
               Table::num(adap.hslb.total_seconds, 3),
               Table::num(stat.dlb.total_seconds, 3),
               Table::num(stat_degr, 3), Table::num(adap_degr, 3),
               Table::num(adap_over_dlb, 3),
               Table::num(static_cast<double>(adap.report.rebalances), 0)});
    bench::merge_json(
        kJsonPath, "adaptive/straggler_cv_" + cv_label(cv),
        {{"static_total_s", stat.hslb.total_seconds},
         {"adaptive_total_s", adap.hslb.total_seconds},
         {"dlb_total_s", stat.dlb.total_seconds},
         {"static_degradation", stat_degr},
         {"adaptive_degradation", adap_degr},
         {"dlb_degradation", dlb_degr},
         {"adaptive_over_dlb", adap_over_dlb},
         {"rebalances", static_cast<double>(adap.report.rebalances)},
         {"migration_s", adap.report.migration_seconds}});
  }
  std::printf("%zu fragments on %lld nodes; full pipeline per cell, common\n"
              "random numbers across the three schedulers per severity\n\n",
              sys.num_fragments(), kNodes);
  std::printf("%s\n", t.str().c_str());
  if (!(adap_degr_worst < 2.96)) {
    std::fprintf(stderr,
                 "FAIL: adaptive degradation %.3f at cv=%s not below the "
                 "static schedule's historical 2.96x\n",
                 adap_degr_worst, cv_label(severities.back()).c_str());
    ++failures;
  }
  if (!(adap_over_dlb_worst <= 1.15)) {
    std::fprintf(stderr,
                 "FAIL: adaptive %.3fx the DLB baseline at cv=%s (gate: "
                 "within 15%%)\n",
                 adap_over_dlb_worst, cv_label(severities.back()).c_str());
    ++failures;
  }

  // --- Permanent fail-stop: the static schedule wedges, the closed loop
  // completes and pays for the migration. ---------------------------------
  fmo::PipelineOptions fail = base_options();
  scenario::inject_fail_stop(fail.run);
  // A machine that models communication, so migration has a real price.
  fail.run.machine = sim::Machine{"intrepid", kNodes, 4};
  fail.run.machine.link_gb_per_s = 0.425;  // BG/P injection bandwidth
  const auto fail_stat = run_pipeline(sys, cost, kNodes, fail);
  const auto fail_adap = run_pipeline(sys, cost, kNodes, adaptive(fail));
  std::printf("permanent fail-stop of node %lld at t=%gs: static %s, "
              "adaptive %s (%zu rebalances, %.3fs migration)\n",
              scenario::kFailNode, scenario::kFailTime,
              fail_stat.hslb.completed ? "completed" : "INCOMPLETE",
              fail_adap.hslb.completed ? "completed" : "INCOMPLETE",
              fail_adap.report.rebalances,
              fail_adap.report.migration_seconds);
  bench::merge_json(
      kJsonPath, "adaptive/fail_stop",
      {{"static_completed", fail_stat.hslb.completed ? 1.0 : 0.0},
       {"adaptive_completed", fail_adap.hslb.completed ? 1.0 : 0.0},
       {"adaptive_total_s", fail_adap.hslb.total_seconds},
       {"rebalances", static_cast<double>(fail_adap.report.rebalances)},
       {"migration_s", fail_adap.report.migration_seconds},
       {"restarts", static_cast<double>(fail_adap.hslb.restarts)}});
  if (fail_stat.hslb.completed || !fail_adap.hslb.completed ||
      fail_adap.report.rebalances < 1 ||
      !(fail_adap.report.migration_seconds > 0.0)) {
    std::fprintf(stderr,
                 "FAIL: expected static INCOMPLETE and adaptive completed "
                 "with at least one rebalance and a positive migration "
                 "charge under a permanent node failure\n");
    ++failures;
  }

  // --- Mid-run cost drift: the drift monitor reacts. ---------------------
  fmo::PipelineOptions drift = base_options();
  drift.run.task_scale.assign(sys.fragments.size(), 1.0);
  drift.run.task_scale[0] = drift.run.task_scale[1] =
      drift.run.task_scale[2] = 4.0;
  drift.run.drift_onset = 3;
  fmo::PipelineOptions drift_adap = adaptive(drift);
  drift_adap.rebalance.imbalance_threshold = 0.15;
  drift_adap.rebalance.drift_threshold = 0.10;
  const auto drift_stat = run_pipeline(sys, cost, kNodes, drift);
  const auto drift_res = run_pipeline(sys, cost, kNodes, drift_adap);
  std::printf("4x cost drift on 3 fragments from iteration 3: static "
              "%.3fs, adaptive %.3fs (%zu rebalances)\n",
              drift_stat.hslb.total_seconds, drift_res.hslb.total_seconds,
              drift_res.report.rebalances);
  bench::merge_json(
      kJsonPath, "adaptive/drift",
      {{"static_total_s", drift_stat.hslb.total_seconds},
       {"adaptive_total_s", drift_res.hslb.total_seconds},
       {"rebalances", static_cast<double>(drift_res.report.rebalances)},
       {"migration_s", drift_res.report.migration_seconds}});
  // resolve_stats records every re-solve the controller ran, accepted or
  // rejected, so it bounds the accepted count from above.
  if (drift_res.report.rebalances < 1 ||
      drift_res.resolve_stats.size() < drift_res.report.rebalances) {
    std::fprintf(stderr,
                 "FAIL: the drift monitor must trip and every re-solve must "
                 "surface its diagnostics (%zu stats for %zu rebalances)\n",
                 drift_res.resolve_stats.size(),
                 drift_res.report.rebalances);
    ++failures;
  }

  // --- Warm vs cold re-solve on the scenario's budget MINLP. -------------
  // The controller's exact seeding path: lift the previous allocation into
  // a feasible incumbent (minlp_warm_start), re-linearize at it, and insert
  // the previous solve's cut pool.
  // Heuristic dives are disabled on both sides so the measured pruning
  // comes from the seeds, not from the dive heuristic rediscovering the
  // optimum at the root.
  const auto tasks = scenario::oracle_tasks(sys, cost);
  const auto model = build_budget_minlp(tasks, kNodes, Objective::MinMax);
  minlp::BnbOptions cold_opt;
  cold_opt.heuristic_dives = false;
  const auto cold = minlp::solve(model, cold_opt);
  std::vector<long long> counts;
  const Allocation cold_alloc =
      allocation_from_minlp(tasks, cold.x, Objective::MinMax);
  counts.reserve(tasks.size());
  for (const auto& task : tasks) counts.push_back(cold_alloc.find(task.name).nodes);
  minlp::BnbOptions warm_opt = cold_opt;
  warm_opt.seed_incumbent = minlp_warm_start(tasks, counts, Objective::MinMax);
  warm_opt.seed_points = {warm_opt.seed_incumbent};
  warm_opt.seed_cuts = cold.pool_cuts;
  const auto warm = minlp::solve(model, warm_opt);
  std::printf("warm re-solve A/B: cold %zu B&B nodes (obj %.6f), warm %zu "
              "B&B nodes (obj %.6f), %zu seeded cuts\n",
              cold.nodes, cold.objective, warm.nodes, warm.objective,
              cold.pool_cuts.size());
  bench::merge_json(kJsonPath, "adaptive/warm_resolve",
                    {{"cold_nodes", static_cast<double>(cold.nodes)},
                     {"warm_nodes", static_cast<double>(warm.nodes)},
                     {"node_ratio", static_cast<double>(warm.nodes) /
                                        static_cast<double>(cold.nodes)},
                     {"seeded_cuts", static_cast<double>(cold.pool_cuts.size())},
                     {"cold_objective", cold.objective},
                     {"warm_objective", warm.objective}});
  if (!warm.has_solution || !close(warm.objective, cold.objective) ||
      warm.nodes >= cold.nodes) {
    std::fprintf(stderr,
                 "FAIL: warm re-solve must match the cold objective in "
                 "fewer B&B nodes (cold %zu, warm %zu)\n",
                 cold.nodes, warm.nodes);
    ++failures;
  }

  if (failures == 0) std::printf("results merged into %s\n", kJsonPath);
  return failures == 0 ? 0 : 1;
}
