// FMO-2 (title paper): quality of the per-fragment performance-model fits.
//
// Claim to match: the a/n + b n^c + d model fits fragment SCF timings with
// R^2 ~ 1 across fragment size classes, and the fitted scalable work a
// tracks the O(nbf^3) SCF cost.
#include <cstdio>
#include <map>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "fmo/driver.hpp"

int main() {
  using namespace hslb;
  using namespace hslb::fmo;

  std::printf("=== FMO per-fragment fit quality ===\n\n");

  const auto sys = water_cluster({.fragments = 96, .merge_fraction = 0.4,
                                  .scf_cutoff_angstrom = 4.5, .seed = 77});
  CostModel cost;
  fmo::PipelineOptions opt;
  opt.fit_points = 6;
  const auto res = run_pipeline(sys, cost, 96 * 8, opt);

  // Group fragments by size class (basis functions).
  std::map<int, std::vector<double>> r2_by_class;
  std::map<int, std::vector<double>> a_by_class;
  for (std::size_t f = 0; f < sys.fragments.size(); ++f) {
    const int nbf = sys.fragments[f].basis_functions;
    r2_by_class[nbf].push_back(res.fits[f].second.r2);
    a_by_class[nbf].push_back(res.fits[f].second.model.a);
  }

  Table t({"nbf class", "fragments", "min R^2", "mean R^2", "mean fitted a",
           "a ratio vs 25bf"});
  t.set_title("Fit quality by fragment size class (water cluster, 96 fragments)");
  const double base_a = stats::mean(a_by_class.begin()->second);
  for (const auto& [nbf, r2s] : r2_by_class) {
    const double mean_a = stats::mean(a_by_class[nbf]);
    t.add_row({Table::num(static_cast<long long>(nbf)),
               Table::num(static_cast<long long>(r2s.size())),
               Table::num(stats::min(r2s), 5), Table::num(stats::mean(r2s), 5),
               Table::num(mean_a, 3), Table::num(mean_a / base_a, 2)});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("claims: R^2 ~ 1 in every class (overall min %.5f); fitted a\n"
              "scales ~ (nbf/25)^3 (expect ratios ~1, 8, 27 for 25/50/75 bf)\n",
              res.min_r2);
  return 0;
}
