// Communication/memory-aware cost model acceptance bench.
//
// Two gates:
//
//   1. On a communication-dominated family (fmo::comm_cluster fragments
//      carrying halo volume and working-set memory, machines with finite
//      link bandwidth and node memory), the extended model — fitted
//      compute terms plus pinned comm/memory terms from the machine spec —
//      must beat the compute-only model (the paper's original, blind to
//      those charges at Solve time) by at least 1.2x simulated makespan.
//      The mechanism: the compute-only solver over-allocates nodes to big
//      fragments because compute time only ever falls with n, but the halo
//      is replicated per spanning rank, so every extra node adds link
//      serialization time the model never saw.
//
//   2. On the existing compute-only acceptance set (water clusters on
//      unmodeled machines), the extended path must be *bit-identical* to
//      the compute-only path: machine terms degenerate to nothing when the
//      machine models neither link nor memory, so enabling them must not
//      move a single allocation or makespan bit.
//
// Headline numbers merge into BENCH_solver.json under "comm_model/...";
// exits non-zero when either gate fails, so CI smoke enforces both.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_json.hpp"
#include "common/table.hpp"
#include "fmo/cost.hpp"
#include "fmo/driver.hpp"
#include "fmo/molecule.hpp"
#include "sim/machine.hpp"

namespace {

using namespace hslb;

constexpr const char* kJsonPath = "BENCH_solver.json";
constexpr double kGate = 1.2;

struct CommScenario {
  std::string name;
  fmo::CommClusterOptions system;
  long long nodes;
  double link_gb_per_s;
  double memory_gb_per_node;
  double page_s_per_gb;
};

struct ABResult {
  double extended_s = 0.0;
  double compute_only_s = 0.0;
  double ratio = 0.0;
  double comm_extended_s = 0.0;
  double comm_compute_only_s = 0.0;
};

fmo::PipelineResult run_one(const fmo::System& sys, long long nodes,
                            const sim::Machine& machine, bool extended) {
  fmo::PipelineOptions opt;
  opt.threads = 1;
  opt.run.machine = machine;
  opt.machine_cost_terms = extended;
  const fmo::CostModel cost;
  return fmo::run_pipeline(sys, cost, nodes, opt);
}

ABResult run_ab(const CommScenario& s) {
  const auto sys = fmo::comm_cluster(s.system);
  sim::Machine m =
      sim::Machine::intrepid_partition(static_cast<std::size_t>(s.nodes));
  m.link_gb_per_s = s.link_gb_per_s;
  m.memory_gb_per_node = s.memory_gb_per_node;
  m.page_s_per_gb = s.page_s_per_gb;

  const auto ext = run_one(sys, s.nodes, m, /*extended=*/true);
  const auto blind = run_one(sys, s.nodes, m, /*extended=*/false);
  ABResult r;
  r.extended_s = ext.hslb.total_seconds;
  r.compute_only_s = blind.hslb.total_seconds;
  r.ratio = r.compute_only_s / r.extended_s;
  r.comm_extended_s = ext.hslb.comm_seconds + ext.hslb.page_seconds;
  r.comm_compute_only_s = blind.hslb.comm_seconds + blind.hslb.page_seconds;
  return r;
}

}  // namespace

int main() {
  // --- Gate 1: the communication-dominated family.
  const std::vector<CommScenario> family = {
      // Moderate link: halo replication already punishes over-allocation.
      {"comm_link2", {.fragments = 8, .seed = 5}, 64, 2.0, 1.0, 0.5},
      // Slow link: communication dominates outright.
      {"comm_link05", {.fragments = 8, .seed = 5}, 64, 0.5, 1.0, 0.5},
      // Bigger system on a slow link.
      {"comm_16frag", {.fragments = 16, .seed = 9}, 128, 1.0, 1.0, 0.5},
      // Memory-pressured: working sets exceed node memory, so the blind
      // model also pays paging charges the extended model designs around.
      {"comm_paging",
       {.fragments = 8, .memory_gb_per_100bf = 8.0, .seed = 5},
       64, 2.0, 1.0, 0.5},
  };

  Table t({"scenario", "extended s", "compute-only s", "ratio",
           "charges ext s", "charges blind s"});
  double min_ratio = 1e9;
  for (const auto& s : family) {
    const ABResult r = run_ab(s);
    min_ratio = std::min(min_ratio, r.ratio);
    t.add_row({s.name, Table::num(r.extended_s, 3),
               Table::num(r.compute_only_s, 3), Table::num(r.ratio, 3),
               Table::num(r.comm_extended_s, 3),
               Table::num(r.comm_compute_only_s, 3)});
    bench::merge_json(kJsonPath, "comm_model/" + s.name,
                      {{"extended_total_s", r.extended_s},
                       {"compute_only_total_s", r.compute_only_s},
                       {"ratio", r.ratio},
                       {"extended_charges_s", r.comm_extended_s},
                       {"compute_only_charges_s", r.comm_compute_only_s}});
  }
  std::printf("communication-dominated family (extended vs compute-only "
              "Solve, same machine):\n\n%s\n", t.str().c_str());
  std::printf("minimum ratio %.3f (gate: >= %.2f)\n\n", min_ratio, kGate);

  // --- Gate 2: never worse on the existing compute-only acceptance set.
  bool identical = true;
  for (const auto& [fragments, nodes] :
       std::vector<std::pair<std::size_t, long long>>{{12, 96}, {24, 192}}) {
    const auto sys = fmo::water_cluster({.fragments = fragments,
                                         .merge_fraction = 0.4,
                                         .scf_cutoff_angstrom = 4.5,
                                         .seed = 3});
    // Default machine: unmodeled link/memory — the compute-only regime.
    const auto on = run_one(sys, nodes, sim::Machine{}, /*extended=*/true);
    const auto off = run_one(sys, nodes, sim::Machine{}, /*extended=*/false);
    bool same = on.hslb.total_seconds == off.hslb.total_seconds &&
                on.predicted_scc_seconds == off.predicted_scc_seconds;
    for (std::size_t f = 0; f < on.allocation.tasks.size() && same; ++f)
      same = on.allocation.tasks[f].nodes == off.allocation.tasks[f].nodes;
    std::printf("acceptance %zu fragments / %lld nodes: %s\n", fragments,
                nodes, same ? "bit-identical" : "DIVERGED");
    identical = identical && same;
    bench::merge_json(
        kJsonPath,
        "comm_model/acceptance_" + std::to_string(fragments) + "frag",
        {{"bit_identical", same ? 1.0 : 0.0},
         {"total_s", on.hslb.total_seconds}});
  }
  bench::merge_json(kJsonPath, "comm_model/gate",
                    {{"min_ratio", min_ratio},
                     {"gate", kGate},
                     {"acceptance_bit_identical", identical ? 1.0 : 0.0}});

  if (min_ratio < kGate) {
    std::fprintf(stderr,
                 "FAIL: extended model only %.3fx better than compute-only "
                 "on the communication-dominated family (gate %.2fx)\n",
                 min_ratio, kGate);
    return 1;
  }
  if (!identical) {
    std::fprintf(stderr, "FAIL: extended path diverged from compute-only on "
                         "an unmodeled machine\n");
    return 1;
  }
  std::printf("results merged into %s\n", kJsonPath);
  return 0;
}
