// §III-A ablation: the synchronization tolerance T_sync (Table I, lines 9
// and 18-19) balances lnd and ice within a tolerance — and, as the paper
// warns, "may actually result in reduced performance of the algorithm
// because it imposes additional synchronization constraints on the
// solution."
//
// We sweep T_sync from off (infinity) down to near zero on the 1-degree
// layout-1 model and report the optimal predicted total plus the resulting
// lnd/ice gap.
#include <cmath>
#include <cstdio>
#include <limits>

#include "cesm/layouts.hpp"
#include "common/table.hpp"

int main() {
  using namespace hslb;
  using namespace hslb::cesm;

  std::printf("=== T_sync ablation (1 degree, layout 1, 512 nodes) ===\n\n");

  std::array<perf::Model, 4> models;
  for (Component c : kComponents)
    models[index(c)] = ground_truth(Resolution::Deg1, c);

  Table t({"tsync (s)", "predicted total s", "lnd time", "ice time",
           "|gap| s", "bnb nodes"});
  double off_total = 0.0;
  // The min-max objective already equalizes lnd and ice to within a small
  // natural gap; the constraint only binds (and §III-A's warning only
  // manifests) once the tolerance drops below that gap. Tolerances below
  // ~coefficient_scale * integrality_tol (~0.008 s here) are beneath the
  // solver's numerical resolution and are not swept.
  for (double tsync : {std::numeric_limits<double>::infinity(), 5.0, 1.0,
                       0.02, 0.01, 0.005}) {
    auto p = make_problem(Resolution::Deg1, Layout::Hybrid, 512, models);
    p.tsync = tsync;
    const auto sol = solve_layout(p);
    const double lnd = sol.predicted_seconds[index(Component::Lnd)];
    const double ice = sol.predicted_seconds[index(Component::Ice)];
    if (!std::isfinite(tsync)) off_total = sol.predicted_total;
    t.add_row({std::isfinite(tsync) ? Table::num(tsync, 1) : "off",
               Table::num(sol.predicted_total, 3), Table::num(lnd, 3),
               Table::num(ice, 3), Table::num(std::fabs(lnd - ice), 3),
               Table::num(static_cast<long long>(sol.stats.nodes))});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("claims: tightening T_sync never improves the optimum "
              "(baseline %.3f s) and shrinks the lnd/ice gap.\n", off_total);
  return 0;
}
