// §III-C ablation: how many benchmark node counts does the Gather step
// need? "the number of benchmarking runs with various number of nodes
// should be at least greater than four for each component ... for CESM,
// four points were enough to build well-fitted scaling curves."
//
// We sweep D = 2..10 gather points, run the full pipeline at 1 degree /
// 2048 nodes, and compare the resulting allocation's oracle (noise-free)
// total against the allocation obtained from the ground-truth models.
#include <cstdio>

#include "cesm/pipeline.hpp"
#include "common/table.hpp"

int main() {
  using namespace hslb;
  using namespace hslb::cesm;

  std::printf("=== Gather-points ablation (1 degree, layout 1, 2048 nodes) ===\n\n");

  // Oracle: solve with the true curves — the best any fit could achieve.
  std::array<perf::Model, 4> truth;
  for (Component c : kComponents)
    truth[index(c)] = ground_truth(Resolution::Deg1, c);
  const auto oracle_sol =
      solve_layout(make_problem(Resolution::Deg1, Layout::Hybrid, 2048, truth));
  Simulator oracle(Resolution::Deg1);
  auto oracle_total = [&](const std::array<long long, 4>& nodes) {
    std::array<double, 4> s{};
    for (Component c : kComponents)
      s[index(c)] = oracle.true_seconds(c, nodes[index(c)]);
    return layout_total(Layout::Hybrid, s);
  };
  const double best_possible = oracle_total(oracle_sol.nodes);

  Table t({"gather points D", "min R^2", "oracle total of allocation",
           "excess vs best %"});
  t.set_title("Allocation quality vs number of benchmark points");
  for (std::size_t d = 2; d <= 10; ++d) {
    cesm::PipelineOptions opt;
    opt.fit_points = d;
    const auto res = run_pipeline(Resolution::Deg1, 2048, opt);
    const double total = oracle_total(res.solution.nodes);
    t.add_row({Table::num(static_cast<long long>(d)),
               Table::num(res.min_r2(), 4), Table::num(total, 3),
               Table::num(100.0 * (total / best_possible - 1.0), 2)});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("oracle-model allocation achieves %.3f s.\n", best_possible);
  std::printf("claims: quality saturates around D ~ 4-5 (the paper used ~5 "
              "manual core counts and found four points sufficient).\n");
  return 0;
}
