// §III-E ablation: special-ordered-set branching vs branching on the
// individual selector binaries.
//
// "we implemented these discrete choices as a special-ordered set, and
// forced the MINLP solver to branch on the special-ordered set, rather
// than on individual binary variables, which improved the runtime of the
// MINLP solver by two orders of magnitude."
//
// We solve the full 1-degree layout-1 model (ocean set: 241 candidates,
// atmosphere set: up to 1639 candidates) both ways and compare node counts
// and wall time.
#include <cstdio>

#include "cesm/layouts.hpp"
#include "common/table.hpp"

int main() {
  using namespace hslb;
  using namespace hslb::cesm;

  std::printf("=== SOS branching vs individual-binary branching ===\n\n");

  // Fixed plausible component models (ground-truth calibrated curves).
  std::array<perf::Model, 4> models;
  for (Component c : kComponents)
    models[index(c)] = ground_truth(Resolution::Deg1, c);

  Table t({"total nodes", "branching", "bnb nodes", "LP solves", "seconds",
           "objective"});
  double speedup_sum = 0.0;
  int speedup_count = 0;
  for (long long n : {512LL, 1024LL, 2048LL}) {
    auto p = make_problem(Resolution::Deg1, Layout::Hybrid, n, models);
    double secs[2];
    for (int pass = 0; pass < 2; ++pass) {
      minlp::BnbOptions opt;
      opt.use_sos_branching = pass == 0;
      const auto sol = solve_layout(p, opt);
      secs[pass] = sol.stats.seconds;
      t.add_row({Table::num(static_cast<long long>(n)),
                 pass == 0 ? "SOS sets" : "binaries",
                 Table::num(static_cast<long long>(sol.stats.nodes)),
                 Table::num(static_cast<long long>(sol.stats.lp_solves)),
                 Table::num(sol.stats.seconds, 3),
                 Table::num(sol.predicted_total, 3)});
    }
    t.add_rule();
    if (secs[0] > 0.0) {
      speedup_sum += secs[1] / secs[0];
      ++speedup_count;
    }
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("paper: SOS branching ~100x faster than binary branching.\n");
  std::printf("ours : mean speedup %.1fx on this model family.\n",
              speedup_sum / speedup_count);
  return 0;
}
