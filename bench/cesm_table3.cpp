// Reproduces Table III of the paper: detailed per-component timings for
// layout (1) at 1-degree (128 and 2048 nodes) and 1/8-degree (8192 and
// 32768 nodes), with and without the ocean node-count constraint.
//
// For every block we print, side by side:
//   * the paper's published numbers (transcribed in cesm/data.cpp), and
//   * our reproduction: the paper's manual allocation evaluated on the
//     simulated substrate, and our own HSLB pipeline's predicted/actual
//     results (gather -> fit -> MINLP solve -> execute).
//
// Absolute seconds agree closely because the simulator is calibrated
// through the published observations; the claims to check are the shapes:
// HSLB matches or beats manual, and dropping the ocean constraint at 32k
// nodes buys a large improvement (~25-40% in the paper).
#include <cstdio>

#include "cesm/pipeline.hpp"
#include "common/table.hpp"

namespace {

using namespace hslb;
using namespace hslb::cesm;

void run_case(const PublishedCase& pub) {
  cesm::PipelineOptions opt;
  opt.ocean_constrained = pub.ocean_constrained;
  const auto res = run_pipeline(pub.resolution, pub.total_nodes, opt);
  Simulator oracle(pub.resolution);

  Table t({"component", "paper manual n/s", "our manual s", "paper HSLB n",
           "our HSLB n", "paper pred s", "our pred s", "paper actual s",
           "our actual s"});
  t.set_title(std::string("Table III block: ") + to_string(pub.resolution) +
              ", " + std::to_string(pub.total_nodes) + " nodes" +
              (pub.ocean_constrained ? "" : ", unconstrained ocean nodes"));

  std::array<double, 4> manual_true{};
  for (Component c : kComponents) {
    const auto i = index(c);
    std::string paper_manual = "-";
    std::string our_manual = "-";
    if (pub.has_manual) {
      paper_manual = std::to_string(pub.manual_nodes[i]) + "/" +
                     Table::num(pub.manual_seconds[i], 1);
      manual_true[i] = oracle.true_seconds(c, pub.manual_nodes[i]);
      our_manual = Table::num(manual_true[i], 1);
    }
    t.add_row({to_string(c), paper_manual, our_manual,
               Table::num(static_cast<long long>(pub.hslb_nodes[i])),
               Table::num(static_cast<long long>(res.solution.nodes[i])),
               Table::num(pub.hslb_predicted_seconds[i], 1),
               Table::num(res.solution.predicted_seconds[i], 1),
               Table::num(pub.hslb_actual_seconds[i], 1),
               Table::num(res.actual_seconds[i], 1)});
  }
  t.add_rule();
  t.add_row({"total",
             pub.has_manual ? Table::num(pub.manual_total, 1) : "-",
             pub.has_manual
                 ? Table::num(layout_total(Layout::Hybrid, manual_true), 1)
                 : "-",
             "", "", Table::num(pub.hslb_predicted_total, 1),
             Table::num(res.solution.predicted_total, 1),
             Table::num(pub.hslb_actual_total, 1),
             Table::num(res.actual_total, 1)});
  std::printf("%s", t.str().c_str());
  std::printf(
      "  solver: %zu nodes, %zu LPs, %zu OA cuts, %.3f s, status=%s, gap=%g\n\n",
      res.solution.stats.nodes, res.solution.stats.lp_solves,
      res.solution.stats.cuts, res.solution.stats.seconds,
      minlp::to_string(res.solution.stats.status).c_str(),
      res.solution.stats.gap);
}

}  // namespace

int main() {
  std::printf("=== Table III reproduction (layout 1, HSLB vs manual) ===\n\n");
  for (const auto& pub : published_cases()) run_case(pub);

  // The §IV-B headline: unconstrained ocean at 32,768 nodes.
  const auto& cases = published_cases();
  const auto& con = cases[3];
  const auto& unc = cases[5];
  std::printf("paper: unconstrained-ocean predicted improvement at 32768 "
              "nodes: %.0f%% (1593 -> 1129 s); actual: %.0f%% (1612 -> 1256 s)\n",
              100.0 * (1.0 - unc.hslb_predicted_total / con.hslb_predicted_total),
              100.0 * (1.0 - unc.hslb_actual_total / con.hslb_actual_total));
  cesm::PipelineOptions copt, uopt;
  copt.ocean_constrained = true;
  uopt.ocean_constrained = false;
  const auto rcon = run_pipeline(Resolution::EighthDeg, 32768, copt);
  const auto runc = run_pipeline(Resolution::EighthDeg, 32768, uopt);
  std::printf("ours : unconstrained-ocean predicted improvement at 32768 "
              "nodes: %.0f%% (%.0f -> %.0f s); actual: %.0f%% (%.0f -> %.0f s)\n",
              100.0 * (1.0 - runc.solution.predicted_total /
                                 rcon.solution.predicted_total),
              rcon.solution.predicted_total, runc.solution.predicted_total,
              100.0 * (1.0 - runc.actual_total / rcon.actual_total),
              rcon.actual_total, runc.actual_total);
  return 0;
}
