// The shared perturbation scenario used by the robustness benches
// (execution_robustness, adaptive_rebalance): one water cluster, one node
// budget, one straggler-severity ladder, one fail-stop injection. Keeping
// the construction in one place guarantees the static-vs-DLB bench and the
// closed-loop bench stress the *same* world, so their headline numbers in
// BENCH_solver.json are directly comparable.
#pragma once

#include <string>
#include <vector>

#include "common/strings.hpp"
#include "fmo/cost.hpp"
#include "fmo/molecule.hpp"
#include "fmo/schedulers.hpp"
#include "hslb/budget.hpp"

namespace hslb::scenario {

constexpr long long kNodes = 192;
constexpr std::size_t kDlbGroups = 24;
constexpr long long kFailNode = 0;
constexpr double kFailTime = 1.0;  // seconds; downtime stays infinite

/// The benchmark system: 24 merged water fragments, SCF dimers within
/// 4.5 Å. Large enough that the min-max allocation is non-trivial on 192
/// nodes, small enough that a full severity sweep stays in CI budget.
inline fmo::System water24() {
  return fmo::water_cluster({.fragments = 24,
                             .merge_fraction = 0.5,
                             .scf_cutoff_angstrom = 4.5,
                             .seed = 30});
}

/// Straggler severities swept by both benches (cv of the per-node
/// max(1, lognormal) slowdown factors).
inline std::vector<double> straggler_severities() {
  return {0.0, 0.05, 0.1, 0.2, 0.4};
}

inline std::string cv_label(double cv) { return strings::format("%g", cv); }

/// Noise-free execution baseline: isolates the injected perturbation
/// (stragglers, fail-stop, drift) from run-to-run task noise.
inline fmo::RunOptions noise_free_run() {
  fmo::RunOptions base;
  base.noise_cv = 0.0;
  base.seed = 17;
  return base;
}

/// Permanent fail-stop of node 0 early in the SCC loop.
inline void inject_fail_stop(fmo::RunOptions& opt) {
  opt.fail_node = kFailNode;
  opt.fail_time = kFailTime;
}

/// Budget tasks from the true (oracle) monomer costs — no gather noise —
/// for benches that run the Solve step directly.
inline std::vector<BudgetTask> oracle_tasks(const fmo::System& sys,
                                            const fmo::CostModel& cost) {
  std::vector<BudgetTask> tasks;
  tasks.reserve(sys.fragments.size());
  for (const auto& f : sys.fragments)
    tasks.push_back(BudgetTask{f.name, cost.monomer(f), 1, kNodes});
  return tasks;
}

/// The DLB baseline's group layout: 24 uniform groups over the budget.
inline fmo::GroupLayout dlb_layout() {
  return fmo::GroupLayout::uniform(kNodes, kDlbGroups);
}

}  // namespace hslb::scenario
