// Microbenchmarks of the Fit step: box-constrained Levenberg-Marquardt with
// multistart on the paper's performance-function family.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "perf/fit.hpp"

namespace {

using namespace hslb;

perf::SampleSet make_samples(std::size_t points, double noise_cv,
                             std::uint64_t seed) {
  Rng rng(seed);
  const perf::Model truth{27459.0, 1.9e-4, 1.23, 43.7};  // 1-degree atm-like
  perf::SampleSet samples;
  double n = 8.0;
  for (std::size_t i = 0; i < points; ++i) {
    samples.push_back({n, truth.eval(n) * rng.lognormal_unit_mean(noise_cv)});
    n *= 2.3;
  }
  return samples;
}

void BM_FitSingleComponent(benchmark::State& state) {
  const auto samples =
      make_samples(static_cast<std::size_t>(state.range(0)), 0.02, 5);
  for (auto _ : state) {
    const auto fit = perf::fit(samples);
    benchmark::DoNotOptimize(fit.sse);
  }
}
BENCHMARK(BM_FitSingleComponent)->Arg(4)->Arg(6)->Arg(10);

void BM_FitManyFragments(benchmark::State& state) {
  // The FMO pipeline fits one model per fragment: hundreds of small fits.
  const auto fragments = static_cast<std::size_t>(state.range(0));
  std::vector<perf::SampleSet> all;
  for (std::size_t f = 0; f < fragments; ++f)
    all.push_back(make_samples(5, 0.03, 100 + f));
  perf::FitOptions opt;
  opt.num_starts = 8;
  for (auto _ : state) {
    double acc = 0.0;
    for (const auto& s : all) acc += perf::fit(s, opt).r2;
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_FitManyFragments)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
