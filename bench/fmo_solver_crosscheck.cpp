// FMO-6: the specialized polynomial-time resource-allocation solvers
// (Ibaraki-Katoh style greedy, the paper's ref [11]) against the general
// LP/NLP branch-and-bound on identical models — objective values must
// agree, and the table shows the asymptotic cost difference.
#include <chrono>
#include <cmath>
#include <cstdio>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "hslb/budget.hpp"
#include "minlp/bnb.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  using namespace hslb;

  std::printf("=== Specialized greedy vs branch-and-bound (min-max budget) ===\n\n");

  Table t({"tasks", "budget", "greedy obj", "bnb obj", "rel diff", "greedy s",
           "bnb s", "bnb nodes"});

  Rng rng(424242);
  bool all_match = true;
  for (std::size_t tasks : {4u, 8u, 16u, 32u}) {
    const long long budget = static_cast<long long>(tasks) * 12;
    std::vector<BudgetTask> model_tasks;
    for (std::size_t i = 0; i < tasks; ++i) {
      perf::Model m;
      m.a = rng.uniform(50.0, 5000.0);
      m.b = 0.0;
      m.c = 1.0;
      m.d = rng.uniform(0.0, 2.0);
      model_tasks.push_back(
          BudgetTask{"t" + std::to_string(i), m, 1, budget});
    }

    const auto g0 = std::chrono::steady_clock::now();
    const auto greedy = solve_min_max(model_tasks, budget);
    const double greedy_s = seconds_since(g0);

    const auto b0 = std::chrono::steady_clock::now();
    const auto minlp_model =
        build_budget_minlp(model_tasks, budget, Objective::MinMax);
    const auto bnb = minlp::solve(minlp_model);
    const double bnb_s = seconds_since(b0);

    const double rel =
        std::fabs(bnb.objective - greedy.predicted_total) /
        (1.0 + greedy.predicted_total);
    all_match = all_match && rel < 1e-5 &&
                bnb.status == minlp::BnbStatus::Optimal;
    t.add_row({Table::num(static_cast<long long>(tasks)),
               Table::num(static_cast<long long>(budget)),
               Table::num(greedy.predicted_total, 5),
               Table::num(bnb.objective, 5),
               Table::num(rel, 8), Table::num(greedy_s, 5),
               Table::num(bnb_s, 3),
               Table::num(static_cast<long long>(bnb.nodes))});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("claims: objectives agree to optimality on every instance: %s\n",
              all_match ? "yes" : "NO (!)");
  return all_match ? 0 : 1;
}
