// FMO-4 (title paper): where dynamic load balancing breaks down.
//
// §I: "in the special cases of a few large tasks of diverse size, DLB
// algorithms are not appropriate because the number of tasks is much
// smaller than the number of processors." This bench sweeps the
// task-to-group granularity: many small groups (DLB's comfort zone) to one
// group per fragment (the paper's regime), measuring busy-time imbalance
// and efficiency for both schedulers.
#include <cstdio>

#include "common/table.hpp"
#include "fmo/driver.hpp"
#include "fmo/schedulers.hpp"

int main() {
  using namespace hslb;
  using namespace hslb::fmo;

  std::printf("=== Load imbalance: DLB vs HSLB across group granularity ===\n\n");

  const std::size_t fragments = 32;
  const long long nodes = 2048;
  const auto sys = water_cluster({.fragments = fragments, .merge_fraction = 0.5,
                                  .scf_cutoff_angstrom = 4.5, .seed = 5150});
  CostModel cost;
  RunOptions run;

  std::printf("system: %zu fragments (diversity %.1fx) on %lld nodes\n\n",
              fragments, sys.size_diversity(), nodes);

  Table t({"DLB groups", "frags/group", "DLB total s", "DLB imbalance",
           "DLB eff"});
  t.set_title("DLB with varying group counts (equal-size groups)");
  for (std::size_t groups : {4u, 8u, 16u, 32u}) {
    const auto dlb = run_dlb(sys, cost, GroupLayout::uniform(nodes, groups), run);
    t.add_row({Table::num(static_cast<long long>(groups)),
               Table::num(static_cast<double>(fragments) /
                              static_cast<double>(groups), 1),
               Table::num(dlb.total_seconds, 3),
               Table::num(dlb.group_imbalance(), 3),
               Table::num(dlb.efficiency(nodes), 3)});
  }
  std::printf("%s\n", t.str().c_str());

  fmo::PipelineOptions opt;
  const auto res = run_pipeline(sys, cost, nodes, opt);
  std::printf("HSLB (one sized group per fragment): total %.3f s, "
              "imbalance %.3f, efficiency %.3f\n\n",
              res.hslb.total_seconds, res.hslb.group_imbalance(),
              res.hslb.efficiency(nodes));
  std::printf("claims: DLB's best configuration still trails HSLB; DLB "
              "degrades as frags/group -> 1 (no work left to steal).\n");
  return 0;
}
