#include "bench/bench_json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace hslb::bench {

namespace {

/// Cursor over the controlled JSON subset write_json emits. This is not a
/// general JSON parser: it reads exactly {"key": {"key": number, ...}, ...}
/// and gives up (returning what it has) on anything else.
struct Scanner {
  const std::string& s;
  std::size_t i = 0;

  void skip_ws() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  }
  bool consume(char c) {
    skip_ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
  bool peek(char c) {
    skip_ws();
    return i < s.size() && s[i] == c;
  }
  bool string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\' && i + 1 < s.size()) ++i;  // keep escaped char verbatim
      out.push_back(s[i++]);
    }
    return consume('"');
  }
  bool number(double& out) {
    skip_ws();
    std::size_t end = i;
    while (end < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[end])) || s[end] == '-' ||
            s[end] == '+' || s[end] == '.' || s[end] == 'e' || s[end] == 'E'))
      ++end;
    if (end == i) return false;
    try {
      out = std::stod(s.substr(i, end - i));
    } catch (...) {
      return false;
    }
    i = end;
    return true;
  }
};

}  // namespace

JsonMetrics read_json(const std::string& path) {
  JsonMetrics out;
  std::ifstream in(path);
  if (!in.good()) return out;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  Scanner sc{text};
  if (!sc.consume('{')) return out;
  while (!sc.peek('}')) {
    std::string entry;
    if (!sc.string(entry) || !sc.consume(':') || !sc.consume('{')) return out;
    auto& metrics = out[entry];
    while (!sc.peek('}')) {
      std::string key;
      double value = 0.0;
      if (!sc.string(key) || !sc.consume(':') || !sc.number(value)) return out;
      metrics[key] = value;
      if (!sc.consume(',')) break;
    }
    if (!sc.consume('}')) return out;
    if (!sc.consume(',')) break;
  }
  return out;
}

void write_json(const std::string& path, const JsonMetrics& metrics) {
  std::ofstream out(path);
  if (!out.good()) return;
  out << "{";
  bool first_entry = true;
  for (const auto& [entry, values] : metrics) {
    if (!first_entry) out << ",";
    first_entry = false;
    out << "\n  \"" << entry << "\": {";
    bool first_metric = true;
    for (const auto& [key, value] : values) {
      if (!std::isfinite(value)) continue;
      if (!first_metric) out << ",";
      first_metric = false;
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.12g", value);
      out << "\n    \"" << key << "\": " << buf;
    }
    out << "\n  }";
  }
  out << "\n}\n";
}

void merge_json(const std::string& path, const std::string& entry,
                const std::map<std::string, double>& metrics) {
  JsonMetrics all = read_json(path);
  all[entry] = metrics;
  write_json(path, all);
}

}  // namespace hslb::bench
