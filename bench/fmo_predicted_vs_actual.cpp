// FMO-5 (title paper): how close the static predictions land to execution.
//
// Claim to match: HSLB's predicted times are within a few percent of the
// actual execution (Table III's predicted-vs-actual columns show the same
// property for CESM).
#include <cmath>
#include <cstdio>

#include "common/table.hpp"
#include "fmo/driver.hpp"

int main() {
  using namespace hslb;
  using namespace hslb::fmo;

  std::printf("=== Predicted vs actual SCC-loop time (HSLB static schedule) ===\n\n");

  Table t({"system", "fragments", "nodes", "predicted SCC s", "actual SCC s",
           "error %", "min fit R^2"});

  double worst_err = 0.0;
  const auto add = [&](const System& sys, long long nodes) {
    CostModel cost;
    fmo::PipelineOptions opt;
    const auto res = run_pipeline(sys, cost, nodes, opt);
    const double err = 100.0 *
                       std::fabs(res.predicted_scc_seconds - res.hslb.scc_seconds) /
                       res.hslb.scc_seconds;
    worst_err = std::max(worst_err, err);
    t.add_row({sys.name, Table::num(static_cast<long long>(sys.num_fragments())),
               Table::num(static_cast<long long>(nodes)),
               Table::num(res.predicted_scc_seconds, 3),
               Table::num(res.hslb.scc_seconds, 3), Table::num(err, 2),
               Table::num(res.min_r2, 4)});
  };

  for (std::size_t frags : {16u, 64u, 256u}) {
    add(water_cluster({.fragments = frags, .merge_fraction = 0.4,
                       .scf_cutoff_angstrom = 4.5, .seed = 7000 + frags}),
        static_cast<long long>(frags) * 16);
  }
  for (std::size_t residues : {32u, 128u}) {
    add(polypeptide({.residues = residues, .scf_cutoff_angstrom = 6.0,
                     .seed = 8000 + residues}),
        static_cast<long long>(residues) * 16);
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("claims: prediction error stays within a few percent "
              "(worst here: %.2f%%)\n", worst_err);
  return 0;
}
