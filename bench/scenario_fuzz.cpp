// Seeded randomized scenario fuzzer over the substrate registry.
//
// Each seed draws one scenario — substrate x variant x sizes x machine x
// noise/straggler (and, on a slice of the seeds, a fail-stop with the
// adaptive controller on) — builds the Application through the
// SubstrateRegistry, runs the full four-step pipeline, and gates:
//
//   * the run completes (clean scenarios always; failure scenarios under
//     the adaptive controller, which must recover);
//   * on substrates that track a dynamic baseline (BaselineReporter),
//     HSLB never loses to DLB by more than --bound on any drawn scenario.
//
// Every draw is a pure function of (seed0 + i), so a CI failure prints the
// seed and the exact spec, and `scenario_fuzz --seed0 SEED --seeds 1`
// reproduces it locally. Summary rows merge into BENCH_solver.json under
// fuzz/*; a counterexample also lands in fuzz_counterexample.txt for the
// CI artifact upload.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_json.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "hslb/pipeline.hpp"
#include "hslb/registry.hpp"
#include "substrates/registry_builtins.hpp"

namespace {

using namespace hslb;

constexpr const char* kJsonPath = "BENCH_solver.json";
constexpr const char* kCounterexamplePath = "fuzz_counterexample.txt";

/// Draw one scenario from the seed. Everything is derived from `seed`
/// alone (fresh Rng, fixed draw order), so scenario i is independent of
/// how many scenarios ran before it.
ScenarioSpec draw_scenario(std::uint64_t seed) {
  Rng rng(derive_seed(0xf022u, seed));
  ScenarioSpec spec;

  // Substrate weights: the cheap wave substrates carry most of the
  // sweep; the heavier fmo/cesm pipelines get a smaller slice.
  const double u = rng.uniform();
  spec.substrate = u < 0.35 ? "fmm" : u < 0.70 ? "amrex" : u < 0.90 ? "fmo"
                                                                    : "cesm";
  const auto* info = SubstrateRegistry::instance().find(spec.substrate);
  spec.variant = info->variants[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(info->variants.size()) - 1))];

  // Sizes: small enough that 200+ pipelines fit in a CI smoke step.
  if (spec.substrate == "fmm" || spec.substrate == "amrex") {
    spec.tasks = rng.uniform_int(4, 8);
    spec.nodes = spec.tasks * rng.uniform_int(3, 8);
  } else if (spec.substrate == "fmo") {
    spec.tasks = rng.uniform_int(6, 10);
    spec.nodes = spec.tasks * rng.uniform_int(4, 8);
  } else {
    spec.nodes = 32 * rng.uniform_int(3, 6);
  }
  spec.system_seed = derive_seed(seed, 1);
  spec.bench_seed = derive_seed(seed, 2);
  spec.run_seed = derive_seed(seed, 3);
  spec.fit_points = 4;

  // Noise draws: clean, mild, and rough gather/execution noise, plus a
  // straggler ladder matching the robustness benches' severities.
  const double bench_draws[] = {0.0, 0.02, 0.05};
  const double exec_draws[] = {0.0, 0.02, 0.05};
  const double straggler_draws[] = {0.0, 0.0, 0.1, 0.2};
  spec.bench_noise_cv = bench_draws[rng.uniform_int(0, 2)];
  spec.noise_cv = exec_draws[rng.uniform_int(0, 2)];
  spec.straggler_cv = straggler_draws[rng.uniform_int(0, 3)];

  // Machine draw: most scenarios compute-only; some give the wave
  // substrates a finite link (fmm, amrex) and tight node memory (amrex,
  // whose per-block working sets are ~0.1 GB) so comm/paging charges and
  // the extended cost terms are exercised.
  if ((spec.substrate == "fmm" || spec.substrate == "amrex") &&
      rng.uniform() < 0.25) {
    spec.link_gb_per_s = rng.uniform(5.0, 50.0);
    if (spec.substrate == "amrex") {
      spec.memory_gb_per_node = rng.uniform(0.02, 0.1);
      spec.page_s_per_gb = 1.0;
    }
  }

  // Failure slice: adaptive controller on, one permanent early fail-stop.
  // (cesm recovery is exercised by its own tier-1 suite; the fuzzer keeps
  // its draws on the substrates whose recovery shrinks a node segment.)
  if (spec.substrate != "cesm" && rng.uniform() < 0.15) {
    spec.rebalance.adaptive = true;
    spec.fail_node = 0;
    spec.fail_time = 0.5;
  }
  return spec;
}

struct Counterexample {
  std::uint64_t seed = 0;
  ScenarioSpec spec;
  std::string reason;
};

void report_counterexample(const Counterexample& ce) {
  const std::string text = strings::format(
      "scenario_fuzz counterexample\n"
      "  seed:   %llu\n"
      "  spec:   %s\n"
      "  reason: %s\n"
      "  repro:  ./scenario_fuzz --seed0 %llu --seeds 1\n",
      static_cast<unsigned long long>(ce.seed), ce.spec.str().c_str(),
      ce.reason.c_str(), static_cast<unsigned long long>(ce.seed));
  std::printf("\nFAIL: %s", text.c_str());
  std::ofstream out(kCounterexamplePath);
  out << text;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seeds = 200;
  std::uint64_t seed0 = 1;
  // Observed worst hslb/dlb over the first 1000 seeds is 1.124 (tiny noisy
  // scenarios where a near-balanced workload gives DLB nothing to lose);
  // 1.3 gates regressions with margin.
  double bound = 1.3;
  for (int i = 1; i < argc; ++i) {
    const auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--seeds")) {
      seeds = std::strtoull(next("--seeds"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--seed0")) {
      seed0 = std::strtoull(next("--seed0"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--bound")) {
      bound = std::strtod(next("--bound"), nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: scenario_fuzz [--seeds N] [--seed0 S] [--bound X]\n");
      return 2;
    }
  }

  substrates::register_builtin_substrates();

  struct PerSubstrate {
    std::size_t count = 0;
    std::size_t compared = 0;  ///< scenarios with a DLB baseline
    double worst_ratio = 0.0;  ///< max hslb/dlb seen
    double sum_ratio = 0.0;
  };
  std::map<std::string, PerSubstrate> stats;
  std::size_t failures = 0;
  Counterexample first_failure;

  for (std::uint64_t i = 0; i < seeds; ++i) {
    const std::uint64_t seed = seed0 + i;
    const auto spec = draw_scenario(seed);
    auto& s = stats[spec.substrate];
    ++s.count;

    const auto app = SubstrateRegistry::instance().make(spec);
    PipelineOptions opt;
    opt.rebalance = spec.rebalance;
    const auto run = Pipeline(opt).run(*app);

    std::string reason;
    if (!run.report.exec_completed) {
      reason = spec.rebalance.adaptive
                   ? "adaptive run did not recover from the fail-stop"
                   : "clean run did not complete";
    } else if (auto* baseline = dynamic_cast<BaselineReporter*>(app.get())) {
      const double hslb = baseline->hslb_total_seconds();
      const double dlb = baseline->dlb_total_seconds();
      if (hslb > 0.0 && dlb > 0.0 &&
          dlb != std::numeric_limits<double>::infinity()) {
        const double ratio = hslb / dlb;
        ++s.compared;
        s.worst_ratio = std::max(s.worst_ratio, ratio);
        s.sum_ratio += ratio;
        if (ratio > bound) {
          reason = strings::format(
              "HSLB lost to DLB by %.3fx (bound %.2fx): %.4f s vs %.4f s",
              ratio, bound, hslb, dlb);
        }
      }
    }
    if (!reason.empty()) {
      if (failures == 0) first_failure = {seed, spec, reason};
      ++failures;
    }
  }

  Table t({"substrate", "scenarios", "compared", "worst hslb/dlb",
           "mean hslb/dlb"});
  double worst = 0.0;
  for (const auto& [name, s] : stats) {
    worst = std::max(worst, s.worst_ratio);
    t.add_row({name, Table::num(static_cast<long long>(s.count)),
               Table::num(static_cast<long long>(s.compared)),
               Table::num(s.worst_ratio, 3),
               Table::num(s.compared ? s.sum_ratio / s.compared : 0.0, 3)});
    bench::merge_json(kJsonPath, "fuzz/" + name,
                      {{"scenarios", static_cast<double>(s.count)},
                       {"compared", static_cast<double>(s.compared)},
                       {"worst_ratio", s.worst_ratio},
                       {"mean_ratio",
                        s.compared ? s.sum_ratio / s.compared : 0.0}});
  }
  std::printf("scenario fuzz: %llu scenarios (seed0 %llu), bound %.2fx\n\n%s",
              static_cast<unsigned long long>(seeds),
              static_cast<unsigned long long>(seed0), bound, t.str().c_str());
  bench::merge_json(kJsonPath, "fuzz/summary",
                    {{"scenarios", static_cast<double>(seeds)},
                     {"seed0", static_cast<double>(seed0)},
                     {"bound", bound},
                     {"worst_ratio", worst},
                     {"failures", static_cast<double>(failures)}});

  if (failures > 0) {
    report_counterexample(first_failure);
    std::printf("%zu of %llu scenarios failed\n", failures,
                static_cast<unsigned long long>(seeds));
    return 1;
  }
  std::printf("\nall scenarios within bound; worst hslb/dlb %.3fx\n", worst);
  return 0;
}
