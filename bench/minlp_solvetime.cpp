// §III-E claim: "the MINLP for 40960 nodes took less than 60 seconds to
// solve on one core." This microbenchmark times our LP/NLP branch-and-bound
// on the full layout-1 model (SOS ocean set; atmosphere set at 1 degree) as
// the partition grows to all of Intrepid (40,960 nodes).
#include <benchmark/benchmark.h>

#include "bench/bench_json_main.hpp"
#include "cesm/layouts.hpp"

namespace {

using namespace hslb;
using namespace hslb::cesm;

std::array<perf::Model, 4> models(Resolution r) {
  std::array<perf::Model, 4> m;
  for (Component c : kComponents) m[index(c)] = ground_truth(r, c);
  return m;
}

void BM_LayoutSolveDeg1(benchmark::State& state) {
  const auto n = static_cast<long long>(state.range(0));
  auto p = make_problem(Resolution::Deg1, Layout::Hybrid, n, models(Resolution::Deg1));
  std::size_t bnb_nodes = 0;
  for (auto _ : state) {
    const auto sol = solve_layout(p);
    bnb_nodes = sol.stats.nodes;
    benchmark::DoNotOptimize(sol.predicted_total);
  }
  state.counters["bnb_nodes"] = static_cast<double>(bnb_nodes);
}
BENCHMARK(BM_LayoutSolveDeg1)->Arg(128)->Arg(2048)->Unit(benchmark::kMillisecond);

void BM_LayoutSolveEighth(benchmark::State& state) {
  const auto n = static_cast<long long>(state.range(0));
  auto p = make_problem(Resolution::EighthDeg, Layout::Hybrid, n,
                        models(Resolution::EighthDeg));
  std::size_t bnb_nodes = 0;
  for (auto _ : state) {
    const auto sol = solve_layout(p);
    bnb_nodes = sol.stats.nodes;
    benchmark::DoNotOptimize(sol.predicted_total);
  }
  state.counters["bnb_nodes"] = static_cast<double>(bnb_nodes);
}
// 40,960 = the full Intrepid machine (the paper's < 60 s data point).
BENCHMARK(BM_LayoutSolveEighth)
    ->Arg(8192)
    ->Arg(32768)
    ->Arg(40960)
    ->Unit(benchmark::kMillisecond);

void BM_LayoutSolveUnconstrainedOcean(benchmark::State& state) {
  const auto n = static_cast<long long>(state.range(0));
  auto p = make_problem(Resolution::EighthDeg, Layout::Hybrid, n,
                        models(Resolution::EighthDeg),
                        /*ocean_constrained=*/false);
  for (auto _ : state) {
    const auto sol = solve_layout(p);
    benchmark::DoNotOptimize(sol.predicted_total);
  }
}
BENCHMARK(BM_LayoutSolveUnconstrainedOcean)
    ->Arg(32768)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return hslb::bench::run_benchmarks_with_json(argc, argv, "BENCH_solver.json");
}
