// google-benchmark bridge for bench_json: a drop-in replacement for
// BENCHMARK_MAIN() that additionally merges every benchmark's real time,
// iteration count, and user counters into BENCH_solver.json.
#pragma once

#include <benchmark/benchmark.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_json.hpp"

namespace hslb::bench {

/// Display reporter that forwards to the stock console reporter and
/// additionally merges one JSON entry per benchmark run. (Wrapping the
/// display reporter — rather than passing a second "file" reporter — keeps
/// google-benchmark from demanding --benchmark_out.)
class JsonMergeReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonMergeReporter(std::string path) : path_(std::move(path)) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.iterations == 0) continue;  // errored / skipped
      std::map<std::string, double> m;
      m["real_time_s"] = run.real_accumulated_time /
                         static_cast<double>(run.iterations);
      m["iterations"] = static_cast<double>(run.iterations);
      for (const auto& [name, counter] : run.counters)
        m[name] = counter.value;
      merge_json(path_, run.benchmark_name(), m);
    }
  }

 private:
  std::string path_;
};

/// BENCHMARK_MAIN() body with the JSON reporter attached.
inline int run_benchmarks_with_json(int argc, char** argv,
                                    const std::string& json_path) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonMergeReporter reporter(json_path);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}

}  // namespace hslb::bench
