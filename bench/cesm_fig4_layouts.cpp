// Reproduces Figure 4 of the paper: predicted scaling of component layouts
// (1)-(3) at 1-degree resolution, based on the scaling curves of Figure 2.
//
// The paper predicts layouts 1 and 2 perform similarly while layout 3
// (fully sequential) is clearly worst, and reports R^2 = 1.0 between the
// layout-1 prediction and the experimental data. We fit one set of
// component models, solve the allocation MINLP for each layout over a node
// sweep, and compare the layout-1 predictions against "experimental"
// (simulated) runs.
#include <cstdio>
#include <vector>

#include "cesm/pipeline.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

int main() {
  using namespace hslb;
  using namespace hslb::cesm;

  std::printf("=== Figure 4 reproduction: layouts 1-3 predicted scaling, 1 degree ===\n\n");

  // One gather+fit at the largest partition; reuse the models for the sweep
  // (fits interpolate across the whole node range).
  cesm::PipelineOptions fit_opt;
  const auto fitted = run_pipeline(Resolution::Deg1, 2048, fit_opt);
  std::array<perf::Model, 4> models;
  for (Component c : kComponents)
    models[index(c)] = fitted.fits[index(c)].model;

  const std::vector<long long> sweep{128, 256, 512, 1024, 2048};
  Table t({"nodes", "layout1 pred", "layout2 pred", "layout3 pred",
           "layout1 exp"});
  t.set_title("Predicted total seconds per layout (layout 1 also executed)");

  std::vector<double> l1_pred, l1_exp;
  for (long long n : sweep) {
    std::vector<std::string> row{Table::num(static_cast<long long>(n))};
    std::array<long long, 4> l1_nodes{};
    for (int l = 1; l <= 3; ++l) {
      auto p = make_problem(Resolution::Deg1, static_cast<Layout>(l), n, models);
      const auto sol = solve_layout(p);
      row.push_back(Table::num(sol.predicted_total, 1));
      if (l == 1) {
        l1_pred.push_back(sol.predicted_total);
        l1_nodes = sol.nodes;
      }
    }
    Simulator sim(Resolution::Deg1);
    const double exp_total = sim.run_total(Layout::Hybrid, l1_nodes);
    l1_exp.push_back(exp_total);
    row.push_back(Table::num(exp_total, 1));
    t.add_row(std::move(row));
  }
  std::printf("%s\n", t.str().c_str());

  const double r2 = stats::r_squared(l1_exp, l1_pred);
  std::printf("paper: layouts 1 and 2 similar, layout 3 worst; "
              "R^2(prediction, experiment) for layout 1 = 1.0\n");
  std::printf("ours : R^2(prediction, experiment) for layout 1 = %.4f\n", r2);
  return 0;
}
