// FMO-1 (title paper, structural reconstruction): strong-scaling comparison
// of HSLB against the stock dynamic load balancer on a heterogeneous water
// cluster, sweeping the node count at fixed fragment count.
//
// Qualitative claims to match (see EXPERIMENTS.md): with few large tasks of
// diverse size, (a) HSLB's makespan is at or below DLB's at every scale,
// (b) the gap grows as nodes-per-fragment grows (DLB's quantization to
// equal groups wastes more), and (c) HSLB retains high node-weighted
// efficiency out to large partitions.
#include <algorithm>
#include <cstdio>

#include "common/table.hpp"
#include "fmo/driver.hpp"

int main() {
  using namespace hslb;
  using namespace hslb::fmo;

  std::printf("=== FMO strong scaling: HSLB vs DLB (water cluster) ===\n\n");

  const std::size_t fragments = 64;
  const auto sys = water_cluster({.fragments = fragments, .merge_fraction = 0.35,
                                  .scf_cutoff_angstrom = 4.5, .seed = 2012});
  CostModel cost;
  std::printf("system: %zu fragments, size diversity %.1fx, %zu SCF dimers, "
              "%zu ES dimers\n\n",
              sys.num_fragments(), sys.size_diversity(), sys.scf_dimers.size(),
              sys.es_dimers);

  Table t({"nodes", "nodes/frag", "DLB total s", "HSLB total s", "speedup",
           "DLB eff", "HSLB eff", "HSLB SCC pred s", "HSLB SCC actual s"});
  t.set_title("Fixed 64-fragment system, increasing partition size");

  double best_ratio = 0.0;
  // The paper's FMO runs stayed at <= ~64 nodes per fragment; we sweep
  // through that regime and one saturation point beyond it (marked below).
  for (long long nodes = 64; nodes <= 16384; nodes *= 4) {
    fmo::PipelineOptions opt;
    const auto res = run_pipeline(sys, cost, nodes, opt);
    const double ratio = res.dlb.total_seconds / res.hslb.total_seconds;
    best_ratio = std::max(best_ratio, ratio);
    t.add_row({Table::num(static_cast<long long>(nodes)),
               Table::num(static_cast<long long>(nodes / 64)) +
                   (nodes / 64 > 64 ? " (saturated)" : ""),
               Table::num(res.dlb.total_seconds, 3),
               Table::num(res.hslb.total_seconds, 3),
               Table::num(ratio, 2) + "x",
               Table::num(res.dlb.efficiency(nodes), 3),
               Table::num(res.hslb.efficiency(nodes), 3),
               Table::num(res.predicted_scc_seconds, 3),
               Table::num(res.hslb.scc_seconds, 3)});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf(
      "claims: HSLB matches DLB at 1 node/fragment and wins decisively\n"
      "through the paper's operating regime (<= 64 nodes/fragment; peak "
      "%.2fx here).\nBeyond it every fragment sits on its flat "
      "communication/serial floor and the\ntwo schedulers converge to "
      "within performance-model fitting error.\n",
      best_ratio);
  return 0;
}
