// Fine-tuning ablation (§II): adding the coupler and river models that the
// paper's HSLB models exclude because "the contribution to the total time
// is small".
//
// Claims to check: (a) including them changes the optimal allocation only
// slightly, (b) evaluating the plain allocation under the fine-tuned
// semantics costs only a few percent versus re-optimizing — i.e. the
// paper's exclusion is justified, and the machinery is there for the
// promised later fine-tuning.
#include <cstdio>

#include "cesm/finetuning.hpp"
#include "common/table.hpp"

int main() {
  using namespace hslb;
  using namespace hslb::cesm;

  std::printf("=== Fine tuning: coupler + river components (layout 1) ===\n\n");

  std::array<perf::Model, 4> models;
  for (Component c : kComponents)
    models[index(c)] = ground_truth(Resolution::Deg1, c);
  const auto minor = synthetic_minor_components(models);

  Table t({"total nodes", "variant", "lnd", "ice", "atm", "ocn",
           "fine-tuned total s"});
  double worst_gap = 0.0;
  for (long long n : {128LL, 512LL, 2048LL}) {
    const auto problem = make_problem(Resolution::Deg1, Layout::Hybrid, n, models);
    const auto plain = solve_layout(problem);
    const auto tuned = solve_finetuned(problem, minor);

    const double plain_total = finetuned_total(problem, minor, plain.nodes);
    const double tuned_total = finetuned_total(problem, minor, tuned.nodes);
    worst_gap = std::max(worst_gap, plain_total / tuned_total - 1.0);

    auto row = [&](const char* name, const Solution& s, double total) {
      t.add_row({Table::num(static_cast<long long>(n)), name,
                 Table::num(s.nodes[0]), Table::num(s.nodes[1]),
                 Table::num(s.nodes[2]), Table::num(s.nodes[3]),
                 Table::num(total, 3)});
    };
    row("4-component optimum", plain, plain_total);
    row("6-component optimum", tuned, tuned_total);
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("claims: re-optimizing with coupler+river shifts the optimum "
              "by at most %.2f%% here —\nconsistent with the paper's choice "
              "to exclude them and revisit \"for fine tuning\".\n",
              100.0 * worst_gap);
  return 0;
}
