// §IV-C extension: "Another important HSLB application may be the
// prediction of the optimal nodes to run a job. The definition of optimal
// depends on the goal; it could be a cost-efficient goal where nodes are
// increased until scaling is reduced to a predefined limit or it could be
// the shortest time to solution."
//
// This bench runs the advisor at both resolutions and prints the
// recommended node counts under several efficiency floors.
#include <cstdio>

#include "cesm/advisor.hpp"
#include "common/table.hpp"

int main() {
  using namespace hslb;
  using namespace hslb::cesm;

  std::printf("=== Node-count advisor (cost-efficient vs fastest) ===\n\n");

  for (Resolution r : {Resolution::Deg1, Resolution::EighthDeg}) {
    std::array<perf::Model, 4> models;
    for (Component c : kComponents) models[index(c)] = ground_truth(r, c);

    AdvisorOptions opt;
    opt.min_nodes = r == Resolution::Deg1 ? 128 : 1024;
    opt.max_nodes = 40960;
    opt.sweep_points = 7;
    const auto sweep = advise_node_count(r, Layout::Hybrid, models, true, opt);

    Table t({"nodes", "predicted s", "scaling efficiency"});
    t.set_title(std::string("CESM ") + to_string(r) + ", layout 1");
    for (const auto& pt : sweep.sweep) {
      t.add_row({Table::num(static_cast<long long>(pt.nodes)),
                 Table::num(pt.predicted_seconds, 2),
                 Table::num(pt.efficiency, 3)});
    }
    std::printf("%s", t.str().c_str());

    for (double floor : {0.8, 0.5, 0.3}) {
      AdvisorOptions f = opt;
      f.efficiency_floor = floor;
      const auto advice = advise_node_count(r, Layout::Hybrid, models, true, f);
      std::printf("  efficiency floor %.1f -> request %lld nodes "
                  "(%.1f s predicted)\n",
                  floor, advice.cost_efficient_nodes,
                  advice.cost_efficient_seconds);
    }
    std::printf("  shortest time to solution: %lld nodes (%.1f s)\n\n",
                sweep.fastest_nodes, sweep.fastest_seconds);
  }
  std::printf("claims: the cost-efficient recommendation grows as the "
              "efficiency floor is relaxed, and never exceeds the "
              "shortest-time request.\n");
  return 0;
}
