// Reproduces Figure 3 of the paper: 1/8-degree resolution results for
// layout (1) — "human guess" (manual), HSLB-predicted, and HSLB-actual
// total times at 8192 and 32768 nodes, constrained and unconstrained
// ocean, rendered as a text bar chart.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "cesm/pipeline.hpp"
#include "common/table.hpp"

namespace {

using namespace hslb;
using namespace hslb::cesm;

struct Series {
  std::string label;
  double manual = 0.0;  // 0 = none
  double predicted = 0.0;
  double actual = 0.0;
};

void bar(const char* name, double value, double scale) {
  if (value <= 0.0) return;
  const int width = std::max(1, static_cast<int>(value / scale * 50.0));
  std::printf("  %-22s %8.0f s |%s\n", name, value,
              std::string(static_cast<std::size_t>(width), '#').c_str());
}

}  // namespace

int main() {
  std::printf("=== Figure 3 reproduction: 1/8-degree, layout (1) ===\n\n");

  std::vector<Series> series;
  for (const auto& pub : published_cases()) {
    if (pub.resolution != Resolution::EighthDeg) continue;
    cesm::PipelineOptions opt;
    opt.ocean_constrained = pub.ocean_constrained;
    const auto res = run_pipeline(pub.resolution, pub.total_nodes, opt);
    Simulator oracle(pub.resolution);

    Series s;
    s.label = std::to_string(pub.total_nodes) + " nodes" +
              (pub.ocean_constrained ? "" : " (unconstrained ocn)");
    if (pub.has_manual) {
      std::array<double, 4> manual_true{};
      for (Component c : kComponents)
        manual_true[index(c)] =
            oracle.true_seconds(c, pub.manual_nodes[index(c)]);
      s.manual = layout_total(Layout::Hybrid, manual_true);
    }
    s.predicted = res.solution.predicted_total;
    s.actual = res.actual_total;
    series.push_back(s);

    std::printf("%s\n", s.label.c_str());
    std::printf("  paper: manual %s, predicted %.0f, actual %.0f\n",
                pub.has_manual ? Table::num(pub.manual_total, 0).c_str() : "-",
                pub.hslb_predicted_total, pub.hslb_actual_total);
    double scale = std::max({s.manual, s.predicted, s.actual});
    bar("human guess", s.manual, scale);
    bar("HSLB prediction", s.predicted, scale);
    bar("HSLB actual", s.actual, scale);
    std::printf("\n");
  }

  // Shape checks the figure supports.
  std::printf("claims:\n");
  for (const auto& s : series) {
    if (s.manual > 0.0) {
      std::printf("  [%s] HSLB actual %s manual (%.0f vs %.0f s)\n",
                  s.label.c_str(), s.actual <= s.manual * 1.02 ? "<=" : "> (!)",
                  s.actual, s.manual);
    }
  }
  return 0;
}
