// Branching-rule ablation: most-fractional vs pseudocost variable
// selection in the LP/NLP branch-and-bound, on the integer-heavy CESM
// instances (unconstrained ocean and free lnd/ice at 1/8 degree give wide
// integer ranges where branching order matters).
#include <cstdio>

#include "cesm/layouts.hpp"
#include "common/table.hpp"

int main() {
  using namespace hslb;
  using namespace hslb::cesm;

  std::printf("=== Branch-rule ablation: most-fractional vs pseudocost ===\n\n");

  std::array<perf::Model, 4> models;
  for (Component c : kComponents)
    models[index(c)] = ground_truth(Resolution::EighthDeg, c);

  Table t({"total nodes", "rule", "bnb nodes", "LP solves", "seconds",
           "objective"});
  for (long long n : {8192LL, 32768LL}) {
    auto p = make_problem(Resolution::EighthDeg, Layout::Hybrid, n, models,
                          /*ocean_constrained=*/false);
    double objectives[2] = {0.0, 0.0};
    int idx = 0;
    for (auto rule :
         {minlp::BranchRule::MostFractional, minlp::BranchRule::PseudoCost}) {
      minlp::BnbOptions opt;
      opt.branch_rule = rule;
      const auto sol = solve_layout(p, opt);
      objectives[idx++] = sol.predicted_total;
      t.add_row({Table::num(static_cast<long long>(n)),
                 rule == minlp::BranchRule::MostFractional ? "most-fractional"
                                                           : "pseudocost",
                 Table::num(static_cast<long long>(sol.stats.nodes)),
                 Table::num(static_cast<long long>(sol.stats.lp_solves)),
                 Table::num(sol.stats.seconds, 3),
                 Table::num(sol.predicted_total, 3)});
    }
    t.add_rule();
    // Both rules must find the same (global) optimum.
    if (std::abs(objectives[0] - objectives[1]) >
        1e-4 * (1.0 + objectives[0])) {
      std::printf("ERROR: rules disagree on the optimum!\n");
      return 1;
    }
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("claims: both rules prove the same optimum; node counts differ "
              "by the quality of the branching order.\n");
  return 0;
}
