// Machine-readable bench output.
//
// Every solver bench merges its headline numbers into one flat two-level
// JSON file (default BENCH_solver.json in the working directory):
//
//   { "BM_LayoutSolveEighth/40960": { "real_time_s": 0.41, ... },
//     "warmstart/layout1_N40960":   { "speedup": 4.2, ... } }
//
// Merge-on-write semantics: existing entries from other benches are kept,
// metrics under the same entry name are replaced, and keys are written
// sorted so repeated runs produce byte-identical files.
#pragma once

#include <map>
#include <string>

namespace hslb::bench {

/// Two-level metric store: entry name -> metric name -> value.
using JsonMetrics = std::map<std::string, std::map<std::string, double>>;

/// Parses a file previously written by write_json/merge_json. Returns an
/// empty map when the file is missing or not in the expected format.
JsonMetrics read_json(const std::string& path);

/// Overwrites `path` with the given metrics (sorted keys, one entry per
/// line). Non-finite values are skipped (JSON has no representation).
void write_json(const std::string& path, const JsonMetrics& metrics);

/// Reads `path` (if present), replaces the metrics under `entry`, and
/// writes the file back.
void merge_json(const std::string& path, const std::string& entry,
                const std::map<std::string, double>& metrics);

}  // namespace hslb::bench
