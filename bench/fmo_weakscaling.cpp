// FMO-1b (title paper): weak scaling — the SC 2012 evaluation grew the
// molecular system together with the partition (up to 262,144 cores of
// Intrepid). Here fragments scale with nodes at a fixed 16 nodes/fragment,
// so perfect scaling keeps the per-iteration wave flat.
//
// Claims to match: HSLB sustains high node-weighted efficiency as the
// system and machine grow together, and its advantage over equal-group DLB
// persists at every size.
#include <cstdio>

#include "common/table.hpp"
#include "fmo/driver.hpp"

int main() {
  using namespace hslb;
  using namespace hslb::fmo;

  std::printf("=== FMO weak scaling: system grows with the machine ===\n\n");

  Table t({"fragments", "nodes", "cores (BG/P)", "DLB total s", "HSLB total s",
           "speedup", "HSLB eff", "HSLB SCC s"});
  t.set_title("16 nodes per fragment, heterogeneous water clusters");

  double min_speedup = 1e300, max_speedup = 0.0;
  double eff_first = 0.0, eff_last = 0.0;
  for (std::size_t fragments : {32u, 64u, 128u, 256u, 512u}) {
    const long long nodes = static_cast<long long>(fragments) * 16;
    const auto sys =
        water_cluster({.fragments = fragments, .merge_fraction = 0.35,
                       .scf_cutoff_angstrom = 4.5,
                       .seed = 900 + fragments});
    CostModel cost;
    fmo::PipelineOptions opt;
    const auto res = run_pipeline(sys, cost, nodes, opt);
    const double speedup = res.dlb.total_seconds / res.hslb.total_seconds;
    min_speedup = std::min(min_speedup, speedup);
    max_speedup = std::max(max_speedup, speedup);
    const double eff = res.hslb.efficiency(nodes);
    if (eff_first == 0.0) eff_first = eff;
    eff_last = eff;
    t.add_row({Table::num(static_cast<long long>(fragments)),
               Table::num(static_cast<long long>(nodes)),
               Table::num(static_cast<long long>(nodes * 4)),
               Table::num(res.dlb.total_seconds, 3),
               Table::num(res.hslb.total_seconds, 3),
               Table::num(speedup, 2) + "x", Table::num(eff, 3),
               Table::num(res.hslb.scc_seconds, 3)});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("claims: HSLB > DLB at every size (speedup %.2fx..%.2fx); "
              "HSLB efficiency stays high under weak scaling "
              "(%.3f at 32 frags -> %.3f at 512).\n",
              min_speedup, max_speedup, eff_first, eff_last);
  return 0;
}
