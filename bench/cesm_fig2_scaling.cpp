// Reproduces Figure 2 of the paper: per-component scaling curves for
// layout (1) at 1-degree resolution, together with the fitted performance
// function parameters a, b, c, d and the decomposition of T(n) into its
// scalable (a/n), nonlinear (b n^c), and serial (d) contributions that the
// figure's inset illustrates.
//
// The pipeline gathers noisy benchmark data from the simulated CESM, fits
// each component, and prints both the fit (with R^2, which the paper
// reports "very close to 1") and the resulting curves at the benchmark
// node counts.
#include <cstdio>

#include "cesm/pipeline.hpp"
#include "common/table.hpp"

int main() {
  using namespace hslb;
  using namespace hslb::cesm;

  std::printf("=== Figure 2 reproduction: 1-degree component scaling curves ===\n\n");

  cesm::PipelineOptions opt;
  opt.fit_points = 5;  // the paper's manual procedure used ~5 core counts
  const auto res = run_pipeline(Resolution::Deg1, 2048, opt);

  Table params({"component", "a (scalable s)", "b", "c", "d (serial s)", "R^2"});
  params.set_title("Fitted performance functions T(n) = a/n + b*n^c + d");
  for (Component c : kComponents) {
    const auto& f = res.fits[index(c)];
    params.add_row({to_string(c), Table::num(f.model.a, 2),
                    Table::num(f.model.b, 6), Table::num(f.model.c, 3),
                    Table::num(f.model.d, 3), Table::num(f.r2, 5)});
  }
  std::printf("%s\n", params.str().c_str());

  Table curves({"nodes", "lnd", "ice", "atm", "ocn"});
  curves.set_title("Fitted scaling curves, seconds per 5-day run (Figure 2 series)");
  for (long long n : {8, 16, 32, 64, 128, 256, 512, 1024, 2048}) {
    std::vector<std::string> row{Table::num(static_cast<long long>(n))};
    for (Component c : kComponents) {
      row.push_back(Table::num(
          res.fits[index(c)].model.eval(static_cast<double>(n)), 2));
    }
    curves.add_row(std::move(row));
  }
  std::printf("%s\n", curves.str().c_str());

  // The inset: contribution breakdown for the atmosphere model.
  const auto& atm = res.fits[index(Component::Atm)].model;
  Table parts({"nodes", "T_sca = a/n", "T_nln = b*n^c", "T_ser = d", "T(n)"});
  parts.set_title("Contribution breakdown, atm component (Figure 2 inset)");
  for (long long n : {16, 64, 256, 1024}) {
    const auto nd = static_cast<double>(n);
    parts.add_row({Table::num(static_cast<long long>(n)),
                   Table::num(atm.sca(nd), 3), Table::num(atm.nln(nd), 3),
                   Table::num(atm.ser(), 3), Table::num(atm.eval(nd), 3)});
  }
  std::printf("%s\n", parts.str().c_str());

  std::printf("paper: R^2 'very close to 1 for each component'; "
              "our min R^2 = %.5f\n", res.min_r2());
  return 0;
}
