// Allocation-service acceptance bench: the value proposition of running
// HSLB as a long-lived service instead of a one-shot solve.
//
// Four experiments, three of them gated so CI smoke enforces the service
// contracts:
//
//   * exact-repeat cache hits — one full-pipeline fmo solve, then a stream
//     of identical requests. GATES: every repeat hits the cache with a
//     byte-identical payload, and the mean hit latency is at least 10x
//     below the cold-solve latency;
//   * cross-instance warm starts — a perturbed-repeat fmo family (same
//     system, growing node budget) solved by a warm service seeding each
//     miss from its nearest cached neighbor, next to a cold service
//     solving every instance from scratch. Heuristic dives are disabled on
//     both sides so the measured pruning comes from the seeds. GATES: every
//     warm solve matches the cold objective exactly, and the family's
//     warm-seeded solves search fewer total B&B nodes than the cold ones;
//   * throughput — a mixed 32-request solve-kind stream on 4 worker
//     threads: requests/sec, p50/p99 latency, hit rate, and the mean
//     percent imbalance (lambda, arXiv:2104.01688) of the returned
//     allocations;
//   * replay determinism — the same stream under --threads 1/2/4. GATE:
//     response payloads and the hit/miss sequence are identical.
//
// Headline numbers merge into BENCH_solver.json under "server/...".
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_json.hpp"
#include "common/table.hpp"
#include "service/service.hpp"

namespace {

using namespace hslb;

constexpr const char* kJsonPath = "BENCH_solver.json";

bool close(double a, double b) {
  return std::fabs(a - b) <= 1e-6 * std::max({1.0, std::fabs(a), std::fabs(b)});
}

service::Request fmo_request(long long budget, long long fragments) {
  service::Request r;
  r.kind = service::RequestKind::Fmo;
  r.budget = budget;
  r.fragments = fragments;
  return r;
}

service::SolveTaskSpec task(std::string name, double a, double b, double c,
                            double d) {
  service::SolveTaskSpec t;
  t.name = std::move(name);
  t.a = a;
  t.b = b;
  t.c = c;
  t.d = d;
  return t;
}

service::Request solve_request(long long budget, double scale) {
  service::Request r;
  r.kind = service::RequestKind::Solve;
  r.budget = budget;
  r.tasks = {task("atm", 400.0 * scale, 3.0, 1.0, 2.0),
             task("ocn", 250.0 * scale, 2.0, 1.0, 1.0),
             task("ice", 120.0 * scale, 1.0, 1.0, 0.5)};
  return r;
}

}  // namespace

int main() {
  int failures = 0;

  // --- Exact-repeat cache hits: the 10x latency gate. ---------------------
  {
    constexpr std::size_t kRepeats = 20;
    service::ServiceOptions opt;
    opt.batch = 1;  // every repeat is a true cross-batch cache hit
    service::AllocationService srv(opt);
    std::vector<service::Request> script(1 + kRepeats, fmo_request(64, 16));
    const auto out = srv.run_script(script);
    const auto& lat = srv.report().latencies;
    const double cold_s = lat.front();
    double hit_s = 0.0;
    bool identical = true;
    for (std::size_t i = 1; i < out.size(); ++i) {
      hit_s += lat[i];
      identical = identical && out[i].cache_hit &&
                  out[i].to_line() == out[0].to_line();
    }
    hit_s /= static_cast<double>(kRepeats);
    const double speedup = hit_s > 0.0 ? cold_s / hit_s : 1e9;
    std::printf("exact repeat: cold solve %.6fs, mean hit %.9fs -> %.0fx "
                "(%zu repeats, byte-identical: %s)\n",
                cold_s, hit_s, speedup, kRepeats, identical ? "yes" : "NO");
    bench::merge_json(kJsonPath, "server/exact_repeat",
                      {{"cold_latency_s", cold_s},
                       {"hit_latency_s", hit_s},
                       {"speedup", speedup},
                       {"byte_identical", identical ? 1.0 : 0.0}});
    if (!identical || !(speedup >= 10.0)) {
      std::fprintf(stderr,
                   "FAIL: exact-repeat hits must be byte-identical and at "
                   "least 10x faster than the cold solve (got %.1fx)\n",
                   speedup);
      ++failures;
    }
  }

  // --- Cross-instance warm starts on a perturbed-repeat family. -----------
  // The same 16-fragment system at a growing budget: fits are identical, so
  // the donor's cut pool transfers verbatim, its incumbent stays feasible
  // (the budget only grows), and only the budget row moves.
  {
    const std::vector<long long> budgets = {64, 68, 72, 76, 80};
    std::vector<service::Request> script;
    script.reserve(budgets.size());
    for (long long b : budgets) script.push_back(fmo_request(b, 16));

    service::ServiceOptions warm_opt;
    warm_opt.batch = 1;
    warm_opt.bnb.heuristic_dives = false;
    service::AllocationService warm_srv(warm_opt);
    const auto warm = warm_srv.run_script(script);

    service::ServiceOptions cold_opt = warm_opt;
    cold_opt.warm_start = false;
    service::AllocationService cold_srv(cold_opt);
    const auto cold = cold_srv.run_script(script);

    Table t({"budget", "cold B&B nodes", "warm B&B nodes", "warm", "objective"});
    std::size_t cold_nodes = 0, warm_nodes = 0, warm_accepted = 0;
    bool objectives_match = true;
    for (std::size_t i = 1; i < script.size(); ++i) {  // i=0 is cold for both
      cold_nodes += cold[i].bnb_nodes;
      warm_nodes += warm[i].bnb_nodes;
      warm_accepted += warm[i].warm_seeded ? 1 : 0;
      objectives_match =
          objectives_match && close(warm[i].objective_value, cold[i].objective_value);
      t.add_row({Table::num(static_cast<long long>(budgets[i])),
                 Table::num(static_cast<double>(cold[i].bnb_nodes), 0),
                 Table::num(static_cast<double>(warm[i].bnb_nodes), 0),
                 warm[i].warm_seeded ? "yes" : "no",
                 Table::num(warm[i].objective_value, 6)});
    }
    std::printf("\nperturbed-repeat family (16 fragments, budget 64 -> 80):\n%s\n",
                t.str().c_str());
    bench::merge_json(
        kJsonPath, "server/warm_family",
        {{"cold_nodes", static_cast<double>(cold_nodes)},
         {"warm_nodes", static_cast<double>(warm_nodes)},
         {"node_ratio",
          cold_nodes > 0 ? static_cast<double>(warm_nodes) /
                               static_cast<double>(cold_nodes)
                         : 1.0},
         {"warm_accepted", static_cast<double>(warm_accepted)},
         {"objectives_match", objectives_match ? 1.0 : 0.0}});
    if (!objectives_match || !(warm_nodes < cold_nodes)) {
      std::fprintf(stderr,
                   "FAIL: warm-seeded solves must match the cold objectives "
                   "in fewer total B&B nodes (cold %zu, warm %zu)\n",
                   cold_nodes, warm_nodes);
      ++failures;
    }
  }

  // --- Throughput on a mixed stream. --------------------------------------
  // 32 solve-kind requests: 8 distinct instances cycled 4 times, so 3/4 of
  // the stream hits the cache once it is warm.
  std::vector<service::Request> stream;
  for (int round = 0; round < 4; ++round) {
    for (int k = 0; k < 8; ++k) {
      stream.push_back(
          solve_request(k % 2 == 0 ? 64 : 96, 1.0 + 0.03 * k));
    }
  }
  {
    service::ServiceOptions opt;
    opt.threads = 4;
    opt.batch = 8;
    service::AllocationService srv(opt);
    const auto out = srv.run_script(stream);
    const auto& rep = srv.report();
    double mean_lambda = 0.0;
    for (const auto& r : out) mean_lambda += r.percent_imbalance;
    mean_lambda /= static_cast<double>(out.size());
    std::printf("throughput: %zu requests in %.3fs -> %.1f req/s, hit rate "
                "%.1f%%, p50 %.6fs, p99 %.6fs, mean lambda %.2f%%\n",
                rep.requests, rep.wall_seconds, rep.requests_per_second(),
                100.0 * rep.hit_rate(), rep.p50_latency(), rep.p99_latency(),
                mean_lambda);
    bench::merge_json(kJsonPath, "server/throughput",
                      {{"requests", static_cast<double>(rep.requests)},
                       {"rps", rep.requests_per_second()},
                       {"p50_s", rep.p50_latency()},
                       {"p99_s", rep.p99_latency()},
                       {"hit_rate", rep.hit_rate()},
                       {"warm_solves", static_cast<double>(rep.warm_solves)},
                       {"cold_solves", static_cast<double>(rep.cold_solves)},
                       {"mean_lambda_pct", mean_lambda}});
    if (!(rep.requests_per_second() > 0.0) || rep.hits == 0) {
      std::fprintf(stderr, "FAIL: throughput run produced no hits or no "
                           "measurable rate\n");
      ++failures;
    }
  }

  // --- Replay determinism across thread counts. ---------------------------
  {
    std::vector<std::string> ref_lines;
    std::vector<char> ref_hits;
    bool deterministic = true;
    for (const std::size_t threads : {1u, 2u, 4u}) {
      service::ServiceOptions opt;
      opt.threads = threads;
      opt.batch = 8;
      service::AllocationService srv(opt);
      const auto out = srv.run_script(stream);
      std::vector<std::string> lines;
      std::vector<char> hits;
      for (const auto& r : out) {
        lines.push_back(r.to_line());
        hits.push_back(r.cache_hit ? 1 : 0);
      }
      if (threads == 1) {
        ref_lines = lines;
        ref_hits = hits;
      } else {
        deterministic =
            deterministic && lines == ref_lines && hits == ref_hits;
      }
    }
    std::printf("replay under 1/2/4 threads: %s\n",
                deterministic ? "identical payloads and hit sequence"
                              : "DIVERGED");
    bench::merge_json(kJsonPath, "server/replay",
                      {{"deterministic", deterministic ? 1.0 : 0.0}});
    if (!deterministic) {
      std::fprintf(stderr,
                   "FAIL: replaying the stream under 1/2/4 threads must "
                   "yield identical payloads and cache-hit sequences\n");
      ++failures;
    }
  }

  if (failures == 0) std::printf("results merged into %s\n", kJsonPath);
  return failures == 0 ? 0 : 1;
}
