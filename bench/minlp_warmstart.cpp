// Warm-start / parallel-search acceptance bench for the MINLP
// branch-and-bound: cold re-solves vs warm-started re-solves vs the
// deterministic parallel wave search, on the layout-1 CESM instances
// (N = 2048, 8192, 40960) and on random FMO min-max budget instances.
//
// Reported per instance: wall time, tree size, simplex pivots per non-root
// node, and the warm-solve fraction. All variants must land on identical
// incumbents (the warm basis and the wave schedule change the *path*, never
// the answer); the parallel variant must additionally match the serial warm
// run bit for bit. Headline numbers are merged into BENCH_solver.json.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_json.hpp"
#include "cesm/layouts.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "hslb/budget.hpp"
#include "lp/simplex.hpp"
#include "minlp/bnb.hpp"
#include "sim/machine.hpp"
#include "sim/runtime.hpp"

namespace {

using namespace hslb;

constexpr const char* kJsonPath = "BENCH_solver.json";

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct RunStats {
  double obj = 0.0;
  double seconds = 0.0;
  std::vector<double> x;
  minlp::BnbResult stats;
};

/// Pivots spent re-solving tree nodes, per non-root node. The root solve is
/// excluded: it is cold in every variant, and the warm-start claim is about
/// the children that inherit a parent basis.
double pivots_per_node(const minlp::BnbResult& r) {
  if (r.nodes <= 1) return static_cast<double>(r.tree_lp_pivots);
  return static_cast<double>(r.tree_lp_pivots) /
         static_cast<double>(r.nodes - 1);
}

double warm_fraction(const minlp::BnbResult& r) {
  if (r.lp_solves == 0) return 0.0;
  return static_cast<double>(r.warm_solves) / static_cast<double>(r.lp_solves);
}

minlp::BnbOptions variant_options(bool warm, std::size_t threads) {
  minlp::BnbOptions opt;
  opt.warm_start = warm;
  opt.solver_threads = threads;
  return opt;
}

std::string fmt(double v, const char* spec = "%.4g") {
  char buf[64];
  std::snprintf(buf, sizeof buf, spec, v);
  return buf;
}

/// Times `reps` solves of the model under one option set, keeping the last
/// solution (they are deterministic, so all reps agree).
RunStats run_model(const minlp::Model& model, const minlp::BnbOptions& opt,
                   int reps) {
  RunStats out;
  const auto t0 = std::chrono::steady_clock::now();
  minlp::BnbResult r;
  for (int i = 0; i < reps; ++i) r = minlp::solve(model, opt);
  out.seconds = seconds_since(t0) / reps;
  out.obj = r.objective;
  out.x = r.x;
  out.stats = std::move(r);
  return out;
}

struct InstanceReport {
  bool objectives_match = true;
  bool parallel_identical = true;
  double speedup = 0.0;
  double pivot_reduction = 0.0;
};

/// Runs cold / warm / parallel on one model, prints a table row per variant,
/// merges the JSON entry, and checks the agreement invariants.
InstanceReport bench_instance(Table& t, const std::string& label,
                              const minlp::Model& model, int reps) {
  std::fprintf(stderr, "[%s] cold...", label.c_str());
  const RunStats cold = run_model(model, variant_options(false, 1), reps);
  std::fprintf(stderr, " %.3fs  warm...", cold.seconds);
  const RunStats warm = run_model(model, variant_options(true, 1), reps);
  std::fprintf(stderr, " %.3fs  parallel...", warm.seconds);
  // 0 = all hardware threads.
  const RunStats par = run_model(model, variant_options(true, 0), reps);
  std::fprintf(stderr, " %.3fs\n", par.seconds);

  InstanceReport rep;
  const double scale = 1.0 + std::fabs(cold.obj);
  rep.objectives_match = std::fabs(cold.obj - warm.obj) / scale < 1e-9 &&
                         std::fabs(cold.obj - par.obj) / scale < 1e-9;
  rep.parallel_identical = warm.obj == par.obj && warm.x == par.x;
  rep.speedup = warm.seconds > 0.0 ? cold.seconds / warm.seconds : 0.0;
  const double warm_ppn = pivots_per_node(warm.stats);
  rep.pivot_reduction =
      warm_ppn > 0.0 ? pivots_per_node(cold.stats) / warm_ppn : 0.0;

  const struct {
    const char* name;
    const RunStats& r;
  } rows[] = {{"cold", cold}, {"warm", warm}, {"parallel", par}};
  for (const auto& row : rows) {
    t.add_row({label, row.name, fmt(row.r.obj, "%.8g"),
               fmt(row.r.seconds * 1e3), std::to_string(row.r.stats.nodes),
               fmt(pivots_per_node(row.r.stats)),
               fmt(100.0 * warm_fraction(row.r.stats), "%.1f")});
  }
  t.add_rule();

  bench::merge_json(
      kJsonPath, "warmstart/" + label,
      {{"cold_s", cold.seconds},
       {"warm_s", warm.seconds},
       {"parallel_s", par.seconds},
       {"speedup_warm", rep.speedup},
       {"pivots_per_node_cold", pivots_per_node(cold.stats)},
       {"pivots_per_node_warm", warm_ppn},
       {"pivot_reduction", rep.pivot_reduction},
       {"warm_fraction", warm_fraction(warm.stats)},
       {"bnb_nodes", static_cast<double>(warm.stats.nodes)},
       {"objectives_match", rep.objectives_match ? 1.0 : 0.0},
       {"parallel_identical", rep.parallel_identical ? 1.0 : 0.0}});
  return rep;
}

struct SparseReport {
  bool objectives_match = true;
  double speedup = 0.0;         ///< dense wall / sparse wall
  double flop_reduction = 0.0;  ///< dense kernel work / sparse kernel work
};

/// Dense-vs-sparse kernel comparison: the same warm serial search run once
/// on the dense-equivalent kernels (Options::force_dense) and once on the
/// sparse ones. The answer must not move; the kernel-work counters measure
/// the flops-per-pivot reduction (acceptance target: >= 5x on the headline
/// instances). Eta storage compression is reported alongside but does not
/// gate: the min-max masters put the objective column in every OA cut row,
/// so their eta vectors fill in regardless of kernel.
SparseReport bench_sparse_kernels(Table& t, const std::string& label,
                                  const minlp::Model& model, int reps) {
  minlp::BnbOptions sparse_opt = variant_options(true, 1);
  minlp::BnbOptions dense_opt = sparse_opt;
  dense_opt.kelley.lp.force_dense = true;
  std::fprintf(stderr, "[%s] dense kernels...", label.c_str());
  const RunStats dense = run_model(model, dense_opt, reps);
  std::fprintf(stderr, " %.3fs  sparse kernels...", dense.seconds);
  const RunStats sparse = run_model(model, sparse_opt, reps);
  std::fprintf(stderr, " %.3fs\n", sparse.seconds);

  SparseReport rep;
  const double scale = 1.0 + std::fabs(dense.obj);
  rep.objectives_match = std::fabs(dense.obj - sparse.obj) / scale < 1e-9;
  rep.speedup = sparse.seconds > 0.0 ? dense.seconds / sparse.seconds : 0.0;
  rep.flop_reduction = sparse.stats.lp_stats.flop_reduction();

  const struct {
    const char* name;
    const RunStats& r;
  } rows[] = {{"dense", dense}, {"sparse", sparse}};
  for (const auto& row : rows) {
    const auto& s = row.r.stats.lp_stats;
    const double per_pivot =
        s.pivots > 0 ? static_cast<double>(s.eta_nnz) /
                           static_cast<double>(s.pivots)
                     : 0.0;
    t.add_row({label, row.name, fmt(row.r.obj, "%.8g"),
               fmt(row.r.seconds * 1e3), fmt(per_pivot, "%.1f"),
               fmt(s.flop_reduction(), "%.1f")});
  }
  t.add_rule();

  bench::merge_json(kJsonPath, "sparse/" + label,
                    {{"dense_s", dense.seconds},
                     {"sparse_s", sparse.seconds},
                     {"speedup_sparse", rep.speedup},
                     {"kernel_flop_reduction", rep.flop_reduction},
                     {"eta_compression",
                      sparse.stats.lp_stats.eta_compression()},
                     {"eta_nnz", static_cast<double>(sparse.stats.lp_stats.eta_nnz)},
                     {"eta_dense_nnz",
                      static_cast<double>(sparse.stats.lp_stats.eta_dense_nnz)},
                     {"lu_fill", static_cast<double>(sparse.stats.lp_stats.lu_fill)},
                     {"basis_nnz",
                      static_cast<double>(sparse.stats.lp_stats.basis_nnz)},
                     {"objectives_match", rep.objectives_match ? 1.0 : 0.0}});
  return rep;
}

struct PresolveReport {
  bool objectives_match = true;
  bool nodes_not_inflated = true;  ///< nodes_on <= nodes_off (deterministic)
  double speedup = 0.0;            ///< off wall / on wall
  double node_reduction = 0.0;     ///< nodes_off / nodes_on
  double off_s = 0.0, on_s = 0.0;
  std::size_t nodes_off = 0, nodes_on = 0;
};

/// Presolve + propagation + cut-retirement acceptance: the warm serial
/// search with every reduction off ({presolve=false, cut_age_limit=0})
/// against the defaults. The proven optimum must not move; the node count
/// with reductions on must never exceed the count with them off (both are
/// deterministic, so this gates without wall-clock noise).
PresolveReport bench_presolve(Table& t, const std::string& label,
                              const minlp::Model& model, int reps) {
  minlp::BnbOptions on_opt = variant_options(true, 1);
  minlp::BnbOptions off_opt = on_opt;
  off_opt.presolve = false;
  off_opt.cut_age_limit = 0;
  std::fprintf(stderr, "[%s] presolve off...", label.c_str());
  const RunStats off = run_model(model, off_opt, reps);
  std::fprintf(stderr, " %.3fs  presolve on...", off.seconds);
  const RunStats on = run_model(model, on_opt, reps);
  std::fprintf(stderr, " %.3fs\n", on.seconds);

  PresolveReport rep;
  const double scale = 1.0 + std::fabs(off.obj);
  rep.objectives_match = std::fabs(off.obj - on.obj) / scale < 1e-9;
  rep.nodes_not_inflated = on.stats.nodes <= off.stats.nodes;
  rep.speedup = on.seconds > 0.0 ? off.seconds / on.seconds : 0.0;
  rep.node_reduction =
      on.stats.nodes > 0
          ? static_cast<double>(off.stats.nodes) /
                static_cast<double>(on.stats.nodes)
          : 0.0;
  rep.off_s = off.seconds;
  rep.on_s = on.seconds;
  rep.nodes_off = off.stats.nodes;
  rep.nodes_on = on.stats.nodes;

  const struct {
    const char* name;
    const RunStats& r;
  } rows[] = {{"off", off}, {"on", on}};
  for (const auto& row : rows) {
    const auto& s = row.r.stats;
    t.add_row({label, row.name, fmt(row.r.obj, "%.8g"),
               fmt(row.r.seconds * 1e3), std::to_string(s.nodes),
               std::to_string(s.lp_stats.presolve_rows_removed) + "/" +
                   std::to_string(s.lp_stats.presolve_cols_removed),
               std::to_string(s.bounds_tightened),
               std::to_string(s.nodes_propagated_infeasible),
               std::to_string(s.cuts_retired) + "/" +
                   std::to_string(s.cuts_reactivated)});
  }
  t.add_rule();

  bench::merge_json(
      kJsonPath, "presolve/" + label,
      {{"off_s", off.seconds},
       {"on_s", on.seconds},
       {"speedup_presolve", rep.speedup},
       {"presolve_reduction", rep.node_reduction},
       {"bnb_nodes_off", static_cast<double>(off.stats.nodes)},
       {"bnb_nodes_on", static_cast<double>(on.stats.nodes)},
       {"presolve_rows_removed",
        static_cast<double>(on.stats.lp_stats.presolve_rows_removed)},
       {"presolve_cols_removed",
        static_cast<double>(on.stats.lp_stats.presolve_cols_removed)},
       {"bounds_tightened", static_cast<double>(on.stats.bounds_tightened)},
       {"nodes_propagated_infeasible",
        static_cast<double>(on.stats.nodes_propagated_infeasible)},
       {"cuts_retired", static_cast<double>(on.stats.cuts_retired)},
       {"cuts_reactivated", static_cast<double>(on.stats.cuts_reactivated)},
       {"objectives_match", rep.objectives_match ? 1.0 : 0.0},
       {"nodes_not_inflated", rep.nodes_not_inflated ? 1.0 : 0.0}});
  return rep;
}

// ---------------------------------------------------------------------------
// Scale sweep (--scale / --scale-full): raw LP solves at 10^4-10^5 variables
// comparing the Forrest-Tomlin default against the product-form eta
// baseline, and sim::Runtime executions at 10^5-10^6 tasks. Runs INSTEAD of
// the warm-start acceptance set so the CI scale-smoke step stays focused.
// ---------------------------------------------------------------------------

/// Min-max selector LP: `tasks` x `options` assignment variables, one SOS
/// row per task, and a linking row z >= sum(cost * x) per task. The
/// objective variable appears in every linking row — exactly the structure
/// that fills product-form eta vectors in and lets Forrest-Tomlin updates
/// keep the factorization compact.
lp::Model selector_lp(std::size_t tasks, std::size_t options, Rng& rng) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  lp::Model m;
  const auto z = m.add_variable(0.0, kInf, 1.0);
  for (std::size_t t = 0; t < tasks; ++t) {
    std::vector<lp::Coeff> sos, link;
    link.push_back({z, -1.0});
    for (std::size_t k = 0; k < options; ++k) {
      const auto x = m.add_variable(0.0, 1.0, 0.0);
      sos.push_back({x, 1.0});
      link.push_back({x, rng.uniform(1.0, 100.0)});
    }
    m.add_constraint(std::move(sos), 1.0, 1.0);
    m.add_constraint(std::move(link), -kInf, 0.0);
  }
  return m;
}

struct LpScalePoint {
  std::size_t vars = 0, rows = 0;
  double ft_s = 0.0, eta_s = 0.0, speedup = 0.0;
  bool objectives_match = true;
  lp::SolveStats ft_stats;
};

LpScalePoint bench_lp_scale(Table& t, const std::string& label,
                            std::size_t tasks, std::size_t options,
                            std::size_t refactor_interval) {
  Rng rng(911 + tasks);
  const lp::Model m = selector_lp(tasks, options, rng);
  lp::Options ft_opt;
  ft_opt.max_iterations = 4 * tasks * options + 100000;
  ft_opt.refactor_interval = refactor_interval;
  lp::Options eta_opt = ft_opt;
  eta_opt.basis_update = lp::BasisUpdate::ProductFormEta;

  std::fprintf(stderr, "[%s] eta...", label.c_str());
  auto t0 = std::chrono::steady_clock::now();
  const lp::Solution eta = lp::solve(m, eta_opt);
  const double eta_s = seconds_since(t0);
  std::fprintf(stderr, " %.3fs  ft...", eta_s);
  t0 = std::chrono::steady_clock::now();
  const lp::Solution ft = lp::solve(m, ft_opt);
  const double ft_s = seconds_since(t0);
  std::fprintf(stderr, " %.3fs\n", ft_s);

  LpScalePoint p;
  p.vars = m.num_cols();
  p.rows = m.num_rows();
  p.ft_s = ft_s;
  p.eta_s = eta_s;
  p.speedup = ft_s > 0.0 ? eta_s / ft_s : 0.0;
  const double scale = 1.0 + std::fabs(eta.objective);
  p.objectives_match = ft.status == lp::Status::Optimal &&
                       eta.status == lp::Status::Optimal &&
                       std::fabs(ft.objective - eta.objective) / scale < 1e-7;
  p.ft_stats = ft.stats;

  t.add_row({label, std::to_string(p.vars), std::to_string(p.rows),
             fmt(eta_s * 1e3), fmt(ft_s * 1e3), fmt(p.speedup, "%.2f"),
             std::to_string(ft.stats.pivots),
             std::to_string(ft.stats.ft_updates),
             std::to_string(ft.stats.refactorizations)});

  bench::merge_json(
      kJsonPath, "scale/" + label,
      {{"vars", static_cast<double>(p.vars)},
       {"rows", static_cast<double>(p.rows)},
       {"eta_s", eta_s},
       {"ft_s", ft_s},
       {"speedup_ft", p.speedup},
       {"pivots", static_cast<double>(ft.stats.pivots)},
       {"ft_updates", static_cast<double>(ft.stats.ft_updates)},
       {"ft_fill_nnz", static_cast<double>(ft.stats.ft_fill_nnz)},
       {"refactorizations", static_cast<double>(ft.stats.refactorizations)},
       {"refactor_fill_hits",
        static_cast<double>(ft.stats.refactor_fill_hits)},
       {"kernel_flop_reduction", ft.stats.flop_reduction()},
       {"objectives_match", p.objectives_match ? 1.0 : 0.0}});
  return p;
}

struct SimScalePoint {
  double wall_s = 0.0;
  double reference_s = 0.0;  ///< O(n^2) rescan scheduler (0 = not run)
  double speedup = 0.0;
  bool completed = false;
  bool parity = true;  ///< event-driven schedule == rescan schedule
  std::size_t events = 0;
};

/// Wave-structured task graph on a 1024-node partition: mostly single-node
/// tasks chained wave over wave (the FMO monomer/dimer regime), salted with
/// multi-node tasks so the scheduler's bucket machinery sees range overlap.
sim::Runtime build_scale_graph(std::size_t tasks, std::size_t width) {
  sim::Runtime rt(sim::Machine::intrepid_partition(width));
  for (std::size_t i = 0; i < tasks; ++i) {
    const std::size_t span = i % 937 == 0 ? 8 : 1;
    const std::size_t first = (i % 937 == 0)
                                  ? (i * 7) % (width - span + 1)
                                  : i % width;
    std::vector<std::size_t> deps;
    if (i >= width) deps.push_back(i - width);
    const double duration = 1.0 + 0.001 * static_cast<double>(i % 97);
    rt.add_task("t" + std::to_string(i), duration, {first, span},
                std::move(deps), "scale");
  }
  return rt;
}

/// The scheduler sim::Runtime::run replaced: full rescan of every pending
/// task per scheduling decision, O(tasks^2). Kept here as the wall-clock
/// baseline and as an independent oracle for the event-driven schedule
/// (identical pick order (start, id) implies identical placements).
std::vector<sim::ScheduledTask> reference_rescan_schedule(
    const sim::Runtime& rt, std::size_t nodes) {
  const std::size_t n = rt.num_tasks();
  std::vector<sim::ScheduledTask> out(n);
  std::vector<double> node_free(nodes, 0.0);
  std::vector<std::uint8_t> done(n, 0);
  for (std::size_t scheduled = 0; scheduled < n; ++scheduled) {
    std::size_t best = n;
    double best_start = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      if (done[i]) continue;
      const sim::Task& task = rt.task(i);
      bool ready = true;
      double start = 0.0;
      for (std::size_t d : task.deps) {
        if (!done[d]) {
          ready = false;
          break;
        }
        start = std::max(start, out[d].end);
      }
      if (!ready) continue;
      for (std::size_t m = task.nodes.first; m < task.nodes.end(); ++m)
        start = std::max(start, node_free[m]);
      if (start < best_start) {
        best_start = start;
        best = i;
      }
    }
    const sim::Task& task = rt.task(best);
    out[best] = {best_start, best_start + task.duration};
    for (std::size_t m = task.nodes.first; m < task.nodes.end(); ++m)
      node_free[m] = out[best].end;
    done[best] = 1;
  }
  return out;
}

SimScalePoint bench_sim_scale(Table& t, const std::string& label,
                              std::size_t tasks, double wall_gate_s,
                              bool run_reference) {
  const std::size_t width = 1024;
  const sim::Runtime rt = build_scale_graph(tasks, width);
  auto t0 = std::chrono::steady_clock::now();
  const sim::RunResult run = rt.run({});
  SimScalePoint p;
  p.wall_s = seconds_since(t0);
  p.completed = run.completed;
  p.events = run.trace.events.size();

  if (run_reference) {
    std::fprintf(stderr, "[%s] O(n^2) reference...", label.c_str());
    t0 = std::chrono::steady_clock::now();
    const auto ref = reference_rescan_schedule(rt, width);
    p.reference_s = seconds_since(t0);
    std::fprintf(stderr, " %.3fs\n", p.reference_s);
    p.speedup = p.wall_s > 0.0 ? p.reference_s / p.wall_s : 0.0;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      if (run.tasks[i].start != ref[i].start ||
          run.tasks[i].end != ref[i].end) {
        p.parity = false;
        break;
      }
    }
  }

  t.add_row({label, std::to_string(tasks), "-",
             p.reference_s > 0.0 ? fmt(p.reference_s * 1e3) : "-",
             fmt(p.wall_s * 1e3),
             p.speedup > 0.0 ? fmt(p.speedup, "%.1f") : "-",
             std::to_string(p.events), "-", "-"});
  bench::merge_json(kJsonPath, "scale/" + label,
                    {{"tasks", static_cast<double>(tasks)},
                     {"wall_s", p.wall_s},
                     {"wall_gate_s", wall_gate_s},
                     {"reference_rescan_s", p.reference_s},
                     {"speedup_vs_rescan", p.speedup},
                     {"makespan", run.makespan},
                     {"events", static_cast<double>(p.events)},
                     {"schedule_parity", p.parity ? 1.0 : 0.0},
                     {"completed", p.completed ? 1.0 : 0.0}});
  return p;
}

/// The --scale / --scale-full entry point; returns the process exit code.
int run_scale_sweep(bool full) {
  std::printf("=== Scale sweep: Forrest-Tomlin vs eta, runtime at 10^5+ "
              "tasks ===\n\n");
  Table t({"instance", "vars/tasks", "rows", "eta ms", "ft ms", "ft speedup",
           "pivots/events", "ft updates", "refactors"});

  bool never_slower = true;
  bool objectives_match = true;
  double best_speedup = 0.0;
  // The selector LP at T=5000 tasks has ~20k variables and ~10k rows.  At
  // the default refactor interval both schemes refactorize often enough
  // that the gap is modest (never-slower gate); at interval 256 the eta
  // file balloons while the adaptive fill trigger keeps Forrest-Tomlin
  // compact -- that point carries the >=2x demonstration.
  const struct {
    const char* label;
    std::size_t tasks, options, interval;
    bool gate_never_slower;
  } lp_points[] = {{"lp_minmax_20k", 5000, 4, 64, true},
                   {"lp_minmax_20k_relaxed", 5000, 4, 256, false}};
  for (const auto& pt : lp_points) {
    const auto p =
        bench_lp_scale(t, pt.label, pt.tasks, pt.options, pt.interval);
    objectives_match = objectives_match && p.objectives_match;
    // Never-slower gate with 5% timer-noise allowance.
    if (pt.gate_never_slower)
      never_slower = never_slower && p.ft_s <= 1.05 * p.eta_s;
    best_speedup = std::max(best_speedup, p.speedup);
  }
  t.add_rule();

  bool sim_ok = true;
  {
    const auto p =
        bench_sim_scale(t, "sim_tasks_1e5", 100000, 10.0, /*reference=*/true);
    sim_ok = sim_ok && p.completed && p.parity && p.wall_s <= 10.0;
    best_speedup = std::max(best_speedup, p.speedup);
  }
  if (full) {
    const auto p = bench_sim_scale(t, "sim_tasks_1e6", 1000000, 60.0,
                                   /*reference=*/false);
    sim_ok = sim_ok && p.completed && p.wall_s <= 60.0;
  }
  std::printf("%s", t.str().c_str());

  const bool ft_2x = best_speedup >= 2.0;
  std::printf("\nobjectives identical ft vs eta:    %s\n",
              objectives_match ? "yes" : "NO");
  std::printf("ft never slower than eta (5%%):     %s\n",
              never_slower ? "yes" : "NO");
  std::printf(">=2x on a 10^5-scale instance:     %s (best %.2fx)\n",
              ft_2x ? "yes" : "NO", best_speedup);
  std::printf("runtime wall/parity within gates:  %s\n",
              sim_ok ? "yes" : "NO");
  return objectives_match && never_slower && ft_2x && sim_ok ? 0 : 1;
}

minlp::Model layout1_model(long long n) {
  using namespace hslb::cesm;
  const Resolution r = n <= 4096 ? Resolution::Deg1 : Resolution::EighthDeg;
  std::array<perf::Model, 4> models;
  for (Component c : kComponents) models[index(c)] = ground_truth(r, c);
  return build_layout_minlp(make_problem(r, Layout::Hybrid, n, models));
}

minlp::Model fmo_minmax_model(std::size_t tasks, Rng& rng) {
  std::vector<BudgetTask> model_tasks;
  const long long budget = static_cast<long long>(tasks) * 12;
  for (std::size_t i = 0; i < tasks; ++i) {
    perf::Model m;
    m.a = rng.uniform(50.0, 5000.0);
    m.b = 0.0;
    m.c = 1.0;
    m.d = rng.uniform(0.0, 2.0);
    model_tasks.push_back(BudgetTask{"t" + std::to_string(i), m, 1, budget});
  }
  return build_budget_minlp(model_tasks, budget, Objective::MinMax);
}

}  // namespace

int main(int argc, char** argv) {
  // Knobs: repetitions per (instance, variant) — CI smoke uses 1 — and the
  // scale sweep (--scale; --scale-full adds the 10^6-task runtime point),
  // which runs instead of the warm-start acceptance set.
  int reps = 3;
  bool scale = false, scale_full = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--reps" && i + 1 < argc) reps = std::atoi(argv[++i]);
    if (arg == "--scale") scale = true;
    if (arg == "--scale-full") scale = scale_full = true;
  }
  if (reps < 1) reps = 1;
  if (scale) return run_scale_sweep(scale_full);

  std::printf(
      "=== Warm-started re-solves vs cold branch-and-bound (%d rep%s) ===\n\n",
      reps, reps == 1 ? "" : "s");

  Table t({"instance", "variant", "objective", "ms", "bnb nodes",
           "pivots/node", "warm %"});

  bool all_match = true;
  bool all_identical = true;
  double layout40960_speedup = 0.0;
  double layout40960_pivot_red = 0.0;

  for (long long n : {2048LL, 8192LL, 40960LL}) {
    const auto model = layout1_model(n);
    const auto rep =
        bench_instance(t, "layout1_N" + std::to_string(n), model, reps);
    all_match = all_match && rep.objectives_match;
    all_identical = all_identical && rep.parallel_identical;
    if (n == 40960) {
      layout40960_speedup = rep.speedup;
      layout40960_pivot_red = rep.pivot_reduction;
    }
  }

  Rng rng(424242);
  for (std::size_t tasks : {8u, 16u, 32u}) {
    const auto model = fmo_minmax_model(tasks, rng);
    const auto rep = bench_instance(
        t, "fmo_minmax_T" + std::to_string(tasks), model, reps);
    all_match = all_match && rep.objectives_match;
    all_identical = all_identical && rep.parallel_identical;
  }

  std::printf("%s", t.str().c_str());

  // -- Dense-vs-sparse kernel acceptance on the headline instances ----------
  std::printf("\n=== Sparse vs dense-equivalent simplex kernels ===\n\n");
  Table st({"instance", "kernels", "objective", "ms", "eta nnz/pivot",
            "flops/pivot red."});
  double min_flop_reduction = 1e30;
  double min_sparse_speedup = 1e30;
  {
    Rng srng(424242);
    const struct {
      const char* label;
      minlp::Model model;
    } sparse_instances[] = {
        {"layout1_N40960", layout1_model(40960)},
        {"fmo_minmax_T32", fmo_minmax_model(32, srng)},
    };
    for (const auto& inst : sparse_instances) {
      const auto rep = bench_sparse_kernels(st, inst.label, inst.model, reps);
      all_match = all_match && rep.objectives_match;
      min_flop_reduction = std::min(min_flop_reduction, rep.flop_reduction);
      min_sparse_speedup = std::min(min_sparse_speedup, rep.speedup);
    }
  }
  std::printf("%s", st.str().c_str());

  // -- Presolve / propagation / cut-retirement acceptance -------------------
  std::printf("\n=== Presolve + propagation + cut retirement vs off ===\n\n");
  Table pt({"instance", "presolve", "objective", "ms", "bnb nodes",
            "rows/cols rm", "tightened", "pruned", "ret/react"});
  bool presolve_nodes_ok = true;
  double presolve_total_off_s = 0.0, presolve_total_on_s = 0.0;
  std::size_t presolve_total_nodes_off = 0, presolve_total_nodes_on = 0;
  {
    Rng prng(424242);
    const struct {
      const char* label;
      minlp::Model model;
    } presolve_instances[] = {
        {"layout1_N40960", layout1_model(40960)},
        {"fmo_minmax_T32", fmo_minmax_model(32, prng)},
    };
    for (const auto& inst : presolve_instances) {
      const auto rep = bench_presolve(pt, inst.label, inst.model, reps);
      all_match = all_match && rep.objectives_match;
      presolve_nodes_ok = presolve_nodes_ok && rep.nodes_not_inflated;
      presolve_total_off_s += rep.off_s;
      presolve_total_on_s += rep.on_s;
      presolve_total_nodes_off += rep.nodes_off;
      presolve_total_nodes_on += rep.nodes_on;
    }
  }
  std::printf("%s", pt.str().c_str());
  // The gain target is over the acceptance set as a whole: layout1_N40960
  // is a 5-node tree where a fixed 25% cut is mostly timer noise, so the
  // total (dominated by wherever the solver actually spends time) is the
  // stable measure of what the reductions buy.
  const double presolve_time_gain =
      presolve_total_on_s > 0.0 ? presolve_total_off_s / presolve_total_on_s
                                : 0.0;
  const double presolve_node_gain =
      presolve_total_nodes_on > 0
          ? static_cast<double>(presolve_total_nodes_off) /
                static_cast<double>(presolve_total_nodes_on)
          : 0.0;
  const double presolve_gain =
      std::max(presolve_time_gain, presolve_node_gain);

  std::printf(
      "\nlayout1_N40960: warm speedup %.2fx, pivots/node reduced %.2fx\n",
      layout40960_speedup, layout40960_pivot_red);
  std::printf("sparse kernels: flops/pivot reduced >= %.1fx, "
              "wall speedup >= %.2fx\n",
              min_flop_reduction, min_sparse_speedup);
  std::printf("objectives identical across variants: %s\n",
              all_match ? "yes" : "NO");
  std::printf("parallel bit-identical to serial:     %s\n",
              all_identical ? "yes" : "NO");
  const bool flop_target_met = min_flop_reduction >= 5.0;
  std::printf("flops-per-pivot target (>= 5x):       %s\n",
              flop_target_met ? "yes" : "NO");
  std::printf("presolve-on tree never larger:        %s\n",
              presolve_nodes_ok ? "yes" : "NO");
  const bool presolve_target_met = presolve_gain >= 1.25;
  std::printf("presolve gain target (>= 1.25x total nodes or wall): %s "
              "(wall %.2fx, nodes %.2fx)\n",
              presolve_target_met ? "yes" : "NO", presolve_time_gain,
              presolve_node_gain);

  if (!all_match || !all_identical || !flop_target_met || !presolve_nodes_ok ||
      !presolve_target_met)
    return 1;
  return 0;
}
