// Warm-start / parallel-search acceptance bench for the MINLP
// branch-and-bound: cold re-solves vs warm-started re-solves vs the
// deterministic parallel wave search, on the layout-1 CESM instances
// (N = 2048, 8192, 40960) and on random FMO min-max budget instances.
//
// Reported per instance: wall time, tree size, simplex pivots per non-root
// node, and the warm-solve fraction. All variants must land on identical
// incumbents (the warm basis and the wave schedule change the *path*, never
// the answer); the parallel variant must additionally match the serial warm
// run bit for bit. Headline numbers are merged into BENCH_solver.json.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_json.hpp"
#include "cesm/layouts.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "hslb/budget.hpp"
#include "minlp/bnb.hpp"

namespace {

using namespace hslb;

constexpr const char* kJsonPath = "BENCH_solver.json";

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct RunStats {
  double obj = 0.0;
  double seconds = 0.0;
  std::vector<double> x;
  minlp::BnbResult stats;
};

/// Pivots spent re-solving tree nodes, per non-root node. The root solve is
/// excluded: it is cold in every variant, and the warm-start claim is about
/// the children that inherit a parent basis.
double pivots_per_node(const minlp::BnbResult& r) {
  if (r.nodes <= 1) return static_cast<double>(r.tree_lp_pivots);
  return static_cast<double>(r.tree_lp_pivots) /
         static_cast<double>(r.nodes - 1);
}

double warm_fraction(const minlp::BnbResult& r) {
  if (r.lp_solves == 0) return 0.0;
  return static_cast<double>(r.warm_solves) / static_cast<double>(r.lp_solves);
}

minlp::BnbOptions variant_options(bool warm, std::size_t threads) {
  minlp::BnbOptions opt;
  opt.warm_start = warm;
  opt.solver_threads = threads;
  return opt;
}

std::string fmt(double v, const char* spec = "%.4g") {
  char buf[64];
  std::snprintf(buf, sizeof buf, spec, v);
  return buf;
}

/// Times `reps` solves of the model under one option set, keeping the last
/// solution (they are deterministic, so all reps agree).
RunStats run_model(const minlp::Model& model, const minlp::BnbOptions& opt,
                   int reps) {
  RunStats out;
  const auto t0 = std::chrono::steady_clock::now();
  minlp::BnbResult r;
  for (int i = 0; i < reps; ++i) r = minlp::solve(model, opt);
  out.seconds = seconds_since(t0) / reps;
  out.obj = r.objective;
  out.x = r.x;
  out.stats = std::move(r);
  return out;
}

struct InstanceReport {
  bool objectives_match = true;
  bool parallel_identical = true;
  double speedup = 0.0;
  double pivot_reduction = 0.0;
};

/// Runs cold / warm / parallel on one model, prints a table row per variant,
/// merges the JSON entry, and checks the agreement invariants.
InstanceReport bench_instance(Table& t, const std::string& label,
                              const minlp::Model& model, int reps) {
  std::fprintf(stderr, "[%s] cold...", label.c_str());
  const RunStats cold = run_model(model, variant_options(false, 1), reps);
  std::fprintf(stderr, " %.3fs  warm...", cold.seconds);
  const RunStats warm = run_model(model, variant_options(true, 1), reps);
  std::fprintf(stderr, " %.3fs  parallel...", warm.seconds);
  // 0 = all hardware threads.
  const RunStats par = run_model(model, variant_options(true, 0), reps);
  std::fprintf(stderr, " %.3fs\n", par.seconds);

  InstanceReport rep;
  const double scale = 1.0 + std::fabs(cold.obj);
  rep.objectives_match = std::fabs(cold.obj - warm.obj) / scale < 1e-9 &&
                         std::fabs(cold.obj - par.obj) / scale < 1e-9;
  rep.parallel_identical = warm.obj == par.obj && warm.x == par.x;
  rep.speedup = warm.seconds > 0.0 ? cold.seconds / warm.seconds : 0.0;
  const double warm_ppn = pivots_per_node(warm.stats);
  rep.pivot_reduction =
      warm_ppn > 0.0 ? pivots_per_node(cold.stats) / warm_ppn : 0.0;

  const struct {
    const char* name;
    const RunStats& r;
  } rows[] = {{"cold", cold}, {"warm", warm}, {"parallel", par}};
  for (const auto& row : rows) {
    t.add_row({label, row.name, fmt(row.r.obj, "%.8g"),
               fmt(row.r.seconds * 1e3), std::to_string(row.r.stats.nodes),
               fmt(pivots_per_node(row.r.stats)),
               fmt(100.0 * warm_fraction(row.r.stats), "%.1f")});
  }
  t.add_rule();

  bench::merge_json(
      kJsonPath, "warmstart/" + label,
      {{"cold_s", cold.seconds},
       {"warm_s", warm.seconds},
       {"parallel_s", par.seconds},
       {"speedup_warm", rep.speedup},
       {"pivots_per_node_cold", pivots_per_node(cold.stats)},
       {"pivots_per_node_warm", warm_ppn},
       {"pivot_reduction", rep.pivot_reduction},
       {"warm_fraction", warm_fraction(warm.stats)},
       {"bnb_nodes", static_cast<double>(warm.stats.nodes)},
       {"objectives_match", rep.objectives_match ? 1.0 : 0.0},
       {"parallel_identical", rep.parallel_identical ? 1.0 : 0.0}});
  return rep;
}

struct SparseReport {
  bool objectives_match = true;
  double speedup = 0.0;         ///< dense wall / sparse wall
  double flop_reduction = 0.0;  ///< dense kernel work / sparse kernel work
};

/// Dense-vs-sparse kernel comparison: the same warm serial search run once
/// on the dense-equivalent kernels (Options::force_dense) and once on the
/// sparse ones. The answer must not move; the kernel-work counters measure
/// the flops-per-pivot reduction (acceptance target: >= 5x on the headline
/// instances). Eta storage compression is reported alongside but does not
/// gate: the min-max masters put the objective column in every OA cut row,
/// so their eta vectors fill in regardless of kernel.
SparseReport bench_sparse_kernels(Table& t, const std::string& label,
                                  const minlp::Model& model, int reps) {
  minlp::BnbOptions sparse_opt = variant_options(true, 1);
  minlp::BnbOptions dense_opt = sparse_opt;
  dense_opt.kelley.lp.force_dense = true;
  std::fprintf(stderr, "[%s] dense kernels...", label.c_str());
  const RunStats dense = run_model(model, dense_opt, reps);
  std::fprintf(stderr, " %.3fs  sparse kernels...", dense.seconds);
  const RunStats sparse = run_model(model, sparse_opt, reps);
  std::fprintf(stderr, " %.3fs\n", sparse.seconds);

  SparseReport rep;
  const double scale = 1.0 + std::fabs(dense.obj);
  rep.objectives_match = std::fabs(dense.obj - sparse.obj) / scale < 1e-9;
  rep.speedup = sparse.seconds > 0.0 ? dense.seconds / sparse.seconds : 0.0;
  rep.flop_reduction = sparse.stats.lp_stats.flop_reduction();

  const struct {
    const char* name;
    const RunStats& r;
  } rows[] = {{"dense", dense}, {"sparse", sparse}};
  for (const auto& row : rows) {
    const auto& s = row.r.stats.lp_stats;
    const double per_pivot =
        s.pivots > 0 ? static_cast<double>(s.eta_nnz) /
                           static_cast<double>(s.pivots)
                     : 0.0;
    t.add_row({label, row.name, fmt(row.r.obj, "%.8g"),
               fmt(row.r.seconds * 1e3), fmt(per_pivot, "%.1f"),
               fmt(s.flop_reduction(), "%.1f")});
  }
  t.add_rule();

  bench::merge_json(kJsonPath, "sparse/" + label,
                    {{"dense_s", dense.seconds},
                     {"sparse_s", sparse.seconds},
                     {"speedup_sparse", rep.speedup},
                     {"kernel_flop_reduction", rep.flop_reduction},
                     {"eta_compression",
                      sparse.stats.lp_stats.eta_compression()},
                     {"eta_nnz", static_cast<double>(sparse.stats.lp_stats.eta_nnz)},
                     {"eta_dense_nnz",
                      static_cast<double>(sparse.stats.lp_stats.eta_dense_nnz)},
                     {"lu_fill", static_cast<double>(sparse.stats.lp_stats.lu_fill)},
                     {"basis_nnz",
                      static_cast<double>(sparse.stats.lp_stats.basis_nnz)},
                     {"objectives_match", rep.objectives_match ? 1.0 : 0.0}});
  return rep;
}

struct PresolveReport {
  bool objectives_match = true;
  bool nodes_not_inflated = true;  ///< nodes_on <= nodes_off (deterministic)
  double speedup = 0.0;            ///< off wall / on wall
  double node_reduction = 0.0;     ///< nodes_off / nodes_on
  double off_s = 0.0, on_s = 0.0;
  std::size_t nodes_off = 0, nodes_on = 0;
};

/// Presolve + propagation + cut-retirement acceptance: the warm serial
/// search with every reduction off ({presolve=false, cut_age_limit=0})
/// against the defaults. The proven optimum must not move; the node count
/// with reductions on must never exceed the count with them off (both are
/// deterministic, so this gates without wall-clock noise).
PresolveReport bench_presolve(Table& t, const std::string& label,
                              const minlp::Model& model, int reps) {
  minlp::BnbOptions on_opt = variant_options(true, 1);
  minlp::BnbOptions off_opt = on_opt;
  off_opt.presolve = false;
  off_opt.cut_age_limit = 0;
  std::fprintf(stderr, "[%s] presolve off...", label.c_str());
  const RunStats off = run_model(model, off_opt, reps);
  std::fprintf(stderr, " %.3fs  presolve on...", off.seconds);
  const RunStats on = run_model(model, on_opt, reps);
  std::fprintf(stderr, " %.3fs\n", on.seconds);

  PresolveReport rep;
  const double scale = 1.0 + std::fabs(off.obj);
  rep.objectives_match = std::fabs(off.obj - on.obj) / scale < 1e-9;
  rep.nodes_not_inflated = on.stats.nodes <= off.stats.nodes;
  rep.speedup = on.seconds > 0.0 ? off.seconds / on.seconds : 0.0;
  rep.node_reduction =
      on.stats.nodes > 0
          ? static_cast<double>(off.stats.nodes) /
                static_cast<double>(on.stats.nodes)
          : 0.0;
  rep.off_s = off.seconds;
  rep.on_s = on.seconds;
  rep.nodes_off = off.stats.nodes;
  rep.nodes_on = on.stats.nodes;

  const struct {
    const char* name;
    const RunStats& r;
  } rows[] = {{"off", off}, {"on", on}};
  for (const auto& row : rows) {
    const auto& s = row.r.stats;
    t.add_row({label, row.name, fmt(row.r.obj, "%.8g"),
               fmt(row.r.seconds * 1e3), std::to_string(s.nodes),
               std::to_string(s.lp_stats.presolve_rows_removed) + "/" +
                   std::to_string(s.lp_stats.presolve_cols_removed),
               std::to_string(s.bounds_tightened),
               std::to_string(s.nodes_propagated_infeasible),
               std::to_string(s.cuts_retired) + "/" +
                   std::to_string(s.cuts_reactivated)});
  }
  t.add_rule();

  bench::merge_json(
      kJsonPath, "presolve/" + label,
      {{"off_s", off.seconds},
       {"on_s", on.seconds},
       {"speedup_presolve", rep.speedup},
       {"presolve_reduction", rep.node_reduction},
       {"bnb_nodes_off", static_cast<double>(off.stats.nodes)},
       {"bnb_nodes_on", static_cast<double>(on.stats.nodes)},
       {"presolve_rows_removed",
        static_cast<double>(on.stats.lp_stats.presolve_rows_removed)},
       {"presolve_cols_removed",
        static_cast<double>(on.stats.lp_stats.presolve_cols_removed)},
       {"bounds_tightened", static_cast<double>(on.stats.bounds_tightened)},
       {"nodes_propagated_infeasible",
        static_cast<double>(on.stats.nodes_propagated_infeasible)},
       {"cuts_retired", static_cast<double>(on.stats.cuts_retired)},
       {"cuts_reactivated", static_cast<double>(on.stats.cuts_reactivated)},
       {"objectives_match", rep.objectives_match ? 1.0 : 0.0},
       {"nodes_not_inflated", rep.nodes_not_inflated ? 1.0 : 0.0}});
  return rep;
}

minlp::Model layout1_model(long long n) {
  using namespace hslb::cesm;
  const Resolution r = n <= 4096 ? Resolution::Deg1 : Resolution::EighthDeg;
  std::array<perf::Model, 4> models;
  for (Component c : kComponents) models[index(c)] = ground_truth(r, c);
  return build_layout_minlp(make_problem(r, Layout::Hybrid, n, models));
}

minlp::Model fmo_minmax_model(std::size_t tasks, Rng& rng) {
  std::vector<BudgetTask> model_tasks;
  const long long budget = static_cast<long long>(tasks) * 12;
  for (std::size_t i = 0; i < tasks; ++i) {
    perf::Model m;
    m.a = rng.uniform(50.0, 5000.0);
    m.b = 0.0;
    m.c = 1.0;
    m.d = rng.uniform(0.0, 2.0);
    model_tasks.push_back(BudgetTask{"t" + std::to_string(i), m, 1, budget});
  }
  return build_budget_minlp(model_tasks, budget, Objective::MinMax);
}

}  // namespace

int main(int argc, char** argv) {
  // One knob: repetitions per (instance, variant). CI smoke uses 1.
  int reps = 3;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--reps" && i + 1 < argc) reps = std::atoi(argv[++i]);
  }
  if (reps < 1) reps = 1;

  std::printf(
      "=== Warm-started re-solves vs cold branch-and-bound (%d rep%s) ===\n\n",
      reps, reps == 1 ? "" : "s");

  Table t({"instance", "variant", "objective", "ms", "bnb nodes",
           "pivots/node", "warm %"});

  bool all_match = true;
  bool all_identical = true;
  double layout40960_speedup = 0.0;
  double layout40960_pivot_red = 0.0;

  for (long long n : {2048LL, 8192LL, 40960LL}) {
    const auto model = layout1_model(n);
    const auto rep =
        bench_instance(t, "layout1_N" + std::to_string(n), model, reps);
    all_match = all_match && rep.objectives_match;
    all_identical = all_identical && rep.parallel_identical;
    if (n == 40960) {
      layout40960_speedup = rep.speedup;
      layout40960_pivot_red = rep.pivot_reduction;
    }
  }

  Rng rng(424242);
  for (std::size_t tasks : {8u, 16u, 32u}) {
    const auto model = fmo_minmax_model(tasks, rng);
    const auto rep = bench_instance(
        t, "fmo_minmax_T" + std::to_string(tasks), model, reps);
    all_match = all_match && rep.objectives_match;
    all_identical = all_identical && rep.parallel_identical;
  }

  std::printf("%s", t.str().c_str());

  // -- Dense-vs-sparse kernel acceptance on the headline instances ----------
  std::printf("\n=== Sparse vs dense-equivalent simplex kernels ===\n\n");
  Table st({"instance", "kernels", "objective", "ms", "eta nnz/pivot",
            "flops/pivot red."});
  double min_flop_reduction = 1e30;
  double min_sparse_speedup = 1e30;
  {
    Rng srng(424242);
    const struct {
      const char* label;
      minlp::Model model;
    } sparse_instances[] = {
        {"layout1_N40960", layout1_model(40960)},
        {"fmo_minmax_T32", fmo_minmax_model(32, srng)},
    };
    for (const auto& inst : sparse_instances) {
      const auto rep = bench_sparse_kernels(st, inst.label, inst.model, reps);
      all_match = all_match && rep.objectives_match;
      min_flop_reduction = std::min(min_flop_reduction, rep.flop_reduction);
      min_sparse_speedup = std::min(min_sparse_speedup, rep.speedup);
    }
  }
  std::printf("%s", st.str().c_str());

  // -- Presolve / propagation / cut-retirement acceptance -------------------
  std::printf("\n=== Presolve + propagation + cut retirement vs off ===\n\n");
  Table pt({"instance", "presolve", "objective", "ms", "bnb nodes",
            "rows/cols rm", "tightened", "pruned", "ret/react"});
  bool presolve_nodes_ok = true;
  double presolve_total_off_s = 0.0, presolve_total_on_s = 0.0;
  std::size_t presolve_total_nodes_off = 0, presolve_total_nodes_on = 0;
  {
    Rng prng(424242);
    const struct {
      const char* label;
      minlp::Model model;
    } presolve_instances[] = {
        {"layout1_N40960", layout1_model(40960)},
        {"fmo_minmax_T32", fmo_minmax_model(32, prng)},
    };
    for (const auto& inst : presolve_instances) {
      const auto rep = bench_presolve(pt, inst.label, inst.model, reps);
      all_match = all_match && rep.objectives_match;
      presolve_nodes_ok = presolve_nodes_ok && rep.nodes_not_inflated;
      presolve_total_off_s += rep.off_s;
      presolve_total_on_s += rep.on_s;
      presolve_total_nodes_off += rep.nodes_off;
      presolve_total_nodes_on += rep.nodes_on;
    }
  }
  std::printf("%s", pt.str().c_str());
  // The gain target is over the acceptance set as a whole: layout1_N40960
  // is a 5-node tree where a fixed 25% cut is mostly timer noise, so the
  // total (dominated by wherever the solver actually spends time) is the
  // stable measure of what the reductions buy.
  const double presolve_time_gain =
      presolve_total_on_s > 0.0 ? presolve_total_off_s / presolve_total_on_s
                                : 0.0;
  const double presolve_node_gain =
      presolve_total_nodes_on > 0
          ? static_cast<double>(presolve_total_nodes_off) /
                static_cast<double>(presolve_total_nodes_on)
          : 0.0;
  const double presolve_gain =
      std::max(presolve_time_gain, presolve_node_gain);

  std::printf(
      "\nlayout1_N40960: warm speedup %.2fx, pivots/node reduced %.2fx\n",
      layout40960_speedup, layout40960_pivot_red);
  std::printf("sparse kernels: flops/pivot reduced >= %.1fx, "
              "wall speedup >= %.2fx\n",
              min_flop_reduction, min_sparse_speedup);
  std::printf("objectives identical across variants: %s\n",
              all_match ? "yes" : "NO");
  std::printf("parallel bit-identical to serial:     %s\n",
              all_identical ? "yes" : "NO");
  const bool flop_target_met = min_flop_reduction >= 5.0;
  std::printf("flops-per-pivot target (>= 5x):       %s\n",
              flop_target_met ? "yes" : "NO");
  std::printf("presolve-on tree never larger:        %s\n",
              presolve_nodes_ok ? "yes" : "NO");
  const bool presolve_target_met = presolve_gain >= 1.25;
  std::printf("presolve gain target (>= 1.25x total nodes or wall): %s "
              "(wall %.2fx, nodes %.2fx)\n",
              presolve_target_met ? "yes" : "NO", presolve_time_gain,
              presolve_node_gain);

  if (!all_match || !all_identical || !flop_target_met || !presolve_nodes_ok ||
      !presolve_target_met)
    return 1;
  return 0;
}
