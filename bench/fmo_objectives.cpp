// FMO-3 (title paper, §III-D here): ablation of the decision-making
// objective — min-max vs max-min vs min-sum — on the same fitted models.
//
// Claim to match: min-max performs best (used by both papers), max-min is
// slightly worse, min-sum is much worse ("obviously out of consideration").
#include <cstdio>

#include "common/table.hpp"
#include "fmo/driver.hpp"

int main() {
  using namespace hslb;
  using namespace hslb::fmo;

  std::printf("=== Objective-function ablation (min-max / max-min / min-sum) ===\n\n");

  const auto sys = water_cluster({.fragments = 48, .merge_fraction = 0.45,
                                  .scf_cutoff_angstrom = 4.5, .seed = 99});
  CostModel cost;

  Table t({"nodes", "objective", "predicted wave s", "actual SCC s",
           "actual total s", "efficiency"});
  t.set_title("Same fitted models, three allocation objectives");

  std::array<double, 3> totals_at_tightest{};
  bool first_block = true;
  for (long long nodes : {192LL, 768LL, 3072LL}) {
    if (!first_block) t.add_rule();
    first_block = false;
    for (Objective obj :
         {Objective::MinMax, Objective::MaxMin, Objective::MinSum}) {
      fmo::PipelineOptions opt;
      opt.objective = obj;
      const auto res = run_pipeline(sys, cost, nodes, opt);
      double wave = 0.0;
      for (const auto& a : res.allocation.tasks)
        wave = std::max(wave, a.predicted_seconds);
      t.add_row({Table::num(static_cast<long long>(nodes)), to_string(obj),
                 Table::num(wave, 3), Table::num(res.hslb.scc_seconds, 3),
                 Table::num(res.hslb.total_seconds, 3),
                 Table::num(res.hslb.efficiency(nodes), 3)});
      if (nodes == 192)
        totals_at_tightest[static_cast<std::size_t>(obj)] =
            res.hslb.total_seconds;
    }
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("claims (tight budget, 192 nodes): min-max (%.2f s) <= max-min "
              "(%.2f s) < min-sum (%.2f s); the min-sum gap is largest when "
              "nodes are scarce,\nand min-max never loses at any budget — "
              "matching the paper's choice of min-max.\n",
              totals_at_tightest[0], totals_at_tightest[1],
              totals_at_tightest[2]);
  return 0;
}
