# Bench binaries are placed in ${CMAKE_BINARY_DIR}/bench (binaries only; the
# repro loop executes every file in that directory, so nothing else may be
# written there).
set(HSLB_BENCH_DIR ${CMAKE_BINARY_DIR}/bench)

function(hslb_add_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE ${ARGN})
  set_target_properties(${name} PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${HSLB_BENCH_DIR})
endfunction()

# Paper tables and figures (text-table generators).
hslb_add_bench(cesm_table3 hslb_cesm)
hslb_add_bench(cesm_fig2_scaling hslb_cesm)
hslb_add_bench(cesm_fig3_highres hslb_cesm)
hslb_add_bench(cesm_fig4_layouts hslb_cesm)
hslb_add_bench(fmo_scaling hslb_fmo)
hslb_add_bench(fmo_weakscaling hslb_fmo)
hslb_add_bench(fmo_fit_quality hslb_fmo)
hslb_add_bench(fmo_objectives hslb_fmo)
hslb_add_bench(fmo_imbalance hslb_fmo)
hslb_add_bench(fmo_predicted_vs_actual hslb_fmo)
hslb_add_bench(fmo_solver_crosscheck hslb_fmo)
hslb_add_bench(pipeline_parallel hslb_fmo)

# Ablations called out in DESIGN.md.
hslb_add_bench(minlp_sos hslb_cesm)
hslb_add_bench(minlp_branchrule hslb_cesm)
hslb_add_bench(cesm_tsync_ablation hslb_cesm)
hslb_add_bench(cesm_finetuning hslb_cesm)
hslb_add_bench(cesm_coupling_overhead hslb_cesm)
hslb_add_bench(cesm_advisor hslb_cesm)
hslb_add_bench(fit_points_ablation hslb_cesm)
hslb_add_bench(fit_multistart_ablation hslb_cesm)

# Machine-readable bench output (BENCH_solver.json merge helper).
add_library(hslb_benchjson STATIC ${CMAKE_SOURCE_DIR}/bench/bench_json.cpp)
target_include_directories(hslb_benchjson PUBLIC ${CMAKE_SOURCE_DIR})
target_compile_features(hslb_benchjson PUBLIC cxx_std_20)

# Solver acceptance bench: cold vs warm vs parallel branch-and-bound.
hslb_add_bench(minlp_warmstart hslb_cesm hslb_fmo hslb_benchjson)

# Execution robustness: HSLB static vs DLB dynamic under stragglers and
# fail-stop, plus the trace-export round-trip gate.
hslb_add_bench(execution_robustness hslb_fmo hslb_benchjson)

# Closed-loop adaptive rebalancing vs static and DLB on the same scenario,
# plus the warm-vs-cold re-solve gate.
hslb_add_bench(adaptive_rebalance hslb_fmo hslb_minlp hslb_benchjson)

# Communication/memory-aware cost model: extended vs compute-only Solve on
# the communication-dominated family, plus the compute-only parity gate.
hslb_add_bench(comm_model hslb_fmo hslb_benchjson)

# Allocation service: exact-repeat hit latency, cross-instance warm-start
# node counts, mixed-stream throughput, and the thread-replay gate.
hslb_add_bench(server_throughput hslb_service hslb_benchjson)

# Seeded randomized scenario fuzzer over the substrate registry: gates
# "HSLB never loses to DLB by more than --bound on any drawn scenario"
# and failure recovery under the adaptive controller; prints the
# counterexample seed on failure. Merges fuzz/* into BENCH_solver.json.
hslb_add_bench(scenario_fuzz hslb_substrates hslb_benchjson)

# Microbenchmarks (google-benchmark).
hslb_add_bench(minlp_solvetime hslb_cesm hslb_benchjson benchmark::benchmark)
hslb_add_bench(lp_simplex_bench hslb_lp hslb_benchjson benchmark::benchmark)
hslb_add_bench(nlsq_fit_bench hslb_perf benchmark::benchmark)
