// Coupling-barrier overhead study (simulator extension).
//
// The paper's wall-clock model, T = max(max(ice,lnd)+atm, ocn), treats the
// 5-day run as one block. The real coupler synchronizes the component
// blocks every coupling period; with run-to-run noise each barrier waits
// for the slowest side, so the true wall clock exceeds the formula by a
// noise-dependent amount. This bench quantifies that loss on the
// event-driven coupled simulator — relevant to how well any *static*
// balancer (manual or HSLB) can possibly do.
#include <cstdio>

#include "cesm/simulator.hpp"
#include "common/table.hpp"

int main() {
  using namespace hslb;
  using namespace hslb::cesm;

  std::printf("=== Coupler-barrier overhead vs run-to-run noise ===\n\n");

  // The paper's 1-degree HSLB allocation at 128 nodes.
  const std::array<long long, 4> nodes{15, 89, 104, 24};

  Table t({"noise cv", "formula total s", "coupled total s", "loss s",
           "loss %", "DES events"});
  t.set_title("Layout 1, 1 degree, 128 nodes, 24 coupling periods");
  for (double cv : {0.0, 0.01, 0.02, 0.05, 0.10}) {
    SimulatorOptions opt;
    opt.noise_cv = cv;
    opt.ice_noise_cv = 2.0 * cv;
    Simulator sim(Resolution::Deg1, opt);
    const auto run = sim.run_coupled(Layout::Hybrid, nodes, 24);
    const double formula =
        run.total_seconds - run.coupling_loss_seconds;
    t.add_row({Table::num(cv, 2), Table::num(formula, 2),
               Table::num(run.total_seconds, 2),
               Table::num(run.coupling_loss_seconds, 2),
               Table::num(100.0 * run.coupling_loss_seconds / formula, 2),
               Table::num(static_cast<long long>(run.events))});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("claims: zero noise reproduces the paper's formula exactly "
              "(loss 0); barrier loss grows with noise but stays small at "
              "the ~2-6%% noise levels of real runs — the formula (and a\n"
              "static balancer built on it) remains a good model of the "
              "coupled execution.\n");
  return 0;
}
