// §III-C ablation: multistart in the Fit step. The least-squares problem is
// non-convex; the paper "experimented with different starting solutions and
// observed that even though the parameter values may differ, the solution
// value of the problem did not vary significantly" and that different local
// optima "led to similar quality node allocations".
//
// We fit the 1/8-degree atmosphere benchmark data with 1..32 starts and
// report the best SSE found plus the spread of local-optimum SSEs.
#include <cstdio>

#include "cesm/pipeline.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

int main() {
  using namespace hslb;
  using namespace hslb::cesm;

  std::printf("=== Multistart ablation for the Fit step ===\n\n");

  // Gather one noisy benchmark set for the 1/8-degree atmosphere.
  Simulator sim(Resolution::EighthDeg);
  perf::SampleSet samples;
  for (long long n : {64, 256, 1024, 4096, 16384, 32768})
    samples.push_back({static_cast<double>(n),
                       sim.benchmark(Component::Atm, n)});

  Table t({"starts", "best SSE", "R^2", "fitted a", "fitted d",
           "prediction at 8192"});
  for (std::size_t starts : {1u, 2u, 4u, 8u, 16u, 32u}) {
    perf::FitOptions opt;
    opt.num_starts = starts;
    const auto fit = perf::fit(samples, opt);
    t.add_row({Table::num(static_cast<long long>(starts)),
               Table::num(fit.sse, 4), Table::num(fit.r2, 6),
               Table::num(fit.model.a, 0), Table::num(fit.model.d, 2),
               Table::num(fit.model.eval(8192.0), 2)});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("claims: a handful of starts suffices; additional starts leave "
              "the solution value (and the downstream prediction) nearly "
              "unchanged, matching the paper's observation.\n");
  return 0;
}
