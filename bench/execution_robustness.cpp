// Execution robustness: how the HSLB static schedule and the DLB dynamic
// baseline degrade when the machine misbehaves.
//
// The paper's premise is that a *static* schedule wins when predictions are
// good; the classic objection is that static schedules are brittle when
// nodes straggle or fail. This bench quantifies both sides on the shared
// sim::Runtime:
//
//   * a straggler sweep — per-node slowdown factors max(1, lognormal(cv))
//     at several severities, shared between HSLB and DLB (common random
//     numbers), recording each scheduler's makespan degradation over its
//     own noise-free baseline;
//   * a permanent node fail-stop — the static schedule wedges (tasks
//     pinned to the dead node can never run) while the dynamic queue
//     re-dispatches and completes;
//   * a trace round-trip gate — the CSV export must reproduce the exact
//     makespan and busy node-seconds when parsed back (string round trip
//     and save/load through a temp file).
//
// Headline numbers merge into BENCH_solver.json under "execution/...";
// exits non-zero when the round-trip gate or the fail-stop asymmetry
// check fails, so CI smoke enforces both.
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_json.hpp"
#include "fmo/scenario.hpp"
#include "common/table.hpp"
#include "fmo/schedulers.hpp"
#include "hslb/budget.hpp"
#include "sim/trace.hpp"

namespace {

using namespace hslb;
namespace scenario = hslb::fmo::scenario;
using scenario::cv_label;
using scenario::kDlbGroups;
using scenario::kNodes;

constexpr const char* kJsonPath = "BENCH_solver.json";

bool close(double a, double b) {
  return std::fabs(a - b) <= 1e-9 * std::max({1.0, std::fabs(a), std::fabs(b)});
}

/// Trace export gate: CSV string round trip and save/load must reproduce
/// the makespan and busy node-seconds exactly.
bool trace_round_trips(const sim::Trace& trace) {
  const sim::Trace parsed = sim::Trace::from_csv(trace.to_csv());
  bool ok = close(parsed.makespan(), trace.makespan()) &&
            close(parsed.busy_node_seconds(), trace.busy_node_seconds()) &&
            parsed.events.size() == trace.events.size();
  const auto path = std::filesystem::temp_directory_path() /
                    "hslb_execution_robustness_trace.csv";
  trace.save(path.string());
  const sim::Trace loaded = sim::Trace::load(path.string());
  ok = ok && close(loaded.makespan(), trace.makespan()) &&
       close(loaded.busy_node_seconds(), trace.busy_node_seconds()) &&
       loaded.events.size() == trace.events.size();
  std::filesystem::remove(path);
  ok = ok && !trace.to_json().empty();
  return ok;
}

}  // namespace

int main() {
  // System and allocation from the noise-free oracle: this bench isolates
  // execution-time perturbations, so Gather/Fit are skipped and the Solve
  // step runs directly on the true monomer models.
  const auto sys = scenario::water24();
  const fmo::CostModel cost;
  const auto tasks = scenario::oracle_tasks(sys, cost);
  const Allocation alloc = solve_min_max(tasks, kNodes);
  const auto layout = scenario::dlb_layout();

  const fmo::RunOptions base = scenario::noise_free_run();

  const std::vector<double> severities = scenario::straggler_severities();
  Table t({"straggler cv", "HSLB s", "DLB s", "HSLB degr", "DLB degr",
           "DLB/HSLB"});
  double hslb0 = 0.0, dlb0 = 0.0;
  for (double cv : severities) {
    fmo::RunOptions opt = base;
    opt.straggler_cv = cv;
    const auto hslb = run_hslb(sys, cost, alloc, kNodes, opt);
    const auto dlb = run_dlb(sys, cost, layout, opt);
    if (cv == 0.0) {
      hslb0 = hslb.total_seconds;
      dlb0 = dlb.total_seconds;
    }
    const double hslb_degr = hslb.total_seconds / hslb0;
    const double dlb_degr = dlb.total_seconds / dlb0;
    t.add_row({cv_label(cv), Table::num(hslb.total_seconds, 3),
               Table::num(dlb.total_seconds, 3), Table::num(hslb_degr, 3),
               Table::num(dlb_degr, 3),
               Table::num(dlb.total_seconds / hslb.total_seconds, 3)});
    bench::merge_json(
        kJsonPath, "execution/straggler_cv_" + cv_label(cv),
        {{"hslb_total_s", hslb.total_seconds},
         {"dlb_total_s", dlb.total_seconds},
         {"hslb_degradation", hslb_degr},
         {"dlb_degradation", dlb_degr},
         {"dlb_over_hslb", dlb.total_seconds / hslb.total_seconds},
         {"hslb_completed", hslb.completed ? 1.0 : 0.0},
         {"dlb_completed", dlb.completed ? 1.0 : 0.0}});
    if (cv == 0.2 && !trace_round_trips(hslb.trace)) {
      std::fprintf(stderr, "FAIL: trace CSV round trip diverged\n");
      return 1;
    }
  }
  std::printf("%zu fragments on %lld nodes, noise-free baseline; per-node\n"
              "slowdown factors max(1, lognormal(cv)) shared by both runs\n\n",
              sys.num_fragments(), kNodes);
  std::printf("%s\n", t.str().c_str());

  // Fail-stop asymmetry: node 0 dies permanently mid-SCC. The static
  // schedule has work pinned to it and cannot finish; the dynamic queue
  // retires one group and completes.
  fmo::RunOptions fail = base;
  scenario::inject_fail_stop(fail);
  const auto hslb_fail = run_hslb(sys, cost, alloc, kNodes, fail);
  const auto dlb_fail = run_dlb(sys, cost, layout, fail);
  std::printf("permanent fail-stop of node 0 at t=1s: HSLB %s (%zu restarts), "
              "DLB %s (%zu restarts)\n",
              hslb_fail.completed ? "completed" : "INCOMPLETE",
              hslb_fail.restarts, dlb_fail.completed ? "completed" : "INCOMPLETE",
              dlb_fail.restarts);
  bench::merge_json(kJsonPath, "execution/fail_stop",
                    {{"hslb_completed", hslb_fail.completed ? 1.0 : 0.0},
                     {"dlb_completed", dlb_fail.completed ? 1.0 : 0.0},
                     {"hslb_restarts", static_cast<double>(hslb_fail.restarts)},
                     {"dlb_restarts", static_cast<double>(dlb_fail.restarts)},
                     {"dlb_total_s", dlb_fail.total_seconds}});
  if (hslb_fail.completed || !dlb_fail.completed) {
    std::fprintf(stderr,
                 "FAIL: expected static INCOMPLETE and dynamic completed "
                 "under a permanent node failure\n");
    return 1;
  }
  std::printf("results merged into %s\n", kJsonPath);
  return 0;
}
