// The Fit step of HSLB (Table II, line 10):
//
//   min_{a,b,c,d >= 0}  sum_i ( y_i - a/n_i - b*n_i^c - d )^2
//
// solved by box-constrained Levenberg-Marquardt with multistart, with
// data-driven start boxes. By default the exponent c is constrained to
// [1, c_max] so that the fitted model is convex and the allocation MINLP is
// solved to proven global optimality (§III-E); the paper observed b, c
// "almost equal to zero" on Intrepid, which the convex fit reproduces with
// b ~ 0.
#pragma once

#include "perf/benchdata.hpp"
#include "perf/model.hpp"

namespace hslb {
class ThreadPool;
}

namespace hslb::perf {

struct FitOptions {
  std::size_t num_starts = 24;
  std::uint64_t seed = 1234;
  /// Worker threads for fit_all (per-task fits are independent; results are
  /// identical for every thread count). 0 = hardware concurrency.
  std::size_t threads = 1;
  /// Exponent bounds. Lower bound 1.0 keeps the model convex; set
  /// min_c < 1 to reproduce the paper's unconstrained-c discussion.
  double min_c = 1.0;
  double max_c = 3.0;
  /// Upper bounds as multiples of data scales (see fit() implementation).
  double a_scale = 50.0;
  double d_scale = 2.0;
};

struct FitResult {
  Model model;
  double sse = 0.0;
  double rmse = 0.0;
  double r2 = 0.0;             ///< the paper's fit-quality criterion (§III-C)
  std::size_t starts_tried = 0;
  std::size_t starts_converged = 0;
  bool converged = false;
};

/// Fits one component's samples. Requires >= 2 distinct node counts; the
/// paper recommends >= 4 samples ("at least greater than four") — fewer is
/// allowed but flagged by the returned diagnostics (r2 of a saturated fit
/// is trivially 1).
FitResult fit(const SampleSet& samples, const FitOptions& options = {});

/// Fits every task in a gather table, `options.threads` tasks at a time.
/// Passing an existing `pool` reuses its workers (options.threads is then
/// ignored); otherwise a transient pool is built when threads != 1.
std::vector<std::pair<std::string, FitResult>> fit_all(
    const BenchTable& table, const FitOptions& options = {},
    ThreadPool* pool = nullptr);

}  // namespace hslb::perf
