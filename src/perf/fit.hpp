// The Fit step of HSLB (Table II, line 10), generalized to a sum of
// registered cost terms:
//
//   min_{p >= 0}  sum_i ( y_i - sum_k term_k(p_k, n_i) )^2
//
// solved by box-constrained Levenberg-Marquardt with multistart, with
// data-driven start boxes supplied per term. The classic spec is the single
// `powerlaw` term a/n + b*n^c + d, which delegates to perf::Model verbatim,
// so fit() is bit-identical to the pre-refactor power-law fit. By default
// the exponent c is constrained to [1, c_max] so that the fitted model is
// convex and the allocation MINLP is solved to proven global optimality
// (§III-E); the paper observed b, c "almost equal to zero" on Intrepid,
// which the convex fit reproduces with b ~ 0.
//
// Terms with zero fitted parameters (pinned analytic terms, e.g. a comm
// term with beta = 1/bandwidth from the machine spec) are subtracted from
// the data rather than optimized; a spec made only of pinned terms skips
// the optimizer entirely and just reports goodness of fit.
#pragma once

#include "perf/benchdata.hpp"
#include "perf/model.hpp"
#include "perf/terms.hpp"

namespace hslb {
class ThreadPool;
}

namespace hslb::perf {

/// The terms a fit should compose; parameter values come out in the
/// resulting CostModel, laid out in spec order.
using CostModelSpec = std::vector<TermPtr>;

struct FitOptions {
  std::size_t num_starts = 24;
  std::uint64_t seed = 1234;
  /// Worker threads for fit_all (per-task fits are independent; results are
  /// identical for every thread count). 0 = hardware concurrency.
  std::size_t threads = 1;
  /// Exponent bounds. Lower bound 1.0 keeps the model convex; set
  /// min_c < 1 to reproduce the paper's unconstrained-c discussion.
  double min_c = 1.0;
  double max_c = 3.0;
  /// Upper bounds as multiples of data scales (see FitScales).
  double a_scale = 50.0;
  double d_scale = 2.0;
};

struct FitResult {
  /// Power-law view of the fit: the first powerlaw term's parameters, or
  /// all zeros (with c = 1) when the spec has none. Kept so existing
  /// consumers of (a, b, c, d) — model I/O, reports, benches — read the
  /// classic fit unchanged.
  Model model;
  /// The fitted cost model: one entry per spec term with bound parameters.
  CostModel cost;
  double sse = 0.0;
  double rmse = 0.0;
  double r2 = 0.0;             ///< the paper's fit-quality criterion (§III-C)
  std::size_t starts_tried = 0;
  std::size_t starts_converged = 0;
  bool converged = false;
};

/// Fits one component's samples against an explicit term spec. Requires
/// >= 2 distinct node counts; the paper recommends >= 4 samples ("at least
/// greater than four") — fewer is allowed but flagged by the returned
/// diagnostics (r2 of a saturated fit is trivially 1).
FitResult fit_cost(const SampleSet& samples, const CostModelSpec& spec,
                   const FitOptions& options = {});

/// Classic power-law fit: fit_cost with the single `powerlaw` term.
FitResult fit(const SampleSet& samples, const FitOptions& options = {});

/// Fits every task in a gather table, `options.threads` tasks at a time.
/// Passing an existing `pool` reuses its workers (options.threads is then
/// ignored); otherwise a transient pool is built when threads != 1.
/// A non-empty `spec` applies to every task; empty = classic power law.
std::vector<std::pair<std::string, FitResult>> fit_all(
    const BenchTable& table, const FitOptions& options = {},
    ThreadPool* pool = nullptr, const CostModelSpec& spec = {});

// ---- Incremental refit: fold epoch observations, re-fit warm ------------
//
// The closed-loop controller re-estimates models mid-run: each epoch's
// trace yields observed (task, nodes, seconds) samples, which are folded
// into the original gather table over a sliding window and re-fitted warm
// from the previous parameters.

/// One observed execution sample from an epoch trace.
struct Observed {
  std::string task;
  double nodes = 0.0;
  double seconds = 0.0;
  std::size_t epoch = 0;  ///< epoch the observation was made in
};

/// Merges one task's gather samples with its epoch observations: gather
/// samples enter at weight 1, each observation inside the window
/// [epoch + 1 - window, epoch] is replicated round(weight) times so a
/// handful of in-situ measurements can move a fit anchored by the gather
/// sweep. Observations for other tasks are ignored.
SampleSet fold_observations(const SampleSet& gathered,
                            const std::vector<Observed>& observations,
                            const std::string& task, std::size_t epoch,
                            std::size_t window, double weight);

/// Mean relative prediction error mean_i |y_i - T(n_i)| / T(n_i) of a
/// fitted model over a task's observations — the drift statistic the
/// rebalance policy thresholds on. 0 when no observation matches `task`.
double prediction_drift(const CostModel& model,
                        const std::vector<Observed>& observations,
                        const std::string& task);

/// Re-fits warm from a previous result: a single Levenberg-Marquardt run
/// started at the previous parameters (projected into the data-driven fit
/// box). When the warm descent fails to converge, falls back to the full
/// fit_cost multistart. `previous.cost` must have been fitted against the
/// same spec (same terms, same parameter counts).
FitResult refit_cost(const SampleSet& samples, const CostModelSpec& spec,
                     const FitResult& previous, const FitOptions& options = {});

}  // namespace hslb::perf
