#include "perf/terms.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/contracts.hpp"
#include "common/strings.hpp"

namespace hslb::perf {

// ---------------------------------------------------------------------------
// CostTerm defaults

void CostTerm::grad_params(std::span<const double>, double,
                           std::span<double>) const {
  HSLB_ASSERT(!"grad_params called on a term without fitted parameters");
}

void CostTerm::fit_bounds(const FitScales&, std::span<double> lo,
                          std::span<double> hi) const {
  for (auto& v : lo) v = 0.0;
  for (auto& v : hi) v = std::numeric_limits<double>::infinity();
}

void CostTerm::start_box(const FitScales& scales, std::span<double> lo,
                         std::span<double> hi) const {
  fit_bounds(scales, lo, hi);
}

bool CostTerm::linear_in_n(std::span<const double>, double&, double&) const {
  return false;
}

bool CostTerm::knapsack_row(double&, double&) const { return false; }

namespace {

// ---------------------------------------------------------------------------
// powerlaw — the classic a/n + b*n^c + d, delegating to perf::Model so a
// single-term model reproduces the seed's float operations exactly.

class PowerLawTerm final : public CostTerm {
 public:
  const std::string& name() const override {
    static const std::string n = "powerlaw";
    return n;
  }
  std::size_t num_params() const override { return 4; }

  double eval(std::span<const double> p, double n) const override {
    return as_model(p).eval(n);
  }
  double deriv_n(std::span<const double> p, double n) const override {
    return as_model(p).deriv_n(n);
  }
  void grad_params(std::span<const double> p, double n,
                   std::span<double> out) const override {
    const auto g = as_model(p).grad_params(n);
    for (std::size_t j = 0; j < 4; ++j) out[j] = g[j];
  }
  void fit_bounds(const FitScales& s, std::span<double> lo,
                  std::span<double> hi) const override {
    // Positivity constraints (Table II, line 11) and the
    // convexity-preserving exponent window — the pre-refactor bounds.
    const double a_hi = s.a_scale * s.max_an;
    const double d_hi = s.d_scale * s.min_y;
    const double b_hi = std::max(s.max_y, 1.0);
    lo[0] = 0.0;
    lo[1] = 0.0;
    lo[2] = s.min_c;
    lo[3] = 0.0;
    hi[0] = a_hi;
    hi[1] = b_hi;
    hi[2] = s.max_c;
    hi[3] = d_hi;
  }
  void start_box(const FitScales& s, std::span<double> lo,
                 std::span<double> hi) const override {
    const double a_hi = s.a_scale * s.max_an;
    const double d_hi = s.d_scale * s.min_y;
    const double b_hi = std::max(s.max_y, 1.0);
    lo[0] = 1e-6 * std::max(s.max_an, 1.0);
    lo[1] = 1e-12;
    lo[2] = s.min_c;
    lo[3] = 1e-9 * std::max(s.min_y, 1e-3);
    hi[0] = a_hi;
    hi[1] = 1e-2 * b_hi;
    hi[2] = s.max_c;
    hi[3] = std::max(d_hi, 2e-9);
  }
  bool is_convex(std::span<const double> p) const override {
    return as_model(p).is_convex();
  }
  std::string expr(std::span<const double> p,
                   const std::string& var) const override {
    return as_model(p).expr(var);
  }

  static Model as_model(std::span<const double> p) {
    return Model{p[0], p[1], p[2], p[3]};
  }
};

// ---------------------------------------------------------------------------
// compute — a/n^c scalable work alone (params a, c).

class ComputeTerm final : public CostTerm {
 public:
  const std::string& name() const override {
    static const std::string n = "compute";
    return n;
  }
  std::size_t num_params() const override { return 2; }

  double eval(std::span<const double> p, double n) const override {
    HSLB_EXPECTS(n > 0.0);
    return p[0] / std::pow(n, p[1]);
  }
  double deriv_n(std::span<const double> p, double n) const override {
    HSLB_EXPECTS(n > 0.0);
    return -p[0] * p[1] / std::pow(n, p[1] + 1.0);
  }
  void grad_params(std::span<const double> p, double n,
                   std::span<double> out) const override {
    const double pnc = std::pow(n, -p[1]);
    out[0] = pnc;
    out[1] = -p[0] * pnc * std::log(n);
  }
  void fit_bounds(const FitScales& s, std::span<double> lo,
                  std::span<double> hi) const override {
    lo[0] = 0.0;
    lo[1] = 0.5;  // sub-linear through quadratic scaling window
    hi[0] = s.a_scale * s.max_an;
    hi[1] = 2.0;
  }
  void start_box(const FitScales& s, std::span<double> lo,
                 std::span<double> hi) const override {
    lo[0] = 1e-6 * std::max(s.max_an, 1.0);
    lo[1] = 0.9;
    hi[0] = s.a_scale * s.max_an;
    hi[1] = 1.1;
  }
  bool is_convex(std::span<const double> p) const override {
    return p[0] >= 0.0 && p[1] > 0.0;
  }
  std::string expr(std::span<const double> p,
                   const std::string& var) const override {
    return strings::format("%.12g/%s^%.12g", p[0], var.c_str(), p[1]);
  }
};

// ---------------------------------------------------------------------------
// serial — the floor d alone (param d).

class SerialTerm final : public CostTerm {
 public:
  const std::string& name() const override {
    static const std::string n = "serial";
    return n;
  }
  std::size_t num_params() const override { return 1; }

  double eval(std::span<const double> p, double) const override {
    return p[0];
  }
  double deriv_n(std::span<const double>, double) const override {
    return 0.0;
  }
  void grad_params(std::span<const double>, double,
                   std::span<double> out) const override {
    out[0] = 1.0;
  }
  void fit_bounds(const FitScales& s, std::span<double> lo,
                  std::span<double> hi) const override {
    lo[0] = 0.0;
    hi[0] = s.d_scale * s.min_y;
  }
  void start_box(const FitScales& s, std::span<double> lo,
                 std::span<double> hi) const override {
    lo[0] = 1e-9 * std::max(s.min_y, 1e-3);
    hi[0] = std::max(s.d_scale * s.min_y, 2e-9);
  }
  bool is_convex(std::span<const double> p) const override {
    return p[0] >= 0.0;
  }
  std::string expr(std::span<const double> p,
                   const std::string&) const override {
    return strings::format("%.12g", p[0]);
  }
  bool linear_in_n(std::span<const double> p, double& slope,
                   double& intercept) const override {
    slope = 0.0;
    intercept = p[0];
    return true;
  }
};

// ---------------------------------------------------------------------------
// comm — beta * volume * n (per-neighbour halo fan-out).

class CommTerm final : public CostTerm {
 public:
  CommTerm(double volume_gb, std::optional<double> beta)
      : volume_gb_(volume_gb), beta_(beta) {
    HSLB_EXPECTS(volume_gb_ >= 0.0);
    if (beta_) HSLB_EXPECTS(*beta_ >= 0.0);
  }

  const std::string& name() const override {
    static const std::string n = "comm";
    return n;
  }
  std::size_t num_params() const override { return beta_ ? 0 : 1; }

  double eval(std::span<const double> p, double n) const override {
    return beta_of(p) * volume_gb_ * std::max(0.0, n);
  }
  double deriv_n(std::span<const double> p, double) const override {
    return beta_of(p) * volume_gb_;
  }
  void grad_params(std::span<const double>, double n,
                   std::span<double> out) const override {
    out[0] = volume_gb_ * n;
  }
  void fit_bounds(const FitScales& s, std::span<double> lo,
                  std::span<double> hi) const override {
    lo[0] = 0.0;
    // The slope at one node cannot exceed the largest observation.
    hi[0] = s.max_y / std::max(volume_gb_, 1e-12);
  }
  void start_box(const FitScales& s, std::span<double> lo,
                 std::span<double> hi) const override {
    lo[0] = 1e-12;
    hi[0] = 1e-1 * s.max_y / std::max(volume_gb_, 1e-12);
  }
  bool is_convex(std::span<const double> p) const override {
    return beta_of(p) >= 0.0;
  }
  std::string expr(std::span<const double> p,
                   const std::string& var) const override {
    return strings::format("%.12g*%s", beta_of(p) * volume_gb_, var.c_str());
  }
  bool linear_in_n(std::span<const double> p, double& slope,
                   double& intercept) const override {
    slope = beta_of(p) * volume_gb_;
    intercept = 0.0;
    return true;
  }

 private:
  double beta_of(std::span<const double> p) const {
    return beta_ ? *beta_ : p[0];
  }

  double volume_gb_;
  std::optional<double> beta_;
};

// ---------------------------------------------------------------------------
// memory — gamma * max(0, mem - capacity*n) plus the knapsack row. The
// argument of max() is the total GB spilled past node memory across the
// task's span, so the term equals the runtime's paging charge
// (Machine::page_seconds summed over the span) exactly.

class MemoryTerm final : public CostTerm {
 public:
  MemoryTerm(double memory_gb, double capacity_gb, std::optional<double> gamma)
      : memory_gb_(memory_gb), capacity_gb_(capacity_gb), gamma_(gamma) {
    HSLB_EXPECTS(memory_gb_ >= 0.0);
    HSLB_EXPECTS(capacity_gb_ > 0.0);
    if (gamma_) HSLB_EXPECTS(*gamma_ >= 0.0);
  }

  const std::string& name() const override {
    static const std::string n = "memory";
    return n;
  }
  std::size_t num_params() const override { return gamma_ ? 0 : 1; }

  double eval(std::span<const double> p, double n) const override {
    HSLB_EXPECTS(n > 0.0);
    return gamma_of(p) * std::max(0.0, memory_gb_ - capacity_gb_ * n);
  }
  double deriv_n(std::span<const double> p, double n) const override {
    HSLB_EXPECTS(n > 0.0);
    // One-sided subgradient at the kink — valid for OA cuts on a convex fn.
    if (memory_gb_ <= capacity_gb_ * n) return 0.0;
    return -gamma_of(p) * capacity_gb_;
  }
  void grad_params(std::span<const double>, double n,
                   std::span<double> out) const override {
    out[0] = std::max(0.0, memory_gb_ - capacity_gb_ * n);
  }
  void fit_bounds(const FitScales& s, std::span<double> lo,
                  std::span<double> hi) const override {
    lo[0] = 0.0;
    hi[0] = s.max_y / std::max(memory_gb_, 1e-12);
  }
  void start_box(const FitScales& s, std::span<double> lo,
                 std::span<double> hi) const override {
    lo[0] = 1e-12;
    hi[0] = 1e-1 * s.max_y / std::max(memory_gb_, 1e-12);
  }
  bool is_convex(std::span<const double> p) const override {
    return gamma_of(p) >= 0.0;
  }
  std::string expr(std::span<const double> p,
                   const std::string& var) const override {
    return strings::format("%.12g*max(0, %.12g - %.12g*%s)", gamma_of(p),
                           memory_gb_, capacity_gb_, var.c_str());
  }
  bool linear_in_n(std::span<const double> p, double& slope,
                   double& intercept) const override {
    // A zero paging slope leaves only the knapsack row; report the zero
    // affine part so the MINLP epigraph skips the term entirely.
    if (gamma_of(p) != 0.0) return false;
    slope = 0.0;
    intercept = 0.0;
    return true;
  }
  bool knapsack_row(double& capacity, double& demand) const override {
    capacity = capacity_gb_;
    demand = memory_gb_;
    return true;
  }

 private:
  double gamma_of(std::span<const double> p) const {
    return gamma_ ? *gamma_ : p[0];
  }

  double memory_gb_;
  double capacity_gb_;
  std::optional<double> gamma_;
};

}  // namespace

TermPtr power_law_term() {
  static const TermPtr term = std::make_shared<PowerLawTerm>();
  return term;
}

TermPtr compute_term() {
  static const TermPtr term = std::make_shared<ComputeTerm>();
  return term;
}

TermPtr serial_term() {
  static const TermPtr term = std::make_shared<SerialTerm>();
  return term;
}

TermPtr make_comm_term(double volume_gb) {
  return std::make_shared<CommTerm>(volume_gb, std::nullopt);
}

TermPtr make_comm_term(double volume_gb, double beta_s_per_gb) {
  return std::make_shared<CommTerm>(volume_gb, beta_s_per_gb);
}

TermPtr make_memory_term(double memory_gb, double capacity_gb_per_node) {
  return std::make_shared<MemoryTerm>(memory_gb, capacity_gb_per_node,
                                      std::nullopt);
}

TermPtr make_memory_term(double memory_gb, double capacity_gb_per_node,
                         double gamma_s_per_gb) {
  return std::make_shared<MemoryTerm>(memory_gb, capacity_gb_per_node,
                                      gamma_s_per_gb);
}

// ---------------------------------------------------------------------------
// TermRegistry

TermRegistry::TermRegistry() {
  add("powerlaw", [](std::span<const double> args) {
    HSLB_EXPECTS(args.empty());
    return power_law_term();
  });
  add("compute", [](std::span<const double> args) {
    HSLB_EXPECTS(args.empty());
    return compute_term();
  });
  add("serial", [](std::span<const double> args) {
    HSLB_EXPECTS(args.empty());
    return serial_term();
  });
  add("comm", [](std::span<const double> args) {
    HSLB_EXPECTS(args.size() == 1 || args.size() == 2);
    return args.size() == 1 ? make_comm_term(args[0])
                            : make_comm_term(args[0], args[1]);
  });
  add("memory", [](std::span<const double> args) {
    HSLB_EXPECTS(args.size() == 2 || args.size() == 3);
    return args.size() == 2 ? make_memory_term(args[0], args[1])
                            : make_memory_term(args[0], args[1], args[2]);
  });
}

TermRegistry& TermRegistry::instance() {
  static TermRegistry registry;
  return registry;
}

void TermRegistry::add(const std::string& name, Factory factory) {
  HSLB_EXPECTS(!name.empty());
  factories_[name] = std::move(factory);
}

bool TermRegistry::contains(const std::string& name) const {
  return factories_.count(name) > 0;
}

TermPtr TermRegistry::make(const std::string& name,
                           std::span<const double> args) const {
  const auto it = factories_.find(name);
  HSLB_EXPECTS(it != factories_.end());
  return it->second(args);
}

std::vector<std::string> TermRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

// ---------------------------------------------------------------------------
// CostModel

CostModel::CostModel(const Model& power_law) {
  add(power_law_term(),
      {power_law.a, power_law.b, power_law.c, power_law.d});
}

void CostModel::add(TermPtr term, std::vector<double> params) {
  HSLB_EXPECTS(term != nullptr);
  HSLB_EXPECTS(params.size() == term->num_params());
  entries_.push_back({std::move(term), std::move(params)});
}

const CostTerm& CostModel::term(std::size_t i) const {
  HSLB_EXPECTS(i < entries_.size());
  return *entries_[i].term;
}

std::span<const double> CostModel::params(std::size_t i) const {
  HSLB_EXPECTS(i < entries_.size());
  return entries_[i].params;
}

double CostModel::term_seconds(std::size_t i, double n) const {
  HSLB_EXPECTS(i < entries_.size());
  return entries_[i].term->eval(entries_[i].params, n);
}

double CostModel::eval(double n) const {
  double v = 0.0;
  for (const auto& e : entries_) v += e.term->eval(e.params, n);
  return v;
}

double CostModel::deriv_n(double n) const {
  double v = 0.0;
  for (const auto& e : entries_) v += e.term->deriv_n(e.params, n);
  return v;
}

bool CostModel::is_convex() const {
  for (const auto& e : entries_)
    if (!e.term->is_convex(e.params)) return false;
  return true;
}

double CostModel::eval_nonlinear(double n) const {
  double v = 0.0;
  double slope = 0.0, intercept = 0.0;
  for (const auto& e : entries_)
    if (!e.term->linear_in_n(e.params, slope, intercept))
      v += e.term->eval(e.params, n);
  return v;
}

double CostModel::deriv_nonlinear(double n) const {
  double v = 0.0;
  double slope = 0.0, intercept = 0.0;
  for (const auto& e : entries_)
    if (!e.term->linear_in_n(e.params, slope, intercept))
      v += e.term->deriv_n(e.params, n);
  return v;
}

bool CostModel::has_nonlinear() const {
  double slope = 0.0, intercept = 0.0;
  for (const auto& e : entries_)
    if (!e.term->linear_in_n(e.params, slope, intercept)) return true;
  return false;
}

std::string CostModel::expr_nonlinear(const std::string& var) const {
  std::string out;
  double slope = 0.0, intercept = 0.0;
  for (const auto& e : entries_) {
    if (e.term->linear_in_n(e.params, slope, intercept)) continue;
    if (!out.empty()) out += " + ";
    out += e.term->expr(e.params, var);
  }
  return out;
}

bool CostModel::linear_part(double& slope, double& intercept) const {
  slope = 0.0;
  intercept = 0.0;
  for (const auto& e : entries_) {
    double s = 0.0, i0 = 0.0;
    if (e.term->linear_in_n(e.params, s, i0)) {
      slope += s;
      intercept += i0;
    }
  }
  return slope != 0.0 || intercept != 0.0;
}

long long CostModel::min_feasible_nodes() const {
  long long floor_nodes = 1;
  for (const auto& e : entries_) {
    double cap = 0.0, demand = 0.0;
    if (!e.term->knapsack_row(cap, demand)) continue;
    HSLB_ASSERT(cap > 0.0);
    floor_nodes = std::max(
        floor_nodes, static_cast<long long>(std::ceil(demand / cap)));
  }
  return floor_nodes;
}

std::pair<long long, double> CostModel::argmin_int(long long lo,
                                                   long long hi) const {
  HSLB_EXPECTS(0 < lo && lo <= hi);
  HSLB_EXPECTS(!entries_.empty());
  if (entries_.size() == 1 && entries_[0].term.get() == power_law_term().get())
    return PowerLawTerm::as_model(entries_[0].params).argmin_int(lo, hi);

  const auto at = [this](long long n) {
    return eval(static_cast<double>(n));
  };
  if (is_convex()) {
    // Bisect on the first difference: for convex T the predicate
    // T(n+1) >= T(n) is monotone, and its first true index is the argmin.
    long long a = lo, b = hi;
    while (a < b) {
      const long long mid = a + (b - a) / 2;
      if (at(mid + 1) >= at(mid)) {
        b = mid;
      } else {
        a = mid + 1;
      }
    }
    return {a, at(a)};
  }
  long long best_n = lo;
  double best_t = at(lo);
  for (long long n = lo + 1; n <= hi; ++n) {
    const double t = at(n);
    if (t < best_t) {
      best_t = t;
      best_n = n;
    }
  }
  return {best_n, best_t};
}

std::optional<Model> CostModel::power_law() const {
  for (const auto& e : entries_) {
    if (e.term.get() == power_law_term().get())
      return PowerLawTerm::as_model(e.params);
  }
  return std::nullopt;
}

std::string CostModel::str() const {
  std::string out = "T(n) = ";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (i > 0) out += " + ";
    out += entries_[i].term->expr(entries_[i].params, "n");
  }
  return out;
}

std::string CostModel::expr(const std::string& var) const {
  std::string out;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (i > 0) out += " + ";
    out += entries_[i].term->expr(entries_[i].params, var);
  }
  return out;
}

}  // namespace hslb::perf
