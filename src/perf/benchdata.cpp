#include "perf/benchdata.hpp"

#include "common/contracts.hpp"
#include "common/csv.hpp"
#include "common/strings.hpp"

namespace hslb::perf {

const TaskBench& BenchTable::find(const std::string& task) const {
  for (const auto& t : tasks)
    if (t.task == task) return t;
  HSLB_EXPECTS(!"benchmark task not found");
  return tasks.front();  // unreachable
}

bool BenchTable::contains(const std::string& task) const {
  for (const auto& t : tasks)
    if (t.task == task) return true;
  return false;
}

std::string BenchTable::to_csv() const {
  csv::Document doc;
  doc.header = {"task", "nodes", "seconds"};
  for (const auto& t : tasks) {
    for (const auto& s : t.samples) {
      doc.rows.push_back({t.task, strings::format("%.17g", s.nodes),
                          strings::format("%.17g", s.seconds)});
    }
  }
  return csv::write(doc);
}

BenchTable BenchTable::from_csv(const std::string& text) {
  const auto doc = csv::parse(text);
  const auto ct = doc.column("task");
  const auto cn = doc.column("nodes");
  const auto cs = doc.column("seconds");
  BenchTable table;
  for (const auto& row : doc.rows) {
    const std::string& name = row[ct];
    TaskBench* entry = nullptr;
    for (auto& t : table.tasks)
      if (t.task == name) entry = &t;
    if (!entry) {
      table.tasks.push_back(TaskBench{name, {}});
      entry = &table.tasks.back();
    }
    entry->samples.push_back(
        Sample{strings::to_double(row[cn]), strings::to_double(row[cs])});
  }
  return table;
}

void BenchTable::save(const std::string& path) const {
  csv::write_file(path, csv::parse(to_csv()));
}

BenchTable BenchTable::load(const std::string& path) {
  return from_csv(csv::write(csv::read_file(path)));
}

}  // namespace hslb::perf
