// Pluggable cost-term architecture: a fitted/assembled performance model is
// a sum of named CostTerm contributions instead of the hard-coded power law.
//
//   T(n) = sum_k  term_k(params_k, n)
//
// Registered terms:
//
//   * powerlaw — the paper's full a/n + b*n^c + d (4 fitted params); with
//     only this term every code path is bit-identical to the pre-refactor
//     power-law pipeline (the term delegates to perf::Model verbatim);
//   * compute  — a/n^c scalable work alone (2 fitted params);
//   * serial   — d serial floor alone (1 fitted param);
//   * comm     — beta * volume * n: per-neighbour halo exchange, where
//     `volume` GB must be sent to each of the task's n spanning ranks by
//     its off-node neighbours (sender-side link serialization; see
//     sim::Machine::comm_seconds). beta = seconds/GB is either fitted from
//     in-situ samples or pinned to 1/bandwidth from the machine spec;
//   * memory   — gamma * max(0, mem - capacity*n): paging penalty on the
//     working-set GB spilled past node memory across the task's span
//     (equals sim::Machine's paging charge exactly); also implies the
//     knapsack row capacity * n >= mem the MINLP emits.
//
// Terms with zero parameters are "pinned" (analytic, from the machine or
// workload spec); terms with parameters take part in the nlsq fit
// (perf::fit_cost). All bundled terms are convex in n for non-negative
// parameters, preserving the branch-and-bound optimality argument (§III-E).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "perf/model.hpp"

namespace hslb::perf {

/// Data-driven scales the fitter derives from the sample set, handed to
/// each term so it can size its parameter bounds and start box (the same
/// quantities the pre-refactor power-law fit computed inline).
struct FitScales {
  // Knobs copied from FitOptions.
  double min_c = 1.0;
  double max_c = 3.0;
  double a_scale = 50.0;
  double d_scale = 2.0;
  // Sample statistics.
  double max_y = 0.0;   ///< largest observed seconds
  double min_y = 0.0;   ///< smallest observed seconds
  double max_an = 0.0;  ///< max over samples of seconds * nodes
};

/// One named, possibly-parameterized additive contribution to a cost model.
/// Stateless with respect to parameter *values* — those live in the owning
/// CostModel — so a term instance can be shared between models.
class CostTerm {
 public:
  virtual ~CostTerm() = default;

  virtual const std::string& name() const = 0;

  /// Number of fitted parameters (0 = pinned/analytic term).
  virtual std::size_t num_params() const = 0;

  /// Seconds contributed at n nodes (n > 0). `p` holds this term's
  /// parameter slice (num_params() entries; may be empty).
  virtual double eval(std::span<const double> p, double n) const = 0;

  /// d(eval)/dn — outer-approximation cuts and argmin search.
  virtual double deriv_n(std::span<const double> p, double n) const = 0;

  /// Gradient with respect to the term's own parameters at fixed n; only
  /// called when num_params() > 0. `out` has num_params() entries.
  virtual void grad_params(std::span<const double> p, double n,
                           std::span<double> out) const;

  /// Fit box constraints for the term's parameters (num_params() entries).
  virtual void fit_bounds(const FitScales& scales, std::span<double> lo,
                          std::span<double> hi) const;

  /// Multistart sampling box, strictly inside the positive orthant.
  virtual void start_box(const FitScales& scales, std::span<double> lo,
                         std::span<double> hi) const;

  /// True when the contribution is convex in n on n > 0.
  virtual bool is_convex(std::span<const double> p) const = 0;

  /// Algebraic rendering in terms of a named variable (AMPL export).
  virtual std::string expr(std::span<const double> p,
                           const std::string& var) const = 0;

  /// Affine decomposition: when eval(p, n) == slope*n + intercept for all
  /// n >= 1, fills both and returns true (the MINLP assembles such terms
  /// as exact linear rows instead of nonlinear epigraph contributions).
  virtual bool linear_in_n(std::span<const double> p, double& slope,
                           double& intercept) const;

  /// Memory-capacity knapsack row capacity * n >= demand implied by the
  /// term; returns true and fills both when one exists.
  virtual bool knapsack_row(double& capacity_gb_per_node,
                            double& demand_gb) const;
};

using TermPtr = std::shared_ptr<const CostTerm>;

/// The shared 4-parameter power-law term (a, b, c, d). All methods
/// delegate to perf::Model, so a single-powerlaw CostModel reproduces the
/// pre-refactor float operations exactly.
TermPtr power_law_term();

/// a/n^c scalable-work term (params a, c).
TermPtr compute_term();

/// Serial-floor term (param d).
TermPtr serial_term();

/// Communication term beta * volume_gb * n. Without `beta` the slope
/// seconds-per-GB is fitted (1 param); with it the term is pinned.
TermPtr make_comm_term(double volume_gb);
TermPtr make_comm_term(double volume_gb, double beta_s_per_gb);

/// Memory-pressure term gamma * max(0, memory_gb - capacity_gb * n) with
/// the implied knapsack row. Without `gamma` the paging slope is fitted
/// (1 param); with it the term is pinned (gamma 0 = hard constraint only).
TermPtr make_memory_term(double memory_gb, double capacity_gb_per_node);
TermPtr make_memory_term(double memory_gb, double capacity_gb_per_node,
                         double gamma_s_per_gb);

/// Named term factories, so specs can be assembled from text (CLI, tests).
/// Factory args are the term's construction constants, e.g.
/// make("comm", {volume_gb, beta}). Built-in names: powerlaw, compute,
/// serial, comm, memory.
class TermRegistry {
 public:
  using Factory = std::function<TermPtr(std::span<const double> args)>;

  static TermRegistry& instance();

  void add(const std::string& name, Factory factory);
  bool contains(const std::string& name) const;
  TermPtr make(const std::string& name,
               std::span<const double> args = {}) const;
  std::vector<std::string> names() const;

 private:
  TermRegistry();
  std::map<std::string, Factory> factories_;
};

/// A performance model assembled from terms with bound parameter values.
/// Implicitly constructible from the classic power law so every existing
/// call site (BudgetTask, benches, tests) keeps compiling — and behaving —
/// unchanged.
class CostModel {
 public:
  CostModel() = default;
  CostModel(const Model& power_law);  // NOLINT(google-explicit-constructor)

  void add(TermPtr term, std::vector<double> params = {});

  std::size_t num_terms() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const CostTerm& term(std::size_t i) const;
  std::span<const double> params(std::size_t i) const;

  /// Seconds contributed by term i alone at n nodes.
  double term_seconds(std::size_t i, double n) const;

  /// Total predicted seconds at n nodes (n > 0).
  double eval(double n) const;
  double deriv_n(double n) const;
  bool is_convex() const;

  /// Sum restricted to terms without an affine decomposition — the part a
  /// MINLP epigraph must carry as a nonlinear constraint.
  double eval_nonlinear(double n) const;
  double deriv_nonlinear(double n) const;
  bool has_nonlinear() const;
  std::string expr_nonlinear(const std::string& var) const;

  /// Accumulated affine part over linear_in_n terms; returns true when it
  /// is nonzero (slope != 0 or intercept != 0).
  bool linear_part(double& slope, double& intercept) const;

  /// Smallest node count satisfying every knapsack row (1 when none).
  long long min_feasible_nodes() const;

  /// Best integer node count in [lo, hi] and its time. A single-powerlaw
  /// model delegates to Model::argmin_int (bit-identical to the seed);
  /// otherwise a convex first-difference bisection (or a linear scan for
  /// non-convex models).
  std::pair<long long, double> argmin_int(long long lo, long long hi) const;

  /// Parameters of the first powerlaw term, when one is present (used to
  /// surface classic (a,b,c,d) fits in reports and model I/O).
  std::optional<Model> power_law() const;

  std::string str() const;
  std::string expr(const std::string& var) const;

 private:
  struct Entry {
    TermPtr term;
    std::vector<double> params;
  };
  std::vector<Entry> entries_;
};

}  // namespace hslb::perf

namespace hslb {
// The architecture is substrate-agnostic; the solver layer names the
// abstraction hslb::CostTerm. (The assembled model stays perf::CostModel to
// avoid colliding with hslb::fmo::CostModel, the FMO ground-truth
// generator, in translation units that import both namespaces.)
using CostTerm = perf::CostTerm;
}  // namespace hslb
