#include "perf/modelio.hpp"

#include "common/contracts.hpp"
#include "common/csv.hpp"
#include "common/strings.hpp"

namespace hslb::perf {

std::string models_to_csv(const std::vector<NamedModel>& models) {
  csv::Document doc;
  doc.header = {"task", "a", "b", "c", "d", "min_nodes", "max_nodes"};
  for (const auto& m : models) {
    doc.rows.push_back({m.task, strings::format("%.17g", m.model.a),
                        strings::format("%.17g", m.model.b),
                        strings::format("%.17g", m.model.c),
                        strings::format("%.17g", m.model.d),
                        std::to_string(m.min_nodes),
                        std::to_string(m.max_nodes)});
  }
  return csv::write(doc);
}

std::vector<NamedModel> models_from_csv(const std::string& text) {
  const auto doc = csv::parse(text);
  const auto ct = doc.column("task");
  const auto ca = doc.column("a");
  const auto cb = doc.column("b");
  const auto cc = doc.column("c");
  const auto cd = doc.column("d");
  // Node-range columns are optional for hand-written files.
  const bool has_range =
      [&] {
        for (const auto& h : doc.header)
          if (h == "min_nodes") return true;
        return false;
      }();
  std::vector<NamedModel> out;
  for (const auto& row : doc.rows) {
    NamedModel m;
    m.task = row[ct];
    m.model.a = strings::to_double(row[ca]);
    m.model.b = strings::to_double(row[cb]);
    m.model.c = strings::to_double(row[cc]);
    m.model.d = strings::to_double(row[cd]);
    if (has_range) {
      m.min_nodes = strings::to_int(row[doc.column("min_nodes")]);
      m.max_nodes = strings::to_int(row[doc.column("max_nodes")]);
    }
    HSLB_EXPECTS(m.model.a >= 0 && m.model.b >= 0 && m.model.d >= 0);
    out.push_back(std::move(m));
  }
  return out;
}

void save_models(const std::string& path, const std::vector<NamedModel>& models) {
  csv::write_file(path, csv::parse(models_to_csv(models)));
}

std::vector<NamedModel> load_models(const std::string& path) {
  return models_from_csv(csv::write(csv::read_file(path)));
}

}  // namespace hslb::perf
