#include "perf/model.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "common/strings.hpp"

namespace hslb::perf {

double Model::eval(double n) const {
  HSLB_EXPECTS(n > 0.0);
  return a / n + b * std::pow(n, c) + d;
}

double Model::sca(double n) const {
  HSLB_EXPECTS(n > 0.0);
  return a / n;
}

double Model::nln(double n) const {
  HSLB_EXPECTS(n > 0.0);
  return b * std::pow(n, c);
}

double Model::deriv_n(double n) const {
  HSLB_EXPECTS(n > 0.0);
  return -a / (n * n) + b * c * std::pow(n, c - 1.0);
}

std::array<double, 4> Model::grad_params(double n) const {
  HSLB_EXPECTS(n > 0.0);
  const double pnc = std::pow(n, c);
  return {1.0 / n, pnc, b * pnc * std::log(n), 1.0};
}

bool Model::is_convex() const {
  if (a < 0.0 || b < 0.0 || d < 0.0) return false;
  return b == 0.0 || c >= 1.0;
}

bool Model::is_decreasing_on(double lo, double hi) const {
  HSLB_EXPECTS(0.0 < lo && lo <= hi);
  if (b == 0.0) return true;  // a/n + d
  // For convex T it suffices that T'(hi) <= 0; in general check both ends
  // and the stationary point location.
  return deriv_n(hi) <= 0.0 && deriv_n(lo) <= 0.0;
}

double Model::argmin(double lo, double hi) const {
  HSLB_EXPECTS(0.0 < lo && lo <= hi);
  if (b == 0.0 || a == 0.0) {
    // Monotone: decreasing (a/n+d) or increasing (b n^c + d).
    return b == 0.0 ? hi : lo;
  }
  // Stationary point of a/n + b n^c: a/n^2 = b c n^(c-1)
  //   n* = (a / (b c))^(1/(c+1))
  const double n_star = std::pow(a / (b * c), 1.0 / (c + 1.0));
  if (n_star <= lo) return lo;
  if (n_star >= hi) return hi;
  return n_star;
}

std::pair<long long, double> Model::argmin_int(long long lo, long long hi) const {
  HSLB_EXPECTS(0 < lo && lo <= hi);
  const double n_star = argmin(static_cast<double>(lo), static_cast<double>(hi));
  long long best_n = lo;
  double best_t = eval(static_cast<double>(lo));
  for (long long cand :
       {static_cast<long long>(std::floor(n_star)),
        static_cast<long long>(std::ceil(n_star)), lo, hi}) {
    if (cand < lo || cand > hi) continue;
    const double t = eval(static_cast<double>(cand));
    if (t < best_t) {
      best_t = t;
      best_n = cand;
    }
  }
  return {best_n, best_t};
}

std::string Model::str() const {
  return strings::format("T(n) = %.6g/n + %.6g*n^%.4f + %.6g", a, b, c, d);
}

std::string Model::expr(const std::string& var) const {
  std::string out = strings::format("%.12g/%s", a, var.c_str());
  if (b != 0.0)
    out += strings::format(" + %.12g*%s^%.12g", b, var.c_str(), c);
  if (d != 0.0) out += strings::format(" + %.12g", d);
  return out;
}

}  // namespace hslb::perf
