// Benchmark observations: the artifact produced by the Gather step and
// consumed by the Fit step (Table II, lines 8-9: n_ji node counts, y_ji
// observed times).
#pragma once

#include <string>
#include <vector>

namespace hslb::perf {

/// One timed run: `nodes` allocated, `seconds` of component wall time.
struct Sample {
  double nodes = 0.0;
  double seconds = 0.0;
};

using SampleSet = std::vector<Sample>;

/// Benchmark data for one named task/component.
struct TaskBench {
  std::string task;
  SampleSet samples;
};

/// A full gather result: one entry per component/fragment.
struct BenchTable {
  std::vector<TaskBench> tasks;

  /// Lookup by name; throws ContractViolation if absent.
  const TaskBench& find(const std::string& task) const;
  bool contains(const std::string& task) const;

  /// CSV round-trip with columns task,nodes,seconds (the format the Gather
  /// step writes and the Fit step reads; stands in for the authors' timing
  /// files fed to AMPL).
  std::string to_csv() const;
  static BenchTable from_csv(const std::string& text);

  void save(const std::string& path) const;
  static BenchTable load(const std::string& path);
};

}  // namespace hslb::perf
