// The HSLB performance function (Table II, line 1):
//
//   T(n) = T_sca(n) + T_nln(n) + T_ser
//        = a / n    + b * n^c  + d
//
//  * a/n   — perfectly scalable part (Amdahl's parallel fraction),
//  * b*n^c — partially parallelized / communication / synchronization time
//            (increasing on Intrepid, b and c "almost equal to zero"),
//  * d     — serial floor, dominating as n grows.
//
// With a, b, d >= 0 and c >= 1 the function is convex in n, which is the
// property §III-E exploits: the continuous relaxation of the allocation
// MINLP is convex, so branch-and-bound proves global optimality.
#pragma once

#include <array>
#include <string>

namespace hslb::perf {

struct Model {
  double a = 0.0;  ///< scalable seconds (T_sca = a/n)
  double b = 0.0;  ///< nonlinear coefficient (T_nln = b*n^c)
  double c = 1.0;  ///< nonlinear exponent
  double d = 0.0;  ///< serial seconds (T_ser)

  /// Wall-clock prediction at n nodes (n > 0).
  double eval(double n) const;

  /// The three contributions separately (for Figure-2-style output).
  double sca(double n) const;
  double nln(double n) const;
  double ser() const { return d; }

  /// dT/dn — used for outer-approximation cuts.
  double deriv_n(double n) const;

  /// Gradient with respect to (a, b, c, d) at fixed n — used by the fitter.
  std::array<double, 4> grad_params(double n) const;

  /// True when T is convex on n > 0 (a,b,d >= 0 and b*n^c convex: c >= 1
  /// or b == 0).
  bool is_convex() const;

  /// True when T is non-increasing over [lo, hi] (b == 0, or the minimum of
  /// T lies at or beyond hi).
  bool is_decreasing_on(double lo, double hi) const;

  /// Node count minimizing T on [lo, hi] (continuous; golden-section on the
  /// convex model, exact endpoint handling otherwise).
  double argmin(double lo, double hi) const;

  /// Best *integer* node count in [lo, hi] and its time.
  std::pair<long long, double> argmin_int(long long lo, long long hi) const;

  std::string str() const;

  /// Algebraic expression in terms of a named variable, e.g.
  /// "27459.7/n_atm + 0.000193*n_atm^1.2285 + 43.73" (for AMPL export).
  std::string expr(const std::string& var) const;
};

}  // namespace hslb::perf
