#include "perf/fit.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/contracts.hpp"
#include "common/parallel.hpp"
#include "common/stats.hpp"
#include "nlsq/multistart.hpp"

namespace hslb::perf {

FitResult fit(const SampleSet& samples, const FitOptions& options) {
  HSLB_EXPECTS(samples.size() >= 2);
  std::set<double> distinct;
  double max_y = 0.0, min_y = samples.front().seconds;
  double max_an = 0.0;  // bound for the scalable coefficient a
  for (const auto& s : samples) {
    HSLB_EXPECTS(s.nodes >= 1.0);
    HSLB_EXPECTS(s.seconds > 0.0);
    distinct.insert(s.nodes);
    max_y = std::max(max_y, s.seconds);
    min_y = std::min(min_y, s.seconds);
    max_an = std::max(max_an, s.seconds * s.nodes);
  }
  HSLB_EXPECTS(distinct.size() >= 2);

  nlsq::Problem problem;
  problem.num_params = 4;
  problem.num_residuals = samples.size();
  problem.residuals = [&samples](std::span<const double> p) {
    const Model m{p[0], p[1], p[2], p[3]};
    linalg::Vector r(samples.size());
    for (std::size_t i = 0; i < samples.size(); ++i)
      r[i] = samples[i].seconds - m.eval(samples[i].nodes);
    return r;
  };
  problem.jacobian = [&samples](std::span<const double> p) {
    const Model m{p[0], p[1], p[2], p[3]};
    linalg::Matrix jac(samples.size(), 4);
    for (std::size_t i = 0; i < samples.size(); ++i) {
      const auto g = m.grad_params(samples[i].nodes);
      for (std::size_t j = 0; j < 4; ++j) jac(i, j) = -g[j];
    }
    return jac;
  };

  // Positivity constraints (Table II, line 11) and the convexity-preserving
  // exponent window.
  const double a_hi = options.a_scale * max_an;
  const double d_hi = options.d_scale * min_y;
  const double b_hi = std::max(max_y, 1.0);
  problem.lower = {0.0, 0.0, options.min_c, 0.0};
  problem.upper = {a_hi, b_hi, options.max_c, d_hi};

  // Start box strictly inside the positive orthant (log-uniform sampling).
  const linalg::Vector start_lo = {1e-6 * std::max(max_an, 1.0), 1e-12,
                                   options.min_c, 1e-9 * std::max(min_y, 1e-3)};
  const linalg::Vector start_hi = {a_hi, 1e-2 * b_hi, options.max_c,
                                   std::max(d_hi, 2e-9)};

  nlsq::MultistartOptions ms;
  ms.num_starts = options.num_starts;
  ms.seed = options.seed;
  const auto res = nlsq::minimize_multistart(problem, start_lo, start_hi, ms);

  FitResult out;
  out.model = Model{res.best.params[0], res.best.params[1], res.best.params[2],
                    res.best.params[3]};
  out.sse = res.best.cost;
  out.starts_tried = res.starts_tried;
  out.starts_converged = res.starts_converged;
  out.converged = res.best.converged;

  std::vector<double> observed, predicted;
  for (const auto& s : samples) {
    observed.push_back(s.seconds);
    predicted.push_back(out.model.eval(s.nodes));
  }
  out.r2 = stats::r_squared(observed, predicted);
  out.rmse = stats::rmse(observed, predicted);
  return out;
}

std::vector<std::pair<std::string, FitResult>> fit_all(
    const BenchTable& table, const FitOptions& options, ThreadPool* pool) {
  std::vector<std::pair<std::string, FitResult>> out(table.tasks.size());
  const auto fit_one = [&](std::size_t i) {
    const auto& t = table.tasks[i];
    out[i] = {t.task, fit(t.samples, options)};
  };
  if (pool != nullptr) {
    pool->parallel_for(out.size(), fit_one);
  } else if (options.threads == 1) {
    for (std::size_t i = 0; i < out.size(); ++i) fit_one(i);
  } else {
    parallel_for(options.threads, out.size(), fit_one);
  }
  return out;
}

}  // namespace hslb::perf
