#include "perf/fit.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/contracts.hpp"
#include "common/parallel.hpp"
#include "common/stats.hpp"
#include "nlsq/multistart.hpp"

namespace hslb::perf {

namespace {

CostModel bind_params(const CostModelSpec& spec, std::span<const double> p) {
  CostModel cm;
  std::size_t off = 0;
  for (const auto& term : spec) {
    const std::size_t k = term->num_params();
    cm.add(term, std::vector<double>(p.begin() + off, p.begin() + off + k));
    off += k;
  }
  return cm;
}

}  // namespace

FitResult fit_cost(const SampleSet& samples, const CostModelSpec& spec,
                   const FitOptions& options) {
  HSLB_EXPECTS(!spec.empty());
  HSLB_EXPECTS(samples.size() >= 2);
  std::set<double> distinct;
  double max_y = 0.0, min_y = samples.front().seconds;
  double max_an = 0.0;  // bound for the scalable coefficient a
  for (const auto& s : samples) {
    HSLB_EXPECTS(s.nodes >= 1.0);
    HSLB_EXPECTS(s.seconds > 0.0);
    distinct.insert(s.nodes);
    max_y = std::max(max_y, s.seconds);
    min_y = std::min(min_y, s.seconds);
    max_an = std::max(max_an, s.seconds * s.nodes);
  }
  HSLB_EXPECTS(distinct.size() >= 2);

  const FitScales scales{options.min_c, options.max_c, options.a_scale,
                         options.d_scale, max_y,       min_y,
                         max_an};

  std::size_t num_params = 0;
  for (const auto& term : spec) num_params += term->num_params();

  FitResult out;
  if (num_params == 0) {
    // Every term pinned — nothing to optimize, just score the model.
    out.cost = bind_params(spec, {});
    out.converged = true;
    for (const auto& s : samples) {
      const double r = s.seconds - out.cost.eval(s.nodes);
      out.sse += r * r;
    }
  } else {
    nlsq::Problem problem;
    problem.num_params = num_params;
    problem.num_residuals = samples.size();
    problem.residuals = [&samples, &spec](std::span<const double> p) {
      const CostModel m = bind_params(spec, p);
      linalg::Vector r(samples.size());
      for (std::size_t i = 0; i < samples.size(); ++i)
        r[i] = samples[i].seconds - m.eval(samples[i].nodes);
      return r;
    };
    problem.jacobian = [&samples, &spec,
                        num_params](std::span<const double> p) {
      linalg::Matrix jac(samples.size(), num_params);
      std::vector<double> g(num_params);
      for (std::size_t i = 0; i < samples.size(); ++i) {
        std::size_t off = 0;
        for (const auto& term : spec) {
          const std::size_t k = term->num_params();
          if (k > 0) {
            term->grad_params(p.subspan(off, k), samples[i].nodes,
                              std::span<double>(g).subspan(off, k));
          }
          off += k;
        }
        for (std::size_t j = 0; j < num_params; ++j) jac(i, j) = -g[j];
      }
      return jac;
    };

    // Positivity constraints (Table II, line 11) and each term's own bound
    // windows, concatenated in spec order.
    problem.lower = linalg::Vector(num_params);
    problem.upper = linalg::Vector(num_params);
    linalg::Vector start_lo(num_params), start_hi(num_params);
    {
      std::size_t off = 0;
      for (const auto& term : spec) {
        const std::size_t k = term->num_params();
        if (k > 0) {
          term->fit_bounds(scales,
                           std::span<double>(problem.lower).subspan(off, k),
                           std::span<double>(problem.upper).subspan(off, k));
          term->start_box(scales, std::span<double>(start_lo).subspan(off, k),
                          std::span<double>(start_hi).subspan(off, k));
        }
        off += k;
      }
    }

    nlsq::MultistartOptions ms;
    ms.num_starts = options.num_starts;
    ms.seed = options.seed;
    const auto res = nlsq::minimize_multistart(problem, start_lo, start_hi, ms);

    out.cost = bind_params(spec, res.best.params);
    out.sse = res.best.cost;
    out.starts_tried = res.starts_tried;
    out.starts_converged = res.starts_converged;
    out.converged = res.best.converged;
  }

  out.model = out.cost.power_law().value_or(Model{0.0, 0.0, 1.0, 0.0});

  std::vector<double> observed, predicted;
  for (const auto& s : samples) {
    observed.push_back(s.seconds);
    predicted.push_back(out.cost.eval(s.nodes));
  }
  out.r2 = stats::r_squared(observed, predicted);
  out.rmse = stats::rmse(observed, predicted);
  return out;
}

FitResult fit(const SampleSet& samples, const FitOptions& options) {
  return fit_cost(samples, {power_law_term()}, options);
}

std::vector<std::pair<std::string, FitResult>> fit_all(
    const BenchTable& table, const FitOptions& options, ThreadPool* pool,
    const CostModelSpec& spec) {
  static const CostModelSpec classic{power_law_term()};
  const CostModelSpec& use = spec.empty() ? classic : spec;
  std::vector<std::pair<std::string, FitResult>> out(table.tasks.size());
  const auto fit_one = [&](std::size_t i) {
    const auto& t = table.tasks[i];
    out[i] = {t.task, fit_cost(t.samples, use, options)};
  };
  if (pool != nullptr) {
    pool->parallel_for(out.size(), fit_one);
  } else if (options.threads == 1) {
    for (std::size_t i = 0; i < out.size(); ++i) fit_one(i);
  } else {
    parallel_for(options.threads, out.size(), fit_one);
  }
  return out;
}

}  // namespace hslb::perf
