#include "perf/fit.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/contracts.hpp"
#include "common/parallel.hpp"
#include "common/stats.hpp"
#include "nlsq/multistart.hpp"

namespace hslb::perf {

namespace {

CostModel bind_params(const CostModelSpec& spec, std::span<const double> p) {
  CostModel cm;
  std::size_t off = 0;
  for (const auto& term : spec) {
    const std::size_t k = term->num_params();
    cm.add(term, std::vector<double>(p.begin() + off, p.begin() + off + k));
    off += k;
  }
  return cm;
}

/// Validates the sample set and derives the data-driven fit scales.
FitScales make_scales(const SampleSet& samples, const FitOptions& options) {
  HSLB_EXPECTS(samples.size() >= 2);
  std::set<double> distinct;
  double max_y = 0.0, min_y = samples.front().seconds;
  double max_an = 0.0;  // bound for the scalable coefficient a
  for (const auto& s : samples) {
    HSLB_EXPECTS(s.nodes >= 1.0);
    HSLB_EXPECTS(s.seconds > 0.0);
    distinct.insert(s.nodes);
    max_y = std::max(max_y, s.seconds);
    min_y = std::min(min_y, s.seconds);
    max_an = std::max(max_an, s.seconds * s.nodes);
  }
  HSLB_EXPECTS(distinct.size() >= 2);
  return FitScales{options.min_c, options.max_c, options.a_scale,
                   options.d_scale, max_y,       min_y,
                   max_an};
}

/// The nlsq least-squares problem plus the multistart sampling box, built
/// once and shared between the cold multistart fit and the warm refit. The
/// returned lambdas reference `samples`/`spec`, which must outlive the
/// problem.
struct FitProblem {
  nlsq::Problem problem;
  linalg::Vector start_lo, start_hi;
};

FitProblem build_problem(const SampleSet& samples, const CostModelSpec& spec,
                         const FitScales& scales, std::size_t num_params) {
  FitProblem fp;
  nlsq::Problem& problem = fp.problem;
  problem.num_params = num_params;
  problem.num_residuals = samples.size();
  problem.residuals = [&samples, &spec](std::span<const double> p) {
    const CostModel m = bind_params(spec, p);
    linalg::Vector r(samples.size());
    for (std::size_t i = 0; i < samples.size(); ++i)
      r[i] = samples[i].seconds - m.eval(samples[i].nodes);
    return r;
  };
  problem.jacobian = [&samples, &spec,
                      num_params](std::span<const double> p) {
    linalg::Matrix jac(samples.size(), num_params);
    std::vector<double> g(num_params);
    for (std::size_t i = 0; i < samples.size(); ++i) {
      std::size_t off = 0;
      for (const auto& term : spec) {
        const std::size_t k = term->num_params();
        if (k > 0) {
          term->grad_params(p.subspan(off, k), samples[i].nodes,
                            std::span<double>(g).subspan(off, k));
        }
        off += k;
      }
      for (std::size_t j = 0; j < num_params; ++j) jac(i, j) = -g[j];
    }
    return jac;
  };

  // Positivity constraints (Table II, line 11) and each term's own bound
  // windows, concatenated in spec order.
  problem.lower = linalg::Vector(num_params);
  problem.upper = linalg::Vector(num_params);
  fp.start_lo = linalg::Vector(num_params);
  fp.start_hi = linalg::Vector(num_params);
  std::size_t off = 0;
  for (const auto& term : spec) {
    const std::size_t k = term->num_params();
    if (k > 0) {
      term->fit_bounds(scales,
                       std::span<double>(problem.lower).subspan(off, k),
                       std::span<double>(problem.upper).subspan(off, k));
      term->start_box(scales, std::span<double>(fp.start_lo).subspan(off, k),
                      std::span<double>(fp.start_hi).subspan(off, k));
    }
    off += k;
  }
  return fp;
}

/// Fills the derived fields (power-law view, R², RMSE) from `out.cost`.
void score(const SampleSet& samples, FitResult& out) {
  out.model = out.cost.power_law().value_or(Model{0.0, 0.0, 1.0, 0.0});
  std::vector<double> observed, predicted;
  for (const auto& s : samples) {
    observed.push_back(s.seconds);
    predicted.push_back(out.cost.eval(s.nodes));
  }
  out.r2 = stats::r_squared(observed, predicted);
  out.rmse = stats::rmse(observed, predicted);
}

}  // namespace

FitResult fit_cost(const SampleSet& samples, const CostModelSpec& spec,
                   const FitOptions& options) {
  HSLB_EXPECTS(!spec.empty());
  const FitScales scales = make_scales(samples, options);

  std::size_t num_params = 0;
  for (const auto& term : spec) num_params += term->num_params();

  FitResult out;
  if (num_params == 0) {
    // Every term pinned — nothing to optimize, just score the model.
    out.cost = bind_params(spec, {});
    out.converged = true;
    for (const auto& s : samples) {
      const double r = s.seconds - out.cost.eval(s.nodes);
      out.sse += r * r;
    }
  } else {
    const FitProblem fp = build_problem(samples, spec, scales, num_params);

    nlsq::MultistartOptions ms;
    ms.num_starts = options.num_starts;
    ms.seed = options.seed;
    const auto res =
        nlsq::minimize_multistart(fp.problem, fp.start_lo, fp.start_hi, ms);

    out.cost = bind_params(spec, res.best.params);
    out.sse = res.best.cost;
    out.starts_tried = res.starts_tried;
    out.starts_converged = res.starts_converged;
    out.converged = res.best.converged;
  }

  score(samples, out);
  return out;
}

FitResult fit(const SampleSet& samples, const FitOptions& options) {
  return fit_cost(samples, {power_law_term()}, options);
}

std::vector<std::pair<std::string, FitResult>> fit_all(
    const BenchTable& table, const FitOptions& options, ThreadPool* pool,
    const CostModelSpec& spec) {
  static const CostModelSpec classic{power_law_term()};
  const CostModelSpec& use = spec.empty() ? classic : spec;
  std::vector<std::pair<std::string, FitResult>> out(table.tasks.size());
  const auto fit_one = [&](std::size_t i) {
    const auto& t = table.tasks[i];
    out[i] = {t.task, fit_cost(t.samples, use, options)};
  };
  if (pool != nullptr) {
    pool->parallel_for(out.size(), fit_one);
  } else if (options.threads == 1) {
    for (std::size_t i = 0; i < out.size(); ++i) fit_one(i);
  } else {
    parallel_for(options.threads, out.size(), fit_one);
  }
  return out;
}

SampleSet fold_observations(const SampleSet& gathered,
                            const std::vector<Observed>& observations,
                            const std::string& task, std::size_t epoch,
                            std::size_t window, double weight) {
  HSLB_EXPECTS(window >= 1);
  HSLB_EXPECTS(weight >= 1.0);
  const std::size_t oldest = epoch + 1 >= window ? epoch + 1 - window : 0;
  const auto reps = static_cast<std::size_t>(std::llround(weight));
  SampleSet out = gathered;
  for (const auto& o : observations) {
    if (o.task != task || o.epoch < oldest || o.epoch > epoch) continue;
    HSLB_EXPECTS(o.nodes >= 1.0 && o.seconds > 0.0);
    for (std::size_t r = 0; r < reps; ++r)
      out.push_back({o.nodes, o.seconds});
  }
  return out;
}

double prediction_drift(const CostModel& model,
                        const std::vector<Observed>& observations,
                        const std::string& task) {
  double sum = 0.0;
  std::size_t count = 0;
  for (const auto& o : observations) {
    if (o.task != task) continue;
    const double predicted = model.eval(o.nodes);
    if (predicted <= 0.0) continue;
    sum += std::fabs(o.seconds - predicted) / predicted;
    ++count;
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

FitResult refit_cost(const SampleSet& samples, const CostModelSpec& spec,
                     const FitResult& previous, const FitOptions& options) {
  HSLB_EXPECTS(!spec.empty());
  HSLB_EXPECTS(previous.cost.num_terms() == spec.size());

  std::size_t num_params = 0;
  for (const auto& term : spec) num_params += term->num_params();
  if (num_params == 0) return fit_cost(samples, spec, options);

  // Previous parameters concatenated in spec order — the warm start.
  std::vector<double> warm;
  warm.reserve(num_params);
  for (std::size_t i = 0; i < spec.size(); ++i) {
    const auto p = previous.cost.params(i);
    HSLB_EXPECTS(p.size() == spec[i]->num_params());
    warm.insert(warm.end(), p.begin(), p.end());
  }

  const FitScales scales = make_scales(samples, options);
  const FitProblem fp = build_problem(samples, spec, scales, num_params);
  const auto res = nlsq::minimize(fp.problem, warm);
  if (!res.converged) return fit_cost(samples, spec, options);

  FitResult out;
  out.cost = bind_params(spec, res.params);
  out.sse = res.cost;
  out.starts_tried = 1;
  out.starts_converged = 1;
  out.converged = true;
  score(samples, out);
  return out;
}

}  // namespace hslb::perf
