// CSV persistence for fitted performance models, so the Fit and Solve
// steps can run as separate processes (the authors' workflow: timing files
// -> AMPL fitting script -> allocation script).
//
// Format: task,a,b,c,d[,min_nodes,max_nodes]
#pragma once

#include <string>
#include <vector>

#include "perf/model.hpp"

namespace hslb::perf {

struct NamedModel {
  std::string task;
  Model model;
  long long min_nodes = 1;
  long long max_nodes = 0;  ///< 0 = unspecified
};

std::string models_to_csv(const std::vector<NamedModel>& models);
std::vector<NamedModel> models_from_csv(const std::string& text);

void save_models(const std::string& path, const std::vector<NamedModel>& models);
std::vector<NamedModel> load_models(const std::string& path);

}  // namespace hslb::perf
