#include "lp/model.hpp"

#include <algorithm>
#include <map>
#include <span>

#include "common/contracts.hpp"

namespace hslb::lp {

std::size_t Model::add_variable(double lb, double ub, double objective,
                                std::string name) {
  HSLB_EXPECTS(lb <= ub);
  col_lb_.push_back(lb);
  col_ub_.push_back(ub);
  obj_.push_back(objective);
  cols_.emplace_back();
  if (name.empty()) name = "x" + std::to_string(col_lb_.size() - 1);
  col_names_.push_back(std::move(name));
  return col_lb_.size() - 1;
}

std::size_t Model::add_constraint(std::vector<Coeff> coeffs, double lb,
                                  double ub, std::string name) {
  HSLB_EXPECTS(lb <= ub);
  // Merge duplicate columns, validate indices, drop exact-zero sums (an
  // explicit zero would otherwise sit in the sparsity pattern forever).
  std::map<std::size_t, double> merged;
  for (const auto& [col, v] : coeffs) {
    HSLB_EXPECTS(col < num_cols());
    merged[col] += v;
  }
  std::vector<Coeff> clean;
  clean.reserve(merged.size());
  const std::size_t row_index = rows_.size();
  for (const auto& [col, v] : merged) {
    if (v == 0.0) continue;
    clean.push_back({col, v});
    cols_[col].push_back({row_index, v});  // rows append-only: stays ordered
    ++nnz_;
  }
  rows_.push_back(std::move(clean));
  row_lb_.push_back(lb);
  row_ub_.push_back(ub);
  if (name.empty()) name = "r" + std::to_string(rows_.size() - 1);
  row_names_.push_back(std::move(name));
  return rows_.size() - 1;
}

std::size_t Model::add_equality(std::vector<Coeff> coeffs, double rhs,
                                std::string name) {
  return add_constraint(std::move(coeffs), rhs, rhs, std::move(name));
}

void Model::set_col_lower(std::size_t col, double lb) {
  HSLB_EXPECTS(col < num_cols());
  col_lb_[col] = lb;
}

void Model::set_col_upper(std::size_t col, double ub) {
  HSLB_EXPECTS(col < num_cols());
  col_ub_[col] = ub;
}

double Model::col_lower(std::size_t col) const {
  HSLB_EXPECTS(col < num_cols());
  return col_lb_[col];
}

double Model::col_upper(std::size_t col) const {
  HSLB_EXPECTS(col < num_cols());
  return col_ub_[col];
}

void Model::set_objective(std::size_t col, double c) {
  HSLB_EXPECTS(col < num_cols());
  obj_[col] = c;
}

double Model::objective(std::size_t col) const {
  HSLB_EXPECTS(col < num_cols());
  return obj_[col];
}

const std::vector<Coeff>& Model::row(std::size_t r) const {
  HSLB_EXPECTS(r < num_rows());
  return rows_[r];
}

const std::vector<ColEntry>& Model::col(std::size_t c) const {
  HSLB_EXPECTS(c < num_cols());
  return cols_[c];
}

double Model::row_lower(std::size_t r) const {
  HSLB_EXPECTS(r < num_rows());
  return row_lb_[r];
}

double Model::row_upper(std::size_t r) const {
  HSLB_EXPECTS(r < num_rows());
  return row_ub_[r];
}

const std::string& Model::col_name(std::size_t col) const {
  HSLB_EXPECTS(col < num_cols());
  return col_names_[col];
}

const std::string& Model::row_name(std::size_t r) const {
  HSLB_EXPECTS(r < num_rows());
  return row_names_[r];
}

double Model::row_activity(std::size_t r, std::span<const double> x) const {
  HSLB_EXPECTS(r < num_rows());
  HSLB_EXPECTS(x.size() == num_cols());
  double acc = 0.0;
  for (const auto& [col, v] : rows_[r]) acc += v * x[col];
  return acc;
}

bool Model::is_feasible(std::span<const double> x, double tol) const {
  HSLB_EXPECTS(x.size() == num_cols());
  for (std::size_t j = 0; j < num_cols(); ++j) {
    if (x[j] < col_lb_[j] - tol || x[j] > col_ub_[j] + tol) return false;
  }
  for (std::size_t r = 0; r < num_rows(); ++r) {
    const double a = row_activity(r, x);
    const double scale = 1.0 + std::max(std::abs(row_lb_[r] == -kInf ? 0.0 : row_lb_[r]),
                                        std::abs(row_ub_[r] == kInf ? 0.0 : row_ub_[r]));
    if (a < row_lb_[r] - tol * scale || a > row_ub_[r] + tol * scale) return false;
  }
  return true;
}

}  // namespace hslb::lp
