#include "lp/presolve.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace hslb::lp {

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

double rel(double v) { return 1.0 + std::fabs(v); }

/// Activity range of a row over the alive entries, with infinite
/// contributions counted separately (finite_min/max exclude them).
struct ActivityRange {
  double finite_min = 0.0, finite_max = 0.0;
  std::size_t inf_min = 0, inf_max = 0;  ///< unbounded contributions
};

}  // namespace

Presolve Presolve::run(const Model& model, const PresolveOptions& opt) {
  Presolve out;
  out.tol_ = opt.feasibility_tol;
  const double tol = opt.feasibility_tol;
  const std::size_t n = model.num_cols();
  const std::size_t m = model.num_rows();

  std::vector<double> lb(n), ub(n), obj(n);
  for (std::size_t j = 0; j < n; ++j) {
    lb[j] = model.col_lower(j);
    ub[j] = model.col_upper(j);
    obj[j] = model.objective(j);
  }
  std::vector<char> col_alive(n, 1), row_alive(m, 1);
  std::vector<double> fsum(m, 0.0);  ///< fixed-column contribution per row

  auto infeasible = [&] {
    out.status_ = Status::Infeasible;
    return out;
  };

  // Pins column j at `value`, folding it into every row's fixed sum.
  auto fix_col = [&](std::size_t j, double value, BasisStatus side) {
    for (const ColEntry& e : model.col(j)) {
      if (row_alive[e.index]) fsum[e.index] += e.value * value;
    }
    col_alive[j] = 0;
    ++out.cols_removed_;
    Entry en;
    en.kind = Entry::Kind::FixedCol;
    en.col = j;
    en.value = value;
    en.col_status = side;
    out.stack_.push_back(std::move(en));
  };

  // Tightens one side of column j's box; returns false on a crossed box.
  auto tighten = [&](std::size_t j, double v, bool is_lower) {
    if (!std::isfinite(v)) return true;
    if (is_lower) {
      if (v > lb[j] + 1e-9 * rel(v)) {
        lb[j] = v;
        ++out.bounds_tightened_;
      }
    } else {
      if (v < ub[j] - 1e-9 * rel(v)) {
        ub[j] = v;
        ++out.bounds_tightened_;
      }
    }
    return lb[j] <= ub[j] + tol * rel(ub[j]);
  };

  auto row_range = [&](std::size_t r) {
    ActivityRange a;
    for (const auto& [j, c] : model.row(r)) {
      if (!col_alive[j]) continue;
      const double at_lo = c > 0.0 ? lb[j] : ub[j];  // minimizing choice
      const double at_hi = c > 0.0 ? ub[j] : lb[j];
      if (std::isfinite(at_lo)) a.finite_min += c * at_lo; else ++a.inf_min;
      if (std::isfinite(at_hi)) a.finite_max += c * at_hi; else ++a.inf_max;
    }
    return a;
  };

  std::vector<std::size_t> col_use(n, 0);
  bool changed = true;
  for (std::size_t pass = 0; pass < opt.max_passes && changed; ++pass) {
    changed = false;

    // ---- Row sweep: empty / singleton / redundant rows, infeasibility,
    // activity-based bound tightening. ------------------------------------
    for (std::size_t r = 0; r < m; ++r) {
      if (!row_alive[r]) continue;
      const double rlb = model.row_lower(r) == -kInf ? -kInf
                                                     : model.row_lower(r) - fsum[r];
      const double rub = model.row_upper(r) == kInf ? kInf
                                                    : model.row_upper(r) - fsum[r];
      std::size_t alive = 0;
      std::size_t last_col = kNone;
      double last_coeff = 0.0;
      for (const auto& [j, c] : model.row(r)) {
        if (!col_alive[j]) continue;
        ++alive;
        last_col = j;
        last_coeff = c;
      }

      if (alive == 0) {
        if (rlb > tol * rel(rlb) || rub < -tol * rel(rub)) return infeasible();
        row_alive[r] = 0;
        ++out.rows_removed_;
        Entry en;
        en.kind = Entry::Kind::EmptyRow;
        en.row = r;
        out.stack_.push_back(std::move(en));
        changed = true;
        continue;
      }

      if (alive == 1) {
        // a*x in [rlb, rub] becomes a bound pair on x; the row goes away.
        const double a = last_coeff;
        const std::size_t j = last_col;
        double ilo, ihi;
        if (a > 0.0) {
          ilo = rlb == -kInf ? -kInf : rlb / a;
          ihi = rub == kInf ? kInf : rub / a;
        } else {
          ilo = rub == kInf ? -kInf : rub / a;
          ihi = rlb == -kInf ? kInf : rlb / a;
        }
        if (!tighten(j, ilo, true) || !tighten(j, ihi, false))
          return infeasible();
        row_alive[r] = 0;
        ++out.rows_removed_;
        Entry en;
        en.kind = Entry::Kind::SingletonRow;
        en.row = r;
        en.col = j;
        en.value = a;
        en.implied_lb = ilo;
        en.implied_ub = ihi;
        out.stack_.push_back(std::move(en));
        changed = true;
        continue;
      }

      const ActivityRange act = row_range(r);
      const double amin = act.inf_min > 0 ? -kInf : act.finite_min;
      const double amax = act.inf_max > 0 ? kInf : act.finite_max;
      if (amin > rub + tol * rel(rub) || amax < rlb - tol * rel(rlb))
        return infeasible();
      if ((rlb == -kInf || amin >= rlb - 1e-9 * rel(rlb)) &&
          (rub == kInf || amax <= rub + 1e-9 * rel(rub))) {
        row_alive[r] = 0;
        ++out.rows_removed_;
        Entry en;
        en.kind = Entry::Kind::RedundantRow;
        en.row = r;
        out.stack_.push_back(std::move(en));
        changed = true;
        continue;
      }

      // Bound tightening from the row's activity range: with every other
      // column at its minimizing (maximizing) bound, the row bound caps how
      // far column j can move. A small slack keeps roundoff from ever
      // cutting into the true feasible box.
      const std::size_t before = out.bounds_tightened_;
      for (const auto& [j, c] : model.row(r)) {
        if (!col_alive[j]) continue;
        const double cmin = c > 0.0 ? c * lb[j] : c * ub[j];
        const double cmax = c > 0.0 ? c * ub[j] : c * lb[j];
        if (rub != kInf) {
          const bool j_is_inf = !std::isfinite(cmin);
          if (act.inf_min == 0 || (act.inf_min == 1 && j_is_inf)) {
            const double rest = j_is_inf ? act.finite_min
                                         : act.finite_min - cmin;
            double v = (rub - rest) / c;
            v += (c > 0.0 ? 1.0 : -1.0) * 1e-9 * rel(v);
            const bool ok = c > 0.0 ? tighten(j, v, false) : tighten(j, v, true);
            if (!ok) return infeasible();
          }
        }
        if (rlb != -kInf) {
          const bool j_is_inf = !std::isfinite(cmax);
          if (act.inf_max == 0 || (act.inf_max == 1 && j_is_inf)) {
            const double rest = j_is_inf ? act.finite_max
                                         : act.finite_max - cmax;
            double v = (rlb - rest) / c;
            v -= (c > 0.0 ? 1.0 : -1.0) * 1e-9 * rel(v);
            const bool ok = c > 0.0 ? tighten(j, v, true) : tighten(j, v, false);
            if (!ok) return infeasible();
          }
        }
      }
      if (out.bounds_tightened_ != before) changed = true;
    }

    // ---- Column sweep: fixed columns, implied-free singleton columns on
    // equality rows, dominated columns. ------------------------------------
    for (std::size_t j = 0; j < n; ++j) col_use[j] = 0;
    for (std::size_t r = 0; r < m; ++r) {
      if (!row_alive[r]) continue;
      for (const auto& [j, c] : model.row(r)) {
        (void)c;
        if (col_alive[j]) ++col_use[j];
      }
    }

    for (std::size_t j = 0; j < n; ++j) {
      if (!col_alive[j]) continue;
      if (lb[j] > ub[j] + tol * rel(ub[j])) return infeasible();

      if (ub[j] - lb[j] <= 1e-11 * rel(lb[j])) {
        fix_col(j, lb[j], BasisStatus::AtLower);
        changed = true;
        continue;
      }

      // Implied-free column singleton on an equality row: substitute the
      // column out of the problem together with the row; the objective load
      // moves onto the row's other columns.
      if (col_use[j] == 1) {
        std::size_t row = kNone;
        double a = 0.0;
        for (const ColEntry& e : model.col(j)) {
          if (row_alive[e.index]) {
            row = e.index;
            a = e.value;
          }
        }
        // col_use is a sweep-start snapshot; an earlier substitution this
        // pass may have killed the row. Fall through to dominance then.
        if (row != kNone && a != 0.0 &&
            model.row_lower(row) == model.row_upper(row) &&
            std::isfinite(model.row_lower(row))) {
          const double b = model.row_lower(row) - fsum[row];
          double rest_min = 0.0, rest_max = 0.0;
          bool bounded = true;
          std::vector<Coeff> others;
          for (const auto& [k, ck] : model.row(row)) {
            if (!col_alive[k] || k == j) continue;
            others.push_back({k, ck});
            const double at_lo = ck > 0.0 ? lb[k] : ub[k];
            const double at_hi = ck > 0.0 ? ub[k] : lb[k];
            if (!std::isfinite(at_lo) || !std::isfinite(at_hi)) bounded = false;
            if (bounded) {
              rest_min += ck * at_lo;
              rest_max += ck * at_hi;
            }
          }
          if (bounded && !others.empty()) {
            double ilo = (b - rest_max) / a;
            double ihi = (b - rest_min) / a;
            if (a < 0.0) std::swap(ilo, ihi);
            if (ilo >= lb[j] - tol * rel(lb[j]) &&
                ihi <= ub[j] + tol * rel(ub[j])) {
              for (const auto& [k, ck] : others) obj[k] -= obj[j] * ck / a;
              Entry en;
              en.kind = Entry::Kind::ColSingleton;
              en.row = row;
              en.col = j;
              en.value = a;
              en.rhs = b;
              en.others = others;
              out.stack_.push_back(std::move(en));
              col_alive[j] = 0;
              row_alive[row] = 0;
              ++out.cols_removed_;
              ++out.rows_removed_;
              changed = true;
              continue;
            }
          }
        }
      }

      // Dominated column: every alive row only relaxes as the column moves
      // toward one of its bounds and the objective agrees — pin it there.
      // (Columns in no alive row reduce to the pure objective direction.)
      bool down_ok = obj[j] >= 0.0 && std::isfinite(lb[j]);
      bool up_ok = obj[j] <= 0.0 && std::isfinite(ub[j]);
      if (down_ok || up_ok) {
        for (const ColEntry& e : model.col(j)) {
          if (!row_alive[e.index]) continue;
          const double rl = model.row_lower(e.index);
          const double ru = model.row_upper(e.index);
          if (e.value > 0.0) {
            if (rl != -kInf) down_ok = false;
            if (ru != kInf) up_ok = false;
          } else {
            if (ru != kInf) down_ok = false;
            if (rl != -kInf) up_ok = false;
          }
          if (!down_ok && !up_ok) break;
        }
        if (down_ok) {
          fix_col(j, lb[j], BasisStatus::AtLower);
          changed = true;
          continue;
        }
        if (up_ok) {
          fix_col(j, ub[j], BasisStatus::AtUpper);
          changed = true;
          continue;
        }
      }
    }
  }

  // Final sweep: rows that lost their last alive column after the pass
  // budget must still be resolved, so an all-fixed model reduces to the
  // empty LP instead of rows with no columns.
  for (std::size_t r = 0; r < m; ++r) {
    if (!row_alive[r]) continue;
    bool any = false;
    for (const auto& [j, c] : model.row(r)) {
      (void)c;
      if (col_alive[j]) any = true;
    }
    if (any) continue;
    const double rlb = model.row_lower(r) == -kInf ? -kInf
                                                   : model.row_lower(r) - fsum[r];
    const double rub = model.row_upper(r) == kInf ? kInf
                                                  : model.row_upper(r) - fsum[r];
    if (rlb > tol * rel(rlb) || rub < -tol * rel(rub)) return infeasible();
    row_alive[r] = 0;
    ++out.rows_removed_;
    Entry en;
    en.kind = Entry::Kind::EmptyRow;
    en.row = r;
    out.stack_.push_back(std::move(en));
  }

  // ---- Materialize the reduced model and the index maps. -----------------
  out.col_map_.assign(n, kNone);
  out.row_map_.assign(m, kNone);
  for (std::size_t j = 0; j < n; ++j) {
    if (!col_alive[j]) continue;
    out.col_map_[j] = out.kept_cols_.size();
    out.kept_cols_.push_back(j);
    out.reduced_.add_variable(lb[j], ub[j], obj[j], model.col_name(j));
  }
  for (std::size_t r = 0; r < m; ++r) {
    if (!row_alive[r]) continue;
    std::vector<Coeff> coeffs;
    for (const auto& [j, c] : model.row(r)) {
      if (col_alive[j]) coeffs.push_back({out.col_map_[j], c});
    }
    const double rlb = model.row_lower(r) == -kInf ? -kInf
                                                   : model.row_lower(r) - fsum[r];
    const double rub = model.row_upper(r) == kInf ? kInf
                                                  : model.row_upper(r) - fsum[r];
    out.row_map_[r] = out.kept_rows_.size();
    out.kept_rows_.push_back(r);
    out.reduced_.add_constraint(std::move(coeffs), rlb, rub, model.row_name(r));
  }
  return out;
}

Solution Presolve::postsolve(const Model& original, const Solution& red) const {
  HSLB_EXPECTS(status_ == Status::Reduced);
  const std::size_t n = original.num_cols();
  const std::size_t m = original.num_rows();

  Solution full;
  full.status = red.status;
  full.iterations = red.iterations;
  full.warm_started = red.warm_started;
  full.stats = red.stats;
  full.x.assign(n, 0.0);
  full.duals.assign(m, 0.0);

  for (std::size_t jr = 0; jr < kept_cols_.size(); ++jr) {
    if (jr < red.x.size()) full.x[kept_cols_[jr]] = red.x[jr];
  }
  for (std::size_t rr = 0; rr < kept_rows_.size(); ++rr) {
    if (rr < red.duals.size()) full.duals[kept_rows_[rr]] = red.duals[rr];
  }

  const bool have_basis = red.status == lp::Status::Optimal;
  if (have_basis) {
    full.basis.cols.assign(n, BasisStatus::AtLower);
    full.basis.rows.assign(m, BasisStatus::Basic);
    for (std::size_t jr = 0; jr < kept_cols_.size(); ++jr) {
      if (jr < red.basis.cols.size())
        full.basis.cols[kept_cols_[jr]] = red.basis.cols[jr];
    }
    for (std::size_t rr = 0; rr < kept_rows_.size(); ++rr) {
      if (rr < red.basis.rows.size())
        full.basis.rows[kept_rows_[rr]] = red.basis.rows[rr];
    }
  }

  // Reduced cost of column j under the (partially recovered) duals.
  auto reduced_cost = [&](std::size_t j) {
    double rc = original.objective(j);
    for (const ColEntry& e : original.col(j)) rc -= e.value * full.duals[e.index];
    return rc;
  };

  // Replay the reduction stack in reverse: each entry rebuilds the primal
  // value, basis status, and (where recoverable) dual of what it removed.
  for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
    const Entry& en = *it;
    switch (en.kind) {
      case Entry::Kind::FixedCol:
        full.x[en.col] = en.value;
        if (have_basis) full.basis.cols[en.col] = en.col_status;
        break;
      case Entry::Kind::EmptyRow:
      case Entry::Kind::RedundantRow:
        break;  // slack basic, dual 0 — the defaults
      case Entry::Kind::ColSingleton: {
        double rest = 0.0;
        for (const auto& [k, ck] : en.others) rest += ck * full.x[k];
        full.x[en.col] = (en.rhs - rest) / en.value;
        if (have_basis) {
          full.basis.cols[en.col] = BasisStatus::Basic;
          full.basis.rows[en.row] = BasisStatus::AtLower;
          full.duals[en.row] = reduced_cost(en.col) / en.value;
        }
        break;
      }
      case Entry::Kind::SingletonRow: {
        // The row's slack comes back basic (always a valid completion). If
        // the column sits on the bound this row implied, the bound is really
        // the row: move the column's reduced cost onto the row's dual.
        if (!have_basis) break;
        if (full.basis.cols[en.col] == BasisStatus::Basic) break;
        const double xv = full.x[en.col];
        const double tolb = 10.0 * tol_ * (1.0 + std::fabs(xv));
        const bool at_lo = std::isfinite(en.implied_lb) &&
                           std::fabs(xv - en.implied_lb) <= tolb;
        const bool at_hi = std::isfinite(en.implied_ub) &&
                           std::fabs(xv - en.implied_ub) <= tolb;
        if (at_lo || at_hi) {
          const double rc = reduced_cost(en.col);
          if (std::fabs(rc) > 1e-12) full.duals[en.row] = rc / en.value;
        }
        break;
      }
    }
  }

  // Evaluate the answer in the original space.
  double obj = 0.0;
  for (std::size_t j = 0; j < n; ++j) obj += original.objective(j) * full.x[j];
  full.objective = obj;
  double viol = 0.0;
  for (std::size_t r = 0; r < m; ++r) {
    const double act = original.row_activity(r, full.x);
    if (original.row_lower(r) != -kInf)
      viol = std::max(viol, original.row_lower(r) - act);
    if (original.row_upper(r) != kInf)
      viol = std::max(viol, act - original.row_upper(r));
  }
  for (std::size_t j = 0; j < n; ++j) {
    if (original.col_lower(j) != -kInf)
      viol = std::max(viol, original.col_lower(j) - full.x[j]);
    if (original.col_upper(j) != kInf)
      viol = std::max(viol, full.x[j] - original.col_upper(j));
  }
  full.max_primal_violation = viol;
  return full;
}

}  // namespace hslb::lp
