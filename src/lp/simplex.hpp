// Bounded-variable simplex solver with warm starts.
//
// Cold solves run the classic two-phase primal method (per-row artificial
// variables; range rows as bounded slacks; nonbasic variables at a bound or
// at zero when free). Warm solves skip Phase I entirely: the caller passes
// the basis of a previously solved, structurally compatible model (same
// columns, a row prefix of the new model — branch-and-bound children differ
// from their parent only by tightened bounds and appended cut rows), a dual
// simplex phase repairs the handful of primal infeasibilities the changes
// introduced, and a primal cleanup phase certifies optimality.
//
// The basis inverse is maintained by product-form (eta) rank-1 updates —
// stored sparse, applied with a hypersparsity fast path that skips exact
// zeros — with periodic refactorization for numerical safety via a
// Markowitz-pivoting sparse LU (dense LU behind Options::force_dense).
// Entering variables are chosen by candidate-list partial pricing under a
// Devex reference framework instead of a full Dantzig sweep (cf. DESIGN.md).
//
// Plays the role CLP plays under MINOTAUR in the paper (§III-E).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "lp/model.hpp"

namespace hslb::lp {

enum class Status {
  Optimal,
  Infeasible,
  Unbounded,
  IterationLimit,
};

/// Human-readable status label.
std::string to_string(Status s);

/// Basis membership of one variable (structural column or row slack).
enum class BasisStatus : std::uint8_t { Basic, AtLower, AtUpper, Free };

/// Snapshot of an optimal basis, reusable as a warm start for a model with
/// the same columns and whose rows extend this model's rows (appended rows
/// start with their slack basic). Row-bound and column-bound changes are
/// repaired by the dual simplex.
struct Basis {
  std::vector<BasisStatus> cols;  ///< one entry per structural column
  std::vector<BasisStatus> rows;  ///< one entry per row (its slack)

  bool empty() const { return cols.empty() && rows.empty(); }
};

struct Options {
  double feasibility_tol = 1e-8;    ///< row/column feasibility tolerance
  double optimality_tol = 1e-9;     ///< reduced-cost tolerance
  std::size_t max_iterations = 50000;
  /// Switch from Dantzig pricing to Bland's rule after this many
  /// consecutive degenerate pivots (anti-cycling).
  std::size_t bland_threshold = 200;
  /// Rebuild the basis factorization after this many eta updates (and
  /// whenever a pivot looks numerically risky).
  std::size_t refactor_interval = 64;
  /// Optional warm-start basis (not owned; must outlive the solve call).
  /// Ignored — falling back to a cold solve — when structurally
  /// incompatible or numerically singular.
  const Basis* warm_start = nullptr;
  /// Use the dense kernels (dense LU refactorization, dense eta vectors)
  /// instead of the sparse ones. Pricing and pivot rules are unchanged, so
  /// this isolates the kernel arithmetic — used by the sparse/dense parity
  /// tests and the benchmark baselines.
  bool force_dense = false;
  /// Run the LP presolve (lp/presolve.hpp) before a *cold* solve and map
  /// the answer back through postsolve. Warm starts bypass it: the caller's
  /// basis is in the original space and the dual repair is already cheap.
  /// Off by default at this layer; the MINLP solver turns it on for its
  /// root and cold re-solves (minlp::BnbOptions::presolve).
  bool presolve = false;
};

/// Nonzero / pivot-fill accounting for one solve. Two complementary
/// measures: the eta counters compare stored eta nonzeros against dense
/// eta vectors (m entries each) — a storage/compression view. The kernel
/// counters compare the work the FTRAN/BTRAN passes actually perform
/// (sparse LU nonzeros touched per triangular solve, eta entries touched
/// with hypersparse zero-pivot skips counted as one probe) against what
/// dense kernels spend on the same sequence of solves (m^2 per triangular
/// solve pair, m per applied eta). The kernel ratio is the honest "flops
/// per pivot" number: on OA master LPs the objective column appears in
/// every cut row, so eta vectors fill in and compress barely at all, while
/// the basis itself stays hypersparse and the LU solve work collapses.
struct SolveStats {
  std::size_t pivots = 0;            ///< eta updates recorded (primal + dual)
  std::size_t eta_nnz = 0;           ///< stored eta nonzeros, summed
  std::size_t eta_dense_nnz = 0;     ///< dense-equivalent eta entries, summed
  std::size_t kernel_flops = 0;       ///< FTRAN/BTRAN work actually done
  std::size_t kernel_dense_flops = 0; ///< dense-kernel work for same solves
  std::size_t refactorizations = 0;  ///< basis factorizations performed
  std::size_t basis_nnz = 0;         ///< nonzeros of the last factored basis
  std::size_t lu_fill = 0;           ///< nonzeros of its L+U factors
  // Presolve accounting (cold solves with Options::presolve on).
  std::size_t presolve_rows_removed = 0;     ///< rows dropped before solving
  std::size_t presolve_cols_removed = 0;     ///< columns fixed/substituted out
  std::size_t presolve_bounds_tightened = 0; ///< variable bounds sharpened

  /// Folds another solve into this one: work counters add up, the
  /// basis/fill snapshot keeps the most recent nonzero reading.
  void merge(const SolveStats& o) {
    pivots += o.pivots;
    eta_nnz += o.eta_nnz;
    eta_dense_nnz += o.eta_dense_nnz;
    kernel_flops += o.kernel_flops;
    kernel_dense_flops += o.kernel_dense_flops;
    presolve_rows_removed += o.presolve_rows_removed;
    presolve_cols_removed += o.presolve_cols_removed;
    presolve_bounds_tightened += o.presolve_bounds_tightened;
    refactorizations += o.refactorizations;
    if (o.basis_nnz != 0) basis_nnz = o.basis_nnz;
    if (o.lu_fill != 0) lu_fill = o.lu_fill;
  }

  /// Dense-equivalent eta entries per stored nonzero (eta storage
  /// compression); 1.0 when nothing was pivoted.
  double eta_compression() const {
    return eta_nnz == 0 ? 1.0
                        : static_cast<double>(eta_dense_nnz) /
                              static_cast<double>(eta_nnz);
  }

  /// Dense-kernel work per unit of work the sparse kernels actually did
  /// (the "flops per pivot" reduction factor); 1.0 when nothing ran.
  double flop_reduction() const {
    return kernel_flops == 0 ? 1.0
                             : static_cast<double>(kernel_dense_flops) /
                                   static_cast<double>(kernel_flops);
  }
};

struct Solution {
  Status status = Status::IterationLimit;
  double objective = 0.0;
  std::vector<double> x;       ///< primal values (structural columns only)
  std::vector<double> duals;   ///< one multiplier per row (phase-2 y)
  std::size_t iterations = 0;  ///< total pivots (primal + dual)
  double max_primal_violation = 0.0;  ///< diagnostic, after polishing
  /// Optimal basis snapshot (empty unless status == Optimal); feed back via
  /// Options::warm_start to accelerate re-solves.
  Basis basis;
  /// True when the warm-start basis was actually used (false when absent,
  /// incompatible, or abandoned for a cold solve).
  bool warm_started = false;
  /// Sparsity accounting for this solve (the tableau that produced the
  /// returned answer; abandoned warm attempts are not included).
  SolveStats stats;
};

/// Solves the LP; deterministic for a fixed model and options.
Solution solve(const Model& model, const Options& options = {});

}  // namespace hslb::lp
