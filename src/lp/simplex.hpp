// Bounded-variable simplex solver with warm starts.
//
// Cold solves run the classic two-phase primal method (per-row artificial
// variables; range rows as bounded slacks; nonbasic variables at a bound or
// at zero when free). Warm solves skip Phase I entirely: the caller passes
// the basis of a previously solved, structurally compatible model (same
// columns, a row prefix of the new model — branch-and-bound children differ
// from their parent only by tightened bounds and appended cut rows), a dual
// simplex phase repairs the handful of primal infeasibilities the changes
// introduced, and a primal cleanup phase certifies optimality.
//
// The basis inverse is maintained by Forrest-Tomlin updates of the sparse
// Markowitz LU factors (linalg::UpdatableLU): each pivot replaces one
// column of U in place, so FTRAN/BTRAN keep solving against a compact
// factorization instead of a growing product-form eta file. Refactorization
// is adaptive — triggered by update-fill growth or a numerically unstable
// update, with the interval as a backstop cap. The classic product-form
// (eta) scheme survives behind Options::basis_update for baseline
// comparisons, and the dense path (Options::force_dense) always uses it.
// Entering variables are chosen by candidate-list partial pricing under a
// Devex reference framework instead of a full Dantzig sweep (cf. DESIGN.md).
//
// Plays the role CLP plays under MINOTAUR in the paper (§III-E).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "lp/model.hpp"

namespace hslb::lp {

enum class Status {
  Optimal,
  Infeasible,
  Unbounded,
  IterationLimit,
};

/// Human-readable status label.
std::string to_string(Status s);

/// Basis membership of one variable (structural column or row slack).
enum class BasisStatus : std::uint8_t { Basic, AtLower, AtUpper, Free };

/// Snapshot of an optimal basis, reusable as a warm start for a model with
/// the same columns and whose rows extend this model's rows (appended rows
/// start with their slack basic). Row-bound and column-bound changes are
/// repaired by the dual simplex.
struct Basis {
  std::vector<BasisStatus> cols;  ///< one entry per structural column
  std::vector<BasisStatus> rows;  ///< one entry per row (its slack)

  bool empty() const { return cols.empty() && rows.empty(); }
};

/// Basis-inverse maintenance scheme between refactorizations.
enum class BasisUpdate : std::uint8_t {
  /// Forrest-Tomlin LU column replacement (default): solves stay against an
  /// updated sparse factorization; refactorization is adaptive.
  ForrestTomlin,
  /// Product-form eta file (the historical scheme, kept as the benchmark
  /// baseline); refactorization every `refactor_interval` updates.
  ProductFormEta,
};

struct Options {
  double feasibility_tol = 1e-8;    ///< row/column feasibility tolerance
  double optimality_tol = 1e-9;     ///< reduced-cost tolerance
  std::size_t max_iterations = 50000;
  /// Switch from Dantzig pricing to Bland's rule after this many
  /// consecutive degenerate pivots (anti-cycling).
  std::size_t bland_threshold = 200;
  /// Upper cap on basis updates between refactorizations. The eta scheme
  /// refactorizes exactly at this count; the Forrest-Tomlin scheme usually
  /// refactorizes earlier on its fill / drift triggers and uses this as the
  /// numerical-safety backstop.
  std::size_t refactor_interval = 64;
  /// Forrest-Tomlin fill trigger: refactorize when the updated factors grow
  /// beyond this multiple of the fresh-factorization fill. Must be >= 1.
  double refactor_fill_ratio = 2.0;
  /// How the basis inverse is maintained between refactorizations. The
  /// dense kernels (force_dense) always use the product-form scheme.
  BasisUpdate basis_update = BasisUpdate::ForrestTomlin;
  /// Optional warm-start basis (not owned; must outlive the solve call).
  /// Ignored — falling back to a cold solve — when structurally
  /// incompatible or numerically singular.
  const Basis* warm_start = nullptr;
  /// Use the dense kernels (dense LU refactorization, dense eta vectors)
  /// instead of the sparse ones. Pricing and pivot rules are unchanged, so
  /// this isolates the kernel arithmetic — used by the sparse/dense parity
  /// tests and the benchmark baselines.
  bool force_dense = false;
  /// Run the LP presolve (lp/presolve.hpp) before a *cold* solve and map
  /// the answer back through postsolve. Warm starts bypass it: the caller's
  /// basis is in the original space and the dual repair is already cheap.
  /// Off by default at this layer; the MINLP solver turns it on for its
  /// root and cold re-solves (minlp::BnbOptions::presolve).
  bool presolve = false;
};

/// Nonzero / pivot-fill accounting for one solve. Two complementary
/// measures: the eta counters compare stored eta nonzeros against dense
/// eta vectors (m entries each) — a storage/compression view. The kernel
/// counters compare the work the FTRAN/BTRAN passes actually perform
/// (sparse LU nonzeros touched per triangular solve, eta entries touched
/// with hypersparse zero-pivot skips counted as one probe) against what
/// dense kernels spend on the same sequence of solves (m^2 per triangular
/// solve pair, m per applied eta). The kernel ratio is the honest "flops
/// per pivot" number: on OA master LPs the objective column appears in
/// every cut row, so eta vectors fill in and compress barely at all, while
/// the basis itself stays hypersparse and the LU solve work collapses.
struct SolveStats {
  std::size_t pivots = 0;            ///< basis changes recorded (primal + dual)
  std::size_t eta_nnz = 0;           ///< stored eta nonzeros, summed
  std::size_t eta_dense_nnz = 0;     ///< dense-equivalent eta entries, summed
  std::size_t kernel_flops = 0;       ///< FTRAN/BTRAN work actually done
  std::size_t kernel_dense_flops = 0; ///< dense-kernel work for same solves
  std::size_t refactorizations = 0;  ///< basis factorizations performed
  std::size_t basis_nnz = 0;         ///< nonzeros of the last factored basis
  std::size_t lu_fill = 0;           ///< nonzeros of its L+U factors
  // Forrest-Tomlin accounting (basis_update == BasisUpdate::ForrestTomlin).
  std::size_t ft_updates = 0;        ///< successful FT column replacements
  std::size_t ft_fill_nnz = 0;       ///< factor nonzeros the updates appended
  // Why each refactorization beyond the initial factor fired.
  std::size_t refactor_interval_hits = 0;  ///< update-count backstop reached
  std::size_t refactor_fill_hits = 0;      ///< fill-ratio trigger
  std::size_t refactor_drift_hits = 0;     ///< unstable update / risky pivot
  // Pivot provenance: the dual/primal split of `pivots`.
  std::size_t dual_pivots = 0;       ///< pivots made by the dual simplex
  std::size_t phase1_pivots = 0;     ///< pivots made by primal phase 1
  /// Warm node re-solves that went dual repair -> primal phase 2 without
  /// ever entering primal phase 1 (the dual path paying off).
  std::size_t dual_phase1_avoided = 0;
  // Presolve accounting (cold solves with Options::presolve on).
  std::size_t presolve_rows_removed = 0;     ///< rows dropped before solving
  std::size_t presolve_cols_removed = 0;     ///< columns fixed/substituted out
  std::size_t presolve_bounds_tightened = 0; ///< variable bounds sharpened

  /// Folds another solve into this one: work counters add up, the
  /// basis/fill snapshot keeps the most recent nonzero reading.
  void merge(const SolveStats& o) {
    pivots += o.pivots;
    eta_nnz += o.eta_nnz;
    eta_dense_nnz += o.eta_dense_nnz;
    kernel_flops += o.kernel_flops;
    kernel_dense_flops += o.kernel_dense_flops;
    ft_updates += o.ft_updates;
    ft_fill_nnz += o.ft_fill_nnz;
    refactor_interval_hits += o.refactor_interval_hits;
    refactor_fill_hits += o.refactor_fill_hits;
    refactor_drift_hits += o.refactor_drift_hits;
    dual_pivots += o.dual_pivots;
    phase1_pivots += o.phase1_pivots;
    dual_phase1_avoided += o.dual_phase1_avoided;
    presolve_rows_removed += o.presolve_rows_removed;
    presolve_cols_removed += o.presolve_cols_removed;
    presolve_bounds_tightened += o.presolve_bounds_tightened;
    refactorizations += o.refactorizations;
    if (o.basis_nnz != 0) basis_nnz = o.basis_nnz;
    if (o.lu_fill != 0) lu_fill = o.lu_fill;
  }

  /// Dense-equivalent eta entries per stored nonzero (eta storage
  /// compression); 1.0 when nothing was pivoted.
  double eta_compression() const {
    return eta_nnz == 0 ? 1.0
                        : static_cast<double>(eta_dense_nnz) /
                              static_cast<double>(eta_nnz);
  }

  /// Dense-kernel work per unit of work the sparse kernels actually did
  /// (the "flops per pivot" reduction factor); 1.0 when nothing ran.
  double flop_reduction() const {
    return kernel_flops == 0 ? 1.0
                             : static_cast<double>(kernel_dense_flops) /
                                   static_cast<double>(kernel_flops);
  }
};

struct Solution {
  Status status = Status::IterationLimit;
  double objective = 0.0;
  std::vector<double> x;       ///< primal values (structural columns only)
  std::vector<double> duals;   ///< one multiplier per row (phase-2 y)
  std::size_t iterations = 0;  ///< total pivots (primal + dual)
  double max_primal_violation = 0.0;  ///< diagnostic, after polishing
  /// Optimal basis snapshot (empty unless status == Optimal); feed back via
  /// Options::warm_start to accelerate re-solves.
  Basis basis;
  /// True when the warm-start basis was actually used (false when absent,
  /// incompatible, or abandoned for a cold solve).
  bool warm_started = false;
  /// Sparsity accounting for this solve (the tableau that produced the
  /// returned answer; abandoned warm attempts are not included).
  SolveStats stats;
};

/// Solves the LP; deterministic for a fixed model and options.
Solution solve(const Model& model, const Options& options = {});

}  // namespace hslb::lp
