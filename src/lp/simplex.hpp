// Bounded-variable simplex solver with warm starts.
//
// Cold solves run the classic two-phase primal method (per-row artificial
// variables; range rows as bounded slacks; nonbasic variables at a bound or
// at zero when free). Warm solves skip Phase I entirely: the caller passes
// the basis of a previously solved, structurally compatible model (same
// columns, a row prefix of the new model — branch-and-bound children differ
// from their parent only by tightened bounds and appended cut rows), a dual
// simplex phase repairs the handful of primal infeasibilities the changes
// introduced, and a primal cleanup phase certifies optimality.
//
// The basis inverse is maintained by product-form (eta) rank-1 updates with
// periodic dense-LU refactorization for numerical safety, instead of a full
// refactorization per pivot (cf. DESIGN.md).
//
// Plays the role CLP plays under MINOTAUR in the paper (§III-E).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "lp/model.hpp"

namespace hslb::lp {

enum class Status {
  Optimal,
  Infeasible,
  Unbounded,
  IterationLimit,
};

/// Human-readable status label.
std::string to_string(Status s);

/// Basis membership of one variable (structural column or row slack).
enum class BasisStatus : std::uint8_t { Basic, AtLower, AtUpper, Free };

/// Snapshot of an optimal basis, reusable as a warm start for a model with
/// the same columns and whose rows extend this model's rows (appended rows
/// start with their slack basic). Row-bound and column-bound changes are
/// repaired by the dual simplex.
struct Basis {
  std::vector<BasisStatus> cols;  ///< one entry per structural column
  std::vector<BasisStatus> rows;  ///< one entry per row (its slack)

  bool empty() const { return cols.empty() && rows.empty(); }
};

struct Options {
  double feasibility_tol = 1e-8;    ///< row/column feasibility tolerance
  double optimality_tol = 1e-9;     ///< reduced-cost tolerance
  std::size_t max_iterations = 50000;
  /// Switch from Dantzig pricing to Bland's rule after this many
  /// consecutive degenerate pivots (anti-cycling).
  std::size_t bland_threshold = 200;
  /// Rebuild the dense LU of the basis after this many eta updates (and
  /// whenever a pivot looks numerically risky).
  std::size_t refactor_interval = 64;
  /// Optional warm-start basis (not owned; must outlive the solve call).
  /// Ignored — falling back to a cold solve — when structurally
  /// incompatible or numerically singular.
  const Basis* warm_start = nullptr;
};

struct Solution {
  Status status = Status::IterationLimit;
  double objective = 0.0;
  std::vector<double> x;       ///< primal values (structural columns only)
  std::vector<double> duals;   ///< one multiplier per row (phase-2 y)
  std::size_t iterations = 0;  ///< total pivots (primal + dual)
  double max_primal_violation = 0.0;  ///< diagnostic, after polishing
  /// Optimal basis snapshot (empty unless status == Optimal); feed back via
  /// Options::warm_start to accelerate re-solves.
  Basis basis;
  /// True when the warm-start basis was actually used (false when absent,
  /// incompatible, or abandoned for a cold solve).
  bool warm_started = false;
};

/// Solves the LP; deterministic for a fixed model and options.
Solution solve(const Model& model, const Options& options = {});

}  // namespace hslb::lp
