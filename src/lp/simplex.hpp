// Bounded-variable primal simplex solver.
//
// Two-phase method with per-row artificial variables; range rows are
// handled with bounded slacks; nonbasic variables sit at either bound
// (or at zero when free). The basis is refactorized by dense LU each
// iteration — the HSLB master problems have tens of rows, so dense
// refactorization is both simple and fast enough (cf. DESIGN.md).
//
// Plays the role CLP plays under MINOTAUR in the paper (§III-E).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lp/model.hpp"

namespace hslb::lp {

enum class Status {
  Optimal,
  Infeasible,
  Unbounded,
  IterationLimit,
};

/// Human-readable status label.
std::string to_string(Status s);

struct Options {
  double feasibility_tol = 1e-8;    ///< row/column feasibility tolerance
  double optimality_tol = 1e-9;     ///< reduced-cost tolerance
  std::size_t max_iterations = 50000;
  /// Switch from Dantzig pricing to Bland's rule after this many
  /// consecutive degenerate pivots (anti-cycling).
  std::size_t bland_threshold = 200;
};

struct Solution {
  Status status = Status::IterationLimit;
  double objective = 0.0;
  std::vector<double> x;       ///< primal values (structural columns only)
  std::vector<double> duals;   ///< one multiplier per row (phase-2 y)
  std::size_t iterations = 0;
  double max_primal_violation = 0.0;  ///< diagnostic, after polishing
};

/// Solves the LP; deterministic for a fixed model.
Solution solve(const Model& model, const Options& options = {});

}  // namespace hslb::lp
