// Root-node LP presolve with postsolve recovery.
//
// `Presolve::run` applies the classic size reductions to a model copy until
// a fixpoint (or a pass budget) is reached:
//
//   * empty rows          — dropped (or proven infeasible);
//   * singleton rows      — converted into column bounds and dropped;
//   * redundant rows      — rows whose activity range fits inside the row
//                           bounds can never be violated and are dropped;
//   * fixed columns       — lb == ub columns are substituted into the row
//                           bounds and the objective;
//   * dominated columns   — columns whose objective and row signs all pull
//                           one way are fixed at the corresponding bound;
//   * column singletons   — an implied-free column appearing in exactly one
//                           equality row is substituted out together with
//                           the row;
//   * bound tightening    — variable bounds implied by row activity ranges.
//
// Every removal pushes an entry onto a reduction stack; `postsolve` replays
// the stack in reverse to rebuild the *original-space* primal point, row
// duals, and basis from the reduced solve, so callers can keep feeding the
// recovered basis into warm starts exactly as before. Removed rows come
// back with their slack basic (structurally always a valid completion);
// singleton rows recover their dual from the reduced cost of the column
// they used to bound.
#pragma once

#include <cstddef>
#include <vector>

#include "lp/model.hpp"
#include "lp/simplex.hpp"

namespace hslb::lp {

struct PresolveOptions {
  double feasibility_tol = 1e-8;  ///< infeasibility / redundancy tolerance
  std::size_t max_passes = 10;    ///< reduction sweeps before giving up
};

class Presolve {
 public:
  enum class Status {
    Reduced,     ///< reduced model is available (possibly unchanged)
    Infeasible,  ///< presolve proved the model infeasible
  };

  /// Runs the reductions on (a working copy of) `model`.
  static Presolve run(const Model& model, const PresolveOptions& opt = {});

  Status status() const { return status_; }

  /// The reduced model (valid when status() == Reduced).
  const Model& reduced() const { return reduced_; }

  std::size_t rows_removed() const { return rows_removed_; }
  std::size_t cols_removed() const { return cols_removed_; }
  std::size_t bounds_tightened() const { return bounds_tightened_; }

  /// True when at least one reduction fired (solving the reduced model is
  /// cheaper than solving the original).
  bool effective() const {
    return rows_removed_ + cols_removed_ + bounds_tightened_ > 0;
  }

  /// Maps a solution of reduced() back onto `original` (which must be the
  /// model run() was called with): primal values, row duals, and basis are
  /// rebuilt in the original index space; the objective and the primal
  /// violation are re-evaluated against the original model.
  Solution postsolve(const Model& original, const Solution& red) const;

 private:
  Presolve() = default;

  struct Entry {
    enum class Kind : std::uint8_t {
      FixedCol,      ///< column pinned at `value` (fixed or dominated)
      EmptyRow,      ///< row with no alive entries, verified satisfiable
      RedundantRow,  ///< row activity range inside the row bounds
      SingletonRow,  ///< row converted into bounds on column `col`
      ColSingleton,  ///< implied-free column substituted out of an equality
    };
    Kind kind;
    std::size_t row = static_cast<std::size_t>(-1);
    std::size_t col = static_cast<std::size_t>(-1);
    double value = 0.0;        ///< FixedCol: pinned value; else row coeff a
    BasisStatus col_status = BasisStatus::AtLower;  ///< FixedCol basis side
    double implied_lb = 0.0;   ///< SingletonRow: row-implied column bounds
    double implied_ub = 0.0;
    double rhs = 0.0;          ///< ColSingleton: adjusted equality rhs
    std::vector<Coeff> others; ///< ColSingleton: alive row entries besides col
  };

  Status status_ = Status::Reduced;
  Model reduced_;
  std::vector<Entry> stack_;           ///< removal order
  std::vector<std::size_t> col_map_;   ///< original col -> reduced col (or -1)
  std::vector<std::size_t> row_map_;   ///< original row -> reduced row (or -1)
  std::vector<std::size_t> kept_cols_; ///< reduced col -> original col
  std::vector<std::size_t> kept_rows_; ///< reduced row -> original row
  double tol_ = 1e-8;
  std::size_t rows_removed_ = 0;
  std::size_t cols_removed_ = 0;
  std::size_t bounds_tightened_ = 0;
};

}  // namespace hslb::lp
