// Linear-programming model container:
//
//   minimize    c^T x
//   subject to  rowlb <= A x <= rowub
//               collb <=   x <= colub
//
// This mirrors the slice of CLP's interface that MINOTAUR's LP/NLP
// branch-and-bound needs: append columns/rows, tighten bounds (for
// branching), append rows (for outer-approximation cuts).
#pragma once

#include <limits>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "linalg/sparse.hpp"

namespace hslb::lp {

/// +infinity sentinel for free bounds.
inline constexpr double kInf = std::numeric_limits<double>::infinity();

/// One sparse coefficient: (column index, value).
using Coeff = std::pair<std::size_t, double>;

/// One column-view entry: (.index = row, .value = coefficient).
using ColEntry = linalg::SparseEntry;

/// Mutable LP model; the solver reads it, branching mutates bound copies.
class Model {
 public:
  /// Adds a variable; returns its column index.
  std::size_t add_variable(double lb, double ub, double objective,
                           std::string name = "");

  /// Adds a range constraint lb <= sum coeffs <= ub; returns its row index.
  /// Coefficients must reference existing columns; duplicate column entries
  /// within one row are summed, and entries summing to exactly zero are
  /// dropped (they would otherwise pollute the sparsity pattern).
  std::size_t add_constraint(std::vector<Coeff> coeffs, double lb, double ub,
                             std::string name = "");

  /// Equality convenience (lb == ub == rhs).
  std::size_t add_equality(std::vector<Coeff> coeffs, double rhs,
                           std::string name = "");

  /// Bound mutation (used by branch-and-bound).
  void set_col_lower(std::size_t col, double lb);
  void set_col_upper(std::size_t col, double ub);
  double col_lower(std::size_t col) const;
  double col_upper(std::size_t col) const;

  void set_objective(std::size_t col, double c);
  double objective(std::size_t col) const;

  std::size_t num_cols() const { return col_lb_.size(); }
  std::size_t num_rows() const { return row_lb_.size(); }

  const std::vector<Coeff>& row(std::size_t r) const;
  double row_lower(std::size_t r) const;
  double row_upper(std::size_t r) const;

  /// Column view of the constraint matrix: the nonzeros of column c ordered
  /// by increasing row index. Maintained incrementally as constraints are
  /// appended (rows are append-only, so entries arrive already ordered);
  /// branch-and-bound children that add OA cut rows never pay a rebuild.
  const std::vector<ColEntry>& col(std::size_t c) const;

  /// Total nonzeros in the constraint matrix.
  std::size_t nnz() const { return nnz_; }

  const std::string& col_name(std::size_t col) const;
  const std::string& row_name(std::size_t r) const;

  /// Evaluates row r's linear expression at x.
  double row_activity(std::size_t r, std::span<const double> x) const;

  /// True when x satisfies all row and column bounds within `tol`.
  bool is_feasible(std::span<const double> x, double tol = 1e-7) const;

 private:
  std::vector<double> col_lb_, col_ub_, obj_;
  std::vector<std::string> col_names_;
  std::vector<std::vector<Coeff>> rows_;
  std::vector<std::vector<ColEntry>> cols_;  // column view, kept in sync
  std::size_t nnz_ = 0;
  std::vector<double> row_lb_, row_ub_;
  std::vector<std::string> row_names_;
};

}  // namespace hslb::lp
