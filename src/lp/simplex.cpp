#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "common/contracts.hpp"
#include "common/log.hpp"
#include "linalg/decomp.hpp"
#include "linalg/matrix.hpp"

namespace hslb::lp {

std::string to_string(Status s) {
  switch (s) {
    case Status::Optimal: return "optimal";
    case Status::Infeasible: return "infeasible";
    case Status::Unbounded: return "unbounded";
    case Status::IterationLimit: return "iteration-limit";
  }
  return "?";
}

namespace {

enum class VarStatus { Basic, AtLower, AtUpper, Free };

/// Internal computational form:
///   rows:        sum_j a_rj x_j - s_r + sigma_r * art_r = 0
///   structurals: model bounds;  slacks: row bounds;  artificials: [0, inf).
class Tableau {
 public:
  Tableau(const Model& model, const Options& opt)
      : model_(model), opt_(opt), n_(model.num_cols()), m_(model.num_rows()) {
    const std::size_t total = n_ + 2 * m_;
    cols_.resize(total);
    lb_.resize(total);
    ub_.resize(total);
    cost_.assign(total, 0.0);
    status_.resize(total);
    value_.assign(total, 0.0);

    for (std::size_t j = 0; j < n_; ++j) {
      lb_[j] = model.col_lower(j);
      ub_[j] = model.col_upper(j);
    }
    // Row equilibration: outer-approximation cuts carry coefficients many
    // orders of magnitude above the +-1 structural rows; dividing each row
    // by its largest coefficient keeps the basis numerically sane.
    row_scale_.assign(m_, 1.0);
    for (std::size_t r = 0; r < m_; ++r) {
      double s = 0.0;
      for (const auto& [col, v] : model.row(r)) s = std::max(s, std::fabs(v));
      row_scale_[r] = s > 0.0 ? s : 1.0;
    }
    for (std::size_t r = 0; r < m_; ++r) {
      for (const auto& [col, v] : model.row(r))
        cols_[col].push_back({r, v / row_scale_[r]});
      const std::size_t s = slack(r);
      cols_[s] = {{r, -1.0}};
      lb_[s] = model.row_lower(r) == -kInf ? -kInf
                                           : model.row_lower(r) / row_scale_[r];
      ub_[s] = model.row_upper(r) == kInf ? kInf
                                          : model.row_upper(r) / row_scale_[r];
    }

    // Nonbasic start: every structural at its bound nearest zero (or 0 if
    // free); slacks clamped to the implied activity; artificials absorb the
    // residual so the initial basis is the (diagonal) artificial basis.
    for (std::size_t j = 0; j < n_; ++j) {
      set_nonbasic_start(j);
    }
    std::vector<double> activity(m_, 0.0);
    for (std::size_t j = 0; j < n_; ++j) {
      if (value_[j] == 0.0) continue;
      for (const auto& [r, v] : cols_[j]) activity[r] += v * value_[j];
    }
    basis_.resize(m_);
    for (std::size_t r = 0; r < m_; ++r) {
      const std::size_t s = slack(r);
      const std::size_t a = artificial(r);
      lb_[a] = 0.0;
      ub_[a] = kInf;
      if (activity[r] >= lb_[s] && activity[r] <= ub_[s]) {
        // Row already satisfied: the slack itself is basic at the activity;
        // the artificial stays nonbasic at zero.
        value_[s] = activity[r];
        status_[s] = VarStatus::Basic;
        basis_[r] = s;
        cols_[a] = {{r, 1.0}};
        value_[a] = 0.0;
        status_[a] = VarStatus::AtLower;
      } else {
        // Row violated: park the slack at its nearest bound and let a basic
        // artificial absorb the (positive, via sigma) residual.
        value_[s] = std::clamp(activity[r], lb_[s], ub_[s]);
        status_[s] = value_[s] == lb_[s] ? VarStatus::AtLower : VarStatus::AtUpper;
        // Row reads: activity - s + sigma*a = 0, so a = -resid/sigma; choose
        // sigma = -sign(resid) to start the artificial at |resid| >= 0.
        const double resid = activity[r] - value_[s];
        cols_[a] = {{r, resid >= 0.0 ? -1.0 : 1.0}};
        status_[a] = VarStatus::Basic;
        basis_[r] = a;
      }
    }
  }

  bool singular_failure() const { return singular_failure_; }

  Solution run() {
    Solution sol;

    // Phase 1: minimize the sum of artificials.
    for (std::size_t r = 0; r < m_; ++r) cost_[artificial(r)] = 1.0;
    const auto p1 = iterate(/*phase2=*/false, sol.iterations);
    if (p1 == Status::IterationLimit) {
      sol.status = Status::IterationLimit;
      return sol;
    }
    if (phase1_objective() > infeas_tol()) {
      sol.status = Status::Infeasible;
      return sol;
    }

    // Phase 2: real costs; artificials pinned to zero.
    for (std::size_t r = 0; r < m_; ++r) {
      const std::size_t a = artificial(r);
      cost_[a] = 0.0;
      ub_[a] = 0.0;
      if (status_[a] != VarStatus::Basic) status_[a] = VarStatus::AtLower;
    }
    for (std::size_t j = 0; j < n_; ++j) cost_[j] = model_.objective(j);
    const auto p2 = iterate(/*phase2=*/true, sol.iterations);

    sol.status = p2;
    sol.x.assign(value_.begin(), value_.begin() + static_cast<std::ptrdiff_t>(n_));
    // Duals of the scaled rows map back by dividing by the row scale.
    sol.duals = duals_;
    for (std::size_t r = 0; r < sol.duals.size(); ++r)
      sol.duals[r] /= row_scale_[r];
    sol.objective = 0.0;
    for (std::size_t j = 0; j < n_; ++j) sol.objective += model_.objective(j) * sol.x[j];
    if (p2 == Status::Optimal) {
      double viol = 0.0;
      for (std::size_t r = 0; r < m_; ++r) {
        const double act = model_.row_activity(r, sol.x);
        if (model_.row_lower(r) != -kInf) viol = std::max(viol, model_.row_lower(r) - act);
        if (model_.row_upper(r) != kInf) viol = std::max(viol, act - model_.row_upper(r));
      }
      sol.max_primal_violation = viol;
    }
    return sol;
  }

 private:
  std::size_t slack(std::size_t r) const { return n_ + r; }
  std::size_t artificial(std::size_t r) const { return n_ + m_ + r; }
  std::size_t total_cols() const { return n_ + 2 * m_; }
  // Phase-1 acceptance threshold. Rows are equilibrated to O(1)
  // coefficients, so residual artificial mass is measured against the
  // scaled row bounds — NOT against variable magnitudes: a leftover of
  // feasibility_tol * max|x| would silently accept genuinely infeasible
  // systems whenever some variable is large (observed with pinned-integer
  // NLP subproblems whose T_sync row cannot be met).
  double infeas_tol() const {
    double bound_scale = 0.0;
    for (std::size_t r = 0; r < m_; ++r) {
      const std::size_t s = slack(r);
      if (lb_[s] != -kInf) bound_scale = std::max(bound_scale, std::fabs(lb_[s]));
      if (ub_[s] != kInf) bound_scale = std::max(bound_scale, std::fabs(ub_[s]));
    }
    return opt_.feasibility_tol * (1.0 + bound_scale);
  }

  void set_nonbasic_start(std::size_t j) {
    if (lb_[j] == -kInf && ub_[j] == kInf) {
      status_[j] = VarStatus::Free;
      value_[j] = 0.0;
    } else if (lb_[j] == -kInf) {
      status_[j] = VarStatus::AtUpper;
      value_[j] = ub_[j];
    } else if (ub_[j] == kInf) {
      status_[j] = VarStatus::AtLower;
      value_[j] = lb_[j];
    } else {
      // Both bounds finite: start at the one with smaller magnitude.
      const bool lower = std::fabs(lb_[j]) <= std::fabs(ub_[j]);
      status_[j] = lower ? VarStatus::AtLower : VarStatus::AtUpper;
      value_[j] = lower ? lb_[j] : ub_[j];
    }
  }

  double phase1_objective() const {
    double s = 0.0;
    for (std::size_t r = 0; r < m_; ++r) s += value_[artificial(r)];
    return s;
  }

  /// Recomputes basic values x_B = B^{-1} (-N x_N) and the factorization.
  /// Returns false if the basis is numerically singular.
  bool refactorize() {
    if (m_ == 0) return true;
    linalg::Matrix b(m_, m_);
    for (std::size_t i = 0; i < m_; ++i)
      for (const auto& [r, v] : cols_[basis_[i]]) b(r, i) = v;
    factor_ = linalg::LU::factor(b);
    if (!factor_) return false;

    std::vector<double> rhs(m_, 0.0);
    scale_ = 0.0;
    for (std::size_t j = 0; j < total_cols(); ++j) {
      if (status_[j] == VarStatus::Basic || value_[j] == 0.0) continue;
      for (const auto& [r, v] : cols_[j]) rhs[r] -= v * value_[j];
      scale_ = std::max(scale_, std::fabs(value_[j]));
    }
    const auto xb = factor_->solve(rhs);
    for (std::size_t i = 0; i < m_; ++i) {
      value_[basis_[i]] = xb[i];
      scale_ = std::max(scale_, std::fabs(xb[i]));
    }
    return true;
  }

  /// One simplex phase. Updates `iterations` cumulatively.
  Status iterate(bool phase2, std::size_t& iterations) {
    std::size_t degenerate_run = 0;
    while (iterations < opt_.max_iterations) {
      if (!refactorize()) {
        // Numerical trouble: a pivot sequence drove the basis singular.
        // Flag it so solve() can retry the whole solve with Bland's rule
        // (shorter, more conservative pivot paths).
        log::debug() << "simplex: singular basis (m=" << m_ << ", n=" << n_
                     << ", iter=" << iterations << ", phase2=" << phase2 << ")";
        singular_failure_ = true;
        return Status::Infeasible;
      }

      // Duals y = B^{-T} c_B and pricing.
      if (m_ > 0) {
        std::vector<double> cb(m_);
        for (std::size_t i = 0; i < m_; ++i) cb[i] = cost_[basis_[i]];
        duals_ = factor_->solve_transpose(cb);
      } else {
        duals_.clear();
      }

      const bool bland = degenerate_run >= opt_.bland_threshold;
      std::optional<std::size_t> entering;
      int direction = 0;
      double best_score = opt_.optimality_tol;
      for (std::size_t j = 0; j < total_cols(); ++j) {
        if (status_[j] == VarStatus::Basic) continue;
        if (lb_[j] == ub_[j]) continue;  // fixed, cannot move
        double d = cost_[j];
        for (const auto& [r, v] : cols_[j]) d -= duals_[r] * v;
        int dir = 0;
        if ((status_[j] == VarStatus::AtLower || status_[j] == VarStatus::Free) &&
            d < -opt_.optimality_tol)
          dir = +1;
        else if ((status_[j] == VarStatus::AtUpper || status_[j] == VarStatus::Free) &&
                 d > opt_.optimality_tol)
          dir = -1;
        if (dir == 0) continue;
        if (bland) {
          entering = j;
          direction = dir;
          break;  // smallest index
        }
        if (std::fabs(d) > best_score) {
          best_score = std::fabs(d);
          entering = j;
          direction = dir;
        }
      }
      if (!entering) return Status::Optimal;  // phase optimum reached

      const std::size_t q = *entering;
      ++iterations;

      // Direction of basic variables: delta x_B = -dir * B^{-1} A_q.
      std::vector<double> w;
      if (m_ > 0) {
        std::vector<double> aq(m_, 0.0);
        for (const auto& [r, v] : cols_[q]) aq[r] = v;
        w = factor_->solve(aq);
      }

      // Ratio test. The pivot tolerance is relative to the direction's
      // scale: accepting a pivot many orders below ||w|| makes the next
      // basis numerically singular.
      double wmax = 0.0;
      for (double wi : w) wmax = std::max(wmax, std::fabs(wi));
      const double kPivTol = 1e-9 * std::max(1.0, wmax);
      double t_own = kInf;  // entering variable's own range
      if (lb_[q] != -kInf && ub_[q] != kInf) t_own = ub_[q] - lb_[q];
      double t_star = t_own;
      std::optional<std::size_t> leaving_pos;
      bool leaving_at_upper = false;
      for (std::size_t i = 0; i < m_; ++i) {
        const double delta = -direction * w[i];
        const std::size_t b = basis_[i];
        double limit = kInf;
        bool at_upper = false;
        if (delta > kPivTol) {
          if (ub_[b] != kInf) {
            limit = (ub_[b] - value_[b]) / delta;
            at_upper = true;
          }
        } else if (delta < -kPivTol) {
          if (lb_[b] != -kInf) {
            limit = (lb_[b] - value_[b]) / delta;
            at_upper = false;
          }
        } else {
          continue;
        }
        limit = std::max(limit, 0.0);  // numerical guard
        if (limit < t_star - 1e-12 ||
            (limit < t_star + 1e-12 && leaving_pos &&
             basis_[i] < basis_[*leaving_pos])) {
          t_star = limit;
          leaving_pos = i;
          leaving_at_upper = at_upper;
        }
      }

      if (t_star == kInf) {
        // No blocking bound anywhere. Phase 1 has a bounded objective, so
        // this can only legitimately happen in phase 2.
        return phase2 ? Status::Unbounded : Status::Infeasible;
      }

      degenerate_run = t_star <= 1e-10 ? degenerate_run + 1 : 0;

      if (!leaving_pos || t_star >= t_own - 1e-12) {
        // Bound flip: the entering variable runs to its opposite bound.
        HSLB_ASSERT(t_own != kInf);
        status_[q] = status_[q] == VarStatus::AtLower ? VarStatus::AtUpper
                                                      : VarStatus::AtLower;
        value_[q] = status_[q] == VarStatus::AtLower ? lb_[q] : ub_[q];
        continue;
      }

      // Pivot: entering becomes basic, leaving goes to the bound it hit.
      const std::size_t p = *leaving_pos;
      const std::size_t leave = basis_[p];
      value_[q] = value_[q] + direction * t_star;
      status_[q] = VarStatus::Basic;
      status_[leave] = leaving_at_upper ? VarStatus::AtUpper : VarStatus::AtLower;
      value_[leave] = leaving_at_upper ? ub_[leave] : lb_[leave];
      basis_[p] = q;
    }
    return Status::IterationLimit;
  }

  const Model& model_;
  const Options& opt_;
  std::size_t n_, m_;
  std::vector<std::vector<Coeff>> cols_;
  std::vector<double> lb_, ub_, cost_, value_;
  std::vector<VarStatus> status_;
  std::vector<std::size_t> basis_;
  std::vector<double> row_scale_;
  std::optional<linalg::LU> factor_;
  std::vector<double> duals_;
  double scale_ = 0.0;
  bool singular_failure_ = false;
};

}  // namespace

Solution solve(const Model& model, const Options& options) {
  Tableau t(model, options);
  Solution sol = t.run();
  if (t.singular_failure()) {
    // Retry once from scratch under Bland's rule: its conservative pivot
    // choices avoid the aggressive Dantzig path that went singular.
    Options retry = options;
    retry.bland_threshold = 0;
    Tableau t2(model, retry);
    sol = t2.run();
    if (t2.singular_failure()) {
      log::warn() << "simplex: singular basis persisted after Bland retry";
    }
  }
  return sol;
}

}  // namespace hslb::lp
