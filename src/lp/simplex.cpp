#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <tuple>
#include <utility>

#include "common/contracts.hpp"
#include "common/log.hpp"
#include "linalg/decomp.hpp"
#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"
#include "lp/presolve.hpp"

namespace hslb::lp {

std::string to_string(Status s) {
  switch (s) {
    case Status::Optimal: return "optimal";
    case Status::Infeasible: return "infeasible";
    case Status::Unbounded: return "unbounded";
    case Status::IterationLimit: return "iteration-limit";
  }
  return "?";
}

namespace {

/// One product-form update: after a pivot in row p with simplex direction
/// w = B^{-1} A_q, the new basis is B' = B E with E = I except column p = w.
/// Stored sparse: the pivot value plus the off-pivot nonzeros. Under
/// Options::force_dense the off-pivot entries keep their exact zeros, so the
/// dense-equivalent cost is what the eta counters then report.
struct Eta {
  std::size_t p;
  double wp;                              // w[p]
  std::vector<linalg::SparseEntry> nz;    // entries i != p
};

/// Internal computational form:
///   rows:        sum_j a_rj x_j - s_r + sigma_r * art_r = 0
///   structurals: model bounds;  slacks: row bounds;  artificials: [0, inf).
///
/// Structural columns live in a CSC matrix (scaled by the row equilibration)
/// with a CSR companion for the dual-repair row traversals; slack and
/// artificial columns are implicit singletons and never stored.
class Tableau {
 public:
  Tableau(const Model& model, const Options& opt)
      : model_(model),
        opt_(opt),
        n_(model.num_cols()),
        m_(model.num_rows()),
        alpha_scatter_(model.num_cols() + 2 * model.num_rows()) {
    const std::size_t total = n_ + 2 * m_;
    lb_.resize(total);
    ub_.resize(total);
    cost_.assign(total, 0.0);
    status_.resize(total);
    value_.assign(total, 0.0);

    for (std::size_t j = 0; j < n_; ++j) {
      lb_[j] = model.col_lower(j);
      ub_[j] = model.col_upper(j);
    }
    // Row equilibration: outer-approximation cuts carry coefficients many
    // orders of magnitude above the +-1 structural rows; dividing each row
    // by its largest coefficient keeps the basis numerically sane.
    row_scale_.assign(m_, 1.0);
    for (std::size_t r = 0; r < m_; ++r) {
      double s = 0.0;
      for (const auto& [col, v] : model.row(r)) s = std::max(s, std::fabs(v));
      row_scale_[r] = s > 0.0 ? s : 1.0;
    }
    // Scaled structural columns straight from the model's column view.
    std::vector<std::vector<linalg::SparseEntry>> scaled(n_);
    for (std::size_t j = 0; j < n_; ++j) {
      const auto& col = model.col(j);
      scaled[j].reserve(col.size());
      for (const auto& [r, v] : col) scaled[j].push_back({r, v / row_scale_[r]});
    }
    acols_ = linalg::SparseMatrix::from_columns(m_, scaled);
    arows_ = acols_.transposed();
    art_sign_.assign(m_, 1.0);
    for (std::size_t r = 0; r < m_; ++r) {
      const std::size_t s = slack(r);
      lb_[s] = model.row_lower(r) == -kInf ? -kInf
                                           : model.row_lower(r) / row_scale_[r];
      ub_[s] = model.row_upper(r) == kInf ? kInf
                                          : model.row_upper(r) / row_scale_[r];
    }
    basis_.resize(m_);
  }

  /// Cold start: every structural at its bound nearest zero (or 0 if free);
  /// slacks clamped to the implied activity; artificials absorb the residual
  /// so the initial basis is the (diagonal) artificial basis.
  void init_cold() {
    for (std::size_t j = 0; j < n_; ++j) {
      set_nonbasic_start(j);
    }
    std::vector<double> activity(m_, 0.0);
    for (std::size_t j = 0; j < n_; ++j) {
      if (value_[j] == 0.0) continue;
      linalg::axpy_scatter(value_[j], acols_.col(j), activity);
    }
    for (std::size_t r = 0; r < m_; ++r) {
      const std::size_t s = slack(r);
      const std::size_t a = artificial(r);
      lb_[a] = 0.0;
      ub_[a] = kInf;
      if (activity[r] >= lb_[s] && activity[r] <= ub_[s]) {
        // Row already satisfied: the slack itself is basic at the activity;
        // the artificial stays nonbasic at zero.
        value_[s] = activity[r];
        status_[s] = BasisStatus::Basic;
        basis_[r] = s;
        art_sign_[r] = 1.0;
        value_[a] = 0.0;
        status_[a] = BasisStatus::AtLower;
      } else {
        // Row violated: park the slack at its nearest bound and let a basic
        // artificial absorb the (positive, via sigma) residual.
        value_[s] = std::clamp(activity[r], lb_[s], ub_[s]);
        status_[s] =
            value_[s] == lb_[s] ? BasisStatus::AtLower : BasisStatus::AtUpper;
        // Row reads: activity - s + sigma*a = 0, so a = -resid/sigma; choose
        // sigma = -sign(resid) to start the artificial at |resid| >= 0.
        const double resid = activity[r] - value_[s];
        art_sign_[r] = resid >= 0.0 ? -1.0 : 1.0;
        status_[a] = BasisStatus::Basic;
        basis_[r] = a;
      }
    }
  }

  /// Warm start from a prior optimal basis. The snapshot must cover exactly
  /// our structural columns and a prefix of our rows (appended rows start
  /// with their slack basic). Returns false — leaving the caller to cold
  /// start — when structurally incompatible or numerically singular.
  bool init_warm(const Basis& b) {
    if (b.cols.size() != n_ || b.rows.size() > m_) return false;
    std::vector<std::size_t> basics;
    for (std::size_t j = 0; j < n_; ++j) apply_status(j, b.cols[j], basics);
    for (std::size_t r = 0; r < m_; ++r) {
      const BasisStatus st =
          r < b.rows.size() ? b.rows[r] : BasisStatus::Basic;
      apply_status(slack(r), st, basics);
    }
    // Artificials play no part in a warm solve: pinned nonbasic at zero.
    for (std::size_t r = 0; r < m_; ++r) {
      const std::size_t a = artificial(r);
      art_sign_[r] = 1.0;
      lb_[a] = 0.0;
      ub_[a] = 0.0;
      value_[a] = 0.0;
      status_[a] = BasisStatus::AtLower;
    }
    if (basics.size() != m_) return false;
    for (std::size_t i = 0; i < m_; ++i) basis_[i] = basics[i];
    return refactorize();
  }

  bool singular_failure() const { return singular_failure_; }
  bool warm_trouble() const { return warm_trouble_; }

  /// Two-phase cold solve.
  Solution run_cold() {
    Solution sol = run_cold_impl();
    sol.stats = stats_;
    return sol;
  }

  /// Warm solve: dual-simplex repair of the primal infeasibilities the bound
  /// changes / appended rows introduced, then a primal cleanup phase.
  /// Assumes init_warm succeeded.
  Solution run_warm() {
    Solution sol = run_warm_impl();
    sol.stats = stats_;
    return sol;
  }

 private:
  std::size_t slack(std::size_t r) const { return n_ + r; }
  std::size_t artificial(std::size_t r) const { return n_ + m_ + r; }
  std::size_t total_cols() const { return n_ + 2 * m_; }

  /// Applies f(row, value) over the nonzeros of tableau column j: structural
  /// columns from the CSC view, slacks/artificials as implicit singletons.
  template <typename F>
  void for_col(std::size_t j, F&& f) const {
    if (j < n_) {
      for (const auto& [r, v] : acols_.col(j)) f(r, v);
    } else if (j < n_ + m_) {
      f(j - n_, -1.0);
    } else {
      f(j - n_ - m_, art_sign_[j - n_ - m_]);
    }
  }

  // Phase-1 acceptance threshold. Rows are equilibrated to O(1)
  // coefficients, so residual artificial mass is measured against the
  // scaled row bounds — NOT against variable magnitudes: a leftover of
  // feasibility_tol * max|x| would silently accept genuinely infeasible
  // systems whenever some variable is large (observed with pinned-integer
  // NLP subproblems whose T_sync row cannot be met).
  double infeas_tol() const {
    double bound_scale = 0.0;
    for (std::size_t r = 0; r < m_; ++r) {
      const std::size_t s = slack(r);
      if (lb_[s] != -kInf) bound_scale = std::max(bound_scale, std::fabs(lb_[s]));
      if (ub_[s] != kInf) bound_scale = std::max(bound_scale, std::fabs(ub_[s]));
    }
    return opt_.feasibility_tol * (1.0 + bound_scale);
  }

  void set_nonbasic_start(std::size_t j) {
    if (lb_[j] == -kInf && ub_[j] == kInf) {
      status_[j] = BasisStatus::Free;
      value_[j] = 0.0;
    } else if (lb_[j] == -kInf) {
      status_[j] = BasisStatus::AtUpper;
      value_[j] = ub_[j];
    } else if (ub_[j] == kInf) {
      status_[j] = BasisStatus::AtLower;
      value_[j] = lb_[j];
    } else {
      // Both bounds finite: start at the one with smaller magnitude.
      const bool lower = std::fabs(lb_[j]) <= std::fabs(ub_[j]);
      status_[j] = lower ? BasisStatus::AtLower : BasisStatus::AtUpper;
      value_[j] = lower ? lb_[j] : ub_[j];
    }
  }

  /// Applies one snapshot status to variable j; nonbasic statuses that no
  /// longer match the (possibly tightened) bounds degrade gracefully to the
  /// cold nonbasic start for that variable.
  void apply_status(std::size_t j, BasisStatus st,
                    std::vector<std::size_t>& basics) {
    switch (st) {
      case BasisStatus::Basic:
        status_[j] = BasisStatus::Basic;
        basics.push_back(j);  // value filled in by refactorize()
        return;
      case BasisStatus::AtLower:
        if (lb_[j] == -kInf) break;
        status_[j] = BasisStatus::AtLower;
        value_[j] = lb_[j];
        return;
      case BasisStatus::AtUpper:
        if (ub_[j] == kInf) break;
        status_[j] = BasisStatus::AtUpper;
        value_[j] = ub_[j];
        return;
      case BasisStatus::Free:
        if (lb_[j] == -kInf && ub_[j] == kInf) {
          status_[j] = BasisStatus::Free;
          value_[j] = 0.0;
          return;
        }
        break;
    }
    set_nonbasic_start(j);
  }

  double phase1_objective() const {
    double s = 0.0;
    for (std::size_t r = 0; r < m_; ++r) s += value_[artificial(r)];
    return s;
  }

  Solution run_cold_impl() {
    Solution sol;

    // Phase 1: minimize the sum of artificials.
    for (std::size_t r = 0; r < m_; ++r) cost_[artificial(r)] = 1.0;
    if (!refactorize()) {
      singular_failure_ = true;
      sol.status = Status::Infeasible;
      return sol;
    }
    const auto p1 = primal(/*phase2=*/false, sol.iterations);
    if (p1 == Status::IterationLimit) {
      sol.status = Status::IterationLimit;
      return sol;
    }
    if (singular_failure_) {
      sol.status = Status::Infeasible;
      return sol;
    }
    polish();  // eta drift could otherwise mis-measure the phase-1 residual
    if (phase1_objective() > infeas_tol()) {
      sol.status = Status::Infeasible;
      return sol;
    }

    // Phase 2: real costs; artificials pinned to zero.
    for (std::size_t r = 0; r < m_; ++r) {
      const std::size_t a = artificial(r);
      cost_[a] = 0.0;
      ub_[a] = 0.0;
      if (status_[a] != BasisStatus::Basic) status_[a] = BasisStatus::AtLower;
    }
    for (std::size_t j = 0; j < n_; ++j) cost_[j] = model_.objective(j);
    const auto p2 = primal(/*phase2=*/true, sol.iterations);
    finalize(sol, p2);
    return sol;
  }

  Solution run_warm_impl() {
    Solution sol;
    sol.warm_started = true;
    for (std::size_t j = 0; j < n_; ++j) cost_[j] = model_.objective(j);

    const auto repaired = dual_repair(sol.iterations);
    if (repaired == Status::Infeasible) {
      sol.status = Status::Infeasible;
      return sol;
    }
    if (repaired != Status::Optimal || singular_failure_) {
      // Iteration trouble or a singular update: abandon the warm path; the
      // caller falls back to a cold solve.
      warm_trouble_ = true;
      sol.status = Status::IterationLimit;
      return sol;
    }
    const auto p2 = primal(/*phase2=*/true, sol.iterations);
    if (p2 == Status::IterationLimit || singular_failure_) {
      warm_trouble_ = true;
      sol.status = Status::IterationLimit;
      return sol;
    }
    // The warm ladder went dual repair -> primal phase 2 and held: one node
    // re-solve that never ran primal phase 1 (abandoned attempts never
    // reach this point, and their stats are discarded by the caller).
    if (p2 == Status::Optimal) ++stats_.dual_phase1_avoided;
    finalize(sol, p2);
    return sol;
  }

  // -- Basis-inverse maintenance --------------------------------------------

  /// True when pivots use Forrest-Tomlin factor updates; false on the
  /// product-form eta paths (requested explicitly, or forced dense).
  bool use_ft() const {
    return !opt_.force_dense &&
           opt_.basis_update == BasisUpdate::ForrestTomlin;
  }

  /// True when the factorization carries any post-refactorization updates
  /// (eta or FT), i.e. solves are no longer against fresh factors.
  bool stale_factor() const {
    return !etas_.empty() || (ft_factor_ && ft_factor_->updates() > 0);
  }

  /// Rebuilds the factorization of the current basis (Markowitz sparse LU,
  /// or dense LU under force_dense), drops the eta file / accumulated FT
  /// updates, and recomputes basic values x_B = B^{-1} (-N x_N) exactly.
  /// Returns false (leaving the previous factorization and values
  /// untouched) if the basis is numerically singular.
  bool refactorize() {
    if (m_ == 0) return true;
    std::size_t bnnz = 0;
    if (opt_.force_dense) {
      linalg::Matrix b(m_, m_);
      for (std::size_t i = 0; i < m_; ++i) {
        for_col(basis_[i], [&](std::size_t r, double v) {
          b(r, i) = v;
          ++bnnz;
        });
      }
      auto factor = linalg::LU::factor(b);
      if (!factor) return false;
      dense_factor_ = std::move(factor);
      sparse_factor_.reset();
      ft_factor_.reset();
      stats_.lu_fill = m_ * m_;
    } else {
      std::vector<std::vector<linalg::SparseEntry>> bcols(m_);
      for (std::size_t i = 0; i < m_; ++i) {
        for_col(basis_[i], [&](std::size_t r, double v) {
          bcols[i].push_back({r, v});
        });
        bnnz += bcols[i].size();
      }
      auto factor = linalg::SparseLU::factor(m_, bcols);
      if (!factor) return false;
      dense_factor_.reset();
      stats_.lu_fill = factor->nnz();
      if (use_ft()) {
        // The updatable wrapper owns a copy of the factors; the plain
        // SparseLU is not kept around.
        ft_factor_.emplace(*factor);
        sparse_factor_.reset();
      } else {
        sparse_factor_ = std::move(factor);
        ft_factor_.reset();
      }
    }
    ++stats_.refactorizations;
    stats_.basis_nnz = bnnz;
    etas_.clear();

    std::vector<double> rhs(m_, 0.0);
    for (std::size_t j = 0; j < total_cols(); ++j) {
      if (status_[j] == BasisStatus::Basic || value_[j] == 0.0) continue;
      const double xj = value_[j];
      for_col(j, [&](std::size_t r, double v) { rhs[r] -= v * xj; });
    }
    const auto xb = base_solve(std::move(rhs));
    for (std::size_t i = 0; i < m_; ++i) value_[basis_[i]] = xb[i];
    return true;
  }

  /// Best-effort exact recomputation of basic values (used before reading
  /// values after a run of basis updates); never flags failure.
  void polish() {
    if (stale_factor() || m_ == 0) refactorize();
  }

  std::vector<double> base_solve(std::vector<double> v) const {
    if (ft_factor_) return ft_factor_->solve(std::move(v));
    if (sparse_factor_) return sparse_factor_->solve(std::move(v));
    return dense_factor_->solve(v);
  }

  std::vector<double> base_solve_transpose(std::vector<double> v) const {
    if (ft_factor_) return ft_factor_->solve_transpose(std::move(v));
    if (sparse_factor_) return sparse_factor_->solve_transpose(std::move(v));
    return dense_factor_->solve_transpose(v);
  }

  /// Work (factor entries touched, i.e. multiply-adds) of one triangular
  /// solve pair, and the cost a dense kernel pays for the same call. The
  /// L+U nonzero count is at most m^2, so sparse never bills more than
  /// dense (FT factors, whose stored fill can transiently exceed that, are
  /// clamped). A forced-dense run is billed the dense cost by definition —
  /// it models the dense baseline.
  std::size_t base_solve_work() const {
    if (ft_factor_) return std::min(ft_factor_->nnz(), m_ * m_);
    if (sparse_factor_ && !opt_.force_dense) return sparse_factor_->nnz();
    return m_ * m_;
  }

  /// Basis updates currently folded into the solves: FT column
  /// replacements, or the eta-file length. Sets the dense-kernel baseline
  /// (a dense code pays m per product-form update on every solve).
  std::size_t update_count() const {
    return ft_factor_ ? ft_factor_->updates() : etas_.size();
  }

  /// v := B^{-1} v via the factorization plus the eta file (in update
  /// order; empty under FT updates, which live inside the factors). Etas
  /// whose pivot component is exactly zero are skipped — the hypersparsity
  /// fast path that makes unit-vector solves cheap.
  std::vector<double> ftran(std::vector<double> v) const {
    if (m_ == 0) return v;
    std::size_t work = base_solve_work();
    v = base_solve(std::move(v));
    for (const Eta& e : etas_) {
      const double t = v[e.p] / e.wp;
      v[e.p] = t;
      ++work;
      if (t == 0.0) continue;
      work += e.nz.size();
      for (const auto& [i, w] : e.nz) v[i] -= w * t;
    }
    bill_kernel(work);
    return v;
  }

  /// ftran for the entering column: identical solve, but under FT updates
  /// the factor also captures the partially transformed column (the spike)
  /// a following push_update(p, ...) will splice into U.
  std::vector<double> ftran_entering(std::vector<double> v) {
    if (m_ == 0) return v;
    if (!ft_factor_) return ftran(std::move(v));
    const std::size_t work = base_solve_work();
    v = ft_factor_->solve_entering(std::move(v));
    bill_kernel(work);
    return v;
  }

  /// v := B^{-T} v (eta file in reverse order, then the factor transpose).
  std::vector<double> btran(std::vector<double> v) const {
    if (m_ == 0) return v;
    std::size_t work = base_solve_work();
    for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
      const Eta& e = *it;
      double s = 0.0;
      for (const auto& [i, w] : e.nz) s += w * v[i];
      v[e.p] = (v[e.p] - s) / e.wp;
      work += e.nz.size() + 1;
    }
    bill_kernel(work);
    return base_solve_transpose(std::move(v));
  }

  void bill_kernel(std::size_t work) const {
    const std::size_t dense_work = m_ * m_ + update_count() * m_;
    stats_.kernel_flops +=
        opt_.force_dense ? dense_work : std::min(work, dense_work);
    stats_.kernel_dense_flops += dense_work;
  }

  /// Records the pivot (row p, direction w) in the basis factorization: a
  /// Forrest-Tomlin column replacement (with adaptive refactorization on
  /// fill growth or an unstable update, and the interval as backstop), or a
  /// product-form eta with the fixed-interval rebuild. Returns false on a
  /// singular rebuild.
  bool push_update(std::size_t p, const std::vector<double>& w) {
    ++stats_.pivots;
    if (ft_factor_) {
      const std::size_t fill_before = ft_factor_->update_fill();
      if (ft_factor_->update(p) == linalg::UpdatableLU::UpdateResult::Ok) {
        ++stats_.ft_updates;
        stats_.ft_fill_nnz += ft_factor_->update_fill() - fill_before;
        if (ft_factor_->nnz() >
            static_cast<double>(ft_factor_->base_fill()) *
                opt_.refactor_fill_ratio) {
          ++stats_.refactor_fill_hits;
          return refactorize();
        }
        if (ft_factor_->updates() >= opt_.refactor_interval) {
          ++stats_.refactor_interval_hits;
          return refactorize();
        }
        return true;
      }
      // The replacement left a negligible diagonal: the updated factors are
      // unusable, so rebuild from the (already pivoted) basis.
      ++stats_.refactor_drift_hits;
      return refactorize();
    }
    Eta e;
    e.p = p;
    e.wp = w[p];
    for (std::size_t i = 0; i < m_; ++i) {
      if (i == p) continue;
      if (w[i] != 0.0 || opt_.force_dense) e.nz.push_back({i, w[i]});
    }
    stats_.eta_nnz += e.nz.size() + 1;
    stats_.eta_dense_nnz += m_;
    etas_.push_back(std::move(e));
    if (etas_.size() >= opt_.refactor_interval) return refactorize();
    return true;
  }

  void compute_duals() {
    if (m_ == 0) {
      duals_.clear();
      return;
    }
    std::vector<double> cb(m_);
    for (std::size_t i = 0; i < m_; ++i) cb[i] = cost_[basis_[i]];
    duals_ = btran(std::move(cb));
  }

  double reduced_cost(std::size_t j) const {
    double d = cost_[j];
    for_col(j, [&](std::size_t r, double v) { d -= duals_[r] * v; });
    return d;
  }

  // -- Pricing ---------------------------------------------------------------

  /// Favorable movement direction for nonbasic j with reduced cost d
  /// (+1 increase, -1 decrease, 0 none).
  int favorable(std::size_t j, double d) const {
    if ((status_[j] == BasisStatus::AtLower ||
         status_[j] == BasisStatus::Free) &&
        d < -opt_.optimality_tol)
      return +1;
    if ((status_[j] == BasisStatus::AtUpper ||
         status_[j] == BasisStatus::Free) &&
        d > opt_.optimality_tol)
      return -1;
    return 0;
  }

  /// Candidate-list partial pricing under a Devex reference framework.
  ///
  /// Below this column count a full pricing sweep is cheaper than the
  /// bookkeeping it would save, so every pivot scores every column. This is
  /// a path-quality decision as much as a speed one: the OA master LPs the
  /// B&B solves are massively degenerate, and their downstream cuts and
  /// branching choices key off which alternative-optimum vertex the simplex
  /// settles on. Entering columns chosen from a restricted candidate list
  /// walk the basis to erratic vertices and were measured to inflate the
  /// FMO T32 search from ~400 nodes to tens of thousands; a global argmax
  /// under consistently maintained weights keeps the tree small. The large
  /// selector LPs (tens of thousands of columns, shallow trees) are where
  /// per-pivot sweeps actually dominate runtime, and only they take the
  /// candidate-list path.
  static constexpr std::size_t kPartialPricingMinCols = 4096;

  /// Candidate-list partial pricing under a Devex reference framework.
  ///
  /// Small LPs (see kPartialPricingMinCols) score every column each pivot;
  /// the favorable set doubles as the candidate list so Devex weight
  /// maintenance covers everything the next round scores. Large LPs
  /// re-price only the surviving candidates; when the list runs dry, one
  /// full sweep under a restarted reference frame refills it with the
  /// globally strongest columns (capped so per-pivot work stays
  /// proportional to the list). The entering variable maximizes
  /// d^2 / devex weight. In every mode "no entering column" is only
  /// reported after a fruitless sweep of all columns, so optimality claims
  /// are exactly as strong as a full Dantzig sweep's.
  std::pair<std::optional<std::size_t>, int> price_devex() {
    std::optional<std::size_t> best;
    int best_dir = 0;
    double best_score = 0.0;
    auto consider = [&](std::size_t j) {
      if (status_[j] == BasisStatus::Basic || lb_[j] == ub_[j]) return 0.0;
      const double d = reduced_cost(j);
      const int dir = favorable(j, d);
      if (dir == 0) return 0.0;
      const double score = d * d / devex_w_[j];
      if (!best || score > best_score) {
        best = j;
        best_dir = dir;
        best_score = score;
      }
      return score;
    };

    const std::size_t total = total_cols();
    if (total <= kPartialPricingMinCols) {
      cand_.clear();
      for (std::size_t j = 0; j < total; ++j) {
        if (consider(j) > 0.0) cand_.push_back(j);
      }
      return {best, best_dir};
    }

    // Re-price the surviving candidates.
    std::vector<std::size_t> alive;
    alive.reserve(cand_.size());
    for (const std::size_t j : cand_) {
      if (consider(j) > 0.0) alive.push_back(j);
    }
    cand_.swap(alive);

    if (cand_.empty()) {
      // Restart the reference framework: weights updated while a column sat
      // on the list are meaningless next to the untouched weight 1.0 of
      // every column priced out of the list, and ranking a full sweep on
      // that mix picks erratic entering columns. A fresh frame scores the
      // sweep by plain d^2 and lets the list carry Devex weights from there.
      devex_w_.assign(total, 1.0);
      best = std::nullopt;
      best_dir = 0;
      best_score = 0.0;
      std::vector<std::pair<double, std::size_t>> scored;
      for (std::size_t j = 0; j < total; ++j) {
        const double score = consider(j);
        if (score > 0.0) scored.emplace_back(score, j);
      }
      const std::size_t keep =
          std::min(scored.size(), std::max<std::size_t>(64, total / 16));
      // Deterministic strongest-first order: score descending, index
      // ascending among exact ties.
      std::partial_sort(scored.begin(), scored.begin() + keep, scored.end(),
                        [](const auto& a, const auto& b) {
                          return a.first != b.first ? a.first > b.first
                                                    : a.second < b.second;
                        });
      cand_.reserve(keep);
      for (std::size_t t = 0; t < keep; ++t) cand_.push_back(scored[t].second);
    }
    return {best, best_dir};
  }

  /// Devex weight maintenance after a basis change in row p with entering
  /// column q and direction w = B^{-1} A_q. Reference-framework updates are
  /// restricted to the current candidate list (the only columns the next
  /// pricing round will score), which keeps the cost of the rho = B^{-T} e_p
  /// solve and the per-candidate dot products proportional to the list size.
  void devex_update(std::size_t p, std::size_t q, std::size_t leave,
                    const std::vector<double>& w) {
    const double apq = w[p];
    const double wq = devex_w_[q];
    if (!cand_.empty()) {
      std::vector<double> e(m_, 0.0);
      e[p] = 1.0;
      const std::vector<double> rho = btran(std::move(e));
      for (const std::size_t j : cand_) {
        if (j == q) continue;
        double apj = 0.0;
        for_col(j, [&](std::size_t r, double v) {
          if (rho[r] != 0.0) apj += rho[r] * v;
        });
        const double grown = (apj / apq) * (apj / apq) * wq;
        if (grown > devex_w_[j]) devex_w_[j] = grown;
      }
    }
    devex_w_[leave] = std::max(wq / (apq * apq), 1.0);
    // A runaway reference weight means the frame is stale: restart it.
    if (wq > 1e6) devex_w_.assign(devex_w_.size(), 1.0);
  }

  // -- Primal simplex --------------------------------------------------------

  /// One primal phase. Assumes a valid factorization and current values.
  /// Updates `iterations` cumulatively.
  Status primal(bool phase2, std::size_t& iterations) {
    std::size_t degenerate_run = 0;
    devex_w_.assign(total_cols(), 1.0);
    cand_.clear();
    while (iterations < opt_.max_iterations) {
      compute_duals();

      const bool bland = degenerate_run >= opt_.bland_threshold;
      std::optional<std::size_t> entering;
      int direction = 0;
      if (bland) {
        // Bland's rule: smallest-index favorable column, full scan.
        for (std::size_t j = 0; j < total_cols(); ++j) {
          if (status_[j] == BasisStatus::Basic) continue;
          if (lb_[j] == ub_[j]) continue;  // fixed, cannot move
          const int dir = favorable(j, reduced_cost(j));
          if (dir != 0) {
            entering = j;
            direction = dir;
            break;
          }
        }
      } else {
        std::tie(entering, direction) = price_devex();
      }
      if (!entering) return Status::Optimal;  // phase optimum reached

      const std::size_t q = *entering;

      // Direction of basic variables: delta x_B = -dir * B^{-1} A_q.
      std::vector<double> w;
      if (m_ > 0) {
        std::vector<double> aq(m_, 0.0);
        for_col(q, [&](std::size_t r, double v) { aq[r] = v; });
        w = ftran_entering(std::move(aq));
      }

      // Ratio test. The pivot tolerance is relative to the direction's
      // scale: accepting a pivot many orders below ||w|| makes the next
      // basis numerically singular.
      double wmax = 0.0;
      for (double wi : w) wmax = std::max(wmax, std::fabs(wi));
      const double kPivTol = 1e-9 * std::max(1.0, wmax);
      double t_own = kInf;  // entering variable's own range
      if (lb_[q] != -kInf && ub_[q] != kInf) t_own = ub_[q] - lb_[q];
      double t_star = t_own;
      std::optional<std::size_t> leaving_pos;
      bool leaving_at_upper = false;
      for (std::size_t i = 0; i < m_; ++i) {
        const double delta = -direction * w[i];
        const std::size_t b = basis_[i];
        double limit = kInf;
        bool at_upper = false;
        if (delta > kPivTol) {
          if (ub_[b] != kInf) {
            limit = (ub_[b] - value_[b]) / delta;
            at_upper = true;
          }
        } else if (delta < -kPivTol) {
          if (lb_[b] != -kInf) {
            limit = (lb_[b] - value_[b]) / delta;
            at_upper = false;
          }
        } else {
          continue;
        }
        limit = std::max(limit, 0.0);  // numerical guard
        if (limit < t_star - 1e-12 ||
            (limit < t_star + 1e-12 && leaving_pos &&
             basis_[i] < basis_[*leaving_pos])) {
          t_star = limit;
          leaving_pos = i;
          leaving_at_upper = at_upper;
        }
      }

      if (t_star == kInf) {
        // No blocking bound anywhere. Phase 1 has a bounded objective, so
        // this can only legitimately happen in phase 2.
        return phase2 ? Status::Unbounded : Status::Infeasible;
      }

      // A pivot far below the direction's scale makes the basis update
      // ill-conditioned; with a stale factorization, rebuild and retry the
      // iteration from exact data before accepting it.
      if (leaving_pos && t_star < t_own - 1e-12 && stale_factor() &&
          std::fabs(w[*leaving_pos]) < 1e-7 * std::max(1.0, wmax)) {
        ++stats_.refactor_drift_hits;
        if (!fresh_factor()) return Status::Infeasible;
        continue;
      }

      ++iterations;
      degenerate_run = t_star <= 1e-10 ? degenerate_run + 1 : 0;

      if (!leaving_pos || t_star >= t_own - 1e-12) {
        // Bound flip: the entering variable runs to its opposite bound.
        HSLB_ASSERT(t_own != kInf);
        const double old = value_[q];
        status_[q] = status_[q] == BasisStatus::AtLower ? BasisStatus::AtUpper
                                                        : BasisStatus::AtLower;
        value_[q] = status_[q] == BasisStatus::AtLower ? lb_[q] : ub_[q];
        const double delta = value_[q] - old;
        for (std::size_t i = 0; i < m_; ++i) {
          if (w[i] != 0.0) value_[basis_[i]] -= w[i] * delta;
        }
        continue;
      }

      // Pivot: entering becomes basic, leaving goes to the bound it hit.
      const std::size_t p = *leaving_pos;
      const std::size_t leave = basis_[p];
      const double delta_q = direction * t_star;
      for (std::size_t i = 0; i < m_; ++i) {
        if (i == p) continue;
        if (w[i] != 0.0) value_[basis_[i]] -= w[i] * delta_q;
      }
      value_[q] = value_[q] + delta_q;
      status_[q] = BasisStatus::Basic;
      status_[leave] =
          leaving_at_upper ? BasisStatus::AtUpper : BasisStatus::AtLower;
      value_[leave] = leaving_at_upper ? ub_[leave] : lb_[leave];
      basis_[p] = q;
      if (!bland) devex_update(p, q, leave, w);
      if (!phase2) ++stats_.phase1_pivots;
      if (!push_update(p, w)) return Status::Infeasible;
    }
    return Status::IterationLimit;
  }

  // -- Dual simplex ----------------------------------------------------------

  /// Restores primal feasibility of a (near) dual-feasible basis: repeatedly
  /// drives the most-violating basic variable to the bound it violates,
  /// choosing the entering variable by the bounded-variable dual ratio test.
  /// Returns Optimal when primal feasible, Infeasible on a certificate (the
  /// violating row cannot be repaired by any in-bounds move of the
  /// nonbasics), IterationLimit on trouble.
  Status dual_repair(std::size_t& iterations) {
    while (iterations < opt_.max_iterations) {
      std::optional<std::size_t> pos;
      double worst = 0.0;
      bool above = false;
      for (std::size_t i = 0; i < m_; ++i) {
        const std::size_t b = basis_[i];
        const double v = value_[b];
        if (ub_[b] != kInf) {
          const double viol = v - ub_[b];
          if (viol > opt_.feasibility_tol * (1.0 + std::fabs(ub_[b])) &&
              viol > worst) {
            worst = viol;
            pos = i;
            above = true;
          }
        }
        if (lb_[b] != -kInf) {
          const double viol = lb_[b] - v;
          if (viol > opt_.feasibility_tol * (1.0 + std::fabs(lb_[b])) &&
              viol > worst) {
            worst = viol;
            pos = i;
            above = false;
          }
        }
      }
      if (!pos) return Status::Optimal;  // primal feasible

      const std::size_t p = *pos;
      const std::size_t leave = basis_[p];

      // Row p of B^{-1} A for the nonbasic columns, via rho = B^{-T} e_p.
      // rho is hypersparse for a local repair, so the alpha row is built by
      // walking only the CSR rows where rho is nonzero (plus the implicit
      // slack/artificial singletons of those rows) instead of pricing every
      // column of the tableau.
      std::vector<double> e(m_, 0.0);
      e[p] = 1.0;
      const std::vector<double> rho = btran(std::move(e));
      compute_duals();

      alpha_scatter_.clear();
      for (std::size_t r = 0; r < m_; ++r) {
        const double rr = rho[r];
        if (rr == 0.0) continue;
        for (const auto& [c, v] : arows_.col(r)) {
          alpha_scatter_.add(c, rr * v);
        }
        alpha_scatter_.add(slack(r), -rr);
        alpha_scatter_.add(artificial(r), art_sign_[r] * rr);
      }
      double alpha_max = 0.0;
      for (const std::size_t j : alpha_scatter_.pattern()) {
        if (status_[j] == BasisStatus::Basic || lb_[j] == ub_[j]) continue;
        alpha_max = std::max(alpha_max, std::fabs(alpha_scatter_[j]));
      }
      const double atol = 1e-9 * std::max(1.0, alpha_max);

      // Dual ratio test: candidates are moves that reduce the violation;
      // among them the smallest reduced-cost ratio keeps dual feasibility.
      // Sign convention: with asign = alpha for an above-upper violation and
      // -alpha below-lower, candidates are at-lower columns with asign > 0,
      // at-upper columns with asign < 0, and free columns either way.
      // Columns outside the scatter pattern have alpha exactly 0 and can
      // never be candidates.
      std::optional<std::size_t> entering;
      double best_ratio = kInf;
      for (const std::size_t j : alpha_scatter_.pattern()) {
        if (status_[j] == BasisStatus::Basic || lb_[j] == ub_[j]) continue;
        const double asign = above ? alpha_scatter_[j] : -alpha_scatter_[j];
        bool candidate = false;
        if (status_[j] == BasisStatus::Free) {
          candidate = std::fabs(asign) > atol;
        } else if (status_[j] == BasisStatus::AtLower) {
          candidate = asign > atol;
        } else {  // AtUpper
          candidate = asign < -atol;
        }
        if (!candidate) continue;
        const double d = reduced_cost(j);
        // Dual feasibility makes d/asign >= 0 (free columns have d ~ 0);
        // the max() guards round-off drift.
        const double ratio = std::max(0.0, std::fabs(d) / std::fabs(asign));
        if (ratio < best_ratio - 1e-12 ||
            (ratio < best_ratio + 1e-12 && entering && j < *entering)) {
          best_ratio = ratio;
          entering = j;
        }
      }
      if (!entering) {
        // Certificate: every in-bounds move of the nonbasics increases (or
        // cannot change) the violated row value — the row is infeasible.
        // Valid regardless of dual feasibility: it only reads the signs of
        // row p of B^{-1} A at the current vertex.
        return Status::Infeasible;
      }

      const std::size_t q = *entering;
      std::vector<double> w;
      {
        std::vector<double> aq(m_, 0.0);
        for_col(q, [&](std::size_t r, double v) { aq[r] = v; });
        w = ftran_entering(std::move(aq));
      }
      double wmax = 0.0;
      for (double wi : w) wmax = std::max(wmax, std::fabs(wi));
      if (std::fabs(w[p]) < 1e-7 * std::max(1.0, wmax)) {
        if (stale_factor()) {
          // The updated factors disagree with the fresh direction: rebuild
          // from exact data and retry this iteration.
          ++stats_.refactor_drift_hits;
          if (!fresh_factor()) return Status::Infeasible;
          continue;
        }
        return Status::IterationLimit;  // genuinely tiny pivot: abandon warm
      }

      const double target = above ? ub_[leave] : lb_[leave];
      const double delta_q = (value_[leave] - target) / w[p];
      for (std::size_t i = 0; i < m_; ++i) {
        if (i == p) continue;
        if (w[i] != 0.0) value_[basis_[i]] -= w[i] * delta_q;
      }
      value_[q] += delta_q;
      status_[q] = BasisStatus::Basic;
      status_[leave] = above ? BasisStatus::AtUpper : BasisStatus::AtLower;
      value_[leave] = target;
      basis_[p] = q;
      ++stats_.dual_pivots;
      if (!push_update(p, w)) return Status::Infeasible;
      ++iterations;
    }
    return Status::IterationLimit;
  }

  /// Refactorizes from the current basis; flags singular_failure_ on
  /// failure so callers can retry cold / under Bland's rule.
  bool fresh_factor() {
    if (refactorize()) return true;
    log::debug() << "simplex: singular basis (m=" << m_ << ", n=" << n_ << ")";
    singular_failure_ = true;
    return false;
  }

  /// Shared phase-2 epilogue: extracts the solution, polishes values,
  /// snapshots the basis.
  void finalize(Solution& sol, Status p2) {
    if (singular_failure_) {
      sol.status = Status::Infeasible;
      return;
    }
    sol.status = p2;
    if (p2 == Status::Optimal) polish();
    sol.x.assign(value_.begin(), value_.begin() + static_cast<std::ptrdiff_t>(n_));
    compute_duals();
    // Duals of the scaled rows map back by dividing by the row scale.
    sol.duals = duals_;
    for (std::size_t r = 0; r < sol.duals.size(); ++r)
      sol.duals[r] /= row_scale_[r];
    sol.objective = 0.0;
    for (std::size_t j = 0; j < n_; ++j)
      sol.objective += model_.objective(j) * sol.x[j];
    if (p2 == Status::Optimal) {
      double viol = 0.0;
      for (std::size_t r = 0; r < m_; ++r) {
        const double act = model_.row_activity(r, sol.x);
        if (model_.row_lower(r) != -kInf)
          viol = std::max(viol, model_.row_lower(r) - act);
        if (model_.row_upper(r) != kInf)
          viol = std::max(viol, act - model_.row_upper(r));
      }
      // Variable bounds too: a solution inside every row but outside a box
      // is just as infeasible (and is what a buggy warm repair would give).
      for (std::size_t j = 0; j < n_; ++j) {
        if (lb_[j] != -kInf) viol = std::max(viol, lb_[j] - sol.x[j]);
        if (ub_[j] != kInf) viol = std::max(viol, sol.x[j] - ub_[j]);
      }
      sol.max_primal_violation = viol;
      snapshot_basis(sol.basis);
    }
  }

  void snapshot_basis(Basis& out) const {
    out.cols.assign(status_.begin(),
                    status_.begin() + static_cast<std::ptrdiff_t>(n_));
    out.rows.resize(m_);
    for (std::size_t r = 0; r < m_; ++r) out.rows[r] = status_[slack(r)];
    // A degenerate basic artificial (at zero) is recorded as its row's slack
    // being basic: the slack column is the artificial's up to sign, so the
    // recorded basis stays nonsingular and artificial-free.
    for (std::size_t i = 0; i < m_; ++i) {
      if (basis_[i] >= n_ + m_) out.rows[basis_[i] - n_ - m_] = BasisStatus::Basic;
    }
  }

  const Model& model_;
  const Options& opt_;
  std::size_t n_, m_;
  linalg::SparseMatrix acols_;  // scaled structural columns (CSC)
  linalg::SparseMatrix arows_;  // their CSR companion (row traversals)
  std::vector<double> art_sign_;
  std::vector<double> lb_, ub_, cost_, value_;
  std::vector<BasisStatus> status_;
  std::vector<std::size_t> basis_;
  std::vector<double> row_scale_;
  std::optional<linalg::LU> dense_factor_;
  std::optional<linalg::SparseLU> sparse_factor_;
  std::optional<linalg::UpdatableLU> ft_factor_;
  std::vector<Eta> etas_;
  std::vector<double> duals_;
  // Pricing state.
  std::vector<double> devex_w_;
  std::vector<std::size_t> cand_;
  linalg::Scatter alpha_scatter_;
  // Mutable: ftran/btran are const solves but account their kernel work.
  mutable SolveStats stats_;
  bool singular_failure_ = false;
  bool warm_trouble_ = false;
};

}  // namespace

Solution solve(const Model& model, const Options& options) {
  // Crossed boxes (branching artifacts) make the simplex loops meaningless;
  // the model is trivially infeasible.
  for (std::size_t j = 0; j < model.num_cols(); ++j) {
    if (model.col_lower(j) > model.col_upper(j)) {
      Solution sol;
      sol.status = Status::Infeasible;
      return sol;
    }
  }
  for (std::size_t r = 0; r < model.num_rows(); ++r) {
    if (model.row_lower(r) > model.row_upper(r)) {
      Solution sol;
      sol.status = Status::Infeasible;
      return sol;
    }
  }

  if (options.warm_start != nullptr && !options.warm_start->empty()) {
    Tableau t(model, options);
    if (t.init_warm(*options.warm_start)) {
      Solution sol = t.run_warm();
      // Audit the warm answer: dual repair plus primal cleanup must land on
      // a genuinely feasible vertex. If it did not, the snapshot basis was
      // stale in a way the ladder missed — discard and solve cold.
      double bound_scale = 0.0;
      for (std::size_t r = 0; r < model.num_rows(); ++r) {
        if (model.row_lower(r) != -kInf)
          bound_scale = std::max(bound_scale, std::fabs(model.row_lower(r)));
        if (model.row_upper(r) != kInf)
          bound_scale = std::max(bound_scale, std::fabs(model.row_upper(r)));
      }
      const bool feasible_enough =
          sol.status != Status::Optimal ||
          sol.max_primal_violation <=
              100.0 * options.feasibility_tol * (1.0 + bound_scale);
      if (!t.singular_failure() && !t.warm_trouble() && feasible_enough)
        return sol;
      log::debug() << "simplex: warm start abandoned; cold solve";
    }
  }

  Options cold = options;
  cold.warm_start = nullptr;
  if (cold.presolve) {
    cold.presolve = false;  // the reduced model is solved plainly
    PresolveOptions popt;
    popt.feasibility_tol = options.feasibility_tol;
    const Presolve pre = Presolve::run(model, popt);
    if (pre.status() == Presolve::Status::Infeasible) {
      Solution sol;
      sol.status = Status::Infeasible;
      sol.stats.presolve_rows_removed = pre.rows_removed();
      sol.stats.presolve_cols_removed = pre.cols_removed();
      sol.stats.presolve_bounds_tightened = pre.bounds_tightened();
      return sol;
    }
    if (pre.effective()) {
      Solution red;
      if (pre.reduced().num_cols() == 0) {
        // Everything was fixed or substituted out; the empty LP is solved.
        red.status = Status::Optimal;
      } else {
        red = solve(pre.reduced(), cold);
      }
      Solution full = pre.postsolve(model, red);
      full.stats.presolve_rows_removed += pre.rows_removed();
      full.stats.presolve_cols_removed += pre.cols_removed();
      full.stats.presolve_bounds_tightened += pre.bounds_tightened();
      return full;
    }
  }
  Tableau t(model, cold);
  t.init_cold();
  Solution sol = t.run_cold();
  if (t.singular_failure()) {
    // Retry once from scratch under Bland's rule: its conservative pivot
    // choices avoid the aggressive Dantzig path that went singular.
    Options retry = cold;
    retry.bland_threshold = 0;
    Tableau t2(model, retry);
    t2.init_cold();
    sol = t2.run_cold();
    if (t2.singular_failure()) {
      log::warn() << "simplex: singular basis persisted after Bland retry";
    }
  }
  return sol;
}

}  // namespace hslb::lp
