#include "service/service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/contracts.hpp"
#include "common/strings.hpp"
#include "fmo/cost.hpp"
#include "fmo/molecule.hpp"
#include "hslb/budget.hpp"
#include "sim/machine.hpp"

namespace hslb::service {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Flattened parameters of every task's cost model — equality with a
/// donor's vector is the validity condition for reusing its cut pool
/// verbatim (same rule as the fmo driver's flatten_fit_params).
std::vector<double> flatten_task_params(std::span<const BudgetTask> tasks) {
  std::vector<double> out;
  for (const auto& t : tasks) {
    for (std::size_t i = 0; i < t.model.num_terms(); ++i) {
      const auto p = t.model.params(i);
      out.insert(out.end(), p.begin(), p.end());
    }
  }
  return out;
}

/// Percent imbalance lambda = (max node busy / mean over ALL nodes - 1) x
/// 100, predicted from the model times: every node of task f's group is
/// busy for T_f seconds, and the mean includes the budget's idle nodes.
double predicted_percent_imbalance(std::span<const double> times,
                                   std::span<const long long> nodes,
                                   long long budget) {
  HSLB_EXPECTS(times.size() == nodes.size());
  double busy = 0.0, worst = 0.0;
  for (std::size_t f = 0; f < times.size(); ++f) {
    busy += times[f] * static_cast<double>(nodes[f]);
    worst = std::max(worst, times[f]);
  }
  const double mean = busy / static_cast<double>(budget);
  if (mean <= 0.0) return 0.0;
  return (worst / mean - 1.0) * 100.0;
}

/// Applies a donor's seed to the B&B options — the cross-instance version
/// of the closed-loop resolve() idiom: donor allocation clamped into the
/// new boxes as candidate incumbent + linearization point, donor optimum
/// re-linearized, donor cuts only on exact fit-parameter match.
void apply_seed(minlp::BnbOptions& bnb, std::span<const BudgetTask> tasks,
                Objective objective, const fmo::SolveSeed& seed,
                const std::vector<double>& fit_params) {
  if (seed.nodes_by_task.size() == tasks.size()) {
    std::vector<long long> warm = seed.nodes_by_task;
    for (std::size_t f = 0; f < tasks.size(); ++f)
      warm[f] = std::clamp(warm[f], tasks[f].min_nodes, tasks[f].max_nodes);
    bnb.seed_incumbent = minlp_warm_start(tasks, warm, objective);
    bnb.seed_points.push_back(bnb.seed_incumbent);
  }
  if (!seed.x.empty()) bnb.seed_points.push_back(seed.x);
  if (!seed.cuts.empty() && seed.fit_params == fit_params)
    bnb.seed_cuts = seed.cuts;
}

fmo::System build_system(const Request& r) {
  const auto n = static_cast<std::size_t>(r.fragments);
  if (r.family == "peptide") {
    return fmo::polypeptide({.residues = n,
                             .scf_cutoff_angstrom = 6.0,
                             .seed = r.system_seed});
  }
  if (r.family == "comm") return fmo::comm_cluster({.fragments = n, .seed = r.system_seed});
  return fmo::water_cluster({.fragments = n,
                             .merge_fraction = 0.4,
                             .scf_cutoff_angstrom = 4.5,
                             .seed = r.system_seed});
}

}  // namespace

double ServiceReport::percentile(double q) const {
  if (latencies.empty()) return 0.0;
  std::vector<double> sorted = latencies;
  std::sort(sorted.begin(), sorted.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

double ServiceReport::requests_per_second() const {
  return wall_seconds > 0.0 ? static_cast<double>(requests) / wall_seconds
                            : 0.0;
}

double ServiceReport::hit_rate() const {
  return requests > 0 ? static_cast<double>(hits) /
                            static_cast<double>(requests)
                      : 0.0;
}

std::string ServiceReport::str() const {
  std::string out = strings::format(
      "service report — %zu requests in %.3f s (%.1f req/s)\n", requests,
      wall_seconds, requests_per_second());
  out += strings::format(
      "  cache    %zu hits / %zu misses (hit rate %.1f%%), %zu evictions\n",
      hits, misses, 100.0 * hit_rate(), evictions);
  out += strings::format(
      "  solves   %zu warm (%zu B&B nodes) / %zu cold (%zu B&B nodes), "
      "%zu audit fallback%s\n",
      warm_solves, warm_bnb_nodes, cold_solves, cold_bnb_nodes,
      audit_fallbacks, audit_fallbacks == 1 ? "" : "s");
  out += strings::format("  latency  p50 %.6f s, p99 %.6f s\n", p50_latency(),
                         p99_latency());
  return out;
}

AllocationService::AllocationService(ServiceOptions options)
    : opt_(options), pool_(options.threads), cache_(options.cache_capacity) {
  HSLB_EXPECTS(opt_.batch >= 1);
}

Response AllocationService::handle(const Request& request) {
  return run_script({request}).front();
}

AllocationService::Solved AllocationService::solve_kind_solve(
    const Request& canonical, const CacheEntry* donor) const {
  std::vector<BudgetTask> tasks;
  tasks.reserve(canonical.tasks.size());
  for (const auto& t : canonical.tasks) {
    tasks.push_back(BudgetTask{t.name, perf::Model{t.a, t.b, t.c, t.d},
                               t.min_nodes, t.max_nodes});
  }

  Solved out;
  Response& resp = out.response;
  std::vector<long long> nodes(tasks.size());

  if (canonical.objective == Objective::MaxMin) {
    // No MINLP encoding for max-min — exact greedy, never warm-seeded.
    resp.allocation = solve_budget(tasks, canonical.budget, canonical.objective);
    resp.status = to_string(canonical.objective) + " exact greedy";
  } else {
    const auto model =
        build_budget_minlp(tasks, canonical.budget, canonical.objective);
    minlp::BnbOptions bnb_opt = opt_.bnb;
    const std::vector<double> fit_params = flatten_task_params(tasks);
    if (donor != nullptr)
      apply_seed(bnb_opt, tasks, canonical.objective, donor->seed, fit_params);
    const auto bnb = minlp::solve(model, bnb_opt);
    resp.status = minlp::to_string(bnb.status);
    resp.bnb_nodes = bnb.nodes;
    resp.bnb_cuts = bnb.cuts;
    resp.warm_seeded = bnb.seed_accepted;
    if (!bnb.has_solution) return out;  // fails the audit; no allocation
    resp.allocation =
        allocation_from_minlp(tasks, bnb.x, canonical.objective);
    out.seed.x = bnb.x;
    out.seed.cuts = bnb.pool_cuts;
    out.seed.fit_params = fit_params;
  }

  for (std::size_t f = 0; f < tasks.size(); ++f)
    nodes[f] = resp.allocation.find(tasks[f].name).nodes;
  std::vector<double> times(tasks.size());
  for (std::size_t f = 0; f < tasks.size(); ++f)
    times[f] = resp.allocation.find(tasks[f].name).predicted_seconds;
  resp.objective_value =
      evaluate_objective(tasks, nodes, canonical.objective);
  resp.predicted_total = resp.objective_value;
  resp.percent_imbalance =
      predicted_percent_imbalance(times, nodes, canonical.budget);
  out.seed.nodes_by_task = nodes;
  return out;
}

AllocationService::Solved AllocationService::solve_kind_fmo(
    const Request& canonical, const CacheEntry* donor) const {
  fmo::PipelineOptions popt;
  popt.fit_points = static_cast<std::size_t>(canonical.fit_points);
  popt.repetitions = static_cast<std::size_t>(canonical.repetitions);
  popt.bench_noise_cv = canonical.noise_cv;
  popt.seed = canonical.bench_seed;
  popt.objective = canonical.objective;
  // Warm seeding lives in the MINLP path, so the service always routes the
  // Solve step through branch-and-bound.
  popt.solve_with_minlp = true;
  popt.bnb = opt_.bnb;
  // Inner stages stay serial: batch-level parallelism owns the pool.
  popt.threads = 1;
  if (std::isfinite(canonical.link_gb) || std::isfinite(canonical.mem_gb)) {
    sim::Machine m = sim::Machine::intrepid_partition(
        static_cast<std::size_t>(canonical.budget));
    m.link_gb_per_s = canonical.link_gb;
    m.memory_gb_per_node = canonical.mem_gb;
    m.page_s_per_gb = canonical.page_s_per_gb;
    popt.run.machine = m;
  }
  if (donor != nullptr) popt.solve_seed = donor->seed;

  const fmo::System sys = build_system(canonical);
  const fmo::CostModel cost;
  const auto res = fmo::run_pipeline(sys, cost, canonical.budget, popt);

  Solved out;
  Response& resp = out.response;
  resp.allocation = res.allocation;
  resp.status = res.report.solver.status;
  resp.bnb_nodes = res.report.solver.nodes;
  resp.bnb_cuts = res.report.solver.cuts;
  resp.warm_seeded = res.seed_accepted;
  resp.predicted_total = res.predicted_scc_seconds;
  resp.actual_total = res.hslb.scc_seconds;
  resp.percent_imbalance = res.report.exec_percent_imbalance;
  std::vector<double> times;
  times.reserve(res.allocation.tasks.size());
  for (const auto& t : res.allocation.tasks) times.push_back(t.predicted_seconds);
  resp.objective_value = fold_objective(canonical.objective, times);
  out.seed = res.solve_export;
  return out;
}

AllocationService::Solved AllocationService::solve_request(
    const Request& canonical, std::uint64_t sig,
    const CacheEntry* donor) const {
  Solved out = canonical.kind == RequestKind::Solve
                   ? solve_kind_solve(canonical, donor)
                   : solve_kind_fmo(canonical, donor);
  out.response.signature = sig;
  out.response.donor_signature = donor != nullptr ? donor->signature : 0;
  return out;
}

bool AllocationService::audit(const Request& canonical,
                              const Response& resp) const {
  if (resp.status == "infeasible") return false;
  if (resp.allocation.tasks.empty()) return false;
  long long total = 0;
  for (const auto& t : resp.allocation.tasks) {
    if (t.nodes < 1) return false;
    if (!std::isfinite(t.predicted_seconds) || t.predicted_seconds < 0.0)
      return false;
    total += t.nodes;
  }
  if (total > canonical.budget) return false;
  if (canonical.kind == RequestKind::Solve) {
    if (resp.allocation.tasks.size() != canonical.tasks.size()) return false;
    for (const auto& spec : canonical.tasks) {
      if (!resp.allocation.contains(spec.name)) return false;
      const long long n = resp.allocation.find(spec.name).nodes;
      if (n < spec.min_nodes || n > spec.max_nodes) return false;
    }
  } else {
    if (resp.allocation.tasks.size() !=
        static_cast<std::size_t>(canonical.fragments))
      return false;
  }
  return std::isfinite(resp.predicted_total) &&
         std::isfinite(resp.objective_value);
}

std::vector<Response> AllocationService::run_script(
    const std::vector<Request>& script) {
  const auto t_run = std::chrono::steady_clock::now();
  std::vector<Response> out(script.size());

  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  struct Pending {
    std::size_t index = 0;  ///< script index of the solving request
    Request canonical;
    std::uint64_t sig = 0;
    const CacheEntry* donor = nullptr;
    Solved solved;
    double solve_seconds = 0.0;
  };

  for (std::size_t begin = 0; begin < script.size(); begin += opt_.batch) {
    const std::size_t end = std::min(begin + opt_.batch, script.size());

    // -- Phase 1: classify (sequential, against the batch-start cache) ------
    // per-request: kNone = cache hit; otherwise index into `work` (either
    // its own solve or an earlier duplicate's).
    std::vector<std::size_t> route(end - begin, kNone);
    std::vector<Pending> work;
    for (std::size_t i = begin; i < end; ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      const Request canonical = canonicalize(script[i]);
      const std::uint64_t sig = signature(canonical);
      if (const CacheEntry* e = cache_.find(sig)) {
        out[i] = e->response;  // payload verbatim: byte-identical contract
        out[i].cache_hit = true;
        out[i].latency_seconds = seconds_since(t0);
        continue;
      }
      std::size_t alias = kNone;
      for (std::size_t w = 0; w < work.size(); ++w) {
        if (work[w].sig == sig) {
          alias = w;
          break;
        }
      }
      if (alias != kNone) {
        route[i - begin] = alias;
        continue;
      }
      Pending p;
      p.index = i;
      p.canonical = std::move(canonical);
      p.sig = sig;
      if (opt_.warm_start) p.donor = cache_.nearest(p.canonical);
      route[i - begin] = work.size();
      work.push_back(std::move(p));
    }

    // -- Phase 2: solve unique misses (parallel) ----------------------------
    pool_.parallel_for(work.size(), [&](std::size_t w) {
      const auto t0 = std::chrono::steady_clock::now();
      work[w].solved =
          solve_request(work[w].canonical, work[w].sig, work[w].donor);
      work[w].solve_seconds = seconds_since(t0);
    });

    // -- Phase 3: commit (sequential, script order) -------------------------
    for (std::size_t i = begin; i < end; ++i) {
      ++report_.requests;
      if (route[i - begin] == kNone) {  // cache hit
        ++report_.hits;
        report_.latencies.push_back(out[i].latency_seconds);
        cache_.touch(out[i].signature);
        continue;
      }
      Pending& p = work[route[i - begin]];
      if (p.index == i) {  // this request ran the solve
        const auto t0 = std::chrono::steady_clock::now();
        if (!audit(p.canonical, p.solved.response)) {
          // Warm result failed the feasibility audit: strip the seeds and
          // re-solve cold. A cold failure too is reported as-is (the
          // instance itself is infeasible, not the seeding).
          p.solved = solve_request(p.canonical, p.sig, nullptr);
          p.solved.response.audit_fallback = true;
          ++report_.audit_fallbacks;
        }
        p.solve_seconds += seconds_since(t0);
        ++report_.misses;
        if (p.solved.response.warm_seeded) {
          ++report_.warm_solves;
          report_.warm_bnb_nodes += p.solved.response.bnb_nodes;
        } else {
          ++report_.cold_solves;
          report_.cold_bnb_nodes += p.solved.response.bnb_nodes;
        }
        out[i] = p.solved.response;
        out[i].latency_seconds = p.solve_seconds;
        report_.latencies.push_back(out[i].latency_seconds);
        CacheEntry entry;
        entry.request = p.canonical;
        entry.signature = p.sig;
        entry.response = p.solved.response;  // payload (metadata is zeroed
        entry.response.cache_hit = false;    //  below for byte-identity)
        entry.response.latency_seconds = 0.0;
        entry.seed = p.solved.seed;
        cache_.insert(std::move(entry));
      } else {  // duplicate of an earlier in-batch request: counts as a hit
        ++report_.hits;
        out[i] = p.solved.response;
        out[i].cache_hit = true;
        out[i].latency_seconds = 0.0;
        report_.latencies.push_back(0.0);
        cache_.touch(p.sig);
      }
    }
  }

  report_.evictions = cache_.evictions();
  report_.wall_seconds += seconds_since(t_run);
  return out;
}

}  // namespace hslb::service
