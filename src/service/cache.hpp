// Bounded LRU solution cache of the allocation service.
//
// Keyed by the canonicalized instance signature (service/protocol.hpp).
// Each entry stores the response payload (for exact-repeat hits, returned
// byte-identically) AND what the solve learned (fmo::SolveSeed: the
// allocation, the MINLP optimum, the cut pool, the fit parameters) so a
// *different* instance can seed its branch-and-bound from the nearest
// cached neighbor (cross-instance warm starts).
//
// Determinism contract: lookups and nearest-neighbor scans are pure
// functions of the entry set and its recency order; ties in nearest() are
// broken toward the most recently used entry, so replaying a request
// script always selects the same donors regardless of wall-clock timing
// or thread count.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "fmo/driver.hpp"
#include "service/protocol.hpp"

namespace hslb::service {

struct CacheEntry {
  Request request;  ///< canonicalized
  std::uint64_t signature = 0;
  Response response;    ///< payload of the solve that populated the entry
  fmo::SolveSeed seed;  ///< donor data for warm-starting neighbors
};

class SolutionCache {
 public:
  explicit SolutionCache(std::size_t capacity);

  /// Exact lookup; nullptr on miss. Does NOT touch recency — call touch()
  /// when the hit is committed (the service defers recency updates to its
  /// sequential commit phase to keep batch classification deterministic).
  const CacheEntry* find(std::uint64_t signature) const;

  /// Moves an entry to most-recently-used. No-op when absent.
  void touch(std::uint64_t signature);

  /// The entry minimizing signature_distance(canonical, entry.request)
  /// over finite distances; nullptr when none is comparable. Ties go to
  /// the more recently used entry. `distance_out`, when non-null, receives
  /// the winning distance.
  const CacheEntry* nearest(const Request& canonical,
                            double* distance_out = nullptr) const;

  /// Inserts (or replaces) the entry and marks it most-recently-used,
  /// evicting the least-recently-used entry beyond capacity.
  void insert(CacheEntry entry);

  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::size_t evictions() const { return evictions_; }

 private:
  std::size_t capacity_;
  /// Front = most recently used.
  std::list<CacheEntry> entries_;
  std::unordered_map<std::uint64_t, std::list<CacheEntry>::iterator> index_;
  std::size_t evictions_ = 0;
};

}  // namespace hslb::service
