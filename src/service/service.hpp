// The allocation service: a long-running front end over the HSLB pipeline.
//
// Requests (service/protocol.hpp) are processed in fixed-size batches over
// one shared ThreadPool. Each batch runs three phases:
//
//   1. classify (sequential): canonicalize + signature each request; an
//      exact signature match against the cache is a hit (the cached payload
//      is returned byte-identically), a duplicate of an earlier request in
//      the same batch aliases its result (also a hit), and every remaining
//      miss selects its warm-start donor — the nearest cached instance by
//      signature_distance — against the cache contents as of the BATCH
//      START;
//   2. solve (parallel): unique misses solve concurrently on the pool,
//      each seeded from its donor (incumbent, re-linearization points,
//      and, when the fitted parameters match exactly, the cut pool);
//   3. commit (sequential, script order): warm results are audited —
//      allocation complete, budget and bounds respected, finite
//      predictions — and a failing result is replaced by a cold re-solve
//      (seeds stripped, audit_fallback flagged); responses are recorded
//      and entries inserted/touched in script order.
//
// Determinism contract: the batch width is part of the SERVICE DEFINITION,
// not a thread knob (exactly like BnbOptions::wave_size) — which requests
// share a batch, which donors they see, and the cache evolution depend
// only on the script and `batch`, never on `threads`. Replaying a script
// under any thread count yields identical response payloads and an
// identical hit/miss sequence; only latencies differ.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "minlp/bnb.hpp"
#include "service/cache.hpp"
#include "service/protocol.hpp"

namespace hslb::service {

struct ServiceOptions {
  /// Worker threads solving a batch's misses (0 = hardware concurrency).
  /// Never affects results — see the determinism contract above.
  std::size_t threads = 1;
  /// Requests per batch (part of the service definition, NOT tied to
  /// `threads`): donors are selected against the cache as of batch start,
  /// so the batch width determines which requests can seed from which.
  std::size_t batch = 8;
  std::size_t cache_capacity = 64;
  /// Master switch for cross-instance warm starts (false = every miss
  /// solves cold; the A/B lever of bench/server_throughput).
  bool warm_start = true;
  /// Branch-and-bound options for every MINLP solve the service runs.
  minlp::BnbOptions bnb;
};

struct ServiceReport {
  std::size_t requests = 0;
  std::size_t hits = 0;    ///< exact-repeat + in-batch duplicates
  std::size_t misses = 0;  ///< actual solves
  std::size_t warm_solves = 0;  ///< misses whose donor seed was accepted
  std::size_t cold_solves = 0;  ///< misses solved with no accepted seed
  std::size_t audit_fallbacks = 0;  ///< warm results replaced by cold
  std::size_t evictions = 0;        ///< LRU evictions (mirror of the cache)
  /// B&B nodes summed over warm-seeded vs cold solves (the bench's
  /// fewer-nodes-when-warm gate reads these).
  std::size_t warm_bnb_nodes = 0;
  std::size_t cold_bnb_nodes = 0;
  /// Per-request latency, seconds, in completion (script) order.
  std::vector<double> latencies;
  double wall_seconds = 0.0;  ///< total run_script wall time

  double p50_latency() const { return percentile(0.50); }
  double p99_latency() const { return percentile(0.99); }
  double requests_per_second() const;
  double hit_rate() const;
  /// Nearest-rank percentile of `latencies` (q in [0, 1]).
  double percentile(double q) const;

  std::string str() const;
};

class AllocationService {
 public:
  explicit AllocationService(ServiceOptions options = {});

  /// One request == a batch of one.
  Response handle(const Request& request);

  /// Replays a request script through the batched phases; responses are in
  /// script order. Malformed requests throw std::invalid_argument.
  std::vector<Response> run_script(const std::vector<Request>& script);

  const ServiceReport& report() const { return report_; }
  const SolutionCache& cache() const { return cache_; }

  /// Testing hook: plant a doctored cache entry (e.g. with a poisoned
  /// seed) to exercise the audit-fallback path.
  void insert_cache_entry(CacheEntry entry) { cache_.insert(std::move(entry)); }

 private:
  struct Solved {
    Response response;
    fmo::SolveSeed seed;  ///< what the solve learned (cached for donors)
  };

  /// Solves one canonicalized request, seeded from `donor` (nullptr =
  /// cold). Pure apart from wall-clock latency stamping.
  Solved solve_request(const Request& canonical, std::uint64_t sig,
                       const CacheEntry* donor) const;
  Solved solve_kind_solve(const Request& canonical,
                          const CacheEntry* donor) const;
  Solved solve_kind_fmo(const Request& canonical,
                        const CacheEntry* donor) const;

  /// Feasibility audit of a solved response against its request: complete
  /// allocation, budget and per-task bounds respected, finite numbers,
  /// solver reached a solution.
  bool audit(const Request& canonical, const Response& response) const;

  ServiceOptions opt_;
  ThreadPool pool_;
  SolutionCache cache_;
  ServiceReport report_;
};

}  // namespace hslb::service
