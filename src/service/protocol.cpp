#include "service/protocol.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "common/hash.hpp"
#include "common/strings.hpp"

namespace hslb::service {

namespace {

/// Quantizes to 6 significant digits via a printf round-trip, so values
/// that agree to measurement precision canonicalize identically (and the
/// signature never depends on sub-tolerance noise). Infinity and zero are
/// fixed points.
double quantize(double v) {
  if (!std::isfinite(v) || v == 0.0) return v == 0.0 ? 0.0 : v;
  return strings::to_double(strings::format("%.6g", v));
}

Objective parse_objective_token(const std::string& s) {
  if (s == "min-max") return Objective::MinMax;
  if (s == "max-min") return Objective::MaxMin;
  if (s == "min-sum") return Objective::MinSum;
  throw std::invalid_argument("unknown objective '" + s +
                              "' (expected min-max, max-min, or min-sum)");
}

std::string objective_token(Objective o) {
  switch (o) {
    case Objective::MinMax: return "min-max";
    case Objective::MaxMin: return "max-min";
    case Objective::MinSum: return "min-sum";
  }
  return "min-max";
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

/// Encodes the solve-kind task list: name:a:b:c:d:min:max entries joined
/// with ';'. Task names therefore must not contain ':' or ';'.
std::string encode_tasks(const std::vector<SolveTaskSpec>& tasks) {
  std::vector<std::string> parts;
  parts.reserve(tasks.size());
  for (const auto& t : tasks) {
    parts.push_back(strings::format("%s:%g:%g:%g:%g:%lld:%lld",
                                    t.name.c_str(), t.a, t.b, t.c, t.d,
                                    t.min_nodes, t.max_nodes));
  }
  return strings::join(parts, ";");
}

std::vector<SolveTaskSpec> decode_tasks(const std::string& s) {
  std::vector<SolveTaskSpec> out;
  for (const auto& part : strings::split(s, ';')) {
    if (part.empty()) continue;
    const auto f = strings::split(part, ':');
    if (f.size() != 7) {
      throw std::invalid_argument(
          "bad task spec '" + part +
          "' (expected name:a:b:c:d:min_nodes:max_nodes)");
    }
    SolveTaskSpec t;
    t.name = f[0];
    t.a = strings::to_double(f[1]);
    t.b = strings::to_double(f[2]);
    t.c = strings::to_double(f[3]);
    t.d = strings::to_double(f[4]);
    t.min_nodes = strings::to_int(f[5]);
    t.max_nodes = strings::to_int(f[6]);
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace

std::string to_string(RequestKind k) {
  return k == RequestKind::Solve ? "solve" : "fmo";
}

Request canonicalize(const Request& r) {
  Request c = r;
  if (c.budget < 1) throw std::invalid_argument("budget must be >= 1");

  if (c.kind == RequestKind::Solve) {
    if (c.tasks.empty())
      throw std::invalid_argument("solve request needs at least one task");
    // Neutralize the fmo-kind fields so they cannot leak into the
    // signature of a solve instance.
    c.family.clear();
    c.fragments = 0;
    c.system_seed = 0;
    c.bench_seed = 0;
    c.noise_cv = 0.0;
    c.fit_points = 0;
    c.repetitions = 0;
    c.link_gb = std::numeric_limits<double>::infinity();
    c.mem_gb = std::numeric_limits<double>::infinity();
    c.page_s_per_gb = 0.0;

    std::sort(c.tasks.begin(), c.tasks.end(),
              [](const SolveTaskSpec& a, const SolveTaskSpec& b) {
                return a.name < b.name;
              });
    std::unordered_set<std::string> seen;
    long long floor_sum = 0;
    for (auto& t : c.tasks) {
      if (t.name.empty() ||
          t.name.find_first_of(":;= \t") != std::string::npos) {
        throw std::invalid_argument("bad task name '" + t.name + "'");
      }
      if (!seen.insert(t.name).second)
        throw std::invalid_argument("duplicate task name '" + t.name + "'");
      if (t.max_nodes == 0) t.max_nodes = c.budget;
      if (t.min_nodes < 1 || t.min_nodes > t.max_nodes) {
        throw std::invalid_argument("task '" + t.name +
                                    "': need 1 <= min_nodes <= max_nodes");
      }
      floor_sum += t.min_nodes;
      t.a = quantize(t.a);
      t.b = quantize(t.b);
      t.c = quantize(t.c);
      t.d = quantize(t.d);
    }
    if (floor_sum > c.budget) {
      throw std::invalid_argument(
          "budget is below the sum of task node floors");
    }
  } else {
    c.tasks.clear();
    c.family = lower(c.family);
    if (c.family != "water" && c.family != "peptide" && c.family != "comm") {
      throw std::invalid_argument("unknown family '" + c.family +
                                  "' (expected water, peptide, or comm)");
    }
    if (c.fragments < 1)
      throw std::invalid_argument("fragments must be >= 1");
    if (c.budget < c.fragments) {
      throw std::invalid_argument(
          "budget must be >= fragments (HSLB gives every fragment a node)");
    }
    if (c.fit_points < 2)
      throw std::invalid_argument("fit_points must be >= 2");
    if (c.repetitions < 1)
      throw std::invalid_argument("repetitions must be >= 1");
    if (c.page_s_per_gb > 0.0 && !std::isfinite(c.mem_gb)) {
      throw std::invalid_argument(
          "page_s_per_gb requires mem_gb (paging needs a memory capacity)");
    }
    c.noise_cv = quantize(c.noise_cv);
    c.link_gb = quantize(c.link_gb);
    c.mem_gb = quantize(c.mem_gb);
    c.page_s_per_gb = quantize(c.page_s_per_gb);
  }
  return c;
}

std::uint64_t signature(const Request& c) {
  hash::Fnv1a h;
  h.mix(std::string_view(to_string(c.kind)));
  h.mix(std::string_view(objective_token(c.objective)));
  h.mix(static_cast<std::uint64_t>(c.budget));
  if (c.kind == RequestKind::Solve) {
    h.mix(static_cast<std::uint64_t>(c.tasks.size()));
    for (const auto& t : c.tasks) {
      h.mix(std::string_view(t.name));
      h.mix(t.a).mix(t.b).mix(t.c).mix(t.d);
      h.mix(static_cast<std::uint64_t>(t.min_nodes));
      h.mix(static_cast<std::uint64_t>(t.max_nodes));
    }
  } else {
    h.mix(std::string_view(c.family));
    h.mix(static_cast<std::uint64_t>(c.fragments));
    h.mix(c.system_seed).mix(c.bench_seed);
    h.mix(c.noise_cv);
    h.mix(static_cast<std::uint64_t>(c.fit_points));
    h.mix(static_cast<std::uint64_t>(c.repetitions));
    h.mix(c.link_gb).mix(c.mem_gb).mix(c.page_s_per_gb);
  }
  return h.value();
}

double signature_distance(const Request& a, const Request& b) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  if (a.kind != b.kind || a.objective != b.objective) return kInf;

  // Relative gap of two nonnegative parameters: 0 when equal, 1 when one
  // side is zero/infinite and the other is not.
  auto rel = [](double x, double y) {
    if (x == y) return 0.0;
    if (!std::isfinite(x) || !std::isfinite(y)) return 1.0;
    return std::fabs(x - y) / std::max({std::fabs(x), std::fabs(y), 1e-12});
  };
  // Node-count distance on a log2 scale (doubling the budget is "one step
  // away" regardless of absolute size).
  auto log_gap = [](long long x, long long y) {
    return std::fabs(std::log2(static_cast<double>(std::max(x, 1LL))) -
                     std::log2(static_cast<double>(std::max(y, 1LL))));
  };

  if (a.kind == RequestKind::Solve) {
    // A donor seed lifts only into the same variable space: same tasks by
    // name and bounds structure.
    if (a.tasks.size() != b.tasks.size()) return kInf;
    double d = 2.0 * log_gap(a.budget, b.budget);
    for (std::size_t i = 0; i < a.tasks.size(); ++i) {
      const auto& ta = a.tasks[i];
      const auto& tb = b.tasks[i];
      if (ta.name != tb.name) return kInf;
      d += rel(ta.a, tb.a) + rel(ta.b, tb.b) + rel(ta.c, tb.c) +
           rel(ta.d, tb.d);
      d += 0.5 * (log_gap(ta.min_nodes, tb.min_nodes) +
                  log_gap(ta.max_nodes, tb.max_nodes));
    }
    return d;
  }

  // fmo kind: the seed's node vector is per fragment, so the family and
  // fragment count must match exactly.
  if (a.family != b.family || a.fragments != b.fragments) return kInf;
  double d = 2.0 * log_gap(a.budget, b.budget);
  d += 4.0 * (a.system_seed != b.system_seed ? 1.0 : 0.0);
  d += 1.0 * (a.bench_seed != b.bench_seed ? 1.0 : 0.0);
  d += 10.0 * rel(a.noise_cv, b.noise_cv);
  d += rel(a.link_gb, b.link_gb) + rel(a.mem_gb, b.mem_gb) +
       rel(a.page_s_per_gb, b.page_s_per_gb);
  d += 0.25 * log_gap(a.fit_points, b.fit_points);
  d += 0.25 * log_gap(a.repetitions, b.repetitions);
  return d;
}

std::string Response::to_line() const {
  std::string line = strings::format(
      "sig=%016llx status=%s objective=%.17g predicted=%.17g actual=%.17g "
      "lambda=%.17g warm=%d fallback=%d bnb_nodes=%zu bnb_cuts=%zu alloc=",
      static_cast<unsigned long long>(signature), status.c_str(),
      objective_value, predicted_total, actual_total, percent_imbalance,
      warm_seeded ? 1 : 0, audit_fallback ? 1 : 0, bnb_nodes, bnb_cuts);
  std::vector<std::string> parts;
  parts.reserve(allocation.tasks.size());
  for (const auto& t : allocation.tasks)
    parts.push_back(strings::format("%s:%lld", t.task.c_str(), t.nodes));
  line += strings::join(parts, ";");
  return line;
}

Request parse_request(const std::string& raw) {
  const std::string line = strings::trim(raw);
  std::istringstream in(line);
  std::string kind_token;
  in >> kind_token;
  Request r;
  if (kind_token == "solve") {
    r.kind = RequestKind::Solve;
  } else if (kind_token == "fmo") {
    r.kind = RequestKind::Fmo;
  } else {
    throw std::invalid_argument("request must start with 'solve' or 'fmo', "
                                "got '" + kind_token + "'");
  }
  std::string pair;
  while (in >> pair) {
    const auto eq = pair.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("expected key=value, got '" + pair + "'");
    }
    const std::string key = pair.substr(0, eq);
    const std::string value = pair.substr(eq + 1);
    if (key == "objective") {
      r.objective = parse_objective_token(value);
    } else if (key == "budget" || key == "nodes") {
      r.budget = strings::to_int(value);
    } else if (key == "tasks") {
      r.tasks = decode_tasks(value);
    } else if (key == "family") {
      r.family = value;
    } else if (key == "fragments") {
      r.fragments = strings::to_int(value);
    } else if (key == "system_seed") {
      r.system_seed = static_cast<std::uint64_t>(strings::to_int(value));
    } else if (key == "bench_seed") {
      r.bench_seed = static_cast<std::uint64_t>(strings::to_int(value));
    } else if (key == "noise_cv") {
      r.noise_cv = strings::to_double(value);
    } else if (key == "fit_points") {
      r.fit_points = strings::to_int(value);
    } else if (key == "reps") {
      r.repetitions = strings::to_int(value);
    } else if (key == "link_gb") {
      r.link_gb = strings::to_double(value);
    } else if (key == "mem_gb") {
      r.mem_gb = strings::to_double(value);
    } else if (key == "page_s_per_gb") {
      r.page_s_per_gb = strings::to_double(value);
    } else {
      throw std::invalid_argument("unknown request key '" + key + "'");
    }
  }
  return r;
}

std::string format_request(const Request& r) {
  std::string line = to_string(r.kind);
  line += strings::format(" objective=%s budget=%lld",
                          objective_token(r.objective).c_str(), r.budget);
  if (r.kind == RequestKind::Solve) {
    line += " tasks=" + encode_tasks(r.tasks);
  } else {
    line += strings::format(
        " family=%s fragments=%lld system_seed=%llu bench_seed=%llu "
        "noise_cv=%g fit_points=%lld reps=%lld",
        r.family.c_str(), r.fragments,
        static_cast<unsigned long long>(r.system_seed),
        static_cast<unsigned long long>(r.bench_seed), r.noise_cv,
        r.fit_points, r.repetitions);
    if (std::isfinite(r.link_gb))
      line += strings::format(" link_gb=%g", r.link_gb);
    if (std::isfinite(r.mem_gb)) line += strings::format(" mem_gb=%g", r.mem_gb);
    if (r.page_s_per_gb > 0.0)
      line += strings::format(" page_s_per_gb=%g", r.page_s_per_gb);
  }
  return line;
}

std::vector<Request> load_script(std::istream& in) {
  std::vector<Request> out;
  std::string line;
  while (std::getline(in, line)) {
    const std::string t = strings::trim(line);
    if (t.empty() || t[0] == '#') continue;
    out.push_back(parse_request(t));
  }
  return out;
}

std::vector<Request> load_script_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("cannot open script '" + path + "'");
  return load_script(in);
}

}  // namespace hslb::service
