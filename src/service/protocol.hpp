// Request/response protocol of the allocation service.
//
// A Request describes one allocation instance — either an explicit task
// list with a node budget ("solve" kind: the models are given, only the
// Solve step runs) or an FMO system spec ("fmo" kind: the full
// Gather -> Fit -> Solve -> Execute pipeline runs on a generated system).
// A Response carries the allocation and its diagnostics back.
//
// Canonicalization (canonicalize) normalizes an instance to a unique
// representative — tasks sorted by name, family lowercased, defaults
// resolved, every double quantized to 6 significant digits — and
// signature() hashes that representative with the shared FNV-1a
// (common/hash.hpp), so instances that differ only in spelling, task
// order, or sub-tolerance parameter noise key the same cache slot.
// Thread counts are deliberately NOT part of the instance: results are
// identical for every thread count (the pipeline determinism contract),
// which makes them presentation, not identity.
//
// The wire format is one request per line — `solve`/`fmo` followed by
// key=value pairs — writable by `hslb client` and replayable by
// `hslb serve --script`; '#' starts a comment.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <string>
#include <vector>

#include "hslb/allocation.hpp"
#include "hslb/objective.hpp"

namespace hslb::service {

enum class RequestKind { Solve, Fmo };

std::string to_string(RequestKind k);

/// One task of a "solve"-kind request: a classic power-law cost model
/// T(n) = a/n + b*n^c + d with node bounds.
struct SolveTaskSpec {
  std::string name;
  double a = 0.0;
  double b = 0.0;
  double c = 1.0;
  double d = 0.0;
  long long min_nodes = 1;
  long long max_nodes = 0;  ///< 0 = the request's budget
};

struct Request {
  RequestKind kind = RequestKind::Solve;
  Objective objective = Objective::MinMax;
  /// Total node budget (both kinds; the fmo kind's machine size).
  long long budget = 64;

  // -- solve kind -----------------------------------------------------------
  std::vector<SolveTaskSpec> tasks;

  // -- fmo kind -------------------------------------------------------------
  std::string family = "water";  ///< water | peptide | comm
  long long fragments = 24;
  std::uint64_t system_seed = 3;   ///< generator seed
  std::uint64_t bench_seed = 42;   ///< gather probe noise stream
  double noise_cv = 0.03;
  long long fit_points = 5;
  long long repetitions = 1;
  /// Machine extensions (unmodeled by default, like the CLI).
  double link_gb = std::numeric_limits<double>::infinity();
  double mem_gb = std::numeric_limits<double>::infinity();
  double page_s_per_gb = 0.0;
};

/// Returns the canonical representative of `r` (see header doc). Throws
/// std::invalid_argument on malformed instances: duplicate task names, an
/// empty solve task list, an unknown family, min_nodes > max_nodes, or a
/// budget below the sum of node floors.
Request canonicalize(const Request& r);

/// FNV-1a signature of a canonicalized request. Only meaningful on the
/// output of canonicalize() — hashing a raw request is a bug.
std::uint64_t signature(const Request& canonical);

/// Dissimilarity between two canonicalized instances, used to pick the
/// nearest cached donor for cross-instance warm starts. Infinity when the
/// instances live in different solution spaces (different kind, objective,
/// family, or task structure — a donor seed could not be lifted); otherwise
/// a weighted sum of parameter distances where 0 means identical.
double signature_distance(const Request& a, const Request& b);

/// What the service sends back. The payload fields (everything to_line
/// prints) are a pure function of the canonicalized request; the delivery
/// metadata below them describes how THIS response was produced and is
/// excluded from to_line so an exact-repeat cache hit is byte-identical
/// to the solve that populated it.
struct Response {
  std::uint64_t signature = 0;
  std::string status;            ///< solver status string
  Allocation allocation;
  double objective_value = 0.0;  ///< fold_objective over predicted times
  double predicted_total = 0.0;  ///< predicted run metric (fmo: SCC seconds)
  double actual_total = 0.0;     ///< executed metric (0 for solve kind)
  /// Percent imbalance lambda = (max node busy / mean over ALL nodes - 1)
  /// x 100 (arXiv:2104.01688). Executed for fmo requests, predicted from
  /// the model times for solve requests.
  double percent_imbalance = 0.0;
  std::size_t bnb_nodes = 0;
  std::size_t bnb_cuts = 0;
  /// The donor incumbent passed the B&B feasibility audit (solve started
  /// warm). Always false on cold solves.
  bool warm_seeded = false;
  /// The warm result failed the service's feasibility audit and this
  /// response came from the cold re-solve.
  bool audit_fallback = false;

  // -- delivery metadata (NOT part of to_line) ------------------------------
  bool cache_hit = false;
  std::uint64_t donor_signature = 0;  ///< nearest donor seeded from (0 = none)
  double latency_seconds = 0.0;

  /// Deterministic one-line payload rendering (%.17g where exactness
  /// matters): the byte-identity contract of exact-repeat cache hits.
  std::string to_line() const;
};

/// Parses one wire-format line (see header doc); throws
/// std::invalid_argument with a message naming the offending token.
Request parse_request(const std::string& line);

/// Formats `r` as a wire-format line parse_request accepts
/// (format -> parse -> canonicalize is the identity on canonical requests).
std::string format_request(const Request& r);

/// Reads a request script: one request per line, blank lines and
/// '#'-comments skipped.
std::vector<Request> load_script(std::istream& in);
std::vector<Request> load_script_file(const std::string& path);

}  // namespace hslb::service
