#include "service/cache.hpp"

#include "common/contracts.hpp"

namespace hslb::service {

SolutionCache::SolutionCache(std::size_t capacity) : capacity_(capacity) {
  HSLB_EXPECTS(capacity >= 1);
}

const CacheEntry* SolutionCache::find(std::uint64_t signature) const {
  const auto it = index_.find(signature);
  return it == index_.end() ? nullptr : &*it->second;
}

void SolutionCache::touch(std::uint64_t signature) {
  const auto it = index_.find(signature);
  if (it == index_.end()) return;
  entries_.splice(entries_.begin(), entries_, it->second);
}

const CacheEntry* SolutionCache::nearest(const Request& canonical,
                                         double* distance_out) const {
  const CacheEntry* best = nullptr;
  double best_distance = std::numeric_limits<double>::infinity();
  // Recency order: a strict '<' keeps the most recently used of any tied
  // set, making donor selection a deterministic function of cache state.
  for (const auto& e : entries_) {
    const double d = signature_distance(canonical, e.request);
    if (d < best_distance) {
      best_distance = d;
      best = &e;
    }
  }
  if (best != nullptr && distance_out != nullptr) *distance_out = best_distance;
  return best;
}

void SolutionCache::insert(CacheEntry entry) {
  const auto it = index_.find(entry.signature);
  if (it != index_.end()) {
    *it->second = std::move(entry);
    entries_.splice(entries_.begin(), entries_, it->second);
    return;
  }
  entries_.push_front(std::move(entry));
  index_[entries_.front().signature] = entries_.begin();
  while (entries_.size() > capacity_) {
    index_.erase(entries_.back().signature);
    entries_.pop_back();
    ++evictions_;
  }
}

}  // namespace hslb::service
