// Deterministic discrete-event simulation engine.
//
// Stands in for the physical machine of the paper (Intrepid, the Blue
// Gene/P at ALCF): all "execution" in this library is simulated by
// advancing virtual time through scheduled events. Determinism is exact:
// ties in event time are broken by schedule order, never by wall-clock or
// container iteration artifacts.
#pragma once

#include <cstddef>
#include <functional>
#include <queue>
#include <vector>

namespace hslb::sim {

using Time = double;

class Engine {
 public:
  /// Schedules `fn` at absolute time `t` (must be >= now()).
  void schedule(Time t, std::function<void()> fn);

  /// Schedules `fn` at now() + dt (dt >= 0).
  void schedule_in(Time dt, std::function<void()> fn);

  /// Runs until the event queue is empty. Returns the final time.
  Time run();

  /// Runs until `deadline` (events at exactly `deadline` are executed).
  Time run_until(Time deadline);

  Time now() const { return now_; }
  std::size_t events_processed() const { return processed_; }
  bool empty() const { return queue_.empty(); }

 private:
  struct Item {
    Time time;
    std::size_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;  // FIFO among simultaneous events
    }
  };

  void step();

  std::priority_queue<Item, std::vector<Item>, Later> queue_;
  Time now_ = 0.0;
  std::size_t seq_ = 0;
  std::size_t processed_ = 0;
};

}  // namespace hslb::sim
