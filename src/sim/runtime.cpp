#include "sim/runtime.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <queue>
#include <tuple>
#include <unordered_map>
#include <utility>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "sim/noise.hpp"

namespace hslb::sim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Node free times under range-assign / range-max: scheduling a task sets
/// every node of its range to the task's end time, and a candidate's start
/// is the max free time over its range. Both are O(log nodes), which is
/// what keeps the list scheduler viable at 10^5-10^6 nodes where the dense
/// per-node scan of the original implementation dominated.
class NodeFreeTree {
 public:
  explicit NodeFreeTree(std::size_t n) : n_(n) {
    size_ = 1;
    while (size_ < n_) size_ <<= 1;
    max_.assign(2 * size_, 0.0);
    lazy_.assign(2 * size_, -1.0);  // < 0: no pending assignment
  }

  /// Max free time over nodes [lo, hi).
  double range_max(std::size_t lo, std::size_t hi) {
    HSLB_EXPECTS(lo < hi && hi <= n_);
    return query(1, 0, size_, lo, hi);
  }

  /// Sets every node in [lo, hi) free at time v.
  void assign(std::size_t lo, std::size_t hi, double v) {
    HSLB_EXPECTS(lo < hi && hi <= n_);
    update(1, 0, size_, lo, hi, v);
  }

  /// Free time of a single node.
  double at(std::size_t i) { return range_max(i, i + 1); }

 private:
  void apply(std::size_t node, double v) {
    max_[node] = v;
    if (node < size_) lazy_[node] = v;
  }

  void push(std::size_t node) {
    if (lazy_[node] >= 0.0) {
      apply(2 * node, lazy_[node]);
      apply(2 * node + 1, lazy_[node]);
      lazy_[node] = -1.0;
    }
  }

  double query(std::size_t node, std::size_t l, std::size_t r, std::size_t lo,
               std::size_t hi) {
    if (hi <= l || r <= lo) return 0.0;
    if (lo <= l && r <= hi) return max_[node];
    push(node);
    const std::size_t mid = (l + r) / 2;
    return std::max(query(2 * node, l, mid, lo, hi),
                    query(2 * node + 1, mid, r, lo, hi));
  }

  void update(std::size_t node, std::size_t l, std::size_t r, std::size_t lo,
              std::size_t hi, double v) {
    if (hi <= l || r <= lo) return;
    if (lo <= l && r <= hi) {
      apply(node, v);
      return;
    }
    push(node);
    const std::size_t mid = (l + r) / 2;
    update(2 * node, l, mid, lo, hi, v);
    update(2 * node + 1, mid, r, lo, hi, v);
    max_[node] = std::max(max_[2 * node], max_[2 * node + 1]);
  }

  std::size_t n_ = 0, size_ = 0;
  std::vector<double> max_;
  std::vector<double> lazy_;
};

/// FNV-1a over a task/phase name: turns the string into a stream index for
/// derive_seed so noise keys are stable under scheduling order.
std::uint64_t hash_name(const std::string& s) {
  std::uint64_t h = 14695981039346656037ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

bool Perturbation::hits(const NodeSet& nodes) const {
  if (!fails()) return false;
  const auto f = static_cast<std::size_t>(fail_node);
  return f >= nodes.first && f < nodes.end();
}

double Perturbation::slowdown(const NodeSet& nodes) const {
  double worst = 1.0;
  const std::size_t hi = std::min(nodes.end(), node_slowdown.size());
  for (std::size_t n = nodes.first; n < hi; ++n)
    worst = std::max(worst, node_slowdown[n]);
  return worst;
}

double Perturbation::noise(const std::string& phase, const std::string& task,
                           std::uint64_t attempt) const {
  return noise_keyed(noise_key(phase, task), attempt);
}

std::uint64_t Perturbation::noise_key(const std::string& phase,
                                      const std::string& task) const {
  return derive_seed(derive_seed(seed, hash_name(phase)), hash_name(task));
}

double Perturbation::noise_keyed(std::uint64_t key,
                                 std::uint64_t attempt) const {
  if (noise_cv <= 0.0) return 1.0;
  NoiseModel model(noise_cv, derive_seed(key, attempt));
  return model.perturb(1.0);
}

std::vector<double> Perturbation::stragglers(std::size_t nodes, double cv,
                                             std::uint64_t seed) {
  HSLB_EXPECTS(cv >= 0.0);
  std::vector<double> factors(nodes, 1.0);
  Rng rng(derive_seed(seed, 0x5742a6c1u));  // fixed straggler stream
  for (auto& f : factors) f = std::max(1.0, rng.lognormal_unit_mean(cv));
  return factors;
}

Runtime::Runtime(Machine machine) : machine_(std::move(machine)) {
  HSLB_EXPECTS(machine_.nodes >= 1);
}

std::size_t Runtime::add_task(std::string name, double duration, NodeSet nodes,
                              std::vector<std::size_t> deps, std::string phase,
                              bool fixed, TaskDemand demand) {
  HSLB_EXPECTS(duration >= 0.0);
  HSLB_EXPECTS(nodes.count >= 1);
  HSLB_EXPECTS(nodes.end() <= machine_.nodes);
  HSLB_EXPECTS(demand.comm_gb >= 0.0 && demand.memory_gb >= 0.0);
  for (std::size_t d : deps) HSLB_EXPECTS(d < tasks_.size());
  tasks_.push_back(Task{std::move(name), duration, nodes, std::move(deps),
                        std::move(phase), fixed, demand.comm_gb,
                        demand.memory_gb});
  return tasks_.size() - 1;
}

const Task& Runtime::task(std::size_t id) const {
  HSLB_EXPECTS(id < tasks_.size());
  return tasks_[id];
}

RunResult Runtime::run(const Perturbation& perturbation) const {
  return run(perturbation, EpochOptions{});
}

RunResult Runtime::run(const Perturbation& perturbation,
                       const EpochOptions& epoch, EpochState* epoch_out) const {
  HSLB_EXPECTS(epoch.initial_node_free.empty() ||
               epoch.initial_node_free.size() == machine_.nodes);
  RunResult out;
  out.trace.machine = machine_.name;
  out.trace.nodes = machine_.nodes;
  out.trace.cores_per_node = machine_.cores_per_node;
  out.tasks.assign(tasks_.size(), ScheduledTask{kInf, kInf});
  // One event per task plus the occasional fail-stop abort: reserving the
  // common case up front kills the doubling reallocations that dominated
  // trace accumulation at 10^6 tasks.
  out.trace.events.reserve(tasks_.size());

  const std::size_t nt = tasks_.size();
  enum class State : std::uint8_t { Pending, Done, Failed };
  std::vector<State> state(nt, State::Pending);
  const double fail_at = perturbation.fail_time;
  const double recover = perturbation.fail_time + perturbation.fail_downtime;

  // Event-driven list scheduling, semantically identical to a full rescan:
  // the next task to run is the ready task minimizing (start time, id).
  // Ready tasks are bucketed by node range; within a bucket, tasks whose
  // ready time is at or below the range's free time F all start at F (the
  // released heap orders them by id), the rest start at their own ready
  // time (the pending heap orders them by (ready, id)), so a bucket's best
  // candidate is the lexicographic min of the two heads. A global heap
  // holds one active claim per bucket — a lower bound on the bucket's best,
  // because F (hence every candidate key) only moves forward and insertions
  // refresh the claim. A popped claim that matches a fresh recompute is
  // therefore the true global argmin; otherwise the recompute is pushed
  // back. Total cost O((tasks + claims) log) instead of the O(tasks^2)
  // rescan this replaces (bit-identical traces; see sim_runtime_test).
  struct Bucket {
    std::size_t first = 0, count = 0;
    std::priority_queue<std::size_t, std::vector<std::size_t>,
                        std::greater<>> released;
    std::priority_queue<std::pair<double, std::size_t>,
                        std::vector<std::pair<double, std::size_t>>,
                        std::greater<>> pending;
    std::pair<double, std::size_t> claim{kInf, SIZE_MAX};
  };
  std::vector<Bucket> buckets;
  std::unordered_map<std::uint64_t, std::size_t> bucket_of;
  NodeFreeTree node_free(machine_.nodes);
  if (!epoch.initial_node_free.empty()) {
    // Carried-in free times, applied as runs of equal values so the common
    // barrier-aligned case (every node free at the same clock) is one
    // range assign.
    const auto& init = epoch.initial_node_free;
    for (std::size_t lo = 0; lo < init.size();) {
      HSLB_EXPECTS(init[lo] >= 0.0);
      std::size_t hi = lo + 1;
      while (hi < init.size() && init[hi] == init[lo]) ++hi;
      if (init[lo] > 0.0) node_free.assign(lo, hi, init[lo]);
      lo = hi;
    }
  }
  using Claim = std::tuple<double, std::size_t, std::size_t>;  // start, id, bkt
  std::priority_queue<Claim, std::vector<Claim>, std::greater<>> claims;

  // Reverse adjacency (CSR) for event-driven dependency release.
  std::vector<std::size_t> out_start(nt + 1, 0);
  std::vector<std::size_t> remaining(nt, 0);
  for (std::size_t t = 0; t < nt; ++t) {
    remaining[t] = tasks_[t].deps.size();
    for (std::size_t d : tasks_[t].deps) ++out_start[d + 1];
  }
  for (std::size_t t = 0; t < nt; ++t) out_start[t + 1] += out_start[t];
  std::vector<std::size_t> out_edges(out_start[nt]);
  {
    std::vector<std::size_t> next(out_start.begin(), out_start.end() - 1);
    for (std::size_t t = 0; t < nt; ++t)
      for (std::size_t d : tasks_[t].deps) out_edges[next[d]++] = t;
  }
  std::vector<double> ready_at(nt, 0.0);
  std::vector<std::uint8_t> dep_failed(nt, 0);

  // Fresh best candidate of a bucket, promoting newly released tasks.
  auto bucket_best = [&](Bucket& b) {
    const double f = node_free.range_max(b.first, b.first + b.count);
    while (!b.pending.empty() && b.pending.top().first <= f) {
      b.released.push(b.pending.top().second);
      b.pending.pop();
    }
    std::pair<double, std::size_t> best{kInf, SIZE_MAX};
    if (!b.released.empty()) best = {f, b.released.top()};
    if (!b.pending.empty() && b.pending.top() < best) best = b.pending.top();
    return best;
  };

  // Files a task (all deps done, none failed) into its node-range bucket
  // and refreshes the bucket's claim if the newcomer undercuts it.
  auto insert_ready = [&](std::size_t t) {
    const NodeSet& ns = tasks_[t].nodes;
    const std::uint64_t key =
        static_cast<std::uint64_t>(ns.first) * (machine_.nodes + 1) + ns.count;
    const auto [it, fresh] = bucket_of.try_emplace(key, buckets.size());
    if (fresh) {
      buckets.emplace_back();
      buckets.back().first = ns.first;
      buckets.back().count = ns.count;
    }
    Bucket& b = buckets[it->second];
    const double f = node_free.range_max(b.first, b.first + b.count);
    const double r = ready_at[t];
    if (r <= f) {
      b.released.push(t);
    } else {
      b.pending.push({r, t});
    }
    const std::pair<double, std::size_t> cand{std::max(f, r), t};
    if (cand < b.claim) {
      b.claim = cand;
      claims.push({cand.first, cand.second, it->second});
    }
  };

  // Marks a task resolved and walks its dependents; the worklist carries
  // (task, failed) so failure cascades never recurse.
  std::vector<std::pair<std::size_t, bool>> worklist;
  auto resolve = [&](std::size_t t, bool failed) {
    worklist.emplace_back(t, failed);
    while (!worklist.empty()) {
      const auto [d, dead] = worklist.back();
      worklist.pop_back();
      for (std::size_t e = out_start[d]; e < out_start[d + 1]; ++e) {
        const std::size_t u = out_edges[e];
        if (dead) {
          dep_failed[u] = 1;
        } else {
          ready_at[u] = std::max(ready_at[u], out.tasks[d].end);
        }
        if (--remaining[u] != 0 || state[u] != State::Pending) continue;
        if (dep_failed[u]) {
          // A ready task with a failed dependency can never run.
          state[u] = State::Failed;
          worklist.emplace_back(u, true);
        } else {
          insert_ready(u);
        }
      }
    }
  };

  // Placements the machine cannot legally run — working set past node
  // memory on a non-paging machine, or nonzero traffic on a dead link —
  // are rejected up front; their dependents resolve as Failed.
  for (std::size_t t = 0; t < nt; ++t) {
    const auto span = static_cast<double>(tasks_[t].nodes.count);
    if (!machine_.memory_feasible(tasks_[t].memory_gb, span) ||
        std::isinf(machine_.comm_seconds(tasks_[t].comm_gb, span))) {
      state[t] = State::Failed;
      ++out.rejected;
    }
  }
  for (std::size_t t = 0; t < nt; ++t) {
    if (state[t] == State::Pending && remaining[t] == 0) insert_ready(t);
  }
  for (std::size_t t = 0; t < nt; ++t) {
    if (state[t] == State::Failed) resolve(t, /*failed=*/true);
  }

  while (!claims.empty()) {
    const auto [c_start, c_id, c_bkt] = claims.top();
    claims.pop();
    Bucket& b = buckets[c_bkt];
    const std::pair<double, std::size_t> popped{c_start, c_id};
    if (popped != b.claim) continue;  // superseded claim
    const auto fresh = bucket_best(b);
    if (fresh != popped) {
      // The range's free time moved since the claim: re-bid and retry.
      b.claim = fresh;
      claims.push({fresh.first, fresh.second, c_bkt});
      continue;
    }
    // Claims pop in (start, id) order, so once the global argmin's start
    // reaches the horizon every remaining task would too: stop dispatching
    // and leave the rest deferred for the next epoch.
    if (fresh.first >= epoch.horizon) break;
    const std::size_t best = fresh.second;
    const double best_start = fresh.first;
    if (!b.released.empty() && b.released.top() == best) {
      b.released.pop();
    } else {
      b.pending.pop();
    }
    {
      const auto next = bucket_best(b);
      b.claim = next;
      if (next.second != SIZE_MAX)
        claims.push({next.first, next.second, c_bkt});
    }

    const Task& t = tasks_[best];
    const bool hit = perturbation.hits(t.nodes);
    const double slow = t.fixed ? 1.0 : perturbation.slowdown(t.nodes);
    const auto span = static_cast<double>(t.nodes.count);
    const double comm = machine_.comm_seconds(t.comm_gb, span);
    const double page = machine_.page_seconds(t.memory_gb, span);
    // Intern the (phase, task) noise key once; attempts re-draw from it
    // without re-hashing the strings.
    const std::uint64_t nkey =
        t.fixed ? 0 : perturbation.noise_key(t.phase, t.name);
    double start = best_start;
    double end = 0.0;
    std::uint64_t attempt = 0;
    bool infeasible = false;
    while (true) {
      if (hit && start >= fail_at && start < recover) {
        if (std::isinf(recover)) {
          infeasible = true;
          break;
        }
        start = recover;  // wait out the downtime
      }
      const double factor =
          t.fixed ? 1.0 : perturbation.noise_keyed(nkey, attempt);
#ifndef NDEBUG
      // Keyed draws must match the string-keyed path bit for bit.
      HSLB_ASSERT(t.fixed ||
                  factor == perturbation.noise(t.phase, t.name, attempt));
#endif
      end = start + t.duration * factor * slow + comm + page;
      if (hit && start < fail_at && end > fail_at) {
        // The fail-stop interrupts this attempt: the work is lost and the
        // task re-runs (fresh noise draw) once the node recovers.
        out.trace.events.push_back({t.name, t.phase, t.nodes.first,
                                    t.nodes.count, start, fail_at, true});
        ++out.restarts;
        if (std::isinf(recover)) {
          infeasible = true;
          break;
        }
        start = recover;
        ++attempt;
        continue;
      }
      break;
    }
    if (infeasible) {
      if (epoch.stop_on_failure) {
        // Pause for the controller: the task stays pending (deferred, to be
        // re-placed by a new allocation) instead of cascading failure
        // through its dependents. Aborted-attempt events stay in the trace.
        out.failure_paused = true;
        out.paused_task = best;
        break;
      }
      // Permanent loss of a node the task is pinned to: a static schedule
      // cannot complete (the dynamic queue would re-dispatch instead).
      state[best] = State::Failed;
      resolve(best, /*failed=*/true);
      continue;
    }
    out.tasks[best] = {start, end};
    out.comm_seconds += comm;
    out.page_seconds += page;
    node_free.assign(t.nodes.first, t.nodes.end(), end);
    out.trace.events.push_back(
        {t.name, t.phase, t.nodes.first, t.nodes.count, start, end, false});
    state[best] = State::Done;
    out.makespan = std::max(out.makespan, end);
    // Release dependents before the next pop so their bucket claims join
    // the auction for the next pick, exactly like the full rescan saw them.
    resolve(best, /*failed=*/false);
  }
  for (State s : state) {
    if (s == State::Failed) out.completed = false;
    if (s == State::Pending) ++out.deferred;
  }
  if (out.failure_paused) out.completed = false;
  if (epoch_out != nullptr) {
    epoch_out->node_free.resize(machine_.nodes);
    for (std::size_t n = 0; n < machine_.nodes; ++n)
      epoch_out->node_free[n] = node_free.at(n);
    epoch_out->ran.assign(nt, 0);
    epoch_out->observed.clear();
    for (std::size_t t = 0; t < nt; ++t) {
      if (state[t] != State::Done) continue;
      epoch_out->ran[t] = 1;
      if (tasks_[t].fixed) continue;
      const auto span = static_cast<double>(tasks_[t].nodes.count);
      const double overhead = machine_.comm_seconds(tasks_[t].comm_gb, span) +
                              machine_.page_seconds(tasks_[t].memory_gb, span);
      epoch_out->observed.emplace_back(
          t, out.tasks[t].end - out.tasks[t].start - overhead);
    }
  }
  return out;
}

QueueRunResult Runtime::run_queue(const Machine& machine,
                                  const std::vector<NodeSet>& groups,
                                  const std::vector<QueueTask>& queue,
                                  const Perturbation& perturbation,
                                  double start_time) {
  HSLB_EXPECTS(machine.nodes >= 1);
  HSLB_EXPECTS(!groups.empty());
  HSLB_EXPECTS(start_time >= 0.0);
  for (const auto& g : groups) {
    HSLB_EXPECTS(g.count >= 1);
    HSLB_EXPECTS(g.end() <= machine.nodes);
  }

  QueueRunResult out;
  out.trace.machine = machine.name;
  out.trace.nodes = machine.nodes;
  out.trace.cores_per_node = machine.cores_per_node;
  out.tasks.assign(queue.size(), ScheduledTask{kInf, kInf});
  out.task_group.assign(queue.size(), groups.size());
  out.group_busy.assign(groups.size(), 0.0);
  out.makespan = start_time;
  out.trace.events.reserve(queue.size());

  // Earliest-free group pulls the next task; ties go to the lowest group
  // id — the GAMESS shared-counter regime the DLB baseline reproduces.
  using Entry = std::pair<double, std::size_t>;  // (free time, group)
  std::vector<Entry> pool_storage;
  pool_storage.reserve(groups.size() + 1);
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pool(
      std::greater<>{}, std::move(pool_storage));
  for (std::size_t g = 0; g < groups.size(); ++g) pool.push({start_time, g});

  const double fail_at = perturbation.fail_time;
  const double recover = perturbation.fail_time + perturbation.fail_downtime;
  std::vector<std::uint64_t> attempt(queue.size(), 0);
  // Intern every (phase, task) noise key up front — one hash per queue
  // entry instead of one per dispatch attempt.
  std::vector<std::uint64_t> nkey(queue.size());
  for (std::size_t t = 0; t < queue.size(); ++t)
    nkey[t] = perturbation.noise_key(queue[t].phase, queue[t].name);

  // Groups the machine cannot legally run a task on (overcommitted memory,
  // dead link) are set aside — skipped for that task only, not retired —
  // and rejoin the pool once the task is placed or given up. One backing
  // allocation serves the whole queue.
  std::vector<Entry> unfit;
  for (std::size_t t = 0; t < queue.size(); ++t) {
    unfit.clear();
    for (bool placed = false; !placed;) {
      if (pool.empty()) {
        if (unfit.empty()) {
          // Every group has retired with work remaining.
          out.completed = false;
          return out;
        }
        // No surviving group can run this task; it stays unrun while the
        // rest of the queue drains on the groups that remain.
        out.completed = false;
        ++out.rejected;
        break;
      }
      const auto [free, g] = pool.top();
      pool.pop();
      const NodeSet& nodes = groups[g];
      const bool hit = perturbation.hits(nodes);
      if (hit && free >= fail_at && free < recover) {
        // The group is down; it rejoins the pool when the node recovers,
        // or retires for good under a permanent failure.
        if (!std::isinf(recover)) pool.push({recover, g});
        continue;
      }
      const auto span = static_cast<double>(nodes.count);
      const double comm = machine.comm_seconds(queue[t].comm_gb, span);
      const double page = machine.page_seconds(queue[t].memory_gb, span);
      if (!machine.memory_feasible(queue[t].memory_gb, span) ||
          std::isinf(comm)) {
        unfit.push_back({free, g});
        continue;
      }
      const double factor = perturbation.noise_keyed(nkey[t], attempt[t]);
#ifndef NDEBUG
      HSLB_ASSERT(factor == perturbation.noise(queue[t].phase, queue[t].name,
                                               attempt[t]));
#endif
      const double duration =
          queue[t].seconds(static_cast<long long>(nodes.count)) * factor *
          perturbation.slowdown(nodes);
      const double start = free;
      const double end = start + duration + comm + page;
      if (hit && start < fail_at && end > fail_at) {
        // Abort; the task goes back to the queue head and is re-dispatched
        // to whichever group frees up next — dynamic dispatch shrugs off
        // the failure that would wedge a static schedule.
        out.trace.events.push_back({queue[t].name, queue[t].phase, nodes.first,
                                    nodes.count, start, fail_at, true});
        ++out.restarts;
        ++attempt[t];
        if (!std::isinf(recover)) pool.push({recover, g});
        continue;
      }
      out.trace.events.push_back({queue[t].name, queue[t].phase, nodes.first,
                                  nodes.count, start, end, false});
      out.tasks[t] = {start, end};
      out.task_group[t] = g;
      out.group_busy[g] += duration + comm + page;
      out.comm_seconds += comm;
      out.page_seconds += page;
      out.makespan = std::max(out.makespan, end);
      pool.push({end, g});
      placed = true;
    }
    for (const auto& e : unfit) pool.push(e);
  }
  return out;
}

}  // namespace hslb::sim
