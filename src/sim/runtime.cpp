#include "sim/runtime.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <utility>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "sim/noise.hpp"

namespace hslb::sim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// FNV-1a over a task/phase name: turns the string into a stream index for
/// derive_seed so noise keys are stable under scheduling order.
std::uint64_t hash_name(const std::string& s) {
  std::uint64_t h = 14695981039346656037ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

bool Perturbation::hits(const NodeSet& nodes) const {
  if (!fails()) return false;
  const auto f = static_cast<std::size_t>(fail_node);
  return f >= nodes.first && f < nodes.end();
}

double Perturbation::slowdown(const NodeSet& nodes) const {
  double worst = 1.0;
  const std::size_t hi = std::min(nodes.end(), node_slowdown.size());
  for (std::size_t n = nodes.first; n < hi; ++n)
    worst = std::max(worst, node_slowdown[n]);
  return worst;
}

double Perturbation::noise(const std::string& phase, const std::string& task,
                           std::uint64_t attempt) const {
  return noise_keyed(noise_key(phase, task), attempt);
}

std::uint64_t Perturbation::noise_key(const std::string& phase,
                                      const std::string& task) const {
  return derive_seed(derive_seed(seed, hash_name(phase)), hash_name(task));
}

double Perturbation::noise_keyed(std::uint64_t key,
                                 std::uint64_t attempt) const {
  if (noise_cv <= 0.0) return 1.0;
  NoiseModel model(noise_cv, derive_seed(key, attempt));
  return model.perturb(1.0);
}

std::vector<double> Perturbation::stragglers(std::size_t nodes, double cv,
                                             std::uint64_t seed) {
  HSLB_EXPECTS(cv >= 0.0);
  std::vector<double> factors(nodes, 1.0);
  Rng rng(derive_seed(seed, 0x5742a6c1u));  // fixed straggler stream
  for (auto& f : factors) f = std::max(1.0, rng.lognormal_unit_mean(cv));
  return factors;
}

Runtime::Runtime(Machine machine) : machine_(std::move(machine)) {
  HSLB_EXPECTS(machine_.nodes >= 1);
}

std::size_t Runtime::add_task(std::string name, double duration, NodeSet nodes,
                              std::vector<std::size_t> deps, std::string phase,
                              bool fixed, TaskDemand demand) {
  HSLB_EXPECTS(duration >= 0.0);
  HSLB_EXPECTS(nodes.count >= 1);
  HSLB_EXPECTS(nodes.end() <= machine_.nodes);
  HSLB_EXPECTS(demand.comm_gb >= 0.0 && demand.memory_gb >= 0.0);
  for (std::size_t d : deps) HSLB_EXPECTS(d < tasks_.size());
  tasks_.push_back(Task{std::move(name), duration, nodes, std::move(deps),
                        std::move(phase), fixed, demand.comm_gb,
                        demand.memory_gb});
  return tasks_.size() - 1;
}

const Task& Runtime::task(std::size_t id) const {
  HSLB_EXPECTS(id < tasks_.size());
  return tasks_[id];
}

RunResult Runtime::run(const Perturbation& perturbation) const {
  RunResult out;
  out.trace.machine = machine_.name;
  out.trace.nodes = machine_.nodes;
  out.trace.cores_per_node = machine_.cores_per_node;
  out.tasks.assign(tasks_.size(), ScheduledTask{kInf, kInf});

  std::vector<double> node_free(machine_.nodes, 0.0);
  enum class State { Pending, Done, Failed };
  std::vector<State> state(tasks_.size(), State::Pending);
  const double fail_at = perturbation.fail_time;
  const double recover = perturbation.fail_time + perturbation.fail_downtime;

  std::size_t resolved = 0;
  // Placements the machine cannot legally run — working set past node
  // memory on a non-paging machine, or nonzero traffic on a dead link —
  // are rejected up front; their dependents resolve as Failed below.
  for (std::size_t t = 0; t < tasks_.size(); ++t) {
    const auto span = static_cast<double>(tasks_[t].nodes.count);
    if (!machine_.memory_feasible(tasks_[t].memory_gb, span) ||
        std::isinf(machine_.comm_seconds(tasks_[t].comm_gb, span))) {
      state[t] = State::Failed;
      ++resolved;
      ++out.rejected;
    }
  }
  while (resolved < tasks_.size()) {
    // A ready task with a failed dependency can never run; resolve those
    // first so the pick below only sees runnable candidates.
    bool progressed = false;
    for (std::size_t t = 0; t < tasks_.size(); ++t) {
      if (state[t] != State::Pending) continue;
      bool ready = true, blocked = false;
      for (std::size_t d : tasks_[t].deps) {
        if (state[d] == State::Pending) {
          ready = false;
          break;
        }
        if (state[d] == State::Failed) blocked = true;
      }
      if (ready && blocked) {
        state[t] = State::Failed;
        ++resolved;
        progressed = true;
      }
    }
    if (progressed) continue;

    // Pick the ready task that can start earliest; FIFO tie-break by id
    // (identical to the original TaskGraph scheduling when unperturbed).
    std::size_t best = tasks_.size();
    double best_start = kInf;
    for (std::size_t t = 0; t < tasks_.size(); ++t) {
      if (state[t] != State::Pending) continue;
      bool ready = true;
      double start = 0.0;
      for (std::size_t d : tasks_[t].deps) {
        if (state[d] == State::Pending) {
          ready = false;
          break;
        }
        start = std::max(start, out.tasks[d].end);
      }
      if (!ready) continue;
      for (std::size_t n = tasks_[t].nodes.first; n < tasks_[t].nodes.end();
           ++n)
        start = std::max(start, node_free[n]);
      if (start < best_start) {
        best_start = start;
        best = t;
      }
    }
    // A dependency cycle is impossible because deps reference earlier ids.
    HSLB_ASSERT(best < tasks_.size());

    const Task& t = tasks_[best];
    const bool hit = perturbation.hits(t.nodes);
    const double slow = t.fixed ? 1.0 : perturbation.slowdown(t.nodes);
    const auto span = static_cast<double>(t.nodes.count);
    const double comm = machine_.comm_seconds(t.comm_gb, span);
    const double page = machine_.page_seconds(t.memory_gb, span);
    // Intern the (phase, task) noise key once; attempts re-draw from it
    // without re-hashing the strings.
    const std::uint64_t nkey =
        t.fixed ? 0 : perturbation.noise_key(t.phase, t.name);
    double start = best_start;
    double end = 0.0;
    std::uint64_t attempt = 0;
    bool infeasible = false;
    while (true) {
      if (hit && start >= fail_at && start < recover) {
        if (std::isinf(recover)) {
          infeasible = true;
          break;
        }
        start = recover;  // wait out the downtime
      }
      const double factor =
          t.fixed ? 1.0 : perturbation.noise_keyed(nkey, attempt);
#ifndef NDEBUG
      // Keyed draws must match the string-keyed path bit for bit.
      HSLB_ASSERT(t.fixed ||
                  factor == perturbation.noise(t.phase, t.name, attempt));
#endif
      end = start + t.duration * factor * slow + comm + page;
      if (hit && start < fail_at && end > fail_at) {
        // The fail-stop interrupts this attempt: the work is lost and the
        // task re-runs (fresh noise draw) once the node recovers.
        out.trace.events.push_back({t.name, t.phase, t.nodes.first,
                                    t.nodes.count, start, fail_at, true});
        ++out.restarts;
        if (std::isinf(recover)) {
          infeasible = true;
          break;
        }
        start = recover;
        ++attempt;
        continue;
      }
      break;
    }
    if (infeasible) {
      // Permanent loss of a node the task is pinned to: a static schedule
      // cannot complete (the dynamic queue would re-dispatch instead).
      state[best] = State::Failed;
      ++resolved;
      continue;
    }
    out.tasks[best] = {start, end};
    out.comm_seconds += comm;
    out.page_seconds += page;
    for (std::size_t n = t.nodes.first; n < t.nodes.end(); ++n)
      node_free[n] = end;
    out.trace.events.push_back(
        {t.name, t.phase, t.nodes.first, t.nodes.count, start, end, false});
    state[best] = State::Done;
    ++resolved;
    out.makespan = std::max(out.makespan, end);
  }
  for (State s : state)
    if (s == State::Failed) out.completed = false;
  return out;
}

QueueRunResult Runtime::run_queue(const Machine& machine,
                                  const std::vector<NodeSet>& groups,
                                  const std::vector<QueueTask>& queue,
                                  const Perturbation& perturbation,
                                  double start_time) {
  HSLB_EXPECTS(machine.nodes >= 1);
  HSLB_EXPECTS(!groups.empty());
  HSLB_EXPECTS(start_time >= 0.0);
  for (const auto& g : groups) {
    HSLB_EXPECTS(g.count >= 1);
    HSLB_EXPECTS(g.end() <= machine.nodes);
  }

  QueueRunResult out;
  out.trace.machine = machine.name;
  out.trace.nodes = machine.nodes;
  out.trace.cores_per_node = machine.cores_per_node;
  out.tasks.assign(queue.size(), ScheduledTask{kInf, kInf});
  out.task_group.assign(queue.size(), groups.size());
  out.group_busy.assign(groups.size(), 0.0);
  out.makespan = start_time;

  // Earliest-free group pulls the next task; ties go to the lowest group
  // id — the GAMESS shared-counter regime the DLB baseline reproduces.
  using Entry = std::pair<double, std::size_t>;  // (free time, group)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pool;
  for (std::size_t g = 0; g < groups.size(); ++g) pool.push({start_time, g});

  const double fail_at = perturbation.fail_time;
  const double recover = perturbation.fail_time + perturbation.fail_downtime;
  std::vector<std::uint64_t> attempt(queue.size(), 0);
  // Intern every (phase, task) noise key up front — one hash per queue
  // entry instead of one per dispatch attempt.
  std::vector<std::uint64_t> nkey(queue.size());
  for (std::size_t t = 0; t < queue.size(); ++t)
    nkey[t] = perturbation.noise_key(queue[t].phase, queue[t].name);

  for (std::size_t t = 0; t < queue.size(); ++t) {
    // Groups the machine cannot legally run this task on (overcommitted
    // memory, dead link) are set aside — skipped for this task only, not
    // retired — and rejoin the pool once the task is placed or given up.
    std::vector<Entry> unfit;
    for (bool placed = false; !placed;) {
      if (pool.empty()) {
        if (unfit.empty()) {
          // Every group has retired with work remaining.
          out.completed = false;
          return out;
        }
        // No surviving group can run this task; it stays unrun while the
        // rest of the queue drains on the groups that remain.
        out.completed = false;
        ++out.rejected;
        break;
      }
      const auto [free, g] = pool.top();
      pool.pop();
      const NodeSet& nodes = groups[g];
      const bool hit = perturbation.hits(nodes);
      if (hit && free >= fail_at && free < recover) {
        // The group is down; it rejoins the pool when the node recovers,
        // or retires for good under a permanent failure.
        if (!std::isinf(recover)) pool.push({recover, g});
        continue;
      }
      const auto span = static_cast<double>(nodes.count);
      const double comm = machine.comm_seconds(queue[t].comm_gb, span);
      const double page = machine.page_seconds(queue[t].memory_gb, span);
      if (!machine.memory_feasible(queue[t].memory_gb, span) ||
          std::isinf(comm)) {
        unfit.push_back({free, g});
        continue;
      }
      const double factor = perturbation.noise_keyed(nkey[t], attempt[t]);
#ifndef NDEBUG
      HSLB_ASSERT(factor == perturbation.noise(queue[t].phase, queue[t].name,
                                               attempt[t]));
#endif
      const double duration =
          queue[t].seconds(static_cast<long long>(nodes.count)) * factor *
          perturbation.slowdown(nodes);
      const double start = free;
      const double end = start + duration + comm + page;
      if (hit && start < fail_at && end > fail_at) {
        // Abort; the task goes back to the queue head and is re-dispatched
        // to whichever group frees up next — dynamic dispatch shrugs off
        // the failure that would wedge a static schedule.
        out.trace.events.push_back({queue[t].name, queue[t].phase, nodes.first,
                                    nodes.count, start, fail_at, true});
        ++out.restarts;
        ++attempt[t];
        if (!std::isinf(recover)) pool.push({recover, g});
        continue;
      }
      out.trace.events.push_back({queue[t].name, queue[t].phase, nodes.first,
                                  nodes.count, start, end, false});
      out.tasks[t] = {start, end};
      out.task_group[t] = g;
      out.group_busy[g] += duration + comm + page;
      out.comm_seconds += comm;
      out.page_seconds += page;
      out.makespan = std::max(out.makespan, end);
      pool.push({end, g});
      placed = true;
    }
    for (const auto& e : unfit) pool.push(e);
  }
  return out;
}

}  // namespace hslb::sim
