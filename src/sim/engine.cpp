#include "sim/engine.hpp"

#include "common/contracts.hpp"

namespace hslb::sim {

void Engine::schedule(Time t, std::function<void()> fn) {
  HSLB_EXPECTS(t >= now_);
  HSLB_EXPECTS(static_cast<bool>(fn));
  queue_.push(Item{t, seq_++, std::move(fn)});
}

void Engine::schedule_in(Time dt, std::function<void()> fn) {
  HSLB_EXPECTS(dt >= 0.0);
  schedule(now_ + dt, std::move(fn));
}

void Engine::step() {
  // Copy out before pop: the callback may schedule new events.
  auto fn = queue_.top().fn;
  now_ = queue_.top().time;
  queue_.pop();
  ++processed_;
  fn();
}

Time Engine::run() {
  while (!queue_.empty()) step();
  return now_;
}

Time Engine::run_until(Time deadline) {
  HSLB_EXPECTS(deadline >= now_);
  while (!queue_.empty() && queue_.top().time <= deadline) step();
  if (now_ < deadline) now_ = deadline;
  return now_;
}

}  // namespace hslb::sim
