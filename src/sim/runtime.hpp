// The discrete-event execution runtime behind the Execute step.
//
// One engine, two dispatch modes:
//
//   * static dependency-driven scheduling (Runtime::run): tasks are placed
//     on fixed node sets with explicit dependencies — the HSLB regime,
//     where the Solve step already decided who runs where;
//   * dynamic shared-queue dispatch (Runtime::run_queue): a work queue is
//     drained by the earliest-free processor group — the stock DLB
//     baseline the paper argues against.
//
// Both modes run on a sim::Machine, record a per-attempt sim::Trace, and
// accept a Perturbation: keyed multiplicative noise per (phase, task,
// attempt), per-node straggler slowdown factors, and a single node
// fail-stop at a scheduled time (tasks running on the failed node abort
// and restart; with infinite downtime a static task pinned to that node
// can never run, while the dynamic queue simply re-dispatches elsewhere —
// the brittleness-vs-resilience trade the robustness bench measures).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "sim/machine.hpp"
#include "sim/taskgraph.hpp"
#include "sim/trace.hpp"

namespace hslb::sim {

/// What can go wrong between benchmarking and the production run.
struct Perturbation {
  /// Keyed multiplicative lognormal noise (0 = exact durations).
  double noise_cv = 0.0;
  std::uint64_t seed = 0;

  /// Per-node slowdown factors (>= 1); empty = no stragglers. Nodes past
  /// the vector's size run at full speed. A task runs at the speed of the
  /// slowest node in its set.
  std::vector<double> node_slowdown;

  static constexpr long long kNoFail = -1;
  /// Node that fail-stops at `fail_time` for `fail_downtime` seconds
  /// (infinity = permanent). kNoFail disables failure injection.
  long long fail_node = kNoFail;
  double fail_time = 0.0;
  double fail_downtime = std::numeric_limits<double>::infinity();

  bool fails() const { return fail_node >= 0; }
  /// True when the failed node lies inside `nodes`.
  bool hits(const NodeSet& nodes) const;

  /// max slowdown factor over the node set (1 when no stragglers).
  double slowdown(const NodeSet& nodes) const;

  /// One keyed noise factor: deterministic in (seed, phase, task, attempt)
  /// so results are invariant to scheduling order — the same convention as
  /// cesm::Simulator::benchmark_at. Equivalent to
  /// noise_keyed(noise_key(phase, task), attempt).
  double noise(const std::string& phase, const std::string& task,
               std::uint64_t attempt) const;

  /// Interned (phase, task) noise key: hash the strings once, then draw
  /// per attempt with noise_keyed. The runtime computes this once per task
  /// instead of re-hashing both strings on every attempt.
  std::uint64_t noise_key(const std::string& phase,
                          const std::string& task) const;

  /// The attempt draw for an interned key; bitwise identical to noise().
  double noise_keyed(std::uint64_t key, std::uint64_t attempt) const;

  /// Draws per-node straggler factors max(1, lognormal(cv)) from one
  /// seeded stream; use to share factors between runs being compared.
  static std::vector<double> stragglers(std::size_t nodes, double cv,
                                        std::uint64_t seed);
};

/// Epoch controls for Runtime::run: resume from carried node free times,
/// stop dispatching at a time horizon, pause on a permanent failure. The
/// defaults reproduce the one-shot run exactly (same code path).
struct EpochOptions {
  /// Initial per-node free times carried in from a previous epoch. Empty =
  /// all nodes free at 0; otherwise size must equal the machine's nodes.
  std::vector<double> initial_node_free;

  /// Tasks whose start would land at or past the horizon are deferred (left
  /// unrun, counted in RunResult::deferred) instead of scheduled.
  double horizon = std::numeric_limits<double>::infinity();

  /// When a task becomes permanently infeasible (its node set lost a node
  /// forever), pause the run — defer the task and everything after it — so
  /// a controller can reallocate, instead of cascading failure through the
  /// dependents the way the one-shot scheduler does.
  bool stop_on_failure = false;
};

/// Resumable state returned by an epoch run: what finished, where every
/// node's clock stands, and what was observed for refitting.
struct EpochState {
  /// Per-node free time after the epoch (successful task ends applied over
  /// the initial free times).
  std::vector<double> node_free;

  /// Per task id: 1 when the task ran to completion this epoch.
  std::vector<std::uint8_t> ran;

  /// Observed (task id, seconds) durations of successful non-fixed tasks —
  /// the final attempt's wall time minus communication/paging charges, i.e.
  /// the quantity the compute cost model predicts.
  std::vector<std::pair<std::size_t, double>> observed;
};

/// Outcome of a static Runtime::run.
struct RunResult {
  Trace trace;
  /// Final (successful) placement per task id; tasks that never ran have
  /// start == end == infinity.
  std::vector<ScheduledTask> tasks;
  bool completed = true;   ///< every task ran to completion
  std::size_t restarts = 0;  ///< aborted attempts re-run after the failure
  double makespan = 0.0;   ///< latest successful task end
  /// Tasks whose placement the machine rejected outright (memory overcommit
  /// on a non-paging machine, nonzero traffic on a zero-bandwidth link).
  std::size_t rejected = 0;
  double comm_seconds = 0.0;  ///< total link-serialization charge
  double page_seconds = 0.0;  ///< total paging charge
  /// Tasks left unrun by an epoch horizon or a stop_on_failure pause (their
  /// placements stay at infinity); always 0 for a one-shot run.
  std::size_t deferred = 0;
  /// The run paused at a permanently infeasible task (stop_on_failure);
  /// `completed` is false and the task id is in `paused_task`.
  bool failure_paused = false;
  std::size_t paused_task = 0;  ///< valid only when failure_paused
};

/// Outcome of a dynamic Runtime::run_queue.
struct QueueRunResult {
  Trace trace;
  /// Final placement per queue index (unrun = infinity, as in RunResult).
  std::vector<ScheduledTask> tasks;
  /// Group each queue entry ultimately ran on (undefined when unrun).
  std::vector<std::size_t> task_group;
  /// Useful busy seconds per group (aborted attempts excluded).
  std::vector<double> group_busy;
  bool completed = true;
  std::size_t restarts = 0;
  double makespan = 0.0;  ///< latest event end (>= the given start time)
  /// Queue entries no group could legally run (see RunResult::rejected).
  std::size_t rejected = 0;
  double comm_seconds = 0.0;
  double page_seconds = 0.0;
};

class Runtime {
 public:
  explicit Runtime(Machine machine);

  /// Adds a task; deps must reference earlier ids. `phase` keys the noise
  /// draw and labels the trace; `fixed` exempts the task from noise and
  /// stragglers (synchronization barriers, analytic phases); `demand` is
  /// the task's communication/memory footprint, charged and checked
  /// against the machine (zero demand = pure compute, no charge).
  std::size_t add_task(std::string name, double duration, NodeSet nodes,
                       std::vector<std::size_t> deps = {},
                       std::string phase = {}, bool fixed = false,
                       TaskDemand demand = {});

  std::size_t num_tasks() const { return tasks_.size(); }
  const Task& task(std::size_t id) const;
  const Machine& machine() const { return machine_; }

  /// Static dependency-driven execution: event-driven list scheduling (the
  /// ready task that can start earliest runs next; FIFO tie-break by id),
  /// with the perturbation applied per attempt.
  RunResult run(const Perturbation& perturbation = {}) const;

  /// Epoch execution: the same scheduler resumed from carried node free
  /// times, cut off at a horizon, and pausable on permanent failure. With
  /// default EpochOptions this is bit-identical to run(perturbation) — the
  /// one-shot path is the degenerate single epoch. `state`, when non-null,
  /// receives the resumable epoch state.
  RunResult run(const Perturbation& perturbation, const EpochOptions& epoch,
                EpochState* state = nullptr) const;

  /// A task pulled from the shared queue: duration is a function of the
  /// pulling group's node count (groups differ in size).
  struct QueueTask {
    std::string name;
    std::function<double(long long)> seconds;
    std::string phase;
    /// Communication/memory demand, checked per candidate group: a group
    /// that cannot legally run the task is skipped (not retired) and the
    /// task goes to the next free group instead.
    double comm_gb = 0.0;
    double memory_gb = 0.0;
  };

  /// Dynamic dispatch: `queue` is drained in order by the earliest-free
  /// group (ties broken by group id), all groups free at `start_time`.
  /// A group containing the failed node retires for the downtime (forever
  /// when it is infinite); its running task aborts and re-enters the queue
  /// front. Returns completed = false only when every group has retired
  /// with work remaining.
  static QueueRunResult run_queue(const Machine& machine,
                                  const std::vector<NodeSet>& groups,
                                  const std::vector<QueueTask>& queue,
                                  const Perturbation& perturbation = {},
                                  double start_time = 0.0);

 private:
  Machine machine_;
  std::vector<Task> tasks_;
};

}  // namespace hslb::sim
