#include "sim/machine.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace hslb::sim {

double Machine::comm_seconds(double volume_gb, double span) const {
  HSLB_EXPECTS(volume_gb >= 0.0);
  HSLB_EXPECTS(span >= 0.0);
  const double traffic = volume_gb * span;
  if (traffic == 0.0) return 0.0;  // exact zero even on a zero-bandwidth link
  return traffic / link_gb_per_s;
}

double Machine::page_seconds(double memory_gb, double span) const {
  HSLB_EXPECTS(memory_gb >= 0.0);
  HSLB_EXPECTS(span >= 1.0);
  const double spill = std::max(0.0, memory_gb / span - memory_gb_per_node);
  if (spill == 0.0) return 0.0;
  return page_s_per_gb * spill * span;
}

double Machine::migration_seconds(double volume_gb) const {
  HSLB_EXPECTS(volume_gb >= 0.0);
  if (!models_communication() || volume_gb == 0.0) return 0.0;
  return volume_gb / link_gb_per_s;
}

bool Machine::memory_feasible(double memory_gb, double span) const {
  HSLB_EXPECTS(memory_gb >= 0.0);
  HSLB_EXPECTS(span >= 1.0);
  if (memory_gb / span <= memory_gb_per_node) return true;
  return page_s_per_gb > 0.0;  // paging machines penalize instead of reject
}

Machine Machine::intrepid() { return Machine{"intrepid", 40960, 4}; }

Machine Machine::intrepid_partition(std::size_t nodes) {
  HSLB_EXPECTS(nodes >= 1 && nodes <= 40960);
  return Machine{"intrepid", nodes, 4};
}

Machine Machine::workstation(std::size_t nodes) {
  HSLB_EXPECTS(nodes >= 1);
  return Machine{"workstation", nodes, 1};
}

}  // namespace hslb::sim
