#include "sim/machine.hpp"

#include "common/contracts.hpp"

namespace hslb::sim {

Machine Machine::intrepid() { return Machine{"intrepid", 40960, 4}; }

Machine Machine::intrepid_partition(std::size_t nodes) {
  HSLB_EXPECTS(nodes >= 1 && nodes <= 40960);
  return Machine{"intrepid", nodes, 4};
}

Machine Machine::workstation(std::size_t nodes) {
  HSLB_EXPECTS(nodes >= 1);
  return Machine{"workstation", nodes, 1};
}

}  // namespace hslb::sim
