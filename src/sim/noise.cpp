#include "sim/noise.hpp"

#include "common/contracts.hpp"

namespace hslb::sim {

NoiseModel::NoiseModel(double cv, std::uint64_t seed) : cv_(cv), rng_(seed) {
  HSLB_EXPECTS(cv >= 0.0);
}

double NoiseModel::perturb(double true_seconds) {
  HSLB_EXPECTS(true_seconds > 0.0);
  return true_seconds * rng_.lognormal_unit_mean(cv_);
}

}  // namespace hslb::sim
