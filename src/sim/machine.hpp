// Machine description: the physical computing units HSLB allocates.
//
// §III-C: "nodes were used to represent the physical computing unit in our
// algorithm. On Intrepid, there are 4 cores per node and CESM is run with
// 1 MPI task and 4 threads per task on each node."
#pragma once

#include <cstddef>
#include <string>

namespace hslb::sim {

struct Machine {
  std::string name;
  std::size_t nodes = 0;
  std::size_t cores_per_node = 1;

  std::size_t total_cores() const { return nodes * cores_per_node; }

  /// Intrepid: IBM Blue Gene/P at the Argonne Leadership Computing
  /// Facility — 40,960 quad-core nodes (163,840 cores). The paper's runs
  /// use up to 32,768 nodes (131,072 cores) of it.
  static Machine intrepid();

  /// A partition of Intrepid with the given node count (BG/P partitions are
  /// powers of two times 512, but we accept any size for experiments).
  static Machine intrepid_partition(std::size_t nodes);

  /// Small machine for unit tests and the quickstart example.
  static Machine workstation(std::size_t nodes = 16);
};

}  // namespace hslb::sim
