// Machine description: the physical computing units HSLB allocates.
//
// §III-C: "nodes were used to represent the physical computing unit in our
// algorithm. On Intrepid, there are 4 cores per node and CESM is run with
// 1 MPI task and 4 threads per task on each node."
//
// Beyond the paper's compute-only view, a machine optionally models the
// per-node interconnect link and memory capacity. The defaults (infinite
// bandwidth, infinite memory, zero paging cost) mean "unmodeled": every
// communication or memory charge evaluates to exactly zero, so compute-only
// configurations are bit-identical to the pre-extension behavior.
#pragma once

#include <cstddef>
#include <limits>
#include <string>

namespace hslb::sim {

struct Machine {
  std::string name;
  std::size_t nodes = 0;
  std::size_t cores_per_node = 1;

  /// Injection bandwidth of one node's link, GB/s. Infinite = communication
  /// unmodeled; zero = a degenerate machine that cannot communicate at all
  /// (any nonzero exchange is infeasible).
  double link_gb_per_s = std::numeric_limits<double>::infinity();

  /// Usable memory per node, GB. Infinite = memory unmodeled.
  double memory_gb_per_node = std::numeric_limits<double>::infinity();

  /// Seconds per GB of working set spilled past node memory. Zero (the
  /// default) makes overcommit a hard infeasibility; positive values model
  /// soft paging/out-of-core penalties instead of rejection.
  double page_s_per_gb = 0.0;

  std::size_t total_cores() const { return nodes * cores_per_node; }

  bool models_communication() const {
    return link_gb_per_s != std::numeric_limits<double>::infinity();
  }
  bool models_memory() const {
    return memory_gb_per_node != std::numeric_limits<double>::infinity();
  }

  /// Seconds to deliver `volume_gb` to each of `span` ranks over this
  /// machine's links: the sending side serializes one replicated halo per
  /// destination, so the charge grows linearly with the span. Zero volume
  /// or span charges exactly 0.0; zero bandwidth with nonzero traffic is
  /// infinite (the placement is infeasible).
  double comm_seconds(double volume_gb, double span) const;

  /// Paging penalty for a task whose `memory_gb` working set is split
  /// across `span` nodes: page_s_per_gb * max(0, memory_gb/span - capacity)
  /// per node, summed over the span. Exactly 0.0 when within capacity.
  double page_seconds(double memory_gb, double span) const;

  /// True when a task needing `memory_gb` across `span` nodes fits in node
  /// memory, or the machine pages instead of rejecting (page_s_per_gb > 0).
  bool memory_feasible(double memory_gb, double span) const;

  /// Seconds to move `volume_gb` of task state between node sets when a
  /// rebalance changes a placement: bytes moved / link bandwidth. Exactly
  /// 0.0 on machines that do not model communication, so compute-only
  /// configurations charge nothing for migration.
  double migration_seconds(double volume_gb) const;

  /// Intrepid: IBM Blue Gene/P at the Argonne Leadership Computing
  /// Facility — 40,960 quad-core nodes (163,840 cores). The paper's runs
  /// use up to 32,768 nodes (131,072 cores) of it.
  static Machine intrepid();

  /// A partition of Intrepid with the given node count (BG/P partitions are
  /// powers of two times 512, but we accept any size for experiments).
  static Machine intrepid_partition(std::size_t nodes);

  /// Small machine for unit tests and the quickstart example.
  static Machine workstation(std::size_t nodes = 16);
};

}  // namespace hslb::sim
