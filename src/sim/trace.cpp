#include "sim/trace.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/contracts.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"

namespace hslb::sim {

double Trace::makespan() const {
  double end = 0.0;
  for (const auto& e : events) end = std::max(end, e.end);
  return end;
}

double Trace::busy_node_seconds() const {
  double busy = 0.0;
  for (const auto& e : events)
    if (!e.aborted) busy += e.seconds() * static_cast<double>(e.count);
  return busy;
}

std::vector<double> Trace::node_busy() const {
  std::vector<double> busy(nodes, 0.0);
  for (const auto& e : events) {
    if (e.aborted) continue;
    const std::size_t hi = std::min(e.first + e.count, nodes);
    for (std::size_t n = e.first; n < hi; ++n) busy[n] += e.seconds();
  }
  return busy;
}

double Trace::efficiency() const {
  const double span = makespan();
  if (nodes == 0 || span <= 0.0) return 1.0;
  return busy_node_seconds() / (span * static_cast<double>(nodes));
}

double Trace::imbalance() const {
  std::vector<double> used;
  for (double b : node_busy())
    if (b > 0.0) used.push_back(b);
  if (used.empty()) return 0.0;
  return stats::imbalance(used);
}

double Trace::percent_imbalance() const {
  if (nodes == 0) return 0.0;
  const std::vector<double> busy = node_busy();
  const double max = *std::max_element(busy.begin(), busy.end());
  const double mean = busy_node_seconds() / static_cast<double>(nodes);
  if (mean <= 0.0) return 0.0;
  return (max / mean - 1.0) * 100.0;
}

void Trace::append(const Trace& other) {
  events.insert(events.end(), other.events.begin(), other.events.end());
}

std::string Trace::gantt(std::size_t width) const {
  HSLB_EXPECTS(width >= 10);
  std::ostringstream out;
  const double span = std::max(makespan(), 1e-12);
  std::size_t name_width = 4;
  for (const auto& e : events) name_width = std::max(name_width, e.task.size());
  for (const auto& e : events) {
    // Clamp so zero-duration events at the makespan still get one cell and
    // the trailing pad never underflows: begin <= width-1, finish <= width.
    auto begin = static_cast<std::size_t>(
        std::floor(e.start / span * static_cast<double>(width)));
    begin = std::min(begin, width - 1);
    auto finish = static_cast<std::size_t>(
        std::ceil(e.end / span * static_cast<double>(width)));
    finish = std::min(finish, width);
    const std::size_t bar = std::max<std::size_t>(finish - begin, 1);
    out << e.task << std::string(name_width - e.task.size(), ' ') << " |"
        << std::string(begin, ' ') << std::string(bar, e.aborted ? 'x' : '#')
        << std::string(width - std::max(finish, begin + 1), ' ') << "| "
        << e.start << " - " << e.end << "\n";
  }
  return out.str();
}

std::string Trace::to_csv() const {
  std::string out = strings::format(
      "# machine=%s nodes=%zu cores_per_node=%zu\n"
      "task,phase,first,count,start,end,aborted\n",
      machine.c_str(), nodes, cores_per_node);
  for (const auto& e : events) {
    HSLB_EXPECTS(e.task.find(',') == std::string::npos &&
                 e.phase.find(',') == std::string::npos);
    out += strings::format("%s,%s,%zu,%zu,%.17g,%.17g,%d\n", e.task.c_str(),
                           e.phase.c_str(), e.first, e.count, e.start, e.end,
                           e.aborted ? 1 : 0);
  }
  return out;
}

Trace Trace::from_csv(const std::string& text) {
  Trace out;
  for (const auto& raw : strings::split(text, '\n')) {
    const auto line = strings::trim(raw);
    if (line.empty()) continue;
    if (line[0] == '#') {
      for (const auto& token : strings::split(line.substr(1), ' ')) {
        const auto eq = token.find('=');
        if (eq == std::string::npos) continue;
        const auto key = token.substr(0, eq);
        const auto value = token.substr(eq + 1);
        if (key == "machine") out.machine = value;
        if (key == "nodes")
          out.nodes = static_cast<std::size_t>(strings::to_int(value));
        if (key == "cores_per_node")
          out.cores_per_node = static_cast<std::size_t>(strings::to_int(value));
      }
      continue;
    }
    if (line.rfind("task,", 0) == 0) continue;  // header row
    const auto fields = strings::split(line, ',');
    HSLB_EXPECTS(fields.size() == 7);
    TraceEvent e;
    e.task = fields[0];
    e.phase = fields[1];
    e.first = static_cast<std::size_t>(strings::to_int(fields[2]));
    e.count = static_cast<std::size_t>(strings::to_int(fields[3]));
    e.start = strings::to_double(fields[4]);
    e.end = strings::to_double(fields[5]);
    e.aborted = strings::to_int(fields[6]) != 0;
    out.events.push_back(std::move(e));
  }
  return out;
}

std::string Trace::to_json() const {
  std::string out = strings::format(
      "{\n"
      "  \"machine\": \"%s\",\n"
      "  \"nodes\": %zu,\n"
      "  \"cores_per_node\": %zu,\n"
      "  \"makespan_s\": %.17g,\n"
      "  \"busy_node_s\": %.17g,\n"
      "  \"efficiency\": %.17g,\n"
      "  \"imbalance\": %.17g,\n"
      "  \"events\": [\n",
      machine.c_str(), nodes, cores_per_node, makespan(), busy_node_seconds(),
      efficiency(), imbalance());
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& e = events[i];
    out += strings::format(
        "    {\"task\": \"%s\", \"phase\": \"%s\", \"first\": %zu, "
        "\"count\": %zu, \"start\": %.17g, \"end\": %.17g, \"aborted\": %s}%s\n",
        e.task.c_str(), e.phase.c_str(), e.first, e.count, e.start, e.end,
        e.aborted ? "true" : "false", i + 1 < events.size() ? "," : "");
  }
  out += "  ]\n}\n";
  return out;
}

void Trace::save(const std::string& path) const {
  std::ofstream out(path);
  HSLB_EXPECTS(out.good());
  const bool json =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  out << (json ? to_json() : to_csv());
  HSLB_EXPECTS(out.good());
}

Trace Trace::load(const std::string& path) {
  std::ifstream in(path);
  HSLB_EXPECTS(in.good());
  std::ostringstream text;
  text << in.rdbuf();
  return from_csv(text.str());
}

}  // namespace hslb::sim
