// Task graphs executed on node sets: the execution model of the Execute
// step.
//
// A task occupies a contiguous range of machine nodes for `duration`
// seconds and may depend on other tasks. Execution is event-driven list
// scheduling: a task starts as soon as (a) all dependencies completed and
// (b) all of its nodes are free. This captures both CESM's
// sequential/concurrent component layouts (Figure 1) and FMO's
// fragment-on-group waves.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hslb::sim {

/// Contiguous range of node indices [first, first + count).
struct NodeSet {
  std::size_t first = 0;
  std::size_t count = 0;

  std::size_t end() const { return first + count; }
  bool overlaps(const NodeSet& other) const;
};

/// Communication and memory footprint of one task — what the extended cost
/// terms model and sim::Machine charges for. Zero (the default) keeps the
/// task purely compute: no charge, no feasibility check, bit-identical to
/// the demand-free runtime.
struct TaskDemand {
  /// GB of halo data each of the task's nodes must receive from off-node
  /// neighbours per execution (charged via Machine::comm_seconds).
  double comm_gb = 0.0;
  /// GB of working set the task spreads across its node span (checked and
  /// charged via Machine::memory_feasible / page_seconds).
  double memory_gb = 0.0;
};

struct Task {
  std::string name;
  double duration = 0.0;
  NodeSet nodes;
  std::vector<std::size_t> deps;  ///< indices of prerequisite tasks
  /// Runtime extensions (see sim/runtime.hpp): `phase` keys the noise draw
  /// and labels trace events; `fixed` exempts the task from noise and
  /// straggler slowdowns (synchronization barriers, analytic phases).
  std::string phase;
  bool fixed = false;
  /// Runtime extensions: per-execution communication and memory demand.
  double comm_gb = 0.0;
  double memory_gb = 0.0;
};

struct ScheduledTask {
  double start = 0.0;
  double end = 0.0;
};

struct Schedule {
  std::vector<ScheduledTask> tasks;
  double makespan = 0.0;

  /// Busy seconds per node over the machine (indexible by node id).
  std::vector<double> node_busy;

  /// sum(node_busy) / (nodes * makespan); nodes defaults to node_busy size.
  double efficiency() const;

  /// max(node_busy)/mean(node_busy) - 1 over nodes that were ever used.
  double imbalance() const;
};

class TaskGraph {
 public:
  /// Total nodes available; tasks must fit inside [0, nodes).
  explicit TaskGraph(std::size_t nodes);

  /// Adds a task; deps must reference earlier tasks. Returns the task id.
  std::size_t add_task(std::string name, double duration, NodeSet nodes,
                       std::vector<std::size_t> deps = {});

  std::size_t num_tasks() const { return tasks_.size(); }
  const Task& task(std::size_t id) const;
  std::size_t nodes() const { return num_nodes_; }

  /// Deterministic event-driven schedule of all tasks. Delegates to the
  /// unperturbed sim::Runtime — one scheduling implementation serves both.
  Schedule run() const;

  /// ASCII Gantt chart of a schedule (one row per task), for the examples.
  /// Delegates to sim::Trace::gantt.
  std::string gantt(const Schedule& s, std::size_t width = 60) const;

 private:
  std::size_t num_nodes_;
  std::vector<Task> tasks_;
};

}  // namespace hslb::sim
