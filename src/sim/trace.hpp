// Per-task execution traces: what the runtime records while executing the
// Execute step, and the exchange format behind the CLI's `--trace`.
//
// A trace is a flat list of (task, phase, node range, start, end) events on
// one machine. Aborted attempts (a node fail-stop interrupting a running
// task) are kept in the trace with `aborted = true` so perturbation studies
// can see the wasted work, but they do not count as useful busy time.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hslb::sim {

struct TraceEvent {
  std::string task;
  std::string phase;
  std::size_t first = 0;  ///< node range [first, first + count)
  std::size_t count = 0;
  double start = 0.0;
  double end = 0.0;
  bool aborted = false;  ///< interrupted by a fail-stop; work was lost

  double seconds() const { return end - start; }
};

struct Trace {
  std::string machine;  ///< machine name the run was placed on
  std::size_t nodes = 0;
  std::size_t cores_per_node = 1;
  std::vector<TraceEvent> events;

  /// Latest event end (0 for an empty trace).
  double makespan() const;

  /// Useful node-seconds: sum of duration * node count over completed
  /// (non-aborted) events.
  double busy_node_seconds() const;

  /// Useful busy seconds per node (size = nodes).
  std::vector<double> node_busy() const;

  /// busy_node_seconds / (nodes * makespan); 1 for an empty trace.
  double efficiency() const;

  /// max/mean - 1 of busy time over nodes that were ever busy.
  double imbalance() const;

  /// Percent imbalance λ of arXiv:2104.01688: (max/mean - 1) × 100 with the
  /// mean taken over *all* allocated nodes (idle ones included), so unused
  /// capacity shows up as imbalance rather than vanishing. 0 for an empty
  /// trace or a machine with no nodes.
  double percent_imbalance() const;

  /// Appends another trace's events (times must already be absolute).
  void append(const Trace& other);

  /// ASCII Gantt chart, one row per event; aborted attempts render as 'x'.
  /// Handles empty traces and zero-duration events.
  std::string gantt(std::size_t width = 60) const;

  /// CSV with a `# machine=... nodes=... cores_per_node=...` comment line;
  /// doubles use %.17g so a round-trip is exact. Task and phase names must
  /// not contain commas or newlines.
  std::string to_csv() const;
  static Trace from_csv(const std::string& text);

  /// JSON object with machine metadata, summary metrics, and the event
  /// list (export only; load() reads CSV).
  std::string to_json() const;

  /// Writes to `path`: ".json" suffix selects JSON, anything else CSV.
  void save(const std::string& path) const;

  /// Reads a CSV trace previously written by save()/to_csv().
  static Trace load(const std::string& path);
};

}  // namespace hslb::sim
