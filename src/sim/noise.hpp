// Measurement-noise models for the simulated Gather step.
//
// Real benchmark timings are noisy; §IV-A singles out the sea-ice (CICE)
// component, whose decomposition-dependent block sizes "increased the noise
// in the sea ice performance curve fit". We model multiplicative lognormal
// noise with unit mean and a per-task coefficient of variation, so noisy
// timings stay positive and unbiased.
#pragma once

#include <cstdint>

#include "common/rng.hpp"

namespace hslb::sim {

class NoiseModel {
 public:
  /// cv = coefficient of variation of the multiplicative factor (0 = exact).
  explicit NoiseModel(double cv, std::uint64_t seed = 2024);

  /// Applies one noise draw to a true duration (> 0 stays > 0).
  double perturb(double true_seconds);

  double cv() const { return cv_; }

 private:
  double cv_;
  Rng rng_;
};

}  // namespace hslb::sim
