#include "sim/taskgraph.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "common/stats.hpp"
#include "sim/runtime.hpp"
#include "sim/trace.hpp"

namespace hslb::sim {

bool NodeSet::overlaps(const NodeSet& other) const {
  if (count == 0 || other.count == 0) return false;
  return first < other.end() && other.first < end();
}

double Schedule::efficiency() const {
  if (node_busy.empty() || makespan <= 0.0) return 1.0;
  return stats::sum(node_busy) /
         (makespan * static_cast<double>(node_busy.size()));
}

double Schedule::imbalance() const {
  std::vector<double> used;
  for (double b : node_busy)
    if (b > 0.0) used.push_back(b);
  if (used.empty()) return 0.0;
  return stats::imbalance(used);
}

TaskGraph::TaskGraph(std::size_t nodes) : num_nodes_(nodes) {
  HSLB_EXPECTS(nodes >= 1);
}

std::size_t TaskGraph::add_task(std::string name, double duration,
                                NodeSet nodes, std::vector<std::size_t> deps) {
  HSLB_EXPECTS(duration >= 0.0);
  HSLB_EXPECTS(nodes.count >= 1);
  HSLB_EXPECTS(nodes.end() <= num_nodes_);
  for (std::size_t d : deps) HSLB_EXPECTS(d < tasks_.size());
  tasks_.push_back(
      Task{std::move(name), duration, nodes, std::move(deps), {}, false});
  return tasks_.size() - 1;
}

const Task& TaskGraph::task(std::size_t id) const {
  HSLB_EXPECTS(id < tasks_.size());
  return tasks_[id];
}

Schedule TaskGraph::run() const {
  Runtime rt(Machine{"", num_nodes_, 1});
  for (const auto& t : tasks_)
    rt.add_task(t.name, t.duration, t.nodes, t.deps, t.phase, t.fixed);
  const auto rr = rt.run();
  Schedule out;
  out.tasks = rr.tasks;
  out.makespan = rr.makespan;
  out.node_busy = rr.trace.node_busy();
  return out;
}

std::string TaskGraph::gantt(const Schedule& s, std::size_t width) const {
  HSLB_EXPECTS(s.tasks.size() == tasks_.size());
  Trace trace;
  trace.nodes = num_nodes_;
  trace.events.reserve(tasks_.size());
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    trace.events.push_back({tasks_[i].name, tasks_[i].phase,
                            tasks_[i].nodes.first, tasks_[i].nodes.count,
                            s.tasks[i].start, s.tasks[i].end, false});
  }
  return trace.gantt(width);
}

}  // namespace hslb::sim
