#include "sim/taskgraph.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/contracts.hpp"
#include "common/stats.hpp"

namespace hslb::sim {

bool NodeSet::overlaps(const NodeSet& other) const {
  if (count == 0 || other.count == 0) return false;
  return first < other.end() && other.first < end();
}

double Schedule::efficiency() const {
  if (node_busy.empty() || makespan <= 0.0) return 1.0;
  return stats::sum(node_busy) /
         (makespan * static_cast<double>(node_busy.size()));
}

double Schedule::imbalance() const {
  std::vector<double> used;
  for (double b : node_busy)
    if (b > 0.0) used.push_back(b);
  if (used.empty()) return 0.0;
  return stats::imbalance(used);
}

TaskGraph::TaskGraph(std::size_t nodes) : num_nodes_(nodes) {
  HSLB_EXPECTS(nodes >= 1);
}

std::size_t TaskGraph::add_task(std::string name, double duration,
                                NodeSet nodes, std::vector<std::size_t> deps) {
  HSLB_EXPECTS(duration >= 0.0);
  HSLB_EXPECTS(nodes.count >= 1);
  HSLB_EXPECTS(nodes.end() <= num_nodes_);
  for (std::size_t d : deps) HSLB_EXPECTS(d < tasks_.size());
  tasks_.push_back(Task{std::move(name), duration, nodes, std::move(deps)});
  return tasks_.size() - 1;
}

const Task& TaskGraph::task(std::size_t id) const {
  HSLB_EXPECTS(id < tasks_.size());
  return tasks_[id];
}

Schedule TaskGraph::run() const {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  Schedule out;
  out.tasks.assign(tasks_.size(), ScheduledTask{});
  out.node_busy.assign(num_nodes_, 0.0);

  std::vector<double> node_free(num_nodes_, 0.0);
  std::vector<bool> done(tasks_.size(), false);

  for (std::size_t scheduled = 0; scheduled < tasks_.size(); ++scheduled) {
    // Pick the ready task that can start earliest; FIFO tie-break by id.
    std::size_t best = tasks_.size();
    double best_start = kInf;
    for (std::size_t t = 0; t < tasks_.size(); ++t) {
      if (done[t]) continue;
      bool ready = true;
      double start = 0.0;
      for (std::size_t d : tasks_[t].deps) {
        if (!done[d]) {
          ready = false;
          break;
        }
        start = std::max(start, out.tasks[d].end);
      }
      if (!ready) continue;
      for (std::size_t n = tasks_[t].nodes.first; n < tasks_[t].nodes.end(); ++n)
        start = std::max(start, node_free[n]);
      if (start < best_start) {
        best_start = start;
        best = t;
      }
    }
    // A dependency cycle is impossible because deps reference earlier ids.
    HSLB_ASSERT(best < tasks_.size());

    const Task& t = tasks_[best];
    out.tasks[best].start = best_start;
    out.tasks[best].end = best_start + t.duration;
    for (std::size_t n = t.nodes.first; n < t.nodes.end(); ++n) {
      node_free[n] = out.tasks[best].end;
      out.node_busy[n] += t.duration;
    }
    done[best] = true;
    out.makespan = std::max(out.makespan, out.tasks[best].end);
  }
  return out;
}

std::string TaskGraph::gantt(const Schedule& s, std::size_t width) const {
  HSLB_EXPECTS(s.tasks.size() == tasks_.size());
  HSLB_EXPECTS(width >= 10);
  std::ostringstream out;
  const double span = std::max(s.makespan, 1e-12);
  std::size_t name_width = 4;
  for (const auto& t : tasks_) name_width = std::max(name_width, t.name.size());
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    const auto begin = static_cast<std::size_t>(
        std::floor(s.tasks[i].start / span * static_cast<double>(width)));
    auto finish = static_cast<std::size_t>(
        std::ceil(s.tasks[i].end / span * static_cast<double>(width)));
    finish = std::min(finish, width);
    out << tasks_[i].name
        << std::string(name_width - tasks_[i].name.size(), ' ') << " |"
        << std::string(begin, ' ')
        << std::string(std::max<std::size_t>(finish - begin, 1), '#')
        << std::string(width - std::max(finish, begin + 1), ' ') << "| "
        << s.tasks[i].start << " - " << s.tasks[i].end << "\n";
  }
  return out.str();
}

}  // namespace hslb::sim
