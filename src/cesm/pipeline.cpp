#include "cesm/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>

#include "common/contracts.hpp"
#include "common/parallel.hpp"
#include "hslb/gather.hpp"
#include "hslb/registry.hpp"

namespace hslb::cesm {

double PipelineResult::min_r2() const {
  double m = 1.0;
  for (const auto& f : fits) m = std::min(m, f.r2);
  return m;
}

std::vector<std::pair<std::string, std::vector<long long>>> gather_plan(
    Resolution r, long long total_nodes, bool ocean_constrained,
    std::size_t fit_points) {
  HSLB_EXPECTS(total_nodes >= 8);
  HSLB_EXPECTS(fit_points >= 2);

  std::vector<std::pair<std::string, std::vector<long long>>> plan;
  // Memory floor: CESM cannot run on arbitrarily few nodes at scale; probe
  // from ~N/256 up to the full partition (§III-C: smallest feasible to
  // largest possible).
  const long long lo = std::max<long long>(2, total_nodes / 256);

  for (Component c : kComponents) {
    std::vector<long long> counts;
    if (c == Component::Ocn && ocean_constrained) {
      // Probe only allowed sweet spots: pick fit_points of them spread
      // geometrically across the available set.
      const auto& allowed = ocean_allowed_nodes(r);
      std::vector<long long> usable;
      for (long long v : allowed)
        if (v <= total_nodes) usable.push_back(v);
      HSLB_EXPECTS(!usable.empty());
      std::set<long long> picked{usable.front(), usable.back()};
      for (std::size_t i = 1; i + 1 < fit_points; ++i) {
        const double f =
            static_cast<double>(i) / static_cast<double>(fit_points - 1);
        const auto idx = static_cast<std::size_t>(std::llround(
            f * static_cast<double>(usable.size() - 1)));
        picked.insert(usable[idx]);
      }
      counts.assign(picked.begin(), picked.end());
    } else {
      long long hi = total_nodes;
      if (c == Component::Atm && r == Resolution::Deg1)
        hi = std::min<long long>(hi, atm_allowed_nodes_deg1().back());
      counts = geometric_node_counts(std::min(lo, hi), hi, fit_points);
    }
    plan.emplace_back(to_string(c), counts);
  }
  return plan;
}

namespace {

/// The CESM substrate behind the hslb::Pipeline engine: gather_plan's
/// per-component node counts, order-independent simulator probes, the
/// Table I layout MINLP as the Solve step, and a full simulated coupled
/// run as Execute.
class CesmApplication final : public Application, public BaselineReporter {
 public:
  CesmApplication(Resolution r, long long total_nodes,
                  const PipelineOptions& options)
      : resolution_(r),
        total_nodes_(total_nodes),
        options_(options),
        sim_(r, options.sim) {}

  std::string name() const override {
    return std::string("cesm/") + to_string(resolution_);
  }

  GatherPlan gather_plan() override {
    return cesm::gather_plan(resolution_, total_nodes_,
                             options_.ocean_constrained, options_.fit_points);
  }

  double probe(const std::string& task, long long nodes,
               std::uint64_t rep) override {
    return sim_.benchmark_at(component_from_string(task), nodes, rep);
  }

  perf::FitOptions fit_options() const override { return options_.fit; }

  SolveOutcome solve(const std::vector<std::pair<std::string, perf::FitResult>>&
                         fits) override {
    LayoutProblem problem = make_problem(resolution_, options_.layout,
                                         total_nodes_, models_from(fits),
                                         options_.ocean_constrained);
    problem.tsync = options_.tsync;
    solution_ = solve_layout(problem, options_.bnb);
    return outcome_from(solution_);
  }

  double execute(const SolveOutcome&) override {
    const auto machine =
        Simulator::machine_for(options_.layout, solution_.nodes);
    run_ = sim_.run_coupled(options_.layout, solution_.nodes,
                            options_.coupling_intervals,
                            make_perturb(machine.nodes));
    actual_seconds_ = run_.component_seconds;
    actual_total_ = run_.total_seconds;
    executed_ = true;
    return actual_total_;
  }

  // --- Closed-loop hooks: the coupled run in intervals_per_epoch chunks ---

  bool supports_epochs() const override { return true; }

  void begin_epochs(const SolveOutcome&) override {
    sim::Machine machine =
        Simulator::machine_for(options_.layout, solution_.nodes);
    machine.link_gb_per_s = options_.link_gb_per_s;
    auto perturb = make_perturb(machine.nodes);
    runner_ = std::make_unique<CoupledChunkRunner>(
        sim_, options_.layout, options_.coupling_intervals,
        options_.intervals_per_epoch, std::move(machine), std::move(perturb));
    runner_->install(solution_.nodes);
  }

  EpochOutcome execute_epoch(std::size_t) override {
    const auto chunk = runner_->step();
    EpochOutcome out;
    out.done = chunk.done;
    out.failure_detected = chunk.failure;
    out.epoch_seconds = chunk.epoch_seconds;
    out.imbalance = chunk.imbalance;
    out.epochs_remaining = chunk.epochs_remaining;
    // Each completed interval slice, scaled back to a full-run observation
    // so it is commensurable with the fitted models.
    const double scale = static_cast<double>(options_.coupling_intervals);
    for (const auto& s : chunk.slices) {
      out.observations.push_back({to_string(s.component),
                                  static_cast<double>(s.nodes),
                                  s.seconds * scale, 0});
    }
    return out;
  }

  ResolveOutcome resolve(
      const std::vector<std::pair<std::string, perf::FitResult>>& fits,
      const SolveOutcome& incumbent) override {
    const auto models = models_from(fits);
    LayoutProblem problem =
        make_problem(resolution_, options_.layout, runner_->budget(), models,
                     options_.ocean_constrained);
    problem.tsync = options_.tsync;
    // Cold re-solve: the four-variable layout MINLP is small enough that
    // warm seeding buys nothing (the FMO substrate exercises that path).
    const Solution proposal = solve_layout(problem, options_.bnb);
    ResolveOutcome out;
    out.solution = outcome_from(proposal);
    // Re-predict the incumbent under the same refitted models so the
    // controller's accept test compares like with like.
    std::array<double, 4> inc{};
    for (const auto& t : incumbent.allocation.tasks) {
      const auto i = index(component_from_string(t.task));
      inc[i] = models[i].eval(static_cast<double>(t.nodes));
    }
    out.incumbent_predicted = layout_total(options_.layout, inc);
    return out;
  }

  double migration_cost(const SolveOutcome&,
                        const SolveOutcome& to) const override {
    return runner_->machine().migration_seconds(runner_->migration_volume(
        nodes_of(to.allocation), options_.migrate_gb_per_node));
  }

  double apply_allocation(const SolveOutcome& solution) override {
    const auto nodes = nodes_of(solution.allocation);
    const double stall = runner_->migrate(runner_->migration_volume(
        nodes, options_.migrate_gb_per_node));
    runner_->install(nodes);
    return stall;
  }

  double finish_epochs() override {
    run_ = runner_->finish();
    actual_seconds_ = run_.component_seconds;
    actual_total_ = run_.total_seconds;
    executed_ = true;
    return actual_total_;
  }

  sim::Machine machine() const override {
    if (!executed_) return {};
    return Simulator::machine_for(options_.layout, solution_.nodes);
  }

  const sim::Trace* execution_trace() const override {
    return executed_ ? &run_.trace : nullptr;
  }

  bool execution_completed() const override { return run_.completed; }

  std::vector<std::pair<std::string, double>> execution_term_seconds()
      const override {
    return {{"compute", actual_total_}};
  }

  // -- BaselineReporter -------------------------------------------------
  double hslb_total_seconds() override { return actual_total_; }

  /// Naive static baseline: the node budget split evenly over the four
  /// components (remainder to the first), same layout, intervals, and
  /// perturbation — what an allocation-blind launch of the coupled model
  /// costs. Computed lazily (run_coupled is const and keyed, so this never
  /// perturbs the HSLB run's results).
  double dlb_total_seconds() override {
    if (!dlb_ran_) {
      const long long q = std::max<long long>(1, total_nodes_ / 4);
      const std::array<long long, 4> nodes{
          std::max<long long>(1, total_nodes_ - 3 * q), q, q, q};
      const auto machine = Simulator::machine_for(options_.layout, nodes);
      dlb_total_ = sim_
                       .run_coupled(options_.layout, nodes,
                                    options_.coupling_intervals,
                                    make_perturb(machine.nodes))
                       .total_seconds;
      dlb_ran_ = true;
    }
    return dlb_total_;
  }

  // Substrate-specific outputs copied into PipelineResult by run_pipeline.
  Solution solution_;
  Simulator::CoupledRun run_;
  std::array<double, 4> actual_seconds_{};
  double actual_total_ = 0.0;
  bool executed_ = false;
  bool dlb_ran_ = false;
  double dlb_total_ = 0.0;

 private:
  static std::array<perf::Model, 4> models_from(
      const std::vector<std::pair<std::string, perf::FitResult>>& fits) {
    std::array<perf::Model, 4> models;
    for (const auto& [task, fit] : fits)
      models[index(component_from_string(task))] = fit.model;
    return models;
  }

  static std::array<long long, 4> nodes_of(const Allocation& allocation) {
    std::array<long long, 4> nodes{};
    for (const auto& t : allocation.tasks)
      nodes[index(component_from_string(t.task))] = t.nodes;
    return nodes;
  }

  sim::Perturbation make_perturb(std::size_t machine_nodes) const {
    sim::Perturbation perturb;
    perturb.seed = options_.sim.seed;
    if (options_.straggler_cv > 0.0) {
      perturb.node_slowdown = sim::Perturbation::stragglers(
          machine_nodes, options_.straggler_cv, options_.sim.seed);
    }
    perturb.fail_node = options_.fail_node;
    perturb.fail_time = options_.fail_time;
    perturb.fail_downtime = options_.fail_downtime;
    return perturb;
  }

  /// Solution -> engine SolveOutcome (allocation, prediction, solver stats).
  SolveOutcome outcome_from(const Solution& s) const {
    SolveOutcome out;
    for (Component c : kComponents) {
      out.allocation.tasks.push_back(
          {to_string(c), s.nodes[index(c)], s.predicted_seconds[index(c)]});
    }
    out.allocation.predicted_total = s.predicted_total;
    out.predicted_total = s.predicted_total;
    out.solver.status = minlp::to_string(s.stats.status);
    out.solver.nodes = s.stats.nodes;
    out.solver.cuts = s.stats.cuts;
    out.solver.gap = s.stats.gap;
    out.solver.rel_gap = s.stats.rel_gap;
    out.solver.seconds = s.stats.seconds;
    out.solver.threads = options_.bnb.solver_threads == 0
                             ? ThreadPool::hardware_threads()
                             : options_.bnb.solver_threads;
    out.solver.lp_solves = s.stats.lp_solves;
    out.solver.lp_pivots = s.stats.lp_pivots;
    out.solver.warm_solves = s.stats.warm_solves;
    out.solver.waves = s.stats.waves;
    out.solver.eta_nnz = s.stats.lp_stats.eta_nnz;
    out.solver.eta_dense_nnz = s.stats.lp_stats.eta_dense_nnz;
    out.solver.eta_compression = s.stats.lp_stats.eta_compression();
    out.solver.flop_reduction = s.stats.lp_stats.flop_reduction();
    out.solver.refactorizations = s.stats.lp_stats.refactorizations;
    out.solver.basis_nnz = s.stats.lp_stats.basis_nnz;
    out.solver.lu_fill = s.stats.lp_stats.lu_fill;
    out.solver.ft_updates = s.stats.lp_stats.ft_updates;
    out.solver.ft_fill_nnz = s.stats.lp_stats.ft_fill_nnz;
    out.solver.refactor_interval_hits = s.stats.lp_stats.refactor_interval_hits;
    out.solver.refactor_fill_hits = s.stats.lp_stats.refactor_fill_hits;
    out.solver.refactor_drift_hits = s.stats.lp_stats.refactor_drift_hits;
    out.solver.dual_pivots = s.stats.lp_stats.dual_pivots;
    out.solver.phase1_pivots = s.stats.lp_stats.phase1_pivots;
    out.solver.dual_phase1_avoided = s.stats.lp_stats.dual_phase1_avoided;
    out.solver.presolve_rows_removed = s.stats.lp_stats.presolve_rows_removed;
    out.solver.presolve_cols_removed = s.stats.lp_stats.presolve_cols_removed;
    out.solver.bounds_tightened = s.stats.bounds_tightened;
    out.solver.nodes_propagated_infeasible =
        s.stats.nodes_propagated_infeasible;
    out.solver.cuts_retired = s.stats.cuts_retired;
    out.solver.cuts_reactivated = s.stats.cuts_reactivated;
    // The CESM layout model is compute-only: one aggregate term.
    out.term_predictions.push_back({"compute", s.predicted_total, 0.0});
    return out;
  }

  Resolution resolution_;
  long long total_nodes_;
  const PipelineOptions& options_;
  Simulator sim_;
  std::unique_ptr<CoupledChunkRunner> runner_;
};

}  // namespace

std::shared_ptr<Application> make_application(Resolution r,
                                              long long total_nodes,
                                              PipelineOptions options) {
  // CesmApplication holds a const reference to its options; the aliasing
  // shared_ptr keeps one State alive that owns both.
  struct State {
    PipelineOptions options;
    CesmApplication app;
    State(Resolution res, long long nodes, PipelineOptions o)
        : options(std::move(o)), app(res, nodes, options) {}
  };
  auto state = std::make_shared<State>(r, total_nodes, std::move(options));
  return std::shared_ptr<Application>(state, &state->app);
}

PipelineResult run_pipeline(Resolution r, long long total_nodes,
                            const PipelineOptions& options) {
  CesmApplication app(r, total_nodes, options);
  hslb::PipelineOptions engine_options;
  engine_options.threads = options.threads;
  engine_options.gather_repetitions = options.repetitions;
  engine_options.rebalance = options.rebalance;
  auto run = Pipeline(engine_options).run(app);

  PipelineResult out;
  out.bench = std::move(run.bench);
  for (const auto& [task, fit] : run.fits)
    out.fits[index(component_from_string(task))] = fit;
  out.solution = std::move(app.solution_);
  out.actual_seconds = app.actual_seconds_;
  out.actual_total = app.actual_total_;
  out.coupled = std::move(app.run_);
  out.report = std::move(run.report);
  return out;
}

}  // namespace hslb::cesm
