#include "cesm/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/contracts.hpp"
#include "hslb/gather.hpp"

namespace hslb::cesm {

double PipelineResult::min_r2() const {
  double m = 1.0;
  for (const auto& f : fits) m = std::min(m, f.r2);
  return m;
}

std::vector<std::pair<std::string, std::vector<long long>>> gather_plan(
    Resolution r, long long total_nodes, bool ocean_constrained,
    std::size_t fit_points) {
  HSLB_EXPECTS(total_nodes >= 8);
  HSLB_EXPECTS(fit_points >= 2);

  std::vector<std::pair<std::string, std::vector<long long>>> plan;
  // Memory floor: CESM cannot run on arbitrarily few nodes at scale; probe
  // from ~N/256 up to the full partition (§III-C: smallest feasible to
  // largest possible).
  const long long lo = std::max<long long>(2, total_nodes / 256);

  for (Component c : kComponents) {
    std::vector<long long> counts;
    if (c == Component::Ocn && ocean_constrained) {
      // Probe only allowed sweet spots: pick fit_points of them spread
      // geometrically across the available set.
      const auto& allowed = ocean_allowed_nodes(r);
      std::vector<long long> usable;
      for (long long v : allowed)
        if (v <= total_nodes) usable.push_back(v);
      HSLB_EXPECTS(!usable.empty());
      std::set<long long> picked{usable.front(), usable.back()};
      for (std::size_t i = 1; i + 1 < fit_points; ++i) {
        const double f =
            static_cast<double>(i) / static_cast<double>(fit_points - 1);
        const auto idx = static_cast<std::size_t>(std::llround(
            f * static_cast<double>(usable.size() - 1)));
        picked.insert(usable[idx]);
      }
      counts.assign(picked.begin(), picked.end());
    } else {
      long long hi = total_nodes;
      if (c == Component::Atm && r == Resolution::Deg1)
        hi = std::min<long long>(hi, atm_allowed_nodes_deg1().back());
      counts = geometric_node_counts(std::min(lo, hi), hi, fit_points);
    }
    plan.emplace_back(to_string(c), counts);
  }
  return plan;
}

PipelineResult run_pipeline(Resolution r, long long total_nodes,
                            const PipelineOptions& options) {
  PipelineResult out;
  Simulator sim(r, options.sim);

  // -- Step 1: Gather -------------------------------------------------------
  const auto plan =
      gather_plan(r, total_nodes, options.ocean_constrained, options.fit_points);
  GatherOptions gopt;
  gopt.repetitions = options.repetitions;
  out.bench = gather(
      plan,
      [&](const std::string& task, long long nodes, std::uint64_t) {
        return sim.benchmark(component_from_string(task), nodes);
      },
      gopt);

  // -- Step 2: Fit ----------------------------------------------------------
  std::array<perf::Model, 4> models;
  for (Component c : kComponents) {
    const auto& samples = out.bench.find(to_string(c)).samples;
    out.fits[index(c)] = perf::fit(samples, options.fit);
    models[index(c)] = out.fits[index(c)].model;
  }

  // -- Step 3: Solve --------------------------------------------------------
  LayoutProblem problem = make_problem(r, options.layout, total_nodes, models,
                                       options.ocean_constrained);
  problem.tsync = options.tsync;
  out.solution = solve_layout(problem, options.bnb);

  // -- Step 4: Execute ------------------------------------------------------
  out.actual_seconds = sim.run_components(out.solution.nodes);
  out.actual_total = layout_total(options.layout, out.actual_seconds);
  return out;
}

}  // namespace hslb::cesm
