// End-to-end CESM pipeline: the four HSLB steps (§III-F) wired to the CESM
// substrate.
//
//   1. Gather  — run the simulated model at ~5 node counts per component
//                (ocean probes only its sweet-spot counts);
//   2. Fit     — per-component performance models with R^2 diagnostics;
//   3. Solve   — the layout MINLP of Table I via LP/NLP branch-and-bound;
//   4. Execute — a full simulated run at the chosen allocation, reported
//                next to the prediction exactly like Table III's
//                "Predicted Time" / "Actual Time" columns.
#pragma once

#include <array>
#include <memory>

#include "cesm/layouts.hpp"
#include "cesm/simulator.hpp"
#include "hslb/pipeline.hpp"
#include "perf/fit.hpp"

namespace hslb::cesm {

struct PipelineOptions {
  Layout layout = Layout::Hybrid;
  bool ocean_constrained = true;
  std::size_t fit_points = 5;
  std::size_t repetitions = 1;
  perf::FitOptions fit;
  minlp::BnbOptions bnb;
  SimulatorOptions sim;
  /// lnd/ice synchronization tolerance (seconds); infinity = off.
  double tsync = std::numeric_limits<double>::infinity();
  /// Worker threads for the Gather and Fit stages (0 = hardware
  /// concurrency); allocations are identical for every thread count.
  std::size_t threads = 1;

  /// Coupling periods of the Execute step's coupled run.
  int coupling_intervals = 24;
  /// Execute-step perturbations (see sim::Perturbation): straggler severity
  /// and an optional node fail-stop on the coupled run's machine.
  double straggler_cv = 0.0;
  long long fail_node = -1;
  double fail_time = 0.0;
  double fail_downtime = std::numeric_limits<double>::infinity();

  /// Closed-loop rebalancing (hslb::Controller): when `rebalance.adaptive`
  /// is set, the Execute step runs the coupled simulation in chunks of
  /// `intervals_per_epoch` coupling intervals and the monitor -> refit ->
  /// re-solve -> migrate loop reacts between chunks. Off, or on but never
  /// triggered, the run is bit-identical to the static pipeline.
  RebalancePolicy rebalance;
  int intervals_per_epoch = 4;
  /// Data each re-placed node drags along when the layout moves (restart
  /// state, GB per node); 0 makes migrations free.
  double migrate_gb_per_node = 0.0;
  /// Link bandwidth of the coupled run's machine (GB/s); infinity (the
  /// default) leaves communication unmodeled and migrations therefore
  /// unpriced, exactly as machine_for builds it.
  double link_gb_per_s = std::numeric_limits<double>::infinity();
};

struct PipelineResult {
  perf::BenchTable bench;                  ///< Gather output
  std::array<perf::FitResult, 4> fits;     ///< Fit output
  Solution solution;                       ///< Solve output (predicted)
  std::array<double, 4> actual_seconds{};  ///< Execute output
  double actual_total = 0.0;

  /// Execute-step coupled run (trace, barrier loss, robustness outcome).
  Simulator::CoupledRun coupled;

  /// Per-stage instrumentation from the hslb::Pipeline engine.
  PipelineReport report;

  double min_r2() const;
};

/// Runs the full pipeline for one configuration.
PipelineResult run_pipeline(Resolution r, long long total_nodes,
                            const PipelineOptions& options = {});

/// The CESM substrate as a self-contained hslb::Application (owns a copy
/// of its options), for registry-driven pipelines. Also implements
/// hslb::BaselineReporter (the DLB side is a uniform even split of the
/// budget). A run through the shared engine with equal options produces
/// results bit-identical to run_pipeline.
std::shared_ptr<Application> make_application(Resolution r,
                                              long long total_nodes,
                                              PipelineOptions options = {});

/// The Gather plan the pipeline uses: per-component benchmark node counts
/// (exposed for tests and the data-gathering ablation bench).
std::vector<std::pair<std::string, std::vector<long long>>> gather_plan(
    Resolution r, long long total_nodes, bool ocean_constrained,
    std::size_t fit_points);

}  // namespace hslb::cesm
