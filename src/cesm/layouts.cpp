#include "cesm/layouts.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "common/strings.hpp"

namespace hslb::cesm {

const char* to_string(Layout l) {
  switch (l) {
    case Layout::Hybrid: return "layout-1-hybrid";
    case Layout::SequentialAtmGroup: return "layout-2-seq-atm-group";
    case Layout::FullySequential: return "layout-3-fully-sequential";
  }
  return "?";
}

double layout_total(Layout l, const std::array<double, 4>& s) {
  const double lnd = s[index(Component::Lnd)];
  const double ice = s[index(Component::Ice)];
  const double atm = s[index(Component::Atm)];
  const double ocn = s[index(Component::Ocn)];
  switch (l) {
    case Layout::Hybrid:
      return std::max(std::max(ice, lnd) + atm, ocn);
    case Layout::SequentialAtmGroup:
      return std::max(ice + lnd + atm, ocn);
    case Layout::FullySequential:
      return ice + lnd + atm + ocn;
  }
  HSLB_ASSERT(!"unreachable");
  return 0.0;
}

LayoutProblem make_problem(Resolution r, Layout layout, long long total_nodes,
                           const std::array<perf::Model, 4>& models,
                           bool ocean_constrained) {
  HSLB_EXPECTS(total_nodes >= 8);
  LayoutProblem p;
  p.layout = layout;
  p.total_nodes = total_nodes;
  p.models = models;

  auto filtered = [total_nodes](const std::vector<long long>& set) {
    std::vector<long long> out;
    for (long long v : set)
      if (v >= 1 && v <= total_nodes) out.push_back(v);
    return out;
  };

  // lnd / ice: free integer ranges.
  for (Component c : {Component::Lnd, Component::Ice}) {
    p.choices[index(c)].lo = 1;
    p.choices[index(c)].hi = total_nodes;
  }
  // atm: published set at 1 degree, free range at 1/8 degree.
  if (r == Resolution::Deg1) {
    p.choices[index(Component::Atm)].allowed = filtered(atm_allowed_nodes_deg1());
  } else {
    p.choices[index(Component::Atm)].lo = 1;
    p.choices[index(Component::Atm)].hi = total_nodes;
  }
  // ocn: published sweet spots, or a free range when unconstrained (§IV-B).
  if (ocean_constrained) {
    p.choices[index(Component::Ocn)].allowed = filtered(ocean_allowed_nodes(r));
    HSLB_EXPECTS(!p.choices[index(Component::Ocn)].allowed.empty());
  } else {
    p.choices[index(Component::Ocn)].lo = 2;
    p.choices[index(Component::Ocn)].hi = total_nodes;
  }
  return p;
}

namespace {

/// Per-component variable bundle inside the MINLP.
struct CompVars {
  std::size_t n = 0;  ///< node-count variable
  std::size_t t = 0;  ///< component-time variable
  bool exact = false; ///< t is an exact linear expression (set-based)
};

long long lowest_choice(const Choices& ch) {
  return ch.allowed.empty() ? ch.lo : ch.allowed.front();
}

/// Adds one component's variables and node/time structure.
CompVars add_component(minlp::Model& m, Component c, const Choices& ch,
                       const perf::Model& pm, long long total_nodes,
                       double t_max) {
  const std::string name = to_string(c);
  CompVars v;
  if (!ch.allowed.empty()) {
    // Sweet-spot set: z_k binaries, SOS1, exact linear time.
    HSLB_EXPECTS(std::is_sorted(ch.allowed.begin(), ch.allowed.end()));
    v.exact = true;
    // n is fully determined by the binary selectors, so it can stay
    // continuous — integrality comes from the z_k link (fewer branch
    // candidates for the tree search).
    v.n = m.add_continuous(static_cast<double>(ch.allowed.front()),
                           static_cast<double>(ch.allowed.back()), "n_" + name);
    v.t = m.add_continuous(0.0, t_max, "t_" + name);
    std::vector<std::size_t> zs;
    std::vector<double> weights;
    std::vector<lp::Coeff> ones, node_link, time_link;
    for (long long cand : ch.allowed) {
      const auto z = m.add_binary("z_" + name + "_" + std::to_string(cand));
      zs.push_back(z);
      weights.push_back(static_cast<double>(cand));
      ones.push_back({z, 1.0});
      node_link.push_back({z, static_cast<double>(cand)});
      time_link.push_back({z, pm.eval(static_cast<double>(cand))});
    }
    m.add_linear(ones, 1.0, 1.0, "pick_" + name);
    node_link.push_back({v.n, -1.0});
    m.add_linear(node_link, 0.0, 0.0, "link_n_" + name);
    time_link.push_back({v.t, -1.0});
    m.add_linear(time_link, 0.0, 0.0, "link_t_" + name);
    m.add_sos1(minlp::Sos1{"sos_" + name, std::move(zs), std::move(weights)});
  } else {
    const long long hi = ch.hi == 0 ? total_nodes : ch.hi;
    HSLB_EXPECTS(ch.lo >= 1 && hi >= ch.lo);
    v.n = m.add_integer(static_cast<double>(ch.lo), static_cast<double>(hi),
                        "n_" + name);
    v.t = m.add_continuous(0.0, t_max, "t_" + name);
    // Convex epigraph: pm(n) - t <= 0, outer-approximated during the solve.
    minlp::NonlinearConstraint con;
    con.name = "T_" + name;
    con.formula = pm.expr("n_" + name) + " - t_" + name + " <= 0";
    con.vars = {v.n, v.t};
    const auto n_var = v.n;
    const auto t_var = v.t;
    con.value = [n_var, t_var, pm](std::span<const double> x) {
      return pm.eval(x[n_var]) - x[t_var];
    };
    con.gradient = [n_var, t_var, pm](std::span<const double> x) {
      return std::vector<minlp::GradEntry>{{n_var, pm.deriv_n(x[n_var])},
                                           {t_var, -1.0}};
    };
    m.add_nonlinear(std::move(con));
  }
  return v;
}

}  // namespace

minlp::Model build_layout_minlp(const LayoutProblem& p,
                                std::array<std::size_t, 4>* n_vars_out) {
  HSLB_EXPECTS(p.total_nodes >= 4);
  for (const auto& model : p.models) HSLB_EXPECTS(model.is_convex());

  // Generous finite bound on every time variable: the sum of all component
  // times at their smallest feasible allocations.
  double t_max = 0.0;
  for (Component c : kComponents) {
    t_max += p.models[index(c)].eval(
        static_cast<double>(lowest_choice(p.choices[index(c)])));
  }
  t_max *= 1.01;

  minlp::Model m;
  // A finite T_sync couples the lnd and ice *time values*; the convex
  // epigraph surrogates t >= T(n) would let those float and make the
  // constraint vacuous. Upgrade both components to the exact set-based
  // encoding (a candidate grid of at most ~1k counts: dense at the low
  // end, geometric beyond), where t = sum z_k T(v_k) is exact.
  std::array<Choices, 4> choices = p.choices;
  if (std::isfinite(p.tsync)) {
    for (Component c : {Component::Lnd, Component::Ice}) {
      Choices& ch = choices[index(c)];
      if (!ch.allowed.empty()) continue;
      const long long hi = ch.hi == 0 ? p.total_nodes : ch.hi;
      std::vector<long long> grid;
      for (long long v = ch.lo; v <= std::min<long long>(hi, 512); ++v)
        grid.push_back(v);
      double v = 512.0;
      while (static_cast<long long>(v) < hi) {
        v *= 1.02;
        const auto iv = std::min<long long>(static_cast<long long>(v), hi);
        if (grid.empty() || iv > grid.back()) grid.push_back(iv);
      }
      ch.allowed = std::move(grid);
    }
  }

  std::array<CompVars, 4> comp;
  for (Component c : kComponents) {
    comp[index(c)] = add_component(m, c, choices[index(c)],
                                   p.models[index(c)], p.total_nodes, t_max);
  }
  const auto& lnd = comp[index(Component::Lnd)];
  const auto& ice = comp[index(Component::Ice)];
  const auto& atm = comp[index(Component::Atm)];
  const auto& ocn = comp[index(Component::Ocn)];

  const auto T = m.add_continuous(0.0, t_max, "T");
  m.set_objective(T, 1.0);
  const double inf = lp::kInf;
  const auto N = static_cast<double>(p.total_nodes);

  switch (p.layout) {
    case Layout::Hybrid: {
      // T_icelnd >= t_ice, t_lnd; T >= T_icelnd + t_atm; T >= t_ocn;
      // n_atm + n_ocn <= N; n_ice + n_lnd <= n_atm.   (Table I, lines 14-21)
      const auto t_icelnd = m.add_continuous(0.0, t_max, "T_icelnd");
      m.add_linear({{t_icelnd, 1.0}, {ice.t, -1.0}}, 0.0, inf, "icelnd_ge_ice");
      m.add_linear({{t_icelnd, 1.0}, {lnd.t, -1.0}}, 0.0, inf, "icelnd_ge_lnd");
      m.add_linear({{T, 1.0}, {t_icelnd, -1.0}, {atm.t, -1.0}}, 0.0, inf,
                   "T_ge_icelnd_plus_atm");
      m.add_linear({{T, 1.0}, {ocn.t, -1.0}}, 0.0, inf, "T_ge_ocn");
      m.add_linear({{atm.n, 1.0}, {ocn.n, 1.0}}, -inf, N, "atm_ocn_budget");
      m.add_linear({{ice.n, 1.0}, {lnd.n, 1.0}, {atm.n, -1.0}}, -inf, 0.0,
                   "icelnd_within_atm");
      if (std::isfinite(p.tsync)) {
        // |t_lnd - t_ice| <= tsync  (Table I, lines 18-19). Both components
        // were upgraded to the exact set-based encoding above, so t_lnd and
        // t_ice are the true model values and the tolerance really binds.
        m.add_linear({{lnd.t, 1.0}, {ice.t, -1.0}}, -p.tsync, p.tsync, "tsync");
      }
      break;
    }
    case Layout::SequentialAtmGroup: {
      // T >= t_ice + t_lnd + t_atm; T >= t_ocn; n_j <= N - n_ocn.
      m.add_linear({{T, 1.0}, {ice.t, -1.0}, {lnd.t, -1.0}, {atm.t, -1.0}},
                   0.0, inf, "T_ge_seq");
      m.add_linear({{T, 1.0}, {ocn.t, -1.0}}, 0.0, inf, "T_ge_ocn");
      for (const auto* cv : {&lnd, &ice, &atm}) {
        m.add_linear({{cv->n, 1.0}, {ocn.n, 1.0}}, -inf, N, "within_rest");
      }
      break;
    }
    case Layout::FullySequential: {
      // T >= sum of all four; every component may span all nodes.
      m.add_linear({{T, 1.0},
                    {ice.t, -1.0},
                    {lnd.t, -1.0},
                    {atm.t, -1.0},
                    {ocn.t, -1.0}},
                   0.0, inf, "T_ge_all");
      // n_j <= N is already the variable bound.
      break;
    }
  }

  if (n_vars_out) {
    (*n_vars_out) = {lnd.n, ice.n, atm.n, ocn.n};
  }
  return m;
}

Solution solve_layout(const LayoutProblem& p, const minlp::BnbOptions& options) {
  std::array<std::size_t, 4> n_vars{};
  const auto model = build_layout_minlp(p, &n_vars);
  Solution sol;
  sol.stats = minlp::solve(model, options);
  HSLB_EXPECTS(sol.stats.has_solution);
  for (Component c : kComponents) {
    const auto i = index(c);
    sol.nodes[i] = std::llround(sol.stats.x[n_vars[i]]);
    sol.predicted_seconds[i] =
        p.models[i].eval(static_cast<double>(sol.nodes[i]));
  }
  sol.predicted_total = sol.stats.objective;
  return sol;
}

}  // namespace hslb::cesm
