// The simulated CESM run: stands in for "submit to the Intrepid queue and
// wait" (§II: five to ten manual iterations of exactly that is what HSLB
// eliminates).
//
// Component wall-clock times come from the calibrated ground-truth curves
// (data.hpp) perturbed by run-to-run noise. The sea-ice component gets a
// larger noise level, reproducing §IV-A's observation that CICE's
// decomposition/block-size variability made its timings noisy and its fit
// worse than the others.
#pragma once

#include <array>
#include <cstdint>

#include "cesm/data.hpp"
#include "cesm/layouts.hpp"
#include "sim/machine.hpp"
#include "sim/noise.hpp"
#include "sim/runtime.hpp"
#include "sim/trace.hpp"

namespace hslb::cesm {

struct SimulatorOptions {
  double noise_cv = 0.02;      ///< run-to-run noise for lnd/atm/ocn
  double ice_noise_cv = 0.06;  ///< extra-noisy CICE timings (§IV-A)
  std::uint64_t seed = 11;
};

class Simulator {
 public:
  Simulator(Resolution r, SimulatorOptions options = {});

  /// One benchmark probe: component `c` run on `nodes` nodes (noisy).
  /// Draws from the simulator's shared RNG streams (stateful).
  double benchmark(Component c, long long nodes);

  /// Order-independent probe for the parallel Gather stage: the noise draw
  /// is derived from (seed, component, nodes, rep) only, so concurrent
  /// probes return identical values for every thread count and call order.
  double benchmark_at(Component c, long long nodes, std::uint64_t rep) const;

  /// A full coupled run at the given allocation: per-component times.
  std::array<double, 4> run_components(const std::array<long long, 4>& nodes);

  /// Full-run wall-clock under a layout's sequencing semantics.
  double run_total(Layout layout, const std::array<long long, 4>& nodes);

  /// Noise-free component time (for oracle comparisons in tests/benches).
  double true_seconds(Component c, long long nodes) const;

  Resolution resolution() const { return resolution_; }

  /// Result of an event-driven coupled run (see run_coupled).
  struct CoupledRun {
    std::array<double, 4> component_seconds{};  ///< summed over intervals
    double total_seconds = 0.0;                 ///< makespan with barriers
    int intervals = 0;
    std::size_t events = 0;  ///< trace events (one per component interval)
    /// total_seconds minus the barrier-free layout total: the time lost to
    /// per-interval synchronization under run-to-run noise.
    double coupling_loss_seconds = 0.0;

    /// Per-interval execution trace on machine_for(layout, nodes).
    sim::Trace trace;
    bool completed = true;   ///< false when a permanent failure wedged it
    std::size_t restarts = 0;
  };

  /// The machine a coupled run occupies: the layout's processor blocks
  /// packed contiguously (Figure 1) on Intrepid-like nodes.
  static sim::Machine machine_for(Layout layout,
                                  const std::array<long long, 4>& nodes);

  /// Node count the layout's packed blocks occupy (machine_for's size).
  static long long layout_width(Layout layout,
                                const std::array<long long, 4>& nodes);

  /// Per-component processor blocks of a layout, packed from node `offset`
  /// (Figure 1). Exposed so the closed-loop chunk runner can re-place a
  /// re-solved allocation inside a surviving node segment.
  static std::array<sim::NodeSet, 4> blocks_for(
      Layout layout, const std::array<long long, 4>& nodes,
      std::size_t offset);

  /// Simulates the run the way the coupler actually drives it: the 5-day
  /// simulation is split into `intervals` coupling periods; within each
  /// period the components execute under the layout's sequencing as a task
  /// graph on the sim::Runtime, and a coupler barrier joins everything
  /// before the next period. With noisy per-period times the barriers cost
  /// real time that the paper's wall-clock formula (layout_total) cannot
  /// see — run_coupled measures that loss. Per-interval durations are keyed
  /// (order-independent) draws; `perturb` adds stragglers and fail-stop on
  /// top (its own noise_cv is usually left 0).
  CoupledRun run_coupled(Layout layout, const std::array<long long, 4>& nodes,
                         int intervals = 24,
                         const sim::Perturbation& perturb = {}) const;

 private:
  Resolution resolution_;
  SimulatorOptions options_;
  sim::NoiseModel noise_;
  sim::NoiseModel ice_noise_;
};

/// Epoch-by-epoch coupled run for the closed-loop controller: each step()
/// runs a chunk of coupling intervals on a fresh sim::Runtime whose node
/// clocks all start at the previous coupler barrier — the barrier joins
/// every node, so a run that never rebalances reproduces run_coupled's
/// schedule, trace and accounting bit-identically (per-interval durations
/// are keyed by the absolute interval index, which the chunk split
/// preserves).
///
/// On a permanent node failure the chunk pauses (failure = true): the
/// caller re-solves the layout over budget() — the largest contiguous
/// surviving segment — installs the new allocation, charges the stall
/// (migrate), and the next step() re-runs only the component intervals the
/// failure left unfinished, with blocks packed inside the segment.
class CoupledChunkRunner {
 public:
  /// One completed component interval: `seconds` is the noisy slice time
  /// (the full-run time divided by the interval count).
  struct Slice {
    Component component = Component::Lnd;
    long long nodes = 0;
    double seconds = 0.0;
    int interval = 0;
  };

  /// What one step() reported (mirrors hslb::EpochOutcome).
  struct ChunkReport {
    bool done = false;     ///< all coupling intervals have run
    bool failure = false;  ///< a permanent failure paused this chunk
    double epoch_seconds = 0.0;  ///< run-clock time this chunk consumed
    /// max/mean - 1 over the layout's two parallel block paths (the
    /// atmosphere-group chain vs the ocean); 0 for the fully sequential
    /// layout, which has no parallel blocks to imbalance.
    double imbalance = 0.0;
    double epochs_remaining = 0.0;  ///< chunks left, this one included
    std::vector<Slice> slices;      ///< completed intervals this chunk
  };

  /// `machine` is the partition the run occupies (machine_for, optionally
  /// with finite link bandwidth so migration has a price); `perturb` adds
  /// stragglers / fail-stop exactly as run_coupled would.
  CoupledChunkRunner(const Simulator& sim, Layout layout, int intervals,
                     int intervals_per_epoch, sim::Machine machine,
                     sim::Perturbation perturb);

  /// Installs `nodes` for subsequent chunks: blocks packed from the
  /// surviving segment's start. Must be called once before the first
  /// step() and after every accepted rebalance.
  void install(const std::array<long long, 4>& nodes);

  /// Runs the next chunk (or re-runs what a failure left unfinished).
  ChunkReport step();

  /// Charges a mid-run migration of `volume_gb` to the run clock and
  /// records a "migrate" trace event over the surviving segment. Returns
  /// the stall in seconds.
  double migrate(double volume_gb);

  /// Data volume (GB) a switch to `next` would move: `gb_per_node` for
  /// every node of a component whose processor block would change.
  double migration_volume(const std::array<long long, 4>& next,
                          double gb_per_node) const;

  /// Nodes available for re-solving: the machine, clipped to the largest
  /// contiguous segment a permanent failure left.
  long long budget() const;

  const sim::Machine& machine() const { return mach_; }

  /// Finalizes accounting (same shape run_coupled returns). Call once,
  /// after step() reported done.
  Simulator::CoupledRun finish();

 private:
  bool handle_failure(const sim::EpochState& state);

  const Simulator* sim_;
  Layout layout_;
  int intervals_;
  int chunk_;
  sim::Machine mach_;
  sim::Perturbation perturb_;

  std::array<long long, 4> nodes_{};
  std::array<sim::NodeSet, 4> blocks_{};
  bool installed_ = false;

  std::size_t seg_first_ = 0;  ///< surviving contiguous segment
  std::size_t seg_count_ = 0;
  bool failed_ = false;

  int cursor_ = 0;  ///< first interval not yet fully completed
  std::vector<std::array<char, 4>> pending_;  ///< [interval][component]
  bool done_ = false;
  bool unrecoverable_ = false;

  double clock_ = 0.0;
  Simulator::CoupledRun out_;
};

}  // namespace hslb::cesm
