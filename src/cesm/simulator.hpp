// The simulated CESM run: stands in for "submit to the Intrepid queue and
// wait" (§II: five to ten manual iterations of exactly that is what HSLB
// eliminates).
//
// Component wall-clock times come from the calibrated ground-truth curves
// (data.hpp) perturbed by run-to-run noise. The sea-ice component gets a
// larger noise level, reproducing §IV-A's observation that CICE's
// decomposition/block-size variability made its timings noisy and its fit
// worse than the others.
#pragma once

#include <array>
#include <cstdint>

#include "cesm/data.hpp"
#include "cesm/layouts.hpp"
#include "sim/machine.hpp"
#include "sim/noise.hpp"
#include "sim/runtime.hpp"
#include "sim/trace.hpp"

namespace hslb::cesm {

struct SimulatorOptions {
  double noise_cv = 0.02;      ///< run-to-run noise for lnd/atm/ocn
  double ice_noise_cv = 0.06;  ///< extra-noisy CICE timings (§IV-A)
  std::uint64_t seed = 11;
};

class Simulator {
 public:
  Simulator(Resolution r, SimulatorOptions options = {});

  /// One benchmark probe: component `c` run on `nodes` nodes (noisy).
  /// Draws from the simulator's shared RNG streams (stateful).
  double benchmark(Component c, long long nodes);

  /// Order-independent probe for the parallel Gather stage: the noise draw
  /// is derived from (seed, component, nodes, rep) only, so concurrent
  /// probes return identical values for every thread count and call order.
  double benchmark_at(Component c, long long nodes, std::uint64_t rep) const;

  /// A full coupled run at the given allocation: per-component times.
  std::array<double, 4> run_components(const std::array<long long, 4>& nodes);

  /// Full-run wall-clock under a layout's sequencing semantics.
  double run_total(Layout layout, const std::array<long long, 4>& nodes);

  /// Noise-free component time (for oracle comparisons in tests/benches).
  double true_seconds(Component c, long long nodes) const;

  Resolution resolution() const { return resolution_; }

  /// Result of an event-driven coupled run (see run_coupled).
  struct CoupledRun {
    std::array<double, 4> component_seconds{};  ///< summed over intervals
    double total_seconds = 0.0;                 ///< makespan with barriers
    int intervals = 0;
    std::size_t events = 0;  ///< trace events (one per component interval)
    /// total_seconds minus the barrier-free layout total: the time lost to
    /// per-interval synchronization under run-to-run noise.
    double coupling_loss_seconds = 0.0;

    /// Per-interval execution trace on machine_for(layout, nodes).
    sim::Trace trace;
    bool completed = true;   ///< false when a permanent failure wedged it
    std::size_t restarts = 0;
  };

  /// The machine a coupled run occupies: the layout's processor blocks
  /// packed contiguously (Figure 1) on Intrepid-like nodes.
  static sim::Machine machine_for(Layout layout,
                                  const std::array<long long, 4>& nodes);

  /// Simulates the run the way the coupler actually drives it: the 5-day
  /// simulation is split into `intervals` coupling periods; within each
  /// period the components execute under the layout's sequencing as a task
  /// graph on the sim::Runtime, and a coupler barrier joins everything
  /// before the next period. With noisy per-period times the barriers cost
  /// real time that the paper's wall-clock formula (layout_total) cannot
  /// see — run_coupled measures that loss. Per-interval durations are keyed
  /// (order-independent) draws; `perturb` adds stragglers and fail-stop on
  /// top (its own noise_cv is usually left 0).
  CoupledRun run_coupled(Layout layout, const std::array<long long, 4>& nodes,
                         int intervals = 24,
                         const sim::Perturbation& perturb = {}) const;

 private:
  Resolution resolution_;
  SimulatorOptions options_;
  sim::NoiseModel noise_;
  sim::NoiseModel ice_noise_;
};

}  // namespace hslb::cesm
