#include "cesm/finetuning.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace hslb::cesm {

MinorComponents synthetic_minor_components(
    const std::array<perf::Model, 4>& majors, double cpl_fraction,
    double rof_fraction) {
  HSLB_EXPECTS(cpl_fraction > 0.0 && cpl_fraction < 1.0);
  HSLB_EXPECTS(rof_fraction > 0.0 && rof_fraction < 1.0);
  MinorComponents minor;
  minor.cpl = majors[index(Component::Atm)];
  minor.cpl.a *= cpl_fraction;
  minor.cpl.b *= cpl_fraction;
  minor.cpl.d *= cpl_fraction;
  minor.rof = majors[index(Component::Lnd)];
  minor.rof.a *= rof_fraction;
  minor.rof.b *= rof_fraction;
  minor.rof.d *= rof_fraction;
  return minor;
}

minlp::Model build_finetuned_minlp(const LayoutProblem& p,
                                   const MinorComponents& minor,
                                   std::array<std::size_t, 4>* n_vars_out) {
  HSLB_EXPECTS(p.layout == Layout::Hybrid);
  HSLB_EXPECTS(minor.cpl.is_convex() && minor.rof.is_convex());

  // Start from the plain layout-1 model, then append the minor terms.
  // We rebuild rather than mutate so variable names/indices stay stable.
  std::array<std::size_t, 4> n_vars{};
  LayoutProblem host = p;
  minlp::Model m = build_layout_minlp(host, &n_vars);

  // Find the layout's epigraph variables by name (t_lnd, t_atm, T_icelnd, T).
  auto var_by_name = [&m](const std::string& name) {
    for (std::size_t v = 0; v < m.num_vars(); ++v)
      if (m.var_name(v) == name) return v;
    HSLB_EXPECTS(!"layout variable not found");
    return std::size_t{0};
  };
  const auto t_lnd = var_by_name("t_lnd");
  const auto t_ice = var_by_name("t_ice");
  const auto t_atm = var_by_name("t_atm");
  const auto t_icelnd = var_by_name("T_icelnd");
  const auto T = var_by_name("T");
  const auto n_lnd = n_vars[index(Component::Lnd)];
  const auto n_atm = n_vars[index(Component::Atm)];

  // Minor epigraph variables on the host components' node counts.
  const double t_max = m.upper(T);
  const auto t_cpl = m.add_continuous(0.0, t_max, "t_cpl");
  const auto t_rof = m.add_continuous(0.0, t_max, "t_rof");
  auto add_minor = [&m](const perf::Model& pm, std::size_t n_var,
                        std::size_t t_var, const std::string& name) {
    minlp::NonlinearConstraint con;
    con.name = "T_" + name;
    con.formula = pm.expr(m.var_name(n_var)) + " - " + m.var_name(t_var) +
                  " <= 0";
    con.vars = {n_var, t_var};
    con.value = [n_var, t_var, pm](std::span<const double> x) {
      return pm.eval(x[n_var]) - x[t_var];
    };
    con.gradient = [n_var, t_var, pm](std::span<const double> x) {
      return std::vector<minlp::GradEntry>{{n_var, pm.deriv_n(x[n_var])},
                                           {t_var, -1.0}};
    };
    m.add_nonlinear(std::move(con));
  };
  add_minor(minor.cpl, n_atm, t_cpl, "cpl");
  add_minor(minor.rof, n_lnd, t_rof, "rof");

  // Strengthened sequencing rows. The base rows (T_icelnd >= t_lnd,
  // T >= T_icelnd + t_atm) remain valid but slack; the rows below dominate.
  const double inf = lp::kInf;
  m.add_linear({{t_icelnd, 1.0}, {t_lnd, -1.0}, {t_rof, -1.0}}, 0.0, inf,
               "icelnd_ge_lnd_rof");
  m.add_linear({{t_icelnd, 1.0}, {t_ice, -1.0}}, 0.0, inf,
               "icelnd_ge_ice_ft");
  m.add_linear({{T, 1.0}, {t_icelnd, -1.0}, {t_atm, -1.0}, {t_cpl, -1.0}},
               0.0, inf, "T_ge_icelnd_atm_cpl");

  if (n_vars_out) *n_vars_out = n_vars;
  return m;
}

Solution solve_finetuned(const LayoutProblem& p, const MinorComponents& minor,
                         const minlp::BnbOptions& options) {
  std::array<std::size_t, 4> n_vars{};
  const auto model = build_finetuned_minlp(p, minor, &n_vars);
  Solution sol;
  sol.stats = minlp::solve(model, options);
  HSLB_EXPECTS(sol.stats.has_solution);
  for (Component c : kComponents) {
    const auto i = index(c);
    sol.nodes[i] = std::llround(sol.stats.x[n_vars[i]]);
    sol.predicted_seconds[i] =
        p.models[i].eval(static_cast<double>(sol.nodes[i]));
  }
  sol.predicted_total = sol.stats.objective;
  return sol;
}

double finetuned_total(const LayoutProblem& p, const MinorComponents& minor,
                       const std::array<long long, 4>& nodes) {
  const auto t = [&](Component c) {
    return p.models[index(c)].eval(static_cast<double>(nodes[index(c)]));
  };
  const double lnd_block =
      t(Component::Lnd) +
      minor.rof.eval(static_cast<double>(nodes[index(Component::Lnd)]));
  const double icelnd = std::max(t(Component::Ice), lnd_block);
  const double atm_block =
      t(Component::Atm) +
      minor.cpl.eval(static_cast<double>(nodes[index(Component::Atm)]));
  return std::max(icelnd + atm_block, t(Component::Ocn));
}

}  // namespace hslb::cesm
