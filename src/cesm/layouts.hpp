// The three CESM component-layout MINLP models of Table I / Figure 1.
//
//   Layout 1 (hybrid, the paper's focus): atmosphere runs sequentially
//     after {ice || lnd} on one processor block, ocean concurrently on the
//     rest:            T = max( max(T_ice, T_lnd) + T_atm, T_ocn )
//   Layout 2: ice + lnd + atm sequential on one block, ocean concurrent:
//                      T = max( T_ice + T_lnd + T_atm, T_ocn )
//   Layout 3: everything sequential on all nodes:
//                      T = T_ice + T_lnd + T_atm + T_ocn
//
// Components whose feasible node counts are an explicit "sweet spot" set
// (ocean always; atmosphere at 1 degree) are modeled with binary selectors
// z_k tied by sum(z)=1 and sum(z_k v_k) = n (Table I lines 29-31), declared
// as an SOS1 so the solver can branch on the set. Their component time is
// then *exactly* linear: t = sum(z_k T(v_k)). Free components use an
// integer range and a convex outer-approximated epigraph t >= T(n).
//
// The optional T_sync constraint (Table I lines 9, 18-19) balances lnd and
// ice within a tolerance; §III-A warns it can reduce performance, and it is
// off by default (bench/cesm_tsync_ablation explores it).
#pragma once

#include <array>
#include <limits>
#include <vector>

#include "cesm/component.hpp"
#include "cesm/data.hpp"
#include "minlp/bnb.hpp"
#include "perf/model.hpp"

namespace hslb::cesm {

enum class Layout { Hybrid = 1, SequentialAtmGroup = 2, FullySequential = 3 };

const char* to_string(Layout l);

/// Combines per-component times into the layout's total wall-clock time.
double layout_total(Layout l, const std::array<double, 4>& seconds);

/// How node counts may be chosen for one component.
struct Choices {
  /// Explicit sweet-spot set (sorted ascending); empty = integer range.
  std::vector<long long> allowed;
  long long lo = 1;  ///< used when allowed is empty
  long long hi = 0;  ///< used when allowed is empty (0 = total nodes)
};

struct LayoutProblem {
  Layout layout = Layout::Hybrid;
  long long total_nodes = 0;
  /// Fitted performance models, indexed by component (lnd, ice, atm, ocn).
  std::array<perf::Model, 4> models;
  std::array<Choices, 4> choices;
  /// Absolute lnd/ice synchronization tolerance in seconds; infinity = off.
  double tsync = std::numeric_limits<double>::infinity();
};

/// Standard problem setup for a resolution: ocean gets its published
/// sweet-spot set (or a free range when `ocean_constrained` is false),
/// atmosphere gets the published set at 1 degree and a free range at 1/8,
/// land and ice get free ranges.
LayoutProblem make_problem(Resolution r, Layout layout, long long total_nodes,
                           const std::array<perf::Model, 4>& models,
                           bool ocean_constrained = true);

struct Solution {
  std::array<long long, 4> nodes{};
  std::array<double, 4> predicted_seconds{};  ///< model value at nodes
  double predicted_total = 0.0;               ///< MINLP objective T
  minlp::BnbResult stats;                     ///< solver diagnostics
};

/// Builds the MINLP of Table I for the problem. `n_vars_out`, if non-null,
/// receives the variable indices of (n_lnd, n_ice, n_atm, n_ocn).
minlp::Model build_layout_minlp(const LayoutProblem& problem,
                                std::array<std::size_t, 4>* n_vars_out = nullptr);

/// Solves the layout allocation to proven global optimality.
Solution solve_layout(const LayoutProblem& problem,
                      const minlp::BnbOptions& options = {});

}  // namespace hslb::cesm
