#include "cesm/data.hpp"

#include <array>
#include <map>

#include "common/contracts.hpp"
#include "perf/fit.hpp"

namespace hslb::cesm {

const char* to_string(Resolution r) {
  switch (r) {
    case Resolution::Deg1: return "1deg";
    case Resolution::EighthDeg: return "1/8deg";
  }
  return "?";
}

namespace {

// Component order everywhere: lnd, ice, atm, ocn (as in Table III rows).

PublishedCase deg1_128() {
  PublishedCase c;
  c.resolution = Resolution::Deg1;
  c.total_nodes = 128;
  c.ocean_constrained = true;
  c.manual_nodes = {24, 80, 104, 24};
  c.manual_seconds = {63.766, 109.054, 306.952, 362.669};
  c.manual_total = 416.006;
  c.hslb_nodes = {15, 89, 104, 24};
  c.hslb_predicted_seconds = {100.951, 102.972, 307.651, 365.649};
  c.hslb_predicted_total = 410.623;
  c.hslb_actual_nodes = c.hslb_nodes;
  c.hslb_actual_seconds = {100.202, 116.472, 308.699, 365.853};
  c.hslb_actual_total = 425.171;
  return c;
}

PublishedCase deg1_2048() {
  PublishedCase c;
  c.resolution = Resolution::Deg1;
  c.total_nodes = 2048;
  c.ocean_constrained = true;
  c.manual_nodes = {384, 1280, 1664, 384};
  c.manual_seconds = {5.777, 17.912, 61.987, 61.987};
  c.manual_total = 79.899;
  c.hslb_nodes = {71, 1454, 1525, 256};
  c.hslb_predicted_seconds = {22.693, 22.822, 61.662, 78.532};
  c.hslb_predicted_total = 84.484;
  c.hslb_actual_nodes = c.hslb_nodes;
  c.hslb_actual_seconds = {23.158, 18.242, 63.313, 79.139};
  c.hslb_actual_total = 86.471;
  return c;
}

PublishedCase eighth_8192() {
  PublishedCase c;
  c.resolution = Resolution::EighthDeg;
  c.total_nodes = 8192;
  c.ocean_constrained = true;
  c.manual_nodes = {486, 5350, 5836, 2356};
  c.manual_seconds = {147.397, 475.614, 2533.76, 3785.333};
  c.manual_total = 3785.333;
  c.hslb_nodes = {138, 4918, 5056, 3136};
  c.hslb_predicted_seconds = {487.853, 511.596, 2878.798, 2919.052};
  c.hslb_predicted_total = 3390.394;
  c.hslb_actual_nodes = c.hslb_nodes;
  c.hslb_actual_seconds = {457.052, 499.691, 2989.115, 2898.102};
  c.hslb_actual_total = 3488.806;
  return c;
}

PublishedCase eighth_32768() {
  PublishedCase c;
  c.resolution = Resolution::EighthDeg;
  c.total_nodes = 32768;
  c.ocean_constrained = true;
  c.manual_nodes = {2220, 24424, 26644, 6124};
  c.manual_seconds = {44.225, 214.203, 787.478, 1645.009};
  c.manual_total = 1645.009;
  c.hslb_nodes = {302, 13006, 13308, 19460};
  c.hslb_predicted_seconds = {232.158, 290.088, 1302.562, 712.525};
  c.hslb_predicted_total = 1592.649;
  c.hslb_actual_nodes = c.hslb_nodes;
  c.hslb_actual_seconds = {223.284, 311.195, 1301.136, 700.373};
  c.hslb_actual_total = 1612.331;
  return c;
}

PublishedCase eighth_8192_unconstrained() {
  PublishedCase c;
  c.resolution = Resolution::EighthDeg;
  c.total_nodes = 8192;
  c.ocean_constrained = false;
  c.has_manual = false;
  c.hslb_nodes = {137, 5238, 5375, 2817};
  c.hslb_predicted_seconds = {487.853, 489.904, 2727.934, 3216.924};
  c.hslb_predicted_total = 3217.837;
  c.hslb_actual_nodes = {146, 5287, 5433, 2759};
  c.hslb_actual_seconds = {417.162, 475.249, 2702.651, 3496.331};
  c.hslb_actual_total = 3496.331;
  return c;
}

PublishedCase eighth_32768_unconstrained() {
  PublishedCase c;
  c.resolution = Resolution::EighthDeg;
  c.total_nodes = 32768;
  c.ocean_constrained = false;
  c.has_manual = false;
  c.hslb_nodes = {299, 22657, 22956, 9812};
  c.hslb_predicted_seconds = {232.158, 232.735, 896.67, 1129.335};
  c.hslb_predicted_total = 1129.405;
  c.hslb_actual_nodes = {272, 20616, 20888, 11880};
  c.hslb_actual_seconds = {238.46, 231.631, 956.558, 1255.593};
  c.hslb_actual_total = 1255.593;
  return c;
}

}  // namespace

const std::vector<PublishedCase>& published_cases() {
  static const std::vector<PublishedCase> cases{
      deg1_128(),
      deg1_2048(),
      eighth_8192(),
      eighth_32768(),
      eighth_8192_unconstrained(),
      eighth_32768_unconstrained(),
  };
  return cases;
}

const std::vector<Observation>& published_observations(Resolution r,
                                                       Component c) {
  static const auto table = [] {
    std::map<std::pair<Resolution, std::size_t>, std::vector<Observation>> t;
    for (const auto& pc : published_cases()) {
      for (Component comp : kComponents) {
        auto& obs = t[{pc.resolution, index(comp)}];
        if (pc.has_manual) {
          obs.push_back(
              {pc.manual_nodes[index(comp)], pc.manual_seconds[index(comp)]});
        }
        obs.push_back({pc.hslb_actual_nodes[index(comp)],
                       pc.hslb_actual_seconds[index(comp)]});
      }
    }
    return t;
  }();
  const auto it = table.find({r, index(c)});
  HSLB_EXPECTS(it != table.end());
  return it->second;
}

const std::vector<long long>& ocean_allowed_nodes(Resolution r) {
  // Table I line 5 at 1 degree: O = {2, 4, ..., 480, 768}; §IV-B at 1/8
  // degree: "limited to a few handful of node counts ... as a result of
  // prior testing".
  static const auto deg1 = [] {
    std::vector<long long> o;
    for (long long n = 2; n <= 480; n += 2) o.push_back(n);
    o.push_back(768);
    return o;
  }();
  static const std::vector<long long> eighth{480,  512,  2356, 3136,
                                             4564, 6124, 19460};
  return r == Resolution::Deg1 ? deg1 : eighth;
}

const std::vector<long long>& atm_allowed_nodes_deg1() {
  // Table I line 6: A = {1, 2, ..., 1638, 1664}.
  static const auto a = [] {
    std::vector<long long> v;
    for (long long n = 1; n <= 1638; ++n) v.push_back(n);
    v.push_back(1664);
    return v;
  }();
  return a;
}

namespace {

struct Calibration {
  perf::Model model;
  double r2;
};

const Calibration& calibration(Resolution r, Component c) {
  static const auto table = [] {
    std::map<std::pair<Resolution, std::size_t>, Calibration> t;
    for (Resolution res : {Resolution::Deg1, Resolution::EighthDeg}) {
      for (Component comp : kComponents) {
        perf::SampleSet samples;
        for (const auto& o : published_observations(res, comp))
          samples.push_back(
              {static_cast<double>(o.nodes), o.seconds});
        perf::FitOptions opt;
        opt.num_starts = 48;  // calibration runs once; be thorough
        opt.seed = 20140521;  // IPDPSW 2014 vintage, deterministic
        const auto fit = perf::fit(samples, opt);
        t[{res, index(comp)}] = Calibration{fit.model, fit.r2};
      }
    }
    return t;
  }();
  const auto it = table.find({r, index(c)});
  HSLB_EXPECTS(it != table.end());
  return it->second;
}

}  // namespace

const perf::Model& ground_truth(Resolution r, Component c) {
  return calibration(r, c).model;
}

double ground_truth_r2(Resolution r, Component c) {
  return calibration(r, c).r2;
}

}  // namespace hslb::cesm
