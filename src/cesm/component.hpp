// CESM model components (§II).
//
// CESM1.1.1 couples atmosphere (CAM), ocean (POP), sea ice (CICE), land
// (CLM), river (RTM), and land ice (CISM) through the CPL7 coupler. As in
// the paper, the river, land-ice, and coupler components are excluded from
// the optimization ("the contribution to the total time is small"), leaving
// C = {ice, lnd, atm, ocn}.
#pragma once

#include <array>
#include <string>

namespace hslb::cesm {

enum class Component { Lnd = 0, Ice = 1, Atm = 2, Ocn = 3 };

inline constexpr std::array<Component, 4> kComponents{
    Component::Lnd, Component::Ice, Component::Atm, Component::Ocn};

/// Short name used in tables ("lnd", "ice", "atm", "ocn").
const std::string& to_string(Component c);

/// Index in [0, 4) for array-keyed storage.
std::size_t index(Component c);

/// Parses a short name; throws ContractViolation on unknown names.
Component component_from_string(const std::string& name);

}  // namespace hslb::cesm
