// Published CESM benchmark data (Table III and §II/§III of the paper) and
// the ground-truth calibration derived from it.
//
// The real substrate — CESM1.1.1 on Intrepid — is unavailable; instead we
// calibrate the simulator's true per-component scaling curves through the
// paper's published (nodes, seconds) observations, so that the optimization
// landscape HSLB faces here is the published one (see DESIGN.md,
// substitution table).
#pragma once

#include <array>
#include <vector>

#include "cesm/component.hpp"
#include "perf/benchdata.hpp"
#include "perf/model.hpp"

namespace hslb::cesm {

enum class Resolution {
  Deg1,      ///< 1 degree FV atmosphere/land, 1 degree ocean/ice (CESM1.1.1)
  EighthDeg  ///< 1/8 degree HOMME-SE atm, 1/4 FV land, 1/10 ocean/ice (CESM1.2)
};

const char* to_string(Resolution r);

/// One published timing observation for a component.
struct Observation {
  long long nodes;
  double seconds;
};

/// All published (nodes, seconds) points for a component at a resolution
/// (manual + HSLB-actual + unconstrained-ocean rows of Table III).
const std::vector<Observation>& published_observations(Resolution r,
                                                       Component c);

/// One Table III block: a configuration and its published numbers.
struct PublishedCase {
  Resolution resolution;
  long long total_nodes;
  bool ocean_constrained;

  // Manual ("human optimization") columns; the 1/8-degree unconstrained
  // blocks have no manual column (has_manual = false).
  bool has_manual = true;
  std::array<long long, 4> manual_nodes{};
  std::array<double, 4> manual_seconds{};
  double manual_total = 0.0;

  // HSLB columns.
  std::array<long long, 4> hslb_nodes{};         // predicted allocation
  std::array<double, 4> hslb_predicted_seconds{};
  double hslb_predicted_total = 0.0;
  std::array<long long, 4> hslb_actual_nodes{};  // as actually run
  std::array<double, 4> hslb_actual_seconds{};
  double hslb_actual_total = 0.0;
};

/// The six Table III blocks in paper order.
const std::vector<PublishedCase>& published_cases();

/// Ocean "sweet spot" node sets (§III-A: hard-coded processor-count
/// constraints translated into the model, Table I line 5; §IV-B for 1/8).
const std::vector<long long>& ocean_allowed_nodes(Resolution r);

/// Atmosphere allowed set at 1 degree: {1, ..., 1638, 1664} (Table I
/// line 6). At 1/8 degree the paper gives no explicit set; the model uses a
/// plain integer range instead (see layouts.hpp).
const std::vector<long long>& atm_allowed_nodes_deg1();

/// Ground-truth scaling model for a component, fitted once through the
/// published observations (cached). These are the simulator's "true"
/// curves.
const perf::Model& ground_truth(Resolution r, Component c);

/// Ground-truth fit quality (R^2 against the published points), for
/// documentation output.
double ground_truth_r2(Resolution r, Component c);

}  // namespace hslb::cesm
