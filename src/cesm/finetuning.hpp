// Fine-tuning extension: the coupler (CPL7) and river (RTM) components.
//
// §II: "The river model is typically run on the same processors as the CLM
// model and the coupler is run on the same processors as the atmosphere.
// The coupler and the river models take less time to run compared to the
// other components, so these components were not included in our HSLB
// models, but they can be added later for fine tuning the work load
// balance."
//
// This module adds them to the layout-1 model:
//
//   T_icelnd >= T_ice(n_ice)
//   T_icelnd >= T_lnd(n_lnd) + T_rof(n_lnd)      (river shares lnd's nodes)
//   T >= T_icelnd + T_atm(n_atm) + T_cpl(n_atm)  (coupler shares atm's)
//   T >= T_ocn(n_ocn)
//
// No public timings exist for CPL7/RTM on Intrepid; synthetic models are
// derived as small fractions of the host component's curve (documented in
// DESIGN.md's substitution table) and can be replaced with fitted ones.
#pragma once

#include "cesm/layouts.hpp"

namespace hslb::cesm {

struct MinorComponents {
  perf::Model cpl;  ///< coupler, runs on the atmosphere's nodes
  perf::Model rof;  ///< river transport, runs on the land model's nodes
};

/// Synthetic minor-component models: a fixed fraction of the host
/// component's fitted curve (default: coupler ~6% of atm, river ~12% of
/// lnd — "less time to run compared to the other components").
MinorComponents synthetic_minor_components(
    const std::array<perf::Model, 4>& majors, double cpl_fraction = 0.06,
    double rof_fraction = 0.12);

/// Builds the layout-1 MINLP extended with coupler and river terms.
/// Only Layout::Hybrid is supported (the paper's focus layout).
minlp::Model build_finetuned_minlp(const LayoutProblem& problem,
                                   const MinorComponents& minor,
                                   std::array<std::size_t, 4>* n_vars_out = nullptr);

/// Solves the fine-tuned model; predicted_seconds still reports the four
/// major components, predicted_total includes the minor contributions.
Solution solve_finetuned(const LayoutProblem& problem,
                         const MinorComponents& minor,
                         const minlp::BnbOptions& options = {});

/// Total time of an allocation under the fine-tuned layout-1 semantics.
double finetuned_total(const LayoutProblem& problem,
                       const MinorComponents& minor,
                       const std::array<long long, 4>& nodes);

}  // namespace hslb::cesm
