// §IV-C extensions: "Prediction of Optimal Layout and Number of Nodes to a
// Job".
//
// Once the component models are fitted, HSLB can answer planning questions
// without running anything:
//   * how many nodes should this job request? ("it could be a
//     cost-efficient goal where nodes are increased until scaling is
//     reduced to a predefined limit or it could be the shortest time to
//     solution"),
//   * which layout scales best (Figure 4),
//   * what happens when one component is replaced by another
//     ("how replacing one component with another will affect scaling").
#pragma once

#include <vector>

#include "cesm/layouts.hpp"

namespace hslb::cesm {

struct SweepPoint {
  long long nodes = 0;
  double predicted_seconds = 0.0;
  /// Scaling efficiency relative to the smallest sweep point:
  /// (T_0 * N_0) / (T * N). 1 = perfect scaling.
  double efficiency = 1.0;
};

struct NodeCountAdvice {
  /// Largest node count whose relative scaling efficiency stays at or
  /// above the requested floor (the "cost-efficient" answer).
  long long cost_efficient_nodes = 0;
  double cost_efficient_seconds = 0.0;
  /// Node count minimizing predicted time over the sweep (the
  /// "shortest time to solution" answer).
  long long fastest_nodes = 0;
  double fastest_seconds = 0.0;
  std::vector<SweepPoint> sweep;
};

struct AdvisorOptions {
  long long min_nodes = 128;
  long long max_nodes = 40960;        ///< all of Intrepid by default
  std::size_t sweep_points = 8;       ///< geometric sweep resolution
  double efficiency_floor = 0.5;      ///< the "predefined limit" of §IV-C
  minlp::BnbOptions bnb;
};

/// Sweeps the node count, solving the layout MINLP at each size, and
/// recommends both a cost-efficient and a fastest node count.
NodeCountAdvice advise_node_count(Resolution r, Layout layout,
                                  const std::array<perf::Model, 4>& models,
                                  bool ocean_constrained = true,
                                  const AdvisorOptions& options = {});

/// What-if: re-solve the layout with one component's model replaced (e.g.
/// a faster ocean model, or a component moved to different physics).
/// Returns the new solution at the same node count.
Solution predict_component_swap(const LayoutProblem& base, Component which,
                                const perf::Model& replacement,
                                const minlp::BnbOptions& options = {});

}  // namespace hslb::cesm
