#include "cesm/advisor.hpp"

#include "common/contracts.hpp"
#include "hslb/gather.hpp"

namespace hslb::cesm {

NodeCountAdvice advise_node_count(Resolution r, Layout layout,
                                  const std::array<perf::Model, 4>& models,
                                  bool ocean_constrained,
                                  const AdvisorOptions& options) {
  HSLB_EXPECTS(options.min_nodes >= 8);
  HSLB_EXPECTS(options.max_nodes >= options.min_nodes);
  HSLB_EXPECTS(options.efficiency_floor > 0.0 && options.efficiency_floor <= 1.0);

  NodeCountAdvice advice;
  const auto counts = geometric_node_counts(options.min_nodes,
                                            options.max_nodes,
                                            options.sweep_points);
  double base_cost = 0.0;  // T_0 * N_0 (node-seconds at the smallest size)
  for (long long n : counts) {
    const auto problem = make_problem(r, layout, n, models, ocean_constrained);
    const auto sol = solve_layout(problem, options.bnb);
    SweepPoint pt;
    pt.nodes = n;
    pt.predicted_seconds = sol.predicted_total;
    if (base_cost == 0.0)
      base_cost = pt.predicted_seconds * static_cast<double>(n);
    pt.efficiency = base_cost /
                    (pt.predicted_seconds * static_cast<double>(n));
    advice.sweep.push_back(pt);
  }

  advice.fastest_nodes = advice.sweep.front().nodes;
  advice.fastest_seconds = advice.sweep.front().predicted_seconds;
  advice.cost_efficient_nodes = advice.sweep.front().nodes;
  advice.cost_efficient_seconds = advice.sweep.front().predicted_seconds;
  for (const auto& pt : advice.sweep) {
    if (pt.predicted_seconds < advice.fastest_seconds) {
      advice.fastest_seconds = pt.predicted_seconds;
      advice.fastest_nodes = pt.nodes;
    }
    if (pt.efficiency >= options.efficiency_floor &&
        pt.nodes > advice.cost_efficient_nodes) {
      advice.cost_efficient_nodes = pt.nodes;
      advice.cost_efficient_seconds = pt.predicted_seconds;
    }
  }
  return advice;
}

Solution predict_component_swap(const LayoutProblem& base, Component which,
                                const perf::Model& replacement,
                                const minlp::BnbOptions& options) {
  HSLB_EXPECTS(replacement.is_convex());
  LayoutProblem swapped = base;
  swapped.models[index(which)] = replacement;
  return solve_layout(swapped, options);
}

}  // namespace hslb::cesm
