#include "cesm/simulator.hpp"

#include <algorithm>
#include <functional>
#include <vector>

#include "common/contracts.hpp"
#include "sim/engine.hpp"

namespace hslb::cesm {

Simulator::Simulator(Resolution r, SimulatorOptions options)
    : resolution_(r),
      options_(options),
      noise_(options.noise_cv, options.seed),
      ice_noise_(options.ice_noise_cv, options.seed ^ 0x9e3779b97f4a7c15ull) {}

double Simulator::true_seconds(Component c, long long nodes) const {
  HSLB_EXPECTS(nodes >= 1);
  return ground_truth(resolution_, c).eval(static_cast<double>(nodes));
}

double Simulator::benchmark(Component c, long long nodes) {
  const double truth = true_seconds(c, nodes);
  return c == Component::Ice ? ice_noise_.perturb(truth) : noise_.perturb(truth);
}

double Simulator::benchmark_at(Component c, long long nodes,
                               std::uint64_t rep) const {
  const double cv =
      c == Component::Ice ? options_.ice_noise_cv : options_.noise_cv;
  const std::uint64_t seed =
      derive_seed(derive_seed(options_.seed, index(c)),
                  static_cast<std::uint64_t>(nodes) * 4096 + rep);
  sim::NoiseModel noise(cv, seed);
  return noise.perturb(true_seconds(c, nodes));
}

std::array<double, 4> Simulator::run_components(
    const std::array<long long, 4>& nodes) {
  std::array<double, 4> out{};
  for (Component c : kComponents) out[index(c)] = benchmark(c, nodes[index(c)]);
  return out;
}

double Simulator::run_total(Layout layout,
                            const std::array<long long, 4>& nodes) {
  return layout_total(layout, run_components(nodes));
}

Simulator::CoupledRun Simulator::run_coupled(
    Layout layout, const std::array<long long, 4>& nodes, int intervals) {
  HSLB_EXPECTS(intervals >= 1);
  CoupledRun out;
  out.intervals = intervals;

  // Per-interval noisy durations, drawn up front so the event logic below
  // stays readable. benchmark() already applies the per-component noise.
  const double inv = 1.0 / static_cast<double>(intervals);
  std::vector<std::array<double, 4>> slice(static_cast<std::size_t>(intervals));
  for (auto& s : slice) {
    for (Component c : kComponents) {
      s[index(c)] = benchmark(c, nodes[index(c)]) * inv;
      out.component_seconds[index(c)] += s[index(c)];
    }
  }

  // Event-driven execution: within each coupling period the layout's
  // sequencing applies; the coupler barrier joins both processor blocks
  // before the next period starts.
  sim::Engine engine;
  struct State {
    int interval = 0;
    int pending = 0;          // blocks still running in this interval
    double icelnd_done = 0;   // completed ice/lnd count (layout 1)
  } st;

  std::function<void()> start_interval = [&] {
    if (st.interval == intervals) return;  // finished
    const auto& s = slice[static_cast<std::size_t>(st.interval)];
    const double lnd = s[index(Component::Lnd)];
    const double ice = s[index(Component::Ice)];
    const double atm = s[index(Component::Atm)];
    const double ocn = s[index(Component::Ocn)];
    ++st.interval;
    st.pending = 2;  // the atm-side chain and the ocean block
    auto block_done = [&] {
      if (--st.pending == 0) start_interval();  // coupler barrier passed
    };
    double atm_chain = 0.0;
    switch (layout) {
      case Layout::Hybrid:
        atm_chain = std::max(ice, lnd) + atm;
        break;
      case Layout::SequentialAtmGroup:
        atm_chain = ice + lnd + atm;
        break;
      case Layout::FullySequential:
        // One block runs everything; the "ocean block" is instantaneous.
        atm_chain = ice + lnd + atm + ocn;
        break;
    }
    engine.schedule_in(atm_chain, block_done);
    engine.schedule_in(layout == Layout::FullySequential ? 0.0 : ocn,
                       block_done);
  };
  start_interval();
  out.total_seconds = engine.run();
  out.events = engine.events_processed();

  // Barrier-free reference: the paper's formula on the summed times.
  out.coupling_loss_seconds =
      out.total_seconds - layout_total(layout, out.component_seconds);
  return out;
}

}  // namespace hslb::cesm
