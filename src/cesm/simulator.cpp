#include "cesm/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "common/contracts.hpp"

namespace hslb::cesm {

Simulator::Simulator(Resolution r, SimulatorOptions options)
    : resolution_(r),
      options_(options),
      noise_(options.noise_cv, options.seed),
      ice_noise_(options.ice_noise_cv, options.seed ^ 0x9e3779b97f4a7c15ull) {}

double Simulator::true_seconds(Component c, long long nodes) const {
  HSLB_EXPECTS(nodes >= 1);
  return ground_truth(resolution_, c).eval(static_cast<double>(nodes));
}

double Simulator::benchmark(Component c, long long nodes) {
  const double truth = true_seconds(c, nodes);
  return c == Component::Ice ? ice_noise_.perturb(truth) : noise_.perturb(truth);
}

double Simulator::benchmark_at(Component c, long long nodes,
                               std::uint64_t rep) const {
  const double cv =
      c == Component::Ice ? options_.ice_noise_cv : options_.noise_cv;
  const std::uint64_t seed =
      derive_seed(derive_seed(options_.seed, index(c)),
                  static_cast<std::uint64_t>(nodes) * 4096 + rep);
  sim::NoiseModel noise(cv, seed);
  return noise.perturb(true_seconds(c, nodes));
}

std::array<double, 4> Simulator::run_components(
    const std::array<long long, 4>& nodes) {
  std::array<double, 4> out{};
  for (Component c : kComponents) out[index(c)] = benchmark(c, nodes[index(c)]);
  return out;
}

double Simulator::run_total(Layout layout,
                            const std::array<long long, 4>& nodes) {
  return layout_total(layout, run_components(nodes));
}

sim::Machine Simulator::machine_for(Layout layout,
                                    const std::array<long long, 4>& nodes) {
  for (Component c : kComponents) HSLB_EXPECTS(nodes[index(c)] >= 1);
  const long long lnd = nodes[index(Component::Lnd)];
  const long long ice = nodes[index(Component::Ice)];
  const long long atm = nodes[index(Component::Atm)];
  const long long ocn = nodes[index(Component::Ocn)];
  long long total = 0;
  switch (layout) {
    case Layout::Hybrid:
      // ice || lnd share the atmosphere block; ocean runs beside it.
      total = std::max(atm, ice + lnd) + ocn;
      break;
    case Layout::SequentialAtmGroup:
      total = std::max({ice, lnd, atm}) + ocn;
      break;
    case Layout::FullySequential:
      total = std::max({ice, lnd, atm, ocn});
      break;
  }
  return sim::Machine{"intrepid", static_cast<std::size_t>(total), 4};
}

Simulator::CoupledRun Simulator::run_coupled(
    Layout layout, const std::array<long long, 4>& nodes, int intervals,
    const sim::Perturbation& perturb) const {
  HSLB_EXPECTS(intervals >= 1);
  CoupledRun out;
  out.intervals = intervals;

  const sim::Machine machine = machine_for(layout, nodes);
  sim::Runtime rt(machine);

  const auto count = [&](Component c) {
    return static_cast<std::size_t>(nodes[index(c)]);
  };
  // Processor blocks (Figure 1), packed from node 0. In the hybrid layout
  // ice and lnd split the atmosphere block; in layout 2 the chain reuses
  // one block; layout 3 runs everything on overlapping full-machine sets.
  const std::size_t atm_block =
      layout == Layout::Hybrid
          ? std::max(count(Component::Atm),
                     count(Component::Ice) + count(Component::Lnd))
          : std::max({count(Component::Ice), count(Component::Lnd),
                      count(Component::Atm)});
  const sim::NodeSet ice_nodes{0, count(Component::Ice)};
  const sim::NodeSet lnd_nodes{
      layout == Layout::Hybrid ? count(Component::Ice) : 0,
      count(Component::Lnd)};
  const sim::NodeSet atm_nodes{0, count(Component::Atm)};
  const sim::NodeSet ocn_nodes{
      layout == Layout::FullySequential ? 0 : atm_block,
      count(Component::Ocn)};

  // Per-interval durations are keyed (order-independent) draws — the same
  // convention as benchmark_at probes, offset into a dedicated rep range.
  const double inv = 1.0 / static_cast<double>(intervals);
  const auto slice = [&](Component c, int k) {
    return benchmark_at(c, nodes[index(c)],
                        (1ull << 20) + static_cast<std::uint64_t>(k)) *
           inv;
  };

  std::vector<std::pair<std::size_t, Component>> placed;
  placed.reserve(static_cast<std::size_t>(intervals) * kComponents.size());
  std::vector<std::size_t> barrier;  // what the next interval waits on
  for (int k = 0; k < intervals; ++k) {
    const std::string phase = "interval" + std::to_string(k);
    const auto add = [&](Component c, const sim::NodeSet& where,
                         std::vector<std::size_t> deps) {
      const std::size_t id = rt.add_task(to_string(c), slice(c, k), where,
                                         std::move(deps), phase, false);
      placed.emplace_back(id, c);
      return id;
    };
    if (layout == Layout::FullySequential) {
      const auto ice = add(Component::Ice, ice_nodes, barrier);
      const auto lnd = add(Component::Lnd, lnd_nodes, {ice});
      const auto atm = add(Component::Atm, atm_nodes, {lnd});
      const auto ocn = add(Component::Ocn, ocn_nodes, {atm});
      barrier = {ocn};
    } else {
      const auto ice = add(Component::Ice, ice_nodes, barrier);
      const auto lnd =
          add(Component::Lnd, lnd_nodes,
              layout == Layout::Hybrid ? barrier : std::vector<std::size_t>{ice});
      const auto atm = add(Component::Atm, atm_nodes,
                           layout == Layout::Hybrid
                               ? std::vector<std::size_t>{ice, lnd}
                               : std::vector<std::size_t>{lnd});
      const auto ocn = add(Component::Ocn, ocn_nodes, barrier);
      // The coupler barrier: both processor blocks join before the next
      // coupling period.
      barrier = {atm, ocn};
    }
  }

  const auto rr = rt.run(perturb);
  out.trace = rr.trace;
  out.completed = rr.completed;
  out.restarts = rr.restarts;
  out.total_seconds = rr.makespan;
  out.events = rr.trace.events.size();
  for (const auto& [id, c] : placed) {
    const auto& s = rr.tasks[id];
    if (std::isfinite(s.end))
      out.component_seconds[index(c)] += s.end - s.start;
  }

  // Barrier-free reference: the paper's formula on the summed times.
  out.coupling_loss_seconds =
      out.total_seconds - layout_total(layout, out.component_seconds);
  return out;
}

}  // namespace hslb::cesm
