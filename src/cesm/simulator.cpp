#include "cesm/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <initializer_list>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/contracts.hpp"
#include "common/stats.hpp"

namespace hslb::cesm {

Simulator::Simulator(Resolution r, SimulatorOptions options)
    : resolution_(r),
      options_(options),
      noise_(options.noise_cv, options.seed),
      ice_noise_(options.ice_noise_cv, options.seed ^ 0x9e3779b97f4a7c15ull) {}

double Simulator::true_seconds(Component c, long long nodes) const {
  HSLB_EXPECTS(nodes >= 1);
  return ground_truth(resolution_, c).eval(static_cast<double>(nodes));
}

double Simulator::benchmark(Component c, long long nodes) {
  const double truth = true_seconds(c, nodes);
  return c == Component::Ice ? ice_noise_.perturb(truth) : noise_.perturb(truth);
}

double Simulator::benchmark_at(Component c, long long nodes,
                               std::uint64_t rep) const {
  const double cv =
      c == Component::Ice ? options_.ice_noise_cv : options_.noise_cv;
  const std::uint64_t seed =
      derive_seed(derive_seed(options_.seed, index(c)),
                  static_cast<std::uint64_t>(nodes) * 4096 + rep);
  sim::NoiseModel noise(cv, seed);
  return noise.perturb(true_seconds(c, nodes));
}

std::array<double, 4> Simulator::run_components(
    const std::array<long long, 4>& nodes) {
  std::array<double, 4> out{};
  for (Component c : kComponents) out[index(c)] = benchmark(c, nodes[index(c)]);
  return out;
}

double Simulator::run_total(Layout layout,
                            const std::array<long long, 4>& nodes) {
  return layout_total(layout, run_components(nodes));
}

long long Simulator::layout_width(Layout layout,
                                  const std::array<long long, 4>& nodes) {
  for (Component c : kComponents) HSLB_EXPECTS(nodes[index(c)] >= 1);
  const long long lnd = nodes[index(Component::Lnd)];
  const long long ice = nodes[index(Component::Ice)];
  const long long atm = nodes[index(Component::Atm)];
  const long long ocn = nodes[index(Component::Ocn)];
  switch (layout) {
    case Layout::Hybrid:
      // ice || lnd share the atmosphere block; ocean runs beside it.
      return std::max(atm, ice + lnd) + ocn;
    case Layout::SequentialAtmGroup:
      return std::max({ice, lnd, atm}) + ocn;
    case Layout::FullySequential:
      return std::max({ice, lnd, atm, ocn});
  }
  return 0;
}

sim::Machine Simulator::machine_for(Layout layout,
                                    const std::array<long long, 4>& nodes) {
  return sim::Machine{
      "intrepid", static_cast<std::size_t>(layout_width(layout, nodes)), 4};
}

std::array<sim::NodeSet, 4> Simulator::blocks_for(
    Layout layout, const std::array<long long, 4>& nodes, std::size_t offset) {
  for (Component c : kComponents) HSLB_EXPECTS(nodes[index(c)] >= 1);
  const auto count = [&](Component c) {
    return static_cast<std::size_t>(nodes[index(c)]);
  };
  // Processor blocks (Figure 1), packed from `offset`. In the hybrid layout
  // ice and lnd split the atmosphere block; in layout 2 the chain reuses
  // one block; layout 3 runs everything on overlapping full-machine sets.
  const std::size_t atm_block =
      layout == Layout::Hybrid
          ? std::max(count(Component::Atm),
                     count(Component::Ice) + count(Component::Lnd))
          : std::max({count(Component::Ice), count(Component::Lnd),
                      count(Component::Atm)});
  std::array<sim::NodeSet, 4> blocks;
  blocks[index(Component::Ice)] = {offset, count(Component::Ice)};
  blocks[index(Component::Lnd)] = {
      layout == Layout::Hybrid ? offset + count(Component::Ice) : offset,
      count(Component::Lnd)};
  blocks[index(Component::Atm)] = {offset, count(Component::Atm)};
  blocks[index(Component::Ocn)] = {
      layout == Layout::FullySequential ? offset : offset + atm_block,
      count(Component::Ocn)};
  return blocks;
}

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

/// Adds one coupling interval's tasks for the components still `pending`,
/// chained under the layout's sequencing. Dependencies on components that
/// already completed (a failure re-run) are dropped — the run clock covers
/// them. `barrier` carries the previous interval's coupler-barrier tasks
/// in and leaves this interval's behind. Returns runtime ids (kNone = not
/// added); both run_coupled and the chunk runner build through here, so
/// the mono and epoch-split schedules cannot drift apart.
std::array<std::size_t, 4> add_interval(sim::Runtime& rt, Layout layout,
                                        const std::array<sim::NodeSet, 4>& blocks,
                                        const std::array<double, 4>& seconds,
                                        const std::string& phase,
                                        const std::array<char, 4>& pending,
                                        std::vector<std::size_t>& barrier) {
  std::array<std::size_t, 4> ids;
  ids.fill(kNone);
  const auto filter = [](std::initializer_list<std::size_t> deps) {
    std::vector<std::size_t> kept;
    for (std::size_t d : deps)
      if (d != kNone) kept.push_back(d);
    return kept;
  };
  const auto add = [&](Component c, std::vector<std::size_t> deps) {
    const std::size_t i = index(c);
    if (!pending[i]) return kNone;
    ids[i] = rt.add_task(to_string(c), seconds[i], blocks[i], std::move(deps),
                         phase, false);
    return ids[i];
  };
  if (layout == Layout::FullySequential) {
    const auto ice = add(Component::Ice, barrier);
    const auto lnd = add(Component::Lnd, filter({ice}));
    const auto atm = add(Component::Atm, filter({lnd}));
    const auto ocn = add(Component::Ocn, filter({atm}));
    barrier = filter({ocn});
  } else {
    const auto ice = add(Component::Ice, barrier);
    const auto lnd = add(Component::Lnd, layout == Layout::Hybrid
                                             ? barrier
                                             : filter({ice}));
    const auto atm = add(Component::Atm, layout == Layout::Hybrid
                                             ? filter({ice, lnd})
                                             : filter({lnd}));
    const auto ocn = add(Component::Ocn, barrier);
    // The coupler barrier: both processor blocks join before the next
    // coupling period.
    barrier = filter({atm, ocn});
  }
  return ids;
}

}  // namespace

Simulator::CoupledRun Simulator::run_coupled(
    Layout layout, const std::array<long long, 4>& nodes, int intervals,
    const sim::Perturbation& perturb) const {
  HSLB_EXPECTS(intervals >= 1);
  CoupledRun out;
  out.intervals = intervals;

  const sim::Machine machine = machine_for(layout, nodes);
  sim::Runtime rt(machine);
  const auto blocks = blocks_for(layout, nodes, 0);

  // Per-interval durations are keyed (order-independent) draws — the same
  // convention as benchmark_at probes, offset into a dedicated rep range.
  const double inv = 1.0 / static_cast<double>(intervals);
  constexpr std::array<char, 4> kAllPending{1, 1, 1, 1};

  std::vector<std::pair<std::size_t, Component>> placed;
  placed.reserve(static_cast<std::size_t>(intervals) * kComponents.size());
  std::vector<std::size_t> barrier;  // what the next interval waits on
  for (int k = 0; k < intervals; ++k) {
    std::array<double, 4> seconds;
    for (Component c : kComponents) {
      seconds[index(c)] =
          benchmark_at(c, nodes[index(c)],
                       (1ull << 20) + static_cast<std::uint64_t>(k)) *
          inv;
    }
    const auto ids =
        add_interval(rt, layout, blocks, seconds,
                     "interval" + std::to_string(k), kAllPending, barrier);
    for (Component c : kComponents) placed.emplace_back(ids[index(c)], c);
  }

  const auto rr = rt.run(perturb);
  out.trace = rr.trace;
  out.completed = rr.completed;
  out.restarts = rr.restarts;
  out.total_seconds = rr.makespan;
  out.events = rr.trace.events.size();
  for (const auto& [id, c] : placed) {
    const auto& s = rr.tasks[id];
    if (std::isfinite(s.end))
      out.component_seconds[index(c)] += s.end - s.start;
  }

  // Barrier-free reference: the paper's formula on the summed times.
  out.coupling_loss_seconds =
      out.total_seconds - layout_total(layout, out.component_seconds);
  return out;
}

CoupledChunkRunner::CoupledChunkRunner(const Simulator& sim, Layout layout,
                                       int intervals, int intervals_per_epoch,
                                       sim::Machine machine,
                                       sim::Perturbation perturb)
    : sim_(&sim),
      layout_(layout),
      intervals_(intervals),
      chunk_(intervals_per_epoch),
      mach_(std::move(machine)),
      perturb_(std::move(perturb)) {
  HSLB_EXPECTS(intervals_ >= 1);
  HSLB_EXPECTS(chunk_ >= 1);
  HSLB_EXPECTS(mach_.nodes >= 1);
  seg_count_ = mach_.nodes;
  pending_.assign(static_cast<std::size_t>(intervals_),
                  std::array<char, 4>{1, 1, 1, 1});
  out_.trace.machine = mach_.name;
  out_.trace.nodes = mach_.nodes;
  out_.trace.cores_per_node = mach_.cores_per_node;
}

long long CoupledChunkRunner::budget() const {
  return std::min<long long>(static_cast<long long>(mach_.nodes),
                             static_cast<long long>(seg_count_));
}

void CoupledChunkRunner::install(const std::array<long long, 4>& nodes) {
  HSLB_EXPECTS(Simulator::layout_width(layout_, nodes) <= budget());
  nodes_ = nodes;
  blocks_ = Simulator::blocks_for(layout_, nodes, seg_first_);
  installed_ = true;
}

/// Shrinks the world to the largest contiguous segment of surviving nodes
/// and advances the clock past all in-flight work. Returns false when the
/// survivors fall below the pipeline's minimum partition.
bool CoupledChunkRunner::handle_failure(const sim::EpochState& state) {
  failed_ = true;
  const auto fn = static_cast<std::size_t>(perturb_.fail_node);
  const std::size_t end = seg_first_ + seg_count_;
  HSLB_ASSERT(fn >= seg_first_ && fn < end);
  // Larger of the two halves either side of the failed node (ties keep the
  // low half, so layouts stay anchored at the machine front).
  const std::size_t left = fn - seg_first_;
  const std::size_t right = end - fn - 1;
  if (left >= right) {
    seg_count_ = left;
  } else {
    seg_first_ = fn + 1;
    seg_count_ = right;
  }
  for (std::size_t n = seg_first_; n < seg_first_ + seg_count_; ++n)
    clock_ = std::max(clock_, state.node_free[n]);
  // gather_plan's floor: a partition under 8 nodes cannot host a re-solved
  // CESM layout.
  if (budget() < 8) {
    unrecoverable_ = true;
    done_ = true;
    out_.completed = false;
    return false;
  }
  return true;
}

CoupledChunkRunner::ChunkReport CoupledChunkRunner::step() {
  HSLB_EXPECTS(installed_);
  ChunkReport r;
  if (done_) {
    r.done = true;
    return r;
  }
  const double epoch_start = clock_;
  const int end_k = std::min(cursor_ + chunk_, intervals_);

  sim::Runtime rt(mach_);
  const double inv = 1.0 / static_cast<double>(intervals_);
  std::vector<std::tuple<std::size_t, Component, int>> placed;
  std::vector<std::size_t> barrier;
  for (int k = cursor_; k < end_k; ++k) {
    std::array<double, 4> seconds;
    for (Component c : kComponents) {
      seconds[index(c)] =
          sim_->benchmark_at(c, nodes_[index(c)],
                             (1ull << 20) + static_cast<std::uint64_t>(k)) *
          inv;
    }
    const auto ids = add_interval(rt, layout_, blocks_, seconds,
                                  "interval" + std::to_string(k),
                                  pending_[static_cast<std::size_t>(k)],
                                  barrier);
    for (Component c : kComponents)
      if (ids[index(c)] != kNone) placed.emplace_back(ids[index(c)], c, k);
  }

  sim::EpochOptions eo;
  eo.initial_node_free.assign(mach_.nodes, clock_);
  eo.stop_on_failure = true;
  sim::EpochState state;
  const auto rr = rt.run(perturb_, eo, &state);
  out_.trace.append(rr.trace);
  out_.restarts += rr.restarts;

  // Per-(interval, component) completed durations, for the block paths.
  std::vector<std::array<double, 4>> dur(
      static_cast<std::size_t>(end_k - cursor_), std::array<double, 4>{});
  for (const auto& [id, c, k] : placed) {
    if (!state.ran[id]) continue;
    const auto& ts = rr.tasks[id];
    const double t = ts.end - ts.start;
    out_.component_seconds[index(c)] += t;
    pending_[static_cast<std::size_t>(k)][index(c)] = 0;
    r.slices.push_back({c, nodes_[index(c)], t, k});
    dur[static_cast<std::size_t>(k - cursor_)][index(c)] = t;
  }

  const auto chunks_left = [&](int from) {
    return std::ceil(static_cast<double>(intervals_ - from) /
                     static_cast<double>(chunk_));
  };

  if (rr.failure_paused) {
    r.failure = true;
    r.done = !handle_failure(state);
    r.epochs_remaining = chunks_left(cursor_);
    r.epoch_seconds = clock_ - epoch_start;
    return r;
  }

  clock_ = rr.makespan;
  cursor_ = end_k;
  if (cursor_ >= intervals_) done_ = true;

  // Imbalance between the layout's two parallel block paths: the
  // atmosphere-group chain vs the ocean (exactly the split Table I's
  // min-max balances). The fully sequential layout has a single path.
  if (layout_ != Layout::FullySequential) {
    double path_atm = 0.0, path_ocn = 0.0;
    for (const auto& d : dur) {
      const double lnd = d[index(Component::Lnd)];
      const double ice = d[index(Component::Ice)];
      const double atm = d[index(Component::Atm)];
      path_atm += layout_ == Layout::Hybrid ? std::max(ice, lnd) + atm
                                            : ice + lnd + atm;
      path_ocn += d[index(Component::Ocn)];
    }
    const std::array<double, 2> paths{path_atm, path_ocn};
    r.imbalance = stats::imbalance(paths);
  }

  r.done = done_;
  r.epochs_remaining = chunks_left(cursor_);
  r.epoch_seconds = clock_ - epoch_start;
  return r;
}

double CoupledChunkRunner::migrate(double volume_gb) {
  const double stall = mach_.migration_seconds(volume_gb);
  if (stall > 0.0) {
    out_.trace.events.push_back({"migrate", "rebalance", seg_first_,
                                 seg_count_, clock_, clock_ + stall, false});
    clock_ += stall;
  }
  return stall;
}

double CoupledChunkRunner::migration_volume(
    const std::array<long long, 4>& next, double gb_per_node) const {
  HSLB_EXPECTS(installed_);
  if (gb_per_node <= 0.0) return 0.0;
  const auto moved = Simulator::blocks_for(layout_, next, seg_first_);
  double volume = 0.0;
  for (Component c : kComponents) {
    const std::size_t i = index(c);
    if (moved[i].first != blocks_[i].first || moved[i].count != blocks_[i].count)
      volume += gb_per_node * static_cast<double>(moved[i].count);
  }
  return volume;
}

Simulator::CoupledRun CoupledChunkRunner::finish() {
  out_.intervals = intervals_;
  out_.total_seconds = clock_;
  out_.events = out_.trace.events.size();
  out_.coupling_loss_seconds =
      out_.total_seconds - layout_total(layout_, out_.component_seconds);
  return out_;
}

}  // namespace hslb::cesm
