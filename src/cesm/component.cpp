#include "cesm/component.hpp"

#include "common/contracts.hpp"

namespace hslb::cesm {

const std::string& to_string(Component c) {
  static const std::array<std::string, 4> names{"lnd", "ice", "atm", "ocn"};
  return names[index(c)];
}

std::size_t index(Component c) {
  const auto i = static_cast<std::size_t>(c);
  HSLB_EXPECTS(i < 4);
  return i;
}

Component component_from_string(const std::string& name) {
  for (Component c : kComponents)
    if (to_string(c) == name) return c;
  HSLB_EXPECTS(!"unknown CESM component");
  return Component::Lnd;  // unreachable
}

}  // namespace hslb::cesm
