// Multistart wrapper around Levenberg-Marquardt.
//
// §III-C: "Since nonlinear optimization algorithms are iterative, selecting
// a different starting point may lead the solver to a different local
// solution. We experimented with different starting solutions..." — this
// class does that systematically: deterministic pseudo-random starts inside
// a user-given start box, best SSE wins.
#pragma once

#include "common/rng.hpp"
#include "nlsq/levmar.hpp"

namespace hslb::nlsq {

struct MultistartOptions {
  std::size_t num_starts = 16;
  std::uint64_t seed = 42;
  LevMarOptions levmar;
};

struct MultistartResult {
  LevMarResult best;
  std::size_t starts_tried = 0;
  std::size_t starts_converged = 0;
  /// SSE of every start's local solution, in start order (diagnostics for
  /// the paper's observation that different local optima have similar SSE).
  std::vector<double> local_costs;
};

/// Runs LM from `num_starts` points sampled log-uniformly (for positive
/// boxes) or uniformly inside [start_lower, start_upper], plus the box
/// midpoint. Requires finite start bounds.
MultistartResult minimize_multistart(const Problem& problem,
                                     std::span<const double> start_lower,
                                     std::span<const double> start_upper,
                                     const MultistartOptions& options = {});

}  // namespace hslb::nlsq
