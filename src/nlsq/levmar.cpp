#include "nlsq/levmar.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/contracts.hpp"
#include "linalg/decomp.hpp"

namespace hslb::nlsq {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

double clamp_to_box(const Problem& pb, std::size_t i, double v) {
  const double lo = pb.lower.empty() ? -kInf : pb.lower[i];
  const double hi = pb.upper.empty() ? kInf : pb.upper[i];
  return std::clamp(v, lo, hi);
}
}  // namespace

double Problem::cost(std::span<const double> p) const {
  const auto r = residuals(p);
  double acc = 0.0;
  for (double v : r) acc += v * v;
  return acc;
}

linalg::Matrix numeric_jacobian(const Problem& problem,
                                std::span<const double> p) {
  linalg::Matrix jac(problem.num_residuals, problem.num_params);
  linalg::Vector q(p.begin(), p.end());
  for (std::size_t j = 0; j < problem.num_params; ++j) {
    const double h = 1e-7 * (1.0 + std::fabs(q[j]));
    // Respect the box: fall back to one-sided differences at a bound.
    const double lo = problem.lower.empty() ? -kInf : problem.lower[j];
    const double hi = problem.upper.empty() ? kInf : problem.upper[j];
    const double fwd = std::min(q[j] + h, hi);
    const double bwd = std::max(q[j] - h, lo);
    HSLB_ASSERT(fwd > bwd);
    const double saved = q[j];
    q[j] = fwd;
    const auto r_fwd = problem.residuals(q);
    q[j] = bwd;
    const auto r_bwd = problem.residuals(q);
    q[j] = saved;
    for (std::size_t i = 0; i < problem.num_residuals; ++i)
      jac(i, j) = (r_fwd[i] - r_bwd[i]) / (fwd - bwd);
  }
  return jac;
}

LevMarResult minimize(const Problem& problem, std::span<const double> start,
                      const LevMarOptions& options) {
  HSLB_EXPECTS(problem.num_params > 0);
  HSLB_EXPECTS(problem.num_residuals >= 1);
  HSLB_EXPECTS(start.size() == problem.num_params);
  HSLB_EXPECTS(problem.lower.empty() || problem.lower.size() == problem.num_params);
  HSLB_EXPECTS(problem.upper.empty() || problem.upper.size() == problem.num_params);

  linalg::Vector x(start.begin(), start.end());
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = clamp_to_box(problem, i, x[i]);

  LevMarResult result;
  double cost = problem.cost(x);
  double lambda = options.initial_lambda;

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    const auto r = problem.residuals(x);
    const auto jac = problem.jacobian ? problem.jacobian(x)
                                      : numeric_jacobian(problem, x);
    HSLB_ASSERT(jac.rows() == problem.num_residuals);
    HSLB_ASSERT(jac.cols() == problem.num_params);

    // Gradient of SSE: g = 2 J^T r (factor 2 irrelevant for tests below).
    const auto g = jac.mul_transpose(r);

    // Projected-gradient convergence test: components pushing out of the
    // box at an active bound do not count.
    double gmax = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double lo = problem.lower.empty() ? -kInf : problem.lower[i];
      const double hi = problem.upper.empty() ? kInf : problem.upper[i];
      double gi = g[i];
      if (x[i] <= lo && gi > 0) gi = 0;   // descent would leave the box
      if (x[i] >= hi && gi < 0) gi = 0;
      gmax = std::max(gmax, std::fabs(gi));
    }
    if (gmax < options.gradient_tol * (1.0 + cost)) {
      result.converged = true;
      break;
    }

    const auto jtj = jac.gram();

    bool stepped = false;
    while (lambda <= options.max_lambda) {
      // (J^T J + lambda * diag(J^T J) + eps I) delta = -J^T r
      linalg::Matrix a = jtj;
      for (std::size_t i = 0; i < a.rows(); ++i)
        a(i, i) += lambda * std::max(jtj(i, i), 1e-12);
      const auto chol = linalg::Cholesky::factor(a);
      if (!chol) {
        lambda *= options.lambda_up;
        continue;
      }
      auto delta = chol->solve(g);
      for (double& d : delta) d = -d;

      linalg::Vector x_new(x.size());
      for (std::size_t i = 0; i < x.size(); ++i)
        x_new[i] = clamp_to_box(problem, i, x[i] + delta[i]);

      const double new_cost = problem.cost(x_new);
      if (new_cost < cost) {
        // Accept.
        double step = 0.0, scale = 0.0;
        for (std::size_t i = 0; i < x.size(); ++i) {
          step = std::max(step, std::fabs(x_new[i] - x[i]));
          scale = std::max(scale, std::fabs(x[i]));
        }
        const bool tiny_step = step < options.step_tol * (1.0 + scale);
        const bool tiny_decrease =
            (cost - new_cost) < options.cost_tol * (1.0 + cost);
        x = std::move(x_new);
        cost = new_cost;
        lambda = std::max(lambda * options.lambda_down, 1e-12);
        stepped = true;
        if (tiny_step || tiny_decrease) {
          result.converged = true;
        }
        break;
      }
      lambda *= options.lambda_up;
    }
    if (!stepped || result.converged) {
      // lambda exhausted: we are at a (numerical) local minimum.
      result.converged = result.converged || !stepped;
      break;
    }
  }

  result.params = std::move(x);
  result.cost = cost;
  return result;
}

}  // namespace hslb::nlsq
