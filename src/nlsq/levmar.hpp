// Box-constrained nonlinear least squares by Levenberg-Marquardt with
// gradient projection.
//
// This implements the Fit step of HSLB (§III-C, Table II line 10): the
// objective min sum_i (y_i - T(n_i; a,b,c,d))^2 subject to a,b,c,d >= 0 is
// non-convex, so the paper recommends trying several starting points; see
// multistart.hpp for that wrapper.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace hslb::nlsq {

/// Residual function r(p) with an optional analytic Jacobian dr/dp.
/// When `jacobian` is empty, central finite differences are used.
struct Problem {
  std::size_t num_params = 0;
  std::size_t num_residuals = 0;
  std::function<linalg::Vector(std::span<const double>)> residuals;
  std::function<linalg::Matrix(std::span<const double>)> jacobian;  // optional

  /// Box bounds; empty means unbounded in that direction.
  linalg::Vector lower, upper;  // sized num_params, +-inf allowed

  /// SSE cost at p.
  double cost(std::span<const double> p) const;
};

struct LevMarOptions {
  std::size_t max_iterations = 200;
  double gradient_tol = 1e-10;   ///< projected-gradient infinity norm
  double step_tol = 1e-12;       ///< relative step size
  double cost_tol = 1e-14;       ///< relative cost decrease
  double initial_lambda = 1e-3;
  double lambda_up = 10.0;
  double lambda_down = 0.3;
  double max_lambda = 1e12;
};

struct LevMarResult {
  linalg::Vector params;
  double cost = 0.0;            ///< sum of squared residuals at `params`
  std::size_t iterations = 0;
  bool converged = false;
};

/// Runs LM from `start` (projected into the box first).
LevMarResult minimize(const Problem& problem, std::span<const double> start,
                      const LevMarOptions& options = {});

/// Central-difference Jacobian helper (exposed for tests).
linalg::Matrix numeric_jacobian(const Problem& problem,
                                std::span<const double> p);

}  // namespace hslb::nlsq
