#include "nlsq/multistart.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace hslb::nlsq {

MultistartResult minimize_multistart(const Problem& problem,
                                     std::span<const double> start_lower,
                                     std::span<const double> start_upper,
                                     const MultistartOptions& options) {
  HSLB_EXPECTS(start_lower.size() == problem.num_params);
  HSLB_EXPECTS(start_upper.size() == problem.num_params);
  for (std::size_t i = 0; i < problem.num_params; ++i) {
    HSLB_EXPECTS(std::isfinite(start_lower[i]) && std::isfinite(start_upper[i]));
    HSLB_EXPECTS(start_lower[i] <= start_upper[i]);
  }

  Rng rng(options.seed);
  MultistartResult out;
  bool have_best = false;

  auto try_start = [&](const linalg::Vector& start) {
    const auto res = minimize(problem, start, options.levmar);
    ++out.starts_tried;
    if (res.converged) ++out.starts_converged;
    out.local_costs.push_back(res.cost);
    if (!have_best || res.cost < out.best.cost) {
      out.best = res;
      have_best = true;
    }
  };

  // Deterministic first start: box midpoint (geometric mean when the box is
  // strictly positive, which suits the time-scale parameters a, b, d).
  linalg::Vector mid(problem.num_params);
  for (std::size_t i = 0; i < problem.num_params; ++i) {
    if (start_lower[i] > 0.0) {
      mid[i] = std::sqrt(start_lower[i] * start_upper[i]);
    } else {
      mid[i] = 0.5 * (start_lower[i] + start_upper[i]);
    }
  }
  try_start(mid);

  for (std::size_t s = 1; s < options.num_starts; ++s) {
    linalg::Vector start(problem.num_params);
    for (std::size_t i = 0; i < problem.num_params; ++i) {
      if (start_lower[i] > 0.0) {
        // Log-uniform across positive scales.
        const double lo = std::log(start_lower[i]);
        const double hi = std::log(start_upper[i]);
        start[i] = std::exp(rng.uniform(lo, hi));
      } else {
        start[i] = rng.uniform(start_lower[i], start_upper[i]);
      }
    }
    try_start(start);
  }

  HSLB_ENSURES(have_best);
  return out;
}

}  // namespace hslb::nlsq
