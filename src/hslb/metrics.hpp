// Shared execution-quality metrics: the optimal-load-balance criteria of
// arXiv:2104.01688 computed one way and reported everywhere.
//
// Every PipelineReport, bench row, and balancer comparison derives its
// makespan/efficiency/imbalance numbers from this one struct, so a number
// named "percent imbalance" means exactly the same thing in the CLI
// report, BENCH_solver.json, and the scenario fuzzer:
//
//   * imbalance           — max/mean - 1 of busy time over units that were
//                           ever busy (the classic load-imbalance ratio);
//   * percent_imbalance   — lambda = (max / mean - 1) x 100 with the mean
//                           over ALL units, idle ones included, so
//                           unallocated capacity counts against the
//                           schedule (arXiv:2104.01688's primary
//                           criterion; lambda = 0 is optimal balance);
//   * sigma_percent       — (stddev / mean) x 100 over all units, the
//                           paper's secondary spread criterion (unlike
//                           lambda it also penalizes under-loaded units).
#pragma once

#include <string>
#include <vector>

namespace hslb::sim {
struct Trace;
}

namespace hslb {

struct Metrics {
  double makespan = 0.0;
  /// Useful busy unit-seconds (node-seconds for a trace).
  double busy_unit_seconds = 0.0;
  /// busy_unit_seconds / (units x makespan); 1 for an empty schedule.
  double efficiency = 0.0;
  /// max/mean - 1 of busy time over units that were ever busy.
  double imbalance = 0.0;
  /// lambda of arXiv:2104.01688 (see header comment). Percent.
  double percent_imbalance = 0.0;
  /// (stddev / mean) x 100 of busy time over all units. Percent.
  double sigma_percent = 0.0;

  /// Metrics of per-unit busy times under a given schedule length.
  /// `unit_busy` has one entry per unit (idle units are zeros and stay in
  /// the lambda/sigma means).
  static Metrics from_loads(const std::vector<double>& unit_busy,
                            double makespan);

  /// Metrics of an execution trace. The makespan, busy-seconds,
  /// efficiency, imbalance, and percent-imbalance values are exactly the
  /// trace's own (bit-identical to the pre-refactor per-field reads).
  static Metrics from_trace(const sim::Trace& trace);

  /// One-line human-readable rendering.
  std::string str() const;
};

}  // namespace hslb
