// Budgeted node-allocation solvers for "a few large tasks of diverse size"
// — the FMO form of HSLB (title paper): choose integer n_f for each task f
//
//     objective( T_1(n_1), ..., T_F(n_F) )   s.t.  sum_f n_f <= N,
//     min_nodes_f <= n_f <= max_nodes_f
//
// with T_f the fitted performance models. This is the "single constraint
// resource-constrained MINLP with non-increasing objectives" the paper
// cites from Ibaraki & Katoh [11] as solvable in polynomial time:
//
//  * min-max  — exact greedy (provably optimal for non-increasing T_f:
//               repeatedly feed the currently slowest task),
//  * min-sum  — exact marginal-gain greedy (optimal for convex T_f),
//  * max-min  — pairwise-exchange local search (the objective is not
//               convexifiable with our cut machinery; §III-D only uses it
//               as an ablation baseline).
//
// build_budget_minlp() expresses the same problem as a general MINLP so the
// branch-and-bound path can cross-check the specialized solvers
// (bench/fmo_solver_crosscheck and the property tests do exactly that).
#pragma once

#include <span>

#include "hslb/allocation.hpp"
#include "hslb/objective.hpp"
#include "minlp/model.hpp"
#include "perf/terms.hpp"

namespace hslb {

struct BudgetTask {
  std::string name;
  /// The task's cost model: any sum of registered terms (perf/terms.hpp).
  /// Implicitly constructible from the classic perf::Model, in which case
  /// every solver below behaves bit-identically to the power-law-only
  /// implementation. Knapsack terms (memory) raise the effective node
  /// floor; affine terms (communication) enter the MINLP as exact linear
  /// rows rather than outer-approximated nonlinear constraints.
  perf::CostModel model;
  long long min_nodes = 1;
  long long max_nodes = 0;  ///< inclusive upper bound (e.g. total nodes)
};

/// Exact min-max allocation (greedy; optimal for models non-increasing on
/// the allocated range — allocations are capped at each model's argmin so
/// this always holds). Requires sum of min_nodes <= budget.
Allocation solve_min_max(std::span<const BudgetTask> tasks, long long budget);

/// Exact min-sum allocation (marginal-gain greedy; optimal for convex
/// models). Requires sum of min_nodes <= budget.
Allocation solve_min_sum(std::span<const BudgetTask> tasks, long long budget);

/// Max-min allocation by pairwise-exchange local search from the min-max
/// solution. Heuristic (documented ablation baseline). Unlike the other
/// objectives this one spends the *entire* budget: with a "<=" budget
/// max-min degenerates (fewer nodes always raise every time), so the
/// meaningful reading — and the one §III-D compares against — equalizes
/// component times over all N nodes.
Allocation solve_max_min(std::span<const BudgetTask> tasks, long long budget);

/// Dispatch on objective.
Allocation solve_budget(std::span<const BudgetTask> tasks, long long budget,
                        Objective objective);

/// The same problem as a convex MINLP (min-max or min-sum only):
/// variables are laid out as n_f = f (task order), then the epigraph
/// variable(s). Used for branch-and-bound cross-checks.
minlp::Model build_budget_minlp(std::span<const BudgetTask> tasks,
                                long long budget, Objective objective);

/// Converts a MINLP solution vector of build_budget_minlp back into an
/// Allocation (reads the first tasks.size() variables).
Allocation allocation_from_minlp(std::span<const BudgetTask> tasks,
                                 std::span<const double> x,
                                 Objective objective);

/// Lifts per-task node counts into a full solution vector for the MINLP
/// build_budget_minlp builds over the SAME task list: the node counts
/// verbatim, with epigraph and split variables re-evaluated against the
/// current models. Used to seed a warm re-solve (BnbOptions::seed_incumbent
/// / seed_points) from a previous allocation — the point is feasible
/// whenever the node counts respect the new bounds and budget, and the B&B
/// re-checks that before accepting it.
std::vector<double> minlp_warm_start(std::span<const BudgetTask> tasks,
                                     std::span<const long long> nodes,
                                     Objective objective);

/// Objective value of an allocation under the given criterion.
double evaluate_objective(std::span<const BudgetTask> tasks,
                          std::span<const long long> nodes,
                          Objective objective);

}  // namespace hslb
