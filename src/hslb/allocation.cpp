#include "hslb/allocation.hpp"

#include <sstream>

#include "common/contracts.hpp"
#include "common/strings.hpp"

namespace hslb {

const TaskAllocation& Allocation::find(const std::string& task) const {
  for (const auto& t : tasks)
    if (t.task == task) return t;
  HSLB_EXPECTS(!"allocation task not found");
  return tasks.front();  // unreachable
}

bool Allocation::contains(const std::string& task) const {
  for (const auto& t : tasks)
    if (t.task == task) return true;
  return false;
}

long long Allocation::total_nodes() const {
  long long total = 0;
  for (const auto& t : tasks) total += t.nodes;
  return total;
}

std::string Allocation::str() const {
  std::ostringstream out;
  for (const auto& t : tasks) {
    out << strings::format("%-12s %8lld nodes   %12.3f s\n", t.task.c_str(),
                           t.nodes, t.predicted_seconds);
  }
  out << strings::format("%-12s %8s         %12.3f s\n", "total", "",
                         predicted_total);
  return out.str();
}

}  // namespace hslb
